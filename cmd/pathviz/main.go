// Command pathviz renders pipeline artifacts as Graphviz DOT: the
// original CFG with its recording edges, the qualification automaton's
// retrieval tree, the hot path graph, and the reduced hot path graph.
//
// Usage:
//
//	pathviz [-bench name | -src file] [-fn main] [-stage cfg|trie|hpg|rhpg]
//	        [-ca 0.97] [-cr 0.95] [-instrs]
//
// The DOT text is written to stdout; pipe it into `dot -Tsvg`.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathflow/internal/bench"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/core"
	"pathflow/internal/interp"
	"pathflow/internal/lang"
)

func main() {
	benchName := flag.String("bench", "", "benchmark to render")
	srcFile := flag.String("src", "", "source file to render (instead of -bench)")
	fnName := flag.String("fn", "main", "function to render")
	stage := flag.String("stage", "cfg", "artifact: cfg, trie, hpg, or rhpg")
	ca := flag.Float64("ca", 0.97, "hot-path coverage CA")
	cr := flag.Float64("cr", 0.95, "reduction benefit cutoff CR")
	instrs := flag.Bool("instrs", false, "include instructions in node labels")
	flag.Parse()

	if err := run(*benchName, *srcFile, *fnName, *stage, *ca, *cr, *instrs); err != nil {
		fmt.Fprintln(os.Stderr, "pathviz:", err)
		os.Exit(1)
	}
}

func run(benchName, srcFile, fnName, stage string, ca, cr float64, instrs bool) error {
	var prog *cfg.Program
	var opts interp.Options
	switch {
	case benchName != "":
		b, err := bench.Get(benchName)
		if err != nil {
			return err
		}
		prog, err = b.Program()
		if err != nil {
			return err
		}
		opts = b.TrainOptions()
	case srcFile != "":
		data, err := os.ReadFile(srcFile)
		if err != nil {
			return err
		}
		prog, err = lang.Compile(string(data))
		if err != nil {
			return err
		}
		opts = interp.Options{Input: &interp.SliceInput{Values: bench.InputValues(1, 4096)}}
	default:
		return fmt.Errorf("one of -bench or -src is required")
	}
	fn, ok := prog.Funcs[fnName]
	if !ok {
		return fmt.Errorf("no function %q (have %v)", fnName, prog.Order)
	}

	if stage == "cfg" {
		fmt.Print(fn.G.Dot(cfg.DotOptions{
			Instrs:    instrs,
			VarNames:  fn.VarNames,
			Recording: bl.RecordingEdges(fn.G),
		}))
		return nil
	}

	res, _, err := core.ProfileAndAnalyze(prog, opts, core.Options{CA: ca, CR: cr})
	if err != nil {
		return err
	}
	fr := res.Funcs[fnName]
	if !fr.Qualified() {
		return fmt.Errorf("function %q was not qualified (no hot paths at CA=%v)", fnName, ca)
	}
	switch stage {
	case "trie":
		fmt.Print(fr.Auto.Dot(fn.G))
	case "hpg":
		fmt.Print(fr.HPG.G.Dot(cfg.DotOptions{
			Instrs:    instrs,
			VarNames:  fn.VarNames,
			Recording: fr.HPG.Recording,
		}))
	case "rhpg":
		fmt.Print(fr.Red.G.Dot(cfg.DotOptions{
			Instrs:    instrs,
			VarNames:  fn.VarNames,
			Recording: fr.Red.Recording,
		}))
	default:
		return fmt.Errorf("unknown stage %q (want cfg, trie, hpg, or rhpg)", stage)
	}
	return nil
}
