// Command pathflow is the driver for the path-profile-guided data-flow
// analysis library. It runs and profiles programs (the built-in SPEC95
// analog suite or a source file), runs the qualification pipeline, and
// regenerates every table and figure of Ammons & Larus (PLDI 1998).
//
// Usage:
//
//	pathflow list
//	pathflow source  <benchmark>
//	pathflow run     <benchmark>|-src file [-ref] [-args a,b,...] [-seed n]
//	pathflow profile <benchmark>|-src file [-ref] [-top n]
//	pathflow analyze <benchmark>|-src file [-ca 0.97] [-cr 0.95] [-clients all] [-verify] [-feasible] [-baseline prev.pf]
//	pathflow opt     <benchmark>|-src file [-ref]
//	pathflow check   <benchmark>|-src file [-ca 0.97] [-cr 0.95] [-feasible]
//	pathflow exp     table1|table2|fig7|fig9|fig10|fig11|fig12|ablation|clients|feasible|all
//	pathflow watch   -src file [-profile prof.pf] [-interval d] [-rounds n]
//	pathflow serve   [-addr host:port] [-maxjobs n] [-workers n] [-timeout d]
//	pathflow worker  -join http://host:port [-id name] [-cachedir dir]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"pathflow/internal/availexpr"
	"pathflow/internal/bench"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/liveness"
	"pathflow/internal/profile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "source":
		err = cmdSource(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "opt":
		err = cmdOpt(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pathflow: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathflow:", err)
		// Typed errors carry their own remediation hints; the serving
		// layer embeds the very same text in its JSON error bodies.
		var opt *engine.InvalidOptionsError
		if errors.As(err, &opt) {
			fmt.Fprintln(os.Stderr, "pathflow:", opt.Hint())
		}
		var ub *bench.UnknownBenchmarkError
		if errors.As(err, &ub) {
			fmt.Fprintln(os.Stderr, "pathflow:", ub.Hint())
		}
		var uc *engine.UnknownClientError
		if errors.As(err, &uc) {
			fmt.Fprintln(os.Stderr, "pathflow:", uc.Hint())
		}
		var uk *engine.UnknownKernelError
		if errors.As(err, &uk) {
			fmt.Fprintln(os.Stderr, "pathflow:", uk.Hint())
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pathflow: interrupted")
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `pathflow — path-profile-guided data-flow analysis (Ammons & Larus, PLDI 1998)

commands:
  list                           list the built-in benchmarks
  source  <bench>                print a benchmark's source
  run     <bench>|-src f [...]   execute a program and print its output
  profile <bench>|-src f [...]   collect and print a Ball-Larus path profile
  analyze <bench>|-src f [...]   run the full qualification pipeline
                                 (-baseline prev: classify the edit vs a
                                 previous source version and report which
                                 stages replayed from cache)
  opt     <bench>|-src f [...]   optimize and compare modeled run time
  check   <bench>|-src f [...]   run the precision differential oracle
                                 (every client, every graph tier)
  exp     <table1|table2|fig7|fig9|fig10|fig11|fig12|ablation|clients|kernels|feasible|all>
                                 regenerate the paper's tables and figures
  watch   -src f [...]           watch a source file (and optional saved
                                 profile) and re-analyze incrementally on
                                 every change, reporting per function which
                                 stages replayed vs recomputed
  serve   [-addr host:port] [...] run the long-running analysis service
                                 (shared artifact cache, job manager,
                                 live per-stage metrics; see README)
  worker  -join http://host:port  join a serve -fabric coordinator and
                                 run distributed sweep tasks (leases,
                                 shared bundle cache; see README)
`)
}

// target resolves a program plus run options from command arguments.
type target struct {
	name string
	prog *cfg.Program
	opts interp.Options
	// fresh returns a new copy of opts with a rewound input stream, for
	// commands that need several independent runs.
	fresh func() interp.Options
}

func parseTarget(fs *flag.FlagSet, args []string) (*target, error) {
	srcFile := fs.String("src", "", "analyze this source file instead of a benchmark")
	ref := fs.Bool("ref", false, "use the benchmark's ref input (default: train)")
	argList := fs.String("args", "", "comma-separated arg(k) values (with -src)")
	seed := fs.Uint64("seed", 1, "input stream seed (with -src)")
	inputLen := fs.Int("inputlen", 4096, "input stream length (with -src)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *srcFile != "" {
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			return nil, err
		}
		prog, err := lang.Compile(string(data))
		if err != nil {
			return nil, err
		}
		var vals []ir.Value
		if *argList != "" {
			for _, s := range strings.Split(*argList, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad -args entry %q: %w", s, err)
				}
				vals = append(vals, v)
			}
		}
		fresh := func() interp.Options {
			return interp.Options{
				Args:  vals,
				Input: &interp.SliceInput{Values: bench.InputValues(*seed, *inputLen)},
			}
		}
		return &target{name: *srcFile, prog: prog, opts: fresh(), fresh: fresh}, nil
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return nil, fmt.Errorf("expected one benchmark name or -src file")
	}
	b, err := bench.Get(rest[0])
	if err != nil {
		return nil, err
	}
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	fresh := func() interp.Options {
		if *ref {
			return b.RefOptions()
		}
		return b.TrainOptions()
	}
	return &target{name: b.Name, prog: prog, opts: fresh(), fresh: fresh}, nil
}

func cmdList() error {
	for _, b := range bench.All() {
		prog, err := b.Program()
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %4d nodes, %2d functions, %5d static instructions\n",
			b.Name, prog.NumNodes(), len(prog.Order), prog.NumInstrs())
	}
	return nil
}

func cmdSource(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pathflow source <benchmark>")
	}
	b, err := bench.Get(args[0])
	if err != nil {
		return err
	}
	fmt.Print(b.Source)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	tg, err := parseTarget(fs, args)
	if err != nil {
		return err
	}
	tg.opts.CollectOutput = true
	res, err := interp.Run(tg.prog, tg.opts)
	if err != nil {
		return err
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	fmt.Printf("# %s: %d dynamic instructions, %d blocks, %d calls, return %d\n",
		tg.name, res.DynInstrs, res.Steps, res.Calls, res.Ret)
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	top := fs.Int("top", 10, "show the hottest N paths per function")
	outFile := fs.String("o", "", "also save the profile as JSON to this file")
	tg, err := parseTarget(fs, args)
	if err != nil {
		return err
	}
	pp, res, err := bl.ProfileProgram(tg.prog, tg.opts)
	if err != nil {
		return err
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		if err := pp.Save(f, tg.prog); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("# profile saved to %s\n", *outFile)
	}
	fmt.Printf("%s: %d dynamic instructions, %d distinct paths\n\n",
		tg.name, res.DynInstrs, pp.TotalPaths())
	for _, name := range tg.prog.Order {
		pr := pp.Funcs[name]
		g := tg.prog.Funcs[name].G
		if pr.NumPaths() == 0 {
			fmt.Printf("func %s: never executed\n", name)
			continue
		}
		fmt.Printf("func %s: %d paths, %d traversals, %d dynamic instructions\n",
			name, pr.NumPaths(), pr.TotalCount(), pr.DynInstrs(g))
		for i, e := range pr.SortedEntries(g) {
			if i >= *top {
				fmt.Printf("  ... %d more\n", pr.NumPaths()-*top)
				break
			}
			fmt.Printf("  %8d × %3d instrs  %s\n", e.Count, e.Path.NumInstrs(g), e.Path.String(g))
		}
	}
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	ca := fs.Float64("ca", 0.97, "hot-path coverage CA")
	cr := fs.Float64("cr", 0.95, "reduction benefit cutoff CR")
	workers := fs.Int("workers", 0, "parallel function analyses (0 = NumCPU)")
	showConsts := fs.Bool("consts", false, "list discovered non-local constants")
	profFile := fs.String("profile", "", "use a saved profile instead of running the training input")
	clientsFlag := fs.String("clients", "none", "extra data-flow clients to run: none, liveness, availexpr, all")
	kernelFlag := fs.String("kernel", "packed", "data-flow solver backend: packed (arena kernels), boxed (reference), or sparse (def-use chains)")
	verify := fs.Bool("verify", false, "run the precision differential oracle as a final stage")
	feasible := fs.Bool("feasible", false, "run the feasible-path qualification pass: detect branch correlations, prune infeasible edges, and analyze every client on the pruned graphs")
	baseFile := fs.String("baseline", "", "previous source version: warm the cache with its analysis, classify the edit per function, and report which stages replayed vs recomputed")
	cflags := addCacheFlags(fs, "")
	tg, err := parseTarget(fs, args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ecfg, err := cflags.engineConfig(*workers, true)
	if err != nil {
		return err
	}
	eng, err := engine.Open(ecfg)
	if err != nil {
		return err
	}
	clients, err := engine.ParseClients(*clientsFlag)
	if err != nil {
		return err
	}
	kern, err := engine.ParseKernel(*kernelFlag)
	if err != nil {
		return err
	}
	o := engine.Options{CA: *ca, CR: *cr, Clients: clients, Verify: *verify, Kernel: kern, Feasible: *feasible}
	if err := o.Validate(); err != nil {
		return err
	}
	var res *engine.ProgramResult
	var deltas []*engine.Delta
	switch {
	case *baseFile != "":
		res, deltas, err = analyzeIncremental(ctx, eng, tg, *baseFile, *profFile, o)
		if err != nil {
			return err
		}
	case *profFile != "":
		train, err := loadProfile(*profFile, tg.prog)
		if err != nil {
			return err
		}
		res, err = eng.AnalyzeProgram(ctx, tg.prog, train, o)
		if err != nil {
			return err
		}
	default:
		res, _, err = eng.ProfileAndAnalyze(ctx, tg.prog, tg.opts, o)
		if err != nil {
			return err
		}
	}
	fmt.Printf("%s @ CA=%.2f CR=%.2f\n\n", tg.name, *ca, *cr)
	fmt.Printf("%-12s %6s %6s %6s %6s %8s %9s\n",
		"function", "nodes", "hpg", "rhpg", "hot", "states", "time")
	for _, name := range tg.prog.Order {
		fr := res.Funcs[name]
		hpg, rhpg, states := fr.Fn.G.NumNodes(), fr.Fn.G.NumNodes(), 0
		if fr.Qualified() {
			hpg = fr.HPG.G.NumNodes()
			rhpg = fr.Red.G.NumNodes()
			states = fr.Auto.NumStates()
		}
		fmt.Printf("%-12s %6d %6d %6d %6d %8d %9s\n",
			name, fr.Fn.G.NumNodes(), hpg, rhpg, len(fr.Hot), states,
			fr.Times.Total.Round(10*time.Microsecond))
		if *showConsts && fr.Qualified() {
			printConsts(fr)
		}
		if clients != 0 {
			printClients(fr)
		}
		if *verify {
			for _, r := range fr.Oracle {
				fmt.Printf("    %s\n", r.String())
			}
		}
	}
	st := res.Stats()
	fmt.Printf("\ntotal: %d nodes -> %d HPG (%+.1f%%) -> %d reduced (%+.1f%%); %d hot paths\n",
		st.OrigNodes, st.HPGNodes,
		100*float64(st.HPGNodes-st.OrigNodes)/float64(st.OrigNodes),
		st.RedNodes,
		100*float64(st.RedNodes-st.OrigNodes)/float64(st.OrigNodes),
		st.HotPaths)
	if deltas != nil {
		printIncremental(*baseFile, deltas, res)
	}
	return nil
}

// printClients renders the optional clients' dynamically-weighted
// metrics per graph tier: dead stores found by liveness and redundant
// recomputations found by available expressions. Rising numbers from
// cfg to hpg/rhpg are the qualified analyses' precision wins.
func printClients(fr *engine.FuncResult) {
	type tier struct {
		name  string
		g     *cfg.Graph
		freq  []int64
		live  *liveness.Result
		avail *availexpr.Result
	}
	var tiers []tier
	if fr.Train != nil && (fr.LiveCFG != nil || fr.AvailCFG != nil) {
		tiers = append(tiers, tier{"cfg", fr.Fn.G,
			profile.NodeFrequencies(fr.Train, fr.Fn.G), fr.LiveCFG, fr.AvailCFG})
	}
	if fr.Qualified() && fr.HPGProf != nil {
		tiers = append(tiers, tier{"hpg", fr.HPG.G,
			profile.NodeFrequencies(fr.HPGProf, fr.HPG.G), fr.LiveHPG, fr.AvailHPG})
		if ep, err := fr.TranslateEval(fr.Train); err == nil {
			tiers = append(tiers, tier{"rhpg", fr.Red.G,
				profile.NodeFrequencies(ep, fr.Red.G), fr.LiveRed, fr.AvailRed})
		}
	}
	for _, t := range tiers {
		line := fmt.Sprintf("    clients %-5s", t.name)
		if t.live != nil {
			s, d := liveness.DeadStoreCount(t.g, t.live, t.freq)
			line += fmt.Sprintf("  dead stores %3d (dyn %8d)", s, d)
		}
		if t.avail != nil {
			s, d := availexpr.RedundantCount(t.g, t.avail, t.freq)
			line += fmt.Sprintf("  redundant exprs %3d (dyn %8d)", s, d)
		}
		fmt.Println(line)
	}
}

func printConsts(fr *engine.FuncResult) {
	g := fr.Red.G
	sol := fr.RedSol
	numVars := fr.Fn.NumVars()
	for _, nd := range g.Nodes {
		if !sol.Reached(nd.ID) {
			continue
		}
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), numVars, true)
		vals := sol.InstrValues(nd.ID)
		for i := range nd.Instrs {
			if !flags[i] {
				continue
			}
			fmt.Printf("    %s: %s = %d\n", nd.Name, renderInstr(fr, &nd.Instrs[i]), vals[i].K)
		}
	}
}

func renderInstr(fr *engine.FuncResult, in *ir.Instr) string {
	s := in.String()
	if i := strings.Index(s, " ="); i > 0 {
		return fr.Fn.VarName(in.Dst) + s[i:]
	}
	return s
}
