package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pathflow/internal/serve"
)

// cmdServe runs the long-running analysis service: a shared engine (one
// artifact cache across all requests), a bounded job manager, and live
// per-stage metric streams. SIGINT/SIGTERM drain in-flight jobs via
// context cancellation before the process exits.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "parallel function analyses per job (0 = NumCPU)")
	maxJobs := fs.Int("maxjobs", 2, "concurrently running jobs (further submissions queue)")
	timeout := fs.Duration("timeout", 0, "default per-job deadline (0 = none; requests may set timeout_ms)")
	nocache := fs.Bool("nocache", false, "disable the shared artifact cache")
	fab := fs.Bool("fabric", false, "mount the distributed-analysis coordinator (workers join with `pathflow worker -join`; sweeps opt in with \"distributed\": true)")
	fabLease := fs.Duration("fabric-lease", 0, "fabric worker lease TTL (0 = default 10s); a worker that stops heartbeating for this long forfeits its task")
	cflags := addCacheFlags(fs, "512M")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	maxBytes, err2 := parseSize(*cflags.max)
	if err2 != nil {
		return fmt.Errorf("-cachemax: %w", err2)
	}
	memBytes, err := parseSize(*cflags.mem)
	if err != nil {
		return fmt.Errorf("-cachemem: %w", err)
	}
	srv, err := serve.New(serve.Config{
		Workers:        *workers,
		MaxJobs:        *maxJobs,
		NoCache:        *nocache,
		CacheDir:       *cflags.dir,
		CacheMaxBytes:  maxBytes,
		MemoryMaxBytes: memBytes,
		DefaultTimeout: *timeout,
		Fabric:         *fab,
		FabricLeaseTTL: *fabLease,
	})
	if err != nil {
		return err
	}
	err = srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Printf("pathflow serve: listening on http://%s\n", a)
		fmt.Printf("pathflow serve: POST /v1/analyze, POST /v1/sweep, GET /v1/jobs, /healthz, /metrics\n")
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("pathflow serve: drained, bye")
	return nil
}
