package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pathflow/internal/engine"
)

// cmdCheck runs the precision differential oracle over a target: it
// analyzes the program with every client enabled, then statically
// verifies — per function, per derived graph tier, per client — that
// the hot-path solution projected through the trace correspondence is
// pointwise at least as precise as the CFG solution. A violation makes
// the command fail, so CI can use `pathflow check` as a soundness gate.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	ca := fs.Float64("ca", 0.97, "hot-path coverage CA")
	cr := fs.Float64("cr", 0.95, "reduction benefit cutoff CR")
	workers := fs.Int("workers", 0, "parallel function analyses (0 = NumCPU)")
	kernelFlag := fs.String("kernel", "packed", "data-flow solver backend: packed (arena kernels), boxed (reference), or sparse (def-use chains)")
	quiet := fs.Bool("q", false, "print only violations and the final verdict")
	feasible := fs.Bool("feasible", false, "also run feasible-path qualification and its extended soundness gates (masked ⊒ unmasked per tier, plus the executed-edge trace gate)")
	cflags := addCacheFlags(fs, "")
	tg, err := parseTarget(fs, args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ecfg, err := cflags.engineConfig(*workers, true)
	if err != nil {
		return err
	}
	eng, err := engine.Open(ecfg)
	if err != nil {
		return err
	}
	kern, err := engine.ParseKernel(*kernelFlag)
	if err != nil {
		return err
	}
	o := engine.Options{CA: *ca, CR: *cr, Clients: engine.ClientsAll, Kernel: kern, Feasible: *feasible}
	if err := o.Validate(); err != nil {
		return err
	}
	res, _, err := eng.ProfileAndAnalyze(ctx, tg.prog, tg.opts, o)
	if err != nil {
		return err
	}

	fmt.Printf("%s @ CA=%.2f CR=%.2f — precision differential oracle\n", tg.name, *ca, *cr)
	if !*quiet {
		fmt.Println()
	}
	var firstErr error
	checked, violations := 0, 0
	for _, name := range tg.prog.Order {
		fr := res.Funcs[name]
		reports := engine.CheckFuncResult(fr)
		if len(reports) == 0 {
			if !*quiet {
				fmt.Printf("func %-12s not qualified; nothing to compare\n", name)
			}
			continue
		}
		for _, r := range reports {
			checked += r.Checked
			violations += len(r.Violations)
			if !r.OK() || !*quiet {
				fmt.Printf("func %-12s %s\n", name, r.String())
			}
			if err := r.Err(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	if !*quiet {
		fmt.Println()
	}
	fmt.Printf("checked %d vertex facts, %d violation(s)\n", checked, violations)
	if firstErr != nil {
		return firstErr
	}
	fmt.Println("ok: every derived solution is pointwise at least as precise as the CFG's")
	return nil
}
