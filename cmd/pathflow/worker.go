package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathflow/internal/engine"
	"pathflow/internal/fabric"
	"pathflow/internal/serve"
)

// cmdWorker joins a fabric coordinator (a `pathflow serve -fabric`
// process) and runs its lease loop: lease a (target, function, point)
// task, analyze it on a local engine, report the summary. The worker's
// disk cache is wired to the coordinator's bundle endpoints, so stage
// artifacts computed anywhere in the fleet are fetched instead of
// recomputed. SIGINT/SIGTERM abandon the current lease (the coordinator
// re-enqueues it on expiry) and exit.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	join := fs.String("join", "", "coordinator base URL, e.g. http://127.0.0.1:8372 (required)")
	id := fs.String("id", "", "worker name in leases and metrics (default host-pid)")
	workers := fs.Int("workers", 1, "parallel function analyses inside one task")
	poll := fs.Duration("poll", 0, "idle poll interval (0 = default 200ms)")
	cflags := addCacheFlags(fs, "512M")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("worker takes no positional arguments (got %q)", fs.Args())
	}
	if *join == "" {
		return fmt.Errorf("worker requires -join http://coordinator:port")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The bundle tier needs a disk cache to adopt fetched frames into.
	// Without -cachedir, a private temp dir serves: artifacts still flow
	// through the coordinator, they just don't persist across restarts.
	dir := *cflags.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pathflow-worker-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	ecfg, err := cflags.engineConfig(*workers, true)
	if err != nil {
		return err
	}
	ecfg.CacheDir = dir
	eng, err := engine.Open(ecfg)
	if err != nil {
		return err
	}
	remote := fabric.NewRemoteCache(ctx, *join, nil)
	if store := eng.Disk(); store != nil {
		store.SetRemote(remote)
	}

	w := &fabric.Worker{
		ID:   *id,
		Base: *join,
		Run:  serve.NewTaskRunner(eng).WithProfileExchange(remote).Run,
		Poll: *poll,
	}
	fmt.Printf("pathflow worker %s: joining %s (cache %s)\n", *id, *join, dir)
	if err := w.Serve(ctx); err != nil {
		return err
	}
	st := w.Stats()
	fmt.Printf("pathflow worker %s: done, %d tasks, %s busy\n",
		*id, st.Tasks, st.Busy.Round(time.Millisecond))
	return nil
}
