package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/lang"
)

// loadProfile reads a saved Ball-Larus profile for prog.
func loadProfile(path string, prog *cfg.Program) (*bl.ProgramProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bl.Load(f, prog)
}

// analyzeIncremental implements `analyze -baseline <prev source>`: the
// previous version is compiled, profiled on the same training input and
// analyzed first — warming the memory tier (and the disk tier, with
// -cachedir) with every stage bundle it produces — then each function of
// the current version is diffed against its namesake (engine.DiffFunc)
// and analyzed under the classified delta, so stages whose Merkle keys
// survived the edit replay from cache while the dirtied suffix
// recomputes. The returned deltas drive the replayed/recomputed report.
//
// profFile, when set, supplies the current version's training profile;
// otherwise both versions are profiled on the target's training input.
func analyzeIncremental(ctx context.Context, eng *engine.Engine, tg *target, baseFile, profFile string, o engine.Options) (*engine.ProgramResult, []*engine.Delta, error) {
	data, err := os.ReadFile(baseFile)
	if err != nil {
		return nil, nil, err
	}
	baseProg, err := lang.Compile(string(data))
	if err != nil {
		return nil, nil, fmt.Errorf("compile -baseline %s: %w", baseFile, err)
	}
	baseTrain, _, err := bl.ProfileProgram(baseProg, tg.fresh())
	if err != nil {
		return nil, nil, fmt.Errorf("profile -baseline %s: %w", baseFile, err)
	}
	// Warm start: analyze the previous version so its stage bundles are
	// resident. Under WithDeltaClass(DeltaCold) every disk bundle is
	// stamped as a cold write.
	if _, err := eng.AnalyzeProgram(engine.WithDeltaClass(ctx, engine.DeltaCold), baseProg, baseTrain, o); err != nil {
		return nil, nil, fmt.Errorf("analyze -baseline %s: %w", baseFile, err)
	}

	var train *bl.ProgramProfile
	if profFile != "" {
		train, err = loadProfile(profFile, tg.prog)
	} else {
		train, _, err = bl.ProfileProgram(tg.prog, tg.fresh())
	}
	if err != nil {
		return nil, nil, err
	}

	deltas := engine.DiffPrograms(baseProg, tg.prog, baseTrain, train)
	byName := make(map[string]*engine.Delta, len(deltas))
	for _, d := range deltas {
		byName[d.Func] = d
	}

	// Analyze function by function so each runs under its own delta
	// class (a body edit in one function must not stamp another's
	// bundles). Serial is fine here: the interesting cost is the
	// replay/recompute split, not wall-clock.
	res := &engine.ProgramResult{Prog: tg.prog, Opt: o, Funcs: make(map[string]*engine.FuncResult, len(tg.prog.Order))}
	for _, name := range tg.prog.Order {
		fctx := engine.WithDeltaClass(ctx, byName[name].Class)
		fr, err := eng.AnalyzeFunc(fctx, tg.prog.Funcs[name], train.Funcs[name], o)
		if err != nil {
			return nil, nil, err
		}
		res.Funcs[name] = fr
	}
	return res, deltas, nil
}

// printIncremental renders the per-function incremental report: the
// classified delta, the dirty-set prediction, and what actually
// happened — how many pipeline stages were served from cache (replayed)
// versus recomputed.
func printIncremental(baseFile string, deltas []*engine.Delta, res *engine.ProgramResult) {
	fmt.Printf("\nincremental re-analysis vs %s:\n", baseFile)
	fmt.Printf("%-12s %-8s %9s %10s  %s\n",
		"function", "delta", "replayed", "recomputed", "replayed stages")
	for _, d := range deltas {
		fr := res.Funcs[d.Func]
		if fr == nil {
			continue
		}
		var replayed, recomputed int
		var names []string
		for _, s := range engine.PipelineStages {
			sm := fr.Metrics.Stages[s]
			if sm.Runs == 0 {
				continue
			}
			if sm.CacheHits > 0 {
				replayed++
				names = append(names, string(s))
			} else {
				recomputed++
			}
		}
		fmt.Printf("%-12s %-8s %9d %10d  %s\n",
			d.Func, d.Class, replayed, recomputed, strings.Join(names, ","))
	}
}
