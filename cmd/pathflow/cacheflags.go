package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"pathflow/internal/engine"
)

// cacheFlags is the persistent-cache flag trio shared by analyze, exp
// and serve: where the disk tier lives, how big it may grow, and the
// in-memory tier's ceiling.
type cacheFlags struct {
	dir *string
	max *string
	mem *string
}

func addCacheFlags(fs *flag.FlagSet, memDefault string) *cacheFlags {
	return &cacheFlags{
		dir: fs.String("cachedir", "", "persistent artifact cache directory (empty = memory only); warm starts decode cached artifacts instead of recomputing"),
		max: fs.String("cachemax", "", "disk cache size bound, e.g. 256M or 2G (empty = unbounded)"),
		mem: fs.String("cachemem", memDefault, "in-memory cache size bound, e.g. 512M (empty = unbounded)"),
	}
}

// engineConfig folds the cache flags into an engine configuration.
func (c *cacheFlags) engineConfig(workers int, cache bool) (engine.Config, error) {
	maxBytes, err := parseSize(*c.max)
	if err != nil {
		return engine.Config{}, fmt.Errorf("-cachemax: %w", err)
	}
	memBytes, err := parseSize(*c.mem)
	if err != nil {
		return engine.Config{}, fmt.Errorf("-cachemem: %w", err)
	}
	return engine.Config{
		Workers:        workers,
		Cache:          cache,
		MemoryMaxBytes: memBytes,
		CacheDir:       *c.dir,
		CacheMaxBytes:  maxBytes,
	}, nil
}

// parseSize parses a human-friendly byte size: a plain integer, or one
// with a K/M/G suffix (binary multiples). Empty means 0 (unbounded).
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 1048576, 64M, 2G)", s)
	}
	return n * mult, nil
}

// provTracker aggregates per-stage artifact provenance (computed /
// memory / disk) across a run, for `exp -v`.
type provTracker struct {
	mu     sync.Mutex
	counts map[engine.StageName]*[3]int
}

// install wires the tracker into ctx as a stage observer.
func (p *provTracker) install(ctx context.Context) context.Context {
	p.counts = map[engine.StageName]*[3]int{}
	return engine.WithStageObserver(ctx, func(ev engine.StageEvent) {
		p.mu.Lock()
		c := p.counts[ev.Stage]
		if c == nil {
			c = new([3]int)
			p.counts[ev.Stage] = c
		}
		if int(ev.Source) < len(c) {
			c[ev.Source]++
		}
		p.mu.Unlock()
	})
}

// print renders the provenance table, stages in pipeline order.
func (p *provTracker) print() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.counts) == 0 {
		return
	}
	fmt.Printf("\nper-stage cache provenance:\n")
	fmt.Printf("%-10s %9s %9s %9s\n", "stage", "computed", "memory", "disk")
	for _, s := range engine.StageOrder {
		c := p.counts[s]
		if c == nil {
			continue
		}
		fmt.Printf("%-10s %9d %9d %9d\n", s,
			c[engine.SourceComputed], c[engine.SourceMemory], c[engine.SourceDisk])
	}
}

// printCacheStats prints the cache summary line(s) after a run.
func printCacheStats(st engine.CacheStats) {
	if st.Hits+st.Misses > 0 {
		fmt.Printf("artifact cache: %d hits, %d misses, %d entries", st.Hits, st.Misses, st.Entries)
		if st.MemEvictions > 0 {
			fmt.Printf(", %d evicted", st.MemEvictions)
		}
		fmt.Println()
	}
	if st.DiskEnabled {
		d := st.Disk
		fmt.Printf("disk cache: %d hits, %d misses, %d writes, %d entries (%s)",
			d.Hits, d.Misses, d.Writes, d.Entries, fmtBytes(d.Bytes))
		if d.Evictions > 0 {
			fmt.Printf(", %d evicted", d.Evictions)
		}
		if d.Rejects > 0 {
			fmt.Printf(", %d rejected", d.Rejects)
		}
		fmt.Println()
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
