package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"pathflow/internal/bench"
	"pathflow/internal/classify"
	"pathflow/internal/engine"
)

// cmdExp regenerates the paper's tables and figures over the benchmark
// suite. The experiments run on a shared engine: functions are analyzed
// in parallel on -workers workers and every artifact a sweep point can
// reuse comes from the cross-run cache (disable with -nocache to measure
// cold costs). Ctrl-C cancels the sweep promptly.
func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "parallel function analyses (0 = NumCPU)")
	nocache := fs.Bool("nocache", false, "disable the cross-run artifact cache")
	verbose := fs.Bool("v", false, "print per-stage cache provenance (computed/memory/disk) after the run")
	kernelFlag := fs.String("kernel", "packed", "data-flow solver backend: packed (arena kernels), boxed (reference), or sparse (def-use chains)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after the experiment) to this file")
	cflags := addCacheFlags(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pathflow exp [-workers n] [-nocache] [-cachedir dir] [-cachemax size] [-kernel packed|boxed|sparse] [-cpuprofile f] [-memprofile f] [-v] <table1|table2|fig7|fig9|fig10|fig11|fig12|ablation|clients|kernels|feasible|streaming|all>")
	}
	what := fs.Arg(0)
	kern, err := engine.ParseKernel(*kernelFlag)
	if err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("exp: -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("exp: -cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pathflow: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pathflow: -memprofile:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ecfg, err := cflags.engineConfig(*workers, !*nocache)
	if err != nil {
		return err
	}
	eng, err := engine.Open(ecfg)
	if err != nil {
		return err
	}
	var prov provTracker
	if *verbose {
		ctx = prov.install(ctx)
	}
	ins, err := bench.LoadAll(ctx, eng)
	if err != nil {
		return err
	}
	for _, in := range ins {
		in.Kernel = kern
	}
	exps := map[string]func(context.Context, []*bench.Instance) error{
		"table1": expTable1, "table2": expTable2, "fig7": expFig7,
		"fig9": expFig9, "fig10": expFig10, "fig11": expFig11,
		"fig12": expFig12, "ablation": expAblation, "clients": expClients,
		"kernels": expKernels, "feasible": expFeasible, "streaming": expStreaming,
	}
	switch {
	case what == "all":
		for _, f := range []func(context.Context, []*bench.Instance) error{
			expTable1, expFig7, expFig9, expFig10, expFig11, expFig12, expTable2, expAblation, expClients, expKernels, expFeasible, expStreaming,
		} {
			if err := f(ctx, ins); err != nil {
				return err
			}
			fmt.Println()
		}
		printCacheStats(eng.CacheStats())
	case exps[what] != nil:
		if err := exps[what](ctx, ins); err != nil {
			return err
		}
		if *verbose {
			printCacheStats(eng.CacheStats())
		}
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	if *verbose {
		prov.print()
	}
	return nil
}

func expAblation(ctx context.Context, ins []*bench.Instance) error {
	fmt.Println("Ablation A: reduction cutoff CR at CA=0.97")
	fmt.Println("(constants preserved relative to CR=1, and reduced graph size)")
	crs := []float64{0, 0.5, 0.9, 0.95, 1.0}
	pts, err := bench.CRSweep(ctx, ins, crs)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s", "Program", "")
	for _, cr := range crs {
		fmt.Printf(" %11.2f", cr)
	}
	fmt.Println()
	byName := map[string][]bench.CRPoint{}
	var order []string
	for _, p := range pts {
		if _, ok := byName[p.Name]; !ok {
			order = append(order, p.Name)
		}
		byName[p.Name] = append(byName[p.Name], p)
	}
	for _, name := range order {
		fmt.Printf("%-10s %8s", name, "kept")
		for _, p := range byName[name] {
			fmt.Printf("      %5.1f%%", 100*p.Preserved)
		}
		fmt.Println()
		fmt.Printf("%-10s %8s", "", "nodes")
		for _, p := range byName[name] {
			fmt.Printf(" %11d", p.RedNodes)
		}
		fmt.Println()
	}

	fmt.Println("\nAblation B: branches with constant conditions (§7, Mueller-Whalley)")
	brs, err := bench.Branches(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s %12s %12s\n", "Program", "base dyn", "qualified dyn", "base sites", "qual sites")
	for _, r := range brs {
		fmt.Printf("%-10s %14d %14d %12d %12d\n", r.Name, r.BaseDyn, r.QualDyn, r.BaseStatic, r.QualStatic)
	}

	fmt.Println("\nAblation C: qualified sign analysis (§8: other data-flow problems)")
	srs, err := bench.Signs(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s %9s\n", "Program", "base dyn", "qualified dyn", "gain")
	for _, r := range srs {
		fmt.Printf("%-10s %14d %14d %+8.2f%%\n", r.Name, r.BaseDyn, r.QualDyn, 100*r.Gain)
	}

	fmt.Println("\nAblation C2: qualified value-range analysis (widening lattice)")
	rrs, err := bench.Ranges(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s %9s\n", "Program", "base dyn", "qualified dyn", "gain")
	for _, r := range rrs {
		fmt.Printf("%-10s %14d %14d %+8.2f%%\n", r.Name, r.BaseDyn, r.QualDyn, 100*r.Gain)
	}

	fmt.Println("\nAblation D: Wegman-Zadek conditional vs plain iterative propagation on the rHPG")
	prs, err := bench.Propagation(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s\n", "Program", "plain dyn", "conditional")
	for _, r := range prs {
		fmt.Printf("%-10s %14d %14d\n", r.Name, r.PlainDyn, r.CondDyn)
	}

	fmt.Println("\nAblation E: hot paths from true path profiles vs edge-profile estimation")
	ers, err := bench.EdgeSelection(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %14s %10s %16s\n", "Program", "path-prof dyn", "edge-est dyn", "paths p/e", "real edge paths")
	for _, r := range ers {
		fmt.Printf("%-10s %14d %14d %5d/%-5d %10d/%d\n",
			r.Name, r.PathDyn, r.EdgeDyn, r.PathHot, r.EdgeHot, r.EdgeReal, r.EdgeHot)
	}
	return nil
}

// expClients extends the Figure-7 methodology to the non-constant
// clients: dynamically-weighted dead stores (backward liveness) and
// redundant recomputations (forward available expressions), CFG vs the
// reduced hot path graph.
func expClients(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Clients(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Client analyses on the rHPG: dead stores (backward liveness)")
	fmt.Println("and redundant expressions (forward availability), weighted by")
	fmt.Println("the ref profile (CA=0.97, CR=0.95)")
	fmt.Printf("%-10s %25s %25s\n", "", "dead stores dyn", "redundant exprs dyn")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "Program", "CFG", "rHPG", "CFG", "rHPG")
	for _, r := range rows {
		fmt.Printf("%-10s %12d %12d %12d %12d\n",
			r.Name, r.LiveBaseDyn, r.LiveQualDyn, r.AvailBaseDyn, r.AvailQualDyn)
	}
	return nil
}

// expFeasible runs the two-axis precision ablation: for every client,
// the number of original CFG vertices about which an axis combination
// learned something strictly more precise than the plain CFG solution —
// the frequency axis alone (unmasked rHPG), the feasibility axis alone
// (infeasible-edge-masked CFG — no profile), and both composed (the
// combined configuration's artifacts: masked CFG plus masked rHPG).
// All three columns count on the shared CFG-vertex universe, so they
// compare directly; see bench.FeasibleClient.
func expFeasible(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Feasible(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Feasible-path qualification: CFG vertices with strictly improved facts")
	fmt.Println("(per client; freq = unmasked reduced HPG at CA=0.97/CR=0.95, feas =")
	fmt.Println(" infeasible-edge pruning on the original CFG — no profile, both =")
	fmt.Println(" masked CFG + masked reduced HPG combined; all columns count")
	fmt.Println(" original CFG vertices; 'edges' = infeasible edges found cfg/rhpg)")
	fmt.Printf("%-10s %-10s %8s %8s %8s %12s %11s\n",
		"Program", "client", "freq", "feas", "both", "edges", "detect")
	for _, r := range rows {
		for i, c := range r.Clients {
			name, edges, det := "", "", ""
			if i == 0 {
				name = r.Name
				edges = fmt.Sprintf("%d/%d", r.InfeasibleCFG, r.InfeasibleRed)
				det = r.DetectTime.Round(10 * time.Microsecond).String()
			}
			fmt.Printf("%-10s %-10s %8d %8d %8d %12s %11s\n",
				name, c.Client, c.FreqOnly, c.FeasOnly, c.Both, edges, det)
		}
	}
	return nil
}

// expStreaming measures drift-triggered requalification: per benchmark,
// a cold analysis fills a fresh engine's cache, then four streamed
// hot-set-flipping counter batches land on a decaying accumulator set
// and the program re-analyzes under per-function delta classes. The
// contract the table makes visible: every round's 'computed' stays far
// below the cold run's while 'replayed' absorbs the rest — only the
// drifted function's StageSelect-downstream suffix recomputes.
func expStreaming(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Streaming(ctx, ins, 4)
	if err != nil {
		return err
	}
	fmt.Println("Streaming drift requalification (CA=0.97, CR=0.95; 4 rounds of")
	fmt.Println("hot-set-flipping counter deltas per benchmark; computed/replayed")
	fmt.Println("count pipeline stage executions — fresh vs served from cache)")
	fmt.Printf("%-10s %6s %7s %7s %9s %9s %11s\n",
		"Program", "round", "drift", "requal", "computed", "replayed", "time")
	for _, r := range rows {
		fmt.Printf("%-10s %6s %7s %7s %9d %9s %11s\n",
			r.Name, "cold", "-", "-", r.ColdComputed, "-",
			r.ColdTime.Round(10*time.Microsecond))
		for _, sr := range r.Rounds {
			fmt.Printf("%-10s %6d %7d %7d %9d %9d %11s\n",
				"", sr.Round, sr.Drifted, sr.Requalified, sr.Computed, sr.Replayed,
				sr.Time.Round(10*time.Microsecond))
		}
	}
	return nil
}

func expTable1(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Table1(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: general information about the benchmarks")
	fmt.Println("(Nodes: CFG nodes; Paths: Ball-Larus paths executed in training;")
	fmt.Println(" Hot Paths: paths covering 97% of training instructions;")
	fmt.Println(" Compile: front end + instrumented training run; Anal.: CA=0 analysis)")
	fmt.Printf("%-10s %7s %7s %10s %12s %12s\n", "Program", "Nodes", "Paths", "Hot Paths", "Compile", "Anal. Time")
	for _, r := range rows {
		fmt.Printf("%-10s %7d %7d %10d %12s %12s\n",
			r.Name, r.Nodes, r.Paths, r.HotPaths,
			r.CompileTime.Round(time.Microsecond), r.AnalTime.Round(time.Microsecond))
	}
	return nil
}

func expTable2(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Table2(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Table 2: effect of path-qualified constant propagation on run time")
	fmt.Println("(modeled cycles on the ref input; CA=0.97, CR=0.95;")
	fmt.Println(" Base: Wegman-Zadek folding; Optimized: path-qualified folding)")
	fmt.Printf("%-10s %12s %12s %9s %11s %10s\n", "Program", "Base", "Optimized", "Speedup", "Folds(b/o)", "Code(b/o)")
	for _, r := range rows {
		fmt.Printf("%-10s %12d %12d %+8.2f%% %5d/%-5d %4d/%-4d\n",
			r.Name, r.BaseCycles, r.OptCycles, 100*r.Speedup,
			r.BaseFolded, r.OptFolded, r.BaseFootprint, r.OptFootprint)
	}
	return nil
}

func expFig7(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Fig7(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Figure 7: cumulative distribution of dynamic executions of")
	fmt.Println("non-local constant instructions by (HPG) basic block, CA=1")
	fmt.Printf("%-10s %7s | blocks needed for coverage of\n", "Program", "blocks")
	fmt.Printf("%-10s %7s | %6s %6s %6s %6s\n", "", "w/const", "50%", "90%", "99%", "100%")
	for _, r := range rows {
		need := func(f float64) int {
			for _, p := range r.Points {
				if p.Fraction >= f {
					return p.Blocks
				}
			}
			return 0
		}
		fmt.Printf("%-10s %7d | %6d %6d %6d %6d\n",
			r.Name, len(r.Points), need(0.5), need(0.9), need(0.99), need(1.0))
	}
	return nil
}

func expFig9(ctx context.Context, ins []*bench.Instance) error {
	pts, err := bench.Fig9(ctx, ins, bench.CoverageLevels, 0.95)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9: increase in dynamic instructions with constant results")
	fmt.Println("vs. path coverage CA (baseline: Wegman-Zadek at CA=0); the")
	fmt.Println("'ratio' column is qualified/baseline non-local constants")
	fmt.Printf("%-10s", "Program")
	for _, ca := range bench.CoverageLevels {
		fmt.Printf(" %8.4f", ca)
	}
	fmt.Printf(" %10s\n", "ratio@1.0")
	byName := map[string][]bench.Fig9Point{}
	var order []string
	for _, p := range pts {
		if _, ok := byName[p.Name]; !ok {
			order = append(order, p.Name)
		}
		byName[p.Name] = append(byName[p.Name], p)
	}
	for _, name := range order {
		fmt.Printf("%-10s", name)
		var ratio float64
		for _, p := range byName[name] {
			fmt.Printf(" %+7.2f%%", 100*p.ConstIncrease)
			if p.CA == 1.0 {
				ratio = p.NonlocalRatio
			}
		}
		fmt.Printf(" %9.1fx\n", ratio)
	}
	return nil
}

func expFig10(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Fig10(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Figure 10: fraction of dynamic instructions per Figure 13")
	fmt.Println("category (qualified analysis at CA=1)")
	fmt.Printf("%-10s", "Program")
	for c := classify.Category(0); c < classify.NumCategories; c++ {
		fmt.Printf(" %10s", c)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Name)
		for c := classify.Category(0); c < classify.NumCategories; c++ {
			fmt.Printf(" %9.2f%%", 100*r.Report.Frac(c))
		}
		fmt.Println()
	}
	return nil
}

func expFig11(ctx context.Context, ins []*bench.Instance) error {
	pts, err := bench.Fig11(ctx, ins, bench.CoverageLevels, 0.95)
	if err != nil {
		return err
	}
	fmt.Println("Figure 11: increase in CFG nodes before (HPG) and after (rHPG)")
	fmt.Println("reduction vs. path coverage CA")
	fmt.Printf("%-10s %8s", "Program", "graph")
	for _, ca := range bench.CoverageLevels {
		fmt.Printf(" %8.4f", ca)
	}
	fmt.Println()
	byName := map[string][]bench.Fig11Point{}
	var order []string
	for _, p := range pts {
		if _, ok := byName[p.Name]; !ok {
			order = append(order, p.Name)
		}
		byName[p.Name] = append(byName[p.Name], p)
	}
	for _, name := range order {
		fmt.Printf("%-10s %8s", name, "HPG")
		for _, p := range byName[name] {
			fmt.Printf(" %+7.1f%%", 100*p.HPGGrowth)
		}
		fmt.Println()
		fmt.Printf("%-10s %8s", "", "rHPG")
		for _, p := range byName[name] {
			fmt.Printf(" %+7.1f%%", 100*p.RedGrowth)
		}
		fmt.Println()
	}
	return nil
}

func expFig12(ctx context.Context, ins []*bench.Instance) error {
	pts, err := bench.Fig12(ctx, ins, bench.CoverageLevels, 0.95)
	if err != nil {
		return err
	}
	fmt.Println("Figure 12: qualified analysis cost vs. path coverage CA")
	fmt.Println("(relative to CA=0; 'iters' rows use deterministic solver")
	fmt.Println("iteration counts, 'time' rows wall clock)")
	fmt.Printf("%-10s %6s", "Program", "")
	for _, ca := range bench.CoverageLevels {
		fmt.Printf(" %8.4f", ca)
	}
	fmt.Println()
	byName := map[string][]bench.Fig12Point{}
	var order []string
	for _, p := range pts {
		if _, ok := byName[p.Name]; !ok {
			order = append(order, p.Name)
		}
		byName[p.Name] = append(byName[p.Name], p)
	}
	for _, name := range order {
		fmt.Printf("%-10s %6s", name, "iters")
		for _, p := range byName[name] {
			fmt.Printf(" %7.2fx", p.Iterations)
		}
		fmt.Println()
		fmt.Printf("%-10s %6s", "", "time")
		for _, p := range byName[name] {
			fmt.Printf(" %7.2fx", p.TimeRatio)
		}
		fmt.Println()
	}
	return nil
}

// expKernels compares the packed arena kernels against the boxed
// reference solver and the sparse def-use kernel on every benchmark's
// analysis-tier graphs, with the oracle's differential gate asserting
// pointwise-identical solutions for all four clients before any timing
// is believed. The second block makes the sparse work reduction
// visible per client: worklist pops and node transfers, dense vs
// sparse, summed over each benchmark's graph set.
func expKernels(ctx context.Context, ins []*bench.Instance) error {
	rows, err := bench.Kernels(ctx, ins)
	if err != nil {
		return err
	}
	fmt.Println("Kernel backends: boxed reference vs packed arena kernels vs sparse def-use")
	fmt.Println("(constant propagation over each benchmark's analyze-stage graphs;")
	fmt.Println(" 'checked' vertices passed the 4-client pointwise differential gate;")
	fmt.Println(" speedup = boxed/packed, sp-up = packed/sparse)")
	fmt.Printf("%-10s %7s %12s %12s %12s %8s %7s %9s\n",
		"Program", "nodes", "boxed", "packed", "sparse", "speedup", "sp-up", "checked")
	for _, r := range rows {
		fmt.Printf("%-10s %7d %12s %12s %12s %7.2fx %6.2fx %9d\n",
			r.Name, r.Nodes, r.Boxed.Round(10*time.Microsecond), r.Packed.Round(10*time.Microsecond),
			r.Sparse.Round(10*time.Microsecond), r.Speedup, r.SparseSpeedup, r.Checked)
	}
	fmt.Println()
	fmt.Println("Solver work per client (worklist pops / node transfers over the graph set)")
	fmt.Printf("%-10s %-10s %16s %16s %10s\n", "Program", "client", "dense", "sparse", "transfers")
	for _, r := range rows {
		for _, w := range r.Work {
			ratio := 1.0
			if w.DenseIters > 0 {
				ratio = float64(w.SparseIters) / float64(w.DenseIters)
			}
			fmt.Printf("%-10s %-10s %7d/%-8d %7d/%-8d %9.0f%%\n",
				r.Name, w.Client, w.DensePops, w.DenseIters, w.SparsePops, w.SparseIters, 100*ratio)
		}
	}
	return nil
}
