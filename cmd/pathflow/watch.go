package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/watch"
)

// cmdWatch implements `pathflow watch -src file`: continuous
// re-analysis of a source file under edit. One engine (and artifact
// cache) lives across rounds; every detected change is diffed against
// the previous round and each function re-analyzes under its
// classified delta, so the printed report shows exactly which stages
// an edit replayed versus recomputed — the interactive form of
// `analyze -baseline`.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	ca := fs.Float64("ca", 0.97, "hot-path coverage CA")
	cr := fs.Float64("cr", 0.95, "reduction benefit cutoff CR")
	workers := fs.Int("workers", 0, "parallel function analyses (0 = NumCPU)")
	clientsFlag := fs.String("clients", "none", "extra data-flow clients to run: none, liveness, availexpr, all")
	kernelFlag := fs.String("kernel", "packed", "data-flow solver backend: packed, boxed, or sparse")
	feasible := fs.Bool("feasible", false, "run the feasible-path qualification pass")
	profFile := fs.String("profile", "", "watch this saved profile (bl JSON) too and re-analyze when it changes")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll period for file changes")
	rounds := fs.Int("rounds", 0, "exit after N change-triggered re-analyses (0 = watch until interrupted)")
	cflags := addCacheFlags(fs, "")
	tg, err := parseTarget(fs, args)
	if err != nil {
		return err
	}
	srcPath := fs.Lookup("src").Value.String()
	if srcPath == "" {
		return fmt.Errorf("watch requires -src <file> (a file to watch for edits)")
	}
	clients, err := engine.ParseClients(*clientsFlag)
	if err != nil {
		return err
	}
	kern, err := engine.ParseKernel(*kernelFlag)
	if err != nil {
		return err
	}
	o := engine.Options{CA: *ca, CR: *cr, Clients: clients, Kernel: kern, Feasible: *feasible}
	if err := o.Validate(); err != nil {
		return err
	}
	ecfg, err := cflags.engineConfig(*workers, true)
	if err != nil {
		return err
	}
	eng, err := engine.Open(ecfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("watching %s @ CA=%.2f CR=%.2f (poll %s)\n", srcPath, *ca, *cr, *interval)
	fmt.Printf("%-5s %-12s %-8s %-6s %9s %10s  %s\n",
		"round", "function", "delta", "requal", "replayed", "recomputed", "replayed stages")
	r := watch.NewRunner(eng, watch.Config{
		SrcPath:     srcPath,
		ProfilePath: *profFile,
		Train: func(prog *cfg.Program) (*bl.ProgramProfile, error) {
			pp, _, err := bl.ProfileProgram(prog, tg.fresh())
			return pp, err
		},
		Interval: *interval,
		Rounds:   *rounds,
		Options:  o,
		OnRound: func(round int, changed []string) {
			fmt.Printf("round %d: changed %s\n", round, strings.Join(changed, ", "))
		},
		OnEvent: func(ev watch.Event) {
			requal := "-"
			if ev.Requalify {
				requal = "yes"
			}
			fmt.Printf("%-5d %-12s %-8s %-6s %9d %10d  %s\n",
				ev.Round, ev.Func, ev.Class, requal, ev.Replayed, ev.Recomputed,
				strings.Join(ev.ReplayedStages, ","))
		},
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "pathflow: watch: %v (still watching)\n", err)
		},
	})
	return r.Run(ctx)
}
