package main

import (
	"flag"
	"fmt"

	"pathflow/internal/core"
	"pathflow/internal/machine"
	"pathflow/internal/opt"
)

// cmdOpt runs the end-to-end optimization: profile on the training
// input, qualify, fold constants, and compare the modeled run time of
// the Wegman-Zadek baseline against the path-qualified program (a
// single-program Table 2, with cost components broken out).
func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ContinueOnError)
	ca := fs.Float64("ca", 0.97, "hot-path coverage CA")
	cr := fs.Float64("cr", 0.95, "reduction benefit cutoff CR")
	tg, err := parseTarget(fs, args)
	if err != nil {
		return err
	}
	res, _, err := core.ProfileAndAnalyze(tg.prog, tg.opts, core.Options{CA: *ca, CR: *cr})
	if err != nil {
		return err
	}
	baseProg, baseFolds := core.BaselineProgram(tg.prog, opt.PassesAll)
	optProg, optFolds := res.OptimizedProgram(opt.PassesAll)

	cm := machine.DefaultCostModel()
	cc := machine.DefaultICache()
	// Each simulation gets a fresh copy of the input stream.
	evalOpts := tg.fresh()
	evalOpts.CollectOutput = true
	baseSim, baseRes, err := machine.Simulate(baseProg, evalOpts, cm, cc)
	if err != nil {
		return err
	}
	evalOpts2 := tg.fresh()
	evalOpts2.CollectOutput = true
	optSim, optRes, err := machine.Simulate(optProg, evalOpts2, cm, cc)
	if err != nil {
		return err
	}
	if len(baseRes.Output) != len(optRes.Output) {
		return fmt.Errorf("optimized output diverged: %d vs %d values", len(baseRes.Output), len(optRes.Output))
	}
	for i := range baseRes.Output {
		if baseRes.Output[i] != optRes.Output[i] {
			return fmt.Errorf("optimized output diverged at %d: %d vs %d", i, baseRes.Output[i], optRes.Output[i])
		}
	}
	fmt.Printf("%s @ CA=%.2f CR=%.2f (output verified identical: %v)\n\n", tg.name, *ca, *cr, optRes.Output)
	fmt.Printf("%-22s %15s %15s\n", "", "Wegman-Zadek", "path-qualified")
	row := func(label string, a, b int64) { fmt.Printf("%-22s %15d %15d\n", label, a, b) }
	row("const folds", int64(baseFolds.Const), int64(optFolds.Const))
	row("interval folds", int64(baseFolds.Interval), int64(optFolds.Interval))
	row("dead deleted", int64(baseFolds.Dead), int64(optFolds.Dead))
	row("rewritten total", int64(baseFolds.Total()), int64(optFolds.Total()))
	row("code size (slots)", baseSim.Footprint, optSim.Footprint)
	row("compute cycles", baseSim.ComputeCycles, optSim.ComputeCycles)
	row("i-cache misses", baseSim.Misses, optSim.Misses)
	row("broken fallthroughs", baseSim.TakenTransfers, optSim.TakenTransfers)
	row("total cycles", baseSim.Cycles, optSim.Cycles)
	fmt.Printf("\nspeedup: %+.2f%%\n",
		100*float64(baseSim.Cycles-optSim.Cycles)/float64(baseSim.Cycles))
	return nil
}
