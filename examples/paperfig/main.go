// Paperfig reproduces the running example of Ammons & Larus (PLDI 1998)
// end to end, printing the artifacts behind Figures 1-8:
//
//	Figure 1 — the example CFG and its recording edges
//	Figure 2 — the path profile
//	Figure 3 — the retrieval tree (qualification automaton)
//	Figure 5 — the hot path graph and its new constants
//	Figure 6 — the translated path profile
//	Figure 8 — the reduced hot path graph
//
//	go run ./examples/paperfig
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"pathflow/internal/automaton"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
	"pathflow/internal/reduce"
	"pathflow/internal/trace"
)

func main() {
	fn, _, edges := paperex.Build()
	R := paperex.Recording(edges)

	fmt.Println("== Figure 1: the control-flow graph ==")
	fmt.Print(fn.G.String())
	var recNames []string
	for name := range edges {
		if R[edges[name]] {
			recNames = append(recNames, name)
		}
	}
	sort.Strings(recNames)
	fmt.Printf("recording edges: %s\n\n", strings.Join(recNames, ", "))

	fmt.Println("== Figure 2: the path profile ==")
	pr := paperex.Profile(edges)
	fmt.Print(pr.String(fn.G))
	fmt.Println()

	fmt.Println("== Figure 3: the retrieval tree ==")
	ps := paperex.Paths(edges)
	auto, err := automaton.New(fn.G, R, ps[:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d states (q• plus 17 trie states), %d keywords\n",
		auto.NumStates(), auto.NumKeywords())
	fmt.Print(auto.Dot(fn.G))
	fmt.Println()

	fmt.Println("== Figure 5: the hot path graph ==")
	h, err := trace.Build(fn, auto)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, nd := range h.G.Nodes {
		names = append(names, nd.Name)
	}
	sort.Strings(names)
	fmt.Printf("%d vertices: %s\n", h.G.NumNodes(), strings.Join(names, " "))
	fmt.Printf("reducible? original=%v traced=%v\n\n", fn.G.Reducible(), h.G.Reducible())

	sol := constprop.Analyze(h.G, fn.NumVars(), true)
	fmt.Println("new constants on the HPG (none exist in the original graph):")
	printConsts(h.G, sol, fn.VarNames, fn.NumVars())
	fmt.Println()

	fmt.Println("== Figure 6: the translated path profile ==")
	tp, err := profile.Translate(pr, fn.G, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tp.String(h.G))
	fmt.Println()

	fmt.Println("== Section 5 / Figure 8: reduction ==")
	// CR = 0.6 makes H13 and H14 the only hot vertices, as in the text.
	red, err := reduce.Reduce(h, sol, tp, reduce.Options{CR: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	weights := map[string]int64{}
	for _, nd := range h.G.Nodes {
		if red.Weights[nd.ID] > 0 {
			weights[nd.Name] = red.Weights[nd.ID]
		}
	}
	fmt.Printf("vertex weights: %v\n", weights)
	var hot []string
	for _, n := range red.Hot {
		hot = append(hot, h.G.Node(n).Name)
	}
	sort.Strings(hot)
	fmt.Printf("hot vertices at CR=0.6: %s\n", strings.Join(hot, ", "))

	var classes []string
	for _, members := range red.Members {
		var ms []string
		for _, m := range members {
			ms = append(ms, h.G.Node(m).Name)
		}
		sort.Strings(ms)
		classes = append(classes, "{"+strings.Join(ms, ",")+"}")
	}
	sort.Strings(classes)
	fmt.Printf("final partition (%d classes): %s\n", len(classes), strings.Join(classes, " "))
	fmt.Printf("reduced graph: %d vertices (HPG had %d, original %d)\n\n",
		red.G.NumNodes(), h.G.NumNodes(), fn.G.NumNodes())

	rsol := constprop.Analyze(red.G, fn.NumVars(), true)
	fmt.Println("constants preserved on the reduced graph:")
	printConsts(red.G, rsol, fn.VarNames, fn.NumVars())
}

func printConsts(g *cfg.Graph, sol *constprop.Result, varNames []string, numVars int) {
	type row struct{ name, text string }
	var rows []row
	for _, nd := range g.Nodes {
		if !sol.Reached(nd.ID) {
			continue
		}
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), numVars, true)
		vals := sol.InstrValues(nd.ID)
		for i := range nd.Instrs {
			if !flags[i] {
				continue
			}
			in := &nd.Instrs[i]
			name := fmt.Sprintf("v%d", in.Dst)
			if int(in.Dst) < len(varNames) && varNames[in.Dst] != "" {
				name = varNames[in.Dst]
			}
			rows = append(rows, row{nd.Name, fmt.Sprintf("  %-6s %s = %d", nd.Name, name, vals[i].K)})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].text < rows[j].text })
	for _, r := range rows {
		fmt.Println(r.text)
	}
}
