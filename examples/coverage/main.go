// Coverage sweeps the CA parameter on one benchmark and prints the
// precision-versus-growth tradeoff the paper's Figures 9 and 11 chart:
// how many more constant instructions the qualified analysis finds, and
// what the duplication costs in graph size, as hot-path coverage rises.
//
//	go run ./examples/coverage [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pathflow/internal/bench"
	"pathflow/internal/engine"
)

func main() {
	ctx := context.Background()
	name := "m88ksim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := bench.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	// nil engine = the default: NumCPU workers plus the artifact cache,
	// so each sweep point below recomputes only what its CA changes.
	in, err := bench.Load(b, nil)
	if err != nil {
		log.Fatal(err)
	}

	base, err := in.Analyze(ctx, engine.Options{CA: 0, CR: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	bm, err := in.Evaluate(base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d CFG nodes, baseline finds %d dynamic non-local constants\n\n",
		name, bm.OrigNodes, bm.NonlocalConstDyn)
	fmt.Printf("%8s %12s %12s %10s %10s %10s\n",
		"CA", "const dyn", "nonlocal", "increase", "HPG", "rHPG")
	for _, ca := range bench.CoverageLevels {
		res, err := in.Analyze(ctx, engine.Options{CA: ca, CR: 0.95})
		if err != nil {
			log.Fatal(err)
		}
		m, err := in.Evaluate(res)
		if err != nil {
			log.Fatal(err)
		}
		incr := 0.0
		if bm.ConstDyn > 0 {
			incr = 100 * float64(m.ConstDyn-bm.ConstDyn) / float64(bm.ConstDyn)
		}
		fmt.Printf("%8.4f %12d %12d %+9.2f%% %+9.1f%% %+9.1f%%\n",
			ca, m.ConstDyn, m.NonlocalConstDyn, incr,
			100*float64(m.HPGNodes-m.OrigNodes)/float64(m.OrigNodes),
			100*float64(m.RedNodes-m.OrigNodes)/float64(m.OrigNodes))
	}
	fmt.Println("\nNote how most of the precision arrives well before full coverage,")
	fmt.Println("while graph growth keeps climbing — the tradeoff behind the paper's")
	fmt.Println("recommendation of CA ≈ 0.97.")
}
