// Quickstart: compile a small program, profile it, run the
// path-qualification pipeline, and print the constants that only
// path-qualified analysis can see.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pathflow/internal/constprop"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
)

// The mode branch is heavily biased: in the training input, mode is
// almost always 0, so scale/window are 8 and 3 along the hot path — but
// no conventional analysis can know that, because the cold path assigns
// them from input().
const src = `
func main() {
	n = arg(0);
	i = 0;
	total = 0;
	while (i < n) {
		mode = input() % 10;
		if (mode < 9) {
			scale = 8;
			window = 3;
		} else {
			scale = input() % 32;
			window = input() % 5;
		}
		span = scale * window + 1;   // 25 on the hot path
		total = total + span + (input() % scale + 1);
		i = i + 1;
	}
	print(total);
}
`

func main() {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Training input: a deterministic stream; arg(0)=500 iterations.
	train := interp.Options{
		Args:  []ir.Value{500},
		Input: &interp.SliceInput{Values: trainingStream()},
	}

	// One call profiles the program and runs the whole staged pipeline:
	// hot-path selection at CA, Aho-Corasick automaton, Holley-Rosen
	// tracing, Wegman-Zadek on the hot path graph, and reduction at CR.
	// (internal/core offers the same call without the context for legacy
	// callers; the engine adds cancellation, parallelism and caching.)
	eng := engine.New(engine.Config{Cache: true})
	res, _, err := eng.ProfileAndAnalyze(context.Background(), prog, train,
		engine.Options{CA: 0.97, CR: 0.95})
	if err != nil {
		log.Fatal(err)
	}

	fr := res.Funcs["main"]
	fmt.Printf("original CFG: %d nodes\n", fr.Fn.G.NumNodes())
	if !fr.Qualified() {
		log.Fatal("no hot paths found")
	}
	fmt.Printf("hot paths:    %d (automaton: %d states)\n", len(fr.Hot), fr.Auto.NumStates())
	fmt.Printf("hot path graph: %d nodes; reduced: %d nodes\n\n",
		fr.HPG.G.NumNodes(), fr.Red.G.NumNodes())

	// Print every non-local constant the qualified analysis discovered.
	g := fr.Red.G
	sol := fr.RedSol
	fmt.Println("non-local constants on the reduced hot path graph:")
	for _, nd := range g.Nodes {
		if !sol.Reached(nd.ID) {
			continue
		}
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), fr.Fn.NumVars(), true)
		vals := sol.InstrValues(nd.ID)
		for i := range nd.Instrs {
			if flags[i] {
				in := &nd.Instrs[i]
				fmt.Printf("  block %-6s %s = %d\n", nd.Name, fr.Fn.VarName(in.Dst), vals[i].K)
			}
		}
	}

	// The baseline Wegman-Zadek analysis finds none of these.
	base := constprop.Analyze(fr.Fn.G, fr.Fn.NumVars(), true)
	n := 0
	for _, nd := range fr.Fn.G.Nodes {
		flags := constprop.ConstFlags(fr.Fn.G, nd.ID, base.EnvAt(nd.ID), fr.Fn.NumVars(), true)
		for _, f := range flags {
			if f {
				n++
			}
		}
	}
	fmt.Printf("\nWegman-Zadek on the original graph finds %d non-local constants\n", n)
}

func trainingStream() []ir.Value {
	// 9-of-10 iterations take the hot mode.
	var vals []ir.Value
	x := uint64(42)
	for i := 0; i < 4096; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals = append(vals, ir.Value(x&0x7fffffff))
	}
	return vals
}
