// Optimize runs the end-to-end optimization experiment on one benchmark:
// profile on the train input, qualify at CA=0.97/CR=0.95, fold the
// discovered constants, and compare modeled run time against the
// Wegman-Zadek baseline on the ref input — one row of the paper's
// Table 2, with the cost components broken out.
//
//	go run ./examples/optimize [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pathflow/internal/bench"
	"pathflow/internal/engine"
	"pathflow/internal/machine"
	"pathflow/internal/opt"
)

func main() {
	name := "m88ksim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := bench.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	in, err := bench.Load(b, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := in.Analyze(context.Background(), engine.Options{CA: 0.97, CR: 0.95})
	if err != nil {
		log.Fatal(err)
	}

	baseProg, baseFolds := engine.BaselineProgram(in.Prog, opt.PassesAll)
	optProg, optFolds := res.OptimizedProgram(opt.PassesAll)

	cm := machine.DefaultCostModel()
	cc := machine.DefaultICache()
	baseOpts := b.RefOptions()
	baseOpts.CollectOutput = true
	baseSim, baseRes, err := machine.Simulate(baseProg, baseOpts, cm, cc)
	if err != nil {
		log.Fatal(err)
	}
	optOpts := b.RefOptions()
	optOpts.CollectOutput = true
	optSim, optRes, err := machine.Simulate(optProg, optOpts, cm, cc)
	if err != nil {
		log.Fatal(err)
	}

	// Observational equivalence is the pipeline's soundness contract.
	if len(baseRes.Output) != len(optRes.Output) {
		log.Fatalf("output diverged: %d vs %d values", len(baseRes.Output), len(optRes.Output))
	}
	for i := range baseRes.Output {
		if baseRes.Output[i] != optRes.Output[i] {
			log.Fatalf("output diverged at %d: %d vs %d", i, baseRes.Output[i], optRes.Output[i])
		}
	}

	fmt.Printf("benchmark %s on the ref input (output: %v)\n\n", name, baseRes.Output)
	fmt.Printf("%-22s %15s %15s\n", "", "Wegman-Zadek", "path-qualified")
	row := func(label string, a, b int64) {
		fmt.Printf("%-22s %15d %15d\n", label, a, b)
	}
	row("const folds", int64(baseFolds.Const), int64(optFolds.Const))
	row("interval folds", int64(baseFolds.Interval), int64(optFolds.Interval))
	row("dead deleted", int64(baseFolds.Dead), int64(optFolds.Dead))
	row("code size (slots)", baseSim.Footprint, optSim.Footprint)
	row("compute cycles", baseSim.ComputeCycles, optSim.ComputeCycles)
	row("i-cache misses", baseSim.Misses, optSim.Misses)
	row("broken fallthroughs", baseSim.TakenTransfers, optSim.TakenTransfers)
	row("total cycles", baseSim.Cycles, optSim.Cycles)
	speedup := 100 * float64(baseSim.Cycles-optSim.Cycles) / float64(baseSim.Cycles)
	fmt.Printf("\nspeedup: %+.2f%%\n", speedup)
	if speedup < 0 {
		fmt.Println("(a slowdown: the duplicated code's cache and layout costs outweigh")
		fmt.Println(" the folded constants — the tradeoff §6.1.1 of the paper discusses)")
	}
}
