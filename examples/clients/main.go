// Clients demonstrates that path qualification is analysis-agnostic
// (paper §8): the same hot path graph sharpens three different data-flow
// problems — constant propagation, sign analysis and value-range
// analysis — without any of them knowing about paths.
//
//	go run ./examples/clients
package main

import (
	"fmt"
	"log"

	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/core"
	"pathflow/internal/interp"
	"pathflow/internal/intervals"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile"
	"pathflow/internal/signs"
)

// The hot branch pins gain (a constant), keeps delta positive, and keeps
// level inside a small window; the cold branch destroys all three facts.
// Only path qualification can see any of it.
const src = `
func main() {
	n = arg(0);
	i = 0;
	acc = 0;
	while (i < n) {
		m = input() % 10;
		if (m < 9) {
			gain = 12;
			delta = (input() % 5) + 10;
			level = input() % 16;
		} else {
			gain = input();
			delta = input() - 100;
			level = input();
		}
		boost = gain * 2;      // constant 24 on the hot path
		step = delta * delta;  // positive on the hot path
		cap = level + 16;      // within [16,31] on the hot path
		acc = acc + boost + step + cap;
		i = i + 1;
	}
	print(acc);
}`

func main() {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	train := interp.Options{
		Args:  []ir.Value{400},
		Input: &interp.SliceInput{Values: stream(11)},
	}
	res, trainPP, err := core.ProfileAndAnalyze(prog, train, core.Options{CA: 0.97, CR: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	fr := res.Funcs["main"]
	if !fr.Qualified() {
		log.Fatal("no hot paths")
	}
	fn := fr.Fn
	g := fr.Red.G
	fmt.Printf("original CFG %d nodes; reduced hot path graph %d nodes\n\n",
		fn.G.NumNodes(), g.NumNodes())

	// Weight everything with the training profile translated onto the
	// reduced graph.
	ep, err := fr.TranslateEval(trainPP.Funcs["main"])
	if err != nil {
		log.Fatal(err)
	}
	baseFreq := profile.NodeFrequencies(trainPP.Funcs["main"], fn.G)
	qualFreq := profile.NodeFrequencies(ep, g)

	fmt.Printf("%-22s %16s %16s\n", "client", "baseline (dyn)", "qualified (dyn)")

	// Constant propagation.
	cBase := constprop.Analyze(fn.G, fn.NumVars(), true)
	cQual := fr.RedSol
	fmt.Printf("%-22s %16d %16d\n", "non-local constants",
		countConst(fn, fn.G, cBase, baseFreq), countConst(fn, g, cQual, qualFreq))

	// Sign analysis.
	sBase := signs.Analyze(fn.G, fn.NumVars(), true)
	sQual := signs.Analyze(g, fn.NumVars(), true)
	_, sb := signs.DefiniteCount(fn.G, sBase, baseFreq)
	_, sq := signs.DefiniteCount(g, sQual, qualFreq)
	fmt.Printf("%-22s %16d %16d\n", "definite signs", sb, sq)

	// Range analysis.
	iBase := intervals.Analyze(fn.G, fn.NumVars(), true)
	iQual := intervals.Analyze(g, fn.NumVars(), true)
	_, ib := intervals.BoundedCount(fn.G, iBase, baseFreq)
	_, iq := intervals.BoundedCount(g, iQual, qualFreq)
	fmt.Printf("%-22s %16d %16d\n", "bounded ranges", ib, iq)

	// Show the concrete facts at every executed duplicate of the block
	// computing boost/step/cap: the hot duplicate carries sharp facts,
	// the merged cold one carries none.
	fmt.Println("\nfacts at the executed duplicates of the boost/step/cap block:")
	for _, nd := range g.Nodes {
		if qualFreq[nd.ID] == 0 || !writesVar(fn, nd, "boost") {
			continue
		}
		cpVals := cQual.InstrValues(nd.ID)
		sgVals := sQual.InstrSigns(nd.ID)
		ivVals := iQual.InstrIntervals(nd.ID)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if !in.HasDst() {
				continue
			}
			switch fn.VarName(in.Dst) {
			case "boost", "step", "cap":
				fmt.Printf("  %-5s @ %-7s (×%d)  const=%-6v sign=%-7v range=%v\n",
					fn.VarName(in.Dst), nd.Name, qualFreq[nd.ID], cpVals[i], sgVals[i], ivVals[i])
			}
		}
	}
}

// writesVar reports whether the node assigns the named source variable.
func writesVar(fn *cfg.Func, nd *cfg.Node, name string) bool {
	for i := range nd.Instrs {
		if nd.Instrs[i].HasDst() && fn.VarName(nd.Instrs[i].Dst) == name {
			return true
		}
	}
	return false
}

// countConst is the dynamically weighted non-local constant count.
func countConst(fn *cfg.Func, g *cfg.Graph, sol *constprop.Result, freq []int64) int64 {
	var total int64
	for _, nd := range g.Nodes {
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), fn.NumVars(), true)
		for _, fl := range flags {
			if fl {
				total += freq[nd.ID]
			}
		}
	}
	return total
}

func stream(seed uint64) []ir.Value {
	vals := make([]ir.Value, 4096)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0x7fffffff)
	}
	return vals
}
