// Package tupling implements Holley and Rosen's *context tupling*, the
// alternative to data-flow tracing that §4.3 of Ammons & Larus (PLDI
// 1998) discusses: instead of expanding the graph with one vertex per
// (CFG vertex, automaton state) pair, context tupling solves a *tupled*
// problem over the original graph whose facts are vectors of lattice
// values indexed by automaton state —
//
//	"data-flow tracing tracks the state of A in the control-flow
//	 graph, while context tupling tracks the state of A in the
//	 lattice of values."
//
// The paper chose tracing because later passes can consume the traced
// graph and because Holley and Rosen found tupling no faster. This
// package exists to validate both claims machine-checkably: the tupled
// solution must agree exactly with the traced solution at every (vertex,
// state) pair (see the cross-check tests), and the benchmark harness
// compares their costs.
package tupling

import (
	"pathflow/internal/automaton"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
)

// Fact is the tupled lattice element: one constant-propagation
// environment per automaton state. A nil slot means "no path reaching
// here drives the automaton to that state" (the ⊤ of the tuple slot).
type Fact []constprop.Env

// Clone copies the fact (environments are copied lazily by the
// per-state operations, which never mutate shared slices).
func (f Fact) Clone() Fact { return append(Fact(nil), f...) }

// Problem is the tupled constant-propagation problem over the original
// graph.
type Problem struct {
	Auto    *automaton.Automaton
	NumVars int
	// Conditional enables Wegman-Zadek branch pruning per tuple slot.
	Conditional bool
}

var _ dataflow.Problem = (*Problem)(nil)

// Entry places the all-⊥ environment in the automaton's start state.
func (p *Problem) Entry() dataflow.Fact {
	f := make(Fact, p.Auto.NumStates())
	f[p.Auto.Start()] = constprop.NewEnv(p.NumVars, constprop.Bottom)
	return f
}

// Meet combines two tuples slot-wise.
func (p *Problem) Meet(a, b dataflow.Fact) dataflow.Fact {
	x, y := a.(Fact), b.(Fact)
	out := make(Fact, len(x))
	for q := range x {
		switch {
		case x[q] == nil:
			out[q] = y[q]
		case y[q] == nil:
			out[q] = x[q]
		default:
			out[q] = x[q].Meet(y[q])
		}
	}
	return out
}

// Equal compares two tuples slot-wise.
func (p *Problem) Equal(a, b dataflow.Fact) bool {
	x, y := a.(Fact), b.(Fact)
	for q := range x {
		switch {
		case x[q] == nil && y[q] == nil:
		case x[q] == nil || y[q] == nil:
			return false
		case !x[q].Equal(y[q]):
			return false
		}
	}
	return true
}

// Transfer symbolically executes the block once per populated tuple slot
// and routes each slot's result to the out-edge facts under the
// automaton's transition on that edge. Branch pruning applies per slot:
// one qualified context may know the branch direction while another does
// not — which is exactly the precision tracing gets from duplication.
func (p *Problem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	f := in.(Fact)
	nd := g.Node(n)
	ensure := func(slot int) Fact {
		if out[slot] == nil {
			out[slot] = make(Fact, len(f))
		}
		return out[slot].(Fact)
	}
	meetInto := func(slot int, q2 automaton.State, env constprop.Env) {
		o := ensure(slot)
		if o[q2] == nil {
			o[q2] = env
		} else {
			o[q2] = o[q2].Meet(env)
		}
	}
	for q := range f {
		if f[q] == nil {
			continue
		}
		env, _ := constprop.TransferBlock(g, n, f[q], false)
		switch nd.Kind {
		case cfg.TermJump, cfg.TermReturn:
			eid := nd.Out[0]
			meetInto(0, p.Auto.Step(automaton.State(q), eid), env)
		case cfg.TermBranch:
			takeSlot := func(slot int) {
				eid := nd.Out[slot]
				e := env
				if slot == 1 {
					e = env.Clone()
				}
				meetInto(slot, p.Auto.Step(automaton.State(q), eid), e)
			}
			if !p.Conditional {
				takeSlot(0)
				takeSlot(1)
				continue
			}
			switch c := env[nd.Cond]; c.Kind {
			case constprop.Top:
				// optimistic: wait for evidence
			case constprop.Const:
				if c.K != 0 {
					takeSlot(0)
				} else {
					takeSlot(1)
				}
			case constprop.Bottom:
				takeSlot(0)
				takeSlot(1)
			}
		case cfg.TermHalt:
		}
	}
}

// Result is a solved tupled problem.
type Result struct {
	G    *cfg.Graph
	Auto *automaton.Automaton
	Sol  *dataflow.Solution
	n    int
}

// Analyze runs tupled constant propagation over fn's graph.
func Analyze(g *cfg.Graph, numVars int, a *automaton.Automaton, conditional bool) *Result {
	p := &Problem{Auto: a, NumVars: numVars, Conditional: conditional}
	return &Result{G: g, Auto: a, Sol: dataflow.Solve(g, p), n: numVars}
}

// EnvAt returns the environment holding at vertex v given that the
// automaton is in state q, or ok=false if no executable path drives the
// automaton to q at v — precisely the qualified solution of Holley-Rosen
// Theorem 4.2 that tracing represents as the HPG node (v, q).
func (r *Result) EnvAt(v cfg.NodeID, q automaton.State) (constprop.Env, bool) {
	if !r.Sol.Reached[v] {
		return nil, false
	}
	f := r.Sol.In[v].(Fact)
	if f[q] == nil {
		return nil, false
	}
	return f[q], true
}

// MergedEnvAt returns the meet over all states at v — by Theorem 1 of
// the paper (Holley-Rosen Theorem 4.2), this is a good solution of the
// unqualified problem and must agree with plain analysis or better.
func (r *Result) MergedEnvAt(v cfg.NodeID) (constprop.Env, bool) {
	if !r.Sol.Reached[v] {
		return nil, false
	}
	f := r.Sol.In[v].(Fact)
	var out constprop.Env
	for q := range f {
		if f[q] == nil {
			continue
		}
		if out == nil {
			out = f[q]
		} else {
			out = out.Meet(f[q])
		}
	}
	return out, out != nil
}

// States returns the automaton states populated at v.
func (r *Result) States(v cfg.NodeID) []automaton.State {
	if !r.Sol.Reached[v] {
		return nil
	}
	f := r.Sol.In[v].(Fact)
	var out []automaton.State
	for q := range f {
		if f[q] != nil {
			out = append(out, automaton.State(q))
		}
	}
	return out
}
