package tupling_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
	"pathflow/internal/progen"
	"pathflow/internal/trace"
	. "pathflow/internal/tupling"
)

// checkAgainstTracing verifies Holley & Rosen's equivalence: the tupled
// solution at (v, q) must equal the traced solution at HPG node (v, q),
// including reachability.
func checkAgainstTracing(t *testing.T, fn *cfg.Func, a *automaton.Automaton) {
	t.Helper()
	h, err := trace.Build(fn, a)
	if err != nil {
		t.Fatal(err)
	}
	traced := constprop.Analyze(h.G, fn.NumVars(), true)
	tupled := Analyze(fn.G, fn.NumVars(), a, true)

	for _, nd := range h.G.Nodes {
		v, q := h.OrigNode[nd.ID], h.State[nd.ID]
		tEnv, tOK := tupled.EnvAt(v, q)
		hOK := traced.Reached(nd.ID)
		if tOK != hOK {
			t.Fatalf("%s: reachability of (%d,%v) differs: tupled=%v traced=%v",
				fn.Name, v, q, tOK, hOK)
		}
		if !tOK {
			continue
		}
		hEnv := traced.EnvAt(nd.ID)
		if !tEnv.Equal(hEnv) {
			t.Fatalf("%s: solutions differ at (%d,%v):\ntupled %s\ntraced %s",
				fn.Name, v, q, tEnv.String(fn.VarNames), hEnv.String(fn.VarNames))
		}
	}
	// Conversely, every populated tuple slot must have an HPG node.
	for _, nd := range fn.G.Nodes {
		for _, q := range tupled.States(nd.ID) {
			if _, ok := h.NodeFor(nd.ID, q); !ok {
				t.Fatalf("%s: tupled state (%d,%v) has no HPG node", fn.Name, nd.ID, q)
			}
		}
	}
}

func TestTuplingMatchesTracingOnExample(t *testing.T) {
	f, _, edges := paperex.Build()
	ps := paperex.Paths(edges)
	for nHot := 0; nHot <= 4; nHot++ {
		a, err := automaton.New(f.G, paperex.Recording(edges), ps[:nHot])
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstTracing(t, f, a)
	}
}

func TestTuplingExampleConstants(t *testing.T) {
	f, nodes, edges := paperex.Build()
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:])
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(f.G, f.NumVars(), a, true)
	// State 15 (displayed "14") is H14's context: the paper's x = 6.
	var q14 automaton.State = -1
	for _, q := range r.States(nodes.H) {
		if a.Name(q) == "14" {
			q14 = q
		}
	}
	if q14 < 0 {
		t.Fatalf("no state named 14 at H (have %v)", r.States(nodes.H))
	}
	env, ok := r.EnvAt(nodes.H, q14)
	if !ok {
		t.Fatal("H14 unreached")
	}
	// At H14's entry, a=2, b=4, i=0.
	if env[paperex.VarA] != constprop.ConstOf(2) ||
		env[paperex.VarB] != constprop.ConstOf(4) ||
		env[paperex.VarI] != constprop.ConstOf(0) {
		t.Errorf("env at (H, q14) = %s", env.String(f.VarNames))
	}
	// The merged solution loses b, like the unqualified analysis.
	merged, ok := r.MergedEnvAt(nodes.H)
	if !ok {
		t.Fatal("H unreached")
	}
	if merged[paperex.VarB].IsConst() {
		t.Errorf("merged b = %v, want non-constant", merged[paperex.VarB])
	}
	if merged[paperex.VarA] != constprop.ConstOf(2) {
		t.Errorf("merged a = %v, want 2", merged[paperex.VarA])
	}
}

// TestTuplingMatchesTracingOnRandomPrograms is the §4.3 equivalence on
// generated programs with automatons built from their real profiles.
func TestTuplingMatchesTracingOnRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pp, _, err := bl.ProfileProgram(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    &interp.SliceInput{Values: inputVals(seed)},
			MaxSteps: 2_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, fn := range prog.Funcs {
			pr := pp.Funcs[name]
			if pr.NumPaths() == 0 {
				continue
			}
			hot := profile.SelectHot(pr, fn.G, 1.0)
			a, err := automaton.New(fn.G, pr.R, hot)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			checkAgainstTracing(t, fn, a)
		}
	}
}

func inputVals(seed uint64) []ir.Value {
	vals := make([]ir.Value, 64)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0xffff)
	}
	return vals
}

// TestTupledBeatsPlainOnMerge: Theorem 1 — the merged tupled solution is
// never worse than the unqualified solution.
func TestTupledMergeNeverWorse(t *testing.T) {
	f, _, edges := paperex.Build()
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:])
	if err != nil {
		t.Fatal(err)
	}
	tup := Analyze(f.G, f.NumVars(), a, true)
	plain := constprop.Analyze(f.G, f.NumVars(), true)
	for _, nd := range f.G.Nodes {
		merged, ok := tup.MergedEnvAt(nd.ID)
		if !ok {
			if plain.Reached(nd.ID) {
				t.Fatalf("node %s reached by plain but not tupled", nd.Name)
			}
			continue
		}
		pEnv := plain.EnvAt(nd.ID)
		for v := range pEnv {
			if pEnv[v].IsConst() {
				if !merged[v].IsConst() || merged[v].K != pEnv[v].K {
					t.Errorf("node %s: plain says v%d=%v, merged tupled says %v",
						nd.Name, v, pEnv[v], merged[v])
				}
			}
		}
	}
}
