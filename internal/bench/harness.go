package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/classify"
	"pathflow/internal/dataflow"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/machine"
	"pathflow/internal/opt"
	"pathflow/internal/profile"
)

// CoverageLevels is the CA sweep the paper's Figures 9, 11 and 12 report
// ("three quarters of the program's execution, then seven eighths, and so
// forth"), plus the endpoints.
var CoverageLevels = []float64{0, 0.75, 0.875, 0.9375, 0.97, 1.0}

// DefaultEngine returns the engine configuration the harness uses unless
// the caller supplies one: all cores, artifact cache on. The experiment
// sweeps are exactly the workload the cache is built for — every figure
// revisits the same functions at different CA/CR points.
func DefaultEngine() *engine.Engine {
	return engine.New(engine.Config{Workers: 0, Cache: true})
}

// Instance is one benchmark with its profiles collected, plus a memo of
// analyses per parameter point.
type Instance struct {
	B   *Benchmark
	Eng *engine.Engine

	// Kernel selects the data-flow solver backend every analysis this
	// instance runs uses (zero value: the packed arena kernels). Set it
	// before the first Analyze call — it participates in the memo key,
	// but both backends produce identical results by contract.
	Kernel dataflow.Kernel

	Prog *cfg.Program
	// Train and Ref are the path profiles of the train and ref runs.
	Train, Ref *bl.ProgramProfile
	// TrainRes and RefRes are the corresponding interpreter results.
	TrainRes, RefRes *interp.Result
	// CompileTime and TrainTime correspond to Table 1's compile column:
	// the front-end plus the instrumented training run.
	CompileTime time.Duration
	TrainTime   time.Duration

	mu       sync.Mutex
	analyses map[string]*engine.ProgramResult
}

// Load compiles and profiles a benchmark and attaches eng (nil means
// DefaultEngine) for its analyses.
func Load(b *Benchmark, eng *engine.Engine) (*Instance, error) {
	if eng == nil {
		eng = DefaultEngine()
	}
	t0 := time.Now()
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	compileTime := time.Since(t0)

	t0 = time.Now()
	train, tres, err := bl.ProfileProgram(prog, b.TrainOptions())
	if err != nil {
		return nil, fmt.Errorf("bench %s train: %w", b.Name, err)
	}
	trainTime := time.Since(t0)

	ref, rres, err := bl.ProfileProgram(prog, b.RefOptions())
	if err != nil {
		return nil, fmt.Errorf("bench %s ref: %w", b.Name, err)
	}
	return &Instance{
		B: b, Eng: eng, Prog: prog,
		Train: train, Ref: ref,
		TrainRes: tres, RefRes: rres,
		CompileTime: compileTime, TrainTime: trainTime,
		analyses: map[string]*engine.ProgramResult{},
	}, nil
}

// Analyze runs (or returns the memoized) pipeline at the given options.
func (in *Instance) Analyze(ctx context.Context, o engine.Options) (*engine.ProgramResult, error) {
	o.Kernel = in.Kernel
	key := fmt.Sprintf("%.6f/%.6f/%d/%t/%s/%t", o.CA, o.CR, o.Clients, o.Verify, o.Kernel, o.Feasible)
	in.mu.Lock()
	if r, ok := in.analyses[key]; ok {
		in.mu.Unlock()
		return r, nil
	}
	in.mu.Unlock()
	r, err := in.Eng.AnalyzeProgram(ctx, in.Prog, in.Train, o)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", in.B.Name, err)
	}
	in.mu.Lock()
	in.analyses[key] = r
	in.mu.Unlock()
	return r, nil
}

// EvalMetrics summarizes one analysis under the ref profile.
type EvalMetrics struct {
	// TotalDyn is the ref run's dynamic instruction count.
	TotalDyn int64
	// ConstDyn counts dynamic instructions with constant results
	// (including local constants); NonlocalConstDyn excludes them.
	ConstDyn, NonlocalConstDyn int64
	// Node counts for the growth figures.
	OrigNodes, HPGNodes, RedNodes int
}

// Evaluate weighs an analysis with the ref profile.
func (in *Instance) Evaluate(res *engine.ProgramResult) (*EvalMetrics, error) {
	m := &EvalMetrics{}
	for _, name := range in.Prog.Order {
		fr := res.Funcs[name]
		fn := in.Prog.Funcs[name]
		refProf := in.Ref.Funcs[name]
		m.OrigNodes += fn.G.NumNodes()
		if fr.Qualified() {
			m.HPGNodes += fr.HPG.G.NumNodes()
			m.RedNodes += fr.Red.G.NumNodes()
		} else {
			m.HPGNodes += fn.G.NumNodes()
			m.RedNodes += fn.G.NumNodes()
		}
		ep, err := fr.TranslateEval(refProf)
		if err != nil {
			return nil, fmt.Errorf("bench %s/%s: %w", in.B.Name, name, err)
		}
		g := fr.FinalGraph()
		freq := profile.NodeFrequencies(ep, g)
		m.TotalDyn += ep.DynInstrs(g)
		m.ConstDyn += classify.SiteConstDyn(g, fr.FinalSol(), freq, fn.NumVars(), false)
		m.NonlocalConstDyn += classify.SiteConstDyn(g, fr.FinalSol(), freq, fn.NumVars(), true)
	}
	return m, nil
}

// --- Table 1 -------------------------------------------------------------

// Table1Row mirrors the paper's Table 1.
type Table1Row struct {
	Name     string
	Nodes    int // CFG nodes in the original program
	Paths    int // Ball-Larus paths executed in the training run
	HotPaths int // paths needed to cover 97% of the training run
	// CompileTime is front-end + instrumented training run; AnalTime is
	// constant propagation with CA = 0.
	CompileTime time.Duration
	AnalTime    time.Duration
}

// Table1 regenerates the paper's Table 1 over the suite.
func Table1(ctx context.Context, instances []*Instance) ([]Table1Row, error) {
	var rows []Table1Row
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 0, CR: 0.95})
		if err != nil {
			return nil, err
		}
		hot := 0
		for _, name := range in.Prog.Order {
			p := in.Train.Funcs[name]
			hot += len(profile.SelectHot(p, in.Prog.Funcs[name].G, 0.97))
		}
		st := res.Stats()
		rows = append(rows, Table1Row{
			Name:        in.B.Name,
			Nodes:       in.Prog.NumNodes(),
			Paths:       in.Train.TotalPaths(),
			HotPaths:    hot,
			CompileTime: in.CompileTime + in.TrainTime,
			AnalTime:    st.BaselineTime,
		})
	}
	return rows, nil
}

// --- Figure 9 ------------------------------------------------------------

// Fig9Point is one (benchmark, coverage) measurement.
type Fig9Point struct {
	Name string
	CA   float64
	// ConstIncrease is the relative increase in dynamic instructions
	// with constant results over the CA = 0 baseline (the paper's
	// Figure 9 y-axis; its headline "1-7%" numbers).
	ConstIncrease float64
	// NonlocalRatio is qualified non-local constants over baseline
	// non-local constants (the paper's headline "2-112 times").
	NonlocalRatio float64
}

// Fig9 sweeps coverage and reports constant increases.
func Fig9(ctx context.Context, instances []*Instance, cas []float64, cr float64) ([]Fig9Point, error) {
	var pts []Fig9Point
	for _, in := range instances {
		base, err := in.Analyze(ctx, engine.Options{CA: 0, CR: cr})
		if err != nil {
			return nil, err
		}
		bm, err := in.Evaluate(base)
		if err != nil {
			return nil, err
		}
		for _, ca := range cas {
			res, err := in.Analyze(ctx, engine.Options{CA: ca, CR: cr})
			if err != nil {
				return nil, err
			}
			m, err := in.Evaluate(res)
			if err != nil {
				return nil, err
			}
			pt := Fig9Point{Name: in.B.Name, CA: ca}
			if bm.ConstDyn > 0 {
				pt.ConstIncrease = float64(m.ConstDyn-bm.ConstDyn) / float64(bm.ConstDyn)
			}
			if bm.NonlocalConstDyn > 0 {
				pt.NonlocalRatio = float64(m.NonlocalConstDyn) / float64(bm.NonlocalConstDyn)
			} else if m.NonlocalConstDyn > 0 {
				pt.NonlocalRatio = float64(m.NonlocalConstDyn) // baseline zero: report absolute
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// --- Figure 7 ------------------------------------------------------------

// Fig7Row is one benchmark's cumulative constant distribution by block.
type Fig7Row struct {
	Name   string
	Points []classify.CumulativePoint
}

// Fig7 computes, at full coverage, the distribution of dynamic non-local
// constant executions over (HPG) basic blocks.
func Fig7(ctx context.Context, instances []*Instance) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 1.0, CR: 0.95})
		if err != nil {
			return nil, err
		}
		var weights []int64
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			if !fr.Qualified() {
				continue
			}
			ep, err := profile.Translate(in.Ref.Funcs[name], fn.G, fr.HPG)
			if err != nil {
				return nil, err
			}
			freq := profile.NodeFrequencies(ep, fr.HPG.G)
			weights = append(weights, classify.BlockConstWeights(fr.HPG.G, fr.HPGSol, freq, fn.NumVars())...)
		}
		rows = append(rows, Fig7Row{Name: in.B.Name, Points: classify.CumulativeDistribution(weights)})
	}
	return rows, nil
}

// --- Figure 10 -----------------------------------------------------------

// Fig10Row is one benchmark's Figure 13 category breakdown at CA = 1.
type Fig10Row struct {
	Name   string
	Report *classify.Report
}

// Fig10 classifies every instruction at full coverage.
func Fig10(ctx context.Context, instances []*Instance) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 1.0, CR: 0.95})
		if err != nil {
			return nil, err
		}
		total := &classify.Report{}
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			ci := classify.Input{
				Fn:          fn,
				EvalProfile: in.Ref.Funcs[name],
				OrigSol:     fr.OrigSol,
			}
			if fr.Qualified() {
				ci.Overlay = fr.Red
				ci.OverlaySol = fr.RedSol
				ci.OverlayOrigNode = func(n cfg.NodeID) cfg.NodeID { return fr.Red.OrigNode[n] }
				op, err := fr.TranslateEval(in.Ref.Funcs[name])
				if err != nil {
					return nil, err
				}
				ci.OverlayProfile = op
			}
			total.Add(classify.Classify(ci))
		}
		rows = append(rows, Fig10Row{Name: in.B.Name, Report: total})
	}
	return rows, nil
}

// --- Figure 11 -----------------------------------------------------------

// Fig11Point is a (benchmark, coverage) graph-growth measurement.
type Fig11Point struct {
	Name string
	CA   float64
	// HPGGrowth and RedGrowth are relative node-count increases of the
	// HPG (before reduction) and rHPG (after minimization) over the
	// original program.
	HPGGrowth, RedGrowth float64
}

// Fig11 sweeps coverage and reports growth before and after reduction.
func Fig11(ctx context.Context, instances []*Instance, cas []float64, cr float64) ([]Fig11Point, error) {
	var pts []Fig11Point
	for _, in := range instances {
		for _, ca := range cas {
			res, err := in.Analyze(ctx, engine.Options{CA: ca, CR: cr})
			if err != nil {
				return nil, err
			}
			m, err := in.Evaluate(res)
			if err != nil {
				return nil, err
			}
			o := float64(m.OrigNodes)
			pts = append(pts, Fig11Point{
				Name:      in.B.Name,
				CA:        ca,
				HPGGrowth: (float64(m.HPGNodes) - o) / o,
				RedGrowth: (float64(m.RedNodes) - o) / o,
			})
		}
	}
	return pts, nil
}

// --- Figure 12 -----------------------------------------------------------

// Fig12Point is a (benchmark, coverage) analysis-time measurement.
type Fig12Point struct {
	Name string
	CA   float64
	// TimeRatio is total qualified analysis time over the CA = 0
	// baseline analysis time.
	TimeRatio float64
	// Iterations is the solver-iteration analog (deterministic, unlike
	// wall clock): qualified solver iterations / baseline iterations.
	Iterations float64
}

// Fig12 sweeps coverage and reports analysis-cost growth.
func Fig12(ctx context.Context, instances []*Instance, cas []float64, cr float64) ([]Fig12Point, error) {
	var pts []Fig12Point
	for _, in := range instances {
		base, err := in.Analyze(ctx, engine.Options{CA: 0, CR: cr})
		if err != nil {
			return nil, err
		}
		bst := base.Stats()
		baseIters := solverIterations(base)
		for _, ca := range cas {
			res, err := in.Analyze(ctx, engine.Options{CA: ca, CR: cr})
			if err != nil {
				return nil, err
			}
			st := res.Stats()
			pt := Fig12Point{Name: in.B.Name, CA: ca}
			if bst.BaselineTime > 0 {
				pt.TimeRatio = float64(st.BaselineTime+st.QualifiedTime) / float64(bst.BaselineTime)
			}
			if baseIters > 0 {
				pt.Iterations = float64(solverIterations(res)) / float64(baseIters)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

func solverIterations(res *engine.ProgramResult) int64 {
	var n int64
	for _, fr := range res.Funcs {
		n += int64(fr.OrigSol.Sol.Iterations)
		if fr.HPGSol != nil {
			n += int64(fr.HPGSol.Sol.Iterations)
		}
		if fr.RedSol != nil {
			n += int64(fr.RedSol.Sol.Iterations)
		}
	}
	return n
}

// --- Table 2 -------------------------------------------------------------

// Table2Row mirrors the paper's Table 2: modeled run time of the
// Wegman-Zadek-optimized program versus the path-qualified one.
type Table2Row struct {
	Name string
	// BaseCycles and OptCycles are modeled run times on the ref input.
	BaseCycles, OptCycles int64
	// Speedup is (base - opt) / base; negative values are slowdowns.
	Speedup float64
	// BaseFolded / OptFolded count statically rewritten instructions
	// (all optimizer passes); BaseCounts / OptCounts break them down.
	BaseFolded, OptFolded int
	BaseCounts, OptCounts opt.Counts
	// Footprints in instruction slots (code growth drives the i-cache
	// component).
	BaseFootprint, OptFootprint int64
	// Cost components, for diagnosing where time went.
	BaseSim, OptSim *machine.Simulation
}

// Table2 regenerates the running-time experiment at CA = 0.97, CR = 0.95.
func Table2(ctx context.Context, instances []*Instance) ([]Table2Row, error) {
	cm := machine.DefaultCostModel()
	cc := machine.DefaultICache()
	var rows []Table2Row
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			return nil, err
		}
		// Table 2 reproduces the paper's experiment exactly, so it uses
		// the paper's pass (constant folding only). The extended passes
		// (interval folds, dead-store deletion) shrink both programs and
		// wash out the code-growth slowdowns the paper reports; they are
		// exercised by `pathflow opt` and the opt tests instead.
		baseProg, baseFolded := engine.BaselineProgram(in.Prog, opt.PassConst)
		optProg, optFolded := res.OptimizedProgram(opt.PassConst)

		baseOpts := in.B.RefOptions()
		baseOpts.CollectOutput = true
		baseSim, baseRes, err := machine.Simulate(baseProg, baseOpts, cm, cc)
		if err != nil {
			return nil, fmt.Errorf("bench %s base sim: %w", in.B.Name, err)
		}
		optOpts := in.B.RefOptions()
		optOpts.CollectOutput = true
		optSim, optRes, err := machine.Simulate(optProg, optOpts, cm, cc)
		if err != nil {
			return nil, fmt.Errorf("bench %s opt sim: %w", in.B.Name, err)
		}
		// The optimized program must be observationally identical: any
		// divergence is an analysis soundness bug.
		if len(baseRes.Output) != len(optRes.Output) {
			return nil, fmt.Errorf("bench %s: optimized output length diverged", in.B.Name)
		}
		for i := range baseRes.Output {
			if baseRes.Output[i] != optRes.Output[i] {
				return nil, fmt.Errorf("bench %s: optimized output diverged at %d (base %d, opt %d)",
					in.B.Name, i, baseRes.Output[i], optRes.Output[i])
			}
		}
		rows = append(rows, Table2Row{
			Name:          in.B.Name,
			BaseCycles:    baseSim.Cycles,
			OptCycles:     optSim.Cycles,
			Speedup:       float64(baseSim.Cycles-optSim.Cycles) / float64(baseSim.Cycles),
			BaseFolded:    baseFolded.Total(),
			OptFolded:     optFolded.Total(),
			BaseCounts:    baseFolded,
			OptCounts:     optFolded,
			BaseFootprint: baseSim.Footprint,
			OptFootprint:  optSim.Footprint,
			BaseSim:       baseSim,
			OptSim:        optSim,
		})
	}
	return rows, nil
}

// LoadAll loads the whole suite, profiling independent benchmarks in
// parallel on eng's worker pool (nil means DefaultEngine). All instances
// share the one engine, so artifact reuse spans the whole suite.
func LoadAll(ctx context.Context, eng *engine.Engine) ([]*Instance, error) {
	if eng == nil {
		eng = DefaultEngine()
	}
	benchmarks := All() // already sorted by name
	return engine.Map(ctx, eng.Workers(), benchmarks, func(_ context.Context, b *Benchmark) (*Instance, error) {
		return Load(b, eng)
	})
}
