package bench

import (
	"fmt"
	"strings"
)

// Source-generation helpers. The benchmark programs combine a hand-written
// core (the path-structure the paper describes for each SPEC95 program)
// with generated sections: straight-line "ballast" arithmetic that models
// the bulk of a real program's input-dependent work, long dispatch chains,
// and cold routines that are compiled but rarely or never executed. The
// generated parts are what give the suite realistic proportions — in real
// programs the path-correlated constants the paper hunts are a sliver of
// the dynamic instruction stream, and most static code is cold.

// ballast emits n statements of input-dependent arithmetic mixing acc and
// src. Roughly half the constituent IR instructions are literal loads
// (the paper's Local category) and the rest are unknowable, so ballast
// dilutes the path-constant fraction the way real computation does.
func ballast(acc, src string, seed, n int) string {
	g := splitmix64(seed)
	var b strings.Builder
	ops := []string{"+", "^", "|"}
	for i := 0; i < n; i++ {
		k1 := g.next()%97 + 3
		k2 := g.next()%31 + 1
		op := ops[g.next()%uint64(len(ops))]
		switch g.next() % 3 {
		case 0:
			fmt.Fprintf(&b, "\t\t%s = %s %s (%s * %d + %d);\n", acc, acc, op, src, k1, k2)
		case 1:
			fmt.Fprintf(&b, "\t\t%s = (%s >> %d) + (%s & %d);\n", acc, acc, g.next()%5+1, src, k1)
		default:
			fmt.Fprintf(&b, "\t\t%s = %s %s (%s + %d);\n", acc, acc, op, src, k2)
		}
	}
	return b.String()
}

// coldFunc emits a routine of roughly the requested number of branches
// that the benchmarks call rarely or never: it supplies the cold static
// code that dominates real programs' CFGs.
func coldFunc(name string, branches int, seed uint64) string {
	g := splitmix64(seed)
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(v) {\n\tr = v;\n", name)
	for i := 0; i < branches; i++ {
		k := g.next() % 61
		fmt.Fprintf(&b, "\tif (r %% %d == %d) { r = r * %d + %d; } else { r = r - %d; }\n",
			g.next()%13+2, g.next()%5, k+2, g.next()%9, g.next()%7+1)
	}
	b.WriteString("\treturn r;\n}\n")
	return b.String()
}

// constChain emits n statements of same-block constant arithmetic on a
// fresh variable. Every instruction it produces is a Local constant
// (determinable within the basic block), which is what most constants in
// real programs are — the paper's Figure 10 shows Local and Unknowable
// dominating every benchmark. Benchmarks use it to give the qualified
// constants realistic proportions.
func constChain(name string, seed, n int) string {
	g := splitmix64(seed)
	var b strings.Builder
	fmt.Fprintf(&b, "\t\t%s = %d;\n", name, g.next()%100)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t\t%s = (%s * %d + %d) %% %d;\n",
			name, name, g.next()%9+2, g.next()%50, g.next()%5000+64)
	}
	return b.String()
}

// coldSuite emits several cold routines plus an expression that calls
// them all (used under a never-true guard in main, so the code is
// compiled — and counted — but never executed).
func coldSuite(prefix string, funcs, branches int, seed uint64) (src, call string) {
	var b strings.Builder
	var calls []string
	for i := 0; i < funcs; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		b.WriteString(coldFunc(name, branches, seed+uint64(i)))
		calls = append(calls, name+"(0)")
	}
	return b.String(), strings.Join(calls, " + ")
}

// dispatchChain emits an if/else-if chain over sel with the given number
// of cases. Each case assigns out from input-dependent values except for
// a few constant cases, which is the shape of a scanner or bytecode
// switch: big, mostly unknowable, with a couple of foldable corners.
func dispatchChain(sel, out string, cases int, seed uint64) string {
	g := splitmix64(seed)
	var b strings.Builder
	for i := 0; i < cases; i++ {
		kw := "else if"
		if i == 0 {
			kw = "if"
		}
		cond := fmt.Sprintf("%s < %d", sel, (i+1)*(100/cases))
		if i == cases-1 {
			fmt.Fprintf(&b, "\t\telse {\n")
		} else {
			fmt.Fprintf(&b, "\t\t%s (%s) {\n", kw, cond)
		}
		if g.next()%4 == 0 {
			fmt.Fprintf(&b, "\t\t\t%s = %d;\n", out, g.next()%50)
		} else {
			fmt.Fprintf(&b, "\t\t\t%s = (input() %% %d) + %d;\n", out, g.next()%100+2, g.next()%10)
		}
		fmt.Fprintf(&b, "\t\t}\n")
	}
	return b.String()
}
