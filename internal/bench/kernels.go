package bench

import (
	"context"
	"fmt"
	"time"

	"pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/engine"
	"pathflow/internal/intervals"
	"pathflow/internal/liveness"
)

// KernelRow is one benchmark's solver-backend comparison on its
// analysis-tier graphs (the HPG of every qualified function, the CFG
// otherwise — the graphs the analyze stage actually solves).
type KernelRow struct {
	Name  string
	Nodes int // nodes across the timed graph set
	// Boxed, Packed, and Sparse are the wall time of one
	// constant-propagation sweep over the whole graph set on each
	// backend.
	Boxed, Packed, Sparse time.Duration
	// Speedup is Boxed / Packed; SparseSpeedup is Packed / Sparse (the
	// sparse kernel's win over the dense arena kernels).
	Speedup, SparseSpeedup float64
	// Checked counts the vertices the differential gate compared across
	// all four clients and both non-reference backends; Violations
	// counts pointwise disagreements (any non-zero value is a kernel
	// bug).
	Checked, Violations int
	// Work holds the per-client dense-vs-sparse solver effort.
	Work []KernelWork
}

// KernelWork is one client's solver effort on a benchmark's analysis
// graphs, summed over the graph set: worklist pops and node transfers
// for the dense packed kernel vs the sparse def-use kernel. Dense pops
// always equal dense transfers (every pop transfers); sparse pops may
// exceed sparse transfers (pass-through pops forward a delta without
// transferring), and sparse transfers are the number to watch shrink.
type KernelWork struct {
	Client                  string
	DensePops, DenseIters   int
	SparsePops, SparseIters int
}

// AnalyzeGraph is one graph the analyze stage solves, with enough
// context to re-run every client on it. Exported so the root kernel
// benchmark times exactly the graph set the engine analyzes.
type AnalyzeGraph struct {
	Func    string
	G       *cfg.Graph
	NumVars int
}

// AnalyzeGraphs returns the analysis-tier graph set for in at the
// paper's recommended operating point (CA=0.97, CR=0.95): the HPG of
// every qualified function, the original CFG otherwise.
func AnalyzeGraphs(ctx context.Context, in *Instance) ([]AnalyzeGraph, error) {
	res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
	if err != nil {
		return nil, err
	}
	var graphs []AnalyzeGraph
	for _, name := range in.Prog.Order {
		fr := res.Funcs[name]
		g := fr.Fn.G
		if fr.Qualified() {
			g = fr.HPG.G
		}
		graphs = append(graphs, AnalyzeGraph{Func: name, G: g, NumVars: in.Prog.Funcs[name].NumVars()})
	}
	return graphs, nil
}

// kernelReps is how many timed constant-propagation sweeps each backend
// runs; the graphs are small enough that single solves sit near the
// timer floor.
const kernelReps = 50

// Kernels times boxed vs packed constant propagation over each
// benchmark's analysis graphs and runs the oracle's differential gate —
// all four clients, packed vs boxed, pointwise — as a correctness
// check riding along with the measurement.
func Kernels(ctx context.Context, instances []*Instance) ([]KernelRow, error) {
	var rows []KernelRow
	for _, in := range instances {
		graphs, err := AnalyzeGraphs(ctx, in)
		if err != nil {
			return nil, err
		}
		nodes := 0
		for _, kg := range graphs {
			nodes += kg.G.NumNodes()
		}

		row := KernelRow{Name: in.B.Name, Nodes: nodes}
		row.Work = []KernelWork{
			{Client: "constprop"}, {Client: "intervals"},
			{Client: "liveness"}, {Client: "availexpr"},
		}
		for _, kg := range graphs {
			checked, bad, err := kernelDifferential(in.B.Name, kg, row.Work)
			if err != nil {
				return nil, err
			}
			row.Checked += checked
			row.Violations += bad
		}

		t0 := time.Now()
		for i := 0; i < kernelReps; i++ {
			for _, kg := range graphs {
				constprop.Analyze(kg.G, kg.NumVars, true)
			}
		}
		row.Boxed = time.Since(t0)
		t0 = time.Now()
		for i := 0; i < kernelReps; i++ {
			for _, kg := range graphs {
				constprop.AnalyzePacked(kg.G, kg.NumVars, true)
			}
		}
		row.Packed = time.Since(t0)
		t0 = time.Now()
		for i := 0; i < kernelReps; i++ {
			for _, kg := range graphs {
				constprop.AnalyzeSparse(kg.G, kg.NumVars, true)
			}
		}
		row.Sparse = time.Since(t0)
		if row.Packed > 0 {
			row.Speedup = float64(row.Boxed) / float64(row.Packed)
		}
		if row.Sparse > 0 {
			row.SparseSpeedup = float64(row.Packed) / float64(row.Sparse)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// kernelDifferential solves every client on all three backends over one
// graph, counts the vertices compared and the disagreements found, and
// accumulates per-client dense-vs-sparse solver effort into work (which
// must hold the four clients in the fixed order constprop, intervals,
// liveness, availexpr). The packed solutions are gated with the full
// Differential (iterations included — dense mirrors boxed exactly); the
// sparse ones with DifferentialFacts, except intervals, whose sparse
// schedule replays the dense trajectory and so keeps the full gate.
func kernelDifferential(name string, kg AnalyzeGraph, work []KernelWork) (checked, violations int, err error) {
	type diff struct {
		client string
		lat    oracle.Lattice
		boxed  *dataflow.Solution
		packed *dataflow.Solution
		sparse *dataflow.Solution
		facts  bool // gate sparse with DifferentialFacts instead of Differential
	}
	cpB := constprop.Analyze(kg.G, kg.NumVars, true)
	cpP := constprop.AnalyzePacked(kg.G, kg.NumVars, true)
	cpS := constprop.AnalyzeSparse(kg.G, kg.NumVars, true)
	ivB := intervals.AnalyzeWith(kg.G, kg.NumVars, true, dataflow.KernelBoxed)
	ivP := intervals.AnalyzePacked(kg.G, kg.NumVars, true)
	ivS := intervals.AnalyzeWith(kg.G, kg.NumVars, true, dataflow.KernelSparse)
	// The optional clients share one guide (the boxed constprop
	// solution) so all backends solve the identical problem.
	guide := cpB.Sol
	lvB := liveness.Analyze(kg.G, kg.NumVars, guide)
	lvP := liveness.AnalyzePacked(kg.G, kg.NumVars, guide)
	lvS := liveness.AnalyzeSparse(kg.G, kg.NumVars, guide)
	u := availexpr.NewUniverse(kg.G, kg.NumVars)
	aeB := availexpr.Analyze(kg.G, u, guide)
	aeP := availexpr.AnalyzePacked(kg.G, u, guide)
	aeS := availexpr.AnalyzeSparse(kg.G, u, guide)
	for i, d := range []diff{
		{"constprop", &constprop.Problem{NumVars: kg.NumVars, Conditional: true}, cpB.Sol, cpP.Sol, cpS.Sol, true},
		{"intervals", &intervals.Problem{NumVars: kg.NumVars, Conditional: true}, ivB.Sol, ivP.Sol, ivS.Sol, false},
		{"liveness", &liveness.Problem{NumVars: kg.NumVars, Guide: guide}, lvB.Sol, lvP.Sol, lvS.Sol, true},
		{"availexpr", &availexpr.Problem{U: u, Guide: guide}, aeB.Sol, aeP.Sol, aeS.Sol, true},
	} {
		rep := oracle.Differential(d.client, "analyze", d.lat, d.boxed, d.packed)
		checked += rep.Checked
		violations += len(rep.Violations)
		if !rep.OK() {
			return checked, violations, fmt.Errorf("bench %s: kernel differential: %w", name, rep.Err())
		}
		srep := oracle.DifferentialFacts(d.client, "analyze", d.lat, d.boxed, d.sparse)
		if !d.facts {
			srep = oracle.Differential(d.client, "analyze", d.lat, d.boxed, d.sparse)
		}
		checked += srep.Checked
		violations += len(srep.Violations)
		if !srep.OK() {
			return checked, violations, fmt.Errorf("bench %s: sparse kernel differential: %w", name, srep.Err())
		}
		work[i].DensePops += d.packed.Pops
		work[i].DenseIters += d.packed.Iterations
		work[i].SparsePops += d.sparse.Pops
		work[i].SparseIters += d.sparse.Iterations
	}
	return checked, violations, nil
}
