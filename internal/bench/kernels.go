package bench

import (
	"context"
	"fmt"
	"time"

	"pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/engine"
	"pathflow/internal/intervals"
	"pathflow/internal/liveness"
)

// KernelRow is one benchmark's boxed-vs-packed solver comparison on its
// analysis-tier graphs (the HPG of every qualified function, the CFG
// otherwise — the graphs the analyze stage actually solves).
type KernelRow struct {
	Name  string
	Nodes int // nodes across the timed graph set
	// Boxed and Packed are the wall time of one constant-propagation
	// sweep over the whole graph set on each backend.
	Boxed, Packed time.Duration
	// Speedup is Boxed / Packed.
	Speedup float64
	// Checked counts the vertices the differential gate compared across
	// all four clients; Violations counts pointwise disagreements (any
	// non-zero value is a kernel bug).
	Checked, Violations int
}

// AnalyzeGraph is one graph the analyze stage solves, with enough
// context to re-run every client on it. Exported so the root kernel
// benchmark times exactly the graph set the engine analyzes.
type AnalyzeGraph struct {
	Func    string
	G       *cfg.Graph
	NumVars int
}

// AnalyzeGraphs returns the analysis-tier graph set for in at the
// paper's recommended operating point (CA=0.97, CR=0.95): the HPG of
// every qualified function, the original CFG otherwise.
func AnalyzeGraphs(ctx context.Context, in *Instance) ([]AnalyzeGraph, error) {
	res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
	if err != nil {
		return nil, err
	}
	var graphs []AnalyzeGraph
	for _, name := range in.Prog.Order {
		fr := res.Funcs[name]
		g := fr.Fn.G
		if fr.Qualified() {
			g = fr.HPG.G
		}
		graphs = append(graphs, AnalyzeGraph{Func: name, G: g, NumVars: in.Prog.Funcs[name].NumVars()})
	}
	return graphs, nil
}

// kernelReps is how many timed constant-propagation sweeps each backend
// runs; the graphs are small enough that single solves sit near the
// timer floor.
const kernelReps = 50

// Kernels times boxed vs packed constant propagation over each
// benchmark's analysis graphs and runs the oracle's differential gate —
// all four clients, packed vs boxed, pointwise — as a correctness
// check riding along with the measurement.
func Kernels(ctx context.Context, instances []*Instance) ([]KernelRow, error) {
	var rows []KernelRow
	for _, in := range instances {
		graphs, err := AnalyzeGraphs(ctx, in)
		if err != nil {
			return nil, err
		}
		nodes := 0
		for _, kg := range graphs {
			nodes += kg.G.NumNodes()
		}

		row := KernelRow{Name: in.B.Name, Nodes: nodes}
		for _, kg := range graphs {
			checked, bad, err := kernelDifferential(in.B.Name, kg)
			if err != nil {
				return nil, err
			}
			row.Checked += checked
			row.Violations += bad
		}

		t0 := time.Now()
		for i := 0; i < kernelReps; i++ {
			for _, kg := range graphs {
				constprop.Analyze(kg.G, kg.NumVars, true)
			}
		}
		row.Boxed = time.Since(t0)
		t0 = time.Now()
		for i := 0; i < kernelReps; i++ {
			for _, kg := range graphs {
				constprop.AnalyzePacked(kg.G, kg.NumVars, true)
			}
		}
		row.Packed = time.Since(t0)
		if row.Packed > 0 {
			row.Speedup = float64(row.Boxed) / float64(row.Packed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// kernelDifferential solves every client on both backends over one
// graph and counts the vertices compared and the disagreements found.
func kernelDifferential(name string, kg AnalyzeGraph) (checked, violations int, err error) {
	type diff struct {
		client string
		lat    oracle.Lattice
		boxed  *dataflow.Solution
		packed *dataflow.Solution
	}
	cpB := constprop.Analyze(kg.G, kg.NumVars, true)
	cpP := constprop.AnalyzePacked(kg.G, kg.NumVars, true)
	ivB := intervals.AnalyzeWith(kg.G, kg.NumVars, true, dataflow.KernelBoxed)
	ivP := intervals.AnalyzePacked(kg.G, kg.NumVars, true)
	// The optional clients share one guide (the boxed constprop
	// solution) so both backends solve the identical problem.
	guide := cpB.Sol
	lvB := liveness.Analyze(kg.G, kg.NumVars, guide)
	lvP := liveness.AnalyzePacked(kg.G, kg.NumVars, guide)
	u := availexpr.NewUniverse(kg.G, kg.NumVars)
	aeB := availexpr.Analyze(kg.G, u, guide)
	aeP := availexpr.AnalyzePacked(kg.G, u, guide)
	for _, d := range []diff{
		{"constprop", &constprop.Problem{NumVars: kg.NumVars, Conditional: true}, cpB.Sol, cpP.Sol},
		{"intervals", &intervals.Problem{NumVars: kg.NumVars, Conditional: true}, ivB.Sol, ivP.Sol},
		{"liveness", &liveness.Problem{NumVars: kg.NumVars, Guide: guide}, lvB.Sol, lvP.Sol},
		{"availexpr", &availexpr.Problem{U: u, Guide: guide}, aeB.Sol, aeP.Sol},
	} {
		rep := oracle.Differential(d.client, "analyze", d.lat, d.boxed, d.packed)
		checked += rep.Checked
		violations += len(rep.Violations)
		if !rep.OK() {
			return checked, violations, fmt.Errorf("bench %s: kernel differential: %w", name, rep.Err())
		}
	}
	return checked, violations, nil
}
