// Package bench provides the benchmark suite and the experiment harness
// that regenerate every table and figure of Ammons & Larus (PLDI 1998).
//
// The paper evaluates on seven SPEC95 C benchmarks. Those sources (and
// the SUIF toolchain) are not reproducible here, so this package supplies
// seven synthetic programs in pathflow's mini-language, named after their
// SPEC95 counterparts and engineered to exhibit the *path structure* the
// paper reports for each:
//
//	compress — one tight loop, one dominant hot path, constants
//	           concentrated in a handful of blocks (Figure 7's
//	           "11 vertices account for virtually all constants").
//	go       — the outlier: a cascade of weakly-biased tactical branches
//	           per iteration, so the executed-path count and the HPG
//	           growth dwarf every other benchmark (Table 1, Figure 11).
//	m88ksim  — a fetch/decode/execute loop whose opcode stream is biased
//	           toward ALU ops; handler constants flow into the retire
//	           stage, giving a large qualified gain (~7% in the paper).
//	vortex   — call-heavy transaction processing over several routines,
//	           with per-routine schema constants (large gain).
//	ijpeg    — nested block/pixel loops; quantization constants decided
//	           per block, so most benefit arrives at low coverage.
//	li       — a recursive evaluator (exercises the profiler's
//	           activation stacks) with modest path-correlated gains.
//	perl     — two huge dispatch routines with few path-correlated
//	           constants: the smallest gain and the heaviest analysis,
//	           like the paper's yylex/eval.
//
// Each program mixes a hand-written hot core with generated ballast
// (bulk input-dependent arithmetic), a sprinkle of constants that plain
// Wegman-Zadek already finds (the baseline of the paper's "2-112×"
// ratio), and cold routines that are almost never called — giving the
// suite the proportions real programs have: path-correlated constants
// are a small slice of execution and most static code is cold.
//
// Each benchmark has a train input (drives hot-path selection) and a
// larger ref input (weights every evaluation), both produced by a
// deterministic SplitMix64 generator, mirroring the paper's use of the
// SPEC train/ref data sets.
package bench

import (
	"fmt"
	"strings"
	"sync"

	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
)

// Benchmark describes one workload.
type Benchmark struct {
	Name   string
	Source string
	// TrainArgs/RefArgs are the programs' arg(k) vectors; by convention
	// arg(0) scales the main loop.
	TrainArgs, RefArgs []ir.Value
	// TrainSeed/RefSeed seed the input() streams.
	TrainSeed, RefSeed uint64
	// InputLen is the length of the generated input stream (the stream
	// wraps, so it only needs to be long enough to avoid obvious
	// periodicity).
	InputLen int

	once sync.Once
	prog *cfg.Program
	err  error
}

// Program compiles the benchmark source (cached).
func (b *Benchmark) Program() (*cfg.Program, error) {
	b.once.Do(func() { b.prog, b.err = lang.Compile(b.Source) })
	return b.prog, b.err
}

// splitmix64 is a tiny deterministic PRNG, independent of Go's math/rand
// so that profiles are bit-stable across Go releases.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// InputValues generates n non-negative input values from seed.
func InputValues(seed uint64, n int) []ir.Value {
	g := splitmix64(seed)
	out := make([]ir.Value, n)
	for i := range out {
		out[i] = ir.Value(g.next() & 0x7fffffff)
	}
	return out
}

// TrainOptions returns fresh interpreter options for the training run.
func (b *Benchmark) TrainOptions() interp.Options {
	return interp.Options{
		Args:  b.TrainArgs,
		Input: &interp.SliceInput{Values: InputValues(b.TrainSeed, b.InputLen)},
	}
}

// RefOptions returns fresh interpreter options for the evaluation run.
func (b *Benchmark) RefOptions() interp.Options {
	return interp.Options{
		Args:  b.RefArgs,
		Input: &interp.SliceInput{Values: InputValues(b.RefSeed, b.InputLen)},
	}
}

// UnknownBenchmarkError reports a program name that is not in the
// suite. Callers that surface errors to users (the CLI, the serving
// layer's 404 bodies) share its Hint instead of re-deriving the list.
type UnknownBenchmarkError struct{ Name string }

func (e *UnknownBenchmarkError) Error() string {
	return fmt.Sprintf("bench: unknown benchmark %q", e.Name)
}

// Hint names the valid benchmarks.
func (e *UnknownBenchmarkError) Hint() string {
	names := make([]string, len(All()))
	for i, b := range All() {
		names[i] = b.Name
	}
	return "known benchmarks: " + strings.Join(names, ", ")
}

// Get returns a benchmark by name.
func Get(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, &UnknownBenchmarkError{Name: name}
}

var all []*Benchmark

// All returns the benchmark suite in alphabetical order.
func All() []*Benchmark { return all }

func init() {
	all = []*Benchmark{
		makeCompress(), makeGo(), makeIjpeg(), makeLi(), makeM88ksim(), makePerl(), makeVortex(),
	}
}

// Cold-routine suites giving vortex and perl the large cold code bodies
// their SPEC95 counterparts have (the paper's perl and vortex are the
// biggest programs in Table 1).
var vortexColdSrc, vortexColdCall = coldSuite("vtxcold", 4, 18, 45)
var perlColdSrc, perlColdCall = coldSuite("perlcold", 10, 20, 75)

func makeCompress() *Benchmark {
	src := `
// compress: LZW-flavored loop. One biased mode branch decides the hash
// configuration; the hot leg pins hbits/hshift/ratio, making the derived
// mask/step/width computations path-constant. The rare table-reset block
// holds the constants plain Wegman-Zadek already finds.
func main() {
	n = arg(0);
	limit = 4096;
	i = 0;
	z = 1;
	checksum = 0;
	free_ent = 257;
	while (i < n) {
		c = input() % 256;
		mode = input() % 100;
		if (mode < 92) {
			hbits = 13;
			hshift = 8;
			ratio = 2;
		} else {
			hbits = (input() % 8) + 9;
			hshift = input() % 8;
			ratio = (input() % 4) + 1;
		}
		mask = (1 << hbits) - 1;
		step = hshift * ratio + 7;
		width = hbits + ratio;
		h = ((c << hshift) ^ c) & mask;
		code = h + step + width;
` + ballast("z", "c", 11, 34) + constChain("cc", 111, 30) + `
		checksum = checksum + cc % 7;
		free_ent = free_ent + 1;
		if (free_ent > 280) {
			bound = limit - 1;
			checksum = checksum + bound;
			free_ent = 257;
		}
		checksum = checksum + code + (z & 255);
		i = i + 1;
	}
	if (arg(9) == 424242) {
		checksum = checksum + audit(checksum) + report(checksum);
	}
	print(checksum);
}
` + coldFunc("audit", 14, 12) + coldFunc("report", 12, 13)
	return &Benchmark{
		Name: "compress", Source: src,
		TrainArgs: []ir.Value{900},
		RefArgs:   []ir.Value{9000},
		TrainSeed: 101, RefSeed: 102, InputLen: 8192,
	}
}

func makeGo() *Benchmark {
	src := `
// go: position evaluator with a cascade of seven independently biased
// tactical tests per move. The number of executed acyclic paths explodes
// combinatorially, so covering 97% of the run needs far more hot paths
// than any other benchmark — and tracing them blows up the HPG.
func main() {
	n = arg(0);
	boardsize = 19;
	i = 0;
	z = 1;
	score = 0;
	while (i < n) {
		t1 = input() % 100;
		if (t1 < 90) { w1 = 3; } else { w1 = (input() % 7) + 1; }
		t2 = input() % 100;
		if (t2 < 88) { w2 = 5; } else { w2 = (input() % 9) + 1; }
		t3 = input() % 100;
		if (t3 < 92) { w3 = 2; } else { w3 = (input() % 5) + 1; }
		t4 = input() % 100;
		if (t4 < 86) { w4 = 7; } else { w4 = (input() % 11) + 1; }
		t5 = input() % 100;
		if (t5 < 91) { w5 = 1; } else { w5 = (input() % 3) + 1; }
		t6 = input() % 100;
		if (t6 < 87) { w6 = 4; } else { w6 = (input() % 6) + 1; }
		t7 = input() % 100;
		if (t7 < 93) { w7 = 6; } else { w7 = (input() % 8) + 1; }

		// Pattern weights: constant only along all-hot path prefixes.
		atari = w1 * 2 + w2;
		ladder = w3 * w4 + 1;
		shape = w5 + w6 * 3;
		influence = w7 * 2 + atari;
		eval = atari + ladder * shape + influence;
` + ballast("z", "t1", 21, 26) + constChain("gc", 211, 45) + `
		edge = boardsize - 1;
		score = score + eval + (z & 1023) + gc % 3 + edge % 5;
		if (score > 100000000) {
			score = score % 100000007;
		}
		i = i + 1;
	}
	if (arg(9) == 424242) {
		score = score + joseki(score) + fuseki(score) + endgame(score);
	}
	print(score);
}
` + coldFunc("joseki", 16, 22) + coldFunc("fuseki", 14, 23) + coldFunc("endgame", 12, 24)
	return &Benchmark{
		Name: "go", Source: src,
		TrainArgs: []ir.Value{700},
		RefArgs:   []ir.Value{5000},
		TrainSeed: 201, RefSeed: 202, InputLen: 16384,
	}
}

func makeM88ksim() *Benchmark {
	src := `
// m88ksim: fetch/decode/execute loop. The opcode stream is biased toward
// the ALU group, whose handler pins width/cycles/mode; the shared retire
// stage then computes path-constant costs — the shape that gives the
// paper's m88ksim its ~7% gain in constant instructions.
func step(op, reg) {
	if (op < 9) {
		width = 4;
		cycles = 1;
		mode = 2;
		// Correlated re-test of the opcode class inside the ALU handler
		// (real decoders re-check the group before picking an issue
		// port). op is an opaque argument, so no lattice decides this;
		// the branch-correlation detector proves the else leg infeasible
		// and pins issue = 2 — on the original CFG with no profile
		// (the feasibility axis alone), and again on the reduced graph's
		// residual region, where hot-path duplication never reaches and
		// the frequency axis is blind.
		if (op < 9) {
			port = 1;
		} else {
			port = input() % 5;
		}
		issue = port * 2;
	} else if (op < 12) {
		width = 8;
		cycles = 3;
		mode = input() % 4;
		issue = 3;
	} else if (op < 14) {
		width = 2;
		cycles = 2;
		mode = 1;
		issue = 4;
	} else {
		width = (input() % 8) + 1;
		cycles = (input() % 5) + 1;
		mode = input() % 4;
		issue = input() % 6;
	}
	// Path-dead spill: the hot ALU leg pins mode = 2, so on the hot path
	// graph the guided liveness proves this store dead — its only use
	// hides behind mode == 3, a branch only the qualified constant
	// propagation decides. On the original CFG the handler merge erases
	// mode and the store stays live: the backward client's analog of a
	// non-local constant.
	spill = (reg << 1) + width;
	extra = 0;
	if (mode == 3) {
		extra = spill % 13;
	}
	// retire: cost model folded from handler constants on the hot path.
	// The divisions are the expensive operations constant folding wins
	// back, which is where m88ksim's large speedup comes from.
	cost = cycles * 3 + width / 4 + extra;
	align = (1 << mode) - 1;
	span = width * 2 + cycles;
	penalty = 64 / width + cycles * cycles;
	scale = 4096 / (width * cycles + 1);
	val = (reg << mode) & ((1 << span) - 1);
	return val + cost + align + penalty % 9 + scale % 11 + issue % 7;
}
func main() {
	n = arg(0);
	memsize = 65536;
	pc = 0;
	acc = 0;
	z = 1;
	reg = 7;
	while (pc < n) {
		op = input() % 16;
		// Non-distributive pair: both legs sum to 3, which
		// meet-over-paths sees but iterative Wegman-Zadek cannot — the
		// "Identical" category of the paper's Figure 13.
		if (pc % 2 == 0) {
			lo = 1;
			hi = 2;
		} else {
			lo = 2;
			hi = 1;
		}
		parity = lo + hi;
		acc = acc + step(op, reg) + parity;
		reg = (reg * 5 + 1) % 8191;
` + ballast("z", "reg", 31, 30) + constChain("mc", 311, 35) + `
		acc = acc + (z & 63) + mc % 5;
		if (pc % 8 == 0) {
			top = memsize - 4;
			acc = acc + top % 97;
		}
		if (acc > 1000000) {
			acc = acc % 1000003;
		}
		pc = pc + 1;
	}
	if (arg(9) == 424242) {
		acc = acc + trapdump(acc) + m88cold0(acc) + m88cold1(acc);
	}
	print(acc);
}
` + coldFunc("trapdump", 18, 32) + coldFunc("m88cold0", 14, 33) + coldFunc("m88cold1", 14, 34)
	return &Benchmark{
		Name: "m88ksim", Source: src,
		TrainArgs: []ir.Value{1100},
		RefArgs:   []ir.Value{11000},
		TrainSeed: 301, RefSeed: 302, InputLen: 8192,
	}
}

func makeVortex() *Benchmark {
	src := `
// vortex: transaction processing over several routines. Each routine has
// a schema-mode branch whose hot leg pins table parameters; lookups
// dominate the transaction mix.
func hash_key(k, mode) {
	if (mode == 1) {
		p = 31;
		m = 1021;
	} else {
		p = (input() % 61) + 2;
		m = (input() % 2039) + 17;
	}
	probe = p * 2 + m % 7;
	slot = (k * p) % m;
	return slot + probe;
}
func lookup(k, mode) {
	h = hash_key(k, mode);
	depth = 0;
	while (h % 5 == 0 && depth < 3) {
		h = h / 5 + 1;
		depth = depth + 1;
	}
	if (mode == 1) {
		limit = 64;
		stride = 8;
	} else {
		limit = (input() % 128) + 1;
		stride = (input() % 16) + 1;
	}
	window = limit / stride + limit % stride;
	return h % (window + 1) + depth;
}
func insert(k, mode) {
	h = hash_key(k, mode);
	if (mode == 1) {
		grow = 4;
	} else {
		grow = (input() % 8) + 1;
	}
	cap = grow * 16 + 3;
	return (h + cap) % 4093;
}
func main() {
	n = arg(0);
	maxrec = 32768;
	i = 0;
	z = 1;
	total = 0;
	while (i < n) {
		k = input() % 65536;
		sel = input() % 100;
		md = input() % 100;
		mode = 0;
		if (md < 90) { mode = 1; }
		// Two-phase constant: 32 on even transactions, 48 on odd ones —
		// constant at every duplicated site but with different values,
		// the paper's "Variable" category (it reports vortex and go
		// carrying a small but significant number of these).
		if (i % 2 == 0) { phase = 2; } else { phase = 3; }
		korigin = phase * 16;
		total = total + korigin % 7;
		if (sel < 70) {
			total = total + lookup(k, mode);
		} else if (sel < 90) {
			total = total + insert(k, mode);
		} else {
			total = total + lookup(k, mode) + insert(k, mode);
		}
` + ballast("z", "k", 41, 22) + constChain("vc", 411, 40) + `
		total = total + (z & 127) + vc % 9;
		if (i % 4 == 0) {
			quota = maxrec / 4;
			total = total + quota % 13;
		}
		if (total > 50000000) {
			total = total % 49999999;
		}
		i = i + 1;
	}
	if (arg(9) == 424242) {
		total = total + integrity(total) + compact(total) + ` + vortexColdCall + `;
	}
	print(total);
}
` + coldFunc("integrity", 16, 42) + coldFunc("compact", 14, 43) + vortexColdSrc
	return &Benchmark{
		Name: "vortex", Source: src,
		TrainArgs: []ir.Value{800},
		RefArgs:   []ir.Value{8000},
		TrainSeed: 401, RefSeed: 402, InputLen: 8192,
	}
}

func makeIjpeg() *Benchmark {
	src := `
// ijpeg: nested block/pixel loops. Quality is decided once per block and
// strongly biased, so the single hottest block path already carries most
// of the constants — the paper's ijpeg attains most of its benefit at the
// lowest tested coverage. The per-pixel inner loop crosses recording
// edges, so its values cannot be path-qualified: only the per-block
// configuration pays off, as in the paper.
func main() {
	blocks = arg(0);
	width = 64;
	b = 0;
	z = 1;
	out = 0;
	while (b < blocks) {
		quality = input() % 100;
		if (quality < 88) {
			q = 16;
			s = 2;
			// Correlated re-test of the block's quality mode: real codecs
			// re-check configuration flags inside the leg that set them.
			// quality is opaque input, so no lattice folds this — but the
			// branch-correlation detector proves the inner else infeasible
			// on the *original CFG*, pinning sharp = 4 with no profile at
			// all: the feasibility axis standing alone.
			if (quality < 88) {
				sharp = 4;
			} else {
				sharp = input() % 3;
			}
			qbias = sharp * 3;
		} else {
			q = (input() % 31) + 1;
			s = (input() % 3) + 1;
			sharp = 1;
			qbias = 1;
		}
		qhalf = q / 2;
		bias = s * 3 + 1;
		round = qhalf + bias;
		dim = width * 8;
` + constChain("jc", 511, 30) + `
		p = 0;
		acc = 0;
		while (p < 8) {
			pix = input() % 256;
			dct = (pix * s) >> 1;
			quant = (dct + round) / (q + 1);
			acc = acc + quant;
` + ballast("z", "pix", 51, 3) + `
			p = p + 1;
		}
		if (acc > 255) { acc = 255; }
		out = out + acc + (z & 31) + dim / 64 + jc % 3 + qbias % 7;
		b = b + 1;
	}
	if (arg(9) == 424242) {
		out = out + huffdump(out) + jpegcold0(out);
	}
	print(out);
}
` + coldFunc("huffdump", 15, 52) + coldFunc("jpegcold0", 14, 53)
	return &Benchmark{
		Name: "ijpeg", Source: src,
		TrainArgs: []ir.Value{250},
		RefArgs:   []ir.Value{2500},
		TrainSeed: 501, RefSeed: 502, InputLen: 8192,
	}
}

func makeLi() *Benchmark {
	src := `
// li: a recursive expression evaluator. Node-type dispatch is biased
// toward cons cells; tree recursion exercises the profiler's activation
// stacks. The per-node constants cross the dispatch join, but the
// recursion keeps gains modest.
func eval(depth) {
	if (depth <= 0) {
		return 1;
	}
	t = input() % 10;
	sub = 0;
	if (t < 6) {
		car = 3;
		cdr = 5;
		sub = eval(depth - 1);
	} else if (t < 8) {
		car = 2;
		cdr = 1;
		sub = eval(depth - 1) + eval(depth - 2);
	} else {
		car = input() % 7;
		cdr = input() % 5;
		sub = input() % 97;
	}
	h = car * 8 + cdr;
` + constChain("lc", 611, 10) + `
	return h + sub + lc % 2;
}
func main() {
	exprs = arg(0);
	heap = 262144;
	depth = arg(1);
	i = 0;
	z = 1;
	total = 0;
	while (i < exprs) {
		total = total + eval(depth);
		gcmark = heap - 2;
		z = z ^ (total * 13 + 5);
` + ballast("z", "total", 61, 12) + constChain("lm", 612, 10) + `
		total = total + (z & 15) + gcmark % 3 + lm % 2;
		if (total > 100000000) {
			total = total % 100000007;
		}
		i = i + 1;
	}
	if (arg(9) == 424242) {
		total = total + gcsweep(total);
	}
	print(total);
}
` + coldFunc("gcsweep", 16, 62)
	return &Benchmark{
		Name: "li", Source: src,
		TrainArgs: []ir.Value{60, 6},
		RefArgs:   []ir.Value{420, 7},
		TrainSeed: 601, RefSeed: 602, InputLen: 8192,
	}
}

func makePerl() *Benchmark {
	src := `
// perl: two huge routines — a tokenizer and an opcode evaluator — with
// long dispatch chains whose legs mostly produce input-dependent values.
// Only a sliver of the computation is path-constant, so qualification
// buys little (the paper's perl gains 0.6%), while the sheer size of the
// routines makes its analysis the most expensive.
func yylex(c, state) {
	v = 0;
` + dispatchChain("c", "v", 16, 71) + `
	// vq is path-constant only along the arms whose token class is
	// pinned — a sliver, as in the real tokenizer.
	vq = v * 2 + 1;
	tok = c / 12;
	if (state > 0 && tok == 1) {
		v = v + state;
	}
	return tok * 1000 + (v + vq) % 1000;
}
func evalop(op, a, b) {
	r = 0;
	if (op == 0) {
		r = a + b;
	} else if (op == 1) {
		r = a - b;
	} else if (op == 2) {
		r = a * b;
	} else if (op == 3) {
		r = a / (b + 1);
	} else if (op == 4) {
		r = a % (b + 1);
	} else if (op == 5) {
		r = a & b;
	} else if (op == 6) {
		r = a | b;
	} else if (op == 7) {
		r = a ^ b;
	} else if (op == 8) {
		r = a << (b % 8);
	} else if (op == 9) {
		r = a >> (b % 8);
	} else if (op == 10) {
		slot = 12;
		r = a + slot;
	} else {
		pad = 4;
		r = b + pad * 2;
	}
	return r;
}
func main() {
	n = arg(0);
	bufsz = 8192;
	i = 0;
	state = 0;
	z = 1;
	out = 0;
	while (i < n) {
		c = input() % 100;
		t = yylex(c, state);
		op = input() % 12;
		a = t % 4096;
		b2 = input() % 4096;
		out = out + evalop(op, a, b2);
		margin = bufsz - 2;
` + ballast("z", "t", 72, 26) + constChain("pc", 711, 40) + `
		out = out + (z & 255) + pc % 11;
		if (i % 2 == 0) {
			out = out + margin % 5;
		}
		state = (state + t) % 17;
		i = i + 1;
	}
	if (arg(9) == 424242) {
		out = out + stackdump(out) + symdump(out) + ` + perlColdCall + `;
	}
	print(out);
}
` + coldFunc("stackdump", 20, 73) + coldFunc("symdump", 18, 74) + perlColdSrc
	return &Benchmark{
		Name: "perl", Source: src,
		TrainArgs: []ir.Value{500},
		RefArgs:   []ir.Value{5000},
		TrainSeed: 701, RefSeed: 702, InputLen: 16384,
	}
}
