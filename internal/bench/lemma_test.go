package bench_test

import (
	"context"
	"testing"

	"pathflow/internal/bench"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/profile"
)

// Lemmas 1 and 2 of Ammons & Larus (§4.2) underwrite profile
// translation: every Ball-Larus path of the original graph corresponds
// to exactly one Ball-Larus path of the hot path graph (and of the
// reduced hot path graph), so a profile can be re-expressed on the
// overlay without losing or inventing flow. This test checks both
// conservation laws on every qualified function of all seven
// benchmarks:
//
//   - total flow: the translated profile carries the same number of
//     path traversals and the same number of distinct paths;
//   - per-path mass: mapping each translated path's edges back through
//     OverlayOrigEdge recovers an original path with exactly the same
//     count, and no two translated paths collapse onto one original.
func checkTranslation(t *testing.T, label string, orig *bl.Profile, og *cfg.Graph, ov profile.Overlay, out *bl.Profile) {
	t.Helper()
	if got, want := out.TotalCount(), orig.TotalCount(); got != want {
		t.Errorf("%s: translated total flow %d, want %d (Lemma 1 violated)", label, got, want)
	}
	if got, want := out.NumPaths(), orig.NumPaths(); got != want {
		t.Errorf("%s: translated profile has %d distinct paths, want %d", label, got, want)
	}
	seen := map[string]bool{}
	for _, ent := range out.Entries {
		back := make([]cfg.EdgeID, len(ent.Path.Edges))
		for i, e := range ent.Path.Edges {
			back[i] = ov.OverlayOrigEdge(e)
		}
		key := bl.Path{Edges: back}.Key()
		oe, ok := orig.Entries[key]
		if !ok {
			t.Errorf("%s: translated path %s maps back to %s, absent from the original profile",
				label, ent.Path.Key(), key)
			continue
		}
		if seen[key] {
			t.Errorf("%s: two translated paths collapse onto original %s", label, key)
			continue
		}
		seen[key] = true
		if ent.Count != oe.Count {
			t.Errorf("%s: path %s carries count %d, original has %d (Lemma 2 violated)",
				label, key, ent.Count, oe.Count)
		}
	}
}

// TestLemmasHoldOnAllBenchmarks pushes the training profile of every
// benchmark function through both overlays — the HPG (the pipeline's
// own translation) and the rHPG (translated here) — and checks the
// conservation laws end to end.
func TestLemmasHoldOnAllBenchmarks(t *testing.T) {
	ctx := context.Background()
	o := engine.Options{CA: 0.97, CR: 0.95}
	qualified := 0
	for _, b := range bench.All() {
		in, err := bench.Load(b, nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res, err := in.Analyze(ctx, o)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, name := range res.Prog.Order {
			fr := res.Funcs[name]
			if !fr.Qualified() {
				continue
			}
			qualified++
			label := b.Name + "/" + name

			// Lemma round trip onto the HPG: the pipeline's translated
			// profile must conserve the training profile exactly.
			checkTranslation(t, label+"/hpg", fr.Train, fr.Fn.G, fr.HPG, fr.HPGProf)

			// And onto the rHPG: reduction preserves the overlay
			// property, so translation composes.
			rprof, err := profile.Translate(fr.Train, fr.Fn.G, fr.Red)
			if err != nil {
				t.Errorf("%s: translation onto rHPG failed: %v", label, err)
				continue
			}
			checkTranslation(t, label+"/rhpg", fr.Train, fr.Fn.G, fr.Red, rprof)
		}
	}
	if qualified == 0 {
		t.Fatal("no benchmark function qualified; the lemma check never ran")
	}
}
