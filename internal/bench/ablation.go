package bench

import (
	"context"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/classify"
	"pathflow/internal/constprop"
	"pathflow/internal/engine"
	"pathflow/internal/intervals"
	"pathflow/internal/profile"
	"pathflow/internal/signs"
)

// Ablation experiments beyond the paper's published tables: each isolates
// one design choice DESIGN.md calls out.

// CRPoint measures the reduction cutoff tradeoff: how much of the
// qualified precision survives reduction at a given CR, and at what size.
type CRPoint struct {
	Name string
	CR   float64
	// RedNodes is the reduced graph size; NonlocalConstDyn the dynamic
	// non-local constants surviving on it (ref-weighted).
	RedNodes         int
	NonlocalConstDyn int64
	// Preserved is NonlocalConstDyn relative to CR = 1 (no benefit
	// cutoff, every weighted vertex kept).
	Preserved float64
}

// CRSweep sweeps the reduction cutoff at fixed CA = 0.97. With the
// artifact cache enabled this is the engine's best case: every CR point
// reuses the HPG, its solution and the translated profile, recomputing
// only reduction.
func CRSweep(ctx context.Context, instances []*Instance, crs []float64) ([]CRPoint, error) {
	var pts []CRPoint
	for _, in := range instances {
		full, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 1.0})
		if err != nil {
			return nil, err
		}
		fm, err := in.Evaluate(full)
		if err != nil {
			return nil, err
		}
		for _, cr := range crs {
			res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: cr})
			if err != nil {
				return nil, err
			}
			m, err := in.Evaluate(res)
			if err != nil {
				return nil, err
			}
			pt := CRPoint{Name: in.B.Name, CR: cr, RedNodes: m.RedNodes, NonlocalConstDyn: m.NonlocalConstDyn}
			if fm.NonlocalConstDyn > 0 {
				pt.Preserved = float64(m.NonlocalConstDyn) / float64(fm.NonlocalConstDyn)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// BranchRow measures decided branches: the §7 Mueller-Whalley connection.
type BranchRow struct {
	Name string
	// BaseDyn / QualDyn are dynamic executions of branches whose
	// condition is a known constant, on the original graph and on the
	// reduced hot path graph.
	BaseDyn, QualDyn int64
	// BaseStatic / QualStatic are the corresponding site counts.
	BaseStatic, QualStatic int
}

// Branches measures constant-condition branches at CA = 0.97.
func Branches(ctx context.Context, instances []*Instance) ([]BranchRow, error) {
	var rows []BranchRow
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			return nil, err
		}
		row := BranchRow{Name: in.B.Name}
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			refProf := in.Ref.Funcs[name]
			bs, bd := classify.DecidedBranches(fn.G, fr.OrigSol, profile.NodeFrequencies(refProf, fn.G))
			row.BaseStatic += bs
			row.BaseDyn += bd
			ep, err := fr.TranslateEval(refProf)
			if err != nil {
				return nil, err
			}
			qs, qd := classify.DecidedBranches(fr.FinalGraph(), fr.FinalSol(),
				profile.NodeFrequencies(ep, fr.FinalGraph()))
			row.QualStatic += qs
			row.QualDyn += qd
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SignsRow compares baseline and qualified sign analysis: the second
// data-flow client, demonstrating §8's "applicable to other data-flow
// problems".
type SignsRow struct {
	Name string
	// BaseDyn / QualDyn are dynamic executions of instructions with a
	// definite sign.
	BaseDyn, QualDyn int64
	// Gain is the relative improvement.
	Gain float64
}

// Signs measures definite-sign instructions at CA = 0.97.
func Signs(ctx context.Context, instances []*Instance) ([]SignsRow, error) {
	var rows []SignsRow
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			return nil, err
		}
		row := SignsRow{Name: in.B.Name}
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			refProf := in.Ref.Funcs[name]
			base := signs.Analyze(fn.G, fn.NumVars(), true)
			_, bd := signs.DefiniteCount(fn.G, base, profile.NodeFrequencies(refProf, fn.G))
			row.BaseDyn += bd
			g := fr.FinalGraph()
			qual := signs.Analyze(g, fn.NumVars(), true)
			ep, err := fr.TranslateEval(refProf)
			if err != nil {
				return nil, err
			}
			_, qd := signs.DefiniteCount(g, qual, profile.NodeFrequencies(ep, g))
			row.QualDyn += qd
		}
		if row.BaseDyn > 0 {
			row.Gain = float64(row.QualDyn-row.BaseDyn) / float64(row.BaseDyn)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RangesRow compares baseline and qualified value-range analysis — the
// third client, whose lattice needs widening.
type RangesRow struct {
	Name string
	// BaseDyn / QualDyn are dynamic executions of instructions with a
	// finitely bounded result range.
	BaseDyn, QualDyn int64
	// Gain is the relative improvement.
	Gain float64
}

// Ranges measures bounded-range instructions at CA = 0.97.
func Ranges(ctx context.Context, instances []*Instance) ([]RangesRow, error) {
	var rows []RangesRow
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			return nil, err
		}
		row := RangesRow{Name: in.B.Name}
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			refProf := in.Ref.Funcs[name]
			base := intervals.Analyze(fn.G, fn.NumVars(), true)
			_, bd := intervals.BoundedCount(fn.G, base, profile.NodeFrequencies(refProf, fn.G))
			row.BaseDyn += bd
			g := fr.FinalGraph()
			qual := intervals.Analyze(g, fn.NumVars(), true)
			ep, err := fr.TranslateEval(refProf)
			if err != nil {
				return nil, err
			}
			_, qd := intervals.BoundedCount(g, qual, profile.NodeFrequencies(ep, g))
			row.QualDyn += qd
		}
		if row.BaseDyn > 0 {
			row.Gain = float64(row.QualDyn-row.BaseDyn) / float64(row.BaseDyn)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EdgeSelRow compares hot-path selection from true path profiles against
// the classic estimation from edge profiles (heaviest-out-edge peeling) —
// quantifying the motivation pathflow inherits from Ball-Larus [BL96].
type EdgeSelRow struct {
	Name string
	// PathDyn / EdgeDyn are qualified non-local constant executions with
	// path-profile-selected and edge-estimated hot paths, both at CA =
	// 0.97 and CR = 0.95.
	PathDyn, EdgeDyn int64
	// PathHot / EdgeHot count the selected paths; EdgeReal counts how
	// many edge-estimated paths were actually executed in training.
	PathHot, EdgeHot, EdgeReal int
}

// EdgeSelection runs the selection-strategy comparison.
func EdgeSelection(ctx context.Context, instances []*Instance) ([]EdgeSelRow, error) {
	o := engine.Options{CA: 0.97, CR: 0.95}
	var rows []EdgeSelRow
	for _, in := range instances {
		pathRes, err := in.Analyze(ctx, o)
		if err != nil {
			return nil, err
		}
		row := EdgeSelRow{Name: in.B.Name}
		for _, name := range in.Prog.Order {
			fn := in.Prog.Funcs[name]
			train := in.Train.Funcs[name]
			refProf := in.Ref.Funcs[name]

			fr := pathRes.Funcs[name]
			row.PathHot += len(fr.Hot)
			pd, err := nonlocalConstDyn(fr, fn, refProf)
			if err != nil {
				return nil, err
			}
			row.PathDyn += pd

			var edgeHot []bl.Path
			if train != nil && train.NumPaths() > 0 {
				counts := profile.EdgeCounts(train, fn.G)
				edgeHot = profile.SelectHotFromEdges(counts, fn.G, train.R, o.CA)
			}
			row.EdgeHot += len(edgeHot)
			for _, p := range edgeHot {
				if _, ok := train.Entries[p.Key()]; ok {
					row.EdgeReal++
				}
			}
			efr, err := in.Eng.AnalyzeFuncHot(ctx, fn, train, edgeHot, o)
			if err != nil {
				return nil, err
			}
			ed, err := nonlocalConstDyn(efr, fn, refProf)
			if err != nil {
				return nil, err
			}
			row.EdgeDyn += ed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func nonlocalConstDyn(fr *engine.FuncResult, fn *cfg.Func, refProf *bl.Profile) (int64, error) {
	ep, err := fr.TranslateEval(refProf)
	if err != nil {
		return 0, err
	}
	g := fr.FinalGraph()
	freq := profile.NodeFrequencies(ep, g)
	return classify.SiteConstDyn(g, fr.FinalSol(), freq, fn.NumVars(), true), nil
}

// PropRow compares Wegman-Zadek conditional propagation against plain
// iterative propagation on the same reduced hot path graph — the value of
// executable-edge pruning, independent of qualification.
type PropRow struct {
	Name string
	// PlainDyn / CondDyn are dynamic constant-result instructions under
	// plain and conditional propagation on the rHPG.
	PlainDyn, CondDyn int64
}

// Propagation runs the comparison at CA = 0.97.
func Propagation(ctx context.Context, instances []*Instance) ([]PropRow, error) {
	var rows []PropRow
	for _, in := range instances {
		res, err := in.Analyze(ctx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			return nil, err
		}
		row := PropRow{Name: in.B.Name}
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			g := fr.FinalGraph()
			ep, err := fr.TranslateEval(in.Ref.Funcs[name])
			if err != nil {
				return nil, err
			}
			freq := profile.NodeFrequencies(ep, g)
			plain := constprop.Analyze(g, fn.NumVars(), false)
			row.PlainDyn += classify.SiteConstDyn(g, plain, freq, fn.NumVars(), false)
			row.CondDyn += classify.SiteConstDyn(g, fr.FinalSol(), freq, fn.NumVars(), false)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
