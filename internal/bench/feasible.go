package bench

import (
	"context"
	"time"

	"pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/engine"
	"pathflow/internal/feasible"
	"pathflow/internal/intervals"
	"pathflow/internal/liveness"
)

// FeasibleClients is the client order of every FeasibleRow.Clients slice.
var FeasibleClients = []string{"constprop", "intervals", "liveness", "availexpr"}

// FeasibleClient is one client's precision deltas in the two-axis
// ablation: the number of *original CFG vertices* about which an axis
// combination learned something strictly more precise than the plain
// CFG solution. All three columns count on that one shared universe —
// a hot-path graph holds many copies of a CFG vertex, so the oracle's
// per-base-vertex ImprovedAt bitmap is used (not its raw per-copy
// Improved counter) and the columns are directly comparable.
type FeasibleClient struct {
	Client string
	// FreqOnly: CFG vertices improved by some copy in the unmasked
	// reduced-HPG solution (the paper's axis alone). FeasOnly: CFG
	// vertices improved by the infeasible-edge-masked CFG solution
	// (this PR's axis alone — no profile involved). Both: CFG vertices
	// improved by the combined configuration's artifacts — the masked
	// CFG solution or some copy in the masked reduced-HPG solution —
	// which is exactly what the engine produces with Feasible on. By
	// construction Both ⊇ FeasOnly, and Both ⊇ FreqOnly pointwise
	// (masking only raises facts), so Both exceeding the larger of the
	// two on a benchmark means each axis reached vertices the other
	// could not.
	FreqOnly, FeasOnly, Both int
}

// FeasibleRow is one benchmark's two-axis ablation.
type FeasibleRow struct {
	Name string
	// InfeasibleCFG / InfeasibleRed count the edges the detector proved
	// infeasible, summed over the program's original CFGs and over the
	// qualified functions' reduced graphs.
	InfeasibleCFG, InfeasibleRed int
	// DetectTime is the total branch-correlation detection cost;
	// SolveTime the total cost of re-solving all four clients on the
	// pruned views (both tiers).
	DetectTime, SolveTime time.Duration
	Clients               []FeasibleClient
}

// Feasible runs the two-axis precision ablation at the recommended
// point. The engine runs feasibility-off, so the attached solutions are
// the plain frequency-axis artifacts; the harness then derives the
// feasibility-only and combined solutions on the engine's own graphs
// (the axes stay decoupled — no masked artifact ever feeds a baseline).
func Feasible(ctx context.Context, instances []*Instance) ([]FeasibleRow, error) {
	o := engine.Options{CA: 0.97, CR: 0.95, Clients: engine.ClientsAll}
	var rows []FeasibleRow
	for _, in := range instances {
		res, err := in.Analyze(ctx, o)
		if err != nil {
			return nil, err
		}
		row := FeasibleRow{Name: in.B.Name}
		for _, c := range FeasibleClients {
			row.Clients = append(row.Clients, FeasibleClient{Client: c})
		}
		cp, iv, lv, av := &row.Clients[0], &row.Clients[1], &row.Clients[2], &row.Clients[3]
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			nv := fn.NumVars()
			g := fn.G

			cpLat := &constprop.Problem{NumVars: nv}
			thr := intervals.Thresholds(g)
			ivLat := &intervals.ClampedProblem{NumVars: nv, Conditional: true, T: thr}
			lvLat := &liveness.Problem{NumVars: nv}
			u := fr.AvailU
			if u == nil {
				u = availexpr.NewUniverse(g, nv)
			}
			avLat := &availexpr.Problem{U: u}

			// Unmasked CFG baselines — the common yardstick of all three
			// columns.
			cpBase := fr.OrigSol
			ivBase := intervals.AnalyzeClamped(g, nv, thr, true)
			lvBase := fr.LiveCFG
			if lvBase == nil {
				lvBase = liveness.Analyze(g, nv, cpBase.Sol)
			}
			avBase := fr.AvailCFG
			if avBase == nil {
				avBase = availexpr.Analyze(g, u, cpBase.Sol)
			}

			// Feasibility only: prune the original CFG, re-solve, compare
			// in place.
			t0 := time.Now()
			feas := feasible.Detect(g, nv)
			row.DetectTime += time.Since(t0)
			row.InfeasibleCFG += feas.Count
			t0 = time.Now()
			cpF := constprop.AnalyzeMasked(g, nv, true, in.Kernel, feas.Mask())
			ivF := intervals.AnalyzeClampedMasked(g, nv, thr, true, feas.Mask())
			lvF := liveness.Analyze(g, nv, cpF.Sol)
			avF := availexpr.Analyze(g, u, cpF.Sol)
			row.SolveTime += time.Since(t0)
			cpRepF := oracle.Check("constprop", "cfg", cpLat, cpBase.Sol, cpF.Sol, oracle.Identity)
			ivRepF := oracle.Check("intervals", "cfg", ivLat, ivBase.Sol, ivF.Sol, oracle.Identity)
			lvRepF := oracle.Check("liveness", "cfg", lvLat, lvBase.Sol, lvF.Sol, oracle.Identity)
			avRepF := oracle.Check("availexpr", "cfg", avLat, avBase.Sol, avF.Sol, oracle.Identity)
			cp.FeasOnly += improvedVertices(cpRepF)
			iv.FeasOnly += improvedVertices(ivRepF)
			lv.FeasOnly += improvedVertices(lvRepF)
			av.FeasOnly += improvedVertices(avRepF)

			if !fr.Qualified() {
				// No profile tier: the combined configuration degenerates
				// to the feasibility axis on this function.
				cp.Both += improvedVertices(cpRepF)
				iv.Both += improvedVertices(ivRepF)
				lv.Both += improvedVertices(lvRepF)
				av.Both += improvedVertices(avRepF)
				continue
			}
			red := fr.Red
			orig := func(n cfg.NodeID) cfg.NodeID { return red.OrigNode[n] }

			// Frequency only: the engine's unmasked reduced-tier
			// solutions vs the CFG.
			ivR := intervals.AnalyzeClamped(red.G, nv, thr, true)
			lvR := fr.LiveRed
			if lvR == nil {
				lvR = liveness.Analyze(red.G, nv, fr.RedSol.Sol)
			}
			avR := fr.AvailRed
			if avR == nil {
				avR = availexpr.Analyze(red.G, u, fr.RedSol.Sol)
			}
			cp.FreqOnly += improvedVertices(oracle.Check("constprop", "rhpg", cpLat, cpBase.Sol, fr.RedSol.Sol, orig))
			iv.FreqOnly += improvedVertices(oracle.Check("intervals", "rhpg", ivLat, ivBase.Sol, ivR.Sol, orig))
			lv.FreqOnly += improvedVertices(oracle.Check("liveness", "rhpg", lvLat, lvBase.Sol, lvR.Sol, orig))
			av.FreqOnly += improvedVertices(oracle.Check("availexpr", "rhpg", avLat, avBase.Sol, avR.Sol, orig))

			// Both axes: prune the reduced graph, re-solve, compare back
			// to the CFG through the vertex correspondence.
			t0 = time.Now()
			feasR := feasible.Detect(red.G, nv)
			row.DetectTime += time.Since(t0)
			row.InfeasibleRed += feasR.Count
			t0 = time.Now()
			cpB := constprop.AnalyzeMasked(red.G, nv, true, in.Kernel, feasR.Mask())
			ivB := intervals.AnalyzeClampedMasked(red.G, nv, thr, true, feasR.Mask())
			lvB := liveness.Analyze(red.G, nv, cpB.Sol)
			avB := availexpr.Analyze(red.G, u, cpB.Sol)
			row.SolveTime += time.Since(t0)
			cp.Both += improvedVertices(cpRepF, oracle.Check("constprop", "rhpg", cpLat, cpBase.Sol, cpB.Sol, orig))
			iv.Both += improvedVertices(ivRepF, oracle.Check("intervals", "rhpg", ivLat, ivBase.Sol, ivB.Sol, orig))
			lv.Both += improvedVertices(lvRepF, oracle.Check("liveness", "rhpg", lvLat, lvBase.Sol, lvB.Sol, orig))
			av.Both += improvedVertices(avRepF, oracle.Check("availexpr", "rhpg", avLat, avBase.Sol, avB.Sol, orig))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// improvedVertices counts the CFG vertices improved by any of the given
// oracle runs — the union of their per-base-vertex ImprovedAt bitmaps.
// All reports must share the base solution (and hence bitmap length).
func improvedVertices(reports ...*oracle.Report) int {
	total := 0
	for i := range reports[0].ImprovedAt {
		for _, r := range reports {
			if r.ImprovedAt[i] {
				total++
				break
			}
		}
	}
	return total
}
