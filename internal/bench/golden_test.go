package bench

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pathflow/internal/engine"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenMetrics pins the fully deterministic outputs of the experiment
// pipeline: path counts, graph sizes and dynamically weighted constant
// counts. Any change to the benchmarks, the profiler, tracing, reduction
// or the propagator shows up here; run `go test ./internal/bench
// -run Golden -update` after an intentional change.
type goldenMetrics struct {
	TrainPaths int   `json:"train_paths"`
	HotAt97    int   `json:"hot_at_97"`
	OrigNodes  int   `json:"orig_nodes"`
	HPGNodes   int   `json:"hpg_nodes"`
	RedNodes   int   `json:"red_nodes"`
	TotalDyn   int64 `json:"total_dyn"`
	// Constant-result dynamic counts at CA = 0 and 0.97.
	ConstDyn0     int64 `json:"const_dyn_0"`
	ConstDyn97    int64 `json:"const_dyn_97"`
	NonlocalDyn0  int64 `json:"nonlocal_dyn_0"`
	NonlocalDyn97 int64 `json:"nonlocal_dyn_97"`
}

func computeGolden(t *testing.T) map[string]goldenMetrics {
	t.Helper()
	out := map[string]goldenMetrics{}
	for _, in := range loadSuite(t) {
		base, err := in.Analyze(testCtx, engine.Options{CA: 0, CR: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		bm, err := in.Evaluate(base)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Analyze(testCtx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		m, err := in.Evaluate(res)
		if err != nil {
			t.Fatal(err)
		}
		hot := 0
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			hot += len(fr.Hot)
		}
		out[in.B.Name] = goldenMetrics{
			TrainPaths:    in.Train.TotalPaths(),
			HotAt97:       hot,
			OrigNodes:     m.OrigNodes,
			HPGNodes:      m.HPGNodes,
			RedNodes:      m.RedNodes,
			TotalDyn:      m.TotalDyn,
			ConstDyn0:     bm.ConstDyn,
			ConstDyn97:    m.ConstDyn,
			NonlocalDyn0:  bm.NonlocalConstDyn,
			NonlocalDyn97: m.NonlocalConstDyn,
		}
	}
	return out
}

func TestGoldenMetrics(t *testing.T) {
	got := computeGolden(t)
	path := filepath.Join("testdata", "metrics.golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want map[string]goldenMetrics
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		for name := range want {
			if !reflect.DeepEqual(got[name], want[name]) {
				t.Errorf("%s:\n got %+v\nwant %+v", name, got[name], want[name])
			}
		}
	}
}
