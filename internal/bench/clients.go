package bench

import (
	"context"

	"pathflow/internal/availexpr"
	"pathflow/internal/engine"
	"pathflow/internal/liveness"
	"pathflow/internal/profile"
)

// ClientsRow compares the two client analyses the backward-capable
// solver enables — live variables and available expressions — on the
// original CFG versus the reduced hot path graph. Like Figure 7, every
// count is dynamically weighted with the ref profile: a dead store or a
// redundant recomputation matters in proportion to how often it runs.
type ClientsRow struct {
	Name string
	// LiveBaseDyn / LiveQualDyn weight stores the liveness client proves
	// dead (no later use on any executable path) on the CFG and on the
	// final qualified graph. LiveBase/LiveQual are the static site
	// counts.
	LiveBase, LiveQual       int
	LiveBaseDyn, LiveQualDyn int64
	// AvailBase*/AvailQual* are the same pair for instructions that
	// recompute an already-available expression.
	AvailBase, AvailQual       int
	AvailBaseDyn, AvailQualDyn int64
}

// Clients runs the client-analysis comparison at the paper's
// recommended knobs. The engine computes the per-tier solutions (the
// liveness and availexpr pipeline stages); this harness only reweights
// them with the ref profile.
func Clients(ctx context.Context, instances []*Instance) ([]ClientsRow, error) {
	o := engine.Options{CA: 0.97, CR: 0.95, Clients: engine.ClientsAll}
	var rows []ClientsRow
	for _, in := range instances {
		res, err := in.Analyze(ctx, o)
		if err != nil {
			return nil, err
		}
		row := ClientsRow{Name: in.B.Name}
		for _, name := range in.Prog.Order {
			fr := res.Funcs[name]
			fn := in.Prog.Funcs[name]
			refProf := in.Ref.Funcs[name]
			baseFreq := profile.NodeFrequencies(refProf, fn.G)

			baseLive := fr.LiveCFG
			if baseLive == nil {
				baseLive = liveness.Analyze(fn.G, fn.NumVars(), fr.OrigSol.Sol)
			}
			s, d := liveness.DeadStoreCount(fn.G, baseLive, baseFreq)
			row.LiveBase += s
			row.LiveBaseDyn += d

			u := fr.AvailU
			if u == nil {
				u = availexpr.NewUniverse(fn.G, fn.NumVars())
			}
			baseAvail := fr.AvailCFG
			if baseAvail == nil {
				baseAvail = availexpr.Analyze(fn.G, u, fr.OrigSol.Sol)
			}
			s, d = availexpr.RedundantCount(fn.G, baseAvail, baseFreq)
			row.AvailBase += s
			row.AvailBaseDyn += d

			ep, err := fr.TranslateEval(refProf)
			if err != nil {
				return nil, err
			}
			g := fr.FinalGraph()
			qualFreq := profile.NodeFrequencies(ep, g)

			qualLive := fr.FinalLive()
			if qualLive == nil {
				qualLive = liveness.Analyze(g, fn.NumVars(), fr.FinalSol().Sol)
			}
			s, d = liveness.DeadStoreCount(g, qualLive, qualFreq)
			row.LiveQual += s
			row.LiveQualDyn += d

			qualAvail := fr.FinalAvail()
			if qualAvail == nil {
				qualAvail = availexpr.Analyze(g, u, fr.FinalSol().Sol)
			}
			s, d = availexpr.RedundantCount(g, qualAvail, qualFreq)
			row.AvailQual += s
			row.AvailQualDyn += d
		}
		rows = append(rows, row)
	}
	return rows, nil
}
