package bench

import (
	"context"
	"fmt"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/engine"
	"pathflow/internal/profile/stream"
)

// StreamingRound is one drift round of the streaming experiment: a
// batch of streamed path-counter deltas lands, the drift detector picks
// the functions whose hot-set selection moved, and the program
// re-analyzes with every function under its classified delta.
type StreamingRound struct {
	Round int
	// Drifted counts functions whose live profile changed at all;
	// Requalified the subset whose hot-set selection at CA moved (their
	// StageSelect-downstream artifacts re-key).
	Drifted, Requalified int
	// Computed and Replayed split the round's pipeline stage executions:
	// recomputed fresh vs served from the cache the previous rounds
	// filled.
	Computed, Replayed int
	// Time is the round's wall-clock re-analysis cost.
	Time time.Duration
}

// StreamingRow is one benchmark's streamed-drift trajectory.
type StreamingRow struct {
	Name  string
	Funcs int
	// ColdComputed / ColdTime are the cost of the initial cold analysis
	// every round's incremental cost compares against.
	ColdComputed int
	ColdTime     time.Duration
	Rounds       []StreamingRound
}

// pipelineComputed splits a program result's pipeline stage executions
// into (computed, replayed).
func pipelineComputed(res *engine.ProgramResult) (computed, replayed int) {
	for _, fr := range res.Funcs {
		if fr == nil || fr.Metrics == nil {
			continue
		}
		for _, s := range engine.PipelineStages {
			sm := fr.Metrics.Stages[s]
			computed += sm.Runs - sm.CacheHits
			replayed += sm.CacheHits
		}
	}
	return computed, replayed
}

// Streaming measures drift-triggered requalification against streamed
// profile deltas: per benchmark, a cold analysis fills a fresh engine's
// cache, then `rounds` hot-set-flipping batches land on a decaying
// accumulator set and the program re-analyzes under per-function delta
// classes. The interesting contract — visible in every row — is that a
// round's Computed stays far below ColdComputed while Replayed absorbs
// the rest: only the drifted function's StageSelect-downstream suffix
// recomputes.
func Streaming(ctx context.Context, instances []*Instance, rounds int) ([]StreamingRow, error) {
	o := engine.Options{CA: 0.97, CR: 0.95}
	var rows []StreamingRow
	for _, in := range instances {
		o.Kernel = in.Kernel
		// A dedicated engine: other experiments may have warmed in.Eng,
		// which would understate the cold cost the rounds compare against.
		eng := engine.New(engine.Config{Workers: 0, Cache: true})

		t0 := time.Now()
		res, err := eng.AnalyzeProgram(engine.WithDeltaClass(ctx, engine.DeltaCold), in.Prog, in.Train, o)
		if err != nil {
			return nil, fmt.Errorf("bench %s cold: %w", in.B.Name, err)
		}
		coldComputed, _ := pipelineComputed(res)
		row := StreamingRow{
			Name: in.B.Name, Funcs: len(in.Prog.Order),
			ColdComputed: coldComputed, ColdTime: time.Since(t0),
		}

		set := stream.NewSet(in.Prog, in.Train)
		prev := in.Train
		for round := 1; round <= rounds; round++ {
			fn, path := StreamFlipTarget(prev, in.Prog.Order)
			if fn == "" {
				break // single-path programs cannot drift
			}
			batch := &stream.Batch{Source: "bench", Funcs: []stream.FuncDelta{{
				Func: fn, Seq: uint64(round),
				Paths: []stream.PathDelta{{Path: path, Count: int64(10_000_000 * round)}},
			}}}
			if _, err := set.Apply(batch); err != nil {
				return nil, fmt.Errorf("bench %s round %d: %w", in.B.Name, round, err)
			}
			live := set.Profile()

			sr := StreamingRound{Round: round}
			for _, d := range stream.DetectDrift(prev, live, in.Prog, o.CA) {
				if d.Changed {
					sr.Drifted++
				}
				if d.Requalify {
					sr.Requalified++
				}
			}

			deltas := engine.DiffPrograms(in.Prog, in.Prog, prev, live)
			byName := make(map[string]*engine.Delta, len(deltas))
			for _, d := range deltas {
				byName[d.Func] = d
			}
			t0 = time.Now()
			rres := &engine.ProgramResult{Prog: in.Prog, Opt: o, Funcs: map[string]*engine.FuncResult{}}
			for _, name := range in.Prog.Order {
				class := engine.DeltaCold
				if d := byName[name]; d != nil {
					class = d.Class
				}
				fr, err := eng.AnalyzeFunc(engine.WithDeltaClass(ctx, class), in.Prog.Funcs[name], live.Funcs[name], o)
				if err != nil {
					return nil, fmt.Errorf("bench %s round %d %s: %w", in.B.Name, round, name, err)
				}
				rres.Funcs[name] = fr
			}
			sr.Time = time.Since(t0)
			sr.Computed, sr.Replayed = pipelineComputed(rres)
			row.Rounds = append(row.Rounds, sr)
			prev = live
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// StreamFlipTarget picks the drift target: the coldest trained path of
// the function with the richest path set (ties broken by key so the
// experiment is deterministic). Pumping a large count into that path
// reorders or grows the function's hot-set selection while leaving
// every other function's distribution untouched.
func StreamFlipTarget(pp *bl.ProgramProfile, order []string) (fn, path string) {
	best := -1
	for _, name := range order {
		pr := pp.Funcs[name]
		if pr == nil || len(pr.Entries) < 2 {
			continue
		}
		if len(pr.Entries) > best {
			best = len(pr.Entries)
			fn = name
		}
	}
	if fn == "" {
		return "", ""
	}
	var coldCount int64 = -1
	for k, e := range pp.Funcs[fn].Entries {
		if coldCount < 0 || e.Count < coldCount || (e.Count == coldCount && k < path) {
			coldCount, path = e.Count, k
		}
	}
	return fn, path
}
