package bench

import "testing"

// TestFeasibleAblation gates the two-axis precision table. All three
// columns count improved original-CFG vertices (see FeasibleClient), so
// they compare directly, and Both is a union count — monotonicity over
// the single-axis columns is a hard invariant, not a hope. On top of
// that the suite must actually demonstrate the second precision axis:
// at least one benchmark where feasibility alone (no profile) strictly
// improves facts over the CFG baseline, and at least one where the
// combined configuration strictly beats either axis alone on the same
// client — i.e. each axis reached vertices the other could not.
func TestFeasibleAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Feasible(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	feasWin, comboWin := false, false
	for _, r := range rows {
		if len(r.Clients) != len(FeasibleClients) {
			t.Fatalf("%s: %d client rows, want %d", r.Name, len(r.Clients), len(FeasibleClients))
		}
		for _, c := range r.Clients {
			if c.Both < c.FeasOnly {
				t.Errorf("%s/%s: Both (%d) below FeasOnly (%d) — union count must dominate",
					r.Name, c.Client, c.Both, c.FeasOnly)
			}
			if c.Both < c.FreqOnly {
				t.Errorf("%s/%s: Both (%d) below FreqOnly (%d) — masking may only raise facts",
					r.Name, c.Client, c.Both, c.FreqOnly)
			}
			feasWin = feasWin || c.FeasOnly > 0
			comboWin = comboWin || (c.Both > c.FeasOnly && c.Both > c.FreqOnly)
		}
	}
	if !feasWin {
		t.Error("no benchmark shows a strict feasibility-only win over the CFG baseline")
	}
	if !comboWin {
		t.Error("no benchmark shows frequency+feasibility strictly beating either axis alone")
	}
}
