package bench

import (
	"context"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/engine"
)

var testCtx = context.Background()

// loadSuite loads all benchmarks once per test binary.
var suite []*Instance

func loadSuite(t *testing.T) []*Instance {
	t.Helper()
	if suite == nil {
		s, err := LoadAll(testCtx, nil)
		if err != nil {
			t.Fatal(err)
		}
		suite = s
	}
	return suite
}

func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			for _, fn := range prog.Funcs {
				if err := fn.G.Validate(fn.NumVars()); err != nil {
					t.Errorf("%s: %v", fn.Name, err)
				}
			}
			train, tres, err := bl.ProfileProgram(prog, b.TrainOptions())
			if err != nil {
				t.Fatal(err)
			}
			// The profile must account for every dynamic instruction.
			var covered int64
			for name, pr := range train.Funcs {
				if err := pr.Validate(prog.Funcs[name].G); err != nil {
					t.Errorf("profile of %s: %v", name, err)
				}
				covered += pr.DynInstrs(prog.Funcs[name].G)
			}
			if covered != tres.DynInstrs {
				t.Errorf("profile covers %d instrs, run executed %d", covered, tres.DynInstrs)
			}
		})
	}
}

func TestDeterministicProfiles(t *testing.T) {
	b, err := Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := bl.ProfileProgram(prog, b.TrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := bl.ProfileProgram(prog, b.TrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name := range p1.Funcs {
		if !p1.Funcs[name].Equal(p2.Funcs[name]) {
			t.Errorf("profile of %s not deterministic", name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonesuch"); err == nil {
		t.Error("Get(nonesuch) succeeded")
	}
}

// TestGoIsThePathOutlier checks the Table 1 shape: go executes far more
// paths than any other benchmark (the paper's go runs 84k paths when the
// runner-up has 2k).
func TestGoIsThePathOutlier(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Table1(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	var goPaths, maxOther int
	for _, r := range rows {
		if r.Name == "go" {
			goPaths = r.Paths
		} else if r.Paths > maxOther {
			maxOther = r.Paths
		}
	}
	if goPaths <= maxOther {
		t.Errorf("go paths = %d, max other = %d; go must dominate", goPaths, maxOther)
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.Paths <= 0 || r.HotPaths <= 0 {
			t.Errorf("degenerate Table 1 row: %+v", r)
		}
		if r.HotPaths > r.Paths {
			t.Errorf("%s: hot paths %d > executed paths %d", r.Name, r.HotPaths, r.Paths)
		}
	}
}

// TestFig9Shape checks the paper's headline result: qualified analysis
// finds 2-112× the baseline's non-local constants, which translates into
// single-digit-percent more constant instructions; the benefit is
// monotone in coverage and mostly attained by CA = 0.97.
func TestFig9Shape(t *testing.T) {
	ins := loadSuite(t)
	pts, err := Fig9(testCtx, ins, CoverageLevels, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[float64]Fig9Point{}
	for _, p := range pts {
		if byName[p.Name] == nil {
			byName[p.Name] = map[float64]Fig9Point{}
		}
		byName[p.Name][p.CA] = p
	}
	for name, ms := range byName {
		full := ms[1.0]
		at97 := ms[0.97]
		at0 := ms[0]
		if at0.ConstIncrease != 0 {
			t.Errorf("%s: increase at CA=0 is %v, want 0", name, at0.ConstIncrease)
		}
		if full.ConstIncrease <= 0 {
			t.Errorf("%s: no constant increase at full coverage", name)
		}
		if full.ConstIncrease > 0.15 {
			t.Errorf("%s: constant increase %.1f%% implausibly large (paper band ≈ 1-7%%)",
				name, 100*full.ConstIncrease)
		}
		// Most of the benefit arrives by 97% coverage.
		if at97.ConstIncrease < 0.85*full.ConstIncrease {
			t.Errorf("%s: only %.0f%% of full benefit at CA=0.97", name,
				100*at97.ConstIncrease/full.ConstIncrease)
		}
		// Non-local ratio within (roughly) the paper's 2-112× band.
		if full.NonlocalRatio < 1.5 || full.NonlocalRatio > 150 {
			t.Errorf("%s: non-local ratio %.1f outside plausible band", name, full.NonlocalRatio)
		}
	}
	// perl gains least, as in the paper.
	for name, ms := range byName {
		if name == "perl" {
			continue
		}
		if ms[1.0].ConstIncrease < byName["perl"][1.0].ConstIncrease {
			t.Errorf("%s gains less than perl; perl should be the minimum", name)
		}
	}
}

// TestFig11Shape checks graph growth: go dwarfs everything, other
// benchmarks stay within the paper's bands, and reduction always shrinks
// the HPG.
func TestFig11Shape(t *testing.T) {
	ins := loadSuite(t)
	pts, err := Fig11(testCtx, ins, []float64{0.97}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	var goGrowth, maxOther float64
	for _, p := range pts {
		if p.RedGrowth > p.HPGGrowth+1e-9 {
			t.Errorf("%s: reduction grew the graph (%.1f%% -> %.1f%%)",
				p.Name, 100*p.HPGGrowth, 100*p.RedGrowth)
		}
		if p.RedGrowth < 0 {
			t.Errorf("%s: negative growth %.2f", p.Name, p.RedGrowth)
		}
		if p.Name == "go" {
			goGrowth = p.HPGGrowth
		} else {
			if p.HPGGrowth > maxOther {
				maxOther = p.HPGGrowth
			}
			if p.HPGGrowth > 0.40 {
				t.Errorf("%s: HPG growth %.1f%% above the paper's ≤32%% band", p.Name, 100*p.HPGGrowth)
			}
			if p.RedGrowth > 0.12 {
				t.Errorf("%s: rHPG growth %.1f%% far above the paper's ≤7%% band", p.Name, 100*p.RedGrowth)
			}
		}
	}
	if goGrowth < 2*maxOther {
		t.Errorf("go HPG growth %.1f%% should dwarf other benchmarks (max %.1f%%)",
			100*goGrowth, 100*maxOther)
	}
}

// TestFig11Monotone: more coverage can only add duplicates to the HPG.
func TestFig11Monotone(t *testing.T) {
	ins := loadSuite(t)
	pts, err := Fig11(testCtx, ins, CoverageLevels, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, p := range pts { // points are emitted in increasing CA per name
		if prev, ok := last[p.Name]; ok && p.HPGGrowth < prev-1e-9 {
			t.Errorf("%s: HPG growth decreased from %.3f to %.3f", p.Name, prev, p.HPGGrowth)
		}
		last[p.Name] = p.HPGGrowth
	}
}

// TestFig12Shape: qualified analysis costs more as coverage grows, and go
// is by far the most expensive (the paper's sixfold increase at 0.97).
func TestFig12Shape(t *testing.T) {
	ins := loadSuite(t)
	pts, err := Fig12(testCtx, ins, []float64{0, 0.97}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	iters := map[string]map[float64]float64{}
	for _, p := range pts {
		if iters[p.Name] == nil {
			iters[p.Name] = map[float64]float64{}
		}
		iters[p.Name][p.CA] = p.Iterations
	}
	var goR, maxOther float64
	for name, m := range iters {
		if m[0.97] < m[0] {
			t.Errorf("%s: fewer solver iterations with tracing than without", name)
		}
		if name == "go" {
			goR = m[0.97]
		} else if m[0.97] > maxOther {
			maxOther = m[0.97]
		}
	}
	if goR <= maxOther {
		t.Errorf("go analysis-cost ratio %.2f should exceed all others (max %.2f)", goR, maxOther)
	}
}

// TestFig7Concentration: a handful of blocks carries most of the
// non-local constants (the paper's compress needs ~11 blocks; go needs
// thousands — here, proportionally more).
func TestFig7Concentration(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Fig7(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	blocksFor := func(r Fig7Row, frac float64) int {
		for _, p := range r.Points {
			if p.Fraction >= frac {
				return p.Blocks
			}
		}
		return -1
	}
	var compress90, go90 int
	for _, r := range rows {
		if len(r.Points) == 0 {
			t.Errorf("%s: no constant-carrying blocks", r.Name)
			continue
		}
		if got := r.Points[len(r.Points)-1].Fraction; got != 1.0 {
			t.Errorf("%s: distribution tops out at %v", r.Name, got)
		}
		switch r.Name {
		case "compress":
			compress90 = blocksFor(r, 0.9)
		case "go":
			go90 = blocksFor(r, 0.9)
		}
	}
	if compress90 <= 0 || compress90 > 12 {
		t.Errorf("compress needs %d blocks for 90%% of constants; want a handful", compress90)
	}
	if go90 <= compress90 {
		t.Errorf("go (%d blocks) should need far more blocks than compress (%d)", go90, compress90)
	}
}

// TestFig10Shape: Local and Unknowable dominate every benchmark, as in
// the paper's Figure 10(a).
func TestFig10Shape(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Fig10(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(All()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(All()))
	}
	for _, r := range rows {
		rep := r.Report
		if rep.TotalDyn == 0 {
			t.Errorf("%s: empty report", r.Name)
			continue
		}
		domFrac := rep.Frac(0) + rep.Frac(5) // Local + Unknowable
		if domFrac < 0.5 {
			t.Errorf("%s: Local+Unknowable = %.0f%%, want majority", r.Name, 100*domFrac)
		}
		qualified := rep.Dyn[2] + rep.Dyn[3] + rep.Dyn[4] // Identical+Variable+Partial
		if qualified == 0 {
			t.Errorf("%s: no qualified constants found", r.Name)
		}
	}
}

// TestTable2Shape: the differential output check inside Table2 is itself
// the soundness assertion; on top of that, m88ksim must show the largest
// speedup and at least one benchmark must slow down (the paper's mixed
// result).
func TestTable2Shape(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Table2(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestSpeedup float64
	slowdowns := 0
	for _, r := range rows {
		if r.Speedup > bestSpeedup {
			bestSpeedup, best = r.Speedup, r.Name
		}
		if r.Speedup < 0 {
			slowdowns++
		}
		if r.OptFolded < r.BaseFolded {
			t.Errorf("%s: qualified folds (%d) fewer than baseline (%d)",
				r.Name, r.OptFolded, r.BaseFolded)
		}
		if r.OptFootprint < r.BaseFootprint {
			t.Errorf("%s: optimized footprint shrank", r.Name)
		}
	}
	if best != "m88ksim" {
		t.Errorf("largest speedup is %s (%.1f%%), want m88ksim", best, 100*bestSpeedup)
	}
	if slowdowns == 0 {
		t.Error("no benchmark slowed down; the paper's Table 2 is mixed")
	}
}

// TestCRSweepShape: the reduction-cutoff ablation must show the knee the
// paper's choice of CR = 0.95 exploits: high CR preserves nearly all
// constants, CR = 0 destroys most of them, and size grows with CR.
func TestCRSweepShape(t *testing.T) {
	ins := loadSuite(t)
	pts, err := CRSweep(testCtx, ins, []float64{0, 0.95, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[float64]CRPoint{}
	for _, p := range pts {
		if byName[p.Name] == nil {
			byName[p.Name] = map[float64]CRPoint{}
		}
		byName[p.Name][p.CR] = p
	}
	for name, m := range byName {
		if m[1.0].Preserved != 1.0 {
			t.Errorf("%s: CR=1 preserves %.2f, want 1", name, m[1.0].Preserved)
		}
		if m[0.95].Preserved < 0.9 {
			t.Errorf("%s: CR=0.95 preserves only %.2f", name, m[0.95].Preserved)
		}
		if m[0].Preserved > 0.6 {
			t.Errorf("%s: CR=0 preserves %.2f; reduction seems inert", name, m[0].Preserved)
		}
		if m[0].RedNodes > m[1.0].RedNodes {
			t.Errorf("%s: size not monotone in CR (%d > %d)", name, m[0].RedNodes, m[1.0].RedNodes)
		}
	}
}

// TestBranchesAblation: qualification can only add decided branches.
func TestBranchesAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Branches(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	anyGain := false
	for _, r := range rows {
		if r.QualDyn < r.BaseDyn {
			t.Errorf("%s: qualified decided branches (%d) below baseline (%d)",
				r.Name, r.QualDyn, r.BaseDyn)
		}
		if r.QualDyn > r.BaseDyn {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("no benchmark shows qualified branch decisions")
	}
}

// TestSignsAblation: qualified sign analysis must improve on the
// baseline for every benchmark (the §8 generalization claim).
func TestSignsAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Signs(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.QualDyn <= r.BaseDyn {
			t.Errorf("%s: qualified signs %d, baseline %d; want improvement",
				r.Name, r.QualDyn, r.BaseDyn)
		}
	}
}

// TestEdgeSelectionAblation: hot paths selected from true path profiles
// must dominate the classic edge-profile estimation — the Ball-Larus
// motivation the paper builds on. Edge estimation assumes branch
// independence, so it both under-counts the hot set and manufactures
// paths that rarely execute.
func TestEdgeSelectionAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := EdgeSelection(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	strictWins := 0
	for _, r := range rows {
		if r.EdgeDyn > r.PathDyn {
			t.Errorf("%s: edge estimation (%d) beats path profiles (%d)?",
				r.Name, r.EdgeDyn, r.PathDyn)
		}
		if r.PathDyn > r.EdgeDyn {
			strictWins++
		}
		if r.EdgeHot > r.PathHot {
			t.Errorf("%s: edge estimation selected more paths (%d) than the true profile (%d)",
				r.Name, r.EdgeHot, r.PathHot)
		}
	}
	if strictWins < 3 {
		t.Errorf("path profiles strictly win on only %d benchmarks; want >= 3", strictWins)
	}
}

// TestRangesAblation: qualified range analysis should gain bounded
// ranges on benchmarks with path-correlated configuration values.
// Unlike the finite-height clients, "qualified never loses" is not a
// theorem here: widening points depend on graph shape, and the
// duplicated graph widens at different loop-head duplicates, so a
// sub-percent regression is possible (and observed on compress).
func TestRangesAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Ranges(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	anyGain := false
	for _, r := range rows {
		if float64(r.QualDyn) < 0.99*float64(r.BaseDyn) {
			t.Errorf("%s: qualified ranges %d more than 1%% below baseline %d",
				r.Name, r.QualDyn, r.BaseDyn)
		}
		if r.QualDyn > r.BaseDyn {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("no benchmark shows qualified range gains")
	}
}

// TestClientsAblation locks the client-agnostic precision claim with
// dynamically-weighted counts: the qualified graph never finds fewer
// dead stores or redundant expressions than the CFG (per-vertex facts
// are pointwise ≥ and the translated profile preserves weights), and at
// least one benchmark exhibits a *strict* HPG-over-CFG win for the
// backward client (liveness) and for the forward one (available
// expressions). m88ksim carries both: the hot ALU leg pins mode = 2,
// killing a spill store whose only use hides behind mode == 3, and the
// duplicated retire stage re-proves handler expressions available.
func TestClientsAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Clients(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	liveWin, availWin := false, false
	bothWins := false
	for _, r := range rows {
		if r.LiveQualDyn < r.LiveBaseDyn {
			t.Errorf("%s: qualified dead stores %d below baseline %d",
				r.Name, r.LiveQualDyn, r.LiveBaseDyn)
		}
		if r.AvailQualDyn < r.AvailBaseDyn {
			t.Errorf("%s: qualified redundant exprs %d below baseline %d",
				r.Name, r.AvailQualDyn, r.AvailBaseDyn)
		}
		lw := r.LiveQualDyn > r.LiveBaseDyn
		aw := r.AvailQualDyn > r.AvailBaseDyn
		liveWin = liveWin || lw
		availWin = availWin || aw
		bothWins = bothWins || (lw && aw)
	}
	if !liveWin {
		t.Error("no benchmark shows a strict qualified liveness win")
	}
	if !availWin {
		t.Error("no benchmark shows a strict qualified available-expressions win")
	}
	if !bothWins {
		t.Error("no single benchmark wins on both clients (m88ksim should)")
	}
}

// TestPropagationAblation: conditional propagation never finds fewer
// constants than plain iterative propagation.
func TestPropagationAblation(t *testing.T) {
	ins := loadSuite(t)
	rows, err := Propagation(testCtx, ins)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CondDyn < r.PlainDyn {
			t.Errorf("%s: conditional (%d) below plain (%d)", r.Name, r.CondDyn, r.PlainDyn)
		}
	}
}

// TestReductionPreservesCR: at CR = 0.95, at least ~95% of the dynamic
// non-local constants discovered on the HPG survive reduction.
func TestReductionPreservesCR(t *testing.T) {
	ins := loadSuite(t)
	for _, in := range ins {
		res, err := in.Analyze(testCtx, engine.Options{CA: 0.97, CR: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		m, err := in.Evaluate(res)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against an unreduced evaluation: CR = 1 keeps every
		// beneficial vertex.
		full, err := in.Analyze(testCtx, engine.Options{CA: 0.97, CR: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		fm, err := in.Evaluate(full)
		if err != nil {
			t.Fatal(err)
		}
		if fm.NonlocalConstDyn == 0 {
			continue
		}
		frac := float64(m.NonlocalConstDyn) / float64(fm.NonlocalConstDyn)
		// The cutoff is computed on the training profile but evaluated
		// on ref, so allow modest slack below 0.95.
		if frac < 0.85 {
			t.Errorf("%s: reduction kept only %.0f%% of non-local constants (CR=0.95)",
				in.B.Name, 100*frac)
		}
	}
}
