// Package paperex constructs the running example of Ammons & Larus (PLDI
// 1998): the control-flow graph of Figure 1, the path profile of Figure 2,
// and input streams that make the interpreter reproduce that profile. It
// is shared by tests across the whole module and by examples/paperfig.
//
// The program behind Figure 1:
//
//	Entry → A: a = 2; i = 0
//	A → B (loop head): branch on an opaque input
//	B → C: b = 4        B → D: b = 3
//	C,D → E: branch on an opaque input
//	E → F: c = 5        E → G: b = 2
//	F,G → H: x = a + b; i = i + 1; branch on an opaque input
//	H → B (retreating)  H → I: n = i; return
//	I → Exit
//
// Recording edges (dashed in the figure): Entry→A, H→B, I→Exit. The
// profile's four Ball-Larus paths and the weights used by the reduction
// example (H12=30, H13=100, H14=140, H15=60, I17=70) come out exactly as
// in the paper.
package paperex

import (
	"fmt"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/ir"
)

// Nodes names the CFG nodes of the example.
type Nodes struct {
	Entry, A, B, C, D, E, F, G, H, I, Exit cfg.NodeID
}

// Registers used by the example, exported for assertions in tests.
const (
	VarA ir.Var = iota // a
	VarB               // b
	VarC               // c
	VarI               // i
	VarN               // n
	VarX               // x
	VarOne
	VarTB // branch condition at B
	VarTE // branch condition at E
	VarTH // branch condition at H
	numVars
)

// Build constructs the Figure 1 function. The returned edge map is keyed
// by "From->To" using the single-letter node names.
func Build() (*cfg.Func, Nodes, map[string]cfg.EdgeID) {
	g := cfg.New("example")
	var n Nodes
	n.Entry, n.Exit = g.Entry, g.Exit
	n.A = g.AddNode("A")
	n.B = g.AddNode("B")
	n.C = g.AddNode("C")
	n.D = g.AddNode("D")
	n.E = g.AddNode("E")
	n.F = g.AddNode("F")
	n.G = g.AddNode("G")
	n.H = g.AddNode("H")
	n.I = g.AddNode("I")

	set := func(id cfg.NodeID, instrs []ir.Instr, kind cfg.TermKind, cond ir.Var) {
		nd := g.Node(id)
		nd.Instrs = instrs
		nd.Kind = kind
		nd.Cond = cond
	}
	set(n.A, []ir.Instr{
		{Op: ir.Const, Dst: VarA, A: ir.NoVar, B: ir.NoVar, K: 2},
		{Op: ir.Const, Dst: VarI, A: ir.NoVar, B: ir.NoVar, K: 0},
	}, cfg.TermJump, ir.NoVar)
	set(n.B, []ir.Instr{
		{Op: ir.Input, Dst: VarTB, A: ir.NoVar, B: ir.NoVar},
	}, cfg.TermBranch, VarTB)
	set(n.C, []ir.Instr{
		{Op: ir.Const, Dst: VarB, A: ir.NoVar, B: ir.NoVar, K: 4},
	}, cfg.TermJump, ir.NoVar)
	set(n.D, []ir.Instr{
		{Op: ir.Const, Dst: VarB, A: ir.NoVar, B: ir.NoVar, K: 3},
	}, cfg.TermJump, ir.NoVar)
	set(n.E, []ir.Instr{
		{Op: ir.Input, Dst: VarTE, A: ir.NoVar, B: ir.NoVar},
	}, cfg.TermBranch, VarTE)
	set(n.F, []ir.Instr{
		{Op: ir.Const, Dst: VarC, A: ir.NoVar, B: ir.NoVar, K: 5},
	}, cfg.TermJump, ir.NoVar)
	set(n.G, []ir.Instr{
		{Op: ir.Const, Dst: VarB, A: ir.NoVar, B: ir.NoVar, K: 2},
	}, cfg.TermJump, ir.NoVar)
	set(n.H, []ir.Instr{
		{Op: ir.Add, Dst: VarX, A: VarA, B: VarB},
		{Op: ir.Const, Dst: VarOne, A: ir.NoVar, B: ir.NoVar, K: 1},
		{Op: ir.Add, Dst: VarI, A: VarI, B: VarOne},
		{Op: ir.Input, Dst: VarTH, A: ir.NoVar, B: ir.NoVar},
	}, cfg.TermBranch, VarTH)
	set(n.I, []ir.Instr{
		{Op: ir.Copy, Dst: VarN, A: VarI, B: ir.NoVar},
	}, cfg.TermReturn, ir.NoVar)
	g.Node(n.I).Ret = VarN

	edges := map[string]cfg.EdgeID{}
	add := func(name string, from, to cfg.NodeID) {
		edges[name] = g.AddEdge(from, to)
	}
	// Out-edges must be appended in slot order (true leg first).
	add("Entry->A", n.Entry, n.A)
	add("A->B", n.A, n.B)
	add("B->C", n.B, n.C) // taken
	add("B->D", n.B, n.D)
	add("C->E", n.C, n.E)
	add("D->E", n.D, n.E)
	add("E->F", n.E, n.F) // taken
	add("E->G", n.E, n.G)
	add("F->H", n.F, n.H)
	add("G->H", n.G, n.H)
	add("H->B", n.H, n.B) // taken: loop
	add("H->I", n.H, n.I)
	add("I->Exit", n.I, n.Exit)

	names := make([]string, numVars)
	names[VarA], names[VarB], names[VarC] = "a", "b", "c"
	names[VarI], names[VarN], names[VarX] = "i", "n", "x"
	names[VarOne], names[VarTB], names[VarTE], names[VarTH] = "one", "tB", "tE", "tH"
	f := &cfg.Func{Name: "example", VarNames: names, G: g}
	if err := g.Validate(f.NumVars()); err != nil {
		panic(fmt.Sprintf("paperex: invalid example graph: %v", err))
	}
	return f, n, edges
}

// Recording returns the example's recording edges: Entry→A, H→B, I→Exit.
func Recording(edges map[string]cfg.EdgeID) map[cfg.EdgeID]bool {
	return map[cfg.EdgeID]bool{
		edges["Entry->A"]: true,
		edges["H->B"]:     true,
		edges["I->Exit"]:  true,
	}
}

// Figure 2 path counts. Run 2 iterates the inner G-loop 5 times and run 3
// iterates it 3 times, which yields exactly the vertex weights the paper's
// reduction example uses (H12=30, H13=100, H14=140, H15=60, I17=70).
const (
	CountRun1 = 70 // [Entry,A,B,C,E,F,H,I,Exit]
	CountRun2 = 5  // [Entry,A,B,D,E,F,H] · [B,D,E,G,H]^5 · [B,D,E,F,H,I,Exit]
	CountRun3 = 25 // [Entry,A,B,D,E,F,H] · [B,D,E,G,H]^3 · [B,D,E,F,H,I,Exit]

	InnerIters2 = 5
	InnerIters3 = 3
)

// Paths returns the four Ball-Larus paths of Figure 2 in the order
// p1 = [•,A,B,C,E,F,H,I,Exit], p2 = [•,A,B,D,E,F,H,(B)],
// p3 = [•,B,D,E,G,H,(B)], p4 = [•,B,D,E,F,H,I,Exit].
func Paths(edges map[string]cfg.EdgeID) [4]bl.Path {
	e := func(names ...string) []cfg.EdgeID {
		out := make([]cfg.EdgeID, len(names))
		for i, nm := range names {
			id, ok := edges[nm]
			if !ok {
				panic("paperex: unknown edge " + nm)
			}
			out[i] = id
		}
		return out
	}
	return [4]bl.Path{
		{Edges: e("A->B", "B->C", "C->E", "E->F", "F->H", "H->I", "I->Exit")},
		{Edges: e("A->B", "B->D", "D->E", "E->F", "F->H", "H->B")},
		{Edges: e("B->D", "D->E", "E->G", "G->H", "H->B")},
		{Edges: e("B->D", "D->E", "E->F", "F->H", "H->I", "I->Exit")},
	}
}

// Profile returns the Figure 2 path profile.
func Profile(edges map[string]cfg.EdgeID) *bl.Profile {
	pr := bl.NewProfile("example", Recording(edges))
	ps := Paths(edges)
	pr.Add(ps[0], CountRun1)
	pr.Add(ps[1], CountRun2+CountRun3)
	pr.Add(ps[2], CountRun2*InnerIters2+CountRun3*InnerIters3)
	pr.Add(ps[3], CountRun2+CountRun3)
	return pr
}

// RunInputs returns the input stream that drives one activation of the
// example through run type k (1, 2 or 3). The example reads one input in
// B (branch to C when nonzero), one in E (branch to F when nonzero) and
// one in H (loop back to B when nonzero).
func RunInputs(kind int) []ir.Value {
	switch kind {
	case 1:
		// B→C, E→F, H→I
		return []ir.Value{1, 1, 0}
	case 2, 3:
		iters := InnerIters2
		if kind == 3 {
			iters = InnerIters3
		}
		var in []ir.Value
		in = append(in, 0, 1, 1) // B→D, E→F, H→B
		for i := 0; i < iters; i++ {
			in = append(in, 0, 0, 1) // B→D, E→G, H→B
		}
		in = append(in, 0, 1, 0) // B→D, E→F, H→I
		return in
	}
	panic(fmt.Sprintf("paperex: unknown run kind %d", kind))
}
