package reduce_test

import (
	"sort"
	"strings"
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
	. "pathflow/internal/reduce"
	"pathflow/internal/trace"
)

// buildReduced runs the full §5 pipeline on the paper's example with the
// given CR.
func buildReduced(t *testing.T, cr float64) (*cfg.Func, *trace.HPG, *constprop.Result, *Reduced, *bl.Profile) {
	t.Helper()
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:])
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	sol := constprop.Analyze(h.G, f.NumVars(), true)
	tp, err := profile.Translate(pr, f.G, h)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(h, sol, tp, Options{CR: cr})
	if err != nil {
		t.Fatal(err)
	}
	return f, h, sol, red, tp
}

func hpgByName(h *trace.HPG) map[string]cfg.NodeID {
	m := map[string]cfg.NodeID{}
	for _, nd := range h.G.Nodes {
		m[nd.Name] = nd.ID
	}
	return m
}

func TestWeightsMatchPaper(t *testing.T) {
	_, h, _, red, _ := buildReduced(t, 0.6)
	names := hpgByName(h)
	// Paper §5: "H12 weighs 30, H13 weighs 100, H14 weighs 140, H15
	// weighs 60, and I17 weighs 70. All the other vertices have weight 0."
	want := map[string]int64{"H12": 30, "H13": 100, "H14": 140, "H15": 60, "I17": 70}
	var total int64
	for name, w := range want {
		if got := red.Weights[names[name]]; got != w {
			t.Errorf("weight[%s] = %d, want %d", name, got, w)
		}
		total += w
	}
	var sum int64
	for _, w := range red.Weights {
		sum += w
	}
	if sum != total {
		t.Errorf("total weight = %d, want %d (all other vertices 0)", sum, total)
	}
}

func TestHotSelectionAtCR06(t *testing.T) {
	_, h, _, red, _ := buildReduced(t, 0.6)
	names := hpgByName(h)
	// CR = 0.6 of 400 = 240 = weight(H14) + weight(H13): exactly the
	// paper's "suppose CR is chosen such that H13 and H14 are the only
	// hot vertices".
	wantHot := map[cfg.NodeID]bool{names["H13"]: true, names["H14"]: true}
	if len(red.Hot) != 2 {
		t.Fatalf("hot vertices = %d, want 2", len(red.Hot))
	}
	for _, n := range red.Hot {
		if !wantHot[n] {
			t.Errorf("unexpected hot vertex %s", h.G.Node(n).Name)
		}
	}
}

// classOfNames returns the partition as a sorted list of sorted name
// lists, for comparison against the paper's sets.
func partitionNames(h *trace.HPG, red *Reduced) []string {
	var classes []string
	for _, members := range red.Members {
		var names []string
		for _, n := range members {
			names = append(names, h.G.Node(n).Name)
		}
		sort.Strings(names)
		classes = append(classes, strings.Join(names, ","))
	}
	sort.Strings(classes)
	return classes
}

func TestReductionReproducesFigure8Partition(t *testing.T) {
	_, h, _, red, _ := buildReduced(t, 0.6)
	got := partitionNames(h, red)
	want := []string{
		"A0", "B0", "B1", "C3", "Cε", "D2", "D4",
		"E5", "E6", "E7,Eε", "F10", "F11,F8,Fε",
		"G9", "Gε", "H12,H15,Hε", "H13", "H14",
		"I16,I17,Iε", "entryε", "exit0",
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("classes = %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("class %d = %q, want %q", i, got[i], want[i])
		}
	}
	if red.G.NumNodes() != 20 {
		t.Errorf("rHPG nodes = %d, want 20", red.G.NumNodes())
	}
}

func TestReducedGraphConstants(t *testing.T) {
	f, _, _, red, _ := buildReduced(t, 0.6)
	sol := constprop.Analyze(red.G, f.NumVars(), true)
	byName := map[string]cfg.NodeID{}
	for _, nd := range red.G.Nodes {
		byName[nd.Name] = nd.ID
	}
	xAt := func(node string) constprop.Value {
		vals := sol.InstrValues(byName[node])
		for i, in := range red.G.Node(byName[node]).Instrs {
			if in.Dst == paperex.VarX {
				return vals[i]
			}
		}
		t.Fatalf("no x instruction in %s", node)
		return constprop.Value{}
	}
	// Figure 8: a+b is 6 at H14 and 4 at H13; the merged H loses x.
	if got := xAt("H14"); got != constprop.ConstOf(6) {
		t.Errorf("x at H14 = %v, want 6", got)
	}
	if got := xAt("H13"); got != constprop.ConstOf(4) {
		t.Errorf("x at H13 = %v, want 4", got)
	}
	if got := xAt("H"); got.IsConst() {
		t.Errorf("x at merged H = %v, want non-constant", got)
	}
}

func TestReducedRecordingEdges(t *testing.T) {
	f, _, _, red, _ := buildReduced(t, 0.6)
	_, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	// Recording edges: entry→A0 (1), H*→B0 from {H,H13,H14} classes (3),
	// I→exit (1): 5 in total.
	if got := len(red.Recording); got != 5 {
		t.Errorf("rHPG recording edges = %d, want 5", got)
	}
	for re := range red.Recording {
		if !R[red.OrigEdge[re]] {
			t.Errorf("rHPG recording edge %d projects to non-recording edge", re)
		}
	}
	_ = f
}

func TestReducedProfileTranslation(t *testing.T) {
	f, _, _, red, _ := buildReduced(t, 0.6)
	_, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	rp, err := profile.Translate(pr, f.G, red)
	if err != nil {
		t.Fatalf("Translate onto rHPG: %v", err)
	}
	if err := rp.Validate(red.G); err != nil {
		t.Fatal(err)
	}
	if rp.TotalCount() != pr.TotalCount() {
		t.Errorf("count = %d, want %d", rp.TotalCount(), pr.TotalCount())
	}
	if got, want := rp.DynInstrs(red.G), pr.DynInstrs(f.G); got != want {
		t.Errorf("dyn instrs = %d, want %d", got, want)
	}
	// Frequencies at the preserved hot vertices are unchanged.
	freq := profile.NodeFrequencies(rp, red.G)
	byName := map[string]cfg.NodeID{}
	for _, nd := range red.G.Nodes {
		byName[nd.Name] = nd.ID
	}
	if got := freq[byName["H14"]]; got != 70 {
		t.Errorf("freq[H14] = %d, want 70", got)
	}
	if got := freq[byName["H13"]]; got != 100 {
		t.Errorf("freq[H13] = %d, want 100", got)
	}
	// The merged H absorbs the remaining H traffic (30 + 30).
	if got := freq[byName["H"]]; got != 60 {
		t.Errorf("freq[H] = %d, want 60", got)
	}
}

func TestReducedExecutionEquivalence(t *testing.T) {
	f, _, _, red, _ := buildReduced(t, 0.6)
	for kind := 1; kind <= 3; kind++ {
		in := paperex.RunInputs(kind)
		p1 := cfg.NewProgram()
		p1.Add(f)
		r1, err := interp.Run(p1, interp.Options{Input: &interp.SliceInput{Values: in}})
		if err != nil {
			t.Fatal(err)
		}
		p2 := cfg.NewProgram()
		p2.Add(red.Func())
		r2, err := interp.Run(p2, interp.Options{Input: &interp.SliceInput{Values: in}})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Ret != r2.Ret || r1.DynInstrs != r2.DynInstrs {
			t.Errorf("kind %d: original ret=%d di=%d, reduced ret=%d di=%d",
				kind, r1.Ret, r1.DynInstrs, r2.Ret, r2.DynInstrs)
		}
	}
}

func TestReduceCR1KeepsAllConstants(t *testing.T) {
	// With CR = 1 every weighted vertex is hot, so all five constant
	// sites survive reduction.
	f, h, _, red, _ := buildReduced(t, 1.0)
	if len(red.Hot) != 5 {
		t.Fatalf("hot vertices at CR=1: %d, want 5", len(red.Hot))
	}
	sol := constprop.Analyze(red.G, f.NumVars(), true)
	rp := profileOnReduced(t, red)
	freq := profile.NodeFrequencies(rp, red.G)
	var weighted int64
	for _, nd := range red.G.Nodes {
		vals := sol.InstrValues(nd.ID)
		local := constprop.LocalValues(red.G, nd.ID, f.NumVars())
		for i := range nd.Instrs {
			if vals[i].IsConst() && !local[i].IsConst() {
				weighted += freq[nd.ID]
			}
		}
	}
	// 140 + 100 + 70 + 60 + 30 = 400 dynamic non-local constants.
	if weighted != 400 {
		t.Errorf("dynamic non-local constants after CR=1 reduction = %d, want 400", weighted)
	}
	_ = h
}

func profileOnReduced(t *testing.T, red *Reduced) *bl.Profile {
	t.Helper()
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	rp, err := profile.Translate(pr, f.G, red)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

func TestReduceDeterministic(t *testing.T) {
	// The greedy partition, Hopcroft refinement and quotient
	// construction involve maps internally; the result must still be
	// identical across runs.
	_, h1, _, red1, _ := buildReduced(t, 0.6)
	_, h2, _, red2, _ := buildReduced(t, 0.6)
	p1 := partitionNames(h1, red1)
	p2 := partitionNames(h2, red2)
	if len(p1) != len(p2) {
		t.Fatalf("partition sizes differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("partitions differ at %d: %q vs %q", i, p1[i], p2[i])
		}
	}
	if red1.G.String() != red2.G.String() {
		t.Error("reduced graphs differ across runs")
	}
}

func TestReducedGraphIsCongruence(t *testing.T) {
	// Every member of a class must agree, per successor slot, on the
	// class of its successor — the property that makes the quotient
	// well-defined (§5 step 3).
	_, h, _, red, _ := buildReduced(t, 0.6)
	for c, members := range red.Members {
		for _, m := range members {
			for _, eid := range h.G.Node(m).Out {
				e := h.G.Edge(eid)
				leader := members[0]
				le := h.G.Edge(h.G.Node(leader).Out[e.Slot])
				if red.Class[e.To] != red.Class[le.To] {
					t.Fatalf("class %d not a congruence at slot %d", c, e.Slot)
				}
			}
		}
	}
}

func TestReduceCR0CollapsesToOriginalSize(t *testing.T) {
	// With CR = 0 nothing is hot, so every duplicate merges back; the
	// reduced graph can be at most one node per (original vertex, per
	// congruence-forced split). For the example everything re-merges
	// except the B duplicates forced apart by nothing — with no hot
	// vertices the congruence is satisfiable with one class per vertex.
	f, _, _, red, _ := buildReduced(t, 0)
	if len(red.Hot) != 0 {
		t.Fatalf("hot vertices at CR=0: %d, want 0", len(red.Hot))
	}
	if got, want := red.G.NumNodes(), f.G.NumNodes(); got != want {
		t.Errorf("rHPG nodes at CR=0 = %d, want %d (original size)", got, want)
	}
	if red.Growth() != 0 {
		t.Errorf("growth = %v, want 0", red.Growth())
	}
}
