// Package reduce implements §5 of Ammons & Larus (PLDI 1998): shrinking a
// hot path graph to retain only the duplicates whose data-flow solutions
// pay for themselves.
//
// The algorithm:
//
//  1. Weigh each HPG vertex by the dynamic executions of its non-local
//     constant instructions (profile frequency × constants found by the
//     qualified analysis but not by local analysis) and mark vertices hot,
//     in descending weight order, until a fraction CR of the total weight
//     is covered.
//  2. For each original vertex v, greedily partition its HPG duplicates
//     (v,q) into compatible sets: two vertices are compatible if neither
//     is hot, or if lowering both solutions to the meet of their lattice
//     values destroys no constant in a hot vertex. Vertices are considered
//     in descending weight order to keep hot vertices together.
//  3. Refine the partition with the standard DFA-minimization algorithm
//     (Hopcroft, via Gries) so that it becomes a congruence: every member
//     of a class must agree, per successor slot, on the class of its
//     successor. The quotient graph then introduces no new paths, so no
//     solution is lowered beyond the meets accepted in step 2.
//  4. Replace each class by a representative vertex, producing the
//     reduced hot path graph (rHPG), and carry the recording edges over
//     (well-defined: all members project to the same original edge).
package reduce

import (
	"fmt"
	"sort"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/ir"
	"pathflow/internal/profile"
	"pathflow/internal/trace"
)

// Options configures reduction.
type Options struct {
	// CR is the benefit cutoff: the fraction of dynamic non-local
	// constants that the hot vertices must cover (the paper uses 0.95).
	CR float64
}

// Reduced is a reduced hot path graph.
type Reduced struct {
	// H is the HPG this graph was reduced from.
	H *trace.HPG
	// G is the quotient graph.
	G *cfg.Graph
	// Class maps each HPG node to its class index.
	Class []int
	// Members lists the HPG nodes of each class.
	Members [][]cfg.NodeID
	// Rep maps each class to its rHPG node.
	Rep []cfg.NodeID
	// OrigNode maps each rHPG node to the original CFG vertex.
	OrigNode []cfg.NodeID
	// OrigEdge maps each rHPG edge to the original CFG edge.
	OrigEdge []cfg.EdgeID
	// Recording is the rHPG's recording-edge set.
	Recording map[cfg.EdgeID]bool
	// Hot lists the HPG nodes selected as hot vertices.
	Hot []cfg.NodeID
	// Weights holds the per-HPG-node benefit weights used for selection.
	Weights []int64
}

// constMask is a bitset over the instructions of one block.
type constMask []uint64

func newMask(n int) constMask { return make(constMask, (n+63)/64) }

func (m constMask) set(i int)      { m[i/64] |= 1 << (i % 64) }
func (m constMask) get(i int) bool { return m[i/64]&(1<<(i%64)) != 0 }

// contains reports whether m ⊇ o.
func (m constMask) contains(o constMask) bool {
	for i := range o {
		if o[i]&^m[i] != 0 {
			return false
		}
	}
	return true
}

// NonLocalConstMask returns the set of instructions of HPG node n that
// are constant under env but not under local analysis.
func nonLocalConstMask(g *cfg.Graph, n cfg.NodeID, env constprop.Env, local []constprop.Value) constMask {
	nd := g.Node(n)
	mask := newMask(len(nd.Instrs))
	_, vals := constprop.TransferBlock(g, n, env, true)
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		if !in.Op.IsPure() || !in.HasDst() {
			continue
		}
		if vals[i].IsConst() && !local[i].IsConst() {
			mask.set(i)
		}
	}
	return mask
}

// Reduce shrinks the HPG h, whose qualified constant-propagation result is
// sol and whose translated path profile is hpgProf.
func Reduce(h *trace.HPG, sol *constprop.Result, hpgProf *bl.Profile, opt Options) (*Reduced, error) {
	g := h.G
	numVars := h.Fn.NumVars()
	freq := profile.NodeFrequencies(hpgProf, g)

	// Per-node local values (shared across duplicates of the same
	// original vertex — instructions are identical).
	localByOrig := map[cfg.NodeID][]constprop.Value{}
	localOf := func(n cfg.NodeID) []constprop.Value {
		ov := h.OrigNode[n]
		if l, ok := localByOrig[ov]; ok {
			return l
		}
		l := constprop.LocalValues(g, n, numVars)
		localByOrig[ov] = l
		return l
	}

	// Step 1: weights and hot vertices.
	weights := make([]int64, g.NumNodes())
	masks := make([]constMask, g.NumNodes())
	var total int64
	for _, nd := range g.Nodes {
		mask := nonLocalConstMask(g, nd.ID, sol.EnvAt(nd.ID), localOf(nd.ID))
		masks[nd.ID] = mask
		var nconst int64
		for i := range nd.Instrs {
			if mask.get(i) {
				nconst++
			}
		}
		weights[nd.ID] = nconst * freq[nd.ID]
		total += weights[nd.ID]
	}
	order := make([]cfg.NodeID, g.NumNodes())
	for i := range order {
		order[i] = cfg.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if weights[order[i]] != weights[order[j]] {
			return weights[order[i]] > weights[order[j]]
		}
		return order[i] < order[j]
	})
	hot := make([]bool, g.NumNodes())
	var hotList []cfg.NodeID
	goal := opt.CR * float64(total)
	var acc float64
	for _, n := range order {
		if acc >= goal || weights[n] == 0 {
			break
		}
		hot[n] = true
		hotList = append(hotList, n)
		acc += float64(weights[n])
	}

	// Step 2: greedy compatibility partition, per original vertex.
	byOrig := map[cfg.NodeID][]cfg.NodeID{}
	for _, nd := range g.Nodes {
		byOrig[h.OrigNode[nd.ID]] = append(byOrig[h.OrigNode[nd.ID]], nd.ID)
	}
	class := make([]int, g.NumNodes())
	for i := range class {
		class[i] = -1
	}
	numClasses := 0
	origIDs := make([]cfg.NodeID, 0, len(byOrig))
	for ov := range byOrig {
		origIDs = append(origIDs, ov)
	}
	sort.Slice(origIDs, func(i, j int) bool { return origIDs[i] < origIDs[j] })
	for _, ov := range origIDs {
		group := byOrig[ov]
		sort.Slice(group, func(i, j int) bool {
			if weights[group[i]] != weights[group[j]] {
				return weights[group[i]] > weights[group[j]]
			}
			return group[i] < group[j]
		})
		type set struct {
			id      int
			meet    constprop.Env
			hasHot  bool
			hotMask constMask // union of hot members' required constants
		}
		var sets []*set
		nInstrs := len(g.Node(group[0]).Instrs)
		for _, n := range group {
			env := sol.EnvAt(n)
			placed := false
			for _, s := range sets {
				if !s.hasHot && !hot[n] {
					// Neither side hot: always compatible.
					s.meet = s.meet.Meet(env)
					class[n] = s.id
					placed = true
					break
				}
				m := s.meet.Meet(env)
				need := newMask(nInstrs)
				copy(need, s.hotMask)
				if hot[n] {
					for i := range need {
						need[i] |= masks[n][i]
					}
				}
				got := nonLocalConstMask(g, n, m, localOf(n))
				if got.contains(need) {
					s.meet = m
					s.hasHot = s.hasHot || hot[n]
					s.hotMask = need
					class[n] = s.id
					placed = true
					break
				}
			}
			if !placed {
				s := &set{id: numClasses, meet: sol.EnvAt(n).Clone(), hasHot: hot[n], hotMask: newMask(nInstrs)}
				if hot[n] {
					copy(s.hotMask, masks[n])
				}
				numClasses++
				sets = append(sets, s)
				class[n] = s.id
			}
		}
	}

	// Step 3: refine to the coarsest congruence (DFA minimization).
	class, numClasses = refine(g, class, numClasses)

	// Step 4: build the quotient graph.
	red := &Reduced{
		H:         h,
		G:         &cfg.Graph{Name: g.Name + "#reduced"},
		Class:     class,
		Members:   make([][]cfg.NodeID, numClasses),
		Rep:       make([]cfg.NodeID, numClasses),
		Recording: map[cfg.EdgeID]bool{},
		Hot:       hotList,
		Weights:   weights,
	}
	for _, nd := range g.Nodes {
		red.Members[class[nd.ID]] = append(red.Members[class[nd.ID]], nd.ID)
	}
	for c := range red.Members {
		if len(red.Members[c]) == 0 {
			return nil, fmt.Errorf("reduce: empty class %d", c)
		}
		leader := red.Members[c][0]
		ov := h.OrigNode[leader]
		origNd := h.Fn.G.Node(ov)
		name := g.Node(leader).Name
		if len(red.Members[c]) > 1 {
			// The paper's Figure 8 drops state numbers from merged
			// vertices.
			name = origNd.Name
			if name == "" {
				name = fmt.Sprintf("n%d", ov)
			}
		}
		id := red.G.AddNode(name)
		nd := red.G.Node(id)
		nd.Instrs = append([]ir.Instr(nil), origNd.Instrs...)
		nd.Kind = origNd.Kind
		nd.Cond = origNd.Cond
		nd.Ret = origNd.Ret
		red.Rep[c] = id
		red.OrigNode = append(red.OrigNode, ov)
	}
	red.G.Entry = red.Rep[class[g.Entry]]
	red.G.Exit = red.Rep[class[g.Exit]]
	for c := range red.Members {
		leader := red.Members[c][0]
		from := red.Rep[c]
		for _, heid := range g.Node(leader).Out {
			he := g.Edge(heid)
			toClass := class[he.To]
			// Congruence: every member's successor in this slot must be
			// in toClass.
			for _, m := range red.Members[c][1:] {
				me := g.Edge(g.Node(m).Out[he.Slot])
				if class[me.To] != toClass {
					return nil, fmt.Errorf("reduce: partition is not a congruence at class %d slot %d", c, he.Slot)
				}
			}
			reid := red.G.AddEdge(from, red.Rep[toClass])
			red.OrigEdge = append(red.OrigEdge, h.OrigEdge[heid])
			if h.Recording[heid] {
				red.Recording[reid] = true
			}
		}
	}
	if err := red.G.Validate(numVars); err != nil {
		return nil, fmt.Errorf("reduce: produced invalid graph: %w", err)
	}
	return red, nil
}

// refine computes the coarsest refinement of the initial partition that is
// a congruence with respect to successor slots: for every class and every
// slot, all members' successors lie in one class. It is Hopcroft's
// partition-refinement algorithm ([Gri73]); splitters are (class, slot)
// pairs and the smaller half of every split is re-queued.
func refine(g *cfg.Graph, class []int, numClasses int) ([]int, int) {
	members := make([][]cfg.NodeID, numClasses)
	for i := range class {
		members[class[i]] = append(members[class[i]], cfg.NodeID(i))
	}
	const maxSlots = 2
	type splitter struct {
		class, slot int
	}
	queue := make([]splitter, 0, numClasses*maxSlots)
	queued := map[splitter]bool{}
	push := func(c, s int) {
		sp := splitter{c, s}
		if !queued[sp] {
			queued[sp] = true
			queue = append(queue, sp)
		}
	}
	for c := 0; c < numClasses; c++ {
		for s := 0; s < maxSlots; s++ {
			push(c, s)
		}
	}

	inX := make([]bool, len(class))
	for len(queue) > 0 {
		sp := queue[0]
		queue = queue[1:]
		queued[sp] = false

		// X = slot-sp.slot preimage of sp.class.
		var X []cfg.NodeID
		for _, m := range members[sp.class] {
			for _, eid := range g.Node(m).In {
				e := g.Edge(eid)
				if e.Slot == sp.slot && !inX[e.From] {
					inX[e.From] = true
					X = append(X, e.From)
				}
			}
		}
		if len(X) == 0 {
			continue
		}
		// Classes partially covered by X split.
		affected := map[int][]cfg.NodeID{}
		for _, n := range X {
			affected[class[n]] = append(affected[class[n]], n)
		}
		for c, hit := range affected {
			if len(hit) == len(members[c]) {
				continue // fully inside X: no split
			}
			// Split class c into hit and rest.
			rest := make([]cfg.NodeID, 0, len(members[c])-len(hit))
			for _, n := range members[c] {
				if !inX[n] {
					rest = append(rest, n)
				}
			}
			newID := numClasses
			numClasses++
			// The smaller half becomes the new class and is re-queued
			// for every slot; the larger keeps the old id. If the old
			// class is still queued for some slot, both halves must be
			// queued — pushing the new id unconditionally and keeping
			// the old id's entries achieves that.
			small, large := hit, rest
			if len(small) > len(large) {
				small, large = large, small
			}
			members[c] = large
			members = append(members, small)
			for _, n := range small {
				class[n] = newID
			}
			for s := 0; s < maxSlots; s++ {
				push(newID, s)
				push(c, s)
			}
		}
		for _, n := range X {
			inX[n] = false
		}
	}

	// Renumber classes densely in order of first member for determinism.
	renum := make([]int, numClasses)
	for i := range renum {
		renum[i] = -1
	}
	next := 0
	out := make([]int, len(class))
	for i := range class {
		if renum[class[i]] == -1 {
			renum[class[i]] = next
			next++
		}
		out[i] = renum[class[i]]
	}
	return out, next
}

// Growth returns the relative node-count increase of the rHPG over the
// original graph (Figure 11's "after minimization" series).
func (r *Reduced) Growth() float64 {
	o := r.H.Fn.G.NumNodes()
	return float64(r.G.NumNodes()-o) / float64(o)
}

// Func wraps the rHPG in a cfg.Func sharing the original register table.
func (r *Reduced) Func() *cfg.Func {
	return &cfg.Func{
		Name:     r.H.Fn.Name,
		Params:   r.H.Fn.Params,
		VarNames: r.H.Fn.VarNames,
		G:        r.G,
	}
}

// Overlay implementation, so profiles translate onto the rHPG.

// OverlayGraph returns the reduced graph.
func (r *Reduced) OverlayGraph() *cfg.Graph { return r.G }

// OverlayStart returns the rHPG node where paths starting at original
// vertex v begin: the class of (v, q•).
func (r *Reduced) OverlayStart(v cfg.NodeID) (cfg.NodeID, bool) {
	hn, ok := r.H.StartNode(v)
	if !ok {
		return cfg.NoNode, false
	}
	return r.Rep[r.Class[hn]], true
}

// OverlayRecording returns the rHPG recording edges.
func (r *Reduced) OverlayRecording() map[cfg.EdgeID]bool { return r.Recording }

// OverlayOrigEdge maps an rHPG edge to its original edge.
func (r *Reduced) OverlayOrigEdge(e cfg.EdgeID) cfg.EdgeID { return r.OrigEdge[e] }
