package signs_test

import (
	"testing"
	"testing/quick"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile"
	. "pathflow/internal/signs"
	"pathflow/internal/trace"
)

func TestSignOf(t *testing.T) {
	if SignOf(-3) != N || SignOf(0) != Z || SignOf(7) != P {
		t.Fatal("SignOf broken")
	}
}

func TestSignString(t *testing.T) {
	if Top.String() != "⊤" || Bottom.String() != "{-,0,+}" || (N|Z).String() != "{-,0}" {
		t.Errorf("String: %s %s %s", Top, Bottom, N|Z)
	}
}

func TestMeetLattice(t *testing.T) {
	all := []Sign{Top, N, Z, P, N | Z, N | P, Z | P, Bottom}
	for _, a := range all {
		if a.Meet(Top) != a || Top.Meet(a) != a {
			t.Errorf("⊤ is not the meet identity for %v", a)
		}
		if a.Meet(a) != a {
			t.Errorf("meet not idempotent for %v", a)
		}
		for _, b := range all {
			if a.Meet(b) != b.Meet(a) {
				t.Errorf("meet not commutative: %v %v", a, b)
			}
			// The meet is an upper bound in set order.
			if a.Meet(b)&a != a {
				t.Errorf("meet not a superset: %v %v", a, b)
			}
		}
	}
}

// TestEvalBinSound samples concrete values and checks the abstract result
// admits the concrete sign, for every binary opcode, via testing/quick.
func TestEvalBinSound(t *testing.T) {
	ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.Eq, ir.Ne,
		ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr}
	f := func(a, b int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		x, y := ir.Value(a), ir.Value(b)
		concrete := SignOf(ir.EvalBin(op, x, y))
		abstract := EvalBin(op, SignOf(x), SignOf(y))
		return abstract.Has(concrete)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestEvalBinSoundOnSets: the abstract op over sets admits every result
// of concrete values drawn from those sets.
func TestEvalBinSoundOnSets(t *testing.T) {
	reps := map[Sign][]ir.Value{
		N: {-1, -7, -1024},
		Z: {0},
		P: {1, 9, 4096},
	}
	signSets := []Sign{N, Z, P, N | Z, N | P, Z | P, Bottom}
	ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.And, ir.Or, ir.Xor, ir.Shr}
	for _, op := range ops {
		for _, sa := range signSets {
			for _, sb := range signSets {
				abs := EvalBin(op, sa, sb)
				for _, bitA := range []Sign{N, Z, P} {
					if !sa.Has(bitA) {
						continue
					}
					for _, bitB := range []Sign{N, Z, P} {
						if !sb.Has(bitB) {
							continue
						}
						for _, va := range reps[bitA] {
							for _, vb := range reps[bitB] {
								got := SignOf(ir.EvalBin(op, va, vb))
								if !abs.Has(got) {
									t.Fatalf("%v: %v(%v) op %v(%v): concrete %v not in abstract %v",
										op, sa, va, sb, vb, got, abs)
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestEvalUnSound(t *testing.T) {
	for _, op := range []ir.Op{ir.Copy, ir.Neg, ir.Not} {
		for _, v := range []ir.Value{-9, -1, 0, 1, 42} {
			abs := EvalUn(op, SignOf(v))
			got := SignOf(ir.EvalUn(op, v))
			if !abs.Has(got) {
				t.Errorf("%v(%d): concrete %v not in abstract %v", op, v, got, abs)
			}
		}
	}
}

func analyzeSrc(t *testing.T, src string) (*cfg.Func, *Result) {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	return f, Analyze(f.G, f.NumVars(), true)
}

func signAtExit(t *testing.T, f *cfg.Func, r *Result, name string) Sign {
	t.Helper()
	for i, n := range f.VarNames {
		if n == name {
			return r.EnvAt(f.G.Exit)[i]
		}
	}
	t.Fatalf("no var %s", name)
	return Top
}

func TestAnalyzeBasicSigns(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	a = 3;
	b = -2;
	c = a * a;
	d = a * b;
	e = input();
	g = e * e;
	h = a % 2;
	print(c + d + g + h);
}`)
	cases := map[string]Sign{
		"a": P,
		"b": N,
		"c": P,
		"d": N,
		"e": Bottom,
		// e*e is non-negative in reality, but a non-relational domain
		// treats the operands as independent: any sign.
		"g": Bottom,
		"h": Z | P, // positive mod positive
	}
	for name, want := range cases {
		if got := signAtExit(t, f, r, name); got != want {
			t.Errorf("sign(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestBranchRefinement(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	x = input() % 8;   // {-,0,+} ... refined below
	y = 0;
	if (x) {
		y = 1;         // here x is non-zero
	} else {
		y = 2;         // here x is exactly zero
	}
	print(y + x);
}`)
	// Find the then/else blocks via the constants they assign.
	var thenEnv, elseEnv Env
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if in.Op == ir.Const && in.K == 1 {
				thenEnv = r.EnvAt(nd.ID)
			}
			if in.Op == ir.Const && in.K == 2 {
				elseEnv = r.EnvAt(nd.ID)
			}
		}
	}
	if thenEnv == nil || elseEnv == nil {
		t.Fatal("could not locate branch legs")
	}
	var xVar ir.Var = -1
	for i, n := range f.VarNames {
		if n == "x" {
			xVar = ir.Var(i)
		}
	}
	if thenEnv[xVar].Has(Z) {
		t.Errorf("x on taken leg = %v, must exclude zero", thenEnv[xVar])
	}
	if elseEnv[xVar] != Z {
		t.Errorf("x on fall-through leg = %v, want exactly zero", elseEnv[xVar])
	}
}

func TestConstantBranchPruning(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	c = 5;
	if (c > 0) { x = 1; } else { x = -1; }
	print(x);
}`)
	if got := signAtExit(t, f, r, "x"); got != P {
		t.Errorf("x = %v, want + (dead branch pruned)", got)
	}
}

// TestQualifiedSignsBeatBaseline: signs merge away on the original graph
// but stay definite on the hot path graph — the paper's §8 claim that
// the technique generalizes beyond constant propagation.
func TestQualifiedSignsBeatBaseline(t *testing.T) {
	src := `
func main() {
	n = arg(0);
	i = 0;
	acc = 0;
	while (i < n) {
		m = input() % 10;
		if (m < 9) {
			delta = 3;          // hot: positive
		} else {
			delta = input();    // cold: any sign
		}
		step = delta * 2;       // sign lost at the merge ...
		acc = acc + step;
		i = i + 1;
	}
	print(acc);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	pp, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:  []ir.Value{100},
		Input: &interp.SliceInput{Values: stream(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := pp.Funcs["main"]
	hot := profile.SelectHot(pr, fn.G, 0.97)
	a, err := automaton.New(fn.G, pr.R, hot)
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(fn, a)
	if err != nil {
		t.Fatal(err)
	}

	base := Analyze(fn.G, fn.NumVars(), true)
	qual := Analyze(h.G, fn.NumVars(), true)

	baseFreq := profile.NodeFrequencies(pr, fn.G)
	tp, err := profile.Translate(pr, fn.G, h)
	if err != nil {
		t.Fatal(err)
	}
	qualFreq := profile.NodeFrequencies(tp, h.G)

	_, baseDyn := DefiniteCount(fn.G, base, baseFreq)
	_, qualDyn := DefiniteCount(h.G, qual, qualFreq)
	if qualDyn <= baseDyn {
		t.Errorf("qualified definite-sign dyn = %d, baseline = %d; want improvement", qualDyn, baseDyn)
	}
}

func stream(seed uint64) []ir.Value {
	vals := make([]ir.Value, 1024)
	x := seed*2654435761 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0x7fffffff)
	}
	return vals
}

// TestSignAnalysisSoundOnExecution validates every definite-sign claim
// against live registers, mirroring the constant-propagation soundness
// test.
func TestSignAnalysisSoundOnExecution(t *testing.T) {
	src := `
func main() {
	i = 0;
	pos = 1;
	neg = -1;
	acc = 0;
	while (i < 60) {
		v = input() % 7;
		if (v) { acc = acc + pos; } else { acc = acc + neg; }
		pos = pos * 2 % 1000 + 1;
		neg = 0 - pos;
		i = i + 1;
	}
	print(acc);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	sol := Analyze(fn.G, fn.NumVars(), true)
	var violation string
	_, err = interp.Run(prog, interp.Options{
		Input: &interp.SliceInput{Values: stream(9)},
		OnBlockEnv: func(f *cfg.Func, n cfg.NodeID, regs []ir.Value) {
			if violation != "" {
				return
			}
			env := sol.EnvAt(n)
			for v := range env {
				if env[v] != Top && !env[v].Has(SignOf(regs[v])) {
					violation = f.VarName(ir.Var(v)) + " at node " + f.G.Node(n).Name
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if violation != "" {
		t.Fatalf("unsound sign claim for %s", violation)
	}
}

func TestDefiniteCount(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	a = 3;
	b = a * 2;
	c = input();
	d = c * c;
	print(b + d);
}`)
	static, _ := DefiniteCount(f.G, r, nil)
	// a(const), b's components... at least the constants and b are
	// definite; d = c*c is {0,+}, not definite.
	if static < 3 {
		t.Errorf("definite static = %d, want >= 3", static)
	}
}
