// Package signs implements sign analysis — a second, independent client
// of the data-flow framework, demonstrating the paper's closing claim
// that path qualification "is applicable to other data-flow problems, as
// well" (§8). Facts are subsets of {negative, zero, positive} per
// register; qualified sign analysis runs unchanged on a hot path graph,
// where hot-path signs no longer merge with cold-path signs.
//
// The analysis is branch-aware in the Wegman-Zadek style and additionally
// refines the branched-on register: on the taken leg the condition is
// known non-zero, on the fall-through leg it is exactly zero.
package signs

import (
	"strings"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// Sign is a subset of {N, Z, P}. The empty set is ⊤ (no evidence); the
// full set is ⊥ (any sign).
type Sign uint8

// The three sign bits.
const (
	N Sign = 1 << iota // negative
	Z                  // zero
	P                  // positive

	Top    Sign = 0
	Bottom Sign = N | Z | P
)

// SignOf returns the singleton sign of a concrete value.
func SignOf(v ir.Value) Sign {
	switch {
	case v < 0:
		return N
	case v == 0:
		return Z
	default:
		return P
	}
}

// Has reports whether s admits sign bit b.
func (s Sign) Has(b Sign) bool { return s&b != 0 }

// Meet is set union (with ⊤ = ∅ as identity).
func (s Sign) Meet(o Sign) Sign { return s | o }

// Definite reports whether the sign is a single known bit.
func (s Sign) Definite() bool { return s == N || s == Z || s == P }

// String renders the set, e.g. "{-,0}" or "⊤".
func (s Sign) String() string {
	if s == Top {
		return "⊤"
	}
	var parts []string
	if s.Has(N) {
		parts = append(parts, "-")
	}
	if s.Has(Z) {
		parts = append(parts, "0")
	}
	if s.Has(P) {
		parts = append(parts, "+")
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// combine folds a per-singleton-pair table over two sign sets.
func combine(a, b Sign, f func(x, y Sign) Sign) Sign {
	if a == Top || b == Top {
		return Top
	}
	var out Sign
	for _, x := range [...]Sign{N, Z, P} {
		if !a.Has(x) {
			continue
		}
		for _, y := range [...]Sign{N, Z, P} {
			if b.Has(y) {
				out |= f(x, y)
			}
		}
	}
	return out
}

// addSigns is the sign table of addition on singletons.
func addSigns(x, y Sign) Sign {
	switch {
	case x == Z:
		return y
	case y == Z:
		return x
	case x == y:
		return x // P+P = P, N+N = N (overflow notwithstanding; see below)
	default:
		return Bottom // P+N can be anything
	}
}

// mulSigns is the sign table of multiplication on singletons.
func mulSigns(x, y Sign) Sign {
	switch {
	case x == Z || y == Z:
		return Z
	case x == y:
		return P
	default:
		return N
	}
}

// divSigns is the sign table of the IR's division (b == 0 yields 0, and
// magnitudes can round to zero: 1/2 == 0).
func divSigns(x, y Sign) Sign {
	switch {
	case y == Z:
		return Z // defined division by zero
	case x == Z:
		return Z
	case x == y:
		return Z | P // may round to zero
	default:
		return Z | N
	}
}

// modSigns: the remainder has the dividend's sign or is zero.
func modSigns(x, y Sign) Sign {
	if y == Z || x == Z {
		return Z
	}
	return x | Z
}

// cmpSigns decides a comparison on singleton signs where the order
// N < Z < P settles it; same-sign operands (other than Z,Z) can compare
// either way. Comparison results are 0 or 1, i.e. Z or P.
func cmpSigns(op ir.Op, x, y Sign) Sign {
	var lt, eq, gt bool
	switch {
	case x == Z && y == Z:
		eq = true
	case x == y:
		lt, eq, gt = true, true, true
	case signRank(x) < signRank(y):
		lt = true
	default:
		gt = true
	}
	var truth, falsth bool
	check := func(possible, holds bool) {
		if !possible {
			return
		}
		if holds {
			truth = true
		} else {
			falsth = true
		}
	}
	pred := func(l, e, g bool) {
		check(lt, l)
		check(eq, e)
		check(gt, g)
	}
	switch op {
	case ir.Lt:
		pred(true, false, false)
	case ir.Le:
		pred(true, true, false)
	case ir.Gt:
		pred(false, false, true)
	case ir.Ge:
		pred(false, true, true)
	case ir.Eq:
		pred(false, true, false)
	case ir.Ne:
		pred(true, false, true)
	}
	var out Sign
	if truth {
		out |= P
	}
	if falsth {
		out |= Z
	}
	return out
}

func signRank(s Sign) int {
	switch s {
	case N:
		return 0
	case Z:
		return 1
	default:
		return 2
	}
}

// EvalBin computes the sign of a binary operation.
//
// Note on overflow: the abstract tables treat P+P as P etc.; two's
// complement overflow can violate this for values near ±2^63. The
// language front end and benchmarks stay far from those magnitudes, and
// the soundness property tests sample accordingly. This matches the
// paper-era convention of ignoring overflow in abstract interpretation
// of signs.
func EvalBin(op ir.Op, a, b Sign) Sign {
	switch op {
	case ir.Add:
		return combine(a, b, addSigns)
	case ir.Sub:
		return combine(a, b, func(x, y Sign) Sign { return addSigns(x, negSign(y)) })
	case ir.Mul:
		return combine(a, b, mulSigns)
	case ir.Div:
		return combine(a, b, divSigns)
	case ir.Mod:
		return combine(a, b, modSigns)
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		return combine(a, b, func(x, y Sign) Sign { return cmpSigns(op, x, y) })
	case ir.And:
		return combine(a, b, func(x, y Sign) Sign {
			if x != N && y != N {
				// Both operands non-negative: result non-negative.
				return Z | P
			}
			if x == N && y == N {
				return N // sign bits both set
			}
			return Z | P // mixed: the non-negative operand masks the sign bit
		})
	case ir.Or:
		return combine(a, b, func(x, y Sign) Sign {
			if x == N || y == N {
				return N // a set sign bit survives or
			}
			if x == Z && y == Z {
				return Z
			}
			return P
		})
	case ir.Xor:
		return combine(a, b, func(x, y Sign) Sign {
			if (x == N) != (y == N) {
				return N
			}
			if x == Z && y == Z {
				return Z
			}
			return Z | P
		})
	case ir.Shl:
		// Left shifts can move bits into the sign position.
		if a == Top || b == Top {
			return Top
		}
		if a == Z {
			return Z
		}
		return Bottom
	case ir.Shr:
		return combine(a, b, func(x, y Sign) Sign {
			switch x {
			case Z:
				return Z
			case P:
				return Z | P
			default:
				return N // arithmetic shift keeps the sign bit
			}
		})
	}
	return Bottom
}

// EvalUn computes the sign of a unary operation.
func EvalUn(op ir.Op, a Sign) Sign {
	switch op {
	case ir.Copy:
		return a
	case ir.Neg:
		return negSign(a)
	case ir.Not:
		if a == Top {
			return Top
		}
		if a == Z {
			return P // !0 == 1
		}
		if !a.Has(Z) {
			return Z // definitely non-zero: !x == 0
		}
		return Z | P
	}
	return Bottom
}

func negSign(a Sign) Sign {
	var out Sign
	if a.Has(N) {
		out |= P
	}
	if a.Has(Z) {
		out |= Z
	}
	if a.Has(P) {
		out |= N
	}
	return out
}

// Env maps registers to sign sets; a dataflow.Fact.
type Env []Sign

// NewEnv returns an environment with every register set to s.
func NewEnv(numVars int, s Sign) Env {
	e := make(Env, numVars)
	for i := range e {
		e[i] = s
	}
	return e
}

// Clone copies the environment.
func (e Env) Clone() Env { return append(Env(nil), e...) }

// Meet combines pointwise.
func (e Env) Meet(o Env) Env {
	out := make(Env, len(e))
	for i := range e {
		out[i] = e[i].Meet(o[i])
	}
	return out
}

// Equal compares pointwise.
func (e Env) Equal(o Env) bool {
	for i := range e {
		if e[i] != o[i] {
			return false
		}
	}
	return true
}

// EvalInstr computes the sign an instruction's destination takes.
func EvalInstr(in *ir.Instr, env Env) Sign {
	switch {
	case in.Op == ir.Const:
		return SignOf(in.K)
	case in.Op.Opaque() || in.Op == ir.Print || in.Op == ir.Nop:
		return Bottom
	case in.Op.IsUnary():
		return EvalUn(in.Op, env[in.A])
	case in.Op.IsBinary():
		return EvalBin(in.Op, env[in.A], env[in.B])
	}
	return Bottom
}

// TransferBlock symbolically executes node n, optionally reporting each
// instruction's sign.
func TransferBlock(g *cfg.Graph, n cfg.NodeID, in Env, vals bool) (Env, []Sign) {
	env := in.Clone()
	nd := g.Node(n)
	var out []Sign
	if vals {
		out = make([]Sign, len(nd.Instrs))
	}
	for i := range nd.Instrs {
		s := EvalInstr(&nd.Instrs[i], env)
		if vals {
			out[i] = s
		}
		if nd.Instrs[i].HasDst() {
			env[nd.Instrs[i].Dst] = s
		}
	}
	return env, out
}

// Problem is the sign-analysis data-flow problem.
type Problem struct {
	NumVars int
	// Conditional enables branch pruning and condition refinement.
	Conditional bool
}

var _ dataflow.Problem = (*Problem)(nil)

// Entry returns the all-⊥ environment.
func (p *Problem) Entry() dataflow.Fact { return NewEnv(p.NumVars, Bottom) }

// Meet combines two facts.
func (p *Problem) Meet(a, b dataflow.Fact) dataflow.Fact { return a.(Env).Meet(b.(Env)) }

// Equal compares two facts.
func (p *Problem) Equal(a, b dataflow.Fact) bool { return a.(Env).Equal(b.(Env)) }

// Transfer executes the block and distributes to out-edges, refining the
// branch condition — and everything the block's copy chain proves equal
// to it — on each leg.
func (p *Problem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	env, _ := TransferBlock(g, n, in.(Env), false)
	nd := g.Node(n)
	switch nd.Kind {
	case cfg.TermJump, cfg.TermReturn:
		out[0] = env
	case cfg.TermBranch:
		if !p.Conditional {
			out[0], out[1] = env, env.Clone()
			return
		}
		c := env[nd.Cond]
		if c == Top {
			return // no evidence yet
		}
		aliases := condAliases(nd, p.NumVars)
		refine := func(e Env, s Sign) {
			for _, v := range aliases {
				e[v] &= s
			}
		}
		if c.Has(N) || c.Has(P) {
			taken := env.Clone()
			refine(taken, N|P) // the condition was non-zero
			out[0] = taken
		}
		if c.Has(Z) {
			fall := env.Clone()
			refine(fall, Z)
			out[1] = fall
		}
	case cfg.TermHalt:
	}
}

// condAliases returns the registers that provably hold the same value as
// the branch condition at the end of the block: the condition itself plus
// everything connected to it by the block's copy chain (the front end
// lowers `if (x)` to a copy into a temporary, so refining only the
// temporary would be useless).
func condAliases(nd *cfg.Node, numVars int) []ir.Var {
	// Value-numbering restricted to copies: each write makes its
	// destination a fresh token unless it copies another register.
	tokens := make([]int32, numVars)
	for i := range tokens {
		tokens[i] = int32(i)
	}
	next := int32(numVars)
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		if !in.HasDst() {
			continue
		}
		if in.Op == ir.Copy {
			tokens[in.Dst] = tokens[in.A]
		} else {
			tokens[in.Dst] = next
			next++
		}
	}
	var out []ir.Var
	want := tokens[nd.Cond]
	for v := range tokens {
		if tokens[v] == want {
			out = append(out, ir.Var(v))
		}
	}
	return out
}

// Result is a solved sign analysis.
type Result struct {
	G   *cfg.Graph
	Sol *dataflow.Solution
	n   int
}

// Analyze runs sign analysis over g.
func Analyze(g *cfg.Graph, numVars int, conditional bool) *Result {
	p := &Problem{NumVars: numVars, Conditional: conditional}
	return &Result{G: g, Sol: dataflow.Solve(g, p), n: numVars}
}

// EnvAt returns the environment at n's entry (all-⊤ when unreached).
func (r *Result) EnvAt(n cfg.NodeID) Env {
	if !r.Sol.Reached[n] {
		return NewEnv(r.n, Top)
	}
	return r.Sol.In[n].(Env)
}

// Reached reports analysis reachability.
func (r *Result) Reached(n cfg.NodeID) bool { return r.Sol.Reached[n] }

// InstrSigns returns each instruction's result sign at node n.
func (r *Result) InstrSigns(n cfg.NodeID) []Sign {
	_, vals := TransferBlock(r.G, n, r.EnvAt(n), true)
	return vals
}

// DefiniteCount returns how many pure, destination-producing instructions
// of g have a definite (single) sign under the solution — the metric the
// qualified-vs-baseline comparison uses.
func DefiniteCount(g *cfg.Graph, r *Result, freq []int64) (static int, dyn int64) {
	for _, nd := range g.Nodes {
		if !r.Reached(nd.ID) || len(nd.Instrs) == 0 {
			continue
		}
		vals := r.InstrSigns(nd.ID)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if !in.Op.IsPure() || !in.HasDst() {
				continue
			}
			if vals[i].Definite() {
				static++
				if freq != nil {
					dyn += freq[nd.ID]
				}
			}
		}
	}
	return static, dyn
}
