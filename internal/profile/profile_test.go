package profile_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/paperex"
	. "pathflow/internal/profile"
	"pathflow/internal/trace"
)

// Example dynamic-instruction weights: p1 = 70×11 = 770, p2 = 30×9 = 270,
// p3 = 100×8 = 800, p4 = 30×10 = 300; total 2140; descending order
// p3, p1, p4, p2.

func TestSelectHotOrdering(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	if got := pr.DynInstrs(f.G); got != 2140 {
		t.Fatalf("profile DynInstrs = %d, want 2140", got)
	}
	cases := []struct {
		ca   float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{0.3, 1},  // goal 642 ≤ 800 (p3)
		{0.5, 2},  // goal 1070: p3+p1 = 1570
		{0.75, 3}, // goal 1605: p3+p1+p4 = 1870
		{0.9, 4},  // goal 1926: all
		{1.0, 4},
		{2.0, 4}, // clamped by available paths
	}
	for _, tc := range cases {
		hot := SelectHot(pr, f.G, tc.ca)
		if len(hot) != tc.want {
			t.Errorf("SelectHot(ca=%v) = %d paths, want %d", tc.ca, len(hot), tc.want)
		}
	}
	// The single hottest path is p3 (count 100).
	hot := SelectHot(pr, f.G, 0.3)
	if e := pr.Entries[hot[0].Key()]; e.Count != 100 {
		t.Errorf("hottest path count = %d, want 100", e.Count)
	}
}

func TestCoverage(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	all := SelectHot(pr, f.G, 1.0)
	if got := Coverage(pr, f.G, all); got != 1.0 {
		t.Errorf("full coverage = %v, want 1", got)
	}
	one := SelectHot(pr, f.G, 0.3)
	want := 800.0 / 2140.0
	if got := Coverage(pr, f.G, one); got != want {
		t.Errorf("p3 coverage = %v, want %v", got, want)
	}
	if got := Coverage(pr, f.G, nil); got != 0 {
		t.Errorf("empty coverage = %v, want 0", got)
	}
}

func buildHPG(t *testing.T, nHot int) (*cfg.Func, map[string]cfg.EdgeID, *trace.HPG, *bl.Profile) {
	t.Helper()
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:nHot])
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	return f, edges, h, pr
}

func TestTranslateReproducesFigure6(t *testing.T) {
	f, _, h, pr := buildHPG(t, 4)
	tp, err := Translate(pr, f.G, h)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if err := tp.Validate(h.G); err != nil {
		t.Fatalf("translated profile invalid: %v", err)
	}
	// Lemma 1 gives a bijection: same number of distinct paths, same
	// total count.
	if tp.NumPaths() != pr.NumPaths() {
		t.Errorf("translated paths = %d, want %d", tp.NumPaths(), pr.NumPaths())
	}
	if tp.TotalCount() != pr.TotalCount() {
		t.Errorf("translated count = %d, want %d", tp.TotalCount(), pr.TotalCount())
	}
	// Figure 6's vertex sequences.
	wantSeqs := map[string]int64{
		"[•,A0,B1,C3,E6,F10,H14,I17,exit0]": 70,
		"[•,A0,B1,D4,E7,F11,H15,B0]":        30,
		"[•,B0,D2,E5,G9,H13,B0]":            100,
		"[•,B0,D2,E5,F8,H12,I16,exit0]":     30,
	}
	got := map[string]int64{}
	for _, e := range tp.Entries {
		got[e.Path.String(h.G)] = e.Count
	}
	for seq, count := range wantSeqs {
		if got[seq] != count {
			t.Errorf("translated path %s count = %d, want %d (have %v)", seq, got[seq], count, got)
		}
	}
}

func TestTranslatedDynInstrsPreserved(t *testing.T) {
	f, _, h, pr := buildHPG(t, 4)
	tp, err := Translate(pr, f.G, h)
	if err != nil {
		t.Fatal(err)
	}
	// Tracing duplicates vertices but does not change instruction
	// counts along any path.
	if got, want := tp.DynInstrs(h.G), pr.DynInstrs(f.G); got != want {
		t.Errorf("translated DynInstrs = %d, want %d", got, want)
	}
}

func TestNodeFrequencies(t *testing.T) {
	f, nodes, edges := paperex.Build()
	pr := paperex.Profile(edges)
	freq := NodeFrequencies(pr, f.G)
	// A executes once per activation: 70+5+25 = 100. B: every path
	// start or interior B: p1 (70) + p2 (30) + p3 start (100) + p4
	// start (30) = 230. H appears in every path once: 70+30+100+30=230.
	wants := map[cfg.NodeID]int64{
		nodes.A: 100,
		nodes.B: 230,
		nodes.H: 230,
		nodes.I: 100, // p1 (70) + p4 (30)
		nodes.G: 100, // p3 only
	}
	for v, want := range wants {
		if freq[v] != want {
			t.Errorf("freq[%s] = %d, want %d", f.G.Node(v).Name, freq[v], want)
		}
	}
}

func TestHPGNodeFrequenciesMatchPaperWeights(t *testing.T) {
	f, _, h, pr := buildHPG(t, 4)
	tp, err := Translate(pr, f.G, h)
	if err != nil {
		t.Fatal(err)
	}
	freq := NodeFrequencies(tp, h.G)
	// Execution frequencies behind the paper's §5 weights.
	wants := map[string]int64{
		"H12": 30, "H13": 100, "H14": 70, "H15": 30, "I17": 70,
		"B0": 130, "B1": 100, "Hε": 0, "Iε": 0,
	}
	byName := map[string]cfg.NodeID{}
	for _, nd := range h.G.Nodes {
		byName[nd.Name] = nd.ID
	}
	for name, want := range wants {
		id, ok := byName[name]
		if !ok {
			t.Fatalf("HPG lacks node %s", name)
		}
		if freq[id] != want {
			t.Errorf("freq[%s] = %d, want %d", name, freq[id], want)
		}
	}
}

func TestDynInstrsByNode(t *testing.T) {
	f, nodes, edges := paperex.Build()
	pr := paperex.Profile(edges)
	per := DynInstrsByNode(pr, f.G)
	// H has 4 instructions and executes 230 times.
	if per[nodes.H] != 4*230 {
		t.Errorf("dyn instrs at H = %d, want %d", per[nodes.H], 4*230)
	}
	var total int64
	for _, n := range per {
		total += n
	}
	if total != pr.DynInstrs(f.G) {
		t.Errorf("sum by node = %d, want %d", total, pr.DynInstrs(f.G))
	}
}

func TestEdgeCounts(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	counts := EdgeCounts(pr, f.G)
	// H→B is crossed by p2 (30) and p3 (100); H→I by p1 (70) and p4 (30).
	if got := counts[edges["H->B"]]; got != 130 {
		t.Errorf("count(H->B) = %d, want 130", got)
	}
	if got := counts[edges["H->I"]]; got != 100 {
		t.Errorf("count(H->I) = %d, want 100", got)
	}
	// B→D: p2 (30) + p3 (100) + p4 (30) = 160; B→C only p1 (70).
	if got := counts[edges["B->D"]]; got != 160 {
		t.Errorf("count(B->D) = %d, want 160", got)
	}
	if got := counts[edges["B->C"]]; got != 70 {
		t.Errorf("count(B->C) = %d, want 70", got)
	}
}

func TestSelectHotFromEdges(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	R := paperex.Recording(edges)
	counts := EdgeCounts(pr, f.G)
	hot := SelectHotFromEdges(counts, f.G, R, 0.97)
	if len(hot) == 0 {
		t.Fatal("no paths estimated")
	}
	for _, p := range hot {
		if err := p.Validate(f.G, R); err != nil {
			t.Errorf("estimated path invalid: %v", err)
		}
	}
	// The heaviest estimated path follows B→D (160) and E→G? E→F is
	// crossed by p1+p2+p4 = 130, E→G by p3 = 100, so the peel follows
	// E→F — manufacturing [•,B,D,E,F,H,B], a path that accounts for
	// most flow under independence but executes only rarely... the
	// estimator's characteristic mistake is producing *some* path mix
	// different from the true profile's hot set. At minimum, selection
	// from edges must differ from the true 4-path profile here or agree
	// structurally; just check determinism and bounds.
	again := SelectHotFromEdges(counts, f.G, R, 0.97)
	if len(again) != len(hot) {
		t.Errorf("estimation not deterministic: %d vs %d", len(hot), len(again))
	}
	if got := SelectHotFromEdges(counts, f.G, R, 0); got != nil {
		t.Errorf("ca=0 selected %d paths", len(got))
	}
}

func TestTranslateWithPartialAutomaton(t *testing.T) {
	// Translation must work regardless of which paths are hot: cold
	// paths map onto ε-state vertices.
	f, _, h, pr := buildHPG(t, 1)
	tp, err := Translate(pr, f.G, h)
	if err != nil {
		t.Fatal(err)
	}
	if tp.TotalCount() != pr.TotalCount() {
		t.Errorf("count = %d, want %d", tp.TotalCount(), pr.TotalCount())
	}
	if got, want := tp.DynInstrs(h.G), pr.DynInstrs(f.G); got != want {
		t.Errorf("translated DynInstrs = %d, want %d", got, want)
	}
}
