package profile

import (
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// Edge-profile-based hot-path estimation.
//
// Before Ball-Larus path profiling, hot paths were estimated from edge
// profiles by greedily following the heaviest out-edges — the heuristic
// behind trace scheduling and superblock formation. The estimation
// assumes branch outcomes are independent, so it can manufacture paths
// that never execute together and miss genuinely hot correlated paths.
// This file implements the classic estimator so the benchmark harness
// can quantify the difference — the motivation for using true path
// profiles that the paper inherits from [BL96].

// EdgeCounts derives per-edge execution counts from a path profile (the
// information an edge profiler would have collected directly).
func EdgeCounts(pr *bl.Profile, g *cfg.Graph) []int64 {
	counts := make([]int64, g.NumEdges())
	for _, ent := range pr.Entries {
		for _, e := range ent.Path.Edges {
			counts[e] += ent.Count
		}
	}
	return counts
}

// SelectHotFromEdges estimates the hot paths covering fraction ca of the
// dynamic instructions using only edge counts: it repeatedly peels the
// heaviest estimated path — start at the recording-edge target with the
// most remaining inbound recording flow, follow the highest-count
// out-edge until a recording edge closes the path, debit the path's
// estimated frequency (the minimum remaining count along it) from its
// edges — until the estimated coverage goal is met or no flow remains.
//
// The returned paths are structurally valid Ball-Larus paths, but their
// estimated frequencies can be wrong in both directions, which is
// exactly what the ablation measures.
func SelectHotFromEdges(counts []int64, g *cfg.Graph, R map[cfg.EdgeID]bool, ca float64) []bl.Path {
	if ca <= 0 {
		return nil
	}
	remaining := append([]int64(nil), counts...)

	// Total dynamic instructions estimated from edge counts: a node
	// executes once per inbound edge traversal (the entry node never
	// has inbound flow and holds no instructions anyway).
	var total int64
	for _, e := range g.Edges {
		total += counts[e.ID] * int64(len(g.Node(e.To).Instrs))
	}
	goal := ca * float64(total)

	seen := map[string]bool{}
	var hot []bl.Path
	var acc float64
	for range counts { // bounded number of peels
		if acc >= goal {
			break
		}
		// Heaviest start: the recording edge with the most remaining
		// flow; its target starts the path.
		var start cfg.EdgeID = cfg.NoEdge
		for e := range R {
			if start == cfg.NoEdge || remaining[e] > remaining[start] {
				start = e
			}
		}
		if start == cfg.NoEdge || remaining[start] <= 0 {
			break
		}
		v := g.Edge(start).To
		minFlow := remaining[start]
		var edges []cfg.EdgeID
		var instrs int64
		for {
			nd := g.Node(v)
			if len(nd.Out) == 0 {
				break // exit node: the final edge was recording
			}
			instrs += int64(len(nd.Instrs))
			// Heaviest out-edge.
			best := nd.Out[0]
			for _, eid := range nd.Out[1:] {
				if remaining[eid] > remaining[best] {
					best = eid
				}
			}
			edges = append(edges, best)
			if remaining[best] < minFlow {
				minFlow = remaining[best]
			}
			if R[best] {
				break
			}
			v = g.Edge(best).To
		}
		if len(edges) == 0 || !R[edges[len(edges)-1]] {
			break // ran into the exit without closing: malformed flow
		}
		if minFlow <= 0 {
			break
		}
		// Debit the flow.
		remaining[start] -= minFlow
		for _, e := range edges {
			remaining[e] -= minFlow
		}
		acc += float64(minFlow * instrs)
		p := bl.Path{Edges: edges}
		if !seen[p.Key()] {
			seen[p.Key()] = true
			hot = append(hot, p)
		}
	}
	return hot
}
