package stream_test

import (
	"encoding/json"
	"sync"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine/diskcache"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile/stream"
)

// fuzzSrc is a small two-function program with a loop and a biased
// branch — enough CFG structure for multi-edge Ball-Larus paths.
const fuzzSrc = `
func helper(k) {
	m = input() % 10;
	if (m < 9) { s = 4; } else { s = input() % 16; }
	return k * s + s / 2;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i);
		i = i + 1;
	}
	print(t);
}
`

var fuzzProgOnce = sync.OnceValues(func() (*cfg.Program, *bl.ProgramProfile) {
	prog, err := lang.Compile(fuzzSrc)
	if err != nil {
		panic(err)
	}
	vals := make([]ir.Value, 256)
	x := uint64(0x2545f4914f6cdd1d)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0xffff)
	}
	train, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:  []ir.Value{40},
		Input: &interp.SliceInput{Values: vals},
	})
	if err != nil {
		panic(err)
	}
	return prog, train
})

// buildAcc deterministically grows an accumulator from a seed using
// only the public API, decaying to epoch (kept inside one renorm
// window so the algebraic laws are bit-exact).
func buildAcc(seed uint64, epoch uint8) *stream.Accumulator {
	r := rngT(seed)
	a := stream.NewAccumulator("f", map[cfg.EdgeID]bool{})
	target := uint64(epoch % 28)
	for e := uint64(0); ; e++ {
		for i := r.intn(5); i >= 0; i-- {
			n := 1 + r.intn(3)
			edges := make([]cfg.EdgeID, n)
			for j := range edges {
				edges[j] = cfg.EdgeID(r.intn(10))
			}
			a.Add(bl.Path{Edges: edges}, int64(1+r.intn(1<<30)))
		}
		if e >= target {
			return a
		}
		a.Decay()
	}
}

// FuzzAccumulatorMerge checks the accumulator algebra on fuzzer-chosen
// histories: Merge commutes and associates bit-exactly, Decay∘Merge ≡
// Merge∘Decay at a common epoch, and merging never mutates its source.
func FuzzAccumulatorMerge(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(5), uint64(5), uint64(5), uint8(7), uint8(7), uint8(7))
	f.Add(uint64(9), uint64(11), uint64(13), uint8(3), uint8(19), uint8(27))
	f.Add(uint64(1<<60), uint64(1<<61), uint64(1<<62), uint8(27), uint8(1), uint8(14))
	f.Fuzz(func(t *testing.T, sa, sb, sc uint64, ea, eb, ec uint8) {
		a := buildAcc(sa, ea)
		b := buildAcc(sb, eb)
		c := buildAcc(sc, ec)

		bSnap := b.Clone()
		ab, ba := a.Clone(), b.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		if !ab.Equal(ba) {
			t.Fatal("merge not commutative")
		}
		if !b.Equal(bSnap) {
			t.Fatal("merge mutated its source")
		}

		left := ab.Clone() // (a+b)+c
		if err := left.Merge(c); err != nil {
			t.Fatal(err)
		}
		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		right := a.Clone() // a+(b+c)
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if !left.Equal(right) {
			t.Fatal("merge not associative")
		}

		// Decay/Merge commute at a common epoch.
		common := a.Epoch()
		if e := b.Epoch(); e > common {
			common = e
		}
		da, db := a.Clone(), b.Clone()
		da.DecayTo(common)
		db.DecayTo(common)
		md := da.Clone()
		if err := md.Merge(db); err != nil {
			t.Fatal(err)
		}
		md.Decay()
		da.Decay()
		db.Decay()
		dm := da
		if err := dm.Merge(db); err != nil {
			t.Fatal(err)
		}
		if !md.Equal(dm) {
			t.Fatal("Decay∘Merge != Merge∘Decay at common epoch")
		}
	})
}

// FuzzProfileDeltaCodec throws arbitrary bytes at both wire layers of
// the streaming subsystem: the JSON delta batch (must never panic, and
// must apply atomically when accepted) and the diskcache snapshot
// frame (must never panic, and accepted frames must reach a stable
// encode/decode fixed point).
func FuzzProfileDeltaCodec(f *testing.F) {
	prog, train := fuzzProgOnce()
	// A valid batch for the fuzz program's main (edge 0 exists in every
	// graph; real hot keys come from the corpus below).
	set := stream.NewSet(prog, train)
	if valid, err := json.Marshal(&stream.Batch{
		Source: "seed",
		Funcs: []stream.FuncDelta{{
			Func: "main", Seq: 1,
			Paths: []stream.PathDelta{{Path: firstPathKey(train, "main"), Count: 7}},
		}},
	}); err == nil {
		f.Add(valid)
	}
	f.Add([]byte(`{"funcs":[{"func":"helper","seq":2,"paths":[{"path":"0","count":1}]}]}`))
	f.Add([]byte(`{"source":"a","advance_epoch":true,"funcs":[]}`))
	f.Add(diskcache.EncodeStream(diskcache.Meta{}, set.Snapshot()))
	f.Add([]byte("PFAC\x02\x09000000000000"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: JSON delta ingestion.
		var b stream.Batch
		if err := json.Unmarshal(data, &b); err == nil {
			s := stream.NewSet(prog, train)
			beforeMain := s.Accumulator("main")
			st, err := s.Apply(&b)
			if err != nil {
				// Rejected batches must leave the set untouched.
				if !s.Accumulator("main").Equal(beforeMain) {
					t.Fatal("rejected batch mutated the set")
				}
			} else if st.Applied+st.Dropped != len(b.Funcs) {
				t.Fatalf("applied %d + dropped %d != %d deltas", st.Applied, st.Dropped, len(b.Funcs))
			}
		}

		// Layer 2: snapshot frames. Arbitrary bytes must decode to
		// ErrCorrupt at worst; an accepted frame must re-encode and
		// re-decode to the identical state (stable fixed point — the
		// re-encoding is canonical even if the input ordering was not).
		_, restored, err := diskcache.DecodeStream(data, prog)
		if err != nil {
			return
		}
		again := diskcache.EncodeStream(diskcache.Meta{}, restored.Snapshot())
		_, restored2, err := diskcache.DecodeStream(again, prog)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		for _, name := range prog.Order {
			if !restored2.Accumulator(name).Equal(restored.Accumulator(name)) {
				t.Fatalf("func %s: snapshot codec not a fixed point", name)
			}
		}
	})
}

func firstPathKey(pp *bl.ProgramProfile, fn string) string {
	pr := pp.Funcs[fn]
	for k := range pr.Entries {
		return k
	}
	return "0"
}
