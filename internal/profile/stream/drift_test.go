package stream_test

import (
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile"
	"pathflow/internal/profile/stream"
	"pathflow/internal/progen"
)

func trainRandom(t *testing.T, seed uint64) (*cfg.Program, *bl.ProgramProfile) {
	t.Helper()
	src := progen.Generate(progen.DefaultConfig(seed))
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	vals := make([]ir.Value, 64)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0xffff)
	}
	pp, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:     []ir.Value{3, 7, 11},
		Input:    &interp.SliceInput{Values: vals},
		MaxSteps: 2_000_000,
	})
	if err != nil {
		t.Fatalf("seed %d: profile: %v", seed, err)
	}
	return prog, pp
}

// hotKeysEqual is the brute-force ground truth: re-run hot-set
// selection on both profiles and compare the selected paths exactly.
func hotKeysEqual(a, b *bl.Profile, g *cfg.Graph, ca float64) bool {
	var ha, hb []bl.Path
	if a != nil {
		ha = profile.SelectHot(a, g, ca)
	}
	if b != nil {
		hb = profile.SelectHot(b, g, ca)
	}
	if len(ha) != len(hb) {
		return false
	}
	for i := range ha {
		if ha[i].Key() != hb[i].Key() {
			return false
		}
	}
	return true
}

// TestDriftSoundness pits DetectDrift against brute-force re-selection
// on random progen programs under random streamed perturbations: the
// detector must never miss a hot-set change (soundness), and — since
// it gates on exact profile equality before re-selecting — must agree
// with the ground truth exactly.
func TestDriftSoundness(t *testing.T) {
	const ca = 0.97
	r := rngT(99)
	for seed := uint64(1); seed <= 20; seed++ {
		prog, train := trainRandom(t, seed)
		set := stream.NewSet(prog, train)

		// Random perturbations: bump existing paths (sometimes hugely,
		// flipping the hot set), sometimes decay the whole distribution.
		seq := uint64(0)
		for round := 0; round < 4; round++ {
			var fds []stream.FuncDelta
			for _, name := range prog.Order {
				pr := train.Funcs[name]
				if pr == nil || len(pr.Entries) == 0 || r.intn(2) == 0 {
					continue
				}
				var paths []stream.PathDelta
				for k := range pr.Entries {
					if r.intn(3) != 0 {
						continue
					}
					n := int64(1 + r.intn(50))
					if r.intn(4) == 0 {
						n = int64(1_000_000 + r.intn(1_000_000)) // hot-set flipper
					}
					paths = append(paths, stream.PathDelta{Path: k, Count: n})
				}
				if len(paths) == 0 {
					continue
				}
				seq++
				fds = append(fds, stream.FuncDelta{Func: name, Seq: seq, Paths: paths})
			}
			if len(fds) == 0 {
				continue
			}
			b := &stream.Batch{Source: "drift-test", AdvanceEpoch: r.intn(3) == 0, Funcs: fds}
			if _, err := set.Apply(b); err != nil {
				t.Fatalf("seed %d round %d: Apply: %v", seed, round, err)
			}
		}

		live := set.Profile()
		drift := stream.DetectDrift(train, live, prog, ca)
		byFunc := map[string]stream.FuncDrift{}
		for _, d := range drift {
			byFunc[d.Func] = d
		}
		for _, name := range prog.Order {
			g := prog.Funcs[name].G
			same := hotKeysEqual(train.Funcs[name], live.Funcs[name], g, ca)
			d := byFunc[name]
			if !same && !d.Requalify {
				t.Fatalf("seed %d func %s: hot set changed but drift detector missed it (UNSOUND)", seed, name)
			}
			if same && d.Requalify {
				t.Fatalf("seed %d func %s: hot set unchanged but detector demands requalification", seed, name)
			}
		}
	}
}

// TestDriftUntouchedIsClean: with no deltas applied, the live profile
// materializes the training profile exactly and no function drifts.
func TestDriftUntouchedIsClean(t *testing.T) {
	prog, train := trainRandom(t, 7)
	set := stream.NewSet(prog, train)
	for _, d := range stream.DetectDrift(train, set.Profile(), prog, 0.97) {
		if d.Changed || d.Requalify {
			t.Fatalf("func %s drifted with no deltas applied: %+v", d.Func, d)
		}
	}
}

// TestSetApplyIdempotent: a redelivered batch (same source, same seq)
// drops without changing the distribution.
func TestSetApplyIdempotent(t *testing.T) {
	prog, train := trainRandom(t, 3)
	set := stream.NewSet(prog, train)
	var fd *stream.FuncDelta
	for _, name := range prog.Order {
		pr := train.Funcs[name]
		if pr == nil || len(pr.Entries) == 0 {
			continue
		}
		for k := range pr.Entries {
			fd = &stream.FuncDelta{Func: name, Seq: 1, Paths: []stream.PathDelta{{Path: k, Count: 10}}}
			break
		}
		break
	}
	if fd == nil {
		t.Skip("no executed function in seed 3")
	}
	b := &stream.Batch{Source: "agent-1", Funcs: []stream.FuncDelta{*fd}}
	st, err := set.Apply(b)
	if err != nil || st.Applied != 1 {
		t.Fatalf("first apply: %+v, %v", st, err)
	}
	before := set.Accumulator(fd.Func)
	st, err = set.Apply(b)
	if err != nil {
		t.Fatalf("replay apply: %v", err)
	}
	if st.Applied != 0 || st.Dropped != 1 {
		t.Fatalf("replay: applied %d dropped %d, want 0/1", st.Applied, st.Dropped)
	}
	if !set.Accumulator(fd.Func).Equal(before) {
		t.Fatal("replayed batch changed the distribution")
	}
	// A different source's seq 1 is independent and applies.
	b2 := &stream.Batch{Source: "agent-2", Funcs: []stream.FuncDelta{*fd}}
	if st, err = set.Apply(b2); err != nil || st.Applied != 1 {
		t.Fatalf("second source apply: %+v, %v", st, err)
	}
}

// TestSetApplyAtomic: a batch with any invalid entry mutates nothing.
func TestSetApplyAtomic(t *testing.T) {
	prog, train := trainRandom(t, 3)
	set := stream.NewSet(prog, train)
	var name, key string
	for _, n := range prog.Order {
		if pr := train.Funcs[n]; pr != nil && len(pr.Entries) > 0 {
			name = n
			for k := range pr.Entries {
				key = k
				break
			}
			break
		}
	}
	if name == "" {
		t.Skip("no executed function in seed 3")
	}
	before := set.Accumulator(name)
	bad := []*stream.Batch{
		{Funcs: []stream.FuncDelta{}},
		{Funcs: []stream.FuncDelta{{Func: "nosuch", Seq: 1, Paths: []stream.PathDelta{{Path: key, Count: 1}}}}},
		{Funcs: []stream.FuncDelta{{Func: name, Seq: 0, Paths: []stream.PathDelta{{Path: key, Count: 1}}}}},
		{Funcs: []stream.FuncDelta{{Func: name, Seq: 1, Paths: []stream.PathDelta{{Path: key, Count: 0}}}}},
		{Funcs: []stream.FuncDelta{{Func: name, Seq: 1, Paths: []stream.PathDelta{{Path: "999999", Count: 1}}}}},
		{Funcs: []stream.FuncDelta{
			{Func: name, Seq: 1, Paths: []stream.PathDelta{{Path: key, Count: 5}}},
			{Func: name, Seq: 2, Paths: []stream.PathDelta{{Path: "not-a-path", Count: 1}}},
		}},
		{Source: "x\x00y", Funcs: []stream.FuncDelta{{Func: name, Seq: 1, Paths: []stream.PathDelta{{Path: key, Count: 1}}}}},
	}
	for i, b := range bad {
		if _, err := set.Apply(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		if !set.Accumulator(name).Equal(before) {
			t.Fatalf("bad batch %d mutated the set", i)
		}
	}
}

// TestSnapshotRoundTrip: Snapshot → RestoreSet reproduces every
// accumulator bit-exactly and preserves ingestion idempotency.
func TestSnapshotRoundTrip(t *testing.T) {
	prog, train := trainRandom(t, 5)
	set := stream.NewSet(prog, train)
	seq := uint64(0)
	for _, name := range prog.Order {
		pr := train.Funcs[name]
		if pr == nil || len(pr.Entries) == 0 {
			continue
		}
		for k := range pr.Entries {
			seq++
			b := &stream.Batch{Source: "snap", AdvanceEpoch: seq%2 == 0, Funcs: []stream.FuncDelta{
				{Func: name, Seq: seq, Paths: []stream.PathDelta{{Path: k, Count: int64(seq * 13)}}},
			}}
			if _, err := set.Apply(b); err != nil {
				t.Fatalf("apply: %v", err)
			}
			break
		}
	}

	restored, err := stream.RestoreSet(prog, set.Snapshot())
	if err != nil {
		t.Fatalf("RestoreSet: %v", err)
	}
	for _, name := range prog.Order {
		if !restored.Accumulator(name).Equal(set.Accumulator(name)) {
			t.Fatalf("func %s: restored accumulator differs", name)
		}
	}
	// Replay of an already-applied seq must still drop after restore.
	for _, name := range prog.Order {
		pr := train.Funcs[name]
		if pr == nil || len(pr.Entries) == 0 {
			continue
		}
		for k := range pr.Entries {
			b := &stream.Batch{Source: "snap", Funcs: []stream.FuncDelta{
				{Func: name, Seq: 1, Paths: []stream.PathDelta{{Path: k, Count: 1}}},
			}}
			st, err := restored.Apply(b)
			if err != nil {
				t.Fatalf("restored apply: %v", err)
			}
			if st.Applied != 0 || st.Dropped != 1 {
				t.Fatalf("restored set forgot seq numbers: %+v", st)
			}
			break
		}
		break
	}
}

// TestRestoreRejectsForeignSnapshot: a snapshot naming a function the
// program does not have fails restore (program-version skew).
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	prog, train := trainRandom(t, 5)
	set := stream.NewSet(prog, train)
	snap := set.Snapshot()
	snap.Funcs = append(snap.Funcs, stream.FuncSnapshot{Func: "ghost"})
	if _, err := stream.RestoreSet(prog, snap); err == nil {
		t.Fatal("snapshot with unknown function restored")
	}
}

// rngT is a tiny deterministic rng for the external test package.
type rngT uint64

func (r *rngT) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rngT) intn(n int) int { return int(r.next() % uint64(n)) }
