package stream

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// Set is a program-wide collection of accumulators — one per function,
// kept in epoch lockstep — plus the per-(source, function) sequence
// numbers that make delta ingestion idempotent. All methods are safe
// for concurrent use; a Set is the unit the serving layer keeps per
// analysis target.
type Set struct {
	mu    sync.Mutex
	prog  *cfg.Program
	funcs map[string]*Accumulator
	// seqs maps source "\x00" func to the highest applied sequence
	// number; a re-delivered delta (seq ≤ recorded) drops silently.
	seqs map[string]uint64

	// version counts mutations; mat/matVersion cache the last
	// materialized profile so repeated analyses of an unchanged stream
	// hand the engine the same pointer (its fingerprint memos key on
	// profile identity).
	version    uint64
	matVersion uint64
	mat        *bl.ProgramProfile
}

// NewSet returns a set for prog seeded from the training profile: each
// function's accumulator starts at epoch 0 holding the training counts,
// so with no deltas applied Profile() reproduces the training profile
// exactly (same counts, same recording edges) and nothing recomputes.
// train may be nil — accumulators then start empty over the minimal
// recording-edge set.
func NewSet(prog *cfg.Program, train *bl.ProgramProfile) *Set {
	s := &Set{prog: prog, funcs: map[string]*Accumulator{}, seqs: map[string]uint64{}}
	for _, name := range prog.Order {
		var tp *bl.Profile
		if train != nil {
			tp = train.Funcs[name]
		}
		R := map[cfg.EdgeID]bool{}
		if tp != nil {
			for e := range tp.R {
				R[e] = true
			}
		} else {
			R = bl.RecordingEdges(prog.Funcs[name].G)
		}
		acc := NewAccumulator(name, R)
		if tp != nil {
			for _, e := range tp.Entries {
				acc.Add(e.Path, e.Count)
			}
		}
		s.funcs[name] = acc
	}
	return s
}

// Epoch returns the common epoch of the set's accumulators.
func (s *Set) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochLocked()
}

func (s *Set) epochLocked() uint64 {
	for _, a := range s.funcs {
		return a.epoch
	}
	return 0
}

// Decay advances every accumulator by one epoch: all live weights
// halve. Returns the new epoch.
func (s *Set) Decay() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.funcs {
		a.Decay()
	}
	s.version++
	return s.epochLocked()
}

// Profile materializes the live distribution as a program profile.
// Successive calls with no intervening mutation return the identical
// pointer (callers must treat it as immutable — the engine does).
func (s *Set) Profile() *bl.ProgramProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mat != nil && s.matVersion == s.version {
		return s.mat
	}
	pp := bl.NewProgramProfile()
	for name, a := range s.funcs {
		pp.Funcs[name] = a.Profile()
	}
	s.mat, s.matVersion = pp, s.version
	return pp
}

// --- Delta batches --------------------------------------------------------

// PathDelta is one path's counter delta on the ingestion wire: the
// path in canonical key form (comma-joined edge IDs, bl.Path.Key) and
// the number of additional traversals observed.
type PathDelta struct {
	Path  string `json:"path"`
	Count int64  `json:"count"`
}

// FuncDelta is one function's slice of a batch, tagged with the
// per-(source, function) sequence number that makes redelivery
// idempotent: a consumer applies seq N at most once and drops any
// replayed or reordered batch with seq ≤ the last applied one.
type FuncDelta struct {
	Func  string      `json:"func"`
	Seq   uint64      `json:"seq"`
	Paths []PathDelta `json:"paths"`
}

// Batch is one ingestion request body: counter deltas from one source
// (a profiling agent, an edge collector), optionally advancing the
// decay epoch first so the new samples land at full weight on an aged
// distribution.
type Batch struct {
	Source       string      `json:"source,omitempty"`
	AdvanceEpoch bool        `json:"advance_epoch,omitempty"`
	Funcs        []FuncDelta `json:"funcs"`
}

// ApplyStats reports what a batch did.
type ApplyStats struct {
	// Applied and Dropped count the batch's function deltas: Applied
	// were new sequence numbers, Dropped were idempotent replays.
	Applied int `json:"applied"`
	Dropped int `json:"dropped"`
	// Epoch is the set's epoch after the batch.
	Epoch uint64 `json:"epoch"`
}

// BatchError reports a malformed delta batch. Validation runs before
// any mutation, so a rejected batch leaves the set untouched (safe to
// fix and resend with the same sequence numbers).
type BatchError struct {
	Func   string
	Reason string
}

func (e *BatchError) Error() string {
	if e.Func == "" {
		return fmt.Sprintf("stream: bad delta batch: %s", e.Reason)
	}
	return fmt.Sprintf("stream: bad delta batch for func %q: %s", e.Func, e.Reason)
}

// Hint returns the remediation line the serving layer surfaces.
func (e *BatchError) Hint() string {
	return `each funcs[] entry needs a known "func", "seq" >= 1, and "paths" whose "path" keys are valid Ball-Larus paths ("edgeID,edgeID,...") with "count" >= 1`
}

// ParsePathKey parses a canonical path key ("3,17,20") into edge IDs,
// bounds-checked against g.
func ParsePathKey(key string, g *cfg.Graph) (bl.Path, error) {
	if key == "" {
		return bl.Path{}, fmt.Errorf("empty path key")
	}
	parts := strings.Split(key, ",")
	edges := make([]cfg.EdgeID, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return bl.Path{}, fmt.Errorf("bad edge id %q", p)
		}
		if n < 0 || n >= int64(g.NumEdges()) {
			return bl.Path{}, fmt.Errorf("edge id %d out of range", n)
		}
		edges[i] = cfg.EdgeID(n)
	}
	return bl.Path{Edges: edges}, nil
}

// Apply validates and applies one batch atomically: either every
// function delta is structurally valid — known function, positive
// sequence number, well-formed Ball-Larus paths with positive counts —
// and the batch commits, or a *BatchError is returned and nothing
// changes. Function deltas whose sequence number has already been
// applied for the same source drop silently (idempotent replay) and
// count as Dropped.
func (s *Set) Apply(b *Batch) (ApplyStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Phase 1: validate everything, parse every path, mutate nothing.
	type parsedDelta struct {
		fd    *FuncDelta
		paths []bl.Path
	}
	if len(b.Funcs) == 0 {
		return ApplyStats{}, &BatchError{Reason: `"funcs" must list at least one function delta`}
	}
	if strings.ContainsRune(b.Source, 0) {
		return ApplyStats{}, &BatchError{Reason: "source must not contain NUL"}
	}
	parsed := make([]parsedDelta, 0, len(b.Funcs))
	for i := range b.Funcs {
		fd := &b.Funcs[i]
		acc, ok := s.funcs[fd.Func]
		if !ok {
			return ApplyStats{}, &BatchError{Func: fd.Func, Reason: "unknown function"}
		}
		if fd.Seq == 0 {
			return ApplyStats{}, &BatchError{Func: fd.Func, Reason: "seq must be >= 1"}
		}
		if len(fd.Paths) == 0 {
			return ApplyStats{}, &BatchError{Func: fd.Func, Reason: "paths must be non-empty"}
		}
		g := s.prog.Funcs[fd.Func].G
		paths := make([]bl.Path, len(fd.Paths))
		for j, pd := range fd.Paths {
			p, err := ParsePathKey(pd.Path, g)
			if err != nil {
				return ApplyStats{}, &BatchError{Func: fd.Func, Reason: err.Error()}
			}
			if err := p.Validate(g, acc.r); err != nil {
				return ApplyStats{}, &BatchError{Func: fd.Func, Reason: err.Error()}
			}
			if pd.Count < 1 {
				return ApplyStats{}, &BatchError{Func: fd.Func, Reason: fmt.Sprintf("count %d for path %q (want >= 1)", pd.Count, pd.Path)}
			}
			paths[j] = p
		}
		parsed = append(parsed, parsedDelta{fd: fd, paths: paths})
	}

	// Phase 2: commit.
	if b.AdvanceEpoch {
		for _, a := range s.funcs {
			a.Decay()
		}
		s.version++
	}
	var st ApplyStats
	for _, pd := range parsed {
		key := b.Source + "\x00" + pd.fd.Func
		if pd.fd.Seq <= s.seqs[key] {
			st.Dropped++
			continue
		}
		s.seqs[key] = pd.fd.Seq
		acc := s.funcs[pd.fd.Func]
		for j, p := range pd.paths {
			acc.Add(p, pd.fd.Paths[j].Count)
		}
		st.Applied++
	}
	if st.Applied > 0 {
		s.version++
	}
	st.Epoch = s.epochLocked()
	return st, nil
}

// --- Snapshot / restore ---------------------------------------------------

// SetSnapshot is the deterministic plain-data image of a Set, the form
// the diskcache codec persists: functions and entries in sorted order,
// raw (undecayed-scale) weights, the common epoch, and the ingestion
// sequence numbers so idempotency survives a restart.
type SetSnapshot struct {
	Epoch uint64
	Funcs []FuncSnapshot
	Seqs  []SeqSnapshot
}

// FuncSnapshot is one accumulator's image.
type FuncSnapshot struct {
	Func    string
	R       []cfg.EdgeID
	Entries []EntrySnapshot
}

// EntrySnapshot is one path's raw weight.
type EntrySnapshot struct {
	Edges []cfg.EdgeID
	Raw   uint64
}

// SeqSnapshot is one (source, function) sequence-number record.
type SeqSnapshot struct {
	Source string
	Func   string
	Seq    uint64
}

// Snapshot captures the set's full state in canonical order.
func (s *Set) Snapshot() *SetSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &SetSnapshot{Epoch: s.epochLocked()}
	names := make([]string, 0, len(s.funcs))
	for name := range s.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := s.funcs[name]
		fs := FuncSnapshot{Func: name, R: cfg.SortedEdgeIDs(a.r)}
		keys := make([]string, 0, len(a.entries))
		for k := range a.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := a.entries[k]
			fs.Entries = append(fs.Entries, EntrySnapshot{
				Edges: append([]cfg.EdgeID(nil), e.path.Edges...),
				Raw:   e.raw,
			})
		}
		snap.Funcs = append(snap.Funcs, fs)
	}
	seqKeys := make([]string, 0, len(s.seqs))
	for k := range s.seqs {
		seqKeys = append(seqKeys, k)
	}
	sort.Strings(seqKeys)
	for _, k := range seqKeys {
		source, fn, _ := strings.Cut(k, "\x00")
		snap.Seqs = append(snap.Seqs, SeqSnapshot{Source: source, Func: fn, Seq: s.seqs[k]})
	}
	return snap
}

// RestoreSet rebuilds a Set for prog from a snapshot, validating every
// path against its function's graph and recording-edge set. Functions
// of prog absent from the snapshot start empty (at the snapshot's
// epoch); snapshot functions unknown to prog are an error — the
// snapshot belongs to a different program version.
func RestoreSet(prog *cfg.Program, snap *SetSnapshot) (*Set, error) {
	s := &Set{prog: prog, funcs: map[string]*Accumulator{}, seqs: map[string]uint64{}}
	for _, fs := range snap.Funcs {
		fn, ok := prog.Funcs[fs.Func]
		if !ok {
			return nil, fmt.Errorf("stream: snapshot function %q not in program", fs.Func)
		}
		R := map[cfg.EdgeID]bool{}
		for _, e := range fs.R {
			if e < 0 || int(e) >= fn.G.NumEdges() {
				return nil, fmt.Errorf("stream: snapshot of %q: recording edge %d out of range", fs.Func, e)
			}
			R[e] = true
		}
		acc := NewAccumulator(fs.Func, R)
		acc.epoch = snap.Epoch
		for _, es := range fs.Entries {
			p := bl.Path{Edges: es.Edges}
			if err := p.Validate(fn.G, R); err != nil {
				return nil, fmt.Errorf("stream: snapshot of %q: %w", fs.Func, err)
			}
			if es.Raw == 0 {
				return nil, fmt.Errorf("stream: snapshot of %q: zero raw weight for %s", fs.Func, p.Key())
			}
			if _, dup := acc.entries[p.Key()]; dup {
				return nil, fmt.Errorf("stream: snapshot of %q: duplicate path %s", fs.Func, p.Key())
			}
			acc.entries[p.Key()] = &accEntry{path: p, raw: es.Raw}
		}
		s.funcs[fs.Func] = acc
	}
	for _, name := range prog.Order {
		if _, ok := s.funcs[name]; !ok {
			acc := NewAccumulator(name, bl.RecordingEdges(prog.Funcs[name].G))
			acc.epoch = snap.Epoch
			s.funcs[name] = acc
		}
	}
	for _, sq := range snap.Seqs {
		if _, ok := s.funcs[sq.Func]; !ok {
			return nil, fmt.Errorf("stream: snapshot seq for unknown function %q", sq.Func)
		}
		if sq.Seq == 0 {
			return nil, fmt.Errorf("stream: snapshot seq 0 for %q/%q", sq.Source, sq.Func)
		}
		key := sq.Source + "\x00" + sq.Func
		if _, dup := s.seqs[key]; dup {
			return nil, fmt.Errorf("stream: duplicate snapshot seq for %q/%q", sq.Source, sq.Func)
		}
		s.seqs[key] = sq.Seq
	}
	return s, nil
}

// Accumulator returns a deep copy of one function's accumulator (nil if
// the function is unknown) — an observation-only escape hatch for tests
// and tooling; mutating the copy never affects the set.
func (s *Set) Accumulator(name string) *Accumulator {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.funcs[name]
	if !ok {
		return nil
	}
	return a.Clone()
}
