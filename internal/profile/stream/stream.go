// Package stream turns the paper's one-shot batch path profile into a
// live, continuously-updated distribution: mergeable, exponentially-
// decaying path-count accumulators (this file), batched counter deltas
// with per-source/per-function sequence numbers and idempotent replay
// (set.go), and drift detection that reports exactly which functions'
// hot-set selection at CA a profile change invalidated (drift.go).
//
// # Decay algebra
//
// An Accumulator stores, per Ball-Larus path, a raw fixed-point weight
// denominated at the accumulator's current epoch: the observable count
// of a path is raw >> scale, where scale = epoch mod renormWindow.
// The three operations are then exact integer arithmetic:
//
//   - Add(path, n) contributes n << scale, so a fresh sample always
//     reads back at full weight;
//   - Decay() increments the epoch — every existing weight halves
//     (floor) without touching a single entry;
//   - Merge adds raw weights pointwise (saturating).
//
// Because Decay only moves the read-out scale and Merge is pointwise
// saturating addition, the algebra the property tests pin down holds
// exactly: Merge is commutative and associative, and for accumulators
// at the same epoch Decay∘Merge ≡ Merge∘Decay. Every renormWindow
// epochs the raw weights are rescaled down (exactly weight-preserving:
// floor division composes, ⌊⌊x/2³²⌋/2ˢ⌋ = ⌊x/2³²⁺ˢ⌋) so weights never
// overflow; within one renormalization window the laws are bit-exact,
// and across a window boundary two merge orders can differ by at most
// one raw ulp — less than 2⁻³² of a single traversal.
//
// The motivation is D'Elia & Demetrescu's multi-iteration profiling
// observation: path mixes shift over time, so an accumulator that
// merges soundly must forget soundly too — old traffic fades at a
// known exponential rate instead of pinning the hot-set selection to
// a stale training snapshot.
package stream

import (
	"fmt"
	"math"
	"math/bits"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// renormWindow is the number of epochs between raw-weight
// renormalizations. Within a window every decay is a pure scale bump
// and the merge/decay laws are bit-exact; at each window boundary raw
// weights shift down by the whole window so they can never overflow
// even under continuous high-volume ingestion.
const renormWindow = 32

// maxRaw is the saturation ceiling for raw weights.
const maxRaw = math.MaxUint64

// Accumulator is one function's decaying path-count accumulator: a
// bl.Profile whose counts fade exponentially with epochs instead of
// being frozen at training time. The zero value is not usable; use
// NewAccumulator. Accumulators are not self-synchronizing — Set wraps
// them behind one lock.
type Accumulator struct {
	fname   string
	r       map[cfg.EdgeID]bool
	epoch   uint64
	entries map[string]*accEntry
}

// accEntry is one path's raw fixed-point weight (see the package
// comment for the denomination).
type accEntry struct {
	path bl.Path
	raw  uint64
}

// NewAccumulator returns an empty accumulator at epoch 0 for a function
// whose recording-edge set is R. R is shared, not copied: it is
// read-only for the accumulator's whole life.
func NewAccumulator(fname string, R map[cfg.EdgeID]bool) *Accumulator {
	return &Accumulator{fname: fname, r: R, entries: map[string]*accEntry{}}
}

// FuncName returns the profiled function's name.
func (a *Accumulator) FuncName() string { return a.fname }

// Epoch returns the number of decays applied so far.
func (a *Accumulator) Epoch() uint64 { return a.epoch }

// NumPaths returns the number of paths with nonzero raw weight.
func (a *Accumulator) NumPaths() int { return len(a.entries) }

// scale is the current read-out shift.
func (a *Accumulator) scale() uint { return uint(a.epoch % renormWindow) }

// satShl returns v << s, saturating instead of overflowing.
func satShl(v uint64, s uint) uint64 {
	if s > 0 && v > maxRaw>>s {
		return maxRaw
	}
	return v << s
}

// satAdd returns a + b, saturating instead of overflowing. Saturating
// addition of non-negative values is commutative and associative: any
// ordering of a saturated sum yields min(maxRaw, Σ).
func satAdd(a, b uint64) uint64 {
	sum, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		return maxRaw
	}
	return sum
}

// Add records n more traversals of path p at the current epoch. The
// path is stored as given; callers are expected to have validated it
// against the function's graph and R (Set.Apply does).
func (a *Accumulator) Add(p bl.Path, n int64) {
	if n <= 0 {
		return
	}
	k := p.Key()
	raw := satShl(uint64(n), a.scale())
	if e, ok := a.entries[k]; ok {
		e.raw = satAdd(e.raw, raw)
		return
	}
	a.entries[k] = &accEntry{path: p, raw: raw}
}

// Decay advances the epoch by one: every stored weight halves. At each
// renormWindow boundary the raw weights are rescaled down by the whole
// window (exactly weight-preserving) and entries whose weight has
// decayed below one traversal are dropped.
func (a *Accumulator) Decay() {
	a.epoch++
	if a.epoch%renormWindow != 0 {
		return
	}
	for k, e := range a.entries {
		e.raw >>= renormWindow
		if e.raw == 0 {
			delete(a.entries, k)
		}
	}
}

// DecayTo decays until the accumulator reaches the target epoch. It is
// a no-op when the accumulator is already at or past it.
func (a *Accumulator) DecayTo(epoch uint64) {
	for a.epoch < epoch {
		a.Decay()
	}
}

// Clone returns a deep copy (shared R, copied entries).
func (a *Accumulator) Clone() *Accumulator {
	c := &Accumulator{
		fname:   a.fname,
		r:       a.r,
		epoch:   a.epoch,
		entries: make(map[string]*accEntry, len(a.entries)),
	}
	for k, e := range a.entries {
		c.entries[k] = &accEntry{path: e.path, raw: e.raw}
	}
	return c
}

// Merge folds o into a (o is left untouched). Both accumulators must
// profile the same function over the same recording-edge set. When the
// epochs differ the younger history is decayed forward first — never
// the other way, so merging can only lose precision on the side that
// is genuinely behind — and a ends at the later of the two epochs.
func (a *Accumulator) Merge(o *Accumulator) error {
	if o.fname != a.fname {
		return fmt.Errorf("stream: merging accumulator of %q into %q", o.fname, a.fname)
	}
	if !equalEdgeSets(a.r, o.r) {
		return fmt.Errorf("stream: merging accumulators of %q with different recording-edge sets", a.fname)
	}
	switch {
	case o.epoch < a.epoch:
		o = o.Clone()
		o.DecayTo(a.epoch)
	case o.epoch > a.epoch:
		a.DecayTo(o.epoch)
	}
	for k, oe := range o.entries {
		if e, ok := a.entries[k]; ok {
			e.raw = satAdd(e.raw, oe.raw)
		} else {
			a.entries[k] = &accEntry{path: oe.path, raw: oe.raw}
		}
	}
	return nil
}

// Count returns the decayed traversal count of the path with key k
// (zero when absent), clamped to the int64 range bl uses.
func (a *Accumulator) Count(k string) int64 {
	e, ok := a.entries[k]
	if !ok {
		return 0
	}
	return clampCount(e.raw >> a.scale())
}

func clampCount(w uint64) int64 {
	if w > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(w)
}

// Profile materializes the accumulator's current view as a bl.Profile:
// every path whose decayed weight is at least one traversal, at its
// floor count. The returned profile owns a fresh R copy and is safe to
// hand to the engine (which fingerprints and retains it).
func (a *Accumulator) Profile() *bl.Profile {
	R := make(map[cfg.EdgeID]bool, len(a.r))
	for e := range a.r {
		R[e] = true
	}
	pr := bl.NewProfile(a.fname, R)
	s := a.scale()
	for _, e := range a.entries {
		if w := e.raw >> s; w > 0 {
			pr.Add(e.path, clampCount(w))
		}
	}
	return pr
}

// Equal reports whether two accumulators are in the identical state:
// same function, same R, same epoch, and the same raw weight on every
// path. This is the (strict, bit-exact) equality the algebraic property
// tests assert.
func (a *Accumulator) Equal(o *Accumulator) bool {
	if a.fname != o.fname || a.epoch != o.epoch || len(a.entries) != len(o.entries) {
		return false
	}
	if !equalEdgeSets(a.r, o.r) {
		return false
	}
	for k, e := range a.entries {
		oe, ok := o.entries[k]
		if !ok || oe.raw != e.raw {
			return false
		}
	}
	return true
}

func equalEdgeSets(a, b map[cfg.EdgeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}
