package stream

import (
	"strings"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/profile"
)

// FuncDrift is one function's drift verdict: whether the live profile
// differs at all from the one the cached artifacts were built from
// (Changed — an engine.DeltaProfile edit), and whether that change
// moved the hot-set selection at CA (Requalify — everything downstream
// of StageSelect re-keys; an unchanged hot set still replays the
// qualification suffix through the output-addressed automaton key).
type FuncDrift struct {
	Func      string `json:"func"`
	Changed   bool   `json:"changed"`
	Requalify bool   `json:"requalify"`
}

// HotKey renders the hot-set selection of pr at coverage ca as a
// canonical string (the selected paths' keys in selection order). Two
// profiles with equal HotKeys select byte-identical hot sets, so the
// automaton, trace and analyze artifacts keyed by the hot set replay.
// A nil or empty profile selects nothing and keys to "".
func HotKey(pr *bl.Profile, g *cfg.Graph, ca float64) string {
	if pr == nil {
		return ""
	}
	hot := profile.SelectHot(pr, g, ca)
	keys := make([]string, len(hot))
	for i, p := range hot {
		keys[i] = p.Key()
	}
	return strings.Join(keys, ";")
}

// equalProfile reports whether two profiles are interchangeable as
// selection inputs: same recording edges and the same path multiset.
// Nil compares equal only to nil or an empty profile with no recording
// edges (which selects identically).
func equalProfile(a, b *bl.Profile) bool {
	if a == nil || b == nil {
		other := a
		if a == nil {
			other = b
		}
		return other == nil || (len(other.Entries) == 0 && len(other.R) == 0)
	}
	return equalEdgeSets(a.R, b.R) && a.Equal(b)
}

// DetectDrift compares the live profile against the one the cached
// artifacts were built from, function by function in program order.
// The detector is sound by construction: hot-set selection is a
// deterministic function of (profile, CA), so it only skips the
// re-selection when the two profiles are exactly equal — any hot-set
// change implies a profile change, which the equality gate cannot miss
// (the property test pits it against brute-force re-selection anyway).
// Either program profile may be nil (nothing analyzed yet / nothing
// streamed yet); missing function profiles count as empty.
func DetectDrift(prev, live *bl.ProgramProfile, prog *cfg.Program, ca float64) []FuncDrift {
	fp := func(pp *bl.ProgramProfile, name string) *bl.Profile {
		if pp == nil {
			return nil
		}
		return pp.Funcs[name]
	}
	out := make([]FuncDrift, 0, len(prog.Order))
	for _, name := range prog.Order {
		d := FuncDrift{Func: name}
		a, b := fp(prev, name), fp(live, name)
		if !equalProfile(a, b) {
			d.Changed = true
			g := prog.Funcs[name].G
			d.Requalify = HotKey(a, g, ca) != HotKey(b, g, ca)
		}
		out = append(out, d)
	}
	return out
}
