package stream

import (
	"math"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// rng is a splitmix64 for deterministic randomized property tests.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// randPath builds a path over an abstract edge universe — the
// accumulator algebra never consults a graph, so arbitrary edge IDs
// exercise it fully.
func randPath(r *rng) bl.Path {
	n := 1 + r.intn(4)
	edges := make([]cfg.EdgeID, n)
	for i := range edges {
		edges[i] = cfg.EdgeID(r.intn(12))
	}
	return bl.Path{Edges: edges}
}

// randAcc builds an accumulator with random paths/counts, decayed to a
// random epoch strictly inside the first renormalization window so the
// algebraic laws hold bit-exactly (see the package comment).
func randAcc(r *rng, maxEpoch int) *Accumulator {
	a := NewAccumulator("f", map[cfg.EdgeID]bool{})
	epochs := r.intn(maxEpoch + 1)
	for e := 0; e <= epochs; e++ {
		for i := r.intn(6); i > 0; i-- {
			a.Add(randPath(r), int64(1+r.intn(1000)))
		}
		if e < epochs {
			a.Decay()
		}
	}
	return a
}

func mustMerge(t *testing.T, dst, src *Accumulator) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatalf("Merge: %v", err)
	}
}

// TestMergeCommutative: merge(A,B) ≡ merge(B,A) bit-exactly, including
// across (in-window) epoch differences and saturated weights.
func TestMergeCommutative(t *testing.T) {
	r := rng(1)
	for trial := 0; trial < 500; trial++ {
		a, b := randAcc(&r, 20), randAcc(&r, 20)
		ab, ba := a.Clone(), b.Clone()
		mustMerge(t, ab, b)
		mustMerge(t, ba, a)
		if !ab.Equal(ba) {
			t.Fatalf("trial %d: merge(A,B) != merge(B,A)\nA epoch %d, B epoch %d", trial, a.Epoch(), b.Epoch())
		}
	}
}

// TestMergeAssociative: merge(merge(A,B),C) ≡ merge(A,merge(B,C)).
func TestMergeAssociative(t *testing.T) {
	r := rng(2)
	for trial := 0; trial < 500; trial++ {
		a, b, c := randAcc(&r, 15), randAcc(&r, 15), randAcc(&r, 15)
		left := a.Clone()
		mustMerge(t, left, b)
		mustMerge(t, left, c)
		right := b.Clone()
		mustMerge(t, right, c)
		la := a.Clone()
		mustMerge(t, la, right)
		if !left.Equal(la) {
			t.Fatalf("trial %d: (A+B)+C != A+(B+C)", trial)
		}
	}
}

// TestDecayMergeCommute: at a common epoch inside one renorm window,
// Decay∘Merge ≡ Merge∘Decay bit-exactly — decay moves only the
// read-out scale, never the stored weights.
func TestDecayMergeCommute(t *testing.T) {
	r := rng(3)
	for trial := 0; trial < 500; trial++ {
		epoch := uint64(r.intn(30))
		a, b := randAcc(&r, 0), randAcc(&r, 0)
		a.DecayTo(epoch)
		b.DecayTo(epoch)
		for i := 0; i < 5; i++ { // land fresh samples at this scale too
			a.Add(randPath(&r), int64(1+r.intn(1000)))
			b.Add(randPath(&r), int64(1+r.intn(1000)))
		}

		mergeThenDecay := a.Clone()
		mustMerge(t, mergeThenDecay, b)
		mergeThenDecay.Decay()

		da, db := a.Clone(), b.Clone()
		da.Decay()
		db.Decay()
		decayThenMerge := da
		mustMerge(t, decayThenMerge, db)

		if !mergeThenDecay.Equal(decayThenMerge) {
			t.Fatalf("trial %d (epoch %d): Decay∘Merge != Merge∘Decay", trial, epoch)
		}
	}
}

// TestDecayHalves: each Decay exactly floor-halves every observable
// count, including across the renormalization boundary (where raw
// weights are rescaled — the rescale must be weight-invisible).
func TestDecayHalves(t *testing.T) {
	r := rng(4)
	a := NewAccumulator("f", map[cfg.EdgeID]bool{})
	keys := map[string]bool{}
	for i := 0; i < 10; i++ {
		p := randPath(&r)
		a.Add(p, int64(1+r.intn(1<<40)))
		keys[p.Key()] = true
	}
	for epoch := 0; epoch < 3*renormWindow; epoch++ {
		before := map[string]int64{}
		for k := range keys {
			before[k] = a.Count(k)
		}
		a.Decay()
		for k := range keys {
			if got, want := a.Count(k), before[k]/2; got != want {
				t.Fatalf("epoch %d→%d: Count(%s) = %d, want %d", epoch, epoch+1, k, got, want)
			}
		}
	}
}

// TestAddAfterDecayFullWeight: samples always read back at full weight
// no matter the epoch they land at.
func TestAddAfterDecayFullWeight(t *testing.T) {
	p := bl.Path{Edges: []cfg.EdgeID{1, 2}}
	for _, epochs := range []int{0, 1, 7, 31, 32, 40, 64} {
		a := NewAccumulator("f", map[cfg.EdgeID]bool{})
		a.DecayTo(uint64(epochs))
		a.Add(p, 123)
		if got := a.Count(p.Key()); got != 123 {
			t.Fatalf("after %d decays: Count = %d, want 123", epochs, got)
		}
	}
}

// TestSaturation: weights cap instead of overflowing, and saturated
// merges stay order-independent.
func TestSaturation(t *testing.T) {
	p := bl.Path{Edges: []cfg.EdgeID{0}}
	a := NewAccumulator("f", map[cfg.EdgeID]bool{})
	b := NewAccumulator("f", map[cfg.EdgeID]bool{})
	for i := 0; i < 40; i++ {
		a.Add(p, math.MaxInt64)
		b.Add(p, math.MaxInt64)
	}
	if got := a.Count(p.Key()); got != math.MaxInt64 {
		t.Fatalf("saturated Count = %d, want MaxInt64", got)
	}
	ab, ba := a.Clone(), b.Clone()
	mustMerge(t, ab, b)
	mustMerge(t, ba, a)
	if !ab.Equal(ba) {
		t.Fatal("saturated merge is order-dependent")
	}
}

// TestMergeRejectsMismatch: accumulators of different functions or
// recording-edge sets refuse to merge.
func TestMergeRejectsMismatch(t *testing.T) {
	a := NewAccumulator("f", map[cfg.EdgeID]bool{1: true})
	if err := a.Merge(NewAccumulator("g", map[cfg.EdgeID]bool{1: true})); err == nil {
		t.Fatal("merging different functions succeeded")
	}
	if err := a.Merge(NewAccumulator("f", map[cfg.EdgeID]bool{2: true})); err == nil {
		t.Fatal("merging different recording-edge sets succeeded")
	}
}

// TestMergeAcrossEpochsLeavesSourceUntouched: Merge may need to decay
// a younger source forward; that must happen on a clone.
func TestMergeAcrossEpochsLeavesSourceUntouched(t *testing.T) {
	p := bl.Path{Edges: []cfg.EdgeID{3}}
	old := NewAccumulator("f", map[cfg.EdgeID]bool{})
	old.Add(p, 100)
	old.DecayTo(4)
	young := NewAccumulator("f", map[cfg.EdgeID]bool{})
	young.Add(p, 100)
	snapshot := young.Clone()
	mustMerge(t, old, young)
	if !young.Equal(snapshot) {
		t.Fatal("Merge mutated its source")
	}
	if old.Epoch() != 4 {
		t.Fatalf("merged epoch = %d, want 4 (the later one)", old.Epoch())
	}
	// old contributed 100>>4 = 6; young decayed forward contributes
	// 100>>4 = 6 as well.
	if got := old.Count(p.Key()); got != 12 {
		t.Fatalf("merged Count = %d, want 12", got)
	}
}

// TestProfileMaterialization: Profile() floors decayed weights and
// drops sub-traversal residue.
func TestProfileMaterialization(t *testing.T) {
	hot := bl.Path{Edges: []cfg.EdgeID{1}}
	cold := bl.Path{Edges: []cfg.EdgeID{2}}
	a := NewAccumulator("f", map[cfg.EdgeID]bool{0: true})
	a.Add(hot, 1000)
	a.Add(cold, 1)
	a.Decay() // cold falls below one traversal
	pr := a.Profile()
	if pr.FuncName != "f" || !pr.R[0] {
		t.Fatalf("materialized profile header wrong: %q %v", pr.FuncName, pr.R)
	}
	if len(pr.Entries) != 1 {
		t.Fatalf("materialized %d entries, want 1 (cold path decayed out)", len(pr.Entries))
	}
	if e := pr.Entries[hot.Key()]; e == nil || e.Count != 500 {
		t.Fatalf("hot entry = %+v, want count 500", e)
	}
}
