// Package profile provides the path-profile manipulations of Ammons &
// Larus (PLDI 1998) that sit above raw collection: selecting the hot paths
// that cover a fraction CA of a training run's dynamic instructions
// (paper §3), translating a profile of the original graph into a profile
// of the hot path graph or reduced hot path graph (paper §4.2, Lemmas 1
// and 2), and deriving per-vertex execution frequencies from a profile.
package profile

import (
	"fmt"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// SelectHot returns the minimal set of paths that covers fraction ca of
// the profile's dynamic instructions: paths are considered in descending
// order of instructions executed along the path (length × frequency) and
// marked hot until the coverage goal is reached. ca <= 0 selects nothing;
// ca >= 1 selects every executed path.
func SelectHot(pr *bl.Profile, g *cfg.Graph, ca float64) []bl.Path {
	if ca <= 0 {
		return nil
	}
	total := pr.DynInstrs(g)
	if total == 0 {
		return nil
	}
	goal := ca * float64(total)
	var hot []bl.Path
	var acc float64
	for _, e := range pr.SortedEntries(g) {
		if acc >= goal {
			break
		}
		hot = append(hot, e.Path)
		acc += float64(e.Count * int64(e.Path.NumInstrs(g)))
	}
	return hot
}

// Coverage returns the fraction of the profile's dynamic instructions the
// given paths cover.
func Coverage(pr *bl.Profile, g *cfg.Graph, paths []bl.Path) float64 {
	total := pr.DynInstrs(g)
	if total == 0 {
		return 0
	}
	var acc int64
	for _, p := range paths {
		if e, ok := pr.Entries[p.Key()]; ok {
			acc += e.Count * int64(p.NumInstrs(g))
		}
	}
	return float64(acc) / float64(total)
}

// Overlay is a graph derived from an original CFG whose edges correspond
// slot-for-slot to original edges: the hot path graph (trace.HPG) and the
// reduced hot path graph (reduce.Reduced) both satisfy it. The paper's
// Lemmas 1 and 2 guarantee that a Ball-Larus path of the original graph
// maps to exactly one Ball-Larus path of the overlay, starting at the
// overlay node that represents (start vertex, q•).
type Overlay interface {
	// OverlayGraph returns the derived graph.
	OverlayGraph() *cfg.Graph
	// OverlayStart returns the overlay node where paths beginning at
	// original vertex v start.
	OverlayStart(v cfg.NodeID) (cfg.NodeID, bool)
	// OverlayRecording returns the overlay's recording-edge set.
	OverlayRecording() map[cfg.EdgeID]bool
	// OverlayOrigEdge maps an overlay edge back to the original edge it
	// duplicates.
	OverlayOrigEdge(e cfg.EdgeID) cfg.EdgeID
}

// Translate re-expresses a profile of the original graph as a profile of
// the overlay. Each path is laid out by following the overlay's unique
// edge in the same successor slot as the original edge (Lemma 2); the
// result is validated against the overlay's recording edges.
func Translate(pr *bl.Profile, orig *cfg.Graph, ov Overlay) (*bl.Profile, error) {
	og := ov.OverlayGraph()
	out := bl.NewProfile(pr.FuncName, ov.OverlayRecording())
	for _, ent := range pr.Entries {
		startV := ent.Path.Start(orig)
		cur, ok := ov.OverlayStart(startV)
		if !ok {
			return nil, fmt.Errorf("profile: no overlay start for vertex %d (path %s)", startV, ent.Path.Key())
		}
		edges := make([]cfg.EdgeID, 0, len(ent.Path.Edges))
		for _, oe := range ent.Path.Edges {
			slot := orig.Edge(oe).Slot
			nd := og.Node(cur)
			if slot >= len(nd.Out) {
				return nil, fmt.Errorf("profile: overlay node %d lacks successor slot %d", cur, slot)
			}
			he := nd.Out[slot]
			if got := ov.OverlayOrigEdge(he); got != oe {
				return nil, fmt.Errorf("profile: overlay edge %d duplicates %d, want %d", he, got, oe)
			}
			edges = append(edges, he)
			cur = og.Edge(he).To
		}
		p := bl.Path{Edges: edges}
		if err := p.Validate(og, out.R); err != nil {
			return nil, fmt.Errorf("profile: translated path invalid: %w", err)
		}
		out.Add(p, ent.Count)
	}
	return out, nil
}

// NodeFrequencies returns how many times each node of g executes under
// profile pr. Following the chaining convention of bl.Path.NumInstrs, a
// path is charged for every vertex except its final one, which the
// following path counts as its start; the function's entry vertex is
// charged to no path.
func NodeFrequencies(pr *bl.Profile, g *cfg.Graph) []int64 {
	freq := make([]int64, g.NumNodes())
	for _, ent := range pr.Entries {
		vs := ent.Path.Vertices(g)
		if len(vs) == 0 {
			continue
		}
		for _, v := range vs[:len(vs)-1] {
			freq[v] += ent.Count
		}
	}
	return freq
}

// DynInstrsByNode returns, per node, frequency × static instruction
// count: the dynamic instructions each node contributes under pr.
func DynInstrsByNode(pr *bl.Profile, g *cfg.Graph) []int64 {
	freq := NodeFrequencies(pr, g)
	for i, nd := range g.Nodes {
		freq[i] *= int64(len(nd.Instrs))
	}
	return freq
}
