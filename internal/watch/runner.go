package watch

import (
	"context"
	"fmt"
	"os"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/lang"
	"pathflow/internal/profile/stream"
)

// Event is one function's outcome in one re-analysis round: the
// classified delta the edit produced, whether the function's hot-set
// selection at CA changed (Requalify — its StageSelect-downstream
// artifacts re-keyed), and the replay/recompute split actually
// observed across the pipeline stages.
type Event struct {
	Round          int
	Func           string
	Class          engine.DeltaClass
	Requalify      bool
	Replayed       int
	Recomputed     int
	ReplayedStages []string
}

// Config configures a Runner. SrcPath is required; everything else has
// a usable zero value.
type Config struct {
	// SrcPath is the mini-language source file to watch and re-analyze.
	SrcPath string
	// ProfilePath, when set, is a saved profile (bl JSON) watched and
	// reloaded alongside the source; otherwise each round runs the
	// training input via Train.
	ProfilePath string
	// Train produces a training profile for a freshly compiled program
	// (ignored when ProfilePath is set).
	Train func(prog *cfg.Program) (*bl.ProgramProfile, error)
	// Interval is the poll period (default 500ms).
	Interval time.Duration
	// Rounds, when > 0, stops the runner after that many
	// change-triggered re-analysis rounds (the initial cold analysis is
	// round 0 and does not count).
	Rounds int
	// Options are the pipeline knobs for every round.
	Options engine.Options
	// OnRound is called when a change is detected, before the round
	// runs (round >= 1; changed lists the modified files).
	OnRound func(round int, changed []string)
	// OnEvent receives one Event per function per round, in program
	// order (including round 0, where every class is "cold").
	OnEvent func(Event)
	// OnError receives non-fatal round errors — a source file that does
	// not compile mid-edit, an unreadable profile — after which the
	// runner keeps watching. When nil, such errors stop the runner.
	OnError func(error)
}

// Runner drives the watch loop: one engine (and artifact cache) for
// all rounds, the previous round's program and profile as the diff
// baseline for the next.
type Runner struct {
	cfg       Config
	eng       *engine.Engine
	prevProg  *cfg.Program
	prevTrain *bl.ProgramProfile
	rounds    int
}

// NewRunner returns a runner using eng's cache across rounds.
func NewRunner(eng *engine.Engine, cfg Config) *Runner {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	return &Runner{cfg: cfg, eng: eng}
}

// Run performs the initial cold analysis, then polls until ctx is
// cancelled or the configured round budget is spent, re-analyzing on
// every source/profile change. Returns nil on a clean stop.
func (r *Runner) Run(ctx context.Context) error {
	if err := r.initial(ctx); err != nil {
		return err
	}
	paths := []string{r.cfg.SrcPath}
	if r.cfg.ProfilePath != "" {
		paths = append(paths, r.cfg.ProfilePath)
	}
	poller := NewPoller(paths...)
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		changed := poller.Poll()
		if len(changed) == 0 {
			continue
		}
		if cb := r.cfg.OnRound; cb != nil {
			cb(r.rounds+1, changed)
		}
		if err := r.round(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if r.cfg.OnError == nil {
				return err
			}
			r.cfg.OnError(err)
			continue
		}
		if r.cfg.Rounds > 0 && r.rounds >= r.cfg.Rounds {
			return nil
		}
	}
}

// load compiles the watched source and produces its training profile.
func (r *Runner) load() (*cfg.Program, *bl.ProgramProfile, error) {
	data, err := os.ReadFile(r.cfg.SrcPath)
	if err != nil {
		return nil, nil, err
	}
	prog, err := lang.Compile(string(data))
	if err != nil {
		return nil, nil, fmt.Errorf("watch: compiling %s: %w", r.cfg.SrcPath, err)
	}
	var train *bl.ProgramProfile
	if r.cfg.ProfilePath != "" {
		f, err := os.Open(r.cfg.ProfilePath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		train, err = bl.Load(f, prog)
		if err != nil {
			return nil, nil, fmt.Errorf("watch: loading %s: %w", r.cfg.ProfilePath, err)
		}
	} else {
		train, err = r.cfg.Train(prog)
		if err != nil {
			return nil, nil, err
		}
	}
	return prog, train, nil
}

// initial is round 0: a cold analysis establishing the cache and the
// diff baseline.
func (r *Runner) initial(ctx context.Context) error {
	prog, train, err := r.load()
	if err != nil {
		return err
	}
	res, err := r.eng.AnalyzeProgram(engine.WithDeltaClass(ctx, engine.DeltaCold), prog, train, r.cfg.Options)
	if err != nil {
		return err
	}
	for _, name := range prog.Order {
		r.emit(0, name, engine.DeltaCold, true, res.Funcs[name])
	}
	r.prevProg, r.prevTrain = prog, train
	return nil
}

// round re-analyzes after a change: diff against the previous round,
// analyze each function under its classified delta, advance the
// baseline.
func (r *Runner) round(ctx context.Context) error {
	prog, train, err := r.load()
	if err != nil {
		return err
	}
	deltas := engine.DiffPrograms(r.prevProg, prog, r.prevTrain, train)
	byName := make(map[string]*engine.Delta, len(deltas))
	for _, d := range deltas {
		byName[d.Func] = d
	}
	r.rounds++
	for _, name := range prog.Order {
		class := engine.DeltaCold
		if d := byName[name]; d != nil {
			class = d.Class
		}
		fr, err := r.eng.AnalyzeFunc(engine.WithDeltaClass(ctx, class), prog.Funcs[name], train.Funcs[name], r.cfg.Options)
		if err != nil {
			return err
		}
		r.emit(r.rounds, name, class, r.requalify(name, class, prog, train), fr)
	}
	r.prevProg, r.prevTrain = prog, train
	return nil
}

// requalify reports whether the function's hot-set selection at CA
// changed this round. A structural edit re-keys everything downstream
// anyway (trivially true); an untouched function trivially keeps its
// selection; only a pure profile drift needs the actual comparison —
// on the unchanged graph, so both profiles select against the same
// node set.
func (r *Runner) requalify(name string, class engine.DeltaClass, prog *cfg.Program, train *bl.ProgramProfile) bool {
	switch class {
	case engine.DeltaNone:
		return false
	case engine.DeltaProfile, engine.DeltaCounts:
		g := prog.Funcs[name].G
		var prev *bl.Profile
		if r.prevTrain != nil {
			prev = r.prevTrain.Funcs[name]
		}
		return stream.HotKey(prev, g, r.cfg.Options.CA) != stream.HotKey(train.Funcs[name], g, r.cfg.Options.CA)
	}
	return true
}

// emit projects one function result onto an Event: which pipeline
// stages replayed from cache and which recomputed.
func (r *Runner) emit(round int, name string, class engine.DeltaClass, requalify bool, fr *engine.FuncResult) {
	if r.cfg.OnEvent == nil {
		return
	}
	ev := Event{Round: round, Func: name, Class: class, Requalify: requalify}
	if fr != nil && fr.Metrics != nil {
		for _, s := range engine.PipelineStages {
			sm := fr.Metrics.Stages[s]
			if sm.Runs == 0 {
				continue
			}
			if sm.CacheHits > 0 {
				ev.Replayed++
				ev.ReplayedStages = append(ev.ReplayedStages, string(s))
			} else {
				ev.Recomputed++
			}
		}
	}
	r.cfg.OnEvent(ev)
}
