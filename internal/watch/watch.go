// Package watch implements `pathflow watch`: continuous re-analysis of
// a source file under edit. A poll-based content watcher (no OS watcher
// dependency — hashing a handful of files every few hundred ms is
// cheap and portable) detects changes to the source and the optional
// saved-profile file; each change triggers the same incremental
// machinery as `analyze -baseline` — engine.DiffPrograms classifies
// every function's edit, each function re-analyzes under its own delta
// class, and the runner streams per-function replay/recompute events
// so the caller sees exactly what the edit cost.
package watch

import (
	"hash/fnv"
	"os"
	"sort"
)

// Poller watches a set of files by content hash. NewPoller records the
// initial state; Poll reports which files changed since the previous
// call (content edits, deletions and re-creations all count — the hash
// of an unreadable file is 0, distinct from any content hash).
type Poller struct {
	paths  []string
	hashes map[string]uint64
}

// NewPoller watches paths, taking their current content as baseline.
func NewPoller(paths ...string) *Poller {
	p := &Poller{paths: paths, hashes: make(map[string]uint64, len(paths))}
	for _, path := range paths {
		p.hashes[path] = hashFile(path)
	}
	return p
}

// Poll rehashes every watched file and returns the paths whose content
// changed since the last observation, sorted.
func (p *Poller) Poll() []string {
	var changed []string
	for _, path := range p.paths {
		h := hashFile(path)
		if h != p.hashes[path] {
			p.hashes[path] = h
			changed = append(changed, path)
		}
	}
	sort.Strings(changed)
	return changed
}

func hashFile(path string) uint64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(data) //nolint:errcheck // fnv never fails
	return h.Sum64()
}
