package watch

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
)

func TestPollerDetectsChanges(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.src")
	b := filepath.Join(dir, "b.src")
	if err := os.WriteFile(a, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(a, b)
	if got := p.Poll(); len(got) != 0 {
		t.Fatalf("unchanged files reported: %v", got)
	}
	if err := os.WriteFile(a, []byte("one edited"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := p.Poll(); len(got) != 1 || got[0] != a {
		t.Fatalf("Poll = %v, want [%s]", got, a)
	}
	if got := p.Poll(); len(got) != 0 {
		t.Fatalf("change reported twice: %v", got)
	}
	// Deletion is a change too (hash goes to the read-error sentinel).
	if err := os.Remove(b); err != nil {
		t.Fatal(err)
	}
	if got := p.Poll(); len(got) != 1 || got[0] != b {
		t.Fatalf("deletion not reported: %v", got)
	}
	// Rewriting identical content is not a change.
	if err := os.WriteFile(a, []byte("one edited"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := p.Poll(); len(got) != 0 {
		t.Fatalf("identical rewrite reported: %v", got)
	}
}

const watchSrcV1 = `
func helper(k) {
	if (k % 2 == 0) { s = 4; } else { s = 5; }
	return k * s;
}
func other(k) {
	return k * 31 % 17;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i) + other(i);
		i = i + 1;
	}
	print(t);
}
`

// watchSrcV2 edits only helper's body (a different constant), leaving
// other and main untouched.
const watchSrcV2 = `
func helper(k) {
	if (k % 2 == 0) { s = 6; } else { s = 5; }
	return k * s;
}
func other(k) {
	return k * 31 % 17;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i) + other(i);
		i = i + 1;
	}
	print(t);
}
`

func testTrain(prog *cfg.Program) (*bl.ProgramProfile, error) {
	pp, _, err := bl.ProfileProgram(prog, interp.Options{Args: []ir.Value{50}})
	return pp, err
}

// eventLog collects runner events thread-safely (OnEvent fires on the
// runner goroutine while the test edits files on its own).
type eventLog struct {
	mu     sync.Mutex
	events []Event
	rounds []int
}

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) byRound(round int) map[string]Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[string]Event{}
	for _, ev := range l.events {
		if ev.Round == round {
			out[ev.Func] = ev
		}
	}
	return out
}

// TestRunnerReplaysUnchangedFunctions is the watch-mode contract: after
// an edit to one function's body, only that function recomputes its
// dirty stage suffix — the untouched functions replay every stage from
// the cache the cold round filled.
func TestRunnerReplaysUnchangedFunctions(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.src")
	if err := os.WriteFile(src, []byte(watchSrcV1), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Open(engine.Config{Workers: 1, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	r := NewRunner(eng, Config{
		SrcPath:  src,
		Train:    testTrain,
		Interval: 5 * time.Millisecond,
		Rounds:   1,
		Options:  engine.DefaultOptions(),
		OnRound: func(round int, changed []string) {
			log.mu.Lock()
			log.rounds = append(log.rounds, round)
			log.mu.Unlock()
			if len(changed) != 1 || changed[0] != src {
				t.Errorf("round %d changed = %v, want [%s]", round, changed, src)
			}
		},
		OnEvent: log.add,
	})

	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { done <- r.Run(ctx) }()

	// Wait for round 0 (cold) to land, then edit helper.
	waitFor(t, func() bool { return len(log.byRound(0)) == 3 })
	if err := os.WriteFile(src, []byte(watchSrcV2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}

	cold := log.byRound(0)
	for name, ev := range cold {
		if ev.Class != engine.DeltaCold || ev.Recomputed == 0 {
			t.Errorf("round 0 %s: %+v, want cold recompute", name, ev)
		}
	}
	round1 := log.byRound(1)
	if len(round1) != 3 {
		t.Fatalf("round 1 produced %d events, want 3: %+v", len(round1), round1)
	}
	edited := round1["helper"]
	if edited.Class != engine.DeltaBody && edited.Class != engine.DeltaShape {
		t.Errorf("edited helper classified %q, want a structural class", edited.Class)
	}
	if edited.Recomputed == 0 || !edited.Requalify {
		t.Errorf("edited helper did not recompute/requalify: %+v", edited)
	}
	for _, name := range []string{"other", "main"} {
		ev := round1[name]
		if ev.Class != engine.DeltaNone {
			t.Errorf("untouched %s classified %q, want none", name, ev.Class)
		}
		if ev.Recomputed != 0 || ev.Replayed == 0 || ev.Requalify {
			t.Errorf("untouched %s did not replay everything: %+v", name, ev)
		}
		if !strings.Contains(strings.Join(ev.ReplayedStages, ","), string(engine.StageBaseline)) {
			t.Errorf("untouched %s replayed stages missing baseline: %v", name, ev.ReplayedStages)
		}
	}
}

// TestRunnerSurvivesBrokenEdit: a mid-edit syntax error reaches OnError
// and the runner keeps watching; the next good save completes a round.
func TestRunnerSurvivesBrokenEdit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.src")
	if err := os.WriteFile(src, []byte(watchSrcV1), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Open(engine.Config{Workers: 1, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	var errMu sync.Mutex
	var errs []error
	r := NewRunner(eng, Config{
		SrcPath:  src,
		Train:    testTrain,
		Interval: 5 * time.Millisecond,
		Rounds:   1,
		Options:  engine.DefaultOptions(),
		OnEvent:  log.add,
		OnError: func(err error) {
			errMu.Lock()
			errs = append(errs, err)
			errMu.Unlock()
		},
	})
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { done <- r.Run(ctx) }()

	waitFor(t, func() bool { return len(log.byRound(0)) == 3 })
	if err := os.WriteFile(src, []byte("func main( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return len(errs) > 0
	})
	if err := os.WriteFile(src, []byte(watchSrcV2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	errMu.Lock()
	defer errMu.Unlock()
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "compiling") {
		t.Fatalf("broken edit error = %v, want a compile error", errs)
	}
	if got := log.byRound(1); len(got) != 3 {
		t.Fatalf("recovery round produced %d events, want 3", len(got))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
