package feasible_test

import (
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/feasible"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile"
	"pathflow/internal/progen"
)

func fuzzInput(seed uint64) *interp.SliceInput {
	vals := make([]ir.Value, 64)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0xffff)
	}
	return &interp.SliceInput{Values: vals}
}

// FuzzFeasibleSoundness is the empirical falsifier for the
// branch-correlation detector: over random generated programs — biased
// toward the correlated nested re-tests the detector exists to prove
// (progen.Config.Correlated) — no edge a recorded training run actually
// traversed may ever be marked infeasible. The static gates certify the
// mask against the analyses' own semantics; this one certifies it
// against real executions, so a detector bug that fools every lattice
// still trips on the first run through a pruned edge.
func FuzzFeasibleSoundness(f *testing.F) {
	f.Add(uint64(1), uint64(5))
	f.Add(uint64(2), uint64(3))
	f.Add(uint64(7), uint64(9))
	f.Add(uint64(19), uint64(1))
	f.Add(uint64(42), uint64(17))
	f.Add(uint64(301), uint64(11))
	f.Add(uint64(138), uint64(5))

	f.Fuzz(func(t *testing.T, seed, inputSeed uint64) {
		cfgc := progen.DefaultConfig(seed)
		cfgc.Correlated = 60
		src := progen.Generate(cfgc)
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		train, _, err := bl.ProfileProgram(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    fuzzInput(inputSeed),
			MaxSteps: 2_000_000,
		})
		if err != nil {
			t.Skip("training run did not terminate in budget")
		}
		for name, fn := range prog.Funcs {
			feas := feasible.Detect(fn.G, fn.NumVars())
			pr := train.Funcs[name]
			if pr == nil || feas.Count == 0 {
				continue
			}
			counts := profile.EdgeCounts(pr, fn.G)
			if err := oracle.CheckTraces("feasible", name, counts, feas.Infeasible).Err(); err != nil {
				t.Errorf("seed %d func %s: %v", seed, name, err)
			}
		}
	})
}
