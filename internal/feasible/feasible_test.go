package feasible_test

import (
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	. "pathflow/internal/feasible"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
)

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func varIdx(t *testing.T, f *cfg.Func, name string) int {
	t.Helper()
	for i, n := range f.VarNames {
		if n == name {
			return i
		}
	}
	t.Fatalf("no variable %q in %s", name, f.Name)
	return -1
}

// constNode locates the unique node whose block materializes literal k —
// a stable way to name "the block printing k" across lowering details.
func constNode(t *testing.T, g *cfg.Graph, k int64) cfg.NodeID {
	t.Helper()
	found := cfg.NodeID(-1)
	for _, nd := range g.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Const && nd.Instrs[i].K == k {
				if found >= 0 && found != nd.ID {
					t.Fatalf("literal %d appears in multiple nodes", k)
				}
				found = nd.ID
			}
		}
	}
	if found < 0 {
		t.Fatalf("no node materializes literal %d", k)
	}
	return found
}

const nestedRetest = `
func main() {
	q = input();
	s = 9;
	if (q < 88) {
		if (q < 88) {
			s = 4;
		} else {
			s = input();
		}
		print(s);
	}
	print(q);
}`

// The classic correlated branch: a same-condition re-test nested inside
// the taken leg. The inner else leg is infeasible, and pruning it makes
// s constant at the inner print — precision neither Wegman-Zadek nor
// intervals can recover on their own (q is opaque input).
func TestNestedRetestPrunesInnerElse(t *testing.T) {
	f := compile(t, nestedRetest).Main()
	ed := Detect(f.G, f.NumVars())
	if ed.Count == 0 {
		t.Fatal("Detect found no infeasible edges on the nested re-test")
	}
	s := varIdx(t, f, "s")
	// print(s) lowers to `copy tmp = s; print tmp`; locate its block as
	// the one that both copies from s and prints.
	printS := cfg.NodeID(-1)
	for _, nd := range f.G.Nodes {
		copiesS, prints := false, false
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Copy && int(nd.Instrs[i].A) == s {
				copiesS = true
			}
			if nd.Instrs[i].Op == ir.Print {
				prints = true
			}
		}
		if copiesS && prints {
			printS = nd.ID
		}
	}
	if printS < 0 {
		t.Fatal("no print(s) node")
	}
	base := constprop.AnalyzeWith(f.G, f.NumVars(), true, dataflow.KernelPacked)
	if base.EnvAt(printS)[s].IsConst() {
		t.Fatal("baseline already proves s constant; test program is too weak")
	}
	masked := constprop.AnalyzeMasked(f.G, f.NumVars(), true, dataflow.KernelPacked, ed.Mask())
	if got := masked.EnvAt(printS)[s]; !got.IsConst() || got.K != 4 {
		t.Fatalf("masked constprop at print(s): got %v, want const 4", got)
	}
}

// Sequential same-condition branches re-merge before the re-test, so the
// predicate is intersected away and nothing may be pruned on the CFG.
// (This is exactly the case hot-path duplication un-merges — the
// frequency and feasibility axes compose, neither subsumes the other.)
func TestMergeKillsCorrelation(t *testing.T) {
	f := compile(t, `
func main() {
	q = input();
	if (q < 88) { print(1); } else { print(2); }
	if (q < 88) { print(3); } else { print(4); }
}`).Main()
	if ed := Detect(f.G, f.NumVars()); ed.Count != 0 {
		t.Fatalf("pruned %d edges across a merge that kills the correlation", ed.Count)
	}
}

// Writing the tested register between correlated branches must kill the
// predicate: the second test sees a different value.
func TestWriteKillsPredicate(t *testing.T) {
	f := compile(t, `
func main() {
	q = input();
	if (q < 88) {
		q = input();
		if (q < 88) { print(1); } else { print(2); }
	}
	print(q);
}`).Main()
	if ed := Detect(f.G, f.NumVars()); ed.Count != 0 {
		t.Fatalf("pruned %d edges despite the re-test register being rewritten", ed.Count)
	}
}

const negatedRetest = `
func main() {
	q = input();
	if (q >= 88) {
		print(1);
	} else {
		if (q < 88) { print(2); } else { print(3); }
	}
}`

// Negated-condition correlation: the fall-through leg of q >= 88
// establishes q < 88, so the inner else (print(3)) is infeasible.
func TestNegatedConditionPrunes(t *testing.T) {
	f := compile(t, negatedRetest).Main()
	ed := Detect(f.G, f.NumVars())
	dead := constNode(t, f.G, 3)
	base := constprop.AnalyzeWith(f.G, f.NumVars(), true, dataflow.KernelPacked)
	if !base.Reached(dead) {
		t.Fatal("baseline already prunes print(3); test program is too weak")
	}
	masked := constprop.AnalyzeMasked(f.G, f.NumVars(), true, dataflow.KernelPacked, ed.Mask())
	if masked.Reached(dead) {
		t.Fatal("print(3) still reached: negated-condition correlation missed")
	}
}

const truthyRetest = `
func main() {
	flag = input();
	if (flag) {
		if (flag) { print(1); } else { print(2); }
	}
	print(0);
}`

// Truthiness correlation: re-testing the same untouched register inside
// the taken leg makes the inner else (print(2)) infeasible even with no
// comparison in sight.
func TestTruthyCorrelationPrunes(t *testing.T) {
	f := compile(t, truthyRetest).Main()
	ed := Detect(f.G, f.NumVars())
	dead := constNode(t, f.G, 2)
	masked := constprop.AnalyzeMasked(f.G, f.NumVars(), true, dataflow.KernelPacked, ed.Mask())
	if masked.Reached(dead) {
		t.Fatal("print(2) still reached: truthiness correlation missed")
	}
}

const loopRetest = `
func main() {
	n = arg(0);
	i = 0;
	s = 0;
	while (i < n) {
		if (i < n) { s = s + i; } else { s = 0 - 1; }
		i = i + 1;
	}
	print(s);
}`

// The loop header's taken leg carries i < n into the body, so the
// body's re-test prunes its else leg — and the back edge (which rewrites
// i) must not leak the stale predicate back into the header.
func TestLoopBodyRetest(t *testing.T) {
	f := compile(t, loopRetest).Main()
	ed := Detect(f.G, f.NumVars())
	if ed.Count == 0 {
		t.Fatal("loop-body re-test not pruned")
	}
}

// Lattice evidence alone (a constant-condition branch) must surface in
// the mask too, so downstream consumers see one artifact per graph.
func TestLatticeEvidenceFolded(t *testing.T) {
	f := compile(t, `
func main() {
	if (1 < 2) { print(7); } else { print(9); }
}`).Main()
	ed := Detect(f.G, f.NumVars())
	dead := constNode(t, f.G, 9)
	for _, eid := range f.G.Node(dead).In {
		if !ed.Has(eid) {
			t.Fatalf("edge %d into the constant-dead leg not in the mask", eid)
		}
	}
}

// The empirical soundness gate in miniature: across the detector's own
// test programs and a spread of inputs, no edge the interpreter actually
// traverses may ever be in the mask.
func TestNoExecutedEdgeMasked(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		args   []ir.Value
		inputs []ir.Value
	}{
		{"nested-low", nestedRetest, nil, []ir.Value{50, 7}},
		{"nested-high", nestedRetest, nil, []ir.Value{120, 7}},
		{"negated-low", negatedRetest, nil, []ir.Value{3}},
		{"negated-high", negatedRetest, nil, []ir.Value{88}},
		{"truthy-zero", truthyRetest, nil, []ir.Value{0}},
		{"truthy-nonzero", truthyRetest, nil, []ir.Value{-5}},
		{"loop-empty", loopRetest, []ir.Value{0}, nil},
		{"loop-run", loopRetest, []ir.Value{6}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			masks := map[string]*Edges{}
			for _, fn := range prog.Funcs {
				masks[fn.Name] = Detect(fn.G, fn.NumVars())
			}
			_, err := interp.Run(prog, interp.Options{
				Args:  tc.args,
				Input: &interp.SliceInput{Values: tc.inputs},
				OnEdge: func(fn *cfg.Func, e cfg.EdgeID) {
					if masks[fn.Name].Has(e) {
						t.Errorf("%s: executed edge %d is marked infeasible", fn.Name, e)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Detect must be deterministic — the engine caches and fingerprints its
// result, and the oracle recomputes it for the reduced tier.
func TestDetectDeterministic(t *testing.T) {
	f := compile(t, nestedRetest).Main()
	a := Detect(f.G, f.NumVars())
	b := Detect(f.G, f.NumVars())
	if a.Count != b.Count || len(a.Infeasible) != len(b.Infeasible) {
		t.Fatal("Detect not deterministic")
	}
	for i := range a.Infeasible {
		if a.Infeasible[i] != b.Infeasible[i] {
			t.Fatalf("Detect not deterministic at edge %d", i)
		}
	}
}
