// Package feasible is the branch-correlation static analysis behind
// pathflow's second precision axis. Hot-path qualification (the
// Ammons-Larus pipeline) buys data-flow precision from *frequency* —
// duplicating hot paths so facts on them are not merged away. This
// package buys it from *feasibility*: it computes a sound set of CFG
// (or HPG) edges that no execution can take, and the clients analyze
// through the pruned view, excluding the merges those edges would have
// forced.
//
// Detect combines two kinds of evidence:
//
//   - Lattice evidence. Conditional (Wegman-Zadek) constant propagation
//     and the widening-free clamped interval analysis each mark the
//     branch legs their lattices decide as non-executable; any edge
//     neither analysis ever delivers along is infeasible.
//
//   - Syntactic branch correlation. A forward must-availability pass
//     over canonical branch predicates: each branch leg asserts its
//     condition's predicate (same-condition positively on the taken
//     leg, negated on the fall-through leg), assignments kill the
//     predicates mentioning the overwritten register, and merges keep
//     only the facts all executable in-edges agree on. A branch whose
//     predicate is already forced by the incoming facts has its
//     contradicted leg marked infeasible — the classic correlated
//     branch `if (c) ... if (c)` with c unmodified in between.
//
// The two feed each other (a pruned leg can decide a constant, which
// prunes another leg), so Detect iterates them to a bounded fixpoint.
//
// Soundness. The syntactic pass is a distributive gen/kill framework
// over predicate sets, so its MFP equals its MOP: a fact holds at a
// node only if it holds along every executable path into it, and a leg
// is pruned only when the branch outcome is implied on *all* such
// paths. The lattice evidence inherits the soundness of the underlying
// analyses. Both arguments are independent of the graph tier, so
// running Detect per tier (CFG, HPG, reduced HPG) keeps the oracle's
// cross-tier refinement guarantee: an HPG copy's incoming paths are a
// subset of its original vertex's, so its must-facts are a superset and
// every leg pruned on the CFG is pruned on its copies. The empirical
// backstop is oracle.CheckTraces: no edge observed in a recorded
// training or evaluation run may ever be in the mask.
package feasible

import (
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/intervals"
	"pathflow/internal/ir"
)

// Edges is the feasibility artifact for one graph: the sound
// infeasible-edge set the clients analyze through. It is immutable
// after Detect and safe to share across goroutines.
type Edges struct {
	// Infeasible is indexed by cfg.EdgeID; true marks an edge no
	// execution can take.
	Infeasible []bool
	// Count is the number of marked edges.
	Count int
}

// Has reports whether edge e is marked infeasible.
func (ed *Edges) Has(e cfg.EdgeID) bool {
	return ed != nil && int(e) < len(ed.Infeasible) && ed.Infeasible[e]
}

// Mask returns the per-EdgeID mask to thread into the masked analyses,
// or nil when no edge is infeasible (so downstream cache identities and
// solver paths are untouched by an empty result).
func (ed *Edges) Mask() []bool {
	if ed == nil || ed.Count == 0 {
		return nil
	}
	return ed.Infeasible
}

// maxRounds bounds the evidence-folding iterations: each round re-runs
// the lattice analyses under the grown mask and then the syntactic
// fixpoint. Soundness never depends on reaching the global fixpoint —
// later rounds only add edges already provably infeasible.
const maxRounds = 3

// Detect computes the infeasible-edge set of g. It is deterministic
// (same graph, same mask) and kernel-independent, so the result can be
// cached and shared across solver backends.
func Detect(g *cfg.Graph, numVars int) *Edges {
	mask := make([]bool, len(g.Edges))
	info := buildNodeInfo(g, numVars)
	thr := intervals.Thresholds(g)

	fold := func() bool {
		changed := false
		wz := constprop.AnalyzeMasked(g, numVars, true, dataflow.KernelPacked, mask)
		iv := intervals.AnalyzeClampedMasked(g, numVars, thr, true, mask)
		for e := range mask {
			if !mask[e] && (!wz.Sol.EdgeExecutable[e] || !iv.Sol.EdgeExecutable[e]) {
				mask[e] = true
				changed = true
			}
		}
		return changed
	}

	fold()
	for round := 0; round < maxRounds; round++ {
		if !syntacticFixpoint(g, info, mask) {
			break
		}
		if !fold() {
			break
		}
	}

	return FromMask(mask)
}

// FromMask wraps a per-EdgeID mask (for example one decoded from the
// persistent cache tier) in an Edges artifact, recounting the marks.
func FromMask(mask []bool) *Edges {
	ed := &Edges{Infeasible: mask}
	for _, m := range mask {
		if m {
			ed.Count++
		}
	}
	return ed
}

// --- Canonical branch predicates ------------------------------------------

// predKey is a canonical branch predicate: a comparison in Lt/Eq normal
// form over register or literal operands, or the truthiness of one
// register. Polarity is carried by the fact's value, not the key, so a
// condition and its negation share a key.
type predKey struct {
	base   uint8 // one of predLt, predEq, predTruthy
	ak, bk uint8 // operand kinds (opReg / opConst); bk unused for predTruthy
	a, b   int64 // register IDs or literal values
}

const (
	predLt = uint8(iota + 1)
	predEq
	predTruthy

	opReg   = uint8(0)
	opConst = uint8(1)
)

// mentions reports whether the predicate constrains register r, i.e.
// whether a write to r invalidates it.
func (k predKey) mentions(r int64) bool {
	if k.ak == opReg && k.a == r {
		return true
	}
	return k.base != predTruthy && k.bk == opReg && k.b == r
}

// operand is one side of a comparison during canonicalization.
type operand struct {
	isConst bool
	v       int64 // register ID or literal value
}

func (o operand) kind() uint8 {
	if o.isConst {
		return opConst
	}
	return opReg
}

// less orders operands deterministically for symmetric predicates.
func (o operand) less(p operand) bool {
	if o.isConst != p.isConst {
		return !o.isConst // registers before constants
	}
	return o.v < p.v
}

// canon normalizes `a op b` into (key, pos) with the invariant: the
// comparison evaluates non-zero iff the key's truth equals pos.
// Two-literal comparisons are rejected (the lattice evidence folds
// those).
func canon(op ir.Op, a, b operand) (predKey, bool, bool) {
	if a.isConst && b.isConst {
		return predKey{}, false, false
	}
	switch op {
	case ir.Lt:
		return predKey{base: predLt, ak: a.kind(), bk: b.kind(), a: a.v, b: b.v}, true, true
	case ir.Ge:
		return predKey{base: predLt, ak: a.kind(), bk: b.kind(), a: a.v, b: b.v}, false, true
	case ir.Gt:
		return predKey{base: predLt, ak: b.kind(), bk: a.kind(), a: b.v, b: a.v}, true, true
	case ir.Le:
		return predKey{base: predLt, ak: b.kind(), bk: a.kind(), a: b.v, b: a.v}, false, true
	case ir.Eq, ir.Ne:
		if b.less(a) {
			a, b = b, a
		}
		return predKey{base: predEq, ak: a.kind(), bk: b.kind(), a: a.v, b: b.v}, op == ir.Eq, true
	}
	return predKey{}, false, false
}

// genFact is one predicate a branch asserts: the taken leg asserts
// key = pos, the fall-through leg asserts key = !pos. All gen facts of
// one branch restate the same condition, so a contradiction on any of
// them kills the leg.
type genFact struct {
	key predKey
	pos bool
}

// nodeInfo is the static (fact-independent) summary of one node: the
// registers its block writes and the predicates its branch asserts.
type nodeInfo struct {
	kill []int64   // register IDs written by the block
	gens []genFact // branch predicates (empty for non-branches)
}

func (ni *nodeInfo) kills(k predKey) bool {
	for _, r := range ni.kill {
		if k.mentions(r) {
			return true
		}
	}
	return false
}

// holderCap bounds how many registers per operand value participate in
// predicate generation — the same value rarely survives in more than
// one or two registers, and capping keeps the fact sets small.
const holderCap = 2

// buildNodeInfo runs the block-local value-numbering pass on every node
// (the same token discipline as intervals.refineBranch): entry
// registers and interned literals are tokens, Copy propagates, Not
// negates a comparison, and every other write mints a fresh opaque
// token. A branch then asserts its condition's defining comparison,
// with operands resolved to the registers still holding their values at
// block exit — killed incoming facts never alias them, so a surviving
// fact and a generated fact with the same key constrain the same
// runtime value.
func buildNodeInfo(g *cfg.Graph, numVars int) []nodeInfo {
	type cmpDef struct {
		op     ir.Op
		ta, tb int32
	}
	out := make([]nodeInfo, len(g.Nodes))
	tok := make([]int32, numVars)
	for _, nd := range g.Nodes {
		ni := &out[nd.ID]
		for i := range tok {
			tok[i] = int32(i)
		}
		next := int32(numVars)
		cmps := map[int32]cmpDef{}
		consts := map[int32]int64{}
		constTok := map[int64]int32{}
		fresh := func() int32 { t := next; next++; return t }
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if !in.HasDst() {
				continue
			}
			ni.kill = append(ni.kill, int64(in.Dst))
			switch in.Op {
			case ir.Const:
				t, ok := constTok[in.K]
				if !ok {
					t = fresh()
					constTok[in.K] = t
					consts[t] = in.K
				}
				tok[in.Dst] = t
			case ir.Copy:
				tok[in.Dst] = tok[in.A]
			case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
				t := fresh()
				cmps[t] = cmpDef{op: in.Op, ta: tok[in.A], tb: tok[in.B]}
				tok[in.Dst] = t
			case ir.Not:
				if cd, ok := cmps[tok[in.A]]; ok {
					t := fresh()
					cmps[t] = cmpDef{op: negateCmp(cd.op), ta: cd.ta, tb: cd.tb}
					tok[in.Dst] = t
				} else {
					tok[in.Dst] = fresh()
				}
			default:
				tok[in.Dst] = fresh()
			}
		}
		if nd.Kind != cfg.TermBranch || !nd.Cond.Valid() {
			continue
		}
		// resolve maps a value token to operands: its literal, or the
		// registers still holding it at block exit.
		resolve := func(t int32) []operand {
			if k, ok := consts[t]; ok {
				return []operand{{isConst: true, v: k}}
			}
			var ops []operand
			for r := range tok {
				if tok[r] == t {
					ops = append(ops, operand{v: int64(r)})
					if len(ops) == holderCap {
						break
					}
				}
			}
			return ops
		}
		ct := tok[nd.Cond]
		if cd, ok := cmps[ct]; ok {
			for _, a := range resolve(cd.ta) {
				for _, b := range resolve(cd.tb) {
					if key, pos, ok := canon(cd.op, a, b); ok {
						ni.gens = append(ni.gens, genFact{key: key, pos: pos})
					}
				}
			}
		}
		// The condition register itself (and any alias) is non-zero on
		// the taken leg and zero on the fall-through leg.
		for _, o := range resolve(ct) {
			if !o.isConst {
				ni.gens = append(ni.gens, genFact{key: predKey{base: predTruthy, ak: opReg, a: o.v}, pos: true})
			}
		}
	}
	return out
}

func negateCmp(op ir.Op) ir.Op {
	switch op {
	case ir.Eq:
		return ir.Ne
	case ir.Ne:
		return ir.Eq
	case ir.Lt:
		return ir.Ge
	case ir.Ge:
		return ir.Lt
	case ir.Le:
		return ir.Gt
	case ir.Gt:
		return ir.Le
	}
	return op
}

// --- The must-availability fixpoint ---------------------------------------

// facts is the per-node predicate environment: key → forced value.
// Absent keys are unknown. The meet is intersection (agreeing entries
// survive), so a fact at a node holds on every executable path into it.
type facts map[predKey]bool

func cloneFacts(f facts) facts {
	out := make(facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// intersectInto removes from dst every entry src disagrees with or
// lacks, reporting whether dst shrank.
func intersectInto(dst, src facts) bool {
	changed := false
	for k, v := range dst {
		if sv, ok := src[k]; !ok || sv != v {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

// syntacticFixpoint runs the predicate must-availability pass under the
// current mask, marks every contradicted branch leg, and repeats until
// no new edge appears. It reports whether the mask grew. Contradictions
// are only ever concluded from fully converged fact sets: during the
// iteration facts shrink toward the fixpoint, so intermediate
// (over-large) sets never prune anything.
func syntacticFixpoint(g *cfg.Graph, info []nodeInfo, mask []bool) bool {
	grew := false
	for {
		in := solveMust(g, info, mask)
		added := false
		for _, nd := range g.Nodes {
			if nd.Kind != cfg.TermBranch || in[nd.ID] == nil || len(nd.Out) != 2 {
				continue
			}
			ni := &info[nd.ID]
			if len(ni.gens) == 0 {
				continue
			}
			base := in[nd.ID]
			for _, gf := range ni.gens {
				if ni.kills(gf.key) {
					continue
				}
				v, ok := base[gf.key]
				if !ok {
					continue
				}
				// The incoming facts force the condition: v == gf.pos
				// means it is non-zero (the fall leg is dead), v !=
				// gf.pos means it is zero (the taken leg is dead).
				dead := nd.Out[0]
				if v == gf.pos {
					dead = nd.Out[1]
				}
				if !mask[dead] {
					mask[dead] = true
					added = true
					grew = true
				}
			}
		}
		if !added {
			return grew
		}
	}
}

// solveMust computes the per-node incoming predicate facts under mask:
// a forward worklist solve where each block filters killed facts, each
// branch leg adds its assertions, and merges intersect. Unreached nodes
// stay nil. Generated facts are justified by branch semantics alone, so
// on a key collision the generated value wins — it is correct even
// while the incoming set is still shrinking toward the fixpoint.
func solveMust(g *cfg.Graph, info []nodeInfo, mask []bool) []facts {
	in := make([]facts, len(g.Nodes))
	in[g.Entry] = facts{}
	work := []cfg.NodeID{g.Entry}
	queued := make([]bool, len(g.Nodes))
	queued[g.Entry] = true
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		nd := g.Node(n)
		ni := &info[n]
		base := make(facts, len(in[n]))
		for k, v := range in[n] {
			if !ni.kills(k) {
				base[k] = v
			}
		}
		for slot, eid := range nd.Out {
			if mask[eid] {
				continue
			}
			out := base
			if len(ni.gens) > 0 && nd.Kind == cfg.TermBranch {
				out = cloneFacts(base)
				for _, gf := range ni.gens {
					if slot == 0 {
						out[gf.key] = gf.pos
					} else {
						out[gf.key] = !gf.pos
					}
				}
			}
			t := g.Edges[eid].To
			if in[t] == nil {
				in[t] = cloneFacts(out)
			} else if !intersectInto(in[t], out) {
				continue
			}
			if !queued[t] {
				queued[t] = true
				work = append(work, t)
			}
		}
	}
	return in
}
