// Package availexpr implements available-expressions analysis, a
// forward *must* (intersection) client of the data-flow framework.
//
// An expression op(a, b) over registers is available at a point if every
// executable path to that point computes it after the last write to a or
// b. Because availability intersects over incoming paths, the raw CFG
// loses facts at every join whose cold predecessor lacks the
// expression; on the hot path graph the paths reaching a duplicated
// vertex (v, q) are a subset of the paths reaching v, so intersections
// are taken over fewer, hotter histories and strictly more expressions
// survive (the same mechanism that powers the paper's constant results,
// exercised here on a set lattice ordered by ⊇ instead of the constant
// lattice).
//
// The optimistic solver's nil-fact-for-unreached corresponds exactly to
// the textbook initialization of every block to the full universe.
package availexpr

import (
	"fmt"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
	"pathflow/internal/ir"
)

// Expr is a canonical pure computation over registers: op with operand
// registers A (and B for binary ops; NoVar otherwise). Const
// instructions define no expression — they are trivially available
// everywhere they are reachable and carry no cross-path information.
type Expr struct {
	Op   ir.Op
	A, B ir.Var
}

func (e Expr) String() string {
	if e.B.Valid() {
		return fmt.Sprintf("%v v%d, v%d", e.Op, e.A, e.B)
	}
	return fmt.Sprintf("%v v%d", e.Op, e.A)
}

// exprOf returns the expression an instruction computes, if any.
func exprOf(in *ir.Instr) (Expr, bool) {
	if !in.Op.IsPure() || !in.HasDst() || in.Op == ir.Const {
		return Expr{}, false
	}
	switch {
	case in.Op.IsUnary():
		return Expr{Op: in.Op, A: in.A, B: ir.NoVar}, true
	case in.Op.IsBinary():
		return Expr{Op: in.Op, A: in.A, B: in.B}, true
	}
	return Expr{}, false
}

// Universe numbers every expression computed anywhere in a graph and
// precomputes, per register, the mask of expressions reading it. A
// universe built from a function's original CFG is shared by the CFG,
// HPG and rHPG runs (hot-path duplication copies instructions, never
// invents them), which keeps the three solutions directly comparable —
// a requirement of the differential oracle. Expression numbering is a
// per-function kernel.Interner: the dense IDs double as bit positions
// in both the boxed Set and the packed arena rows.
type Universe struct {
	Exprs   []Expr
	intern  *kernel.Interner[Expr]
	useMask []Set // per register: expressions that read it
	words   int
}

// NewUniverse scans g and numbers its expressions.
func NewUniverse(g *cfg.Graph, numVars int) *Universe {
	u := &Universe{intern: kernel.NewInterner[Expr]()}
	for _, nd := range g.Nodes {
		for i := range nd.Instrs {
			if e, ok := exprOf(&nd.Instrs[i]); ok {
				if u.intern.Intern(e) == len(u.Exprs) {
					u.Exprs = append(u.Exprs, e)
				}
			}
		}
	}
	u.words = (len(u.Exprs) + 63) / 64
	u.useMask = make([]Set, numVars)
	for v := range u.useMask {
		u.useMask[v] = u.newSet()
	}
	for i, e := range u.Exprs {
		u.useMask[e.A].set(i)
		if e.B.Valid() {
			u.useMask[e.B].set(i)
		}
	}
	return u
}

// Size returns the number of expressions in the universe.
func (u *Universe) Size() int { return len(u.Exprs) }

// Index returns the number of expression e, or -1 if e is not in the
// universe.
func (u *Universe) Index(e Expr) int { return u.intern.Lookup(e) }

// Set is a bit set over the universe's expressions.
type Set []uint64

func (u *Universe) newSet() Set { return make(Set, u.words) }

func (s Set) set(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s Set) clone() Set     { return append(Set(nil), s...) }
func (s Set) Has(i int) bool { return i >= 0 && s[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of available expressions in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Intersect returns a fresh set holding s ∩ o.
func (s Set) Intersect(o Set) Set {
	out := s.clone()
	for i := range o {
		out[i] &= o[i]
	}
	return out
}

// Equal reports whether the sets are identical.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// SupersetOf reports whether s ⊇ o (s is at least as precise: the
// lattice order of this must-analysis is set inclusion, bigger is
// higher).
func (s Set) SupersetOf(o Set) bool {
	for i := range o {
		if o[i]&^s[i] != 0 {
			return false
		}
	}
	return true
}

// Problem is the available-expressions data-flow problem over one graph.
type Problem struct {
	U *Universe
	// Guide optionally restricts propagation to the executable sub-graph
	// of a prior forward solution over the same graph (see
	// liveness.Problem.Guide for the idea). nil analyzes all edges.
	Guide *dataflow.Solution
}

var _ dataflow.Problem = (*Problem)(nil)

// Entry returns the fact at function entry: no expression is available.
func (p *Problem) Entry() dataflow.Fact { return p.U.newSet() }

// Meet intersects two availability sets (must-analysis).
func (p *Problem) Meet(a, b dataflow.Fact) dataflow.Fact {
	return a.(Set).Intersect(b.(Set))
}

// Equal compares two availability sets.
func (p *Problem) Equal(a, b dataflow.Fact) bool {
	return a.(Set).Equal(b.(Set))
}

// TransferBlock pushes an availability set through node n's
// instructions: each computing instruction first makes its expression
// available, then its destination write kills every expression reading
// the destination (so x = x + 1 does not leave x+1 available).
func (p *Problem) TransferBlock(g *cfg.Graph, n cfg.NodeID, in Set) Set {
	avail := in.clone()
	nd := g.Node(n)
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		if e, ok := exprOf(ins); ok {
			if idx := p.U.Index(e); idx >= 0 {
				avail.set(idx)
			}
		}
		if ins.HasDst() {
			kill := p.U.useMask[ins.Dst]
			for w := range avail {
				avail[w] &^= kill[w]
			}
		}
	}
	return avail
}

// Transfer distributes the block's availability-out to the executable
// out-edges.
func (p *Problem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	if p.Guide != nil && !p.Guide.Reached[n] {
		return
	}
	avail := p.TransferBlock(g, n, in.(Set))
	nd := g.Node(n)
	for i, eid := range nd.Out {
		if p.Guide != nil && !p.Guide.EdgeExecutable[eid] {
			continue
		}
		out[i] = avail
	}
}

// Result bundles a solved availability problem with its graph.
type Result struct {
	G   *cfg.Graph
	U   *Universe
	P   *Problem
	Sol *dataflow.Solution
}

// Analyze runs available-expressions over g using the shared universe u.
// guide, when non-nil, restricts propagation to a prior forward
// solution's executable sub-graph.
func Analyze(g *cfg.Graph, u *Universe, guide *dataflow.Solution) *Result {
	p := &Problem{U: u, Guide: guide}
	return &Result{G: g, U: u, P: p, Sol: dataflow.Solve(g, p)}
}

// AvailIn returns the availability set at node n's entry, or nil if n is
// unreached (conceptually the full universe ⊤).
func (r *Result) AvailIn(n cfg.NodeID) Set {
	if f := r.Sol.In[n]; f != nil {
		return f.(Set)
	}
	return nil
}

// Redundant reports, per instruction of node n, whether the instruction
// recomputes an expression already available just before it — a fully
// redundant computation a compiler could replace with a reuse. Unreached
// nodes yield none.
func (r *Result) Redundant(n cfg.NodeID) []bool {
	nd := r.G.Node(n)
	flags := make([]bool, len(nd.Instrs))
	in := r.AvailIn(n)
	if in == nil {
		return flags
	}
	avail := in.clone()
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		if e, ok := exprOf(ins); ok {
			if idx := r.U.Index(e); idx >= 0 {
				if avail.Has(idx) {
					flags[i] = true
				}
				avail.set(idx)
			}
		}
		if ins.HasDst() {
			kill := r.U.useMask[ins.Dst]
			for w := range avail {
				avail[w] &^= kill[w]
			}
		}
	}
	return flags
}

// RedundantCount counts redundant recomputations over the whole graph:
// static is the number of instructions recomputing an available
// expression, dyn weights each by its node's execution frequency — the
// dynamic-count methodology of the paper's Figure 7, applied to a
// must-analysis client.
func RedundantCount(g *cfg.Graph, r *Result, freq []int64) (static int, dyn int64) {
	for _, nd := range g.Nodes {
		if len(nd.Instrs) == 0 {
			continue
		}
		flags := r.Redundant(nd.ID)
		for _, red := range flags {
			if !red {
				continue
			}
			static++
			if freq != nil {
				dyn += freq[nd.ID]
			}
		}
	}
	return static, dyn
}
