package availexpr_test

import (
	"testing"

	. "pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/ir"
)

func instr(op ir.Op, dst, a, b ir.Var, k ir.Value) ir.Instr {
	return ir.Instr{Op: op, Dst: dst, A: a, B: b, K: k}
}

func TestStraightLineRedundancyAndKill(t *testing.T) {
	// vars: 0=a 1=b 2=c 3=d 4=e 5=x
	g := cfg.New("straight")
	n := g.AddNode("n")
	nd := g.Node(n)
	nd.Instrs = []ir.Instr{
		instr(ir.Input, 0, ir.NoVar, ir.NoVar, 0), // a = input
		instr(ir.Input, 1, ir.NoVar, ir.NoVar, 0), // b = input
		instr(ir.Add, 2, 0, 1, 0),                 // c = a + b
		instr(ir.Add, 3, 0, 1, 0),                 // d = a + b   (redundant)
		instr(ir.Input, 0, ir.NoVar, ir.NoVar, 0), // a = input   (kills a+b)
		instr(ir.Add, 4, 0, 1, 0),                 // e = a + b   (not redundant)
		instr(ir.Add, 5, 5, 5, 0),                 // x = x + x   (self-kill: not avail after)
		instr(ir.Add, 5, 5, 5, 0),                 // x = x + x   (still not redundant)
	}
	nd.Kind = cfg.TermReturn
	nd.Ret = 3
	g.AddEdge(g.Entry, n)
	g.AddEdge(n, g.Exit)
	if err := g.Validate(6); err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(g, 6)
	if u.Size() != 2 { // a+b and x+x
		t.Fatalf("universe size = %d, want 2", u.Size())
	}
	r := Analyze(g, u, nil)
	flags := r.Redundant(n)
	want := []bool{false, false, false, true, false, false, false, false}
	for i, w := range want {
		if flags[i] != w {
			t.Errorf("Redundant[%d] = %v, want %v", i, flags[i], w)
		}
	}
	static, dyn := RedundantCount(g, r, []int64{0, 0, 5, 0}[:g.NumNodes()])
	if static != 1 || dyn != 5 {
		t.Errorf("RedundantCount = (%d, %d), want (1, 5)", static, dyn)
	}
}

// diamond: h branches on p; both legs may compute a+b; join j recomputes
// a+b and returns it.
func diamond(t *testing.T, computeInElse bool, constCond bool) (*cfg.Graph, cfg.NodeID) {
	t.Helper()
	// vars: 0=p 1=a 2=b 3=t 4=u
	g := cfg.New("diamond")
	h := g.AddNode("h")
	tt := g.AddNode("t")
	ff := g.AddNode("f")
	j := g.AddNode("j")
	pInstr := instr(ir.Input, 0, ir.NoVar, ir.NoVar, 0)
	if constCond {
		pInstr = instr(ir.Const, 0, ir.NoVar, ir.NoVar, 1) // p = 1: else-leg dead
	}
	g.Node(h).Instrs = []ir.Instr{
		pInstr,
		instr(ir.Input, 1, ir.NoVar, ir.NoVar, 0), // a = input
		instr(ir.Input, 2, ir.NoVar, ir.NoVar, 0), // b = input
	}
	g.Node(h).Kind = cfg.TermBranch
	g.Node(h).Cond = 0
	g.Node(tt).Instrs = []ir.Instr{instr(ir.Add, 3, 1, 2, 0)} // t = a + b
	if computeInElse {
		g.Node(ff).Instrs = []ir.Instr{instr(ir.Add, 4, 1, 2, 0)} // u = a + b
	}
	g.Node(j).Instrs = []ir.Instr{instr(ir.Add, 3, 1, 2, 0)} // t = a + b (redundant?)
	g.Node(j).Kind = cfg.TermReturn
	g.Node(j).Ret = 3
	g.AddEdge(g.Entry, h)
	g.AddEdge(h, tt)
	g.AddEdge(h, ff)
	g.AddEdge(tt, j)
	g.AddEdge(ff, j)
	g.AddEdge(j, g.Exit)
	if err := g.Validate(5); err != nil {
		t.Fatal(err)
	}
	return g, j
}

func TestMustJoin(t *testing.T) {
	// Both legs compute a+b: the join's recomputation is redundant.
	g, j := diamond(t, true, false)
	u := NewUniverse(g, 5)
	r := Analyze(g, u, nil)
	if !r.Redundant(j)[0] {
		t.Error("a+b computed on both legs but join recomputation not redundant")
	}

	// Only the taken leg computes it: intersection kills it at the join.
	g, j = diamond(t, false, false)
	u = NewUniverse(g, 5)
	r = Analyze(g, u, nil)
	if r.Redundant(j)[0] {
		t.Error("a+b available after one-leg computation; must-join broken")
	}
}

func TestGuidedMustJoinRecoversHotLeg(t *testing.T) {
	// Only the taken leg computes a+b, but the condition is the constant
	// 1: guided by constant propagation the else-leg drops out of the
	// intersection and the join's recomputation becomes redundant.
	g, j := diamond(t, false, true)
	u := NewUniverse(g, 5)
	plain := Analyze(g, u, nil)
	if plain.Redundant(j)[0] {
		t.Fatal("unguided analysis should not see through the branch")
	}
	cp := constprop.Analyze(g, 5, true)
	guided := Analyze(g, u, cp.Sol)
	if !guided.Redundant(j)[0] {
		t.Error("guided analysis missed availability along the only executable leg")
	}
	// Guided availability is pointwise ⊇ the unguided one.
	for n := 0; n < g.NumNodes(); n++ {
		gp, pp := guided.AvailIn(cfg.NodeID(n)), plain.AvailIn(cfg.NodeID(n))
		if gp != nil && pp != nil && !gp.SupersetOf(pp) {
			t.Errorf("node %d: guided avail not superset of plain", n)
		}
	}
}

func TestUnreachedNodeHasNoFact(t *testing.T) {
	g, _ := diamond(t, true, true)
	u := NewUniverse(g, 5)
	cp := constprop.Analyze(g, 5, true)
	r := Analyze(g, u, cp.Sol)
	// The else node (id from construction: entry=0? use name lookup).
	for _, nd := range g.Nodes {
		if nd.Name == "f" {
			if r.AvailIn(nd.ID) != nil {
				t.Error("dead else-leg has an availability fact")
			}
			if got := r.Redundant(nd.ID); len(got) != len(nd.Instrs) {
				t.Error("Redundant length mismatch on unreached node")
			}
		}
	}
}
