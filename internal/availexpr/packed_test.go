package availexpr_test

import (
	"testing"

	. "pathflow/internal/availexpr"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/lang"
	"pathflow/internal/progen"
)

// TestPackedMatchesBoxed checks the packed bitset kernel against the
// boxed reference on generated programs, unguided and guided.
func TestPackedMatchesBoxed(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()
			u := NewUniverse(fn.G, nv)
			guides := map[string]*dataflow.Solution{
				"unguided": nil,
				"guided":   constprop.Analyze(fn.G, nv, true).Sol,
			}
			for mode, guide := range guides {
				boxed := Analyze(fn.G, u, guide)
				packed := AnalyzePacked(fn.G, u, guide)
				lat := &Problem{U: u, Guide: guide}
				rep := oracle.Differential("availexpr", name, lat, boxed.Sol, packed.Sol)
				if err := rep.Err(); err != nil {
					t.Errorf("seed %d func %s %s: %v", seed, name, mode, err)
				}
			}
		}
	}
}

// TestUniverseIndex pins the interner-backed expression numbering:
// first-seen dense IDs, misses at -1.
func TestUniverseIndex(t *testing.T) {
	prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(3)))
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Funcs[prog.Order[0]]
	u := NewUniverse(fn.G, fn.NumVars())
	for i, e := range u.Exprs {
		if got := u.Index(e); got != i {
			t.Errorf("Index(%v) = %d, want dense %d", e, got, i)
		}
	}
	if got := u.Index(Expr{}); got != -1 {
		t.Errorf("Index(zero Expr) = %d, want -1", got)
	}
}
