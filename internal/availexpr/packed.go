package availexpr

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
)

// instrFX is one instruction's precomputed effect on an availability
// row: the expression bit it generates (-1 for none) and the kill mask
// of its destination write (nil for instructions without one). The
// packed domain resolves expression numbers once per graph, so the hot
// transfer loop never touches the universe's hash map.
type instrFX struct {
	expr int32
	kill []uint64
}

// packedDomain is the bitset kernel for available expressions:
// intersection meet over packed words, kill masks applied word-wise.
type packedDomain struct {
	g     *cfg.Graph
	u     *Universe
	bits  *kernel.Bits
	guide *dataflow.Solution
	fx    [][]instrFX // per node, per instruction
}

func newPackedDomain(g *cfg.Graph, u *Universe, guide *dataflow.Solution) *packedDomain {
	d := &packedDomain{
		g:     g,
		u:     u,
		bits:  &kernel.Bits{Words: u.words},
		guide: guide,
		fx:    make([][]instrFX, g.NumNodes()),
	}
	for _, nd := range g.Nodes {
		if len(nd.Instrs) == 0 {
			continue
		}
		fx := make([]instrFX, len(nd.Instrs))
		for i := range nd.Instrs {
			ins := &nd.Instrs[i]
			fx[i].expr = -1
			if e, ok := exprOf(ins); ok {
				fx[i].expr = int32(u.Index(e))
			}
			if ins.HasDst() {
				fx[i].kill = u.useMask[ins.Dst]
			}
		}
		d.fx[nd.ID] = fx
	}
	return d
}

func (d *packedDomain) Direction() dataflow.Direction { return dataflow.Forward }
func (d *packedDomain) Grow(rows int)                 { d.bits.Grow(rows) }
func (d *packedDomain) Boundary(dst int)              { d.bits.Clear(dst) }
func (d *packedDomain) Copy(dst, src int)             { d.bits.Copy(dst, src) }
func (d *packedDomain) Meet(dst, src int) bool        { return d.bits.And(dst, src) }
func (d *packedDomain) Equal(a, b int) bool           { return d.bits.Equal(a, b) }

// Transfer pushes availability through the block (gen the expression,
// then kill everything reading the destination) into scratch row 0 and
// delivers it to the executable out-edges.
func (d *packedDomain) Transfer(n cfg.NodeID, in, scratch int, slots []int8) {
	if d.guide != nil && !d.guide.Reached[n] {
		return
	}
	d.bits.Copy(scratch, in)
	for _, fx := range d.fx[n] {
		if fx.expr >= 0 {
			d.bits.Set(scratch, int(fx.expr))
		}
		if fx.kill != nil {
			d.bits.AndNot(scratch, fx.kill)
		}
	}
	nd := d.g.Node(n)
	for i, eid := range nd.Out {
		if d.guide != nil && !d.guide.EdgeExecutable[eid] {
			continue
		}
		slots[i] = 0
	}
}

// Cells implements kernel.SparseDomain: one cell per expression bit.
// The whole word span counts, so the sparse solver's masks line up with
// the arena rows word for word.
func (d *packedDomain) Cells() int { return d.u.words * 64 }

// Chain implements kernel.SparseDomain. An availability block writes
// exactly the bits it gens (the expressions it computes) or kills (the
// kill masks of its destination writes); everything else passes
// through, and the executable-edge choice is static under the guide.
func (d *packedDomain) Chain(n cfg.NodeID, defs, _ []uint64) {
	if d.guide != nil && !d.guide.Reached[n] {
		return
	}
	for _, fx := range d.fx[n] {
		if fx.expr >= 0 {
			defs[int(fx.expr)/64] |= 1 << (uint32(fx.expr) % 64)
		}
		if fx.kill != nil {
			for i := range fx.kill {
				defs[i] |= fx.kill[i]
			}
		}
	}
}

// MeetMasked implements kernel.SparseDomain (masked intersection).
func (d *packedDomain) MeetMasked(dst, src int, mask, dirty []uint64) bool {
	return d.bits.AndMasked(dst, src, mask, dirty)
}

func materialize(s *kernel.Solver, d *packedDomain) *Result {
	s.Run()
	sol := s.Materialize(func(row int) dataflow.Fact {
		return Set(append([]uint64(nil), d.bits.Row(row)...))
	})
	// The boxed path hangs the Problem off the result for callers that
	// re-run TransferBlock; give them the same view.
	return &Result{G: d.g, U: d.u, P: &Problem{U: d.u, Guide: d.guide}, Sol: sol}
}

// AnalyzePacked runs available-expressions on the packed bitset kernel
// using the shared universe u. The solution is pointwise equal to
// Analyze's.
func AnalyzePacked(g *cfg.Graph, u *Universe, guide *dataflow.Solution) *Result {
	d := newPackedDomain(g, u, guide)
	return materialize(kernel.NewSolver(g, d), d)
}

// AnalyzeSparse runs available-expressions on the sparse def-use-chain
// solver; facts match the other backends pointwise.
func AnalyzeSparse(g *cfg.Graph, u *Universe, guide *dataflow.Solution) *Result {
	d := newPackedDomain(g, u, guide)
	return materialize(kernel.NewSparseSolver(g, d), d)
}

// AnalyzeWith dispatches Analyze on the requested kernel backend.
func AnalyzeWith(g *cfg.Graph, u *Universe, guide *dataflow.Solution, k dataflow.Kernel) *Result {
	switch k {
	case dataflow.KernelBoxed:
		return Analyze(g, u, guide)
	case dataflow.KernelSparse:
		return AnalyzeSparse(g, u, guide)
	}
	return AnalyzePacked(g, u, guide)
}
