package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"pathflow/internal/engine"
	"pathflow/internal/profile/stream"
)

// streamQuery is the GET /v1/profiles query addressing the same target
// analyzeBody posts to (inline source keyed by its training args).
func streamQuery(extra string) string {
	q := "/v1/profiles?source=" + url.QueryEscape(testSrc) + "&args=120"
	if extra != "" {
		q += "&" + extra
	}
	return q
}

func ingestBody(t *testing.T, agent string, advance bool, funcs []stream.FuncDelta) []byte {
	t.Helper()
	b, err := json.Marshal(IngestRequest{
		TargetSpec:   TargetSpec{Source: testSrc, Args: []int64{120}},
		Agent:        agent,
		AdvanceEpoch: advance,
		Funcs:        funcs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func streamState(t *testing.T, baseURL, extra string) StreamStateResponse {
	t.Helper()
	resp, data := getBody(t, baseURL+streamQuery(extra))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/profiles status = %d, body %s", resp.StatusCode, data)
	}
	var out StreamStateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("state body not JSON: %v\n%s", err, data)
	}
	return out
}

// funcState finds one function's state, failing if absent.
func funcState(t *testing.T, st StreamStateResponse, name string) StreamFuncState {
	t.Helper()
	for _, f := range st.Funcs {
		if f.Func == name {
			return f
		}
	}
	t.Fatalf("function %q missing from stream state: %+v", name, st.Funcs)
	return StreamFuncState{}
}

// TestProfileIngestLifecycle walks the ingestion endpoint end to end:
// the pre-ingest state mirrors the training profile, a valid batch
// applies and shows up in the state, a redelivered batch drops
// idempotently, and invalid batches 400 atomically with the stream
// layer's hint.
func TestProfileIngestLifecycle(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	st := streamState(t, ts.URL, "")
	if st.Epoch != 0 {
		t.Fatalf("fresh stream epoch = %d, want 0", st.Epoch)
	}
	helper := funcState(t, st, "helper")
	if helper.NumPaths == 0 {
		t.Fatal("helper has no trained paths; fixture too small")
	}
	if helper.Changed || helper.Requalify {
		t.Fatalf("untouched helper reports drift: %+v", helper)
	}
	// Paths arrive hot→cold.
	for i := 1; i < len(helper.Paths); i++ {
		if helper.Paths[i].Count > helper.Paths[i-1].Count {
			t.Fatalf("paths not ordered hot→cold: %+v", helper.Paths)
		}
	}
	hot := helper.Paths[0]

	// A valid delta applies and is visible in the next state read.
	resp, data := postJSON(t, ts.URL+"/v1/profiles", ingestBody(t, "agent-1", false,
		[]stream.FuncDelta{{Func: "helper", Seq: 1, Paths: []stream.PathDelta{{Path: hot.Path, Count: 1000}}}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Applied != 1 || ir.Dropped != 0 {
		t.Fatalf("ingest applied %d dropped %d, want 1/0", ir.Applied, ir.Dropped)
	}
	got := funcState(t, streamState(t, ts.URL, "func=helper"), "helper")
	if want := hot.Count + 1000; got.Paths[0].Count != want {
		t.Fatalf("hot path count = %d after ingest, want %d", got.Paths[0].Count, want)
	}

	// Redelivery (same agent, same seq) drops without changing counts.
	resp, data = postJSON(t, ts.URL+"/v1/profiles", ingestBody(t, "agent-1", false,
		[]stream.FuncDelta{{Func: "helper", Seq: 1, Paths: []stream.PathDelta{{Path: hot.Path, Count: 1000}}}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status = %d, body %s", resp.StatusCode, data)
	}
	ir = IngestResponse{}
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Applied != 0 || ir.Dropped != 1 {
		t.Fatalf("replay applied %d dropped %d, want 0/1", ir.Applied, ir.Dropped)
	}
	again := funcState(t, streamState(t, ts.URL, "func=helper"), "helper")
	if again.Paths[0].Count != got.Paths[0].Count {
		t.Fatal("replayed batch changed the distribution")
	}

	// An invalid batch 400s with the stream layer's hint and mutates
	// nothing (atomicity: the valid leading delta must not land).
	resp, data = postJSON(t, ts.URL+"/v1/profiles", ingestBody(t, "agent-1", false,
		[]stream.FuncDelta{
			{Func: "helper", Seq: 2, Paths: []stream.PathDelta{{Path: hot.Path, Count: 5}}},
			{Func: "nosuch", Seq: 1, Paths: []stream.PathDelta{{Path: "0", Count: 1}}},
		}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status = %d, body %s", resp.StatusCode, data)
	}
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, data)
	}
	if eb.Hint == "" {
		t.Errorf("batch rejection carries no hint: %s", data)
	}
	after := funcState(t, streamState(t, ts.URL, "func=helper"), "helper")
	if after.Paths[0].Count != got.Paths[0].Count {
		t.Fatal("rejected batch mutated the stream")
	}

	// Unknown function filter → 404.
	resp, _ = getBody(t, ts.URL+streamQuery("func=nosuch"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown func filter status = %d, want 404", resp.StatusCode)
	}
}

// liveAnalyzeBody is analyzeBody with Live set.
func liveAnalyzeBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(AnalyzeRequest{
		TargetSpec: TargetSpec{Source: testSrc, Args: []int64{120}},
		Options:    &OptionsSpec{CA: 0.97, CR: 0.95},
		Live:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// flipBody builds the hot-set-flipping ingest: a huge count on the
// function's coldest path, enough to reorder (or grow) the selection.
func flipBody(t *testing.T, baseURL string, seq uint64) []byte {
	t.Helper()
	helper := funcState(t, streamState(t, baseURL, "func=helper"), "helper")
	cold := helper.Paths[len(helper.Paths)-1]
	return ingestBody(t, "flipper", false, []stream.FuncDelta{
		{Func: "helper", Seq: seq, Paths: []stream.PathDelta{{Path: cold.Path, Count: 50_000_000}}},
	})
}

// TestLiveAnalyzeRequalifiesOnlyDrift is the heart of the tentpole: a
// warmed server ingests a hot-set-flipping batch, and the next live
// analyze recomputes only the drifted function's StageSelect-downstream
// artifacts — everything else (and every baseline stage) replays from
// cache — while answering byte-identically to a cold server that never
// had a cache to replay from.
func TestLiveAnalyzeRequalifiesOnlyDrift(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	// Warm: plain analyze at the default knobs fills the cache with
	// artifacts built from the training profile.
	resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", analyzeBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm analyze status = %d: %s", resp.StatusCode, data)
	}

	// Ingest the flip; the response must flag helper for requalification.
	resp, data = postJSON(t, ts.URL+"/v1/profiles", flipBody(t, ts.URL, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flip ingest status = %d: %s", resp.StatusCode, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	var helperDrift *stream.FuncDrift
	for i := range ir.Drift {
		if ir.Drift[i].Func == "helper" {
			helperDrift = &ir.Drift[i]
		} else if ir.Drift[i].Requalify {
			t.Fatalf("untouched %s flagged for requalification", ir.Drift[i].Func)
		}
	}
	if helperDrift == nil || !helperDrift.Requalify {
		t.Fatalf("flip did not flag helper for requalification: %+v", ir.Drift)
	}

	// The requalification counter is live on /metrics.
	_, mdata := getBody(t, ts.URL+"/metrics")
	metrics := string(mdata)
	for _, want := range []string{"pathflow_profile_ingest_total 1", "pathflow_drift_requalify_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Live analyze: replay everything except helper's dirty suffix.
	resp, data = postJSON(t, ts.URL+"/v1/analyze?wait=1", liveAnalyzeBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live analyze status = %d: %s", resp.StatusCode, data)
	}
	warm := decodeJob(t, data)
	if warm.State != JobDone {
		t.Fatalf("live job state = %q (error %+v)", warm.State, warm.Error)
	}
	if bs := warm.Metrics.Stages[string(engine.StageBaseline)]; bs.Runs != bs.CacheHits || bs.CacheHits == 0 {
		t.Errorf("baseline stage recomputed on an unchanged program (want every run a replay): %+v", bs)
	}
	if ss := warm.Metrics.Stages[string(engine.StageSelect)]; ss.Runs <= ss.CacheHits {
		t.Errorf("select stage never recomputed despite a flipped hot set: %+v", ss)
	}
	if warm.Metrics.StageCacheHits == 0 {
		t.Fatalf("live analyze replayed nothing: %+v", warm.Metrics)
	}

	// Byte-identity: a cold server fed the same delta computes the same
	// answer with no cache to lean on — and does strictly more stage
	// work than the warm server's replay-plus-requalify.
	cold := mustNew(t, Config{})
	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	defer cold.jobs.Shutdown()
	resp, data = postJSON(t, tsCold.URL+"/v1/profiles", flipBody(t, tsCold.URL, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold ingest status = %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, tsCold.URL+"/v1/analyze?wait=1", liveAnalyzeBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold live analyze status = %d: %s", resp.StatusCode, data)
	}
	coldJob := decodeJob(t, data)
	if coldJob.State != JobDone {
		t.Fatalf("cold live job state = %q (error %+v)", coldJob.State, coldJob.Error)
	}
	warmBytes, err := json.Marshal(warm.Result)
	if err != nil {
		t.Fatal(err)
	}
	coldBytes, err := json.Marshal(coldJob.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(warmBytes) != string(coldBytes) {
		t.Fatalf("requalified result diverges from cold recompute:\nwarm: %s\ncold: %s", warmBytes, coldBytes)
	}
	warmComputed := warm.Metrics.StageRuns - warm.Metrics.StageCacheHits
	coldComputed := coldJob.Metrics.StageRuns - coldJob.Metrics.StageCacheHits
	if warmComputed >= coldComputed {
		t.Errorf("warm live analyze computed %d stages, cold computed %d — requalification saved nothing",
			warmComputed, coldComputed)
	}
}

// TestLiveDistributedRejected: the live stream is server-local state,
// so live+distributed sweeps are refused up front.
func TestLiveDistributedRejected(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	body, err := json.Marshal(SweepRequest{
		TargetSpec:  TargetSpec{Source: testSrc, Args: []int64{120}},
		Points:      []OptionsSpec{{CA: 0.97, CR: 0.95}},
		Live:        true,
		Distributed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("live+distributed status = %d, body %s", resp.StatusCode, data)
	}
}

// TestStreamSnapshotPersistence: accumulated counts and per-agent
// sequence numbers survive a server restart through the diskcache
// snapshot, so redelivered batches still drop after the restart.
func TestStreamSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()

	a := mustNew(t, Config{CacheDir: dir})
	tsA := httptest.NewServer(a.Handler())
	st := streamState(t, tsA.URL, "func=helper")
	hot := funcState(t, st, "helper").Paths[0]
	resp, data := postJSON(t, tsA.URL+"/v1/profiles", ingestBody(t, "agent-1", false,
		[]stream.FuncDelta{{Func: "helper", Seq: 1, Paths: []stream.PathDelta{{Path: hot.Path, Count: 777}}}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", resp.StatusCode, data)
	}
	a.saveStreams()
	tsA.Close()
	a.jobs.Shutdown()

	b := mustNew(t, Config{CacheDir: dir})
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	defer b.jobs.Shutdown()
	got := funcState(t, streamState(t, tsB.URL, "func=helper"), "helper")
	if want := hot.Count + 777; got.Paths[0].Count != want {
		t.Fatalf("restored hot count = %d, want %d (ingested state lost)", got.Paths[0].Count, want)
	}
	// The restored seq table still rejects the replay.
	resp, data = postJSON(t, tsB.URL+"/v1/profiles", ingestBody(t, "agent-1", false,
		[]stream.FuncDelta{{Func: "helper", Seq: 1, Paths: []stream.PathDelta{{Path: hot.Path, Count: 777}}}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status = %d: %s", resp.StatusCode, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Applied != 0 || ir.Dropped != 1 {
		t.Fatalf("restart forgot sequence numbers: %+v", ir)
	}
}

// TestConcurrentIngestSweepAndLive hammers one server with parallel
// ingestion, a sweep, and live analyzes — the shared-engine race
// coverage the ci -race run locks in. Correctness of the interleaving
// is asserted via every ingest applying exactly once and every job
// completing.
func TestConcurrentIngestSweepAndLive(t *testing.T) {
	srv := mustNew(t, Config{MaxJobs: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	hot := funcState(t, streamState(t, ts.URL, "func=helper"), "helper").Paths[0]

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for agent := 0; agent < 3; agent++ {
		wg.Add(1)
		go func(agent int) {
			defer wg.Done()
			for seq := uint64(1); seq <= 5; seq++ {
				body := ingestBody(t, fmt.Sprintf("agent-%d", agent), false, []stream.FuncDelta{
					{Func: "helper", Seq: seq, Paths: []stream.PathDelta{{Path: hot.Path, Count: int64(seq)}}},
				})
				resp, data := postJSON(t, ts.URL+"/v1/profiles", body)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("agent %d seq %d: status %d: %s", agent, seq, resp.StatusCode, data)
					return
				}
				var ir IngestResponse
				if err := json.Unmarshal(data, &ir); err != nil {
					errs <- err
					return
				}
				if ir.Applied != 1 {
					errs <- fmt.Errorf("agent %d seq %d: applied %d, want 1", agent, seq, ir.Applied)
					return
				}
			}
		}(agent)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", liveAnalyzeBody(t))
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("live analyze: status %d: %s", resp.StatusCode, data)
				return
			}
			if job := decodeJob(t, data); job.State != JobDone {
				errs <- fmt.Errorf("live analyze job state %q: %+v", job.State, job.Error)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, err := json.Marshal(SweepRequest{
			TargetSpec: TargetSpec{Source: testSrc, Args: []int64{120}},
			Points:     []OptionsSpec{{CA: 0.9, CR: 0.95}, {CA: 0.99, CR: 0.95}},
		})
		if err != nil {
			errs <- err
			return
		}
		resp, data := postJSON(t, ts.URL+"/v1/sweep?wait=1", body)
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("sweep: status %d: %s", resp.StatusCode, data)
			return
		}
		if job := decodeJob(t, data); job.State != JobDone {
			errs <- fmt.Errorf("sweep job state %q: %+v", job.State, job.Error)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// 3 agents × 5 seqs, all applied exactly once: hot path grew by
	// 3 × (1+2+3+4+5).
	got := funcState(t, streamState(t, ts.URL, "func=helper"), "helper")
	if want := hot.Count + 3*15; got.Paths[0].Count != want {
		t.Fatalf("hot count after concurrent ingest = %d, want %d", got.Paths[0].Count, want)
	}
}
