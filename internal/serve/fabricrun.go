package serve

// fabricrun.go wires the serving layer to the distributed fabric
// (internal/fabric). The fabric itself is payload-agnostic; this file
// defines the payloads — one task per (target, function, sweep point) —
// plus the two sides that speak them:
//
//   - TaskRunner is the worker side: `pathflow worker` leases a task,
//     resolves the same target the server validated, profiles it once
//     per worker (memoized), runs the one function through its own
//     engine, and returns the function's FuncSummary.
//   - runPointsDistributed is the coordinator side: it fans a sweep out
//     as tasks, schedules by predicted cost (instruction count scaled by
//     the delta machinery's dirty-stage count when a baseline is given),
//     and reassembles the per-function summaries into exactly the
//     AnalyzeResult a local run builds.
//
// Determinism argument: funcSummary is a pure function of
// engine.AnalyzeFunc's result, which is itself a pure function of
// (function, training profile, options) — the engine's byte-identity
// lock (PR 1) holds across processes because workers resolve targets
// and training runs from the same deterministic sources the server
// does. Assembly iterates prog.Order per point, and every total is a
// sum of per-function values, so the final JSON is byte-identical to
// buildResult's no matter which worker computed what, in what order,
// or how many times a task was retried.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/fabric"
)

// fabricTaskSpec is the wire payload of one fabric task: analyze one
// function of one target at one parameter point.
type fabricTaskSpec struct {
	Target  TargetSpec  `json:"target"`
	Func    string      `json:"func"`
	Options OptionsSpec `json:"options"`
}

// fabricTaskResult is the corresponding result payload. TrainPaths is
// the function's training-profile path count, shipped so the
// coordinator can reproduce ResultTotals without running the training
// profile itself.
type fabricTaskResult struct {
	Summary    FuncSummary `json:"summary"`
	TrainPaths int         `json:"train_paths"`
}

// TaskRunner executes fabric task specs on a worker's engine. It keeps
// its own program/profile memo, so a worker pays each target's training
// run once no matter how many of its tasks it leases — the scheduler's
// affinity preference exists to maximize that reuse. With a profile
// exchange attached, only one worker in the fleet pays each training
// run at all: the others fetch the serialized profile from the
// coordinator and validate it against their own compiled program.
type TaskRunner struct {
	eng      *engine.Engine
	memo     progMemo
	profiles fabric.ProfileStore
}

// NewTaskRunner builds a runner over the worker's engine.
func NewTaskRunner(eng *engine.Engine) *TaskRunner {
	return &TaskRunner{eng: eng, memo: newProgMemo()}
}

// WithProfileExchange attaches the coordinator's training-profile
// exchange (fabric.RemoteCache implements it). Returns the runner for
// chaining.
func (tr *TaskRunner) WithProfileExchange(ps fabric.ProfileStore) *TaskRunner {
	tr.profiles = ps
	return tr
}

// profileKey content-addresses a target's training profile for the
// exchange: a hash of the memo key, which already folds in the program
// identity and every training-input parameter.
func profileKey(rt *resolvedTarget) string {
	h := fnv.New64a()
	io.WriteString(h, rt.key) //nolint:errcheck // fnv never fails
	return fmt.Sprintf("%016x", h.Sum64())
}

// trainProfile resolves the target's training profile: worker memo,
// then the coordinator exchange, then a local training run (whose
// result is published back). A fetched profile that fails bl.Load's
// validation against the worker's own program is discarded and the
// recompute's push heals the exchange — same discipline as a corrupt
// bundle.
func (tr *TaskRunner) trainProfile(rt *resolvedTarget) (*bl.ProgramProfile, error) {
	train, _, _, err := tr.memo.trainProfileVia(rt, func() (*bl.ProgramProfile, error) {
		if tr.profiles != nil {
			if data, ok := tr.profiles.FetchProfile(profileKey(rt)); ok {
				if pp, err := bl.Load(bytes.NewReader(data), rt.prog); err == nil {
					return pp, nil
				}
			}
		}
		pp, _, err := bl.ProfileProgram(rt.prog, rt.fresh())
		if err != nil {
			return nil, err
		}
		if tr.profiles != nil {
			var buf bytes.Buffer
			if err := pp.Save(&buf, rt.prog); err == nil {
				tr.profiles.PushProfile(profileKey(rt), buf.Bytes())
			}
		}
		return pp, nil
	})
	return train, err
}

// Run implements fabric.RunFunc: decode, resolve, profile (memoized),
// analyze one function, encode. Errors keep their StageError provenance
// — fabric.NewTaskError ships it to the coordinator, which rebuilds the
// identical error for the failing job's error body.
func (tr *TaskRunner) Run(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
	var spec fabricTaskSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("serve: bad fabric task spec: %w", err)
	}
	rt, err := resolveTarget(&spec.Target)
	if err != nil {
		return nil, err
	}
	o, err := spec.Options.engine()
	if err == nil {
		err = o.Validate()
	}
	if err != nil {
		return nil, err
	}
	fn := rt.prog.Funcs[spec.Func]
	if fn == nil {
		return nil, fmt.Errorf("serve: fabric task names unknown function %q in %s", spec.Func, rt.name)
	}
	train, err := tr.trainProfile(rt)
	if err != nil {
		return nil, err
	}
	var tp *bl.Profile
	if train != nil {
		tp = train.Funcs[spec.Func]
	}
	fr, err := tr.eng.AnalyzeFunc(ctx, fn, tp, o)
	if err != nil {
		return nil, err
	}
	out := fabricTaskResult{Summary: funcSummary(spec.Func, fr)}
	if tp != nil {
		out.TrainPaths = tp.NumPaths()
	}
	return json.Marshal(&out)
}

// taskWeights predicts one relative cost per function: its static
// instruction count scaled by its training-profile path count (path
// explosion, not code size, dominates analysis cost — heaviest first
// keeps N workers' makespans balanced, LPT-style), scaled up by how
// many pipeline stages a baseline diff dirties. With a baseline,
// untouched functions keep their base weight (their stages replay from
// the shared cache in microseconds) while the edit's recompute frontier
// is scheduled first. train may be nil (cost falls back to code size).
func taskWeights(prog *cfg.Program, baseline *cfg.Program, train *bl.ProgramProfile) map[string]int64 {
	weights := make(map[string]int64, len(prog.Order))
	for _, fname := range prog.Order {
		w := int64(prog.Funcs[fname].G.NumInstrs()) + 1
		if train != nil {
			if p := train.Funcs[fname]; p != nil {
				w *= int64(1 + p.NumPaths())
			}
		}
		weights[fname] = w
	}
	if baseline != nil {
		for _, d := range engine.DiffPrograms(baseline, prog, nil, nil) {
			weights[d.Func] *= int64(1 + len(d.DirtyStages()))
		}
	}
	return weights
}

// runPointsDistributed is the distributed job body: fan out one task per
// (point, function), wait, reassemble. Task events (who computed what,
// requeues after failures or lease expiries) land in the job's event
// stream as type "task".
func (s *Server) runPointsDistributed(ctx context.Context, job *Job, rt *resolvedTarget, target TargetSpec, points []engine.Options, baseline *cfg.Program) error {
	t0 := time.Now()
	order := rt.prog.Order

	// Train once on the coordinator (memoized across jobs): the path
	// counts drive cost prediction, and seeding the exchange means no
	// worker pays a training run. Training is a fraction of a percent of
	// the fan-out's compute; if it fails here it would fail identically
	// on every worker, so surface the error now.
	train, _, _, err := s.memo.trainProfile(rt)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := train.Save(&buf, rt.prog); err == nil {
		s.fabric.SeedProfile(profileKey(rt), buf.Bytes())
	}
	weights := taskWeights(rt.prog, baseline, train)

	specs := make([]fabric.TaskSpec, 0, len(points)*len(order))
	for _, o := range points {
		os := specOf(o)
		for _, fname := range order {
			raw, err := json.Marshal(&fabricTaskSpec{Target: target, Func: fname, Options: os})
			if err != nil {
				return fmt.Errorf("serve: encoding fabric task: %w", err)
			}
			// Affinity is per (target, function): a function's stage
			// bundles are shared across sweep points, so the worker that
			// computed point one serves the rest from its local cache
			// instead of re-fetching (or recomputing) through the
			// coordinator. Training-profile reuse survives the finer key
			// via the coordinator's profile exchange.
			specs = append(specs, fabric.TaskSpec{
				Spec:     raw,
				Priority: weights[fname],
				Affinity: rt.key + "\x00" + fname,
			})
		}
	}

	batch := s.fabric.Submit(specs, func(ev fabric.TaskEvent) {
		job.events.append(Event{
			Type:       "task",
			Job:        job.id,
			Time:       time.Now(),
			Point:      ev.Index / len(order),
			Func:       order[ev.Index%len(order)],
			Worker:     ev.Worker,
			DurationMS: durMS(ev.Duration),
			Requeued:   ev.Requeued,
			Error:      ev.Err,
		})
	})
	raws, err := batch.Wait(ctx)
	if err != nil {
		return err
	}

	results := make([]*AnalyzeResult, 0, len(points))
	for pi, o := range points {
		out := &AnalyzeResult{Program: rt.name, Options: specOf(o)}
		for fi, fname := range order {
			var tres fabricTaskResult
			if err := json.Unmarshal(raws[pi*len(order)+fi], &tres); err != nil {
				return fmt.Errorf("serve: decoding fabric result for %s: %w", fname, err)
			}
			out.Functions = append(out.Functions, tres.Summary)
			out.Totals.OrigNodes += tres.Summary.Nodes
			out.Totals.HPGNodes += tres.Summary.HPGNodes
			out.Totals.ReducedNodes += tres.Summary.ReducedNodes
			out.Totals.HotPaths += tres.Summary.HotPaths
			out.Totals.TrainPaths += tres.TrainPaths
			out.Totals.Consts += len(tres.Summary.Consts)
		}
		results = append(results, out)
	}

	jm := &JobMetrics{
		WallMS:      durMS(time.Since(t0)),
		EngineCache: cacheJSON(s.eng.CacheStats()),
	}
	job.setResult(nil, results, jm)
	return nil
}
