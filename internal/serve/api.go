// Package serve wraps the staged pipeline engine (internal/engine) as a
// long-running HTTP analysis service: the shape industrial path-sensitive
// analyzers deploy as — many programs, many sweep points, one hot process
// whose artifact cache is shared across requests instead of being rebuilt
// per CLI invocation.
//
// The subsystem has four parts:
//
//   - api.go:     the JSON wire types (requests, results, errors) and the
//     mapping from typed library errors to structured HTTP error bodies;
//   - jobs.go:    the job manager — bounded concurrent jobs, per-job
//     deadlines, cancellation, and a per-job event log that powers the
//     NDJSON/SSE metrics streams;
//   - metrics.go: service-level counters and per-stage time histograms,
//     rendered in Prometheus text exposition format;
//   - server.go:  the HTTP server itself — routing, request IDs, the
//     shared engine.Engine + program/profile memo, graceful shutdown.
//
// Results are deliberately split from timings: a job's "result" object
// holds only deterministic analysis artifacts (graph sizes, hot-path
// counts, discovered constants), so identical requests produce
// byte-identical result JSON no matter which of them raced ahead or hit
// the cache; everything nondeterministic (durations, cache counters)
// lives in the job's "metrics" object.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"pathflow/internal/bench"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/engine"
	"pathflow/internal/profile/stream"
)

// --- Requests -------------------------------------------------------------

// TargetSpec names the program to analyze: either a built-in benchmark
// (by name) or inline mini-language source, plus the interpreter options
// that drive the training run. It mirrors the CLI's target flags
// (-src/-ref/-args/-seed/-inputlen).
type TargetSpec struct {
	// Program is a built-in benchmark name (see GET /v1/programs or
	// `pathflow list`). Mutually exclusive with Source.
	Program string `json:"program,omitempty"`
	// Source is inline mini-language source text.
	Source string `json:"source,omitempty"`
	// Ref selects the benchmark's ref input for training (default:
	// train). Only meaningful with Program.
	Ref bool `json:"ref,omitempty"`
	// Args, Seed and InputLen configure the run of an inline Source
	// (arg(k) values, input() stream seed and length). Defaults match
	// the CLI: seed 1, 4096 input values.
	Args     []int64 `json:"args,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	InputLen int     `json:"input_len,omitempty"`
}

// OptionsSpec is the wire form of engine.Options.
type OptionsSpec struct {
	CA float64 `json:"ca"`
	CR float64 `json:"cr"`
	// Clients is a comma-separated list of extra data-flow clients to
	// run on every graph tier: "none" (default), "liveness",
	// "availexpr", or "all" — the same syntax as the CLI's -clients.
	Clients string `json:"clients,omitempty"`
	// Verify runs the precision differential oracle as a final stage;
	// any violation fails the job with a check-stage error.
	Verify bool `json:"verify,omitempty"`
	// Kernel selects the data-flow solver backend: "packed" (default,
	// the allocation-free arena kernels), "boxed" (the reference
	// implementation), or "sparse" (def-use-chain propagation on the
	// packed arenas) — the same syntax as the CLI's -kernel. All
	// produce identical facts; the knob exists for speed, differential
	// testing, and as an escape hatch.
	Kernel string `json:"kernel,omitempty"`
	// Feasible runs the feasible-path qualification pass: the branch-
	// correlation detector computes a sound infeasible-edge set per graph
	// tier and every client analyzes the pruned view — the same switch as
	// the CLI's -feasible.
	Feasible bool `json:"feasible,omitempty"`
}

func (o OptionsSpec) engine() (engine.Options, error) {
	cs, err := engine.ParseClients(o.Clients)
	if err != nil {
		return engine.Options{}, err
	}
	k, err := engine.ParseKernel(o.Kernel)
	if err != nil {
		return engine.Options{}, err
	}
	return engine.Options{CA: o.CA, CR: o.CR, Clients: cs, Verify: o.Verify, Kernel: k, Feasible: o.Feasible}, nil
}

func specOf(o engine.Options) OptionsSpec {
	spec := OptionsSpec{CA: o.CA, CR: o.CR, Verify: o.Verify, Feasible: o.Feasible}
	if o.Clients != 0 {
		spec.Clients = o.Clients.String()
	}
	if o.Kernel != dataflow.KernelPacked {
		spec.Kernel = o.Kernel.String()
	}
	return spec
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	TargetSpec
	// Options are the pipeline knobs; omitted means the paper's
	// recommended CA = 0.97, CR = 0.95.
	Options *OptionsSpec `json:"options,omitempty"`
	// TimeoutMS bounds the job (queue wait included); 0 means the
	// server's default deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Live analyzes against the target's live streamed profile
	// (POST /v1/profiles deltas merged into the decaying accumulators)
	// instead of the training snapshot. Each function runs under the
	// delta class its drift implies, so undrifted functions replay from
	// cache and drifted ones recompute only the selection-downstream
	// suffix.
	Live bool `json:"live,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: one program analyzed at
// every listed parameter point, in order, sharing the artifact cache.
type SweepRequest struct {
	TargetSpec
	Points    []OptionsSpec `json:"points"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
	// Distributed shards the sweep — one task per (point, function) —
	// across the fabric's worker pool instead of running it on the
	// server's engine. Requires the server to run with -fabric; results
	// are byte-identical either way.
	Distributed bool `json:"distributed,omitempty"`
	// BaselineSource, with Distributed, is a prior version of the
	// target's source. The coordinator diffs it against the target and
	// schedules each function's tasks with a priority scaled by its
	// delta's dirty-stage count, so an edit's recompute frontier is
	// fanned out first and untouched functions (pure cache replays)
	// drain last.
	BaselineSource string `json:"baseline_source,omitempty"`
	// Live sweeps against the live streamed profile (see
	// AnalyzeRequest.Live). Mutually exclusive with Distributed — the
	// live stream is this server's state.
	Live bool `json:"live,omitempty"`
}

// --- Results --------------------------------------------------------------

// ConstFact is one non-local constant the qualified analysis discovered
// on the final (reduced) graph: at node Node, register Var holds Value.
type ConstFact struct {
	Node  int    `json:"node"`
	Block string `json:"block,omitempty"`
	Var   string `json:"var"`
	Value int64  `json:"value"`
}

// FuncSummary is the per-function analysis outcome.
type FuncSummary struct {
	Name            string      `json:"name"`
	Nodes           int         `json:"nodes"`
	HPGNodes        int         `json:"hpg_nodes"`
	ReducedNodes    int         `json:"reduced_nodes"`
	HotPaths        int         `json:"hot_paths"`
	AutomatonStates int         `json:"automaton_states"`
	Qualified       bool        `json:"qualified"`
	Consts          []ConstFact `json:"consts,omitempty"`
}

// ResultTotals aggregates program-level sizes.
type ResultTotals struct {
	OrigNodes    int `json:"orig_nodes"`
	HPGNodes     int `json:"hpg_nodes"`
	ReducedNodes int `json:"reduced_nodes"`
	HotPaths     int `json:"hot_paths"`
	TrainPaths   int `json:"train_paths"`
	Consts       int `json:"consts"`
}

// AnalyzeResult is the deterministic analysis outcome of one parameter
// point. It intentionally contains no timings and no cache counters, so
// two identical requests marshal to byte-identical JSON regardless of
// scheduling or cache state.
type AnalyzeResult struct {
	Program   string        `json:"program"`
	Options   OptionsSpec   `json:"options"`
	Functions []FuncSummary `json:"functions"`
	Totals    ResultTotals  `json:"totals"`
}

// buildResult projects an engine.ProgramResult onto the wire form.
// Functions appear in program order and constants in node/instruction
// order, so the encoding is deterministic.
func buildResult(name string, o engine.Options, res *engine.ProgramResult) *AnalyzeResult {
	out := &AnalyzeResult{Program: name, Options: specOf(o)}
	for _, fname := range res.Prog.Order {
		fs := funcSummary(fname, res.Funcs[fname])
		out.Totals.Consts += len(fs.Consts)
		out.Functions = append(out.Functions, fs)
	}
	st := res.Stats()
	out.Totals.OrigNodes = st.OrigNodes
	out.Totals.HPGNodes = st.HPGNodes
	out.Totals.ReducedNodes = st.RedNodes
	out.Totals.HotPaths = st.HotPaths
	out.Totals.TrainPaths = st.TrainPaths
	return out
}

// funcSummary projects one function's result onto the wire form. It is
// the unit of fabric task results: a worker computes exactly this struct,
// so a distributed sweep assembles the same bytes buildResult produces.
func funcSummary(fname string, fr *engine.FuncResult) FuncSummary {
	fs := FuncSummary{
		Name:         fname,
		Nodes:        fr.Fn.G.NumNodes(),
		HPGNodes:     fr.Fn.G.NumNodes(),
		ReducedNodes: fr.Fn.G.NumNodes(),
		HotPaths:     len(fr.Hot),
		Qualified:    fr.Qualified(),
	}
	if fr.Qualified() {
		fs.HPGNodes = fr.HPG.G.NumNodes()
		fs.ReducedNodes = fr.Red.G.NumNodes()
		fs.AutomatonStates = fr.Auto.NumStates()
		fs.Consts = collectConsts(fr)
	}
	return fs
}

// collectConsts lists the non-local constants on the reduced graph — the
// same facts `pathflow analyze -consts` prints.
func collectConsts(fr *engine.FuncResult) []ConstFact {
	g := fr.Red.G
	sol := fr.RedSol
	numVars := fr.Fn.NumVars()
	var out []ConstFact
	for _, nd := range g.Nodes {
		if !sol.Reached(nd.ID) {
			continue
		}
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), numVars, true)
		vals := sol.InstrValues(nd.ID)
		for i := range nd.Instrs {
			if !flags[i] {
				continue
			}
			out = append(out, ConstFact{
				Node:  int(nd.ID),
				Block: nd.Name,
				Var:   fr.Fn.VarName(nd.Instrs[i].Dst),
				Value: vals[i].K,
			})
		}
	}
	return out
}

// --- Job metrics ----------------------------------------------------------

// StageStat is one stage's aggregate cost within a job. DiskHits counts
// the subset of CacheHits decoded from the persistent tier. Replayed
// mirrors CacheHits under the incremental re-analysis vocabulary — the
// stage was served from a cache tier instead of recomputed — and
// DecodeMS is the disk-decode time those replays actually cost (never
// folded into DurationMS, which stays the stored compute cost).
type StageStat struct {
	DurationMS float64 `json:"duration_ms"`
	DecodeMS   float64 `json:"decode_ms,omitempty"`
	Runs       int     `json:"runs"`
	CacheHits  int     `json:"cache_hits"`
	Replayed   int     `json:"replayed"`
	DiskHits   int     `json:"disk_hits,omitempty"`
}

// DiskStatsJSON is the wire form of the persistent tier's counters.
type DiskStatsJSON struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Rejects   int64 `json:"rejects"`
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// CacheStatsJSON is the wire form of engine.CacheStats: in-memory tier
// counters plus, when a CacheDir is configured, the disk tier's.
type CacheStatsJSON struct {
	Hits         int64          `json:"hits"`
	Misses       int64          `json:"misses"`
	Entries      int            `json:"entries"`
	Bytes        int64          `json:"bytes,omitempty"`
	MemEvictions int64          `json:"mem_evictions,omitempty"`
	Disk         *DiskStatsJSON `json:"disk,omitempty"`
}

func cacheJSON(s engine.CacheStats) CacheStatsJSON {
	out := CacheStatsJSON{
		Hits:         s.Hits,
		Misses:       s.Misses,
		Entries:      s.Entries,
		Bytes:        s.Bytes,
		MemEvictions: s.MemEvictions,
	}
	if s.DiskEnabled {
		out.Disk = &DiskStatsJSON{
			Hits:      s.Disk.Hits,
			Misses:    s.Disk.Misses,
			Rejects:   s.Disk.Rejects,
			Writes:    s.Disk.Writes,
			Evictions: s.Disk.Evictions,
			Entries:   s.Disk.Entries,
			Bytes:     s.Disk.Bytes,
		}
	}
	return out
}

// JobMetrics is everything nondeterministic about a job: wall-clock,
// per-stage costs and cache effectiveness. StageRuns/StageCacheHits
// total the per-stage counters; EngineCache is a snapshot of the shared
// engine's cumulative cache counters taken when the job finished.
type JobMetrics struct {
	WallMS         float64              `json:"wall_ms"`
	ProfileMS      float64              `json:"profile_ms"`
	ProfileCached  bool                 `json:"profile_cached"`
	Stages         map[string]StageStat `json:"stages"`
	StageRuns      int                  `json:"stage_runs"`
	StageCacheHits int                  `json:"stage_cache_hits"`
	StageReplayed  int                  `json:"stage_replayed"`
	StageDiskHits  int                  `json:"stage_disk_hits,omitempty"`
	EngineCache    CacheStatsJSON       `json:"engine_cache"`
}

// addProgram folds one program result's per-function metrics into jm.
func (jm *JobMetrics) addProgram(res *engine.ProgramResult) {
	if jm.Stages == nil {
		jm.Stages = map[string]StageStat{}
	}
	for _, fr := range res.Funcs {
		if fr.Metrics == nil {
			continue
		}
		for s, sm := range fr.Metrics.Stages {
			st := jm.Stages[string(s)]
			st.DurationMS += durMS(sm.Duration)
			st.DecodeMS += durMS(sm.Decode)
			st.Runs += sm.Runs
			st.CacheHits += sm.CacheHits
			st.Replayed += sm.CacheHits
			st.DiskHits += sm.DiskHits
			jm.Stages[string(s)] = st
			jm.StageRuns += sm.Runs
			jm.StageCacheHits += sm.CacheHits
			jm.StageReplayed += sm.CacheHits
			jm.StageDiskHits += sm.DiskHits
		}
	}
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- Errors ---------------------------------------------------------------

// ErrorBody is the structured JSON error every non-2xx response carries.
type ErrorBody struct {
	Error string `json:"error"`
	// Hint is the same remediation text the CLI prints for the error
	// (engine.InvalidOptionsError.Hint, bench.UnknownBenchmarkError.Hint).
	Hint string `json:"hint,omitempty"`
	// Stage/Func carry engine.StageError provenance for failed jobs.
	Stage     string `json:"stage,omitempty"`
	Func      string `json:"func,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// errorBody maps an error to its wire form, pulling hints and provenance
// from the typed errors the libraries already define — no validation or
// hint text is duplicated here.
func errorBody(err error) ErrorBody {
	b := ErrorBody{Error: err.Error()}
	var inv *engine.InvalidOptionsError
	if errors.As(err, &inv) {
		b.Hint = inv.Hint()
	}
	var ub *bench.UnknownBenchmarkError
	if errors.As(err, &ub) {
		b.Hint = ub.Hint()
	}
	var uc *engine.UnknownClientError
	if errors.As(err, &uc) {
		b.Hint = uc.Hint()
	}
	var uk *engine.UnknownKernelError
	if errors.As(err, &uk) {
		b.Hint = uk.Hint()
	}
	var be *stream.BatchError
	if errors.As(err, &be) {
		b.Hint = be.Hint()
	}
	var se *engine.StageError
	if errors.As(err, &se) {
		b.Stage = string(se.Stage)
		b.Func = se.Func
	}
	if errors.Is(err, context.DeadlineExceeded) {
		b.Hint = "job deadline exceeded; raise timeout_ms or the server's -timeout"
	}
	return b
}

// statusFor maps request-validation errors to HTTP status codes: unknown
// program names are 404, every other bad input is 400.
func statusFor(err error) int {
	var ub *bench.UnknownBenchmarkError
	if errors.As(err, &ub) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// writeError emits a structured error body with the request's ID.
func writeError(w http.ResponseWriter, reqID string, status int, err error) {
	b := errorBody(err)
	b.RequestID = reqID
	writeJSON(w, status, b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not actionable
}

// --- Misc wire types ------------------------------------------------------

// JobRef is the 202 Accepted body pointing at a submitted job.
type JobRef struct {
	JobID     string `json:"job_id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	RequestID string `json:"request_id,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	JobsInFlight  int            `json:"jobs_in_flight"`
	JobsAccepted  int64          `json:"jobs_accepted"`
	EngineCache   CacheStatsJSON `json:"engine_cache"`
	Fabric        *FabricHealth  `json:"fabric,omitempty"`
}

// FabricHealth is the coordinator's queue depth in the /healthz body
// (present only when the fabric is enabled).
type FabricHealth struct {
	TasksPending int `json:"tasks_pending"`
	TasksLeased  int `json:"tasks_leased"`
}

// ProgramInfo describes one built-in benchmark (GET /v1/programs).
type ProgramInfo struct {
	Name      string `json:"name"`
	Nodes     int    `json:"nodes"`
	Functions int    `json:"functions"`
	Instrs    int    `json:"instrs"`
}

// Programs lists the suite.
func Programs() ([]ProgramInfo, error) {
	var out []ProgramInfo
	for _, b := range bench.All() {
		prog, err := b.Program()
		if err != nil {
			return nil, err
		}
		out = append(out, ProgramInfo{
			Name:      b.Name,
			Nodes:     prog.NumNodes(),
			Functions: len(prog.Order),
			Instrs:    prog.NumInstrs(),
		})
	}
	return out, nil
}
