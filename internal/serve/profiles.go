package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/engine"
	"pathflow/internal/engine/diskcache"
	"pathflow/internal/profile/stream"
)

// This file is the streaming-profile side of the service: the
// POST /v1/profiles ingestion endpoint feeding per-target decaying
// accumulator sets (internal/profile/stream), drift detection against
// the profile the cached artifacts were built from, and the live-
// profile analyze path that re-analyzes under per-function delta
// classes so only drifted functions recompute their StageSelect-
// downstream artifacts while the rest replay from cache.

// targetStream is one analysis target's live profile state: the
// decaying accumulator set plus the program profile (and CA) the last
// analysis actually ran against — the baseline drift is measured from.
type targetStream struct {
	set *stream.Set

	mu         sync.Mutex
	analyzed   *bl.ProgramProfile
	analyzedCA float64
}

// baseline returns the profile and CA the cached artifacts were built
// from: the last live-analyzed pair, or the training profile at the
// default CA before any live analysis ran (a plain analyze uses
// exactly that pair, so the fallback is the true cache content).
func (ts *targetStream) baseline(train *bl.ProgramProfile) (*bl.ProgramProfile, float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.analyzed != nil {
		return ts.analyzed, ts.analyzedCA
	}
	return train, engine.DefaultOptions().CA
}

func (ts *targetStream) setAnalyzed(pp *bl.ProgramProfile, ca float64) {
	ts.mu.Lock()
	ts.analyzed, ts.analyzedCA = pp, ca
	ts.mu.Unlock()
}

// streamFor returns the target's stream, creating it on first touch:
// restored from the persistent snapshot when one survives under the
// cache dir, otherwise seeded from the training profile (so an empty
// stream materializes exactly the profile plain analyses use and
// nothing recomputes). The training run itself is single-flight via
// the program memo; the second return hands it to the caller so the
// profile is not computed twice.
func (s *Server) streamFor(rt *resolvedTarget) (*targetStream, *bl.ProgramProfile, error) {
	train, profMS, memoHit, err := s.memo.trainProfile(rt)
	if err != nil {
		return nil, nil, err
	}
	s.metrics.observeProfile(time.Duration(profMS*float64(time.Millisecond)), memoHit)

	s.streamsMu.Lock()
	ts, ok := s.streams[rt.key]
	s.streamsMu.Unlock()
	if ok {
		return ts, train, nil
	}

	set := s.loadStreamSnapshot(rt)
	if set == nil {
		set = stream.NewSet(rt.prog, train)
	}
	ts = &targetStream{set: set}

	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	if prior, ok := s.streams[rt.key]; ok {
		return prior, train, nil // lost the race; first seed wins
	}
	s.streams[rt.key] = ts
	return ts, train, nil
}

// streamSnapshotPath is the stream snapshot file for a target key. The
// key embeds inline source text, so it is hashed rather than
// sanitized.
func (s *Server) streamSnapshotPath(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never fails
	return filepath.Join(s.cfg.CacheDir, "streams", fmt.Sprintf("%016x.pfac", h.Sum64()))
}

// loadStreamSnapshot restores a persisted stream for rt, or nil when
// there is no cache dir, no snapshot, or the snapshot fails validation
// (corrupt or from a different program version — treated like a cache
// miss: the stream reseeds from the training profile).
func (s *Server) loadStreamSnapshot(rt *resolvedTarget) *stream.Set {
	if s.cfg.CacheDir == "" {
		return nil
	}
	data, err := os.ReadFile(s.streamSnapshotPath(rt.key))
	if err != nil {
		return nil
	}
	_, set, err := diskcache.DecodeStream(data, rt.prog)
	if err != nil {
		return nil
	}
	return set
}

// saveStreams persists every live stream under the cache dir (atomic
// temp+rename, like the artifact store) so accumulated counts and
// ingestion sequence numbers survive a restart. Called at drain; a
// no-op without a cache dir.
func (s *Server) saveStreams() {
	if s.cfg.CacheDir == "" {
		return
	}
	s.streamsMu.Lock()
	streams := make(map[string]*targetStream, len(s.streams))
	for k, ts := range s.streams {
		streams[k] = ts
	}
	s.streamsMu.Unlock()
	if len(streams) == 0 {
		return
	}
	dir := filepath.Join(s.cfg.CacheDir, "streams")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	for key, ts := range streams {
		data := diskcache.EncodeStream(diskcache.Meta{}, ts.set.Snapshot())
		path := s.streamSnapshotPath(key)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			continue
		}
		os.Rename(tmp, path) //nolint:errcheck // best-effort persistence
	}
}

// --- Wire types -------------------------------------------------------------

// IngestRequest is the body of POST /v1/profiles: one batch of path-
// counter deltas for a target. Agent names the producing collector;
// per-(agent, function) sequence numbers make redelivery idempotent
// (stream.Batch semantics — the batch validates atomically and
// replayed sequence numbers drop silently).
type IngestRequest struct {
	TargetSpec
	// Agent identifies the delta source (stream.Batch.Source).
	Agent string `json:"agent,omitempty"`
	// AdvanceEpoch decays the whole distribution one epoch before the
	// batch lands, so fresh samples weigh in at full strength against
	// an aged history.
	AdvanceEpoch bool `json:"advance_epoch,omitempty"`
	// Funcs are the per-function deltas.
	Funcs []stream.FuncDelta `json:"funcs"`
}

// IngestResponse reports what the batch did and the drift it caused:
// per-function verdicts comparing the live hot-set selection against
// the profile the cached artifacts were built from.
type IngestResponse struct {
	Applied   int                `json:"applied"`
	Dropped   int                `json:"dropped"`
	Epoch     uint64             `json:"epoch"`
	Drift     []stream.FuncDrift `json:"drift"`
	RequestID string             `json:"request_id,omitempty"`
}

// StreamPathState is one path's live decayed count.
type StreamPathState struct {
	Path  string `json:"path"`
	Count int64  `json:"count"`
}

// StreamFuncState is one function's live stream state. Paths are
// ordered hot→cold (count descending, path key ascending on ties), so
// the head is the current hot-set prefix and the tail is the coldest
// traffic.
type StreamFuncState struct {
	Func      string            `json:"func"`
	NumPaths  int               `json:"num_paths"`
	Changed   bool              `json:"changed"`
	Requalify bool              `json:"requalify"`
	Paths     []StreamPathState `json:"paths"`
}

// StreamStateResponse is the body of GET /v1/profiles.
type StreamStateResponse struct {
	Program string            `json:"program"`
	Epoch   uint64            `json:"epoch"`
	Funcs   []StreamFuncState `json:"funcs"`
}

// --- Handlers ---------------------------------------------------------------

func (s *Server) handleProfileIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, requestID(r), http.StatusBadRequest, err)
		return
	}
	rt, err := resolveTarget(&req.TargetSpec)
	if err != nil {
		writeError(w, requestID(r), statusFor(err), err)
		return
	}
	ts, train, err := s.streamFor(rt)
	if err != nil {
		writeError(w, requestID(r), http.StatusInternalServerError, err)
		return
	}
	st, err := ts.set.Apply(&stream.Batch{
		Source:       req.Agent,
		AdvanceEpoch: req.AdvanceEpoch,
		Funcs:        req.Funcs,
	})
	if err != nil {
		writeError(w, requestID(r), http.StatusBadRequest, err)
		return
	}
	prev, ca := ts.baseline(train)
	drift := stream.DetectDrift(prev, ts.set.Profile(), rt.prog, ca)
	requalify := 0
	for _, d := range drift {
		if d.Requalify {
			requalify++
		}
	}
	s.metrics.observeIngest(st.Applied, st.Dropped, requalify)
	writeJSON(w, http.StatusOK, IngestResponse{
		Applied:   st.Applied,
		Dropped:   st.Dropped,
		Epoch:     st.Epoch,
		Drift:     drift,
		RequestID: requestID(r),
	})
}

func (s *Server) handleProfileState(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := TargetSpec{Program: q.Get("program"), Source: q.Get("source")}
	if ref, _ := strconv.ParseBool(q.Get("ref")); ref {
		spec.Ref = true
	}
	// Inline-source targets are keyed by their training inputs too, so
	// the state query must accept the same knobs the POST body carries.
	for _, a := range strings.Split(q.Get("args"), ",") {
		if a == "" {
			continue
		}
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			writeError(w, requestID(r), http.StatusBadRequest,
				fmt.Errorf("serve: bad args value %q: %w", a, err))
			return
		}
		spec.Args = append(spec.Args, v)
	}
	spec.Seed, _ = strconv.ParseUint(q.Get("seed"), 10, 64)
	spec.InputLen, _ = strconv.Atoi(q.Get("input_len"))
	rt, err := resolveTarget(&spec)
	if err != nil {
		writeError(w, requestID(r), statusFor(err), err)
		return
	}
	ts, train, err := s.streamFor(rt)
	if err != nil {
		writeError(w, requestID(r), http.StatusInternalServerError, err)
		return
	}
	live := ts.set.Profile()
	prev, ca := ts.baseline(train)
	drift := stream.DetectDrift(prev, live, rt.prog, ca)
	byFunc := make(map[string]stream.FuncDrift, len(drift))
	for _, d := range drift {
		byFunc[d.Func] = d
	}
	filter := q.Get("func")
	out := StreamStateResponse{Program: rt.name, Epoch: ts.set.Epoch()}
	for _, name := range rt.prog.Order {
		if filter != "" && name != filter {
			continue
		}
		fs := StreamFuncState{
			Func:      name,
			Changed:   byFunc[name].Changed,
			Requalify: byFunc[name].Requalify,
		}
		if pr := live.Funcs[name]; pr != nil {
			for _, e := range pr.Entries {
				fs.Paths = append(fs.Paths, StreamPathState{Path: e.Path.Key(), Count: e.Count})
			}
			sort.Slice(fs.Paths, func(i, j int) bool {
				if fs.Paths[i].Count != fs.Paths[j].Count {
					return fs.Paths[i].Count > fs.Paths[j].Count
				}
				return fs.Paths[i].Path < fs.Paths[j].Path
			})
			fs.NumPaths = len(fs.Paths)
		}
		out.Funcs = append(out.Funcs, fs)
	}
	if filter != "" && len(out.Funcs) == 0 {
		writeError(w, requestID(r), http.StatusNotFound,
			fmt.Errorf("serve: unknown function %q", filter))
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// --- Live-profile analysis --------------------------------------------------

// runPointsLive is runPoints against the live streamed profile instead
// of the training snapshot. Each function is diffed against the
// profile the cached artifacts were built from (engine.DiffPrograms on
// the unchanged program) and analyzed under its own delta class, so an
// undrifted function replays every stage from cache while a drifted
// one recomputes exactly the StageSelect-downstream suffix its new
// counts dirty. Functions run serially — one function's delta class
// must not stamp another's bundles.
func (s *Server) runPointsLive(ctx context.Context, job *Job, rt *resolvedTarget, points []engine.Options) error {
	t0 := time.Now()
	ts, train, err := s.streamFor(rt)
	if err != nil {
		return err
	}
	job.events.append(Event{Type: "profile", Job: job.id, Time: time.Now(), Cached: true})
	live := ts.set.Profile()
	prev, _ := ts.baseline(train)
	deltas := engine.DiffPrograms(rt.prog, rt.prog, prev, live)
	byName := make(map[string]*engine.Delta, len(deltas))
	for _, d := range deltas {
		byName[d.Func] = d
		job.events.append(Event{
			Type: "delta", Job: job.id, Time: time.Now(),
			Func: d.Func, Stage: string(d.Class),
		})
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	jm := &JobMetrics{ProfileCached: true}
	var results []*AnalyzeResult
	for i, o := range points {
		octx := engine.WithStageObserver(ctx, s.observer(job, i))
		res := &engine.ProgramResult{
			Prog:  rt.prog,
			Opt:   o,
			Funcs: make(map[string]*engine.FuncResult, len(rt.prog.Order)),
		}
		for _, name := range rt.prog.Order {
			class := engine.DeltaCold
			if d := byName[name]; d != nil {
				class = d.Class
			}
			fctx := engine.WithDeltaClass(octx, class)
			fr, err := s.eng.AnalyzeFunc(fctx, rt.prog.Funcs[name], live.Funcs[name], o)
			if err != nil {
				return err
			}
			res.Funcs[name] = fr
		}
		jm.addProgram(res)
		results = append(results, buildResult(rt.name, o, res))
	}
	ts.setAnalyzed(live, points[len(points)-1].CA)
	jm.WallMS = durMS(time.Since(t0))
	jm.EngineCache = cacheJSON(s.eng.CacheStats())
	if job.kind == "sweep" {
		job.setResult(nil, results, jm)
	} else {
		job.setResult(results[0], nil, jm)
	}
	return nil
}

var errLiveDistributed = errors.New(`serve: "live" and "distributed" are mutually exclusive — the live stream is this server's state`)
