package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pathflow/internal/engine"
	"pathflow/internal/engine/diskcache"
)

// stageBuckets are the histogram upper bounds, in seconds. Pipeline
// stages on the suite run from microseconds (baseline on a tiny cold
// function) to seconds (trace/reduce on go at full coverage), so the
// buckets are decades across that span.
var stageBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: counts[i] counts observations ≤ stageBuckets[i]).
type histogram struct {
	counts [len8]uint64
	sum    float64
	total  uint64
}

// len8 keeps the array size in sync with stageBuckets.
const len8 = 8

func (h *histogram) observe(sec float64) {
	for i, ub := range stageBuckets {
		if sec <= ub {
			h.counts[i]++
		}
	}
	h.sum += sec
	h.total++
}

// serverMetrics aggregates service-level observability state: job
// lifecycle counters, per-stage time histograms and per-stage cache-hit
// counters. The engine's cumulative cache counters are read live at
// render time, not mirrored here.
type serverMetrics struct {
	start time.Time

	mu            sync.Mutex
	requests      int64
	jobsAccepted  int64
	jobsInFlight  int64
	jobsFinished  map[JobState]int64
	stages        map[engine.StageName]*histogram
	stageHits     map[engine.StageName]int64
	stageDisk     map[engine.StageName]int64
	stageReplayed map[engine.StageName]int64
	stageDecode   map[engine.StageName]float64
	profileRuns   int64
	profileCached int64

	// Streaming-profile counters: function deltas applied / dropped as
	// idempotent replays by POST /v1/profiles, and functions whose live
	// hot-set selection drifted from the cached artifacts' profile
	// (each will re-qualify — recompute its StageSelect-downstream
	// suffix — at the next live analysis).
	ingestApplied  int64
	ingestDropped  int64
	driftRequalify int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		start:         time.Now(),
		jobsFinished:  map[JobState]int64{},
		stages:        map[engine.StageName]*histogram{},
		stageHits:     map[engine.StageName]int64{},
		stageDisk:     map[engine.StageName]int64{},
		stageReplayed: map[engine.StageName]int64{},
		stageDecode:   map[engine.StageName]float64{},
	}
}

func (sm *serverMetrics) request() {
	sm.mu.Lock()
	sm.requests++
	sm.mu.Unlock()
}

func (sm *serverMetrics) jobAccepted() {
	sm.mu.Lock()
	sm.jobsAccepted++
	sm.jobsInFlight++
	sm.mu.Unlock()
}

func (sm *serverMetrics) jobFinished(state JobState) {
	sm.mu.Lock()
	sm.jobsInFlight--
	sm.jobsFinished[state]++
	sm.mu.Unlock()
}

// observeStage records one engine stage execution. Cache hits count
// toward the hit/replayed counters but not the histogram — the
// histogram measures compute actually performed by this process's
// engine, so hit-heavy workloads show up as flat histograms and
// climbing hit counters. Disk replays additionally accumulate their
// decode cost (the price actually paid for the replay, which the
// engine keeps separate from the stage's stored compute cost).
func (sm *serverMetrics) observeStage(ev engine.StageEvent) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if ev.Cached {
		sm.stageHits[ev.Stage]++
		sm.stageReplayed[ev.Stage]++
		if ev.Source == engine.SourceDisk {
			sm.stageDisk[ev.Stage]++
			sm.stageDecode[ev.Stage] += ev.Decode.Seconds()
		}
		return
	}
	h := sm.stages[ev.Stage]
	if h == nil {
		h = &histogram{}
		sm.stages[ev.Stage] = h
	}
	h.observe(ev.Duration.Seconds())
}

func (sm *serverMetrics) observeProfile(d time.Duration, cached bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.profileRuns++
	if cached {
		sm.profileCached++
	}
}

// observeIngest records one profile-delta batch: applied and dropped
// function deltas, plus how many functions the batch left needing
// re-qualification.
func (sm *serverMetrics) observeIngest(applied, dropped, requalify int) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.ingestApplied += int64(applied)
	sm.ingestDropped += int64(dropped)
	sm.driftRequalify += int64(requalify)
}

// snapshot returns the counters the health endpoint reports.
func (sm *serverMetrics) snapshot() (inFlight int, accepted int64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return int(sm.jobsInFlight), sm.jobsAccepted
}

// render writes the Prometheus text exposition of every metric, plus the
// engine's cumulative cache counters. Output order is deterministic.
func (sm *serverMetrics) render(w io.Writer, cache engine.CacheStats) {
	sm.mu.Lock()
	defer sm.mu.Unlock()

	fmt.Fprintf(w, "# HELP pathflow_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE pathflow_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pathflow_uptime_seconds %g\n", time.Since(sm.start).Seconds())

	fmt.Fprintf(w, "# HELP pathflow_http_requests_total HTTP requests served.\n")
	fmt.Fprintf(w, "# TYPE pathflow_http_requests_total counter\n")
	fmt.Fprintf(w, "pathflow_http_requests_total %d\n", sm.requests)

	fmt.Fprintf(w, "# HELP pathflow_jobs_accepted_total Jobs admitted by the job manager.\n")
	fmt.Fprintf(w, "# TYPE pathflow_jobs_accepted_total counter\n")
	fmt.Fprintf(w, "pathflow_jobs_accepted_total %d\n", sm.jobsAccepted)

	fmt.Fprintf(w, "# HELP pathflow_jobs_in_flight Jobs queued or running.\n")
	fmt.Fprintf(w, "# TYPE pathflow_jobs_in_flight gauge\n")
	fmt.Fprintf(w, "pathflow_jobs_in_flight %d\n", sm.jobsInFlight)

	fmt.Fprintf(w, "# HELP pathflow_jobs_finished_total Jobs by terminal state.\n")
	fmt.Fprintf(w, "# TYPE pathflow_jobs_finished_total counter\n")
	states := make([]string, 0, len(sm.jobsFinished))
	for s := range sm.jobsFinished {
		states = append(states, string(s))
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "pathflow_jobs_finished_total{state=%q} %d\n", s, sm.jobsFinished[JobState(s)])
	}

	fmt.Fprintf(w, "# HELP pathflow_engine_cache_hits_total Artifact-cache hits (cumulative, shared engine).\n")
	fmt.Fprintf(w, "# TYPE pathflow_engine_cache_hits_total counter\n")
	fmt.Fprintf(w, "pathflow_engine_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "# HELP pathflow_engine_cache_misses_total Artifact-cache misses (cumulative, shared engine).\n")
	fmt.Fprintf(w, "# TYPE pathflow_engine_cache_misses_total counter\n")
	fmt.Fprintf(w, "pathflow_engine_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "# HELP pathflow_engine_cache_entries Artifact-cache resident bundles.\n")
	fmt.Fprintf(w, "# TYPE pathflow_engine_cache_entries gauge\n")
	fmt.Fprintf(w, "pathflow_engine_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "# HELP pathflow_engine_cache_bytes Estimated in-memory footprint of resident bundles.\n")
	fmt.Fprintf(w, "# TYPE pathflow_engine_cache_bytes gauge\n")
	fmt.Fprintf(w, "pathflow_engine_cache_bytes %d\n", cache.Bytes)
	fmt.Fprintf(w, "# HELP pathflow_engine_cache_evictions_total Bundles dropped by the in-memory byte bound.\n")
	fmt.Fprintf(w, "# TYPE pathflow_engine_cache_evictions_total counter\n")
	fmt.Fprintf(w, "pathflow_engine_cache_evictions_total %d\n", cache.MemEvictions)

	if cache.DiskEnabled {
		d := cache.Disk
		fmt.Fprintf(w, "# HELP pathflow_diskcache_hits_total Persistent-tier lookups whose payload decoded into a usable artifact.\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_hits_total counter\n")
		fmt.Fprintf(w, "pathflow_diskcache_hits_total %d\n", d.Hits)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_misses_total Persistent-tier lookups that missed (absent, unreadable or rejected entries).\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_misses_total counter\n")
		fmt.Fprintf(w, "pathflow_diskcache_misses_total %d\n", d.Misses)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_rejects_total Persistent-tier payloads rejected as corrupt or version-skewed (deleted, recomputed).\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_rejects_total counter\n")
		fmt.Fprintf(w, "pathflow_diskcache_rejects_total %d\n", d.Rejects)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_writes_total Bundles persisted to the disk tier.\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_writes_total counter\n")
		fmt.Fprintf(w, "pathflow_diskcache_writes_total %d\n", d.Writes)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_evictions_total Bundle files deleted by the disk-tier byte bound.\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_evictions_total counter\n")
		fmt.Fprintf(w, "pathflow_diskcache_evictions_total %d\n", d.Evictions)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_entries Resident bundle files in the disk tier.\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_entries gauge\n")
		fmt.Fprintf(w, "pathflow_diskcache_entries %d\n", d.Entries)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_bytes Bytes resident in the disk tier.\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_bytes gauge\n")
		fmt.Fprintf(w, "pathflow_diskcache_bytes %d\n", d.Bytes)
		fmt.Fprintf(w, "# HELP pathflow_diskcache_decode_seconds Time to decode disk-tier bundles into live artifacts.\n")
		fmt.Fprintf(w, "# TYPE pathflow_diskcache_decode_seconds histogram\n")
		for i, ub := range diskcache.DecodeBucketBounds {
			fmt.Fprintf(w, "pathflow_diskcache_decode_seconds_bucket{le=%q} %d\n", fmtBound(ub), d.DecodeBuckets[i])
		}
		fmt.Fprintf(w, "pathflow_diskcache_decode_seconds_bucket{le=\"+Inf\"} %d\n", d.DecodeCount)
		fmt.Fprintf(w, "pathflow_diskcache_decode_seconds_sum %g\n", d.DecodeSum)
		fmt.Fprintf(w, "pathflow_diskcache_decode_seconds_count %d\n", d.DecodeCount)
	}

	fmt.Fprintf(w, "# HELP pathflow_profile_runs_total Training-profile requests (cached and computed).\n")
	fmt.Fprintf(w, "# TYPE pathflow_profile_runs_total counter\n")
	fmt.Fprintf(w, "pathflow_profile_runs_total %d\n", sm.profileRuns)
	fmt.Fprintf(w, "# HELP pathflow_profile_cached_total Training-profile requests served from the memo.\n")
	fmt.Fprintf(w, "# TYPE pathflow_profile_cached_total counter\n")
	fmt.Fprintf(w, "pathflow_profile_cached_total %d\n", sm.profileCached)

	fmt.Fprintf(w, "# HELP pathflow_profile_ingest_total Streamed profile function-deltas applied to the live accumulators.\n")
	fmt.Fprintf(w, "# TYPE pathflow_profile_ingest_total counter\n")
	fmt.Fprintf(w, "pathflow_profile_ingest_total %d\n", sm.ingestApplied)
	fmt.Fprintf(w, "# HELP pathflow_profile_ingest_dropped_total Streamed profile function-deltas dropped as idempotent replays (seq already applied).\n")
	fmt.Fprintf(w, "# TYPE pathflow_profile_ingest_dropped_total counter\n")
	fmt.Fprintf(w, "pathflow_profile_ingest_dropped_total %d\n", sm.ingestDropped)
	fmt.Fprintf(w, "# HELP pathflow_drift_requalify_total Functions whose live hot-set selection drifted from the cached artifacts' profile after an ingested batch.\n")
	fmt.Fprintf(w, "# TYPE pathflow_drift_requalify_total counter\n")
	fmt.Fprintf(w, "pathflow_drift_requalify_total %d\n", sm.driftRequalify)

	fmt.Fprintf(w, "# HELP pathflow_stage_cache_hits_total Stage executions served from the artifact cache.\n")
	fmt.Fprintf(w, "# TYPE pathflow_stage_cache_hits_total counter\n")
	for _, s := range engine.StageOrder {
		if n, ok := sm.stageHits[s]; ok {
			fmt.Fprintf(w, "pathflow_stage_cache_hits_total{stage=%q} %d\n", string(s), n)
		}
	}

	fmt.Fprintf(w, "# HELP pathflow_stage_disk_hits_total Stage executions decoded from the persistent cache tier.\n")
	fmt.Fprintf(w, "# TYPE pathflow_stage_disk_hits_total counter\n")
	for _, s := range engine.StageOrder {
		if n, ok := sm.stageDisk[s]; ok {
			fmt.Fprintf(w, "pathflow_stage_disk_hits_total{stage=%q} %d\n", string(s), n)
		}
	}

	fmt.Fprintf(w, "# HELP pathflow_stage_replayed_total Stage executions replayed from the artifact cache instead of recomputed (incremental re-analysis reuse).\n")
	fmt.Fprintf(w, "# TYPE pathflow_stage_replayed_total counter\n")
	for _, s := range engine.StageOrder {
		if n, ok := sm.stageReplayed[s]; ok {
			fmt.Fprintf(w, "pathflow_stage_replayed_total{stage=%q} %d\n", string(s), n)
		}
	}

	fmt.Fprintf(w, "# HELP pathflow_stage_decode_seconds_total Disk-decode time paid for replayed stages (kept separate from compute cost).\n")
	fmt.Fprintf(w, "# TYPE pathflow_stage_decode_seconds_total counter\n")
	for _, s := range engine.StageOrder {
		if v, ok := sm.stageDecode[s]; ok {
			fmt.Fprintf(w, "pathflow_stage_decode_seconds_total{stage=%q} %g\n", string(s), v)
		}
	}

	fmt.Fprintf(w, "# HELP pathflow_stage_seconds Compute cost of executed pipeline stages.\n")
	fmt.Fprintf(w, "# TYPE pathflow_stage_seconds histogram\n")
	for _, s := range engine.StageOrder {
		h, ok := sm.stages[s]
		if !ok {
			continue
		}
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "pathflow_stage_seconds_bucket{stage=%q,le=%q} %d\n", string(s), fmtBound(ub), h.counts[i])
		}
		fmt.Fprintf(w, "pathflow_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", string(s), h.total)
		fmt.Fprintf(w, "pathflow_stage_seconds_sum{stage=%q} %g\n", string(s), h.sum)
		fmt.Fprintf(w, "pathflow_stage_seconds_count{stage=%q} %d\n", string(s), h.total)
	}
}

func fmtBound(ub float64) string { return fmt.Sprintf("%g", ub) }
