package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pathflow/internal/engine"
)

// JobState is the lifecycle of a job:
//
//	queued → running → done | failed | canceled
//
// A queued job can also go straight to canceled (explicit cancel or
// server shutdown before a run slot freed up).
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// terminal reports whether s is an end state.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Event is one line of a job's NDJSON/SSE stream.
type Event struct {
	// Type is "state" (lifecycle transition), "profile" (training run
	// finished), "stage" (one engine stage landed), or "end" (terminal;
	// always the last event).
	Type string    `json:"type"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	State JobState `json:"state,omitempty"` // with type=state, type=end

	// Sweep point index (0 for analyze jobs).
	Point int `json:"point,omitempty"`

	// With type=stage: which function/stage, its compute cost, whether
	// the artifact came from the shared cache, and its provenance
	// ("computed", "memory" or "disk"). Replayed mirrors Cached — the
	// stage was served from a cache tier instead of recomputed (the
	// incremental re-analysis vocabulary) — and DecodeMS is the
	// disk-decode cost actually paid for it (nonzero only for source
	// "disk", and never folded into DurationMS). type=profile uses the
	// same Duration/Cached fields for the training run.
	Func       string  `json:"func,omitempty"`
	Stage      string  `json:"stage,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	DecodeMS   float64 `json:"decode_ms,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Replayed   bool    `json:"replayed,omitempty"`
	Source     string  `json:"source,omitempty"`

	// With type=task (distributed sweeps): which fabric worker finished
	// (or lost) one (point, function) task. Requeued marks attempts the
	// coordinator re-enqueued after a failure or lease expiry.
	Worker   string `json:"worker,omitempty"`
	Requeued bool   `json:"requeued,omitempty"`

	Error string `json:"error,omitempty"` // with type=end, failed/canceled
}

// eventLog is an append-only, broadcast-on-append event sequence. Each
// append (and the final close) wakes every waiting subscriber; readers
// keep their own cursor, so late subscribers replay from the start.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
	closed  bool
}

func newEventLog() *eventLog { return &eventLog{changed: make(chan struct{})} }

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, e)
	close(l.changed)
	l.changed = make(chan struct{})
}

// close seals the log; subscribers drain and finish.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.changed)
}

// since returns the events at and after cursor i, a channel that is
// closed on the next change, and whether the log is sealed. If new
// events raced in after the caller's last read, the returned slice is
// non-empty and the caller simply continues without waiting.
func (l *eventLog) since(i int) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []Event
	if i < len(l.events) {
		evs = append(evs, l.events[i:]...)
	}
	return evs, l.changed, l.closed
}

// Job is one unit of server work: a single analysis or a sweep.
type Job struct {
	id      string
	kind    string // "analyze" | "sweep"
	program string
	created time.Time
	events  *eventLog
	done    chan struct{}
	cancel  context.CancelFunc

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	result   *AnalyzeResult   // analyze, done
	results  []*AnalyzeResult // sweep, done
	metrics  *JobMetrics
	err      error
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil while in flight or done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation: queued jobs die before starting, running
// jobs see their context cancelled (the engine stops at the next stage
// boundary with context.Canceled provenance).
func (j *Job) Cancel() { j.cancel() }

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.events.append(Event{Type: "state", Job: j.id, Time: time.Now(), State: JobRunning})
}

// setResult records a finished job's deterministic result and metrics;
// finish turns it terminal.
func (j *Job) setResult(r *AnalyzeResult, rs []*AnalyzeResult, m *JobMetrics) {
	j.mu.Lock()
	j.result, j.results, j.metrics = r, rs, m
	j.mu.Unlock()
}

// resultPayload returns the deterministic result payload of a job that
// finished done: the single result for analyze jobs, the result list for
// sweeps. false for any other state.
func (j *Job) resultPayload() (any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, false
	}
	if j.kind == "sweep" {
		return j.results, true
	}
	return j.result, true
}

// finish moves the job to its terminal state, seals the event log and
// wakes waiters. The state is derived from err: nil → done, a
// context.Canceled cause → canceled, anything else → failed.
func (j *Job) finish(err error) {
	state := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state = JobCanceled
	default:
		state = JobFailed
	}
	j.mu.Lock()
	j.state = state
	j.err = err
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.mu.Unlock()
	end := Event{Type: "end", Job: j.id, Time: time.Now(), State: state}
	if err != nil {
		end.Error = err.Error()
	}
	j.events.append(end)
	j.events.close()
	close(j.done)
}

// JobJSON is the wire form of a job (GET /v1/jobs/{id}).
type JobJSON struct {
	ID       string           `json:"id"`
	Kind     string           `json:"kind"`
	Program  string           `json:"program"`
	State    JobState         `json:"state"`
	Created  time.Time        `json:"created"`
	Started  *time.Time       `json:"started,omitempty"`
	Finished *time.Time       `json:"finished,omitempty"`
	Error    *ErrorBody       `json:"error,omitempty"`
	Result   *AnalyzeResult   `json:"result,omitempty"`
	Results  []*AnalyzeResult `json:"results,omitempty"`
	Metrics  *JobMetrics      `json:"metrics,omitempty"`

	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// JSON snapshots the job. With summary set, results and metrics are
// omitted (the GET /v1/jobs listing).
func (j *Job) JSON(summary bool) JobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := JobJSON{
		ID:        j.id,
		Kind:      j.kind,
		Program:   j.program,
		State:     j.state,
		Created:   j.created,
		StatusURL: "/v1/jobs/" + j.id,
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	if j.err != nil {
		b := errorBody(j.err)
		out.Error = &b
	}
	if !summary {
		out.Result = j.result
		out.Results = j.results
		out.Metrics = j.metrics
	}
	return out
}

// Manager owns every job: it admits them immediately (202 semantics),
// bounds how many run concurrently, applies per-job deadlines, and
// drains everything on shutdown by cancelling the root context all job
// contexts descend from — reusing the engine's context-cancellation
// semantics (StageError wrapping context.Canceled) for the drain.
type Manager struct {
	root    context.Context
	stop    context.CancelFunc
	sem     chan struct{}
	wg      sync.WaitGroup
	metrics *serverMetrics

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int64
}

// newManager returns a manager running at most maxJobs jobs at once.
func newManager(maxJobs int, metrics *serverMetrics) *Manager {
	if maxJobs <= 0 {
		maxJobs = 2
	}
	root, stop := context.WithCancel(context.Background())
	return &Manager{
		root:    root,
		stop:    stop,
		sem:     make(chan struct{}, maxJobs),
		metrics: metrics,
		jobs:    map[string]*Job{},
	}
}

// Submit admits a job and schedules run on it. run receives a context
// that is cancelled by job.Cancel, by the deadline, and by Shutdown; it
// must return promptly once the context dies (engine stages guarantee
// this at stage granularity).
func (m *Manager) Submit(kind, program string, timeout time.Duration, run func(ctx context.Context, job *Job) error) *Job {
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	ctx, cancel := context.WithCancel(m.root)
	if timeout > 0 {
		// The deadline covers queue wait too: a request's budget starts
		// when the server accepts it, not when a slot frees up.
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	job := &Job{
		id:      id,
		kind:    kind,
		program: program,
		created: time.Now(),
		state:   JobQueued,
		events:  newEventLog(),
		done:    make(chan struct{}),
		cancel:  cancel,
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.mu.Unlock()

	m.metrics.jobAccepted()
	job.events.append(Event{Type: "state", Job: id, Time: time.Now(), State: JobQueued})

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		// Wait for a run slot, the job's own cancellation/deadline, or
		// server shutdown — whichever comes first.
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		case <-ctx.Done():
			m.finalize(job, ctx.Err())
			return
		}
		if err := ctx.Err(); err != nil {
			m.finalize(job, err)
			return
		}
		job.setRunning()
		m.finalize(job, run(ctx, job))
	}()
	return job
}

func (m *Manager) finalize(job *Job, err error) {
	job.finish(err)
	m.metrics.jobFinished(job.State())
}

// Get returns a job by ID.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// List returns every job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, len(m.order))
	for i, id := range m.order {
		out[i] = m.jobs[id]
	}
	return out
}

// InFlight counts jobs that have not reached a terminal state.
func (m *Manager) InFlight() int {
	n := 0
	for _, j := range m.List() {
		if !j.State().terminal() {
			n++
		}
	}
	return n
}

// Shutdown cancels every job context and waits for all jobs to reach a
// terminal state. In-flight analyses end with the engine's StageError
// wrapping context.Canceled; the shared artifact cache stays consistent
// because failed computations are evicted, never stored.
func (m *Manager) Shutdown() {
	m.stop()
	m.wg.Wait()
}

// engineCanceled reports whether err carries engine cancellation
// provenance (a StageError whose cause is context.Canceled).
func engineCanceled(err error) bool {
	var se *engine.StageError
	return errors.As(err, &se) && errors.Is(err, context.Canceled)
}
