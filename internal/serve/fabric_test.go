package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathflow/internal/engine"
	"pathflow/internal/fabric"
)

func sweepBody(t *testing.T, distributed bool) []byte {
	t.Helper()
	b, err := json.Marshal(SweepRequest{
		TargetSpec:  TargetSpec{Source: testSrc, Args: []int64{120}},
		Points:      []OptionsSpec{{CA: 0, CR: 0.95}, {CA: 0.97, CR: 0.95}},
		Distributed: distributed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDistributedSweepRequiresFabric(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	resp, data := postJSON(t, ts.URL+"/v1/sweep", sweepBody(t, true))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("distributed sweep without -fabric = %d, want 400: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "-fabric") {
		t.Fatalf("error body %s does not point at the -fabric flag", data)
	}
}

// startFabricWorker runs one in-process `pathflow worker` equivalent: a
// private engine (own cache dir), the coordinator's bundle endpoints as
// its remote tier, and the serve task runner.
func startFabricWorker(t *testing.T, ctx context.Context, id, base string) *fabric.Worker {
	t.Helper()
	eng, err := engine.Open(engine.Config{Workers: 1, Cache: true, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	remote := fabric.NewRemoteCache(ctx, base, nil)
	if store := eng.Disk(); store != nil {
		store.SetRemote(remote)
	}
	w := &fabric.Worker{ID: id, Base: base,
		Run: NewTaskRunner(eng).WithProfileExchange(remote).Run, Poll: 5 * time.Millisecond}
	go w.Serve(ctx) //nolint:errcheck
	return w
}

// TestDistributedSweepByteIdentical is the tentpole's acceptance lock at
// test scale: the same sweep through the fabric (two workers, separate
// caches bridged by the coordinator's bundle endpoints) must produce a
// byte-identical deterministic result payload to a single-process run.
func TestDistributedSweepByteIdentical(t *testing.T) {
	// Reference: plain single-process server.
	ref := mustNew(t, Config{})
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()
	defer ref.jobs.Shutdown()

	resp, data := postJSON(t, tsRef.URL+"/v1/sweep?wait=1", sweepBody(t, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep = %d: %s", resp.StatusCode, data)
	}
	refJob := decodeJob(t, data)
	resp, refBytes := getBody(t, tsRef.URL+"/v1/jobs/"+refJob.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference result = %d: %s", resp.StatusCode, refBytes)
	}

	// Distributed: fabric coordinator plus two workers.
	srv := mustNew(t, Config{Fabric: true, FabricLeaseTTL: 2 * time.Second, CacheDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1 := startFabricWorker(t, ctx, "w1", ts.URL)
	w2 := startFabricWorker(t, ctx, "w2", ts.URL)

	resp, data = postJSON(t, ts.URL+"/v1/sweep?wait=1", sweepBody(t, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed sweep = %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.State != JobDone {
		t.Fatalf("distributed job state = %q (%+v)", job.State, job.Error)
	}
	resp, distBytes := getBody(t, ts.URL+"/v1/jobs/"+job.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed result = %d: %s", resp.StatusCode, distBytes)
	}
	if !bytes.Equal(distBytes, refBytes) {
		t.Fatalf("distributed result differs from single-process run:\n--- local ---\n%s\n--- distributed ---\n%s",
			refBytes, distBytes)
	}

	// Both workers exist in the fleet; between them they ran every task.
	total := w1.Stats().Tasks + w2.Stats().Tasks
	if want := int64(2 * 3); total != want { // 2 points × 3 functions
		t.Fatalf("workers completed %d tasks, want %d", total, want)
	}

	// The task events name their workers, and the fabric metrics and
	// health surface are live.
	resp, evData := getBody(t, ts.URL+job.EventsURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if !strings.Contains(string(evData), `"type":"task"`) {
		t.Fatalf("no task events in distributed job stream:\n%s", evData)
	}
	resp, m := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if !strings.Contains(string(m), `pathflow_fabric_tasks_total{state="done"} 6`) {
		t.Fatalf("fabric metrics missing done count:\n%s", m)
	}
	resp, h := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var health Health
	if err := json.Unmarshal(h, &health); err != nil {
		t.Fatal(err)
	}
	if health.Fabric == nil {
		t.Fatalf("healthz has no fabric section: %s", h)
	}
}

func TestJobResultEndpointStates(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	resp, _ := getBody(t, ts.URL+"/v1/jobs/job-999/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result of unknown job = %d, want 404", resp.StatusCode)
	}

	// An analyze job's result endpoint returns the bare AnalyzeResult.
	resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", analyzeBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	resp, rdata := getBody(t, fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, job.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, rdata)
	}
	var ar AnalyzeResult
	if err := json.Unmarshal(rdata, &ar); err != nil {
		t.Fatalf("result payload is not an AnalyzeResult: %v\n%s", err, rdata)
	}
	if ar.Program == "" || len(ar.Functions) == 0 {
		t.Fatalf("result payload empty: %s", rdata)
	}
}
