package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathflow/internal/engine"
)

// testSrc is a small multi-function program whose main and helper
// qualify under the default knobs (same shape as the engine's fixture):
// a biased branch in helper makes s=4 a hot-path constant.
const testSrc = `
func helper(k) {
	m = input() % 10;
	if (m < 9) { s = 4; } else { s = input() % 16; }
	return k * s + s / 2;
}
func cold(k) {
	return k * 31 % 17;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i);
		i = i + 1;
	}
	if (arg(5) == 99) { t = t + cold(t); }
	print(t);
}
`

func analyzeBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(AnalyzeRequest{
		TargetSpec: TargetSpec{Source: testSrc, Args: []int64{120}},
		Options:    &OptionsSpec{CA: 0.97, CR: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeJob(t *testing.T, data []byte) JobJSON {
	t.Helper()
	var j JobJSON
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("decoding job JSON: %v\n%s", err, data)
	}
	return j
}

// mustNew builds a server, failing the test on a cache-open error.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// --- Round trip -----------------------------------------------------------

func TestAnalyzeRoundTrip(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", analyzeBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	job := decodeJob(t, data)
	if job.State != JobDone {
		t.Fatalf("job state = %q (error %+v)", job.State, job.Error)
	}
	if job.Result == nil || job.Metrics == nil {
		t.Fatal("done job missing result or metrics")
	}
	if len(job.Result.Functions) != 3 {
		t.Fatalf("got %d functions, want 3", len(job.Result.Functions))
	}
	byName := map[string]FuncSummary{}
	for _, f := range job.Result.Functions {
		byName[f.Name] = f
	}
	if !byName["main"].Qualified || !byName["helper"].Qualified {
		t.Errorf("main/helper should qualify: %+v", job.Result.Functions)
	}
	if byName["helper"].HPGNodes <= byName["helper"].Nodes {
		t.Errorf("helper HPG did not grow: %+v", byName["helper"])
	}
	if len(byName["helper"].Consts) == 0 {
		t.Error("helper should expose hot-path constants")
	}
	if job.Metrics.StageRuns == 0 || job.Metrics.WallMS <= 0 {
		t.Errorf("metrics not populated: %+v", job.Metrics)
	}

	// The async flavor: 202 + pollable job.
	resp, data = postJSON(t, ts.URL+"/v1/analyze", analyzeBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d, body %s", resp.StatusCode, data)
	}
	var ref JobRef
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}
	j := srv.jobs.Get(ref.JobID)
	if j == nil {
		t.Fatalf("job %q not registered", ref.JobID)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	_, data = getBody(t, ts.URL+ref.StatusURL)
	if got := decodeJob(t, data); got.State != JobDone {
		t.Fatalf("polled state = %q", got.State)
	}
}

// TestClientsAndVerifyOverHTTP exercises the OptionsSpec extensions:
// extra data-flow clients and the precision differential oracle are
// selectable per request, their stages show up in the job metrics, and
// an unknown client name maps to a 400 with the CLI's hint text.
func TestClientsAndVerifyOverHTTP(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	body, err := json.Marshal(AnalyzeRequest{
		TargetSpec: TargetSpec{Source: testSrc, Args: []int64{120}},
		Options:    &OptionsSpec{CA: 0.97, CR: 0.95, Clients: "all", Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.State != JobDone {
		t.Fatalf("job state = %q (error %+v)", job.State, job.Error)
	}
	if got := job.Result.Options; got.Clients != "liveness,availexpr" || !got.Verify {
		t.Errorf("result options = %+v; clients/verify not round-tripped", got)
	}
	for _, stage := range []string{"liveness", "availexpr", "check"} {
		st, ok := job.Metrics.Stages[stage]
		if !ok || st.Runs == 0 {
			t.Errorf("stage %q missing from job metrics: %+v", stage, job.Metrics.Stages)
		}
	}

	// Unknown client → 400 carrying engine.UnknownClientError's hint.
	resp, data = postJSON(t, ts.URL+"/v1/analyze",
		[]byte(`{"program": "compress", "options": {"ca": 0.97, "cr": 0.95, "clients": "bogus"}}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad client status = %d, body %s", resp.StatusCode, data)
	}
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, data)
	}
	wantHint := (&engine.UnknownClientError{Name: "bogus"}).Hint()
	if eb.Hint != wantHint {
		t.Errorf("hint = %q, want the CLI's %q", eb.Hint, wantHint)
	}

	// Unknown kernel → 400 carrying engine.UnknownKernelError's hint,
	// verbatim the line the CLI prints.
	resp, data = postJSON(t, ts.URL+"/v1/analyze",
		[]byte(`{"program": "compress", "options": {"ca": 0.97, "cr": 0.95, "kernel": "dense"}}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kernel status = %d, body %s", resp.StatusCode, data)
	}
	eb = ErrorBody{}
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, data)
	}
	wantHint = (&engine.UnknownKernelError{Name: "dense"}).Hint()
	if eb.Hint != wantHint {
		t.Errorf("kernel hint = %q, want the CLI's %q", eb.Hint, wantHint)
	}
}

// --- Satellite: concurrent requests share the cache, byte-identically ----

func TestConcurrentRequestsByteIdenticalAndCacheShared(t *testing.T) {
	body := analyzeBody(t)

	// Reference server: one request, record how much unique work (cache
	// misses) a solo run performs.
	ref := mustNew(t, Config{})
	tsRef := httptest.NewServer(ref.Handler())
	resp, data := postJSON(t, tsRef.URL+"/v1/analyze?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ref status = %d: %s", resp.StatusCode, data)
	}
	refJob := decodeJob(t, data)
	soloMisses := ref.Engine().CacheStats().Misses
	tsRef.Close()
	ref.jobs.Shutdown()
	if soloMisses == 0 {
		t.Fatal("solo run recorded no cache misses; fixture too small")
	}

	// Test server: two overlapping identical requests.
	srv := mustNew(t, Config{MaxJobs: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	var wg sync.WaitGroup
	results := make([][]byte, 2)
	metrics := make([]*JobMetrics, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// No t.* calls in here — collect errors for the main goroutine.
			resp, err := http.Post(ts.URL+"/v1/analyze?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			var job JobJSON
			if err := json.Unmarshal(buf.Bytes(), &job); err != nil {
				errs[i] = err
				return
			}
			if job.State != JobDone {
				errs[i] = fmt.Errorf("state %q: %+v", job.State, job.Error)
				return
			}
			res, err := json.Marshal(job.Result)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res
			metrics[i] = job.Metrics
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Byte-identical results, and identical to the solo run's.
	if !bytes.Equal(results[0], results[1]) {
		t.Errorf("overlapping identical requests returned different results:\n%s\n---\n%s",
			results[0], results[1])
	}
	refBytes, err := json.Marshal(refJob.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(results[0], refBytes) {
		t.Errorf("result differs from solo run:\n%s\n---\n%s", results[0], refBytes)
	}

	// Single-flight: two overlapping jobs perform exactly one job's worth
	// of unique work — the same miss count as the solo server.
	st := srv.Engine().CacheStats()
	if st.Misses != soloMisses {
		t.Errorf("overlapping pair misses = %d, want %d (single-flight should not double work)",
			st.Misses, soloMisses)
	}
	if st.Hits == 0 {
		t.Error("overlapping pair recorded no cache hits")
	}
	if metrics[0].StageCacheHits+metrics[1].StageCacheHits == 0 {
		t.Errorf("neither job observed cache sharing: %+v / %+v", metrics[0], metrics[1])
	}

	// A repeat request replays entirely from cache: no new misses, every
	// stage a hit, the training profile served from the memo.
	resp, data = postJSON(t, ts.URL+"/v1/analyze?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d: %s", resp.StatusCode, data)
	}
	rep := decodeJob(t, data)
	if got := srv.Engine().CacheStats().Misses; got != soloMisses {
		t.Errorf("repeat request added misses: %d -> %d", soloMisses, got)
	}
	if rep.Metrics.StageCacheHits != rep.Metrics.StageRuns {
		t.Errorf("repeat request not fully cached: %d/%d stages hit",
			rep.Metrics.StageCacheHits, rep.Metrics.StageRuns)
	}
	if !rep.Metrics.ProfileCached {
		t.Error("repeat request re-ran the training profile")
	}
	if got, err := json.Marshal(rep.Result); err != nil || !bytes.Equal(got, refBytes) {
		t.Errorf("cached result differs from computed result (err=%v)", err)
	}
}

// --- Satellite: graceful shutdown ----------------------------------------

func TestGracefulShutdownCancelsInFlight(t *testing.T) {
	srv := mustNew(t, Config{MaxJobs: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.hookStage = func(engine.StageEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Job 1 runs (and blocks mid-stage on the hook); job 2 stays queued
	// behind MaxJobs=1.
	resp, data := postJSON(t, ts.URL+"/v1/analyze", analyzeBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", resp.StatusCode, data)
	}
	var ref1 JobRef
	if err := json.Unmarshal(data, &ref1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job 1 never reached a pipeline stage")
	}
	_, data = postJSON(t, ts.URL+"/v1/analyze", analyzeBody(t))
	var ref2 JobRef
	if err := json.Unmarshal(data, &ref2); err != nil {
		t.Fatal(err)
	}

	// Initiate the drain: cancel every job context, then unblock the
	// stage observer so job 1 can observe its dead context.
	srv.jobs.stop()
	close(release)
	done := make(chan struct{})
	go func() { srv.jobs.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not drain")
	}

	job1, job2 := srv.jobs.Get(ref1.JobID), srv.jobs.Get(ref2.JobID)
	if job1.State() != JobCanceled {
		t.Fatalf("in-flight job state = %q, err = %v", job1.State(), job1.Err())
	}
	// The in-flight job must carry engine provenance: a StageError whose
	// cause is context.Canceled.
	if !engineCanceled(job1.Err()) {
		t.Errorf("in-flight job error lacks StageError/context.Canceled provenance: %v", job1.Err())
	}
	var se *engine.StageError
	if errors.As(job1.Err(), &se) && (se.Stage == "" || se.Func == "") {
		t.Errorf("StageError missing provenance: %+v", se)
	}
	if job2.State() != JobCanceled || !errors.Is(job2.Err(), context.Canceled) {
		t.Errorf("queued job: state %q err %v, want canceled", job2.State(), job2.Err())
	}

	// The job's event stream is sealed with a terminal event.
	evs, _, closed := job1.events.since(0)
	if !closed {
		t.Error("event log not sealed after shutdown")
	}
	if len(evs) == 0 || evs[len(evs)-1].Type != "end" || evs[len(evs)-1].State != JobCanceled {
		t.Errorf("missing terminal cancel event: %+v", evs)
	}

	// The shared cache survives the drain: failed computations are
	// evicted, so the engine still produces correct results.
	srv.hookStage = nil
	rt, err := resolveTarget(&TargetSpec{Source: testSrc, Args: []int64{120}})
	if err != nil {
		t.Fatal(err)
	}
	train, _, _, err := srv.memo.trainProfile(rt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Engine().AnalyzeProgram(context.Background(), rt.prog, train, engine.DefaultOptions())
	if err != nil {
		t.Fatalf("engine unusable after drained shutdown: %v", err)
	}
	if !res.Funcs["main"].Qualified() {
		t.Error("post-shutdown analysis lost qualification")
	}
}

func TestServeDrainsOnContextCancel(t *testing.T) {
	srv := mustNew(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	listening := make(chan net.Addr, 1)
	go func() {
		errc <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { listening <- a })
	}()
	var base string
	select {
	case a := <-listening:
		base = "http://" + a.String()
	case <-time.After(30 * time.Second):
		t.Fatal("server never listened")
	}
	if resp, _ := getBody(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after ctx cancel")
	}
}

// --- Satellite: structured error mapping ---------------------------------

func TestErrorMapping(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	post := func(body string) (*http.Response, ErrorBody) {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/analyze", []byte(body))
		var eb ErrorBody
		if err := json.Unmarshal(data, &eb); err != nil {
			t.Fatalf("error body not JSON: %v\n%s", err, data)
		}
		return resp, eb
	}

	// Unknown benchmark name → 404 with the suite-listing hint.
	resp, eb := post(`{"program": "nosuch"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown program status = %d", resp.StatusCode)
	}
	if !strings.Contains(eb.Error, "unknown benchmark") || !strings.Contains(eb.Hint, "known benchmarks:") {
		t.Errorf("unhelpful 404 body: %+v", eb)
	}
	if eb.RequestID == "" {
		t.Error("error body missing request_id")
	}

	// Invalid options → 400 with exactly the hint text the CLI prints.
	resp, eb = post(`{"program": "compress", "options": {"ca": 1.5, "cr": 0.95}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad CA status = %d", resp.StatusCode)
	}
	wantHint := (&engine.InvalidOptionsError{Field: "CA", Value: 1.5}).Hint()
	if eb.Hint != wantHint {
		t.Errorf("hint = %q, want the CLI's %q", eb.Hint, wantHint)
	}

	// Mutually exclusive / missing target, malformed JSON, unknown
	// fields, uncompilable source → 400.
	for _, body := range []string{
		`{"program": "compress", "source": "func main() {}"}`,
		`{}`,
		`{not json`,
		`{"program": "compress", "typo_field": 1}`,
		`{"source": "func main( {"}`,
	} {
		if resp, _ := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}

	// Sweep with no points → 400.
	resp, data := postJSON(t, ts.URL+"/v1/sweep", []byte(`{"program": "compress", "points": []}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep status = %d: %s", resp.StatusCode, data)
	}

	// Unknown job → 404.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", resp.StatusCode)
	}
}

// --- Sweep + events stream ------------------------------------------------

func TestSweepAndEventStream(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	body, err := json.Marshal(SweepRequest{
		TargetSpec: TargetSpec{Source: testSrc, Args: []int64{120}},
		Points:     []OptionsSpec{{CA: 0, CR: 0.95}, {CA: 0.97, CR: 0.95}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/sweep?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.State != JobDone || len(job.Results) != 2 {
		t.Fatalf("sweep state %q, %d results", job.State, len(job.Results))
	}
	funcOf := func(r *AnalyzeResult, name string) FuncSummary {
		for _, f := range r.Functions {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("no function %q", name)
		return FuncSummary{}
	}
	if funcOf(job.Results[0], "main").Qualified {
		t.Error("CA=0 point must not qualify")
	}
	if !funcOf(job.Results[1], "main").Qualified {
		t.Error("CA=0.97 point must qualify")
	}

	// Replay the finished job's NDJSON event stream: lifecycle events,
	// the profile event, per-stage events tagged with their sweep point,
	// and the terminal event.
	resp, data = getBody(t, ts.URL+job.EventsURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Type != "state" || events[0].State != JobQueued {
		t.Errorf("first event = %+v, want queued", events[0])
	}
	if last := events[len(events)-1]; last.Type != "end" || last.State != JobDone {
		t.Errorf("last event = %+v, want end/done", last)
	}
	counts := map[string]int{}
	points := map[int]bool{}
	sawProfile := false
	for _, ev := range events {
		counts[ev.Type]++
		if ev.Type == "stage" {
			points[ev.Point] = true
			if ev.Stage == "" || ev.Func == "" {
				t.Errorf("stage event missing provenance: %+v", ev)
			}
		}
		if ev.Type == "profile" {
			sawProfile = true
		}
	}
	if counts["stage"] == 0 || !sawProfile {
		t.Errorf("stream missing stage/profile events: %v", counts)
	}
	if !points[0] || !points[1] {
		t.Errorf("stage events not tagged with both sweep points: %v", points)
	}

	// SSE flavor.
	req, err := http.NewRequest("GET", ts.URL+job.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sbuf bytes.Buffer
	if _, err := sbuf.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type = %q", ct)
	}
	if !strings.Contains(sbuf.String(), "data: {") {
		t.Errorf("SSE stream has no data frames:\n%s", sbuf.String())
	}
}

// TestLiveEventStream subscribes before the job runs and sees events
// arrive while it is in flight (not just a post-hoc replay).
func TestLiveEventStream(t *testing.T) {
	srv := mustNew(t, Config{MaxJobs: 1, Workers: 1})
	gate := make(chan struct{})
	var once sync.Once
	srv.hookStage = func(engine.StageEvent) {
		once.Do(func() { <-gate })
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	_, data := postJSON(t, ts.URL+"/v1/analyze", analyzeBody(t))
	var ref JobRef
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}

	// Subscribe while the first stage is still blocked on the gate.
	resp, err := http.Get(ts.URL + ref.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	// The queued/running events arrive before any stage completes.
	var got []string
	deadline := time.After(30 * time.Second)
	collect := func(n int) {
		for len(got) < n {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("stream ended early; got %v", got)
				}
				got = append(got, line)
			case <-deadline:
				t.Fatalf("timed out; got %v", got)
			}
		}
	}
	collect(2)
	if !strings.Contains(got[0], `"queued"`) || !strings.Contains(got[1], `"running"`) {
		t.Fatalf("lifecycle prefix wrong: %v", got)
	}
	close(gate) // let the pipeline proceed
	job := srv.jobs.Get(ref.JobID)
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	// Drain the remainder; the stream must terminate on its own.
	for line := range lines {
		got = append(got, line)
	}
	if !strings.Contains(got[len(got)-1], `"end"`) {
		t.Errorf("stream did not close with the terminal event: %v", got[len(got)-1])
	}
}

// --- Deadlines and cancellation ------------------------------------------

func TestJobDeadline(t *testing.T) {
	srv := mustNew(t, Config{MaxJobs: 1, Workers: 1})
	srv.hookStage = func(engine.StageEvent) { time.Sleep(5 * time.Millisecond) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	body, err := json.Marshal(AnalyzeRequest{
		TargetSpec: TargetSpec{Source: testSrc, Args: []int64{120}},
		TimeoutMS:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	job := decodeJob(t, data)
	if job.State != JobFailed {
		t.Fatalf("state = %q, want failed (deadline)", job.State)
	}
	if job.Error == nil || !strings.Contains(job.Error.Hint, "deadline") {
		t.Errorf("deadline failure lacks hint: %+v", job.Error)
	}
	if !errors.Is(srv.jobs.Get(job.ID).Err(), context.DeadlineExceeded) {
		t.Errorf("stored error is not DeadlineExceeded: %v", srv.jobs.Get(job.ID).Err())
	}
}

func TestCancelEndpoint(t *testing.T) {
	srv := mustNew(t, Config{MaxJobs: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.hookStage = func(engine.StageEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() { srv.jobs.Shutdown() }()
	defer func() { // release before Shutdown so the drain can finish
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	_, data := postJSON(t, ts.URL+"/v1/analyze", analyzeBody(t))
	var ref1 JobRef
	if err := json.Unmarshal(data, &ref1); err != nil {
		t.Fatal(err)
	}
	<-started
	// A queued job (slot held by job 1) cancels instantly.
	_, data = postJSON(t, ts.URL+"/v1/analyze", analyzeBody(t))
	var ref2 JobRef
	if err := json.Unmarshal(data, &ref2); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+ref2.JobID+"/cancel", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	job2 := srv.jobs.Get(ref2.JobID)
	select {
	case <-job2.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("queued job did not cancel")
	}
	if job2.State() != JobCanceled {
		t.Errorf("state = %q, want canceled", job2.State())
	}
	close(release)
	job1 := srv.jobs.Get(ref1.JobID)
	select {
	case <-job1.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job 1 did not finish")
	}
	if job1.State() != JobDone {
		t.Errorf("job 1 state = %q, err %v", job1.State(), job1.Err())
	}
}

// --- Operational endpoints ------------------------------------------------

func TestHealthzAndMetrics(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Shutdown()

	// Run one job so counters are non-trivial.
	if resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", analyzeBody(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, data)
	}

	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.JobsAccepted != 1 || h.JobsInFlight != 0 {
		t.Errorf("health = %+v", h)
	}
	if h.EngineCache.Misses == 0 {
		t.Errorf("health cache stats empty: %+v", h.EngineCache)
	}

	resp, data = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"pathflow_jobs_finished_total{state=\"done\"} 1",
		"pathflow_jobs_in_flight 0",
		"pathflow_engine_cache_misses_total",
		"pathflow_stage_seconds_bucket{stage=\"baseline\",le=\"+Inf\"}",
		"pathflow_stage_seconds_count{stage=\"trace\"}",
		"pathflow_profile_runs_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}

	resp, data = getBody(t, ts.URL+"/v1/programs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("programs status = %d", resp.StatusCode)
	}
	var progs []ProgramInfo
	if err := json.Unmarshal(data, &progs); err != nil {
		t.Fatal(err)
	}
	if len(progs) != 7 {
		t.Errorf("got %d programs, want the 7-benchmark suite", len(progs))
	}

	resp, data = getBody(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs status = %d", resp.StatusCode)
	}
	var jobs []JobJSON
	if err := json.Unmarshal(data, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Result != nil {
		t.Errorf("job listing should summarize without results: %+v", jobs)
	}
}

// --- Satellite: persistent cache across server restarts -------------------

// TestRestartWarmStartsFromDisk models a daemon restart: a second server
// on the same CacheDir must answer a repeat request from the persistent
// tier, observable in job metrics, event provenance, /healthz, and
// /metrics — with a byte-identical result.
func TestRestartWarmStartsFromDisk(t *testing.T) {
	dir := t.TempDir()
	body := analyzeBody(t)

	run := func(srv *Server) (JobJSON, string) {
		t.Helper()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.jobs.Shutdown()
		resp, data := postJSON(t, ts.URL+"/v1/analyze?wait=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: %d %s", resp.StatusCode, data)
		}
		job := decodeJob(t, data)
		if job.State != JobDone {
			t.Fatalf("job state = %q (%+v)", job.State, job.Error)
		}
		_, mdata := getBody(t, ts.URL+"/metrics")
		return job, string(mdata)
	}

	// First process: computes everything, writes through to disk.
	jobA, metricsA := run(mustNew(t, Config{CacheDir: dir}))
	if !strings.Contains(metricsA, "pathflow_diskcache_writes_total") {
		t.Fatalf("disk tier not exported in /metrics:\n%s", metricsA)
	}
	if jobA.Metrics.StageDiskHits != 0 {
		t.Errorf("cold server claims disk hits: %+v", jobA.Metrics)
	}

	// Second process, same directory: the repeat request revives every
	// stage from disk instead of recomputing.
	srvB := mustNew(t, Config{CacheDir: dir})
	jobB, metricsB := run(srvB)
	if jobB.Metrics.StageDiskHits == 0 {
		t.Fatalf("restarted server recomputed instead of reading disk: %+v", jobB.Metrics)
	}
	if jobB.Metrics.StageCacheHits != jobB.Metrics.StageRuns {
		t.Errorf("restart not fully cached: %d/%d stages hit",
			jobB.Metrics.StageCacheHits, jobB.Metrics.StageRuns)
	}
	st := srvB.Engine().CacheStats()
	if !st.DiskEnabled || st.Disk.Hits == 0 {
		t.Errorf("engine disk stats show no hits: %+v", st)
	}
	for _, want := range []string{
		"pathflow_diskcache_hits_total",
		"pathflow_diskcache_entries",
		"pathflow_diskcache_decode_seconds_bucket",
		`pathflow_stage_disk_hits_total{stage="analyze"}`,
	} {
		if !strings.Contains(metricsB, want) {
			t.Errorf("restart /metrics missing %q", want)
		}
	}
	if strings.Contains(metricsB, "pathflow_diskcache_hits_total 0\n") {
		t.Error("restart /metrics reports zero disk hits")
	}

	// Stage events carry disk provenance.
	job := srvB.jobs.Get(jobB.ID)
	evs, _, _ := job.events.since(0)
	sawDisk := false
	for _, ev := range evs {
		if ev.Type == "stage" && ev.Source == "disk" {
			sawDisk = true
		}
	}
	if !sawDisk {
		t.Error("no stage event tagged with disk provenance")
	}

	// And the answers agree byte for byte.
	a, err := json.Marshal(jobA.Result)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(jobB.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("restarted server returned a different result:\n%s\n---\n%s", a, b)
	}
}
