package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathflow/internal/bench"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/fabric"
	"pathflow/internal/interp"
	"pathflow/internal/lang"
)

// Config configures a Server. The zero value is usable: NumCPU engine
// workers, 2 concurrent jobs, artifact cache on, no default deadline.
type Config struct {
	// Workers bounds each job's parallel function analyses (engine
	// workers); <= 0 means NumCPU.
	Workers int
	// MaxJobs bounds concurrently *running* jobs; further submissions
	// queue. <= 0 means 2.
	MaxJobs int
	// NoCache disables the shared artifact cache (for A/B measurement;
	// the whole point of the service is leaving it on).
	NoCache bool
	// CacheDir, when non-empty, attaches the engine's persistent cache
	// tier: artifacts are written through to disk and survive restarts,
	// so a restarted daemon answers repeat requests by decoding instead
	// of recomputing.
	CacheDir string
	// CacheMaxBytes bounds the disk tier (<= 0 means unbounded).
	CacheMaxBytes int64
	// MemoryMaxBytes bounds the in-memory cache tier's estimated
	// footprint, giving a long-lived server a hard memory ceiling
	// (<= 0 means unbounded).
	MemoryMaxBytes int64
	// DefaultTimeout is the per-job deadline applied when a request
	// does not set timeout_ms; 0 means no deadline.
	DefaultTimeout time.Duration
	// Fabric mounts the distributed-analysis coordinator (the
	// /fabric/v1/* endpoints) and enables "distributed": true sweeps.
	// Workers join with `pathflow worker -join`.
	Fabric bool
	// FabricLeaseTTL is how long a worker lease survives without a
	// heartbeat (0 means the fabric default, 10s).
	FabricLeaseTTL time.Duration
	// FabricMaxAttempts bounds per-task attempts (0 means the fabric
	// default, 3).
	FabricMaxAttempts int
}

// Server is the long-running analysis service. One engine — and
// therefore one single-flight artifact cache — is shared by every job,
// so repeated or overlapping requests for the same (function, profile,
// knob) artifacts are served from memory instead of being recomputed.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	jobs    *Manager
	metrics *serverMetrics
	mux     *http.ServeMux
	reqSeq  atomic.Int64

	// memo is the program/profile memo shared by every job.
	memo progMemo

	// streams holds each target's live profile stream (decaying
	// accumulators + drift baseline), keyed like the memo.
	streamsMu sync.Mutex
	streams   map[string]*targetStream

	// fabric is the distributed-analysis coordinator, or nil when
	// Config.Fabric is off.
	fabric *fabric.Coordinator

	// hookStage, when non-nil, observes every engine StageEvent after
	// the server's own bookkeeping. Test seam; set before serving.
	hookStage func(engine.StageEvent)
}

// progEntry is one memoized (program, training profile) pair.
// ready is closed when prog/train/err are final (single-flight).
type progEntry struct {
	ready     chan struct{}
	prog      *cfg.Program
	train     *bl.ProgramProfile
	profileMS float64
	err       error
}

// progMemo memoizes training profiles keyed by the full target spec,
// single-flight so overlapping requests share one training run. It is
// used by the server and, independently, by each fabric worker's
// TaskRunner — a worker pays each program's training run once, which is
// exactly what the scheduler's affinity preference optimizes for.
type progMemo struct {
	mu       sync.Mutex
	programs map[string]*progEntry
}

func newProgMemo() progMemo { return progMemo{programs: map[string]*progEntry{}} }

// New returns a server with a fresh engine. It fails only when a
// configured CacheDir cannot be opened.
func New(cfg Config) (*Server, error) {
	eng, err := engine.Open(engine.Config{
		Workers:        cfg.Workers,
		Cache:          !cfg.NoCache,
		MemoryMaxBytes: cfg.MemoryMaxBytes,
		CacheDir:       cfg.CacheDir,
		CacheMaxBytes:  cfg.CacheMaxBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: opening cache dir: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		metrics: newServerMetrics(),
		memo:    newProgMemo(),
		streams: map[string]*targetStream{},
	}
	s.jobs = newManager(cfg.MaxJobs, s.metrics)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/profiles", s.handleProfileIngest)
	s.mux.HandleFunc("GET /v1/profiles", s.handleProfileState)
	s.mux.HandleFunc("GET /v1/programs", s.handlePrograms)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Fabric {
		s.fabric = fabric.NewCoordinator(fabric.Config{
			LeaseTTL:    cfg.FabricLeaseTTL,
			MaxAttempts: cfg.FabricMaxAttempts,
		}, eng.Disk())
		s.fabric.Mount(s.mux)
	}
	return s, nil
}

// Fabric exposes the coordinator (nil when Config.Fabric is off).
func (s *Server) Fabric() *fabric.Coordinator { return s.fabric }

// Engine exposes the shared engine (cumulative CacheStats and friends).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Jobs exposes the job manager.
func (s *Server) Jobs() *Manager { return s.jobs }

// Handler returns the service's HTTP handler (request-ID middleware
// included), for tests and embedding.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.request()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		s.mux.ServeHTTP(w, r.WithContext(withRequestID(r.Context(), id)))
	})
}

type requestIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// Serve runs the HTTP service on l until ctx is cancelled, then shuts
// down gracefully: jobs are drained first (their contexts are cancelled,
// in-flight analyses stop at the next stage boundary with
// context.Canceled provenance, metric streams seal and finish), then the
// listener closes once active connections complete.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		s.jobs.Shutdown()
		s.saveStreams()
		return err
	case <-ctx.Done():
	}
	// Drain jobs before the HTTP shutdown: event streams follow job
	// lifetimes, so cancelling jobs is what lets streaming connections
	// (and hs.Shutdown) complete.
	s.jobs.Shutdown()
	// Persist the live profile streams so accumulated counts and
	// ingestion sequence numbers survive the restart.
	s.saveStreams()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // http.ErrServerClosed
	return nil
}

// ListenAndServe listens on addr (":0" picks an ephemeral port), reports
// the bound address through onListen (may be nil), and serves until ctx
// is cancelled.
func (s *Server) ListenAndServe(ctx context.Context, addr string, onListen func(net.Addr)) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(l.Addr())
	}
	return s.Serve(ctx, l)
}

// --- Target resolution ----------------------------------------------------

// resolvedTarget is a validated analysis target: the compiled program,
// its display name, the memo key, and a factory for fresh training-run
// interpreter options (profiling consumes the input stream).
type resolvedTarget struct {
	key   string
	name  string
	prog  *cfg.Program
	fresh func() interp.Options
}

// resolveTarget validates the spec and compiles (or looks up) the
// program. The server calls it synchronously at submit time so bad
// requests fail with 400/404 before a job is created (the expensive
// training run happens later, inside the job); fabric workers call it
// per leased task.
func resolveTarget(spec *TargetSpec) (*resolvedTarget, error) {
	switch {
	case spec.Program != "" && spec.Source != "":
		return nil, errors.New(`serve: "program" and "source" are mutually exclusive`)
	case spec.Program == "" && spec.Source == "":
		return nil, errors.New(`serve: one of "program" (a benchmark name) or "source" (inline text) is required`)
	}
	if spec.Program != "" {
		b, err := bench.Get(spec.Program)
		if err != nil {
			return nil, err
		}
		prog, err := b.Program()
		if err != nil {
			return nil, err
		}
		fresh := b.TrainOptions
		if spec.Ref {
			fresh = b.RefOptions
		}
		return &resolvedTarget{
			key:   fmt.Sprintf("bench\x00%s\x00ref=%v", b.Name, spec.Ref),
			name:  b.Name,
			prog:  prog,
			fresh: fresh,
		}, nil
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling inline source: %w", err)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	inputLen := spec.InputLen
	if inputLen <= 0 {
		inputLen = 4096
	}
	args := append([]int64(nil), spec.Args...)
	fresh := func() interp.Options {
		return interp.Options{
			Args:  args,
			Input: &interp.SliceInput{Values: bench.InputValues(seed, inputLen)},
		}
	}
	return &resolvedTarget{
		key:   fmt.Sprintf("src\x00%s\x00args=%v seed=%d len=%d", spec.Source, args, seed, inputLen),
		name:  "inline",
		prog:  prog,
		fresh: fresh,
	}, nil
}

// trainProfile returns the target's training profile, computing it at
// most once per distinct target (single-flight: overlapping jobs for the
// same target share one training run). The second return is the compute
// cost in milliseconds; the third reports a memo hit.
func (m *progMemo) trainProfile(rt *resolvedTarget) (*bl.ProgramProfile, float64, bool, error) {
	return m.trainProfileVia(rt, func() (*bl.ProgramProfile, error) {
		pp, _, err := bl.ProfileProgram(rt.prog, rt.fresh())
		return pp, err
	})
}

// trainProfileVia is trainProfile with the compute step swapped out —
// the fabric worker path consults the coordinator's profile exchange
// before falling back to a local training run.
func (m *progMemo) trainProfileVia(rt *resolvedTarget, compute func() (*bl.ProgramProfile, error)) (*bl.ProgramProfile, float64, bool, error) {
	m.mu.Lock()
	e, ok := m.programs[rt.key]
	if ok {
		m.mu.Unlock()
		<-e.ready
		return e.train, e.profileMS, true, e.err
	}
	e = &progEntry{ready: make(chan struct{}), prog: rt.prog}
	m.programs[rt.key] = e
	m.mu.Unlock()

	t0 := time.Now()
	e.train, e.err = compute()
	e.profileMS = durMS(time.Since(t0))
	close(e.ready)
	if e.err != nil {
		// Evict failures so a later identical request can retry.
		m.mu.Lock()
		delete(m.programs, rt.key)
		m.mu.Unlock()
		return nil, e.profileMS, false, e.err
	}
	return e.train, e.profileMS, false, nil
}

// --- Job execution --------------------------------------------------------

// observer fans engine stage events out to the service metrics and the
// job's event stream. point tags sweep points (0 for plain analyses).
func (s *Server) observer(job *Job, point int) func(engine.StageEvent) {
	return func(ev engine.StageEvent) {
		s.metrics.observeStage(ev)
		job.events.append(Event{
			Type:       "stage",
			Job:        job.id,
			Time:       time.Now(),
			Point:      point,
			Func:       ev.Func,
			Stage:      string(ev.Stage),
			DurationMS: durMS(ev.Duration),
			DecodeMS:   durMS(ev.Decode),
			Cached:     ev.Cached,
			Replayed:   ev.Cached,
			Source:     ev.Source.String(),
		})
		if h := s.hookStage; h != nil {
			h(ev)
		}
	}
}

// runPoints is the job body shared by analyze (one point) and sweep
// (many): profile once, then run each point under a stage observer,
// accumulating deterministic results and nondeterministic metrics.
func (s *Server) runPoints(ctx context.Context, job *Job, rt *resolvedTarget, points []engine.Options) error {
	t0 := time.Now()
	train, profMS, memoHit, err := s.memo.trainProfile(rt)
	if err != nil {
		return err
	}
	s.metrics.observeProfile(time.Duration(profMS*float64(time.Millisecond)), memoHit)
	job.events.append(Event{
		Type: "profile", Job: job.id, Time: time.Now(),
		DurationMS: profMS, Cached: memoHit,
	})
	if err := ctx.Err(); err != nil {
		// The training run is not cancellable; honor a cancellation that
		// arrived while it ran before starting the engine.
		return err
	}

	jm := &JobMetrics{ProfileMS: profMS, ProfileCached: memoHit}
	var results []*AnalyzeResult
	for i, o := range points {
		octx := engine.WithStageObserver(ctx, s.observer(job, i))
		res, err := s.eng.AnalyzeProgram(octx, rt.prog, train, o)
		if err != nil {
			return err
		}
		jm.addProgram(res)
		results = append(results, buildResult(rt.name, o, res))
	}
	jm.WallMS = durMS(time.Since(t0))
	jm.EngineCache = cacheJSON(s.eng.CacheStats())
	if job.kind == "sweep" {
		job.setResult(nil, results, jm)
	} else {
		job.setResult(results[0], nil, jm)
	}
	return nil
}

// --- Handlers -------------------------------------------------------------

// decodeBody strictly decodes a JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

func (s *Server) timeoutFor(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, requestID(r), http.StatusBadRequest, err)
		return
	}
	rt, err := resolveTarget(&req.TargetSpec)
	if err != nil {
		writeError(w, requestID(r), statusFor(err), err)
		return
	}
	o := engine.DefaultOptions()
	if req.Options != nil {
		o, err = req.Options.engine()
		if err != nil {
			writeError(w, requestID(r), http.StatusBadRequest, err)
			return
		}
	}
	if err := o.Validate(); err != nil {
		writeError(w, requestID(r), http.StatusBadRequest, err)
		return
	}
	run := s.runPoints
	if req.Live {
		run = s.runPointsLive
	}
	job := s.jobs.Submit("analyze", rt.name, s.timeoutFor(req.TimeoutMS), func(ctx context.Context, job *Job) error {
		return run(ctx, job, rt, []engine.Options{o})
	})
	s.respondSubmitted(w, r, job)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, requestID(r), http.StatusBadRequest, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, requestID(r), http.StatusBadRequest,
			errors.New(`serve: "points" must list at least one {ca, cr} pair`))
		return
	}
	rt, err := resolveTarget(&req.TargetSpec)
	if err != nil {
		writeError(w, requestID(r), statusFor(err), err)
		return
	}
	points := make([]engine.Options, len(req.Points))
	for i, p := range req.Points {
		points[i], err = p.engine()
		if err == nil {
			err = points[i].Validate()
		}
		if err != nil {
			writeError(w, requestID(r), http.StatusBadRequest,
				fmt.Errorf("serve: points[%d]: %w", i, err))
			return
		}
	}
	if req.Distributed {
		if req.Live {
			writeError(w, requestID(r), http.StatusBadRequest, errLiveDistributed)
			return
		}
		if s.fabric == nil {
			writeError(w, requestID(r), http.StatusBadRequest,
				errors.New(`serve: "distributed" requires the fabric coordinator; start serve with -fabric`))
			return
		}
		var baseline *cfg.Program
		if req.BaselineSource != "" {
			baseline, err = lang.Compile(req.BaselineSource)
			if err != nil {
				writeError(w, requestID(r), http.StatusBadRequest,
					fmt.Errorf("serve: compiling baseline_source: %w", err))
				return
			}
		}
		target := req.TargetSpec
		job := s.jobs.Submit("sweep", rt.name, s.timeoutFor(req.TimeoutMS), func(ctx context.Context, job *Job) error {
			return s.runPointsDistributed(ctx, job, rt, target, points, baseline)
		})
		s.respondSubmitted(w, r, job)
		return
	}
	run := s.runPoints
	if req.Live {
		run = s.runPointsLive
	}
	job := s.jobs.Submit("sweep", rt.name, s.timeoutFor(req.TimeoutMS), func(ctx context.Context, job *Job) error {
		return run(ctx, job, rt, points)
	})
	s.respondSubmitted(w, r, job)
}

// handleJobResult serves only the deterministic result payload of a
// finished job — no timings, no cache counters, no job envelope — so two
// runs of the same request (local or distributed) can be compared
// byte-for-byte with cmp.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	payload, ok := job.resultPayload()
	if !ok {
		writeError(w, requestID(r), http.StatusConflict,
			fmt.Errorf("serve: job %s is %s, not done", job.id, job.State()))
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

// respondSubmitted answers a submission: 202 + job reference, or — with
// ?wait=1 — blocks until the job finishes and returns its full record.
func (s *Server) respondSubmitted(w http.ResponseWriter, r *http.Request, job *Job) {
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, job.JSON(false))
		case <-r.Context().Done():
			// Client gave up; the job keeps running and remains pollable.
			writeError(w, requestID(r), http.StatusRequestTimeout, r.Context().Err())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, JobRef{
		JobID:     job.id,
		State:     string(job.State()),
		StatusURL: "/v1/jobs/" + job.id,
		EventsURL: "/v1/jobs/" + job.id + "/events",
		RequestID: requestID(r),
	})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	out := make([]JobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = j.JSON(true)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) *Job {
	job := s.jobs.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, requestID(r), http.StatusNotFound,
			fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job := s.jobOr404(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.JSON(false))
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.JSON(true))
}

// handleJobEvents streams the job's event log — NDJSON by default, SSE
// when the client asks for text/event-stream — replaying history first,
// then following live until the job reaches a terminal state.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	cursor := 0
	for {
		evs, changed, closed := job.events.since(cursor)
		for _, ev := range evs {
			line, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, line)
			} else {
				w.Write(line) //nolint:errcheck
				w.Write([]byte("\n"))
			}
		}
		cursor += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed && len(evs) == 0 {
			return
		}
		if closed {
			continue // drain whatever raced in before the seal
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	progs, err := Programs()
	if err != nil {
		writeError(w, requestID(r), http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, progs)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inFlight, accepted := s.metrics.snapshot()
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		JobsInFlight:  inFlight,
		JobsAccepted:  accepted,
		EngineCache:   cacheJSON(s.eng.CacheStats()),
	}
	if s.fabric != nil {
		pending, leased := s.fabric.Depth()
		h.Fabric = &FabricHealth{TasksPending: pending, TasksLeased: leased}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.eng.CacheStats())
	if s.fabric != nil {
		s.fabric.WriteMetrics(w)
	}
}
