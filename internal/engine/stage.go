package engine

import (
	"context"
	"fmt"
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/availexpr"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/feasible"
	"pathflow/internal/liveness"
	"pathflow/internal/profile"
	"pathflow/internal/reduce"
	"pathflow/internal/trace"
)

// StageName identifies one stage of the qualification pipeline.
type StageName string

// The pipeline stages, in execution order. Baseline is the CA = 0
// Wegman-Zadek analysis of the original graph; the remaining stages are
// the paper's select → automaton → trace → analyze → translate → reduce
// chain. Reduce includes the re-analysis of the reduced graph (the paper
// times them together, and the reduced solution is unusable without the
// reduced graph).
const (
	StageBaseline  StageName = "baseline"
	StageSelect    StageName = "select"
	StageAutomaton StageName = "automaton"
	StageTrace     StageName = "trace"
	StageAnalyze   StageName = "analyze"
	StageTranslate StageName = "translate"
	StageReduce    StageName = "reduce"
	// StageFeasible is the branch-correlation feasibility analysis
	// (Options.Feasible), run once per graph tier that needs a fresh
	// infeasible-edge set (CFG and HPG; the reduced tier recomputes its
	// mask inside the reduce stage).
	StageFeasible StageName = "feasible"
	// StageLiveness and StageAvailExpr are the optional client analyses
	// (Options.Clients), each run on every graph tier the pipeline
	// produced; StageCheck is the opt-in precision differential oracle
	// (Options.Verify).
	StageLiveness  StageName = "liveness"
	StageAvailExpr StageName = "availexpr"
	StageCheck     StageName = "check"
)

// StageOrder lists every stage in execution order. It is the single
// source of truth for stage enumeration: the CLI provenance table and
// the serving layer's metrics iterate it rather than keeping their own
// lists, so new stages appear everywhere by construction.
var StageOrder = []StageName{
	StageBaseline, StageSelect, StageAutomaton, StageTrace,
	StageAnalyze, StageTranslate, StageReduce,
	StageFeasible, StageLiveness, StageAvailExpr, StageCheck,
}

// PipelineStages is the prefix of StageOrder that forms the cached
// qualification pipeline — the stages with per-stage Merkle cache keys,
// and the domain of Delta's dirty-set prediction. Clients and the check
// oracle are excluded (memory-tier-only and uncached respectively).
var PipelineStages = StageOrder[:7]

// StageError is the structured error every pipeline failure is wrapped
// in: it names the owning stage and the function being analyzed, and
// unwraps to the underlying cause (including context.Canceled when a
// cancelled context stopped the stage).
type StageError struct {
	Stage StageName
	Func  string
	Err   error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("engine: %s: stage %s: %v", e.Func, e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Stage is one typed pipeline step: a pure function from its input
// artifact to its output artifact. Stages never observe engine state;
// the engine owns sequencing, cancellation, caching and metrics.
type Stage[In, Out any] struct {
	Name StageName
	Run  func(In) (Out, error)
}

// runStage executes st under ctx, records its duration into m, and wraps
// any failure (including cancellation observed before the stage starts)
// in a *StageError naming the stage and function.
func runStage[In, Out any](ctx context.Context, st Stage[In, Out], fname string, m *Metrics, in In) (Out, error) {
	var zero Out
	if err := ctx.Err(); err != nil {
		return zero, &StageError{Stage: st.Name, Func: fname, Err: err}
	}
	t0 := time.Now()
	out, err := st.Run(in)
	m.add(st.Name, time.Since(t0), 0, SourceComputed)
	if err != nil {
		return zero, &StageError{Stage: st.Name, Func: fname, Err: err}
	}
	return out, nil
}

// --- Typed stage artifacts ----------------------------------------------

// SelectIn feeds hot-path selection.
type SelectIn struct {
	Fn    *cfg.Func
	Train *bl.Profile
	CA    float64
}

// AutomatonIn feeds qualification-automaton construction.
type AutomatonIn struct {
	Fn  *cfg.Func
	R   map[cfg.EdgeID]bool
	Hot []bl.Path
}

// TraceIn feeds Holley-Rosen data-flow tracing.
type TraceIn struct {
	Fn   *cfg.Func
	Auto *automaton.Automaton
}

// AnalyzeIn feeds Wegman-Zadek constant propagation (baseline and HPG).
// Kernel selects the solver backend (packed arenas by default).
// Infeasible, when non-nil, is the tier's feasibility mask: the solve
// withholds facts along marked edges (Options.Feasible).
type AnalyzeIn struct {
	G          *cfg.Graph
	NumVars    int
	Kernel     dataflow.Kernel
	Infeasible []bool
}

// FeasibleIn feeds the branch-correlation feasibility analysis for one
// graph tier.
type FeasibleIn struct {
	G       *cfg.Graph
	NumVars int
}

// TranslateIn feeds profile translation onto an overlay graph.
type TranslateIn struct {
	Prof    *bl.Profile
	Orig    *cfg.Graph
	Overlay profile.Overlay
}

// ReduceIn feeds reduction; NumVars is needed to re-analyze the
// quotient. Feasible re-runs feasibility detection on the quotient
// graph and re-analyzes through the pruned view (the reduced tier's
// mask is recomputed rather than projected — Detect is deterministic
// and the quotient is a different graph than the HPG it came from).
type ReduceIn struct {
	HPG      *trace.HPG
	Sol      *constprop.Result
	Prof     *bl.Profile
	CR       float64
	NumVars  int
	Kernel   dataflow.Kernel
	Feasible bool
}

// ReduceOut is the reduction artifact: the quotient graph and its
// re-analyzed solution.
type ReduceOut struct {
	Red    *reduce.Reduced
	RedSol *constprop.Result
}

// ClientIn feeds the optional client analyses on one graph tier. Guide
// is the tier's constant-propagation solution: liveness is conditioned
// on its executable sub-graph (dead legs keep nothing alive), and
// available expressions intersects only over executable in-edges. U is
// the expression universe shared across tiers (required for
// ClientAvailExpr).
type ClientIn struct {
	G       *cfg.Graph
	NumVars int
	Guide   *dataflow.Solution
	U       *availexpr.Universe
	Kernel  dataflow.Kernel
}

// ClientOut bundles one tier's client-analysis results (fields are nil
// for clients that were not requested).
type ClientOut struct {
	Live  *liveness.Result
	Avail *availexpr.Result
}

// CheckIn feeds the differential oracle with a completed result.
type CheckIn struct {
	Res *FuncResult
}

// --- The stages ----------------------------------------------------------

// BaselineStage runs Wegman-Zadek on the original graph (the CA = 0
// baseline, independent of every knob).
var BaselineStage = Stage[AnalyzeIn, *constprop.Result]{
	Name: StageBaseline,
	Run: func(in AnalyzeIn) (*constprop.Result, error) {
		return constprop.AnalyzeMasked(in.G, in.NumVars, true, in.Kernel, in.Infeasible), nil
	},
}

// FeasibleStage detects infeasible edges on one graph tier.
var FeasibleStage = Stage[FeasibleIn, *feasible.Edges]{
	Name: StageFeasible,
	Run: func(in FeasibleIn) (*feasible.Edges, error) {
		return feasible.Detect(in.G, in.NumVars), nil
	},
}

// SelectStage picks the minimal hot-path set covering CA of the training
// run's dynamic instructions.
var SelectStage = Stage[SelectIn, []bl.Path]{
	Name: StageSelect,
	Run: func(in SelectIn) ([]bl.Path, error) {
		return profile.SelectHot(in.Train, in.Fn.G, in.CA), nil
	},
}

// AutomatonStage builds the Aho-Corasick qualification automaton over the
// trimmed hot paths.
var AutomatonStage = Stage[AutomatonIn, *automaton.Automaton]{
	Name: StageAutomaton,
	Run: func(in AutomatonIn) (*automaton.Automaton, error) {
		return automaton.New(in.Fn.G, in.R, in.Hot)
	},
}

// TraceStage applies Holley-Rosen data-flow tracing, producing the HPG.
var TraceStage = Stage[TraceIn, *trace.HPG]{
	Name: StageTrace,
	Run: func(in TraceIn) (*trace.HPG, error) {
		return trace.Build(in.Fn, in.Auto)
	},
}

// AnalyzeStage runs Wegman-Zadek on the HPG.
var AnalyzeStage = Stage[AnalyzeIn, *constprop.Result]{
	Name: StageAnalyze,
	Run: func(in AnalyzeIn) (*constprop.Result, error) {
		return constprop.AnalyzeMasked(in.G, in.NumVars, true, in.Kernel, in.Infeasible), nil
	},
}

// TranslateStage re-expresses the training profile on the HPG (Lemma 2).
var TranslateStage = Stage[TranslateIn, *bl.Profile]{
	Name: StageTranslate,
	Run: func(in TranslateIn) (*bl.Profile, error) {
		return profile.Translate(in.Prof, in.Orig, in.Overlay)
	},
}

// ReduceStage minimizes the HPG at cutoff CR and re-analyzes the quotient.
var ReduceStage = Stage[ReduceIn, ReduceOut]{
	Name: StageReduce,
	Run: func(in ReduceIn) (ReduceOut, error) {
		red, err := reduce.Reduce(in.HPG, in.Sol, in.Prof, reduce.Options{CR: in.CR})
		if err != nil {
			return ReduceOut{}, err
		}
		var mask []bool
		if in.Feasible {
			mask = feasible.Detect(red.G, in.NumVars).Mask()
		}
		return ReduceOut{Red: red, RedSol: constprop.AnalyzeMasked(red.G, in.NumVars, true, in.Kernel, mask)}, nil
	},
}

// LivenessStage runs guided live-variable analysis (backward) on one
// graph tier.
var LivenessStage = Stage[ClientIn, *liveness.Result]{
	Name: StageLiveness,
	Run: func(in ClientIn) (*liveness.Result, error) {
		return liveness.AnalyzeWith(in.G, in.NumVars, in.Guide, in.Kernel), nil
	},
}

// AvailExprStage runs guided available-expressions analysis (forward)
// on one graph tier.
var AvailExprStage = Stage[ClientIn, *availexpr.Result]{
	Name: StageAvailExpr,
	Run: func(in ClientIn) (*availexpr.Result, error) {
		return availexpr.AnalyzeWith(in.G, in.U, in.Guide, in.Kernel), nil
	},
}

// CheckStage runs the precision differential oracle over a completed
// result; see CheckFuncResult. Violations are reported in the returned
// slice, not as a stage error — the engine decides whether they are
// fatal (Options.Verify) or informational (`pathflow check`).
var CheckStage = Stage[CheckIn, []*oracle.Report]{
	Name: StageCheck,
	Run: func(in CheckIn) ([]*oracle.Report, error) {
		return CheckFuncResult(in.Res), nil
	},
}

// --- Metrics -------------------------------------------------------------

// StageMetrics aggregates one stage's cost within a single FuncResult.
type StageMetrics struct {
	// Duration is the compute cost of the stage. For cache hits this is
	// the stored cost of the run that produced the artifact, so cost
	// ratios (Figure 12) stay meaningful under caching. Disk-decode time
	// is never folded in — it lives in Decode — so incremental-replay
	// numbers compare compute against compute.
	Duration time.Duration
	// Decode is the wall-clock spent decoding this stage's artifact from
	// the persistent tier (zero unless DiskHits > 0, and zero for memory
	// hits and fresh computes). It is the price actually paid for a
	// replay, reported separately from the stored compute cost above.
	Decode time.Duration
	// Runs counts stage executions attributed to this result, including
	// cache hits; CacheHits counts how many of them were served from
	// either cache tier, and DiskHits how many of those were decoded
	// from the persistent tier (DiskHits ⊆ CacheHits). The provenance
	// split is thus: computed = Runs − CacheHits, memory = CacheHits −
	// DiskHits, disk = DiskHits.
	Runs      int
	CacheHits int
	DiskHits  int
}

// Computed returns how many executions actually ran the stage.
func (sm StageMetrics) Computed() int { return sm.Runs - sm.CacheHits }

// DecodeNanos returns the disk-decode cost in nanoseconds (the unit the
// serving layer exports).
func (sm StageMetrics) DecodeNanos() int64 { return sm.Decode.Nanoseconds() }

// Metrics generalizes the old ad-hoc Times struct: per-stage durations,
// run/hit counts, and the actual wall-clock of the pipeline invocation.
type Metrics struct {
	Stages map[StageName]StageMetrics
	// Wall is the observed wall-clock time of this pipeline invocation
	// (cache hits make it smaller than the summed stage durations).
	Wall time.Duration

	// observe, when set (WithStageObserver), is invoked for every stage
	// execution recorded into this record — direct runs and cache-hit
	// merges alike. The cache's leader computes into a private Metrics
	// with no observer and then merges, so each artifact is reported to
	// each requester exactly once.
	observe func(s StageName, d, decode time.Duration, src Provenance)
}

// NewMetrics returns an empty metrics record.
func NewMetrics() *Metrics { return &Metrics{Stages: map[StageName]StageMetrics{}} }

func (m *Metrics) add(s StageName, d, decode time.Duration, src Provenance) {
	sm := m.Stages[s]
	sm.Duration += d
	sm.Decode += decode
	sm.Runs++
	if src.Cached() {
		sm.CacheHits++
	}
	if src == SourceDisk {
		sm.DiskHits++
	}
	m.Stages[s] = sm
	if m.observe != nil {
		m.observe(s, d, decode, src)
	}
}

// merge folds a recorded cost map into m, attributing every entry to the
// given provenance. decode is the wall-clock spent decoding the bundle
// from the persistent tier (nonzero only for the leader of a disk hit);
// it is attributed to the earliest pipeline stage present in cost — each
// disk bundle carries exactly one pipeline stage, so in practice the
// whole decode lands on the stage that owns the bundle and is never
// folded into any stage's Duration.
func (m *Metrics) merge(cost map[StageName]time.Duration, src Provenance, decode time.Duration) {
	var decodeStage StageName
	if decode > 0 {
		for _, s := range StageOrder {
			if _, ok := cost[s]; ok {
				decodeStage = s
				break
			}
		}
	}
	for s, d := range cost {
		if s == decodeStage {
			m.add(s, d, decode, src)
		} else {
			m.add(s, d, 0, src)
		}
	}
}

// Duration returns the recorded compute cost of stage s.
func (m *Metrics) Duration(s StageName) time.Duration { return m.Stages[s].Duration }

// CacheHits returns the total number of stage executions served from the
// artifact cache (either tier).
func (m *Metrics) CacheHits() int {
	n := 0
	for _, sm := range m.Stages {
		n += sm.CacheHits
	}
	return n
}

// DiskHits returns the total number of stage executions decoded from the
// persistent tier.
func (m *Metrics) DiskHits() int {
	n := 0
	for _, sm := range m.Stages {
		n += sm.DiskHits
	}
	return n
}

// Times projects the metrics onto the legacy Times struct: Baseline,
// Automaton, Trace, Analysis (HPG), Reduce (translate + reduce +
// quotient re-analysis), and Total as the sum of compute costs, exactly
// the spans the pre-engine pipeline timed.
func (m *Metrics) Times() Times {
	t := Times{
		Baseline:  m.Duration(StageBaseline),
		Automaton: m.Duration(StageAutomaton),
		Trace:     m.Duration(StageTrace),
		Analysis:  m.Duration(StageAnalyze),
		Reduce:    m.Duration(StageTranslate) + m.Duration(StageReduce),
	}
	t.Total = t.Baseline + t.Automaton + t.Trace + t.Analysis + t.Reduce
	return t
}

// Times records wall-clock durations of the pipeline stages (the legacy
// pre-engine shape, kept for the harness and CLI).
type Times struct {
	Baseline  time.Duration // Wegman-Zadek on the original graph
	Automaton time.Duration
	Trace     time.Duration
	Analysis  time.Duration // qualified analysis on the HPG
	Reduce    time.Duration
	Total     time.Duration
}

// Qualified returns the extra time qualification added on top of the
// baseline analysis (the paper's Figure 12 numerator).
func (t Times) Qualified() time.Duration {
	return t.Automaton + t.Trace + t.Analysis + t.Reduce
}
