package engine

import (
	"pathflow/internal/availexpr"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/feasible"
	"pathflow/internal/intervals"
	"pathflow/internal/liveness"
	"pathflow/internal/profile"
)

// CheckFuncResult runs the precision differential oracle over every
// derived graph tier of a completed result (HPG and reduced HPG, when
// qualification ran) and every client the repo ships: constant
// propagation, intervals, liveness and available expressions. Client
// solutions already attached to the result are reused; missing ones
// (including both interval solutions, which no pipeline stage retains)
// are computed on the spot.
//
// The returned reports certify — or refute, per vertex — the paper's
// central guarantee: projected through the trace correspondence, the
// hot-path solution is pointwise at least as precise as the CFG's.
// Functions without qualified artifacts return no reports (there is
// nothing to compare).
func CheckFuncResult(fr *FuncResult) []*oracle.Report {
	if fr == nil || fr.OrigSol == nil {
		return nil
	}
	type tier struct {
		name  string
		g     *cfg.Graph
		csol  *constprop.Result
		orig  func(cfg.NodeID) cfg.NodeID
		live  *liveness.Result
		avail *availexpr.Result
	}
	var tiers []tier
	if fr.HPG != nil && fr.HPGSol != nil {
		h := fr.HPG
		tiers = append(tiers, tier{
			name: "hpg", g: h.G, csol: fr.HPGSol,
			orig:  func(n cfg.NodeID) cfg.NodeID { return h.OrigNode[n] },
			live:  fr.LiveHPG,
			avail: fr.AvailHPG,
		})
	}
	if fr.Red != nil && fr.RedSol != nil {
		r := fr.Red
		tiers = append(tiers, tier{
			name: "rhpg", g: r.G, csol: fr.RedSol,
			orig:  func(n cfg.NodeID) cfg.NodeID { return r.OrigNode[n] },
			live:  fr.LiveRed,
			avail: fr.AvailRed,
		})
	}
	if len(tiers) == 0 && !fr.Opt.Feasible {
		return nil
	}

	nv := fr.Fn.NumVars()
	cpLat := &constprop.Problem{NumVars: nv}
	// Intervals are compared in their widening-free threshold-lattice
	// form: the production analysis widens, and widening is not monotone
	// in the graph, so its solutions are not comparable across tiers
	// (see intervals.ClampedProblem). The threshold set is derived once
	// from the original graph and shared by every tier.
	thr := intervals.Thresholds(fr.Fn.G)
	ivLat := &intervals.ClampedProblem{NumVars: nv, Conditional: true, T: thr}
	lvLat := &liveness.Problem{NumVars: nv}

	u := fr.AvailU
	if u == nil {
		u = availexpr.NewUniverse(fr.Fn.G, nv)
	}
	avLat := &availexpr.Problem{U: u}

	baseIv := intervals.AnalyzeClamped(fr.Fn.G, nv, thr, true)
	baseLive := fr.LiveCFG
	if baseLive == nil {
		baseLive = liveness.Analyze(fr.Fn.G, nv, fr.OrigSol.Sol)
	}
	baseAvail := fr.AvailCFG
	if baseAvail == nil {
		baseAvail = availexpr.Analyze(fr.Fn.G, u, fr.OrigSol.Sol)
	}

	var reports []*oracle.Report
	for _, t := range tiers {
		reports = append(reports,
			oracle.Check("constprop", t.name, cpLat, fr.OrigSol.Sol, t.csol.Sol, t.orig))

		iv := intervals.AnalyzeClamped(t.g, nv, thr, true)
		reports = append(reports,
			oracle.Check("intervals", t.name, ivLat, baseIv.Sol, iv.Sol, t.orig))

		live := t.live
		if live == nil {
			live = liveness.Analyze(t.g, nv, t.csol.Sol)
		}
		reports = append(reports,
			oracle.Check("liveness", t.name, lvLat, baseLive.Sol, live.Sol, t.orig))

		avail := t.avail
		if avail == nil {
			avail = availexpr.Analyze(t.g, u, t.csol.Sol)
		}
		reports = append(reports,
			oracle.Check("availexpr", t.name, avLat, baseAvail.Sol, avail.Sol, t.orig))
	}

	if fr.Opt.Feasible {
		reports = append(reports, checkFeasible(fr, nv, thr, u, cpLat, ivLat, lvLat, avLat)...)
	}
	return reports
}

// checkFeasible certifies the feasibility masks of a Options.Feasible
// run, per graph tier, on two independent axes:
//
//   - The pruning soundness gate: the masked solution of every client
//     must be pointwise at least as precise as the unmasked solution of
//     the same graph (Identity projection — withholding facts along
//     edges can only raise the fixpoint, never lower it, so any
//     violation means the mask leaked into a transfer incorrectly).
//     The reports' Improved counters are the precision the feasibility
//     axis bought on that tier.
//
//   - The trace gate (oracle.CheckTraces): no edge the recorded
//     training run traversed may be marked infeasible — checked on the
//     CFG against the training profile, on the HPG against its
//     translation, and on the reduced graph against a fresh
//     translation of the training profile.
func checkFeasible(fr *FuncResult, nv int, thr []int64,
	u *availexpr.Universe,
	cpLat *constprop.Problem, ivLat *intervals.ClampedProblem,
	lvLat *liveness.Problem, avLat *availexpr.Problem) []*oracle.Report {

	type ftier struct {
		name   string
		g      *cfg.Graph
		mask   *feasible.Edges
		masked *constprop.Result // the pipeline's (masked) solution
		live   *liveness.Result
		avail  *availexpr.Result
		prof   *bl.Profile
	}
	tiers := []ftier{{
		name: "cfg", g: fr.Fn.G, mask: fr.FeasCFG, masked: fr.OrigSol,
		live: fr.LiveCFG, avail: fr.AvailCFG, prof: fr.Train,
	}}
	if fr.HPG != nil && fr.HPGSol != nil {
		tiers = append(tiers, ftier{
			name: "hpg", g: fr.HPG.G, mask: fr.FeasHPG, masked: fr.HPGSol,
			live: fr.LiveHPG, avail: fr.AvailHPG, prof: fr.HPGProf,
		})
	}
	if fr.Red != nil && fr.RedSol != nil {
		// The reduced tier's mask is not retained by the pipeline;
		// Detect is deterministic, so recomputing reproduces exactly the
		// mask the reduce stage solved through.
		t := ftier{
			name: "rhpg", g: fr.Red.G, mask: feasible.Detect(fr.Red.G, nv), masked: fr.RedSol,
			live: fr.LiveRed, avail: fr.AvailRed,
		}
		if fr.Train != nil {
			if rp, err := fr.TranslateEval(fr.Train); err == nil {
				t.prof = rp
			}
		}
		tiers = append(tiers, t)
	}

	var reports []*oracle.Report
	for _, t := range tiers {
		mask := t.mask.Mask()
		graph := t.name + "/feasible"

		unmasked := constprop.AnalyzeWith(t.g, nv, true, fr.Opt.Kernel)
		reports = append(reports,
			oracle.Check("constprop", graph, cpLat, unmasked.Sol, t.masked.Sol, oracle.Identity))

		ivMasked := intervals.AnalyzeClampedMasked(t.g, nv, thr, true, mask)
		ivUnmasked := intervals.AnalyzeClamped(t.g, nv, thr, true)
		reports = append(reports,
			oracle.Check("intervals", graph, ivLat, ivUnmasked.Sol, ivMasked.Sol, oracle.Identity))

		live := t.live
		if live == nil {
			live = liveness.Analyze(t.g, nv, t.masked.Sol)
		}
		liveUnmasked := liveness.Analyze(t.g, nv, unmasked.Sol)
		reports = append(reports,
			oracle.Check("liveness", graph, lvLat, liveUnmasked.Sol, live.Sol, oracle.Identity))

		avail := t.avail
		if avail == nil {
			avail = availexpr.Analyze(t.g, u, t.masked.Sol)
		}
		availUnmasked := availexpr.Analyze(t.g, u, unmasked.Sol)
		reports = append(reports,
			oracle.Check("availexpr", graph, avLat, availUnmasked.Sol, avail.Sol, oracle.Identity))

		if t.prof != nil && t.mask != nil {
			reports = append(reports,
				oracle.CheckTraces("traces", graph, profile.EdgeCounts(t.prof, t.g), t.mask.Infeasible))
		}
	}
	return reports
}

// OracleErr returns the first violation's error among reports, or nil
// when every report is clean.
func OracleErr(reports []*oracle.Report) error {
	for _, r := range reports {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}
