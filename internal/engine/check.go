package engine

import (
	"pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/intervals"
	"pathflow/internal/liveness"
)

// CheckFuncResult runs the precision differential oracle over every
// derived graph tier of a completed result (HPG and reduced HPG, when
// qualification ran) and every client the repo ships: constant
// propagation, intervals, liveness and available expressions. Client
// solutions already attached to the result are reused; missing ones
// (including both interval solutions, which no pipeline stage retains)
// are computed on the spot.
//
// The returned reports certify — or refute, per vertex — the paper's
// central guarantee: projected through the trace correspondence, the
// hot-path solution is pointwise at least as precise as the CFG's.
// Functions without qualified artifacts return no reports (there is
// nothing to compare).
func CheckFuncResult(fr *FuncResult) []*oracle.Report {
	if fr == nil || fr.OrigSol == nil {
		return nil
	}
	type tier struct {
		name  string
		g     *cfg.Graph
		csol  *constprop.Result
		orig  func(cfg.NodeID) cfg.NodeID
		live  *liveness.Result
		avail *availexpr.Result
	}
	var tiers []tier
	if fr.HPG != nil && fr.HPGSol != nil {
		h := fr.HPG
		tiers = append(tiers, tier{
			name: "hpg", g: h.G, csol: fr.HPGSol,
			orig:  func(n cfg.NodeID) cfg.NodeID { return h.OrigNode[n] },
			live:  fr.LiveHPG,
			avail: fr.AvailHPG,
		})
	}
	if fr.Red != nil && fr.RedSol != nil {
		r := fr.Red
		tiers = append(tiers, tier{
			name: "rhpg", g: r.G, csol: fr.RedSol,
			orig:  func(n cfg.NodeID) cfg.NodeID { return r.OrigNode[n] },
			live:  fr.LiveRed,
			avail: fr.AvailRed,
		})
	}
	if len(tiers) == 0 {
		return nil
	}

	nv := fr.Fn.NumVars()
	cpLat := &constprop.Problem{NumVars: nv}
	// Intervals are compared in their widening-free threshold-lattice
	// form: the production analysis widens, and widening is not monotone
	// in the graph, so its solutions are not comparable across tiers
	// (see intervals.ClampedProblem). The threshold set is derived once
	// from the original graph and shared by every tier.
	thr := intervals.Thresholds(fr.Fn.G)
	ivLat := &intervals.ClampedProblem{NumVars: nv, Conditional: true, T: thr}
	lvLat := &liveness.Problem{NumVars: nv}

	u := fr.AvailU
	if u == nil {
		u = availexpr.NewUniverse(fr.Fn.G, nv)
	}
	avLat := &availexpr.Problem{U: u}

	baseIv := intervals.AnalyzeClamped(fr.Fn.G, nv, thr, true)
	baseLive := fr.LiveCFG
	if baseLive == nil {
		baseLive = liveness.Analyze(fr.Fn.G, nv, fr.OrigSol.Sol)
	}
	baseAvail := fr.AvailCFG
	if baseAvail == nil {
		baseAvail = availexpr.Analyze(fr.Fn.G, u, fr.OrigSol.Sol)
	}

	var reports []*oracle.Report
	for _, t := range tiers {
		reports = append(reports,
			oracle.Check("constprop", t.name, cpLat, fr.OrigSol.Sol, t.csol.Sol, t.orig))

		iv := intervals.AnalyzeClamped(t.g, nv, thr, true)
		reports = append(reports,
			oracle.Check("intervals", t.name, ivLat, baseIv.Sol, iv.Sol, t.orig))

		live := t.live
		if live == nil {
			live = liveness.Analyze(t.g, nv, t.csol.Sol)
		}
		reports = append(reports,
			oracle.Check("liveness", t.name, lvLat, baseLive.Sol, live.Sol, t.orig))

		avail := t.avail
		if avail == nil {
			avail = availexpr.Analyze(t.g, u, t.csol.Sol)
		}
		reports = append(reports,
			oracle.Check("availexpr", t.name, avLat, baseAvail.Sol, avail.Sol, t.orig))
	}
	return reports
}

// OracleErr returns the first violation's error among reports, or nil
// when every report is clean.
func OracleErr(reports []*oracle.Report) error {
	for _, r := range reports {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}
