package engine_test

import (
	"regexp"
	"strconv"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/progen"
)

// fuzzInput derives a deterministic training-input stream from a seed.
func fuzzInput(seed uint64) *interp.SliceInput {
	vals := make([]ir.Value, 64)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0xffff)
	}
	return &interp.SliceInput{Values: vals}
}

var fuzzLiteral = regexp.MustCompile(`\b\d+\b`)

// mutateConstant bumps the pick-th standalone integer literal of src,
// producing a body-class (often also profile-class) edit that keeps the
// program compilable. Identity when src holds no literals.
func mutateConstant(src string, pick uint64) string {
	locs := fuzzLiteral.FindAllStringIndex(src, -1)
	if len(locs) == 0 {
		return src
	}
	loc := locs[pick%uint64(len(locs))]
	n, err := strconv.Atoi(src[loc[0]:loc[1]])
	if err != nil {
		return src
	}
	return src[:loc[0]] + strconv.Itoa((n+1)%100) + src[loc[1]:]
}

func fuzzProfile(prog *cfg.Program, seed uint64) (*bl.ProgramProfile, error) {
	train, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:     []ir.Value{3, 7, 11},
		Input:    fuzzInput(seed),
		MaxSteps: 2_000_000,
	})
	return train, err
}

// FuzzDelta is the dirty-set soundness fuzzer: for arbitrary pairs of
// generated programs — unrelated, constant-mutated, input-shifted, or
// identical — incremental re-analysis on a cache warmed by the old
// version must be byte-identical to a cold analysis of the new version,
// and every stage Delta predicts as replayable must actually be served
// from the cache. This is the load-bearing guarantee behind
// `analyze -baseline`: the prediction may under-promise (a dirty stage
// can still hit via output-addressed keys) but must never over-promise.
func FuzzDelta(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(0), uint64(5))  // unrelated programs
	f.Add(uint64(3), uint64(4), uint8(1), uint64(5))  // constant mutation
	f.Add(uint64(7), uint64(0), uint8(2), uint64(9))  // input shift
	f.Add(uint64(11), uint64(0), uint8(3), uint64(5)) // identical
	f.Add(uint64(42), uint64(17), uint8(1), uint64(1))
	f.Add(uint64(19), uint64(19), uint8(0), uint64(3))

	o := engine.Options{CA: 0.97, CR: 0.95}
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, mode uint8, inputSeed uint64) {
		srcA := progen.Generate(progen.DefaultConfig(seedA))
		var srcB string
		inputB := inputSeed
		switch mode % 4 {
		case 0:
			srcB = progen.Generate(progen.DefaultConfig(seedB))
		case 1:
			srcB = mutateConstant(srcA, seedB)
		case 2:
			srcB = srcA
			inputB = inputSeed + 1
		default:
			srcB = srcA
		}

		progA, err := lang.Compile(srcA)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seedA, err)
		}
		progB, err := lang.Compile(srcB)
		if err != nil {
			t.Fatalf("mutated program does not compile: %v\n%s", err, srcB)
		}
		trainA, err := fuzzProfile(progA, inputSeed)
		if err != nil {
			t.Skip("training run A did not terminate in budget")
		}
		trainB, err := fuzzProfile(progB, inputB)
		if err != nil {
			t.Skip("training run B did not terminate in budget")
		}

		coldRes, err := engine.New(engine.Config{Workers: 1}).AnalyzeProgram(ctx, progB, trainB, o)
		if err != nil {
			t.Fatalf("cold analysis failed: %v", err)
		}
		cold := summarize(coldRes)

		eng := engine.New(engine.Config{Workers: 1, Cache: true})
		if _, err := eng.AnalyzeProgram(ctx, progA, trainA, o); err != nil {
			t.Fatalf("warm-up analysis failed: %v", err)
		}
		res, err := eng.AnalyzeProgram(ctx, progB, trainB, o)
		if err != nil {
			t.Fatalf("incremental analysis failed: %v", err)
		}
		if got := summarize(res); got != cold {
			t.Fatalf("incremental result differs from cold recompute\nold source:\n%s\nnew source:\n%s", srcA, srcB)
		}

		for _, d := range engine.DiffPrograms(progA, progB, trainA, trainB) {
			// Class-level invariants.
			switch d.Class {
			case engine.DeltaNone:
				if len(d.DirtyStages()) != 0 {
					t.Errorf("%s: class none but dirty stages predicted (%s)", d.Func, d)
				}
			case engine.DeltaShape, engine.DeltaCold:
				if len(d.ReplayStages()) != 0 {
					t.Errorf("%s: class %s but replays predicted (%s)", d.Func, d.Class, d)
				}
			}
			// Soundness: predicted-replay stages must be cache hits.
			fr := res.Funcs[d.Func]
			for _, s := range engine.PipelineStages {
				sm := fr.Metrics.Stages[s]
				if !d.Dirty(s) && sm.Runs > 0 && sm.CacheHits != sm.Runs {
					t.Errorf("%s/%s: predicted replay but %d/%d runs hit the cache (%s)\nold:\n%s\nnew:\n%s",
						d.Func, s, sm.CacheHits, sm.Runs, d, srcA, srcB)
				}
			}
		}
	})
}
