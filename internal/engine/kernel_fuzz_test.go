package engine_test

import (
	"testing"

	"pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/engine"
	"pathflow/internal/intervals"
	"pathflow/internal/lang"
	"pathflow/internal/liveness"
	"pathflow/internal/progen"
)

// FuzzKernelEquivalence is the representation-change falsifier: for
// arbitrary generated programs, the full pipeline run on the packed
// arena kernels must be pointwise identical to the boxed reference run
// — every graph tier (CFG, HPG, reduced HPG), every client (constant
// propagation, intervals, liveness, available expressions), facts,
// reachability, edge executability, and iteration counts. The sparse
// def-use kernel joins the cross-product on facts-only terms
// (DifferentialFacts): its schedule legitimately runs fewer transfers,
// but every fact, reachable node, and executable edge must still match
// the boxed reference pointwise. All engines run cache-less so every
// solution is freshly computed by its own backend.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(5))
	f.Add(uint64(2), uint64(3))
	f.Add(uint64(7), uint64(9))
	f.Add(uint64(19), uint64(1))
	f.Add(uint64(42), uint64(17))
	// Structure-targeted seeds: 301 generates the longest straight-line
	// chain in the first 400 seeds (graph diameter 48 — stresses sparse
	// pass-through forwarding), 138 the most branch nodes (118 — deep
	// nested diamonds stress first-delivery masking at merge points).
	f.Add(uint64(301), uint64(11))
	f.Add(uint64(138), uint64(5))

	f.Fuzz(func(t *testing.T, seed, inputSeed uint64) {
		src := progen.Generate(progen.DefaultConfig(seed))
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		train, err := fuzzProfile(prog, inputSeed)
		if err != nil {
			t.Skip("training run did not terminate in budget")
		}

		run := func(k dataflow.Kernel) *engine.ProgramResult {
			o := engine.Options{CA: 0.97, CR: 0.95, Clients: engine.ClientsAll, Kernel: k}
			res, err := engine.New(engine.Config{Workers: 1}).AnalyzeProgram(ctx, prog, train, o)
			if err != nil {
				t.Fatalf("%s analysis failed: %v", k, err)
			}
			return res
		}
		boxed := run(dataflow.KernelBoxed)
		packed := run(dataflow.KernelPacked)
		sparse := run(dataflow.KernelSparse)

		if a, b := summarize(boxed), summarize(packed); a != b {
			t.Fatalf("packed summary differs from boxed\nboxed:\n%s\npacked:\n%s", a, b)
		}
		if a, b := summarize(boxed), summarize(sparse); a != b {
			t.Fatalf("sparse summary differs from boxed\nboxed:\n%s\nsparse:\n%s", a, b)
		}

		check := func(fn, client, tier string, lat oracle.Lattice, b, p *dataflow.Solution) {
			t.Helper()
			if (b == nil) != (p == nil) {
				t.Fatalf("%s/%s/%s: solution presence differs (boxed %v, packed %v)", fn, client, tier, b != nil, p != nil)
			}
			if b == nil {
				return
			}
			if err := oracle.Differential(client, tier, lat, b, p).Err(); err != nil {
				t.Errorf("func %s tier %s: %v", fn, tier, err)
			}
		}
		// Facts-only variant for the sparse kernel: iteration counts are
		// expected to differ (that is the optimization), so compare
		// facts, reachability, and edge executability only.
		checkFacts := func(fn, client, tier string, lat oracle.Lattice, b, s *dataflow.Solution) {
			t.Helper()
			if (b == nil) != (s == nil) {
				t.Fatalf("%s/%s/%s: solution presence differs (boxed %v, sparse %v)", fn, client, tier, b != nil, s != nil)
			}
			if b == nil {
				return
			}
			if err := oracle.DifferentialFacts(client, tier, lat, b, s).Err(); err != nil {
				t.Errorf("func %s tier %s (sparse): %v", fn, tier, err)
			}
		}
		for _, name := range prog.Order {
			bfr, pfr, sfr := boxed.Funcs[name], packed.Funcs[name], sparse.Funcs[name]
			nv := prog.Funcs[name].NumVars()
			if bfr.Qualified() != pfr.Qualified() || bfr.Qualified() != sfr.Qualified() {
				t.Fatalf("func %s: qualification differs between kernels", name)
			}

			cpLat := &constprop.Problem{NumVars: nv, Conditional: true}
			lvLat := &liveness.Problem{NumVars: nv}
			aeLat := &availexpr.Problem{U: bfr.AvailU}
			ivLat := &intervals.Problem{NumVars: nv, Conditional: true}

			type tier struct {
				name string
				g    *cfg.Graph
			}
			tiers := []tier{{"cfg", bfr.Fn.G}}
			if bfr.Qualified() {
				tiers = append(tiers, tier{"hpg", bfr.HPG.G}, tier{"rhpg", bfr.Red.G})
			}

			cpSols := [][3]*constprop.Result{{bfr.OrigSol, pfr.OrigSol, sfr.OrigSol}, {bfr.HPGSol, pfr.HPGSol, sfr.HPGSol}, {bfr.RedSol, pfr.RedSol, sfr.RedSol}}
			lvSols := [][3]*liveness.Result{{bfr.LiveCFG, pfr.LiveCFG, sfr.LiveCFG}, {bfr.LiveHPG, pfr.LiveHPG, sfr.LiveHPG}, {bfr.LiveRed, pfr.LiveRed, sfr.LiveRed}}
			aeSols := [][3]*availexpr.Result{{bfr.AvailCFG, pfr.AvailCFG, sfr.AvailCFG}, {bfr.AvailHPG, pfr.AvailHPG, sfr.AvailHPG}, {bfr.AvailRed, pfr.AvailRed, sfr.AvailRed}}
			for i, tr := range tiers {
				if b, p := cpSols[i][0], cpSols[i][1]; b != nil || p != nil {
					check(name, "constprop", tr.name, cpLat, solOf(b), solOf(p))
					checkFacts(name, "constprop", tr.name, cpLat, solOf(b), solOf(cpSols[i][2]))
				}
				if b, p := lvSols[i][0], lvSols[i][1]; b != nil || p != nil {
					check(name, "liveness", tr.name, lvLat, lvSolOf(b), lvSolOf(p))
					checkFacts(name, "liveness", tr.name, lvLat, lvSolOf(b), lvSolOf(lvSols[i][2]))
				}
				if b, p := aeSols[i][0], aeSols[i][1]; b != nil || p != nil {
					check(name, "availexpr", tr.name, aeLat, aeSolOf(b), aeSolOf(p))
					checkFacts(name, "availexpr", tr.name, aeLat, aeSolOf(b), aeSolOf(aeSols[i][2]))
				}
				// Intervals is not an engine client; solve all backends
				// directly on each tier graph to cover the widening path.
				// The sparse widening schedule mirrors the dense one
				// exactly, so the full Differential (iterations included)
				// holds for it too.
				ivB := intervals.AnalyzeWith(tr.g, nv, true, dataflow.KernelBoxed)
				ivP := intervals.AnalyzeWith(tr.g, nv, true, dataflow.KernelPacked)
				ivS := intervals.AnalyzeWith(tr.g, nv, true, dataflow.KernelSparse)
				check(name, "intervals", tr.name, ivLat, ivB.Sol, ivP.Sol)
				check(name, "intervals", tr.name, ivLat, ivB.Sol, ivS.Sol)
			}
		}
	})
}

func solOf(r *constprop.Result) *dataflow.Solution {
	if r == nil {
		return nil
	}
	return r.Sol
}

func lvSolOf(r *liveness.Result) *dataflow.Solution {
	if r == nil {
		return nil
	}
	return r.Sol
}

func aeSolOf(r *availexpr.Result) *dataflow.Solution {
	if r == nil {
		return nil
	}
	return r.Sol
}
