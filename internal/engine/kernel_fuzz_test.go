package engine_test

import (
	"testing"

	"pathflow/internal/availexpr"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/engine"
	"pathflow/internal/intervals"
	"pathflow/internal/lang"
	"pathflow/internal/liveness"
	"pathflow/internal/progen"
)

// FuzzKernelEquivalence is the representation-change falsifier: for
// arbitrary generated programs, the full pipeline run on the packed
// arena kernels must be pointwise identical to the boxed reference run
// — every graph tier (CFG, HPG, reduced HPG), every client (constant
// propagation, intervals, liveness, available expressions), facts,
// reachability, edge executability, and iteration counts. Both engines
// run cache-less so every solution is freshly computed by its own
// backend.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(5))
	f.Add(uint64(2), uint64(3))
	f.Add(uint64(7), uint64(9))
	f.Add(uint64(19), uint64(1))
	f.Add(uint64(42), uint64(17))

	f.Fuzz(func(t *testing.T, seed, inputSeed uint64) {
		src := progen.Generate(progen.DefaultConfig(seed))
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		train, err := fuzzProfile(prog, inputSeed)
		if err != nil {
			t.Skip("training run did not terminate in budget")
		}

		run := func(k dataflow.Kernel) *engine.ProgramResult {
			o := engine.Options{CA: 0.97, CR: 0.95, Clients: engine.ClientsAll, Kernel: k}
			res, err := engine.New(engine.Config{Workers: 1}).AnalyzeProgram(ctx, prog, train, o)
			if err != nil {
				t.Fatalf("%s analysis failed: %v", k, err)
			}
			return res
		}
		boxed := run(dataflow.KernelBoxed)
		packed := run(dataflow.KernelPacked)

		if a, b := summarize(boxed), summarize(packed); a != b {
			t.Fatalf("packed summary differs from boxed\nboxed:\n%s\npacked:\n%s", a, b)
		}

		check := func(fn, client, tier string, lat oracle.Lattice, b, p *dataflow.Solution) {
			t.Helper()
			if (b == nil) != (p == nil) {
				t.Fatalf("%s/%s/%s: solution presence differs (boxed %v, packed %v)", fn, client, tier, b != nil, p != nil)
			}
			if b == nil {
				return
			}
			if err := oracle.Differential(client, tier, lat, b, p).Err(); err != nil {
				t.Errorf("func %s tier %s: %v", fn, tier, err)
			}
		}
		for _, name := range prog.Order {
			bfr, pfr := boxed.Funcs[name], packed.Funcs[name]
			nv := prog.Funcs[name].NumVars()
			if bfr.Qualified() != pfr.Qualified() {
				t.Fatalf("func %s: qualification differs between kernels", name)
			}

			cpLat := &constprop.Problem{NumVars: nv, Conditional: true}
			lvLat := &liveness.Problem{NumVars: nv}
			aeLat := &availexpr.Problem{U: bfr.AvailU}
			ivLat := &intervals.Problem{NumVars: nv, Conditional: true}

			type tier struct {
				name string
				g    *cfg.Graph
			}
			tiers := []tier{{"cfg", bfr.Fn.G}}
			if bfr.Qualified() {
				tiers = append(tiers, tier{"hpg", bfr.HPG.G}, tier{"rhpg", bfr.Red.G})
			}

			cpSols := [][2]*constprop.Result{{bfr.OrigSol, pfr.OrigSol}, {bfr.HPGSol, pfr.HPGSol}, {bfr.RedSol, pfr.RedSol}}
			lvSols := [][2]*liveness.Result{{bfr.LiveCFG, pfr.LiveCFG}, {bfr.LiveHPG, pfr.LiveHPG}, {bfr.LiveRed, pfr.LiveRed}}
			aeSols := [][2]*availexpr.Result{{bfr.AvailCFG, pfr.AvailCFG}, {bfr.AvailHPG, pfr.AvailHPG}, {bfr.AvailRed, pfr.AvailRed}}
			for i, tr := range tiers {
				if b, p := cpSols[i][0], cpSols[i][1]; b != nil || p != nil {
					check(name, "constprop", tr.name, cpLat, solOf(b), solOf(p))
				}
				if b, p := lvSols[i][0], lvSols[i][1]; b != nil || p != nil {
					check(name, "liveness", tr.name, lvLat, lvSolOf(b), lvSolOf(p))
				}
				if b, p := aeSols[i][0], aeSols[i][1]; b != nil || p != nil {
					check(name, "availexpr", tr.name, aeLat, aeSolOf(b), aeSolOf(p))
				}
				// Intervals is not an engine client; solve both backends
				// directly on each tier graph to cover the widening path.
				ivB := intervals.AnalyzeWith(tr.g, nv, true, dataflow.KernelBoxed)
				ivP := intervals.AnalyzeWith(tr.g, nv, true, dataflow.KernelPacked)
				check(name, "intervals", tr.name, ivLat, ivB.Sol, ivP.Sol)
			}
		}
	})
}

func solOf(r *constprop.Result) *dataflow.Solution {
	if r == nil {
		return nil
	}
	return r.Sol
}

func lvSolOf(r *liveness.Result) *dataflow.Solution {
	if r == nil {
		return nil
	}
	return r.Sol
}

func aeSolOf(r *availexpr.Result) *dataflow.Solution {
	if r == nil {
		return nil
	}
	return r.Sol
}
