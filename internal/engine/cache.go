package engine

import (
	"container/list"
	"math"
	"sort"
	"sync"
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/availexpr"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/engine/diskcache"
	"pathflow/internal/feasible"
	"pathflow/internal/liveness"
	"pathflow/internal/trace"
)

// The cache kinds: each names the artifact bundle a key identifies.
const (
	kindBaseline  = "baseline"  // OrigSol
	kindSelect    = "select"    // hot-path set
	kindAutomaton = "automaton" // qualification automaton
	kindTrace     = "trace"     // traced HPG
	kindAnalyze   = "analyze"   // Wegman-Zadek on the HPG
	kindTranslate = "translate" // training profile translated onto the HPG
	kindReduced   = "reduced"   // reduced HPG + its solution
	kindFeasible  = "feasible"  // infeasible-edge set of one graph tier

	// Client-analysis bundles (ClientOut), one per graph tier. Memory
	// tier only: clients are cheap to recompute relative to their encoded
	// size, so no disk codec exists for them.
	kindClientsCFG = "clients-cfg"
	kindClientsHPG = "clients-hpg"
	kindClientsRed = "clients-red"
)

// cacheKey identifies one artifact bundle with a Merkle-style per-stage
// key: slice fingerprints the input slice the stage reads directly from
// the function/profile (CFG shape, block bodies, per-block instruction
// counts, recording edges, the training profile — whichever apply),
// chain folds in the digests of the stage's upstream cache keys (or the
// hot-set fingerprint, which is output-addressed), and knob/knob2 carry
// swept parameters (CA, CR, the client set). See Cache.keyBaseline and
// friends for the exact composition of every stage's key; Delta
// mirrors the same table to predict which stages an edit dirties.
//
// Because each key hashes only what its stage actually reads plus its
// upstream keys, an edit re-keys exactly the stages whose inputs (or
// ancestors) changed: a body-only edit leaves select, automaton and
// translate keyed as before — they replay from cache — while baseline
// and trace-onward recompute. Downstream of selection, the hot set is
// fingerprinted rather than the CA knob so explicitly chosen hot sets
// (AnalyzeFuncHot, the edge-selection ablation) share the same cache,
// and so two CA values selecting identical paths hit.
type cacheKey struct {
	kind  string
	slice uint64
	chain uint64
	knob  uint64 // math.Float64bits of the swept knob (CR, or CA for select)
	// knob2 is a second, independent knob dimension: the ClientSet bits
	// for client bundles (zero for the qualification artifacts, which
	// clients cannot influence).
	knob2 uint64
}

// digest collapses a key into the single word downstream stages chain.
// The kind participates so two stages with coincidentally equal
// fingerprints still chain distinctly.
func (k cacheKey) digest() uint64 {
	h := newFNV()
	h.str(k.kind)
	h.u64(k.slice)
	h.u64(k.chain)
	h.u64(k.knob)
	h.u64(k.knob2)
	return uint64(h)
}

// hash2 and hash3 combine independent fingerprints into one slice word.
func hash2(a, b uint64) uint64 {
	h := newFNV()
	h.u64(a)
	h.u64(b)
	return uint64(h)
}

func hash3(a, b, c uint64) uint64 {
	h := newFNV()
	h.u64(a)
	h.u64(b)
	h.u64(c)
	return uint64(h)
}

// Provenance says where a cached-stage artifact came from: computed
// fresh, served from the in-memory tier, or decoded from the disk tier.
type Provenance uint8

// The provenance values, in increasing distance from the CPU.
const (
	SourceComputed Provenance = iota
	SourceMemory
	SourceDisk
)

func (p Provenance) String() string {
	switch p {
	case SourceComputed:
		return "computed"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	}
	return "unknown"
}

// Cached reports whether the artifact was served from either cache tier.
func (p Provenance) Cached() bool { return p != SourceComputed }

// cacheEntry is one materialized bundle plus the compute cost of the run
// that produced it (so cache hits can still report meaningful stage
// durations). ready is closed once val/cost/err are final, giving
// single-flight semantics: concurrent requests for the same key block on
// the first computation instead of duplicating it.
type cacheEntry struct {
	ready chan struct{}
	val   any
	cost  map[StageName]time.Duration
	err   error

	// LRU bookkeeping: set under the cache mutex once the entry is
	// final. elem is nil while the leader is still computing (in-flight
	// entries are never evicted — waiters hold the pointer anyway).
	key  cacheKey
	size int64
	elem *list.Element
}

// CacheStats reports artifact-cache effectiveness across both tiers.
type CacheStats struct {
	// Hits and Misses count in-memory lookups (a disk hit is a memory
	// miss that was then satisfied by the disk tier).
	Hits, Misses int64
	// Entries and Bytes describe in-memory residency; Bytes is the
	// estimated footprint used by the memory bound.
	Entries int
	Bytes   int64
	// MemEvictions counts bundles dropped by the in-memory byte bound.
	MemEvictions int64
	// DiskEnabled reports whether a persistent tier is attached; Disk
	// holds its counters when it is.
	DiskEnabled bool
	Disk        diskcache.Stats
}

// Cache is the cross-run artifact cache: an in-memory single-flight map,
// optionally size-bounded, optionally backed by a persistent disk tier
// (memory first, disk second; disk hits are decoded once and promoted).
// All methods are safe for concurrent use by the scheduler's workers.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    int64
	misses  int64

	// In-memory LRU byte bound; maxBytes <= 0 means unbounded.
	maxBytes  int64
	bytes     int64
	lru       *list.List // of *cacheEntry, front = least recently used
	evictions int64

	// disk is the persistent tier, or nil.
	disk *diskcache.Store

	// Fingerprint memos, keyed by identity: functions and profiles are
	// immutable once built, so hashing each at most once is sound.
	fnFP   map[*cfg.Func]fnPrints
	profFP map[*bl.Profile]profPrints
}

// fnPrints caches one function's slice fingerprints: the CFG shape, the
// per-block instruction counts, and the block bodies. Together the
// three slices cover the whole function (FingerprintFunc combines
// shape and body), so any edit moves at least one of them.
type fnPrints struct {
	shape  uint64
	counts uint64
	body   uint64
}

func (p fnPrints) full() uint64 { return hash2(p.shape, p.body) }

// profPrints caches one profile's fingerprints: the whole profile and
// its recording-edge set alone (the only part of the profile the
// automaton stage reads).
type profPrints struct {
	prof uint64
	rec  uint64
}

// NewCache returns an empty, unbounded, memory-only artifact cache.
func NewCache() *Cache { return newCache(0, nil) }

// newCache returns a cache with an in-memory byte bound (<= 0 means
// unbounded) and an optional persistent tier.
func newCache(maxBytes int64, disk *diskcache.Store) *Cache {
	return &Cache{
		entries:  map[cacheKey]*cacheEntry{},
		maxBytes: maxBytes,
		lru:      list.New(),
		disk:     disk,
		fnFP:     map[*cfg.Func]fnPrints{},
		profFP:   map[*bl.Profile]profPrints{},
	}
}

// Stats returns a snapshot of both tiers' counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	s := CacheStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Entries:      len(c.entries),
		Bytes:        c.bytes,
		MemEvictions: c.evictions,
	}
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		s.DiskEnabled = true
		s.Disk = disk.Stats()
	}
	return s
}

// diskOps carries the persistent-tier plumbing for one cache key: where
// to look, how to encode a computed bundle, and how to decode a stored
// one back into live artifacts. The decode closure captures the live
// objects (function graph, recording-edge set, HPG) the bundle must be
// attached to, so revived artifacts point at the same structures a fresh
// compute would.
type diskOps struct {
	key    diskcache.Key
	encode func(val any, cost map[StageName]time.Duration) []byte
	decode func(data []byte) (any, map[StageName]time.Duration, error)
}

// do returns the cached bundle for key: memory first, then disk (when
// ops is non-nil), then compute. The first request is the leader;
// concurrent callers wait for it, so a disk entry is decoded at most
// once per process and a bundle computed at most once (single-flight).
// Computed bundles are written through to disk; disk payloads that fail
// to decode are rejected (deleted) and silently recomputed. Failed
// computations are evicted so a later retry — for example after a
// cancelled context — can succeed.
//
// The returned decode duration is nonzero only for the leader of a
// disk hit: the wall-clock cost of decoding the payload, reported
// separately from the bundle's stored compute costs so incremental
// replay numbers never conflate decode time with stage compute time.
func (c *Cache) do(key cacheKey, ops *diskOps, compute func() (any, map[StageName]time.Duration, error)) (any, map[StageName]time.Duration, Provenance, time.Duration, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToBack(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, nil, SourceComputed, 0, e.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e.val, e.cost, SourceMemory, 0, nil
	}
	e := &cacheEntry{ready: make(chan struct{}), key: key}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	prov := SourceComputed
	var decodeTime time.Duration
	if c.disk != nil && ops != nil {
		if data, ok := c.disk.Get(ops.key); ok {
			t0 := time.Now()
			val, cost, err := ops.decode(data)
			if err == nil {
				decodeTime = time.Since(t0)
				c.disk.Hit(decodeTime)
				e.val, e.cost = val, cost
				prov = SourceDisk
			} else {
				// Corrupt, truncated or version-skewed: a miss, never an
				// error. The recompute below rewrites the entry.
				c.disk.Reject(ops.key)
			}
		}
	}
	if prov == SourceComputed {
		e.val, e.cost, e.err = compute()
	}
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		return nil, nil, SourceComputed, 0, e.err
	}
	if c.disk != nil && ops != nil && prov == SourceComputed {
		c.disk.Put(ops.key, ops.encode(e.val, e.cost))
	}

	c.mu.Lock()
	e.size = approxSize(e.val)
	e.elem = c.lru.PushBack(e)
	c.bytes += e.size
	c.evictMemoryLocked()
	c.mu.Unlock()
	return e.val, e.cost, prov, decodeTime, nil
}

// evictMemoryLocked drops least-recently-used completed entries until
// the in-memory byte bound is met. Dropped bundles remain on disk (when
// a persistent tier is attached), so re-requests decode instead of
// recomputing. Eviction is safe under waiters: they hold the entry
// pointer directly.
func (c *Cache) evictMemoryLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 0 {
		e := c.lru.Front().Value.(*cacheEntry)
		c.lru.Remove(e.elem)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// --- In-memory footprint estimation ---------------------------------------

// approxSize estimates the resident bytes of a cached bundle — not
// exact, but proportional, which is all the LRU bound needs.
func approxSize(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case []bl.Path:
		n := int64(48)
		for _, p := range x {
			n += 32 + int64(len(p.Edges))*8
		}
		return n
	case *constprop.Result:
		return sizeSolution(x)
	case *automaton.Automaton:
		return int64(x.NumStates()) * 64 // trie maps, accept/depth arrays
	case *trace.HPG:
		n := sizeGraph(x.G)
		n += int64(len(x.OrigNode))*8 + int64(len(x.State))*4 + int64(len(x.OrigEdge))*8
		n += int64(len(x.Recording)) * 16
		return n
	case *bl.Profile:
		return sizeProfile(x)
	case *feasible.Edges:
		return 48 + int64(len(x.Infeasible))
	case ClientOut:
		var n int64 = 32
		if x.Live != nil {
			n += sizeBitsetSolution(x.Live.Sol)
		}
		if x.Avail != nil {
			n += sizeBitsetSolution(x.Avail.Sol)
			// The expression universe is shared across tiers; charge a
			// nominal per-bundle share rather than its full footprint.
			n += int64(x.Avail.U.Size()) * 8
		}
		return n
	case ReduceOut:
		n := sizeGraph(x.Red.G) + sizeSolution(x.RedSol)
		n += int64(len(x.Red.Class))*8 + int64(len(x.Red.Rep))*8 + int64(len(x.Red.OrigNode))*8
		n += int64(len(x.Red.OrigEdge))*8 + int64(len(x.Red.Hot))*8 + int64(len(x.Red.Weights))*8
		n += int64(len(x.Red.Recording)) * 16
		for _, m := range x.Red.Members {
			n += 24 + int64(len(m))*8
		}
		return n
	}
	return 256
}

func sizeGraph(g *cfg.Graph) int64 {
	n := int64(96) + int64(len(g.Name))
	for _, nd := range g.Nodes {
		n += 120 + int64(len(nd.Name)) + int64(len(nd.Instrs))*64
		n += int64(len(nd.Out)+len(nd.In)) * 8
	}
	n += int64(len(g.Edges)) * 48
	return n
}

func sizeSolution(r *constprop.Result) int64 {
	if r == nil {
		return 0
	}
	n := int64(96) + int64(len(r.Sol.Reached)) + int64(len(r.Sol.EdgeExecutable))
	for _, f := range r.Sol.In {
		if env, ok := f.(constprop.Env); ok {
			n += 16 + int64(len(env))*24
		}
	}
	return n
}

// sizeBitsetSolution estimates the footprint of a bit-vector client
// solution (liveness or available expressions): the per-node word slices
// plus the solution's bookkeeping slices.
func sizeBitsetSolution(s *dataflow.Solution) int64 {
	if s == nil {
		return 0
	}
	n := int64(96) + int64(len(s.Reached)) + int64(len(s.EdgeExecutable))
	for _, f := range s.In {
		switch x := f.(type) {
		case liveness.Set:
			n += 24 + int64(len(x))*8
		case availexpr.Set:
			n += 24 + int64(len(x))*8
		}
	}
	return n
}

func sizeProfile(p *bl.Profile) int64 {
	if p == nil {
		return 0
	}
	n := int64(96) + int64(len(p.FuncName)) + int64(len(p.R))*16
	for k, e := range p.Entries {
		n += 64 + int64(len(k)) + int64(len(e.Path.Edges))*8
	}
	return n
}

// --- Fingerprints --------------------------------------------------------

// fnv1a64 accumulates a 64-bit FNV-1a hash.
type fnv1a64 uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFNV() fnv1a64 { return fnvOffset64 }

func (h *fnv1a64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	*h = fnv1a64(x)
}

func (h *fnv1a64) i64(v int64) { h.u64(uint64(v)) }
func (h *fnv1a64) int(v int)   { h.u64(uint64(int64(v))) }
func (h *fnv1a64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime64
	}
	*h = fnv1a64(x)
	h.int(len(s))
}

// funcFP returns (computing at most once) the slice fingerprints of fn.
func (c *Cache) funcFP(fn *cfg.Func) fnPrints {
	c.mu.Lock()
	if fp, ok := c.fnFP[fn]; ok {
		c.mu.Unlock()
		return fp
	}
	c.mu.Unlock()
	fp := fnPrints{
		shape:  FingerprintShape(fn),
		counts: FingerprintCounts(fn),
		body:   FingerprintBody(fn),
	}
	c.mu.Lock()
	c.fnFP[fn] = fp
	c.mu.Unlock()
	return fp
}

// profileFP returns (computing at most once) the fingerprints of a
// training profile: the whole profile (function name, recording edges,
// every (path, count) entry, order-independently) and the recording
// set alone.
func (c *Cache) profileFP(pr *bl.Profile) profPrints {
	if pr == nil {
		return profPrints{}
	}
	c.mu.Lock()
	if fp, ok := c.profFP[pr]; ok {
		c.mu.Unlock()
		return fp
	}
	c.mu.Unlock()
	fp := profPrints{prof: FingerprintProfile(pr), rec: FingerprintRecording(pr.R)}
	c.mu.Lock()
	c.profFP[pr] = fp
	c.mu.Unlock()
	return fp
}

// --- Per-stage Merkle keys -------------------------------------------------
//
// Each stage's key hashes exactly the input slice it reads plus the
// digests of its upstream stage keys, forming a Merkle-style dependency
// chain. The table (mirrored by Delta's dirty-set prediction, so keep
// the two in sync):
//
//	stage      slice                    chain                 knob
//	baseline   shape + body             —                     —
//	select     shape + counts + prof    —                     CA
//	automaton  shape + recording        hot-set fingerprint   —
//	trace      shape + body             automaton key         —
//	analyze    —                        trace key             —
//	translate  shape + prof             automaton key         —
//	reduce     —                        analyze+translate     CR
//	feasible   shape + body (CFG tier)  trace key (HPG tier)  —
//
// The Options.Feasible flag has no knob dimension of its own — it rides
// the Merkle chains instead: a masked baseline or CFG client bundle
// chains keyFeasibleCFG, a masked analyze bundle chains keyFeasibleHPG,
// and the feasible-aware reduce key (and through it the reduced client
// bundles) folds keyFeasibleHPG into its chain, so feasible-on and
// feasible-off runs can never collide on an artifact that differs.
//
// The automaton chains the *hot-set fingerprint* rather than the select
// key: the hot set is the select stage's output, so addressing by it
// lets two CA values (or an explicit AnalyzeFuncHot set) that select
// identical paths share everything downstream — and lets a counts-only
// edit that happens to re-select the same hot set replay the whole
// qualification suffix. The trace slice includes block bodies because
// the HPG copies them into its nodes; the translate slice does not —
// an HPG's shape and edge numbering depend only on the CFG shape and
// the automaton, so a body-only edit replays translate from cache.

func (c *Cache) keyBaseline(fn *cfg.Func) cacheKey {
	return cacheKey{kind: kindBaseline, slice: c.funcFP(fn).full()}
}

func (c *Cache) keySelect(fn *cfg.Func, train *bl.Profile, ca float64) cacheKey {
	f := c.funcFP(fn)
	return cacheKey{
		kind:  kindSelect,
		slice: hash3(f.shape, f.counts, c.profileFP(train).prof),
		knob:  knobBits(ca),
	}
}

func (c *Cache) keyAutomaton(fn *cfg.Func, train *bl.Profile, hot []bl.Path) cacheKey {
	return cacheKey{
		kind:  kindAutomaton,
		slice: hash2(c.funcFP(fn).shape, c.profileFP(train).rec),
		chain: FingerprintHot(hot),
	}
}

func (c *Cache) keyTrace(fn *cfg.Func, train *bl.Profile, hot []bl.Path) cacheKey {
	f := c.funcFP(fn)
	return cacheKey{
		kind:  kindTrace,
		slice: hash2(f.shape, f.body),
		chain: c.keyAutomaton(fn, train, hot).digest(),
	}
}

func (c *Cache) keyAnalyze(fn *cfg.Func, train *bl.Profile, hot []bl.Path) cacheKey {
	return cacheKey{
		kind:  kindAnalyze,
		chain: c.keyTrace(fn, train, hot).digest(),
	}
}

func (c *Cache) keyTranslate(fn *cfg.Func, train *bl.Profile, hot []bl.Path) cacheKey {
	return cacheKey{
		kind:  kindTranslate,
		slice: hash2(c.funcFP(fn).shape, c.profileFP(train).prof),
		chain: c.keyAutomaton(fn, train, hot).digest(),
	}
}

func (c *Cache) keyReduce(fn *cfg.Func, train *bl.Profile, hot []bl.Path, cr float64) cacheKey {
	return cacheKey{
		kind: kindReduced,
		chain: hash2(c.keyAnalyze(fn, train, hot).digest(),
			c.keyTranslate(fn, train, hot).digest()),
		knob: knobBits(cr),
	}
}

// keyFeasibleCFG keys the CFG tier's infeasible-edge set: detection
// reads the whole function (shape + bodies) and nothing else.
func (c *Cache) keyFeasibleCFG(fn *cfg.Func) cacheKey {
	return cacheKey{kind: kindFeasible, slice: c.funcFP(fn).full()}
}

// keyFeasibleHPG keys the HPG tier's infeasible-edge set: detection's
// only input is the traced graph, so a pure chain key over the trace
// stage suffices.
func (c *Cache) keyFeasibleHPG(fn *cfg.Func, train *bl.Profile, hot []bl.Path) cacheKey {
	return cacheKey{kind: kindFeasible, chain: c.keyTrace(fn, train, hot).digest()}
}

// keyAnalyzeMasked is the analyze-stage key under Options.Feasible:
// when the HPG tier's mask is non-empty the solution differs from the
// unmasked one, so the key chains the feasibility artifact (whose own
// chain already covers the trace stage). An empty mask produces the
// identical solution, so those runs deliberately share the unmasked
// bundle.
func (c *Cache) keyAnalyzeMasked(fn *cfg.Func, train *bl.Profile, hot []bl.Path, masked bool) cacheKey {
	if !masked {
		return c.keyAnalyze(fn, train, hot)
	}
	return cacheKey{kind: kindAnalyze, chain: c.keyFeasibleHPG(fn, train, hot).digest()}
}

// keyReduceFeasible is the reduce-stage key under Options.Feasible. The
// reduce stage itself re-detects on the quotient graph, so its output
// depends on the flag even when the HPG mask is empty — the chain folds
// in the feasibility key whenever the flag is set.
func (c *Cache) keyReduceFeasible(fn *cfg.Func, train *bl.Profile, hot []bl.Path, cr float64, feas bool) cacheKey {
	k := c.keyReduce(fn, train, hot, cr)
	if feas {
		k.chain = hash2(k.chain, c.keyFeasibleHPG(fn, train, hot).digest())
	}
	return k
}

// FingerprintFunc hashes the full structure of a function: CFG shape,
// instructions, terminators and register names. Two functions with the
// same fingerprint produce identical pipeline artifacts. It is the
// combination of the shape and body slices — the per-stage cache keys
// hash only the slice(s) a stage actually reads, so an edit that moves
// FingerprintFunc may still leave some stage keys (and their cached
// artifacts) intact.
func FingerprintFunc(fn *cfg.Func) uint64 {
	return hash2(FingerprintShape(fn), FingerprintBody(fn))
}

// FingerprintShape hashes the CFG shape slice: the function name, the
// entry/exit vertices, every node's ID, name and terminator kind, and
// every edge with its successor slot — but no instruction bodies, no
// terminator operands and no register names. The shape determines the
// Ball-Larus edge numbering, path keys, and the node/edge structure of
// every derived graph (HPG node names copy original node names, so
// names are shape).
func FingerprintShape(fn *cfg.Func) uint64 {
	h := newFNV()
	h.str(fn.Name)
	g := fn.G
	h.int(int(g.Entry))
	h.int(int(g.Exit))
	h.int(len(g.Nodes))
	for _, nd := range g.Nodes {
		h.int(int(nd.ID))
		h.str(nd.Name)
		h.u64(uint64(nd.Kind))
	}
	h.int(len(g.Edges))
	for _, e := range g.Edges {
		h.int(int(e.From))
		h.int(int(e.To))
		h.int(e.Slot)
	}
	return uint64(h)
}

// FingerprintCounts hashes the per-block instruction counts — the only
// part of the block bodies hot-path selection reads (a path's dynamic
// weight is frequency × instructions along it). A constant tweak
// inside a block leaves counts unchanged; inserting or deleting an
// instruction moves them.
func FingerprintCounts(fn *cfg.Func) uint64 {
	h := newFNV()
	h.int(len(fn.G.Nodes))
	for _, nd := range fn.G.Nodes {
		h.int(len(nd.Instrs))
	}
	return uint64(h)
}

// FingerprintBody hashes the block-body slice: register names and
// parameters, every instruction, and the terminator operands — the
// contents the shape slice deliberately omits. Shape + body together
// cover the whole function.
func FingerprintBody(fn *cfg.Func) uint64 {
	h := newFNV()
	h.int(len(fn.Params))
	for _, p := range fn.Params {
		h.i64(int64(p))
	}
	h.int(len(fn.VarNames))
	for _, n := range fn.VarNames {
		h.str(n)
	}
	h.int(len(fn.G.Nodes))
	for _, nd := range fn.G.Nodes {
		h.i64(int64(nd.Cond))
		h.i64(int64(nd.Ret))
		h.int(len(nd.Instrs))
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			h.u64(uint64(in.Op))
			h.i64(int64(in.Dst))
			h.i64(int64(in.A))
			h.i64(int64(in.B))
			h.i64(int64(in.K))
			h.str(in.Callee)
			h.int(len(in.Args))
			for _, a := range in.Args {
				h.i64(int64(a))
			}
		}
	}
	return uint64(h)
}

// FingerprintRecording hashes a recording-edge set, order-independently
// — the only slice of the training profile the automaton stage reads
// (its keywords come from the hot set, which is chained separately).
func FingerprintRecording(R map[cfg.EdgeID]bool) uint64 {
	h := newFNV()
	redges := make([]int, 0, len(R))
	for e, on := range R {
		if on {
			redges = append(redges, int(e))
		}
	}
	sort.Ints(redges)
	h.int(len(redges))
	for _, e := range redges {
		h.int(e)
	}
	return uint64(h)
}

// FingerprintProfile hashes a Ball-Larus profile: recording edges plus
// every (path key, count) pair, independent of map iteration order.
func FingerprintProfile(pr *bl.Profile) uint64 {
	h := newFNV()
	h.str(pr.FuncName)
	redges := make([]int, 0, len(pr.R))
	for e, on := range pr.R {
		if on {
			redges = append(redges, int(e))
		}
	}
	sort.Ints(redges)
	for _, e := range redges {
		h.int(e)
	}
	keys := make([]string, 0, len(pr.Entries))
	for k := range pr.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.int(len(keys))
	for _, k := range keys {
		h.str(k)
		h.i64(pr.Entries[k].Count)
	}
	return uint64(h)
}

// FingerprintHot hashes an ordered hot-path set.
func FingerprintHot(hot []bl.Path) uint64 {
	h := newFNV()
	h.int(len(hot))
	for _, p := range hot {
		h.str(p.Key())
	}
	return uint64(h)
}

func knobBits(v float64) uint64 { return math.Float64bits(v) }
