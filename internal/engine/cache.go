package engine

import (
	"math"
	"sort"
	"sync"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// The cache kinds: each names the artifact bundle a key identifies.
const (
	kindBaseline  = "baseline"  // OrigSol; keyed by function only
	kindSelect    = "select"    // hot-path set; keyed by (function, profile, CA)
	kindQualified = "qualified" // automaton + HPG + HPG solution + translated profile
	kindReduced   = "reduced"   // reduced HPG + its solution
)

// cacheKey identifies one artifact bundle. Artifacts are keyed by what
// they actually depend on, so a parameter sweep reuses everything the
// swept knob cannot influence:
//
//   - baseline:  (function)                       — shared by every CA/CR point
//   - select:    (function, profile, CA)          — shared by every CR point
//   - qualified: (function, profile, hot set)     — shared by every CR point,
//     and by CA points that select the same hot paths
//   - reduced:   (function, profile, hot set, CR)
//
// Downstream of selection, the hot set is fingerprinted rather than the
// CA knob so that explicitly chosen hot sets (AnalyzeFuncHot, the
// edge-selection ablation) share the same cache, and so that two CA
// values selecting identical paths hit.
type cacheKey struct {
	kind string
	fn   uint64
	prof uint64
	hot  uint64
	knob uint64 // math.Float64bits of the swept knob (CR, or CA for select)
}

// cacheEntry is one materialized bundle plus the compute cost of the run
// that produced it (so cache hits can still report meaningful stage
// durations). ready is closed once val/cost/err are final, giving
// single-flight semantics: concurrent requests for the same key block on
// the first computation instead of duplicating it.
type cacheEntry struct {
	ready chan struct{}
	val   any
	cost  map[StageName]time.Duration
	err   error
}

// CacheStats reports artifact-cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Cache is the cross-run artifact cache. All methods are safe for
// concurrent use by the scheduler's workers.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    int64
	misses  int64

	// Fingerprint memos, keyed by identity: functions and profiles are
	// immutable once built, so hashing each at most once is sound.
	fnFP   map[*cfg.Func]uint64
	profFP map[*bl.Profile]uint64
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		entries: map[cacheKey]*cacheEntry{},
		fnFP:    map[*cfg.Func]uint64{},
		profFP:  map[*bl.Profile]uint64{},
	}
}

// Stats returns a snapshot of hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// do returns the cached bundle for key, computing it with compute on the
// first request (single-flight: concurrent callers wait for the leader).
// Failed computations are evicted so a later retry — for example after a
// cancelled context — can succeed.
func (c *Cache) do(key cacheKey, compute func() (any, map[StageName]time.Duration, error)) (any, map[StageName]time.Duration, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, nil, false, e.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e.val, e.cost, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.val, e.cost, e.err = compute()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		return nil, nil, false, e.err
	}
	return e.val, e.cost, false, nil
}

// --- Fingerprints --------------------------------------------------------

// fnv1a64 accumulates a 64-bit FNV-1a hash.
type fnv1a64 uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFNV() fnv1a64 { return fnvOffset64 }

func (h *fnv1a64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	*h = fnv1a64(x)
}

func (h *fnv1a64) i64(v int64) { h.u64(uint64(v)) }
func (h *fnv1a64) int(v int)   { h.u64(uint64(int64(v))) }
func (h *fnv1a64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime64
	}
	*h = fnv1a64(x)
	h.int(len(s))
}

// funcFP returns (computing at most once) the structural fingerprint of
// fn: its name, registers, every instruction, terminator and edge.
func (c *Cache) funcFP(fn *cfg.Func) uint64 {
	c.mu.Lock()
	if fp, ok := c.fnFP[fn]; ok {
		c.mu.Unlock()
		return fp
	}
	c.mu.Unlock()
	fp := FingerprintFunc(fn)
	c.mu.Lock()
	c.fnFP[fn] = fp
	c.mu.Unlock()
	return fp
}

// profileFP returns (computing at most once) the fingerprint of a
// training profile: its function name, recording edges, and every
// (path, count) entry, order-independently.
func (c *Cache) profileFP(pr *bl.Profile) uint64 {
	if pr == nil {
		return 0
	}
	c.mu.Lock()
	if fp, ok := c.profFP[pr]; ok {
		c.mu.Unlock()
		return fp
	}
	c.mu.Unlock()
	fp := FingerprintProfile(pr)
	c.mu.Lock()
	c.profFP[pr] = fp
	c.mu.Unlock()
	return fp
}

// FingerprintFunc hashes the full structure of a function: CFG shape,
// instructions, terminators and register names. Two functions with the
// same fingerprint produce identical pipeline artifacts.
func FingerprintFunc(fn *cfg.Func) uint64 {
	h := newFNV()
	h.str(fn.Name)
	h.int(len(fn.Params))
	for _, p := range fn.Params {
		h.i64(int64(p))
	}
	h.int(len(fn.VarNames))
	for _, n := range fn.VarNames {
		h.str(n)
	}
	g := fn.G
	h.int(int(g.Entry))
	h.int(int(g.Exit))
	h.int(len(g.Nodes))
	for _, nd := range g.Nodes {
		h.int(int(nd.ID))
		h.u64(uint64(nd.Kind))
		h.i64(int64(nd.Cond))
		h.i64(int64(nd.Ret))
		h.int(len(nd.Instrs))
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			h.u64(uint64(in.Op))
			h.i64(int64(in.Dst))
			h.i64(int64(in.A))
			h.i64(int64(in.B))
			h.i64(int64(in.K))
			h.str(in.Callee)
			h.int(len(in.Args))
			for _, a := range in.Args {
				h.i64(int64(a))
			}
		}
	}
	h.int(len(g.Edges))
	for _, e := range g.Edges {
		h.int(int(e.From))
		h.int(int(e.To))
		h.int(e.Slot)
	}
	return uint64(h)
}

// FingerprintProfile hashes a Ball-Larus profile: recording edges plus
// every (path key, count) pair, independent of map iteration order.
func FingerprintProfile(pr *bl.Profile) uint64 {
	h := newFNV()
	h.str(pr.FuncName)
	redges := make([]int, 0, len(pr.R))
	for e, on := range pr.R {
		if on {
			redges = append(redges, int(e))
		}
	}
	sort.Ints(redges)
	for _, e := range redges {
		h.int(e)
	}
	keys := make([]string, 0, len(pr.Entries))
	for k := range pr.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.int(len(keys))
	for _, k := range keys {
		h.str(k)
		h.i64(pr.Entries[k].Count)
	}
	return uint64(h)
}

// FingerprintHot hashes an ordered hot-path set.
func FingerprintHot(hot []bl.Path) uint64 {
	h := newFNV()
	h.int(len(hot))
	for _, p := range hot {
		h.str(p.Key())
	}
	return uint64(h)
}

func knobBits(v float64) uint64 { return math.Float64bits(v) }
