package engine_test

import (
	"strings"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
)

// --- Incremental re-analysis: edit-class differential ---------------------

// The base program for edit-class testing. main has a hot loop (so the
// qualification suffix runs and its per-stage cache keys matter) and
// helper branches on training input (so a pure input change moves its
// profile without touching main's).
const incrBase = `
func helper(k) {
	m = input() % 10;
	if (m < 9) { s = 4; } else { s = 7; }
	return k * s;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		if (i % 3 == 0) { t = t + 5; } else { t = t - 1; }
		t = t + helper(i);
		i = i + 1;
	}
	print(t);
}
`

// incrProfile compiles src and collects its training profile under the
// given argument vector and input seed.
func incrProfile(t *testing.T, src string, arg int64, seed uint64) (*cfg.Program, *bl.ProgramProfile) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:  []ir.Value{ir.Value(arg)},
		Input: &interp.SliceInput{Values: stream(seed)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, train
}

// stageNames renders a stage list for error messages.
func stageNames(ss []engine.StageName) string {
	strs := make([]string, len(ss))
	for i, s := range ss {
		strs[i] = string(s)
	}
	return strings.Join(strs, ",")
}

// replayedStages returns the pipeline stages of fr served from the cache.
func replayedStages(fr *engine.FuncResult) []engine.StageName {
	var out []engine.StageName
	for _, s := range engine.PipelineStages {
		if fr.Metrics.Stages[s].CacheHits > 0 {
			out = append(out, s)
		}
	}
	return out
}

// TestIncrementalEditClasses is the tentpole's differential contract.
// For every edit class, re-analyzing the edited program on a cache warmed
// by the base version must (a) produce results byte-identical to a cold
// analysis of the edited program, (b) classify the edit as expected, and
// (c) be sound: every stage Delta predicts as replayable is actually
// served from the cache (predicted-clean keys must not have moved).
func TestIncrementalEditClasses(t *testing.T) {
	o := engine.Options{CA: 0.97, CR: 0.95}
	cases := []struct {
		name string
		src  string // edited source (base is incrBase)
		arg  int64
		seed uint64
		// want maps function name to the expected delta class.
		want map[string]engine.DeltaClass
		// wantReplay, when non-nil, pins the predicted replay set per
		// function (nil entries mean "don't care").
		wantReplay map[string][]engine.StageName
	}{
		{
			// A constant tweak inside a block: bodies move, counts and
			// shape do not, and control flow (hence the profile) is
			// untouched. The cheapest class: select, automaton and
			// translate all replay.
			name: "body",
			src:  strings.Replace(incrBase, "t = t + 5;", "t = t + 9;", 1),
			arg:  60, seed: 7,
			want: map[string]engine.DeltaClass{"helper": engine.DeltaNone, "main": engine.DeltaBody},
			wantReplay: map[string][]engine.StageName{
				"main": {engine.StageSelect, engine.StageAutomaton, engine.StageTranslate},
			},
		},
		{
			// An inserted instruction: per-block counts move (selection's
			// slice), so the prediction conservatively recomputes the
			// whole qualification chain.
			name: "counts",
			src:  strings.Replace(incrBase, "i = i + 1;", "i = i + 1; i = i + 0;", 1),
			arg:  60, seed: 7,
			want:       map[string]engine.DeltaClass{"helper": engine.DeltaNone, "main": engine.DeltaCounts},
			wantReplay: map[string][]engine.StageName{"main": nil},
		},
		{
			// A new branch: the CFG shape itself moves and everything
			// recomputes.
			name: "shape",
			src:  strings.Replace(incrBase, "print(t);", "if (t > 1000) { t = 0; }\n\tprint(t);", 1),
			arg:  60, seed: 7,
			want:       map[string]engine.DeltaClass{"helper": engine.DeltaNone, "main": engine.DeltaShape},
			wantReplay: map[string][]engine.StageName{"main": nil},
		},
		{
			// Untouched source, new training input: helper's branch
			// distribution shifts (profile class) while main's paths are
			// input-independent and replay completely.
			name: "profile",
			src:  incrBase,
			arg:  60, seed: 11,
			want: map[string]engine.DeltaClass{"helper": engine.DeltaProfile, "main": engine.DeltaNone},
			wantReplay: map[string][]engine.StageName{
				"helper": {engine.StageBaseline},
				"main":   append([]engine.StageName(nil), engine.PipelineStages...),
			},
		},
	}

	baseProg, baseTrain := incrProfile(t, incrBase, 60, 7)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			editProg, editTrain := incrProfile(t, tc.src, tc.arg, tc.seed)

			// Cold reference on the edited version.
			coldRes, err := engine.New(engine.Config{Workers: 1}).AnalyzeProgram(ctx, editProg, editTrain, o)
			if err != nil {
				t.Fatal(err)
			}
			cold := summarize(coldRes)

			// Warm incremental: analyze the base, then the edit, on one
			// cached engine.
			eng := engine.New(engine.Config{Workers: 1, Cache: true})
			if _, err := eng.AnalyzeProgram(ctx, baseProg, baseTrain, o); err != nil {
				t.Fatal(err)
			}
			res, err := eng.AnalyzeProgram(ctx, editProg, editTrain, o)
			if err != nil {
				t.Fatal(err)
			}
			if got := summarize(res); got != cold {
				t.Errorf("incremental result differs from cold recompute\nincremental:\n%s\ncold:\n%s", got, cold)
			}

			deltas := engine.DiffPrograms(baseProg, editProg, baseTrain, editTrain)
			if len(deltas) != len(editProg.Order) {
				t.Fatalf("DiffPrograms returned %d deltas for %d functions", len(deltas), len(editProg.Order))
			}
			for _, d := range deltas {
				if want, ok := tc.want[d.Func]; ok && d.Class != want {
					t.Errorf("%s classified %q, want %q (%s)", d.Func, d.Class, want, d)
				}
				if want, ok := tc.wantReplay[d.Func]; ok {
					if got := stageNames(d.ReplayStages()); got != stageNames(want) {
						t.Errorf("%s predicted replay [%s], want [%s]", d.Func, got, stageNames(want))
					}
				}
				if !strings.Contains(d.String(), string(d.Class)) {
					t.Errorf("Delta.String() %q does not name the class", d)
				}

				// Soundness: a predicted-replay stage must be a cache hit
				// (its key, by construction, did not move).
				fr := res.Funcs[d.Func]
				for _, s := range engine.PipelineStages {
					sm := fr.Metrics.Stages[s]
					if !d.Dirty(s) && sm.Runs > 0 && sm.CacheHits != sm.Runs {
						t.Errorf("%s/%s: predicted replay but %d/%d runs hit the cache (%s)",
							d.Func, s, sm.CacheHits, sm.Runs, d)
					}
				}
			}

			// The headline: a body-only edit replays at least three
			// pipeline stages of the qualified function.
			if tc.name == "body" {
				fr := res.Funcs["main"]
				if !fr.Qualified() {
					t.Fatal("main did not qualify; the body-edit replay claim needs hot paths")
				}
				replayed := replayedStages(fr)
				if len(replayed) < 3 {
					t.Errorf("body edit replayed only [%s], want >= 3 stages", stageNames(replayed))
				}
				for _, s := range []engine.StageName{engine.StageSelect, engine.StageAutomaton, engine.StageTranslate} {
					if sm := fr.Metrics.Stages[s]; sm.CacheHits == 0 {
						t.Errorf("body edit recomputed %s (want cache replay): %+v", s, sm)
					}
				}
				// And the recomputed stages must NOT claim cache hits.
				for _, s := range []engine.StageName{engine.StageTrace, engine.StageAnalyze, engine.StageReduce} {
					if sm := fr.Metrics.Stages[s]; sm.CacheHits != 0 {
						t.Errorf("body edit claims a cache hit for dirty stage %s: %+v", s, sm)
					}
				}
			}
		})
	}
}

// TestDiffFuncCold: with no prior version every stage is dirty and the
// class is DeltaCold.
func TestDiffFuncCold(t *testing.T) {
	prog, train := incrProfile(t, incrBase, 60, 7)
	d := engine.DiffFunc(nil, prog.Funcs["main"], nil, train.Funcs["main"])
	if d.Class != engine.DeltaCold {
		t.Errorf("cold diff classified %q", d.Class)
	}
	if got := d.ReplayStages(); len(got) != 0 {
		t.Errorf("cold diff predicts replays: %s", stageNames(got))
	}
	if got := d.DirtyStages(); len(got) != len(engine.PipelineStages) {
		t.Errorf("cold diff dirty set [%s], want all pipeline stages", stageNames(got))
	}
}

// --- Decode-time split regression -----------------------------------------

// TestDecodeSplitDiskReplay pins the decode-cost accounting: a stage
// replayed from the persistent tier reports (a) Duration equal to the
// stored compute cost of the run that produced the artifact — decode time
// is never folded in — and (b) a separate, nonzero Decode. Memory hits
// and fresh computes carry zero Decode.
func TestDecodeSplitDiskReplay(t *testing.T) {
	prog, train := fixture(t)
	o := sweepOpts[2]
	dir := t.TempDir()

	writer := mustOpen(t, dir, 1)
	base, err := writer.AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh computes and memory hits never pay a decode.
	for name, fr := range base.Funcs {
		for s, sm := range fr.Metrics.Stages {
			if sm.Decode != 0 {
				t.Errorf("%s/%s: populating run reports decode %v", name, s, sm.Decode)
			}
		}
	}

	// Fresh engine, same directory: every pipeline artifact revives from
	// disk.
	reader := mustOpen(t, dir, 1)
	res, err := reader.AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		t.Fatal(err)
	}
	diskStages := 0
	for name, fr := range res.Funcs {
		for s, sm := range fr.Metrics.Stages {
			switch {
			case sm.DiskHits > 0:
				diskStages++
				if sm.Decode <= 0 {
					t.Errorf("%s/%s: disk replay reports no decode cost: %+v", name, s, sm)
				}
				if sm.DecodeNanos() != sm.Decode.Nanoseconds() {
					t.Errorf("%s/%s: DecodeNanos()=%d, Decode=%v", name, s, sm.DecodeNanos(), sm.Decode)
				}
				want := base.Funcs[name].Metrics.Stages[s].Duration
				if sm.Duration != want {
					t.Errorf("%s/%s: replay Duration %v != stored compute cost %v (decode folded in?)",
						name, s, sm.Duration, want)
				}
			case sm.Decode != 0:
				t.Errorf("%s/%s: non-disk stage carries decode cost %v", name, s, sm.Decode)
			}
		}
	}
	if diskStages == 0 {
		t.Fatal("disk-warm run decoded nothing from the persistent tier")
	}
}
