package engine_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pathflow/internal/engine"
	"pathflow/internal/engine/diskcache"
)

// sweepAll runs every sweep point through eng and concatenates the
// summaries. Two engines are equivalent iff these strings are
// byte-identical.
func sweepAll(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	prog, train := fixture(t)
	var sb strings.Builder
	for _, o := range sweepOpts {
		res, err := eng.AnalyzeProgram(ctx, prog, train, o)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(summarize(res))
	}
	return sb.String()
}

// mustOpen opens an engine with a persistent tier rooted at dir.
func mustOpen(t *testing.T, dir string, workers int) *engine.Engine {
	t.Helper()
	eng, err := engine.Open(engine.Config{Workers: workers, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestDiskWarmMatchesColdAndMemoryWarm is the tentpole's differential
// contract: cold, memory-warm, and disk-warm runs must produce
// byte-identical results, and the warm tiers must actually be hit.
func TestDiskWarmMatchesColdAndMemoryWarm(t *testing.T) {
	cold := sweepAll(t, engine.New(engine.Config{Workers: 1}))

	dir := t.TempDir()
	writer := mustOpen(t, dir, 1)
	if got := sweepAll(t, writer); got != cold {
		t.Errorf("disk-backed cold run differs from cacheless run:\n%s\n---\n%s", got, cold)
	}
	st := writer.CacheStats()
	if !st.DiskEnabled || st.Disk.Writes == 0 {
		t.Fatalf("populating run wrote nothing to disk: %+v", st)
	}
	if st.Disk.Hits != 0 {
		t.Errorf("populating run claims disk hits: %+v", st.Disk)
	}

	// Second pass on the same engine: pure memory-tier replay.
	if got := sweepAll(t, writer); got != cold {
		t.Error("memory-warm run differs from cold run")
	}
	st2 := writer.CacheStats()
	if st2.Hits <= st.Hits {
		t.Error("memory-warm run recorded no new memory hits")
	}
	if st2.Disk.Hits != 0 {
		t.Errorf("memory-warm run went to disk: %+v", st2.Disk)
	}

	// Fresh process, same directory: every artifact revives from disk.
	reader := mustOpen(t, dir, 1)
	if got := sweepAll(t, reader); got != cold {
		t.Error("disk-warm run differs from cold run")
	}
	rst := reader.CacheStats()
	if rst.Disk.Hits == 0 {
		t.Fatalf("disk-warm run recorded no disk hits: %+v", rst.Disk)
	}
	if rst.Disk.Rejects != 0 {
		t.Errorf("disk-warm run rejected entries: %+v", rst.Disk)
	}

	// Provenance must reach per-function metrics: a disk-warm analysis
	// reports SourceDisk stages.
	prog, train := fixture(t)
	reader2 := mustOpen(t, dir, 1)
	res, err := reader2.AnalyzeProgram(ctx, prog, train, sweepOpts[2])
	if err != nil {
		t.Fatal(err)
	}
	disk := 0
	for _, fr := range res.Funcs {
		disk += fr.Metrics.DiskHits()
	}
	if disk == 0 {
		t.Error("disk-warm analysis recorded no per-function disk hits")
	}
}

// TestDiskCorruptionSilentRecompute: damaged cache entries must behave as
// misses — recomputed silently, never surfaced as errors or wrong
// results — and the recompute must rewrite the entry so a later engine
// warm-starts again.
func TestDiskCorruptionSilentRecompute(t *testing.T) {
	cold := sweepAll(t, engine.New(engine.Config{Workers: 1}))
	cases := []struct {
		name        string
		mutate      func(b []byte) []byte
		wantRejects bool // detected lazily at decode (vs dropped at Open)
	}{
		// Too short to hold a header: deleted during Open's scan.
		{"truncate-to-stub", func(b []byte) []byte { return b[:3] }, false},
		// Header intact, payload torn: survives the scan, fails the
		// checksum at first decode.
		{"truncate-mid-payload", func(b []byte) []byte { return b[:len(b)-5] }, true},
		{"payload-bit-flip", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, true},
		// Version skew models an old cache after a format change:
		// dropped during Open's scan.
		{"version-bump", func(b []byte) []byte { b[4] = diskcache.FormatVersion + 1; return b }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sweepAll(t, mustOpen(t, dir, 1)) // populate
			names, err := filepath.Glob(filepath.Join(dir, "*.pfac"))
			if err != nil || len(names) == 0 {
				t.Fatalf("no cache files to corrupt: %v", err)
			}
			for _, name := range names {
				b, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(name, tc.mutate(b), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			damaged := mustOpen(t, dir, 1)
			if got := sweepAll(t, damaged); got != cold {
				t.Fatal("run over corrupted cache produced wrong results")
			}
			st := damaged.CacheStats().Disk
			if st.Hits != 0 {
				t.Errorf("corrupted entries served as hits: %+v", st)
			}
			if tc.wantRejects && st.Rejects == 0 {
				t.Errorf("lazy corruption not rejected: %+v", st)
			}
			if st.Writes == 0 {
				t.Errorf("recompute did not rewrite entries: %+v", st)
			}

			// The rewrite heals the cache: a third engine warm-starts.
			healed := mustOpen(t, dir, 1)
			if got := sweepAll(t, healed); got != cold {
				t.Fatal("healed cache produced wrong results")
			}
			if hst := healed.CacheStats().Disk; hst.Hits == 0 || hst.Rejects != 0 {
				t.Errorf("healed cache not warm: %+v", hst)
			}
		})
	}
}

// TestSharedCacheDirConcurrentEngines: two engines (modeling two
// processes) sharing one CacheDir must not race or double-write; run
// under -race. Writes use O_EXCL temp files plus rename, so concurrent
// writers of the same key are safe (the bundles are bit-identical).
func TestSharedCacheDirConcurrentEngines(t *testing.T) {
	cold := sweepAll(t, engine.New(engine.Config{Workers: 1}))
	dir := t.TempDir()
	prog, train := fixture(t)

	engines := []*engine.Engine{mustOpen(t, dir, 4), mustOpen(t, dir, 4)}
	var wg sync.WaitGroup
	errs := make([]error, len(engines)*len(sweepOpts))
	for i, eng := range engines {
		for j, o := range sweepOpts {
			wg.Add(1)
			go func(slot int, eng *engine.Engine, o engine.Options) {
				defer wg.Done()
				res, err := eng.AnalyzeProgram(ctx, prog, train, o)
				if err == nil && summarize(res) == "" {
					t.Error("empty summary from concurrent analysis")
				}
				errs[slot] = err
			}(i*len(sweepOpts)+j, eng, o)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// After the dust settles both engines and a newcomer agree with the
	// cacheless baseline.
	for i, eng := range engines {
		if got := sweepAll(t, eng); got != cold {
			t.Errorf("engine %d diverged after concurrent sweep", i)
		}
	}
	if got := sweepAll(t, mustOpen(t, dir, 1)); got != cold {
		t.Error("newcomer engine diverged reading the shared directory")
	}
}

// TestMemoryBudgetEviction: a tiny in-memory ceiling forces evictions
// but never changes results; with a disk tier behind it, evicted
// bundles revive from disk instead of recomputing.
func TestMemoryBudgetEviction(t *testing.T) {
	cold := sweepAll(t, engine.New(engine.Config{Workers: 1}))

	tiny := engine.New(engine.Config{Workers: 1, Cache: true, MemoryMaxBytes: 1})
	if got := sweepAll(t, tiny); got != cold {
		t.Error("memory-bounded run differs from cold run")
	}
	st := tiny.CacheStats()
	if st.MemEvictions == 0 {
		t.Fatalf("1-byte budget evicted nothing: %+v", st)
	}
	if st.Bytes > 1<<20 {
		t.Errorf("bounded cache retains %d bytes", st.Bytes)
	}

	// Same ceiling with a disk tier: the second pass serves evicted
	// bundles from disk rather than recomputing everything.
	dir := t.TempDir()
	eng, err := engine.Open(engine.Config{Workers: 1, CacheDir: dir, MemoryMaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepAll(t, eng); got != cold {
		t.Error("disk-backed bounded run differs from cold run")
	}
	first := eng.CacheStats()
	if got := sweepAll(t, eng); got != cold {
		t.Error("second bounded pass differs from cold run")
	}
	second := eng.CacheStats()
	if second.Disk.Hits <= first.Disk.Hits {
		t.Errorf("evicted bundles did not revive from disk: %+v -> %+v",
			first.Disk, second.Disk)
	}
}
