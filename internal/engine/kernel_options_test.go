package engine_test

import (
	"errors"
	"strings"
	"testing"

	"pathflow/internal/dataflow"
	"pathflow/internal/engine"
)

// --- Satellite: kernel selector over every enum value --------------------

// TestKernelOptionsEveryEnumValue pins the kernel plumbing for each
// backend the solver knows: the name round-trips through ParseKernel,
// Options.Validate accepts it, and the one shared remediation hint —
// quoted verbatim by both the CLI and the serve layer's 400 bodies —
// names it. The first out-of-range value must be rejected with that
// same hint, so adding a backend without updating the hint fails here.
func TestKernelOptionsEveryEnumValue(t *testing.T) {
	kernels := []dataflow.Kernel{dataflow.KernelPacked, dataflow.KernelBoxed, dataflow.KernelSparse}
	hint := (&engine.UnknownKernelError{Name: "x"}).Hint()
	for _, k := range kernels {
		name := k.String()
		got, err := engine.ParseKernel(name)
		if err != nil {
			t.Errorf("ParseKernel(%q) = %v, want %v", name, err, k)
			continue
		}
		if got != k {
			t.Errorf("ParseKernel(%q) = %v, want %v", name, got, k)
		}
		if err := (engine.Options{CA: 0.97, CR: 0.95, Kernel: k}).Validate(); err != nil {
			t.Errorf("Validate with kernel %q = %v, want nil", name, err)
		}
		if !strings.Contains(hint, name) {
			t.Errorf("hint %q does not name kernel %q", hint, name)
		}
	}
	// The default spelling: empty string parses to the packed kernels.
	if got, err := engine.ParseKernel(""); err != nil || got != dataflow.KernelPacked {
		t.Errorf("ParseKernel(\"\") = %v, %v; want KernelPacked, nil", got, err)
	}

	// One past the last valid enum value must fail Validate, and a bogus
	// name must fail ParseKernel — both with the shared hint.
	bad := engine.Options{CA: 0.97, CR: 0.95, Kernel: dataflow.KernelSparse + 1}
	var uk *engine.UnknownKernelError
	if err := bad.Validate(); !errors.As(err, &uk) {
		t.Errorf("Validate with out-of-range kernel = %v, want *UnknownKernelError", err)
	} else if uk.Hint() != hint {
		t.Errorf("out-of-range hint %q differs from shared hint %q", uk.Hint(), hint)
	}
	if _, err := engine.ParseKernel("bogus"); !errors.As(err, &uk) {
		t.Errorf("ParseKernel(\"bogus\") = %v, want *UnknownKernelError", err)
	} else if uk.Hint() != hint {
		t.Errorf("parse hint %q differs from shared hint %q", uk.Hint(), hint)
	}
}
