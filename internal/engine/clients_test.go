package engine_test

import (
	"testing"

	"pathflow/internal/availexpr"
	"pathflow/internal/bench"
	"pathflow/internal/engine"
	"pathflow/internal/liveness"
	"pathflow/internal/profile"
)

// --- Client wiring -------------------------------------------------------

func TestClientsRunOnEveryTier(t *testing.T) {
	prog, train := fixture(t)
	o := engine.DefaultOptions()
	o.Clients = engine.ClientsAll
	res, err := engine.Serial().AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		t.Fatal(err)
	}
	sawQualified := false
	for name, fr := range res.Funcs {
		if fr.LiveCFG == nil || fr.AvailCFG == nil {
			t.Fatalf("%s: missing CFG-tier client results", name)
		}
		if fr.AvailU == nil {
			t.Fatalf("%s: missing shared expression universe", name)
		}
		if fr.Qualified() {
			sawQualified = true
			if fr.LiveHPG == nil || fr.LiveRed == nil {
				t.Fatalf("%s: missing qualified-tier liveness", name)
			}
			if fr.AvailHPG == nil || fr.AvailRed == nil {
				t.Fatalf("%s: missing qualified-tier available expressions", name)
			}
			if fr.FinalLive() != fr.LiveRed || fr.FinalAvail() != fr.AvailRed {
				t.Fatalf("%s: Final accessors disagree with reduced tier", name)
			}
		} else if fr.FinalLive() != fr.LiveCFG || fr.FinalAvail() != fr.AvailCFG {
			t.Fatalf("%s: Final accessors disagree with CFG tier", name)
		}
	}
	if !sawQualified {
		t.Fatal("fixture produced no qualified function")
	}
}

func TestClientSelection(t *testing.T) {
	prog, train := fixture(t)
	o := engine.DefaultOptions()
	o.Clients = engine.ClientLiveness
	res, err := engine.Serial().AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		t.Fatal(err)
	}
	for name, fr := range res.Funcs {
		if fr.LiveCFG == nil {
			t.Fatalf("%s: liveness requested but missing", name)
		}
		if fr.AvailCFG != nil || fr.AvailHPG != nil || fr.AvailRed != nil {
			t.Fatalf("%s: availexpr ran without being requested", name)
		}
	}
}

// TestVerifyPassesOnFixture runs the full pipeline with the differential
// oracle as a fatal stage: any tier whose solution is not pointwise at
// least as precise as the CFG's fails the analysis.
func TestVerifyPassesOnFixture(t *testing.T) {
	prog, train := fixture(t)
	o := engine.DefaultOptions()
	o.Clients = engine.ClientsAll
	o.Verify = true
	res, err := engine.Serial().AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		t.Fatal(err)
	}
	for name, fr := range res.Funcs {
		if !fr.Qualified() {
			continue
		}
		if len(fr.Oracle) == 0 {
			t.Fatalf("%s: qualified but no oracle reports attached", name)
		}
		if err := engine.OracleErr(fr.Oracle); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestVerifyPassesOnBenchmarks is the paper's central guarantee checked
// empirically: on every benchmark function, for all four clients
// (constant propagation, intervals, liveness, available expressions),
// the HPG and reduced-HPG solutions project to facts at least as precise
// as the CFG baseline.
func TestVerifyPassesOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := engine.DefaultOptions()
	o.Clients = engine.ClientsAll
	o.Verify = true
	e := engine.New(engine.Config{Cache: true})
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.ProfileAndAnalyze(ctx, prog, b.TrainOptions(), o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClientCacheMatchesUncached re-runs a clients-enabled sweep with
// the artifact cache and checks the client results are semantically
// identical to the uncached run's.
func TestClientCacheMatchesUncached(t *testing.T) {
	prog, train := fixture(t)
	opts := make([]engine.Options, len(sweepOpts))
	for i, o := range sweepOpts {
		o.Clients = engine.ClientsAll
		opts[i] = o
	}
	plain, err := engine.Serial().SweepProgram(ctx, prog, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Config{Workers: 1, Cache: true})
	cached, err := e.SweepProgram(ctx, prog, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range opts {
		for _, name := range prog.Order {
			a, b := plain[i].Funcs[name], cached[i].Funcs[name]
			if got, want := clientSummary(b), clientSummary(a); got != want {
				t.Fatalf("point %d func %s: cached clients diverge:\n got %s\nwant %s",
					i, name, got, want)
			}
		}
	}
	if hits := e.CacheStats().Hits; hits == 0 {
		t.Fatal("cache reported no hits across the sweep")
	}
}

// clientSummary renders the deterministic client outputs of one result:
// static and dynamic dead-store and redundant-expression counts per tier.
func clientSummary(fr *engine.FuncResult) string {
	out := ""
	add := func(tier string, lv *liveness.Result, av *availexpr.Result, freq []int64) {
		if lv != nil {
			s, d := liveness.DeadStoreCount(lv.G, lv, freq)
			out += tierLine(tier, "dead", s, d)
		}
		if av != nil {
			s, d := availexpr.RedundantCount(av.G, av, freq)
			out += tierLine(tier, "red", s, d)
		}
	}
	add("cfg", fr.LiveCFG, fr.AvailCFG, freqOf(fr, "cfg"))
	add("hpg", fr.LiveHPG, fr.AvailHPG, freqOf(fr, "hpg"))
	add("rhpg", fr.LiveRed, fr.AvailRed, freqOf(fr, "rhpg"))
	return out
}

func tierLine(tier, kind string, s int, d int64) string {
	return tier + " " + kind + " " + itoa(int64(s)) + "/" + itoa(d) + ";"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func freqOf(fr *engine.FuncResult, tier string) []int64 {
	switch tier {
	case "cfg":
		if fr.Train == nil {
			return nil
		}
		return profile.NodeFrequencies(fr.Train, fr.Fn.G)
	case "hpg":
		if fr.HPGProf == nil {
			return nil
		}
		return profile.NodeFrequencies(fr.HPGProf, fr.HPG.G)
	case "rhpg":
		if !fr.Qualified() || fr.Train == nil {
			return nil
		}
		p, err := fr.TranslateEval(fr.Train)
		if err != nil {
			return nil
		}
		return profile.NodeFrequencies(p, fr.Red.G)
	}
	return nil
}
