package engine

import (
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/availexpr"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/feasible"
	"pathflow/internal/liveness"
	"pathflow/internal/opt"
	"pathflow/internal/profile"
	"pathflow/internal/reduce"
	"pathflow/internal/trace"
)

// FuncResult holds every artifact the pipeline produces for one function.
type FuncResult struct {
	Fn    *cfg.Func
	Opt   Options
	Train *bl.Profile

	// OrigSol is Wegman-Zadek on the original graph: the CA = 0
	// baseline and the "Iterative" reference for classification.
	OrigSol *constprop.Result

	// Qualified artifacts; nil when CA = 0 or the function was never
	// executed in training.
	Hot     []bl.Path
	Auto    *automaton.Automaton
	HPG     *trace.HPG
	HPGSol  *constprop.Result
	HPGProf *bl.Profile // training profile translated onto the HPG
	Red     *reduce.Reduced
	RedSol  *constprop.Result

	// Feasibility artifacts (Options.Feasible): the infeasible-edge sets
	// of the CFG and HPG tiers. The reduced tier's mask is recomputed on
	// demand (feasible.Detect is deterministic) rather than stored.
	FeasCFG *feasible.Edges
	FeasHPG *feasible.Edges

	// Client analyses (Options.Clients), one result per graph tier; HPG
	// and Red entries are nil when qualification did not run, and every
	// field is nil when the corresponding client was not requested.
	// AvailU is the expression universe shared by all three
	// available-expressions runs (built from the original graph).
	LiveCFG, LiveHPG, LiveRed    *liveness.Result
	AvailU                       *availexpr.Universe
	AvailCFG, AvailHPG, AvailRed *availexpr.Result

	// Oracle holds the differential-oracle reports when Options.Verify
	// ran the check stage (also obtainable on demand via
	// CheckFuncResult).
	Oracle []*oracle.Report

	// Times is the legacy per-stage timing projection; Metrics is the
	// full per-stage record, including cache hits.
	Times   Times
	Metrics *Metrics
}

// FinalLive returns the liveness result on FinalGraph (nil when the
// client did not run).
func (r *FuncResult) FinalLive() *liveness.Result {
	if r.Qualified() {
		return r.LiveRed
	}
	return r.LiveCFG
}

// FinalAvail returns the available-expressions result on FinalGraph
// (nil when the client did not run).
func (r *FuncResult) FinalAvail() *availexpr.Result {
	if r.Qualified() {
		return r.AvailRed
	}
	return r.AvailCFG
}

// Qualified reports whether path qualification ran for this function.
func (r *FuncResult) Qualified() bool { return r.Red != nil }

// FinalGraph returns the graph later passes consume: the reduced HPG, or
// the original graph when qualification did not run.
func (r *FuncResult) FinalGraph() *cfg.Graph {
	if r.Qualified() {
		return r.Red.G
	}
	return r.Fn.G
}

// FinalSol returns the constant-propagation solution on FinalGraph.
func (r *FuncResult) FinalSol() *constprop.Result {
	if r.Qualified() {
		return r.RedSol
	}
	return r.OrigSol
}

// FinalOverlay returns the reduced graph as a profile overlay, or nil
// when qualification did not run.
func (r *FuncResult) FinalOverlay() profile.Overlay {
	if r.Qualified() {
		return r.Red
	}
	return nil
}

// FinalFunc wraps FinalGraph in a cfg.Func.
func (r *FuncResult) FinalFunc() *cfg.Func {
	if r.Qualified() {
		return r.Red.Func()
	}
	return r.Fn
}

// FinalOrigNode maps a FinalGraph node to its original vertex.
func (r *FuncResult) FinalOrigNode(n cfg.NodeID) cfg.NodeID {
	if r.Qualified() {
		return r.Red.OrigNode[n]
	}
	return n
}

// TranslateEval re-expresses an evaluation profile of the original graph
// on FinalGraph (identity when qualification did not run).
func (r *FuncResult) TranslateEval(eval *bl.Profile) (*bl.Profile, error) {
	if !r.Qualified() {
		return eval, nil
	}
	return profile.Translate(eval, r.Fn.G, r.Red)
}

// ProgramResult is the pipeline result for a whole program.
type ProgramResult struct {
	Prog  *cfg.Program
	Opt   Options
	Funcs map[string]*FuncResult
}

// OptimizedProgram rewrites each function's final graph with the
// selected optimizer passes (opt.PassConst reproduces the paper's PW
// pass; opt.PassesAll adds interval-singleton folds and dead-store
// deletion) and assembles a runnable program with the per-pass rewrite
// counts.
func (pr *ProgramResult) OptimizedProgram(ps opt.Passes) (*cfg.Program, opt.Counts) {
	out := cfg.NewProgram()
	var c opt.Counts
	for _, name := range pr.Prog.Order {
		fr := pr.Funcs[name]
		g, n := opt.OptimizeGraph(fr.FinalGraph(), fr.Fn.NumVars(), ps)
		c = c.Add(n)
		out.Add(&cfg.Func{
			Name:     fr.Fn.Name,
			Params:   fr.Fn.Params,
			VarNames: fr.Fn.VarNames,
			G:        g,
		})
	}
	return out, c
}

// BaselineProgram runs the same rewrites on clones of the original
// functions: with opt.PassConst, the paper's "Base" configuration for
// Table 2.
func BaselineProgram(prog *cfg.Program, ps opt.Passes) (*cfg.Program, opt.Counts) {
	out := cfg.NewProgram()
	var c opt.Counts
	for _, name := range prog.Order {
		f, n := opt.OptimizeFunc(prog.Funcs[name], ps)
		c = c.Add(n)
		out.Add(f)
	}
	return out, c
}

// Stats aggregates program-level size and timing numbers.
type Stats struct {
	OrigNodes, HPGNodes, RedNodes int
	HotPaths                      int
	TrainPaths                    int
	BaselineTime                  time.Duration
	QualifiedTime                 time.Duration
	// CacheHits counts pipeline stages served from the artifact cache.
	CacheHits int
}

// Stats summarizes the analysis.
func (pr *ProgramResult) Stats() Stats {
	var s Stats
	for _, fr := range pr.Funcs {
		s.OrigNodes += fr.Fn.G.NumNodes()
		s.BaselineTime += fr.Times.Baseline
		s.QualifiedTime += fr.Times.Qualified()
		if fr.Metrics != nil {
			s.CacheHits += fr.Metrics.CacheHits()
		}
		if fr.Train != nil {
			s.TrainPaths += fr.Train.NumPaths()
		}
		s.HotPaths += len(fr.Hot)
		if fr.Qualified() {
			s.HPGNodes += fr.HPG.G.NumNodes()
			s.RedNodes += fr.Red.G.NumNodes()
		} else {
			s.HPGNodes += fr.Fn.G.NumNodes()
			s.RedNodes += fr.Fn.G.NumNodes()
		}
	}
	return s
}
