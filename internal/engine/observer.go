package engine

import (
	"context"
	"time"
)

// StageEvent describes one stage execution attributed to a pipeline
// invocation: the function being analyzed, the owning stage, the compute
// cost of the artifact, and whether it was served from the artifact
// cache (in which case Duration is the stored cost of the run that
// originally produced it).
//
// Events are emitted as artifacts land, so a long program analysis can
// be observed live — the serving layer streams them to clients as
// NDJSON/SSE. Observers run inline on the engine's worker goroutines:
// they may be called concurrently and must be fast (or hand off to a
// channel) to avoid stalling the pipeline.
type StageEvent struct {
	Func     string
	Stage    StageName
	Duration time.Duration
	// Decode is the wall-clock spent decoding the artifact from the
	// persistent tier — nonzero only when Source is SourceDisk, and kept
	// separate from Duration (the stored compute cost) so replay
	// observers never conflate the two.
	Decode time.Duration
	// Cached reports service from either cache tier; Source says which
	// (computed, memory or disk).
	Cached bool
	Source Provenance
}

// observerKey carries a stage observer through a context.
type observerKey struct{}

// WithStageObserver returns a context that delivers a StageEvent to f
// for every stage execution (including cache hits) performed by engine
// calls made under it. The observer is scoped to the request, not the
// engine, so one shared Engine can serve many observed requests.
func WithStageObserver(ctx context.Context, f func(StageEvent)) context.Context {
	return context.WithValue(ctx, observerKey{}, f)
}

// stageObserver extracts the observer installed by WithStageObserver,
// or nil.
func stageObserver(ctx context.Context) func(StageEvent) {
	f, _ := ctx.Value(observerKey{}).(func(StageEvent))
	return f
}

// newMetrics returns a metrics record wired to the context's stage
// observer (if any) for the named function. Every stage execution and
// cache-hit merge funnels through Metrics.add, so attaching the
// observer there captures both.
func newMetrics(ctx context.Context, fname string) *Metrics {
	m := NewMetrics()
	if obs := stageObserver(ctx); obs != nil {
		m.observe = func(s StageName, d, decode time.Duration, src Provenance) {
			obs(StageEvent{Func: fname, Stage: s, Duration: d, Decode: decode, Cached: src.Cached(), Source: src})
		}
	}
	return m
}
