package diskcache

import (
	"errors"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile/stream"
)

const streamTestSrc = `
func helper(k) {
	if (k % 2 == 0) { s = 4; } else { s = 5; }
	return k * s;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i);
		i = i + 1;
	}
	print(t);
}
`

// streamTestSet compiles and profiles a small program, then grows a
// stream set with one streamed delta per executed path, an epoch bump,
// and seq state from two sources — every field class the codec frames.
func streamTestSet(t *testing.T) (*cfg.Program, *stream.Set) {
	t.Helper()
	prog, err := lang.Compile(streamTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := bl.ProfileProgram(prog, interp.Options{Args: []ir.Value{9}})
	if err != nil {
		t.Fatal(err)
	}
	set := stream.NewSet(prog, train)
	seq := uint64(0)
	for _, name := range prog.Order {
		pr := train.Funcs[name]
		if pr == nil || len(pr.Entries) == 0 {
			continue
		}
		for k := range pr.Entries {
			seq++
			src := "agent-a"
			if seq%2 == 0 {
				src = "agent-b"
			}
			b := &stream.Batch{Source: src, Funcs: []stream.FuncDelta{
				{Func: name, Seq: seq, Paths: []stream.PathDelta{{Path: k, Count: int64(seq * 17)}}},
			}}
			if _, err := set.Apply(b); err != nil {
				t.Fatalf("apply for %s: %v", name, err)
			}
		}
	}
	set.Decay()
	return prog, set
}

func TestStreamCodecRoundTrip(t *testing.T) {
	prog, set := streamTestSet(t)
	meta := Meta{Class: "profile"}
	data := EncodeStream(meta, set.Snapshot())
	gotMeta, restored, err := DecodeStream(data, prog)
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if gotMeta.Class != meta.Class {
		t.Fatalf("meta class = %q, want %q", gotMeta.Class, meta.Class)
	}
	for _, name := range prog.Order {
		if !restored.Accumulator(name).Equal(set.Accumulator(name)) {
			t.Fatalf("func %s: restored accumulator differs", name)
		}
	}
	if restored.Epoch() != set.Epoch() {
		t.Fatalf("restored epoch %d, want %d", restored.Epoch(), set.Epoch())
	}
	// Live profiles must materialize identically too.
	live, back := set.Profile(), restored.Profile()
	for _, name := range prog.Order {
		a, b := live.Funcs[name], back.Funcs[name]
		if (a == nil) != (b == nil) {
			t.Fatalf("func %s: profile presence differs after restore", name)
		}
		if a == nil {
			continue
		}
		if len(a.Entries) != len(b.Entries) {
			t.Fatalf("func %s: %d entries restored, want %d", name, len(b.Entries), len(a.Entries))
		}
		for k, e := range a.Entries {
			if be := b.Entries[k]; be == nil || be.Count != e.Count {
				t.Fatalf("func %s path %s: restored %+v, want count %d", name, k, be, e.Count)
			}
		}
	}
}

// TestStreamCodecRejectsEveryDefect walks the same defect classes the
// bundle codecs are tested against: every mutation must decode as an
// error (a miss), never a panic or a silently wrong set.
func TestStreamCodecRejectsEveryDefect(t *testing.T) {
	prog, set := streamTestSet(t)
	good := EncodeStream(Meta{}, set.Snapshot())
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:headerLen-1] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future-version", func(b []byte) []byte { b[4] = FormatVersion + 1; return b }},
		{"wrong-kind", func(b []byte) []byte { b[5] = byte(KindSelect); return b }},
		{"payload-flip", func(b []byte) []byte { b[headerLen+1] ^= 0x40; return b }},
		{"checksum-flip", func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xaa) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			if _, _, err := DecodeStream(b, prog); err == nil {
				t.Fatal("corrupt stream snapshot decoded")
			}
		})
	}
}

// TestStreamCodecRejectsForeignProgram: a well-framed snapshot written
// for a different program fails restore as ErrCorrupt, so the serving
// layer reseeds from the training profile instead of loading skewed
// state.
func TestStreamCodecRejectsForeignProgram(t *testing.T) {
	_, set := streamTestSet(t)
	other, err := lang.Compile(`func main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeStream(Meta{}, set.Snapshot())
	if _, _, err := DecodeStream(data, other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestKindStreamRegistered(t *testing.T) {
	if KindStream.String() != "stream" {
		t.Fatalf("KindStream.String() = %q", KindStream.String())
	}
	if KindFromString("stream") != KindStream {
		t.Fatal("KindFromString does not know stream")
	}
	if err := CheckFrame(KindStream, EncodeStream(Meta{}, &stream.SetSnapshot{})); err != nil {
		t.Fatalf("CheckFrame(KindStream): %v", err)
	}
}
