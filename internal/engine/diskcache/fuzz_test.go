package diskcache_test

import (
	"bytes"
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/engine/diskcache"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
	"pathflow/internal/reduce"
	"pathflow/internal/trace"
)

// codecFixture carries the decode contexts every artifact decoder needs:
// the paper's running example pushed through the full pipeline.
type codecFixture struct {
	fn    *cfg.Func
	pr    *bl.Profile
	hot   []bl.Path
	auto  *automaton.Automaton
	hpg   *trace.HPG
	base  *constprop.Result
	hsol  *constprop.Result
	hprof *bl.Profile
	red   *reduce.Reduced
	rsol  *constprop.Result
}

func buildCodecFixture(f *testing.F) *codecFixture {
	f.Helper()
	fn, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	paths := paperex.Paths(edges)
	hot := paths[:]
	auto, err := automaton.New(fn.G, pr.R, hot)
	if err != nil {
		f.Fatal(err)
	}
	hpg, err := trace.Build(fn, auto)
	if err != nil {
		f.Fatal(err)
	}
	base := constprop.Analyze(fn.G, fn.NumVars(), true)
	hsol := constprop.Analyze(hpg.G, fn.NumVars(), true)
	hprof, err := profile.Translate(pr, fn.G, hpg)
	if err != nil {
		f.Fatal(err)
	}
	red, err := reduce.Reduce(hpg, hsol, hprof, reduce.Options{CR: 0.95})
	if err != nil {
		f.Fatal(err)
	}
	rsol := constprop.Analyze(red.G, fn.NumVars(), true)
	return &codecFixture{
		fn: fn, pr: pr, hot: hot, auto: auto, hpg: hpg,
		base: base, hsol: hsol, hprof: hprof, red: red, rsol: rsol,
	}
}

// FuzzDiskcacheCodec throws arbitrary bytes at every artifact decoder.
// The properties under test:
//
//  1. No input — however corrupt — may panic or hang a decoder; the
//     only acceptable failure mode is an error (the cache treats it as
//     a miss and recomputes).
//  2. Any input a decoder accepts must round-trip: re-encoding the
//     decoded artifact and decoding again yields the same bytes, so
//     accepted entries are canonical and a rewrite never flip-flops.
//
// Seeds cover every bundle kind with genuinely valid payloads (the
// paper example pushed through the pipeline), so the mutator starts
// from deep inside the accepted format rather than fuzzing headers
// forever.
func FuzzDiskcacheCodec(f *testing.F) {
	fx := buildCodecFixture(f)
	meta := diskcache.Meta{
		Costs: diskcache.Costs{"select": 12345, "trace": 678},
		Class: "body",
	}
	f.Add(diskcache.EncodeSelect(meta, fx.hot))
	f.Add(diskcache.EncodeBaseline(meta, fx.base))
	f.Add(diskcache.EncodeAnalyze(meta, fx.hsol))
	f.Add(diskcache.EncodeAutomatonBundle(meta, fx.auto))
	f.Add(diskcache.EncodeTrace(meta, fx.hpg))
	f.Add(diskcache.EncodeTranslate(meta, fx.hprof))
	f.Add(diskcache.EncodeReduced(meta, fx.red, fx.rsol))
	f.Add([]byte{})
	f.Add([]byte("PFAC\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, hot, err := diskcache.DecodeSelect(data, fx.fn.G); err == nil {
			enc1 := diskcache.EncodeSelect(m, hot)
			m2, hot2, err2 := diskcache.DecodeSelect(enc1, fx.fn.G)
			if err2 != nil {
				t.Fatalf("select: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeSelect(m2, hot2); !bytes.Equal(enc1, enc2) {
				t.Fatal("select: round-trip is not canonical")
			}
		}
		if m, sol, err := diskcache.DecodeBaseline(data, fx.fn.G, fx.fn.NumVars()); err == nil {
			enc1 := diskcache.EncodeBaseline(m, sol)
			m2, sol2, err2 := diskcache.DecodeBaseline(enc1, fx.fn.G, fx.fn.NumVars())
			if err2 != nil {
				t.Fatalf("baseline: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeBaseline(m2, sol2); !bytes.Equal(enc1, enc2) {
				t.Fatal("baseline: round-trip is not canonical")
			}
		}
		if m, sol, err := diskcache.DecodeAnalyze(data, fx.hpg.G, fx.fn.NumVars()); err == nil {
			enc1 := diskcache.EncodeAnalyze(m, sol)
			m2, sol2, err2 := diskcache.DecodeAnalyze(enc1, fx.hpg.G, fx.fn.NumVars())
			if err2 != nil {
				t.Fatalf("analyze: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeAnalyze(m2, sol2); !bytes.Equal(enc1, enc2) {
				t.Fatal("analyze: round-trip is not canonical")
			}
		}
		if m, a, err := diskcache.DecodeAutomatonBundle(data, fx.pr.R); err == nil {
			enc1 := diskcache.EncodeAutomatonBundle(m, a)
			m2, a2, err2 := diskcache.DecodeAutomatonBundle(enc1, fx.pr.R)
			if err2 != nil {
				t.Fatalf("automaton: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeAutomatonBundle(m2, a2); !bytes.Equal(enc1, enc2) {
				t.Fatal("automaton: round-trip is not canonical")
			}
		}
		if m, h, err := diskcache.DecodeTrace(data, fx.fn, fx.auto); err == nil {
			enc1 := diskcache.EncodeTrace(m, h)
			m2, h2, err2 := diskcache.DecodeTrace(enc1, fx.fn, fx.auto)
			if err2 != nil {
				t.Fatalf("trace: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeTrace(m2, h2); !bytes.Equal(enc1, enc2) {
				t.Fatal("trace: round-trip is not canonical")
			}
		}
		if m, prof, err := diskcache.DecodeTranslate(data, fx.hpg.G); err == nil {
			enc1 := diskcache.EncodeTranslate(m, prof)
			m2, prof2, err2 := diskcache.DecodeTranslate(enc1, fx.hpg.G)
			if err2 != nil {
				t.Fatalf("translate: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeTranslate(m2, prof2); !bytes.Equal(enc1, enc2) {
				t.Fatal("translate: round-trip is not canonical")
			}
		}
		if m, red, sol, err := diskcache.DecodeReduced(data, fx.hpg); err == nil {
			enc1 := diskcache.EncodeReduced(m, red, sol)
			m2, red2, sol2, err2 := diskcache.DecodeReduced(enc1, fx.hpg)
			if err2 != nil {
				t.Fatalf("reduced: re-decode of accepted artifact failed: %v", err2)
			}
			if enc2 := diskcache.EncodeReduced(m2, red2, sol2); !bytes.Equal(enc1, enc2) {
				t.Fatal("reduced: round-trip is not canonical")
			}
		}
	})
}

// TestCodecSeedsRoundTrip pins the seed artifacts through an explicit
// decode so the fuzz properties hold on the known-valid corpus even in
// plain `go test` runs (fuzz seeds also run, but this keeps the check
// independent of the fuzz harness and asserts full field equality).
func TestCodecSeedsRoundTrip(t *testing.T) {
	fnx, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	paths := paperex.Paths(edges)
	auto, err := automaton.New(fnx.G, pr.R, paths[:])
	if err != nil {
		t.Fatal(err)
	}
	meta := diskcache.Meta{Costs: diskcache.Costs{"automaton": 42}, Class: "none"}
	enc := diskcache.EncodeAutomatonBundle(meta, auto)
	m, a2, err := diskcache.DecodeAutomatonBundle(enc, pr.R)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != meta.Class || m.Costs["automaton"] != meta.Costs["automaton"] {
		t.Errorf("meta round-trip: got %+v, want %+v", m, meta)
	}
	if a2.NumStates() != auto.NumStates() || a2.NumKeywords() != auto.NumKeywords() {
		t.Errorf("automaton round-trip: %d states/%d keywords, want %d/%d",
			a2.NumStates(), a2.NumKeywords(), auto.NumStates(), auto.NumKeywords())
	}
}
