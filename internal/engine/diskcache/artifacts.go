package diskcache

import (
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
	"pathflow/internal/reduce"
	"pathflow/internal/trace"
)

// Costs records the per-stage compute cost of the run that produced a
// bundle, keyed by stage name. It rides inside every bundle so a disk
// hit can still report the stage durations the artifact originally cost
// (keeping Figure 12-style cost ratios meaningful under caching), the
// same convention the in-memory tier uses.
type Costs map[string]time.Duration

// Meta is the provenance envelope every bundle carries: the per-stage
// compute costs of the run that produced it, plus the delta class of
// that run — "cold" for a from-scratch computation, or the edit class
// ("none", "body", "counts", "shape") of the incremental re-analysis
// that dirtied and recomputed this stage. The class is provenance only:
// it never participates in the key, so bundles written by incremental
// and cold runs of identical inputs interchange freely.
type Meta struct {
	Costs Costs
	Class string
}

func encodeMeta(e *enc, m Meta) {
	encodeCosts(e, m.Costs)
	e.str(m.Class)
}

func decodeMeta(d *dec) Meta {
	return Meta{Costs: decodeCosts(d), Class: d.str()}
}

func encodeCosts(e *enc, c Costs) {
	// Deterministic order is not required (the map is consumed, not
	// hashed), but sorting costs nothing at these sizes and keeps
	// payloads reproducible for debugging. Stage names are short.
	names := make([]string, 0, len(c))
	for s := range c {
		names = append(names, s)
	}
	for i := 1; i < len(names); i++ { // insertion sort; ≤ 7 stages
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	e.u64(uint64(len(names)))
	for _, s := range names {
		e.str(s)
		e.i64(int64(c[s]))
	}
}

func decodeCosts(d *dec) Costs {
	n := d.sliceLen()
	c := make(Costs, n)
	for i := 0; i < n; i++ {
		s := d.str()
		v := d.i64()
		if d.err != nil {
			return nil
		}
		c[s] = time.Duration(v)
	}
	return c
}

// --- Hot-path sets --------------------------------------------------------

func encodeHot(e *enc, hot []bl.Path) {
	e.u64(uint64(len(hot)))
	for _, p := range hot {
		e.u64(uint64(len(p.Edges)))
		for _, eid := range p.Edges {
			e.i64(int64(eid))
		}
	}
}

func decodeHot(d *dec, g *cfg.Graph) []bl.Path {
	n := d.sliceLen()
	hot := make([]bl.Path, 0, n)
	for i := 0; i < n; i++ {
		m := d.sliceLen()
		edges := make([]cfg.EdgeID, m)
		for j := 0; j < m; j++ {
			eid := d.i64()
			if eid < 0 || eid >= int64(g.NumEdges()) {
				d.fail()
				return nil
			}
			edges[j] = cfg.EdgeID(eid)
		}
		hot = append(hot, bl.Path{Edges: edges})
	}
	return hot
}

// --- Data-flow solutions --------------------------------------------------

// encodeSolution writes a constant-propagation solution without its
// graph (the graph is either caller-owned — the baseline runs on the
// original function — or encoded alongside in the same bundle).
func encodeSolution(e *enc, r *constprop.Result) {
	sol := r.Sol
	e.u64(uint64(len(sol.Reached)))
	for i, reached := range sol.Reached {
		e.bool(reached)
		env, _ := sol.In[i].(constprop.Env)
		if env == nil {
			e.bool(false)
			continue
		}
		e.bool(true)
		e.u64(uint64(len(env)))
		for _, v := range env {
			e.byte(byte(v.Kind))
			e.i64(v.K)
		}
	}
	e.u64(uint64(len(sol.EdgeExecutable)))
	for _, x := range sol.EdgeExecutable {
		e.bool(x)
	}
	e.int(sol.Iterations)
}

// decodeSolution reads a solution and attaches it to g, validating that
// the recorded shape matches the graph's.
func decodeSolution(d *dec, g *cfg.Graph, numVars int) *constprop.Result {
	nNodes := d.sliceLen()
	if d.err != nil || nNodes != g.NumNodes() {
		d.fail()
		return nil
	}
	sol := &dataflow.Solution{
		In:      make([]dataflow.Fact, nNodes),
		Reached: make([]bool, nNodes),
	}
	for i := 0; i < nNodes; i++ {
		sol.Reached[i] = d.bool()
		if !d.bool() {
			continue
		}
		m := d.sliceLen()
		if d.err != nil || m != numVars {
			d.fail()
			return nil
		}
		env := make(constprop.Env, m)
		for j := 0; j < m; j++ {
			k := constprop.Kind(d.byte())
			if k > constprop.Bottom {
				d.fail()
				return nil
			}
			env[j] = constprop.Value{Kind: k, K: d.i64()}
		}
		sol.In[i] = env
	}
	nEdges := d.sliceLen()
	if d.err != nil || nEdges != g.NumEdges() {
		d.fail()
		return nil
	}
	sol.EdgeExecutable = make([]bool, nEdges)
	for i := 0; i < nEdges; i++ {
		sol.EdgeExecutable[i] = d.bool()
	}
	sol.Iterations = d.int()
	if d.err != nil {
		return nil
	}
	return &constprop.Result{G: g, Sol: sol}
}

// --- Graphs ---------------------------------------------------------------

// encodeGraph writes a full cfg.Graph: nodes with instructions and
// terminators, then edges in ID order. Replaying the edge list through
// AddEdge reproduces identical Out/In lists and successor slots, because
// slot order within a node follows global edge-ID order for every graph
// the pipeline builds.
func encodeGraph(e *enc, g *cfg.Graph) {
	e.str(g.Name)
	e.int(int(g.Entry))
	e.int(int(g.Exit))
	e.u64(uint64(len(g.Nodes)))
	for _, nd := range g.Nodes {
		e.str(nd.Name)
		e.byte(byte(nd.Kind))
		e.i64(int64(nd.Cond))
		e.i64(int64(nd.Ret))
		e.u64(uint64(len(nd.Instrs)))
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			e.byte(byte(in.Op))
			e.i64(int64(in.Dst))
			e.i64(int64(in.A))
			e.i64(int64(in.B))
			e.i64(in.K)
			e.str(in.Callee)
			e.u64(uint64(len(in.Args)))
			for _, a := range in.Args {
				e.i64(int64(a))
			}
		}
	}
	e.u64(uint64(len(g.Edges)))
	for _, ed := range g.Edges {
		e.int(int(ed.From))
		e.int(int(ed.To))
	}
}

// decodeGraph reads a graph and validates its structural invariants
// against numVars (terminator arity, slot consistency, register ranges).
func decodeGraph(d *dec, numVars int) *cfg.Graph {
	g := &cfg.Graph{Name: d.str()}
	entry, exit := d.int(), d.int()
	nNodes := d.sliceLen()
	for i := 0; i < nNodes; i++ {
		id := g.AddNode(d.str())
		nd := g.Node(id)
		nd.Kind = cfg.TermKind(d.byte())
		nd.Cond = ir.Var(d.i64())
		nd.Ret = ir.Var(d.i64())
		nInstrs := d.sliceLen()
		if d.err != nil {
			return nil
		}
		nd.Instrs = make([]ir.Instr, nInstrs)
		for j := 0; j < nInstrs; j++ {
			in := &nd.Instrs[j]
			in.Op = ir.Op(d.byte())
			in.Dst = ir.Var(d.i64())
			in.A = ir.Var(d.i64())
			in.B = ir.Var(d.i64())
			in.K = d.i64()
			in.Callee = d.str()
			nArgs := d.sliceLen()
			if d.err != nil {
				return nil
			}
			in.Args = make([]ir.Var, nArgs)
			for k := 0; k < nArgs; k++ {
				in.Args[k] = ir.Var(d.i64())
			}
		}
	}
	nEdges := d.sliceLen()
	for i := 0; i < nEdges; i++ {
		from, to := d.int(), d.int()
		if d.err != nil || from < 0 || from >= nNodes || to < 0 || to >= nNodes {
			d.fail()
			return nil
		}
		g.AddEdge(cfg.NodeID(from), cfg.NodeID(to))
	}
	if d.err != nil || entry < 0 || entry >= nNodes || exit < 0 || exit >= nNodes {
		d.fail()
		return nil
	}
	g.Entry, g.Exit = cfg.NodeID(entry), cfg.NodeID(exit)
	if err := g.Validate(numVars); err != nil {
		d.fail()
		return nil
	}
	return g
}

// --- Profiles -------------------------------------------------------------

// encodeProfile writes a Ball-Larus profile in canonical (sorted) order.
func encodeProfile(e *enc, pr *bl.Profile) {
	e.str(pr.FuncName)
	redges := cfg.SortedEdgeIDs(pr.R)
	e.u64(uint64(len(redges)))
	for _, eid := range redges {
		e.i64(int64(eid))
	}
	keys := make([]string, 0, len(pr.Entries))
	for k := range pr.Entries {
		keys = append(keys, k)
	}
	sortStrings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		ent := pr.Entries[k]
		e.u64(uint64(len(ent.Path.Edges)))
		for _, eid := range ent.Path.Edges {
			e.i64(int64(eid))
		}
		e.i64(ent.Count)
	}
}

// decodeProfile reads a profile whose edge IDs must lie within g.
func decodeProfile(d *dec, g *cfg.Graph) *bl.Profile {
	name := d.str()
	nR := d.sliceLen()
	R := make(map[cfg.EdgeID]bool, nR)
	for i := 0; i < nR; i++ {
		eid := d.i64()
		if eid < 0 || eid >= int64(g.NumEdges()) {
			d.fail()
			return nil
		}
		R[cfg.EdgeID(eid)] = true
	}
	pr := bl.NewProfile(name, R)
	nEntries := d.sliceLen()
	for i := 0; i < nEntries; i++ {
		m := d.sliceLen()
		edges := make([]cfg.EdgeID, m)
		for j := 0; j < m; j++ {
			eid := d.i64()
			if eid < 0 || eid >= int64(g.NumEdges()) {
				d.fail()
				return nil
			}
			edges[j] = cfg.EdgeID(eid)
		}
		count := d.i64()
		if d.err != nil || count < 0 {
			d.fail()
			return nil
		}
		pr.Add(bl.Path{Edges: edges}, count)
	}
	if d.err != nil {
		return nil
	}
	return pr
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- Automata -------------------------------------------------------------

func encodeAutomaton(e *enc, a *automaton.Automaton) {
	snap := a.Snapshot()
	e.u64(uint64(len(snap.Trans)))
	for q, ts := range snap.Trans {
		e.bool(snap.Accept[q])
		e.i64(int64(snap.Depth[q]))
		e.u64(uint64(len(ts)))
		for _, t := range ts {
			e.i64(int64(t.Edge))
			e.i64(int64(t.To))
		}
	}
	e.int(snap.NumKeywords)
}

func decodeAutomaton(d *dec, R map[cfg.EdgeID]bool) *automaton.Automaton {
	n := d.sliceLen()
	snap := &automaton.Snapshot{
		Trans:  make([][]automaton.TransEdge, n),
		Accept: make([]bool, n),
		Depth:  make([]int32, n),
	}
	for q := 0; q < n; q++ {
		snap.Accept[q] = d.bool()
		snap.Depth[q] = int32(d.i64())
		m := d.sliceLen()
		ts := make([]automaton.TransEdge, m)
		for i := 0; i < m; i++ {
			ts[i] = automaton.TransEdge{
				Edge: cfg.EdgeID(d.i64()),
				To:   automaton.State(d.i64()),
			}
		}
		snap.Trans[q] = ts
	}
	snap.NumKeywords = d.int()
	if d.err != nil {
		return nil
	}
	a, err := automaton.FromSnapshot(R, snap)
	if err != nil {
		d.fail()
		return nil
	}
	return a
}

// --- Bundles --------------------------------------------------------------

// EncodeSelect frames a hot-path selection bundle.
func EncodeSelect(meta Meta, hot []bl.Path) []byte {
	var e enc
	encodeMeta(&e, meta)
	encodeHot(&e, hot)
	return frame(KindSelect, e.b)
}

// DecodeSelect decodes a selection bundle; edge IDs are validated
// against the function's graph.
func DecodeSelect(data []byte, g *cfg.Graph) (Meta, []bl.Path, error) {
	payload, err := unframe(KindSelect, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	hot := decodeHot(d, g)
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	return meta, hot, nil
}

// EncodeBaseline frames a CA = 0 baseline-solution bundle.
func EncodeBaseline(meta Meta, sol *constprop.Result) []byte {
	return encodeSolutionBundle(KindBaseline, meta, sol)
}

// DecodeBaseline decodes a baseline bundle against the function's own
// graph (which the solution is re-attached to).
func DecodeBaseline(data []byte, g *cfg.Graph, numVars int) (Meta, *constprop.Result, error) {
	return decodeSolutionBundle(KindBaseline, data, g, numVars)
}

// EncodeAnalyze frames the HPG analysis bundle: the Wegman-Zadek
// solution on the traced graph, without the graph itself (the trace
// bundle owns the graph; the decoder re-attaches).
func EncodeAnalyze(meta Meta, sol *constprop.Result) []byte {
	return encodeSolutionBundle(KindAnalyze, meta, sol)
}

// DecodeAnalyze decodes an analyze bundle against the live HPG graph it
// was computed on (revived from the trace bundle or freshly traced —
// the Merkle chain guarantees the shapes agree, and the decoder
// re-validates them).
func DecodeAnalyze(data []byte, g *cfg.Graph, numVars int) (Meta, *constprop.Result, error) {
	return decodeSolutionBundle(KindAnalyze, data, g, numVars)
}

func encodeSolutionBundle(kind Kind, meta Meta, sol *constprop.Result) []byte {
	var e enc
	encodeMeta(&e, meta)
	encodeSolution(&e, sol)
	return frame(kind, e.b)
}

func decodeSolutionBundle(kind Kind, data []byte, g *cfg.Graph, numVars int) (Meta, *constprop.Result, error) {
	payload, err := unframe(kind, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	sol := decodeSolution(d, g, numVars)
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	return meta, sol, nil
}

// EncodeAutomatonBundle frames a qualification-automaton bundle.
func EncodeAutomatonBundle(meta Meta, a *automaton.Automaton) []byte {
	var e enc
	encodeMeta(&e, meta)
	encodeAutomaton(&e, a)
	return frame(KindAutomaton, e.b)
}

// DecodeAutomatonBundle decodes an automaton bundle, rebuilding the
// automaton against recording set R (owned by the training profile the
// bundle was keyed by).
func DecodeAutomatonBundle(data []byte, R map[cfg.EdgeID]bool) (Meta, *automaton.Automaton, error) {
	payload, err := unframe(KindAutomaton, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	auto := decodeAutomaton(d, R)
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	return meta, auto, nil
}

// EncodeTrace frames a traced-HPG bundle: the traced graph plus its
// per-node and per-edge maps back to the original function. The
// automaton is not re-encoded — the trace key chains the automaton key,
// so the decoder receives the same automaton the graph was traced with.
func EncodeTrace(meta Meta, h *trace.HPG) []byte {
	var e enc
	encodeMeta(&e, meta)
	encodeGraph(&e, h.G)
	for _, v := range h.OrigNode {
		e.i64(int64(v))
	}
	for _, q := range h.State {
		e.i64(int64(q))
	}
	for _, eid := range h.OrigEdge {
		e.i64(int64(eid))
	}
	return frame(KindTrace, e.b)
}

// DecodeTrace decodes a trace bundle for fn, reassembling the HPG
// around the supplied automaton with full revalidation.
func DecodeTrace(data []byte, fn *cfg.Func, a *automaton.Automaton) (Meta, *trace.HPG, error) {
	payload, err := unframe(KindTrace, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	g := decodeGraph(d, fn.NumVars())
	if d.err != nil {
		return Meta{}, nil, d.err
	}
	origNode := make([]cfg.NodeID, g.NumNodes())
	for i := range origNode {
		origNode[i] = cfg.NodeID(d.i64())
	}
	state := make([]automaton.State, g.NumNodes())
	for i := range state {
		state[i] = automaton.State(d.i64())
	}
	origEdge := make([]cfg.EdgeID, g.NumEdges())
	for i := range origEdge {
		origEdge[i] = cfg.EdgeID(d.i64())
	}
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	h, err := trace.Assemble(fn, a, g, origNode, state, origEdge)
	if err != nil {
		return Meta{}, nil, ErrCorrupt
	}
	return meta, h, nil
}

// EncodeTranslate frames a translated-profile bundle (the training
// profile re-expressed on the HPG, Lemma 2).
func EncodeTranslate(meta Meta, prof *bl.Profile) []byte {
	var e enc
	encodeMeta(&e, meta)
	encodeProfile(&e, prof)
	return frame(KindTranslate, e.b)
}

// DecodeTranslate decodes a translate bundle against the live HPG graph
// whose edges the profile's paths traverse.
func DecodeTranslate(data []byte, g *cfg.Graph) (Meta, *bl.Profile, error) {
	payload, err := unframe(KindTranslate, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	prof := decodeProfile(d, g)
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	return meta, prof, nil
}

// EncodeReduced frames a reduction bundle: the quotient graph with its
// HPG bookkeeping and the re-analyzed solution.
func EncodeReduced(meta Meta, red *reduce.Reduced, sol *constprop.Result) []byte {
	var e enc
	encodeMeta(&e, meta)
	encodeGraph(&e, red.G)
	e.u64(uint64(len(red.Class)))
	for _, c := range red.Class {
		e.int(c)
	}
	e.u64(uint64(len(red.Members)))
	for _, ms := range red.Members {
		e.u64(uint64(len(ms)))
		for _, m := range ms {
			e.i64(int64(m))
		}
	}
	e.u64(uint64(len(red.Rep)))
	for _, r := range red.Rep {
		e.i64(int64(r))
	}
	for _, v := range red.OrigNode {
		e.i64(int64(v))
	}
	for _, eid := range red.OrigEdge {
		e.i64(int64(eid))
	}
	recording := cfg.SortedEdgeIDs(red.Recording)
	e.u64(uint64(len(recording)))
	for _, eid := range recording {
		e.i64(int64(eid))
	}
	e.u64(uint64(len(red.Hot)))
	for _, h := range red.Hot {
		e.i64(int64(h))
	}
	e.u64(uint64(len(red.Weights)))
	for _, w := range red.Weights {
		e.i64(w)
	}
	encodeSolution(&e, sol)
	return frame(KindReduced, e.b)
}

// DecodeReduced decodes a reduction bundle against the HPG it quotients.
func DecodeReduced(data []byte, h *trace.HPG) (Meta, *reduce.Reduced, *constprop.Result, error) {
	payload, err := unframe(KindReduced, data)
	if err != nil {
		return Meta{}, nil, nil, err
	}
	numVars := h.Fn.NumVars()
	d := &dec{b: payload}
	meta := decodeMeta(d)
	g := decodeGraph(d, numVars)
	if d.err != nil {
		return Meta{}, nil, nil, d.err
	}
	red := &reduce.Reduced{H: h, G: g, Recording: map[cfg.EdgeID]bool{}}
	nClass := d.sliceLen()
	if d.err != nil || nClass != h.G.NumNodes() {
		return Meta{}, nil, nil, ErrCorrupt
	}
	red.Class = make([]int, nClass)
	nClasses := g.NumNodes() // one rHPG node per class
	for i := 0; i < nClass; i++ {
		c := d.int()
		if c < 0 || c >= nClasses {
			return Meta{}, nil, nil, ErrCorrupt
		}
		red.Class[i] = c
	}
	nMembers := d.sliceLen()
	red.Members = make([][]cfg.NodeID, nMembers)
	for i := 0; i < nMembers; i++ {
		m := d.sliceLen()
		ms := make([]cfg.NodeID, m)
		for j := 0; j < m; j++ {
			v := d.i64()
			if v < 0 || v >= int64(h.G.NumNodes()) {
				return Meta{}, nil, nil, ErrCorrupt
			}
			ms[j] = cfg.NodeID(v)
		}
		red.Members[i] = ms
	}
	nRep := d.sliceLen()
	red.Rep = make([]cfg.NodeID, nRep)
	for i := 0; i < nRep; i++ {
		v := d.i64()
		if v < 0 || v >= int64(g.NumNodes()) {
			return Meta{}, nil, nil, ErrCorrupt
		}
		red.Rep[i] = cfg.NodeID(v)
	}
	red.OrigNode = make([]cfg.NodeID, g.NumNodes())
	for i := range red.OrigNode {
		v := d.i64()
		if v < 0 || v >= int64(h.Fn.G.NumNodes()) {
			return Meta{}, nil, nil, ErrCorrupt
		}
		red.OrigNode[i] = cfg.NodeID(v)
	}
	red.OrigEdge = make([]cfg.EdgeID, g.NumEdges())
	for i := range red.OrigEdge {
		v := d.i64()
		if v < 0 || v >= int64(h.Fn.G.NumEdges()) {
			return Meta{}, nil, nil, ErrCorrupt
		}
		red.OrigEdge[i] = cfg.EdgeID(v)
	}
	nRec := d.sliceLen()
	for i := 0; i < nRec; i++ {
		v := d.i64()
		if v < 0 || v >= int64(g.NumEdges()) {
			return Meta{}, nil, nil, ErrCorrupt
		}
		red.Recording[cfg.EdgeID(v)] = true
	}
	nHot := d.sliceLen()
	red.Hot = make([]cfg.NodeID, nHot)
	for i := 0; i < nHot; i++ {
		v := d.i64()
		if v < 0 || v >= int64(h.G.NumNodes()) {
			return Meta{}, nil, nil, ErrCorrupt
		}
		red.Hot[i] = cfg.NodeID(v)
	}
	nW := d.sliceLen()
	if d.err != nil || nW != h.G.NumNodes() {
		return Meta{}, nil, nil, ErrCorrupt
	}
	red.Weights = make([]int64, nW)
	for i := 0; i < nW; i++ {
		red.Weights[i] = d.i64()
	}
	sol := decodeSolution(d, g, numVars)
	if err := d.done(); err != nil {
		return Meta{}, nil, nil, err
	}
	return meta, red, sol, nil
}

// --- Feasibility masks ----------------------------------------------------

// EncodeFeasible frames one graph tier's infeasible-edge mask (indexed
// by cfg.EdgeID). The graph itself is not stored: the decoder validates
// the mask's length against the live graph it re-attaches to.
func EncodeFeasible(meta Meta, mask []bool) []byte {
	var e enc
	encodeMeta(&e, meta)
	e.u64(uint64(len(mask)))
	for _, b := range mask {
		e.bool(b)
	}
	return frame(KindFeasible, e.b)
}

// DecodeFeasible decodes a feasibility bundle against the tier's graph;
// a mask whose length disagrees with the graph's edge count is corrupt.
func DecodeFeasible(data []byte, g *cfg.Graph) (Meta, []bool, error) {
	payload, err := unframe(KindFeasible, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	n := d.sliceLen()
	if d.err != nil || n != g.NumEdges() {
		return Meta{}, nil, ErrCorrupt
	}
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = d.bool()
	}
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	return meta, mask, nil
}
