package diskcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// --- Codec framing ---------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello, artifact")
	framed := frame(KindSelect, payload)
	got, err := unframe(KindSelect, framed)
	if err != nil {
		t.Fatalf("unframe: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
}

func TestUnframeRejectsEveryDefect(t *testing.T) {
	payload := []byte("some payload bytes")
	good := frame(KindTrace, payload)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		kind   Kind
	}{
		{"truncated-to-nothing", func(b []byte) []byte { return b[:3] }, KindTrace},
		{"truncated-mid-payload", func(b []byte) []byte { return b[:len(b)-9] }, KindTrace},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, KindTrace},
		{"version-bump", func(b []byte) []byte { b[4] = FormatVersion + 1; return b }, KindTrace},
		{"kind-mismatch", func(b []byte) []byte { return b }, KindReduced},
		{"payload-bit-flip", func(b []byte) []byte { b[headerLen+2] ^= 0x01; return b }, KindTrace},
		{"checksum-bit-flip", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }, KindTrace},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			if _, err := unframe(tc.kind, b); err != ErrCorrupt {
				t.Fatalf("unframe = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	var e enc
	e.u64(0)
	e.u64(1 << 62)
	e.i64(-12345)
	e.int(42)
	e.byte(0xab)
	e.bool(true)
	e.bool(false)
	e.f64(3.14159)
	e.str("")
	e.str("qualification")

	d := &dec{b: e.b}
	if v := d.u64(); v != 0 {
		t.Errorf("u64 = %d", v)
	}
	if v := d.u64(); v != 1<<62 {
		t.Errorf("u64 = %d", v)
	}
	if v := d.i64(); v != -12345 {
		t.Errorf("i64 = %d", v)
	}
	if v := d.int(); v != 42 {
		t.Errorf("int = %d", v)
	}
	if v := d.byte(); v != 0xab {
		t.Errorf("byte = %x", v)
	}
	if !d.bool() || d.bool() {
		t.Error("bool round trip failed")
	}
	if v := d.f64(); v != 3.14159 {
		t.Errorf("f64 = %v", v)
	}
	if v := d.str(); v != "" {
		t.Errorf("str = %q", v)
	}
	if v := d.str(); v != "qualification" {
		t.Errorf("str = %q", v)
	}
	if err := d.done(); err != nil {
		t.Fatalf("done: %v", err)
	}
}

func TestDecoderStickyErrorAndBounds(t *testing.T) {
	// A length prefix far beyond the remaining payload must fail without
	// allocating, and every subsequent read must stay failed.
	var e enc
	e.u64(1 << 40) // huge slice length
	d := &dec{b: e.b}
	if n := d.sliceLen(); n != 0 {
		t.Fatalf("sliceLen = %d, want 0", n)
	}
	if d.err != ErrCorrupt {
		t.Fatalf("err = %v", d.err)
	}
	if v := d.u64(); v != 0 {
		t.Fatalf("post-error read = %d", v)
	}
	// Trailing garbage must be caught by done.
	d2 := &dec{b: []byte{0x00, 0x00}}
	d2.u64()
	if err := d2.done(); err != ErrCorrupt {
		t.Fatalf("done with trailing bytes = %v", err)
	}
	// Truncated varint.
	d3 := &dec{b: []byte{0x80}}
	d3.u64()
	if d3.err != ErrCorrupt {
		t.Fatalf("truncated varint err = %v", d3.err)
	}
}

// --- Store -----------------------------------------------------------------

func testKey(i int) Key {
	return Key{Kind: KindSelect, Slice: uint64(i), Chain: 2, Knob: 3}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	payload := frame(KindSelect, []byte("bundle"))
	if _, ok := s.Get(k); ok {
		t.Fatal("Get on empty store returned data")
	}
	s.Put(k, payload)
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %v/%v", got, ok)
	}
	s.Hit(time.Millisecond)
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != int64(len(payload)) {
		t.Errorf("bytes = %d, want %d", st.Bytes, len(payload))
	}
	if st.DecodeCount != 1 || st.DecodeSum <= 0 {
		t.Errorf("decode histogram not recorded: %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	payload := frame(KindSelect, bytes.Repeat([]byte{0xaa}, 100))
	// Budget for three entries.
	s, err := Open(t.TempDir(), int64(3*len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Put(testKey(i), payload)
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	s.Put(testKey(3), payload)
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("LRU victim (key 1) still present")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Errorf("key %d evicted unexpectedly", i)
		}
	}
}

func TestStoreRecoveryOrderAndCleanup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame(KindSelect, []byte("recoverable"))
	for i := 0; i < 3; i++ {
		s.Put(testKey(i), payload)
		// Distinct mtimes so recovery order is deterministic.
		name := testKey(i).filename()
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, name), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// A leftover temp file and a version-skewed entry must be deleted.
	tmp := filepath.Join(dir, "leftover.123.1.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := append([]byte(nil), payload...)
	stale[4] = FormatVersion + 1
	stalePath := filepath.Join(dir, testKey(9).filename())
	if err := os.WriteFile(stalePath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Entries != 3 || st.Bytes != int64(3*len(payload)) {
		t.Fatalf("recovered stats = %+v", st)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover temp file survived recovery")
	}
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Error("version-skewed entry survived recovery")
	}

	// Recovery must preserve LRU order by mtime: with budget for two
	// entries, the oldest (key 0) goes first.
	s3, err := Open(dir, int64(2*len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get(testKey(0)); ok {
		t.Error("oldest entry survived a shrunken budget")
	}
	for _, i := range []int{1, 2} {
		if _, ok := s3.Get(testKey(i)); !ok {
			t.Errorf("newer entry %d evicted at open", i)
		}
	}
}

func TestStoreRejectDeletesEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	s.Put(k, frame(KindSelect, []byte("will be rejected")))
	if _, ok := s.Get(k); !ok {
		t.Fatal("entry missing before reject")
	}
	s.Reject(k)
	if _, err := os.Stat(filepath.Join(dir, k.filename())); !os.IsNotExist(err) {
		t.Error("rejected file still on disk")
	}
	if _, ok := s.Get(k); ok {
		t.Error("rejected entry still served")
	}
	st := s.Stats()
	if st.Rejects != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreCrossProcessFallback(t *testing.T) {
	// Two stores on one directory model two processes: a bundle written
	// by one must be readable by the other (filesystem fallback), and
	// the reader adopts it into its index.
	dir := t.TempDir()
	a, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	payload := frame(KindSelect, []byte("written by a"))
	a.Put(k, payload)
	got, ok := b.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("cross-store Get = %v/%v", got, ok)
	}
	if st := b.Stats(); st.Entries != 1 {
		t.Errorf("fallback did not adopt entry: %+v", st)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBaseline: "baseline", KindSelect: "select",
		KindAutomaton: "automaton", KindTrace: "trace",
		KindAnalyze: "analyze", KindTranslate: "translate",
		KindReduced: "reduced", Kind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
