package diskcache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Key identifies one bundle in the store: the artifact kind plus the
// engine's Merkle-style stage key. Slice fingerprints the input slice
// the stage actually reads (block bodies, CFG shape, recording edges,
// per-block counts — whichever apply); Chain folds in the digests of
// the stage's upstream cache keys, so a change anywhere upstream
// re-keys every dependent bundle; Knob carries the stage's swept
// parameter bits (CA or CR). Identical keys name identical content
// (the pipeline is a pure function of the fingerprints), so concurrent
// writers racing on one key are harmless — last rename wins and both
// payloads are equivalent.
type Key struct {
	Kind               Kind
	Slice, Chain, Knob uint64
}

// filename renders the key as the bundle's file name. The kind appears
// both in the name and in the frame header, so a renamed file still
// fails closed at decode time.
func (k Key) filename() string {
	return fmt.Sprintf("%s-%016x%016x%016x%s", k.Kind, k.Slice, k.Chain, k.Knob, fileSuffix)
}

const (
	fileSuffix = ".pfac"
	tmpSuffix  = ".tmp"
)

// bundleNamePat matches well-formed bundle file names: a known kind
// prefix, the three 16-hex-digit key fingerprints, and the suffix. Names
// arriving over the fabric's bundle endpoints are untrusted path
// components; anything that does not match is rejected before it can
// touch the filesystem.
var bundleNamePat = regexp.MustCompile(`^([a-z]+)-[0-9a-f]{48}\.pfac$`)

// ValidBundleName reports whether name is a well-formed bundle file name
// with a known kind prefix, and returns that kind.
func ValidBundleName(name string) (Kind, bool) {
	m := bundleNamePat.FindStringSubmatch(name)
	if m == nil {
		return 0, false
	}
	k := KindFromString(m[1])
	return k, k != 0
}

// Remote is an optional second bundle tier behind the local directory:
// a peer (in practice the fabric coordinator) that is consulted on local
// misses and offered every locally written bundle. Both calls are
// best-effort — Fetch returning false and Push failing silently both
// just cost a recompute somewhere — and implementations own their own
// timeouts and retries. Fetched frames are checksum-validated before
// adoption, so a corrupt peer bundle degrades to a miss.
type Remote interface {
	Fetch(name string) ([]byte, bool)
	Push(name string, data []byte)
}

// DecodeBucketBounds are the decode-time histogram upper bounds in
// seconds: decades from a microsecond to ten seconds, matching the
// serving layer's stage histograms so the two are comparable on one
// dashboard.
var DecodeBucketBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// numDecodeBuckets keeps the Stats array in sync with DecodeBucketBounds.
const numDecodeBuckets = 8

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts lookups whose payload decoded into a usable artifact.
	Hits int64
	// Misses counts lookups that found no file, an unreadable file, or a
	// payload the caller rejected as corrupt (Rejects ⊆ Misses).
	Misses int64
	// Rejects counts payloads read successfully but rejected at decode
	// time (truncation, bit flips, version skew); the file is deleted.
	Rejects int64
	// Writes counts bundles persisted.
	Writes int64
	// Evictions counts bundles removed by the size bound.
	Evictions int64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64
	// Decode-time histogram over disk hits (seconds, cumulative counts
	// per DecodeBucketBounds entry).
	DecodeCount   int64
	DecodeSum     float64
	DecodeBuckets [numDecodeBuckets]int64
	// RemoteFetches counts bundles adopted from the remote tier on local
	// misses; RemotePushes counts locally written bundles offered to it.
	RemoteFetches int64
	RemotePushes  int64
}

// entry is one resident bundle.
type entry struct {
	name string
	size int64
	elem *list.Element // position in the LRU list (front = oldest)
}

// Store is the on-disk artifact store: one file per bundle, atomic
// O_EXCL-temp + rename writes, and a size-bounded LRU. All methods are
// safe for concurrent use; cross-process sharing of one directory is
// safe because writes are atomic renames and readers fall back to the
// filesystem on index misses.
type Store struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // of *entry; front = least recently used
	bytes   int64
	seq     uint64

	hits, misses, rejects, writes, evictions int64
	remoteFetches, remotePushes              int64
	decCount                                 int64
	decSum                                   float64
	decBuckets                               [numDecodeBuckets]int64

	remote  Remote        // set once before concurrent use; nil = local only
	pushSem chan struct{} // bounds in-flight async remote pushes
	pushWG  sync.WaitGroup
}

// maxInflightPushes bounds the background remote-push goroutines per
// store. Pushes past the bound wait their turn rather than drop: a
// dropped push silently costs every fleet sibling a recompute.
const maxInflightPushes = 4

// SetRemote installs the remote bundle tier. Call once, before the
// store is used concurrently.
func (s *Store) SetRemote(r Remote) {
	s.remote = r
	s.pushSem = make(chan struct{}, maxInflightPushes)
}

// WaitRemote blocks until every background remote push started so far
// has completed. Bundle delivery is otherwise asynchronous; callers that
// need ordering against the remote tier (tests, graceful shutdown) wait
// here.
func (s *Store) WaitRemote() { s.pushWG.Wait() }

// Open opens (creating if needed) the store rooted at dir with the given
// byte budget. Pre-existing bundles are recovered into the LRU in
// modification-time order; leftover temp files and entries written by a
// different format version are deleted. maxBytes <= 0 disables the size
// bound.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: open %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  map[string]*entry{},
		lru:      list.New(),
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: open %s: %w", dir, err)
	}
	type found struct {
		name  string
		size  int64
		mtime time.Time
	}
	var survivors []found
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A crashed writer's temp file; the rename never happened.
			os.Remove(path)
		case strings.HasSuffix(name, fileSuffix):
			info, err := de.Info()
			if err != nil {
				continue
			}
			if !recoverable(path, info.Size()) {
				// Wrong magic or a different format version: a stale
				// binary's entry that can only ever decode as a miss.
				os.Remove(path)
				continue
			}
			survivors = append(survivors, found{name: name, size: info.Size(), mtime: info.ModTime()})
		}
	}
	sort.Slice(survivors, func(i, j int) bool {
		if !survivors[i].mtime.Equal(survivors[j].mtime) {
			return survivors[i].mtime.Before(survivors[j].mtime)
		}
		return survivors[i].name < survivors[j].name
	})
	for _, f := range survivors {
		e := &entry{name: f.name, size: f.size}
		e.elem = s.lru.PushBack(e)
		s.entries[f.name] = e
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// recoverable reports whether a file has this version's frame header.
// Only the header is checked at open — full checksum validation happens
// lazily at first Get, keeping recovery O(entries) cheap.
func recoverable(path string, size int64) bool {
	if size < int64(headerLen+checksumLen) {
		return false
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	return [4]byte(hdr[:4]) == magic && hdr[4] == FormatVersion
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the framed payload stored under k, or (nil, false) on a
// miss. A successful Get is not yet a hit: the caller decodes the
// payload and reports the outcome via Hit or Reject, so the hit counter
// only counts payloads that produced usable artifacts.
func (s *Store) Get(k Key) ([]byte, bool) {
	name := k.filename()
	path := filepath.Join(s.dir, name)

	s.mu.Lock()
	e, ok := s.entries[name]
	if ok {
		s.lru.MoveToBack(e.elem)
	}
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		if e, ok := s.entries[name]; ok {
			// Indexed but gone on disk (another process evicted it).
			s.dropLocked(e)
		}
		s.mu.Unlock()
		// Local miss: try the remote tier before giving up. A fetched
		// frame is checksum-validated here and adopted locally, so peers
		// serving bit rot cost nothing but the round-trip.
		if s.remote != nil {
			if rdata, rok := s.remote.Fetch(name); rok && CheckFrame(k.Kind, rdata) == nil {
				s.mu.Lock()
				s.remoteFetches++
				s.mu.Unlock()
				s.writeLocal(name, rdata)
				return rdata, true
			}
		}
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	if !ok {
		// Filesystem fallback: another process wrote this bundle after we
		// opened the directory. Adopt it into the index.
		s.adoptEntry(name, int64(len(data)))
	}
	return data, true
}

// adoptEntry indexes a bundle that appeared on disk outside Put (a
// sibling process's write).
func (s *Store) adoptEntry(name string, size int64) {
	s.mu.Lock()
	if _, dup := s.entries[name]; !dup {
		e := &entry{name: name, size: size}
		e.elem = s.lru.PushBack(e)
		s.entries[name] = e
		s.bytes += e.size
		s.evictLocked()
	}
	s.mu.Unlock()
}

// Hit records a successful decode of a Get payload and its decode time.
func (s *Store) Hit(decode time.Duration) {
	sec := decode.Seconds()
	s.mu.Lock()
	s.hits++
	s.decCount++
	s.decSum += sec
	for i, ub := range DecodeBucketBounds {
		if sec <= ub {
			s.decBuckets[i]++
		}
	}
	s.mu.Unlock()
}

// Reject records that a Get payload failed to decode: the entry is
// deleted so the recompute's Put rewrites it, and the lookup is
// accounted as a miss.
func (s *Store) Reject(k Key) {
	name := k.filename()
	s.mu.Lock()
	s.rejects++
	s.misses++
	if e, ok := s.entries[name]; ok {
		s.dropLocked(e)
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, name))
}

// Put persists a framed payload under k: written to an O_EXCL temp file
// (unique per process and call, so concurrent writers never share a
// partial file) and renamed into place atomically. Write failures are
// swallowed — the store is a cache, losing a write only costs a future
// recompute. Freshly computed bundles are also offered to the remote
// tier, so fabric siblings (and a restarted fleet) find them without
// recomputing. The offer is asynchronous — a push is best-effort and
// pure overhead on the analysis critical path — and bounded by
// maxInflightPushes; WaitRemote drains it.
func (s *Store) Put(k Key, data []byte) {
	name := k.filename()
	if !s.writeLocal(name, data) {
		return
	}
	if s.remote != nil {
		s.mu.Lock()
		s.remotePushes++
		s.mu.Unlock()
		s.pushWG.Add(1)
		s.pushSem <- struct{}{}
		go func() {
			defer func() { <-s.pushSem; s.pushWG.Done() }()
			s.remote.Push(name, data)
		}()
	}
}

// writeLocal atomically writes one bundle file and indexes it. Returns
// false if the write failed (and was cleaned up).
func (s *Store) writeLocal(name string, data []byte) bool {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()

	tmp := filepath.Join(s.dir, fmt.Sprintf("%s.%d.%d%s", name, os.Getpid(), seq, tmpSuffix))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return false
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp)
		return false
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp)
		return false
	}

	s.mu.Lock()
	s.writes++
	if e, ok := s.entries[name]; ok {
		// Replaced an existing bundle (same key ⇒ equivalent content).
		s.bytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		s.lru.MoveToBack(e.elem)
	} else {
		e := &entry{name: name, size: int64(len(data))}
		e.elem = s.lru.PushBack(e)
		s.entries[name] = e
		s.bytes += e.size
	}
	s.evictLocked()
	s.mu.Unlock()
	return true
}

// ReadBundle returns the raw frame stored under a bundle file name, for
// serving to fabric peers. Unlike Get it never consults the remote tier
// and does not count a miss — it describes what this store has, not what
// an analysis needed. Malformed names are rejected without touching the
// filesystem.
func (s *Store) ReadBundle(name string) ([]byte, bool) {
	if _, ok := ValidBundleName(name); !ok {
		return nil, false
	}
	s.mu.Lock()
	if e, ok := s.entries[name]; ok {
		s.lru.MoveToBack(e.elem)
	}
	s.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, false
	}
	s.adoptEntry(name, int64(len(data)))
	return data, true
}

// AdoptBundle validates and stores a frame pushed by a peer under a
// bundle file name. The name must be well-formed, and the frame must
// carry the name's kind and an intact checksum; anything else returns
// ErrCorrupt and leaves the store untouched, so a misbehaving worker
// cannot poison the shared tier with unreadable bytes.
func (s *Store) AdoptBundle(name string, data []byte) error {
	kind, ok := ValidBundleName(name)
	if !ok {
		return ErrCorrupt
	}
	if err := CheckFrame(kind, data); err != nil {
		return err
	}
	if !s.writeLocal(name, data) {
		return fmt.Errorf("diskcache: adopt %s: write failed", name)
	}
	return nil
}

// dropLocked removes e from the index without touching the filesystem.
func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.name)
	s.bytes -= e.size
}

// evictLocked deletes least-recently-used bundles until the byte budget
// is met. The newest entry is evictable too: a single bundle larger than
// the whole budget is not kept.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 0 {
		e := s.lru.Front().Value.(*entry)
		s.dropLocked(e)
		s.evictions++
		os.Remove(filepath.Join(s.dir, e.name))
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:          s.hits,
		Misses:        s.misses,
		Rejects:       s.rejects,
		Writes:        s.writes,
		Evictions:     s.evictions,
		Entries:       len(s.entries),
		Bytes:         s.bytes,
		DecodeCount:   s.decCount,
		DecodeSum:     s.decSum,
		DecodeBuckets: s.decBuckets,
		RemoteFetches: s.remoteFetches,
		RemotePushes:  s.remotePushes,
	}
}
