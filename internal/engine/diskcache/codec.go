// Package diskcache is the persistent tier of the engine's artifact
// cache: a content-addressed, size-bounded, crash-safe store of pipeline
// bundles keyed by the engine's (function, profile, hot-set, knob)
// fingerprints.
//
// The package has three layers:
//
//   - codec.go:     a compact versioned binary codec (varint fields, a
//     fixed header with a format-version byte, and a trailing FNV-64a
//     checksum). Any framing defect — bad magic, unknown version, kind
//     mismatch, truncation, bit flips — is reported as ErrCorrupt and
//     treated by the store as a miss, never as an error.
//   - artifacts.go: encoders/decoders for the per-stage bundles the
//     engine caches (hot sets, automata, HPG graphs, data-flow
//     solutions, translated profiles, reduced graphs), each carrying
//     the per-stage compute costs of the run that produced it so cache
//     hits still report meaningful durations.
//   - store.go:     the on-disk store itself — one file per bundle,
//     atomic O_EXCL-temp + rename writes, a size-bounded LRU with
//     recovery of pre-existing entries at open, and hit/miss/evict/
//     decode-time statistics.
//
// The engine (internal/engine) layers its in-memory single-flight cache
// on top: memory first, disk second, with disk hits decoded exactly once
// per process and promoted into memory.
package diskcache

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
)

// ErrCorrupt marks a payload that failed structural validation:
// truncated, bit-flipped, version-skewed, or semantically inconsistent.
// Callers treat it as a cache miss (silent recompute), never a failure.
var ErrCorrupt = errors.New("diskcache: corrupt or stale entry")

// Format constants. Version is bumped whenever any bundle encoding
// changes shape; readers reject every version but their own, so stale
// entries from older binaries decode as misses and are rewritten.
const (
	// FormatVersion is the current on-disk format version. Version 2
	// split the monolithic qualified bundle into per-stage bundles
	// (automaton/trace/analyze/translate), moved to Merkle-style
	// (slice, chain) keys, and added the Meta envelope carrying the
	// delta class of the run that wrote each bundle.
	FormatVersion = 2

	headerLen   = 6 // magic(4) + version(1) + kind(1)
	checksumLen = 8
)

// magic identifies a pathflow artifact-cache file.
var magic = [4]byte{'P', 'F', 'A', 'C'}

// Kind identifies which bundle a payload carries; it is stored in the
// header so a file renamed across kinds still decodes as a miss.
type Kind uint8

// The bundle kinds, mirroring the engine's per-stage cache keys. Since
// format version 2 every qualification stage persists its own bundle
// (the old monolithic "qualified" bundle is gone), so an incremental
// re-analysis can replay exactly the stages an edit left clean.
const (
	KindBaseline Kind = iota + 1
	KindSelect
	KindAutomaton
	KindTrace
	KindAnalyze
	KindTranslate
	KindReduced
	KindFeasible
	KindStream
)

func (k Kind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindSelect:
		return "select"
	case KindAutomaton:
		return "automaton"
	case KindTrace:
		return "trace"
	case KindAnalyze:
		return "analyze"
	case KindTranslate:
		return "translate"
	case KindReduced:
		return "reduced"
	case KindFeasible:
		return "feasible"
	case KindStream:
		return "stream"
	}
	return "unknown"
}

// frame wraps a payload in the versioned envelope: header, payload,
// trailing checksum over everything before it.
func frame(kind Kind, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+checksumLen)
	out = append(out, magic[:]...)
	out = append(out, FormatVersion, byte(kind))
	out = append(out, payload...)
	h := fnv.New64a()
	h.Write(out) //nolint:errcheck // fnv never fails
	return binary.LittleEndian.AppendUint64(out, h.Sum64())
}

// unframe validates the envelope and returns the payload. Every defect
// yields ErrCorrupt.
func unframe(kind Kind, data []byte) ([]byte, error) {
	if len(data) < headerLen+checksumLen {
		return nil, ErrCorrupt
	}
	if [4]byte(data[:4]) != magic || data[4] != FormatVersion || data[5] != byte(kind) {
		return nil, ErrCorrupt
	}
	body, sum := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	h := fnv.New64a()
	h.Write(body) //nolint:errcheck
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return nil, ErrCorrupt
	}
	return body[headerLen:], nil
}

// CheckFrame validates a bundle frame whose expected kind is not known
// from a typed Key — magic, version, a kind byte in range, and the
// trailing checksum. This is the admission check for bundles arriving
// from fabric peers, where the claimed kind comes from the untrusted
// file name: a frame that passes still gets the full kind-matched
// unframe (and the artifact decoder's structural validation) before any
// payload is used, so CheckFrame only has to reject noise, truncation,
// and version skew at the door.
func CheckFrame(kind Kind, data []byte) error {
	if kind == 0 || kind > KindStream {
		return ErrCorrupt
	}
	_, err := unframe(kind, data)
	return err
}

// KindFromString maps a bundle-kind name (the file-name prefix) back to
// its Kind, or 0 if unknown.
func KindFromString(s string) Kind {
	for k := KindBaseline; k <= KindStream; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// --- Primitive writer -----------------------------------------------------

// enc accumulates the varint-encoded payload.
type enc struct{ b []byte }

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) int(v int)     { e.i64(int64(v)) }
func (e *enc) byte(v byte)   { e.b = append(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// --- Primitive reader -----------------------------------------------------

// dec consumes a payload with sticky error semantics: after the first
// defect every read returns zero values and err stays ErrCorrupt, so
// decoders can be written straight-line and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() { d.err = ErrCorrupt }

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int() int { return int(d.i64()) }

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// sliceLen reads a length prefix and bounds-checks it against the
// remaining payload (each element needs at least one byte), defusing
// huge allocations from corrupt length fields.
func (d *dec) sliceLen() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return 0
	}
	return int(n)
}

// done checks that the payload was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return ErrCorrupt
	}
	return nil
}
