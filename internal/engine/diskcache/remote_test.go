package diskcache

import (
	"bytes"
	"sync"
	"testing"
)

// fakeRemote is an in-memory fabric peer: a name → frame map with
// recorded push history.
type fakeRemote struct {
	mu      sync.Mutex
	bundles map[string][]byte
	pushes  []string
}

func newFakeRemote() *fakeRemote { return &fakeRemote{bundles: map[string][]byte{}} }

func (r *fakeRemote) Fetch(name string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.bundles[name]
	return d, ok
}

func (r *fakeRemote) Push(name string, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bundles[name] = append([]byte(nil), data...)
	r.pushes = append(r.pushes, name)
}

func TestRemoteTierFetchOnMissPushOnPut(t *testing.T) {
	remote := newFakeRemote()
	k := testKey(1)
	good := frame(KindSelect, []byte("computed elsewhere"))
	remote.bundles[k.filename()] = good

	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)

	// Local miss falls through to the remote and adopts the frame.
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, good) {
		t.Fatalf("remote-backed Get: ok=%v", ok)
	}
	st := s.Stats()
	if st.RemoteFetches != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want one remote fetch and no miss", st)
	}

	// A locally computed Put is offered to the remote.
	k2 := testKey(2)
	s.Put(k2, frame(KindSelect, []byte("computed here")))
	s.WaitRemote() // pushes are async; drain before asserting
	if _, ok := remote.Fetch(k2.filename()); !ok {
		t.Fatal("Put did not push to the remote tier")
	}
	if st := s.Stats(); st.RemotePushes != 1 {
		t.Fatalf("RemotePushes = %d, want 1", st.RemotePushes)
	}
}

func TestRemoteChecksumCorruptBundleIsAMiss(t *testing.T) {
	remote := newFakeRemote()
	k := testKey(1)
	bad := frame(KindSelect, []byte("payload"))
	bad[len(bad)-1] ^= 0x80 // break the checksum
	remote.bundles[k.filename()] = bad

	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)
	if _, ok := s.Get(k); ok {
		t.Fatal("checksum-corrupt remote bundle was served")
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want the corrupt fetch accounted as a miss", st.Misses)
	}
	// The poison was not adopted: a second Get re-fetches (and re-fails)
	// instead of serving bad bytes from disk.
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt bundle adopted locally")
	}
	if st := s.Stats(); st.RemoteFetches != 0 {
		t.Fatalf("RemoteFetches = %d, corrupt fetches must not count as fetch hits", st.RemoteFetches)
	}
}

// TestCorruptPeerBundleHeals exercises the full heal cycle for a bundle
// whose frame checksum is intact but whose payload is semantically
// garbage (a buggy peer published it): the decode layer rejects it,
// Reject deletes it, and the recompute's Put republishes good bytes to
// the remote — the corruption is healed fleet-wide instead of pinned.
func TestCorruptPeerBundleHeals(t *testing.T) {
	remote := newFakeRemote()
	k := testKey(1)
	name := k.filename()
	// Valid frame, garbage payload: passes CheckFrame, fails decode.
	poisoned := frame(KindSelect, []byte{0xff, 0xff, 0xff, 0xff})
	remote.bundles[name] = poisoned

	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)

	data, ok := s.Get(k)
	if !ok {
		t.Fatal("frame-valid bundle should be served (corruption is caught at decode)")
	}
	if _, _, err := DecodeSelect(data, nil); err == nil {
		t.Fatal("garbage payload decoded successfully?")
	}
	s.Reject(k)
	if _, ok := s.entries[name]; ok {
		t.Fatal("rejected bundle still indexed")
	}

	// The recompute republishes; the peer's copy is overwritten.
	good := EncodeSelect(Meta{}, nil)
	s.Put(k, good)
	s.WaitRemote() // pushes are async; drain before asserting
	peerCopy, ok := remote.Fetch(name)
	if !ok || !bytes.Equal(peerCopy, good) {
		t.Fatal("heal did not republish the recomputed bundle to the remote")
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, good) {
		t.Fatal("healed bundle not served locally")
	}
	if st := s.Stats(); st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
}

// TestSharedDirConcurrentPublish is the cross-process race surface run
// in-process: many stores (one per simulated worker) over ONE shared
// directory, concurrently publishing the same fingerprints and reading
// them back. The O_EXCL-temp + rename discipline must keep every read
// either a clean miss or a fully written frame — run under -race in CI.
func TestSharedDirConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	const workers = 4
	const keys = 8
	const rounds = 25

	stores := make([]*Store, workers)
	for i := range stores {
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	payload := func(i int) []byte {
		return frame(KindSelect, bytes.Repeat([]byte{byte(i)}, 64))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					// Same key ⇒ same content: racing writers are
					// byte-equivalent, so any winner is correct.
					s.Put(testKey(i), payload(i))
					if data, ok := s.Get(testKey(i)); ok {
						if _, err := unframe(KindSelect, data); err != nil {
							t.Errorf("read a torn frame for key %d: %v", i, err)
							return
						}
						if !bytes.Equal(data, payload(i)) {
							t.Errorf("key %d served wrong content", i)
							return
						}
					}
				}
			}
		}(stores[w])
	}
	wg.Wait()

	// Every store ends with every key readable.
	for wi, s := range stores {
		for i := 0; i < keys; i++ {
			data, ok := s.Get(testKey(i))
			if !ok || !bytes.Equal(data, payload(i)) {
				t.Fatalf("store %d: key %d unreadable after the race", wi, i)
			}
		}
	}
}

// TestSharedDirAdoptVsReadRace drives AdoptBundle (the coordinator's PUT
// path) against ReadBundle (its GET path) on one directory — the
// coordinator's actual concurrency profile when one worker publishes
// while another fetches.
func TestSharedDirAdoptVsReadRace(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	name := testKey(1).filename()
	data := EncodeSelect(Meta{}, nil)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				if err := s.AdoptBundle(name, data); err != nil {
					t.Errorf("AdoptBundle: %v", err)
					return
				}
				if got, ok := s.ReadBundle(name); ok && !bytes.Equal(got, data) {
					t.Error("ReadBundle returned torn bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, ok := s.ReadBundle(name); !ok || !bytes.Equal(got, data) {
		t.Fatal("bundle unreadable after the race")
	}
}
