package diskcache

import (
	"pathflow/internal/cfg"
	"pathflow/internal/profile/stream"
)

// Stream-accumulator snapshots ride the same versioned+checksummed
// frame as every pipeline bundle, so a persisted live profile survives
// a daemon restart with the same guarantees the artifact tiers get:
// truncation, bit flips and version skew all decode as ErrCorrupt and
// the server falls back to re-seeding from the training profile.
//
// Unlike the per-stage bundles, a stream snapshot is not keyed by
// content — it is mutable state, written at shutdown and read at the
// next start — so the serving layer stores it under a name derived
// from the analysis target, not through the LRU store.

// EncodeStream encodes a stream.Set snapshot.
func EncodeStream(meta Meta, snap *stream.SetSnapshot) []byte {
	var e enc
	encodeMeta(&e, meta)
	e.u64(snap.Epoch)
	e.u64(uint64(len(snap.Funcs)))
	for _, fs := range snap.Funcs {
		e.str(fs.Func)
		e.u64(uint64(len(fs.R)))
		for _, eid := range fs.R {
			e.i64(int64(eid))
		}
		e.u64(uint64(len(fs.Entries)))
		for _, es := range fs.Entries {
			e.u64(uint64(len(es.Edges)))
			for _, eid := range es.Edges {
				e.i64(int64(eid))
			}
			e.u64(es.Raw)
		}
	}
	e.u64(uint64(len(snap.Seqs)))
	for _, sq := range snap.Seqs {
		e.str(sq.Source)
		e.str(sq.Func)
		e.u64(sq.Seq)
	}
	return frame(KindStream, e.b)
}

// DecodeStream decodes a snapshot and restores it against prog,
// re-validating every path. Any structural defect — framing, bounds,
// invalid paths, a snapshot from a different program version — is
// ErrCorrupt (or the restore error), never a panic.
func DecodeStream(data []byte, prog *cfg.Program) (Meta, *stream.Set, error) {
	payload, err := unframe(KindStream, data)
	if err != nil {
		return Meta{}, nil, err
	}
	d := &dec{b: payload}
	meta := decodeMeta(d)
	snap := &stream.SetSnapshot{Epoch: d.u64()}
	nFuncs := d.sliceLen()
	for i := 0; i < nFuncs; i++ {
		fs := stream.FuncSnapshot{Func: d.str()}
		nR := d.sliceLen()
		for j := 0; j < nR; j++ {
			fs.R = append(fs.R, cfg.EdgeID(d.i64()))
		}
		nE := d.sliceLen()
		for j := 0; j < nE; j++ {
			m := d.sliceLen()
			es := stream.EntrySnapshot{Edges: make([]cfg.EdgeID, 0, m)}
			for k := 0; k < m; k++ {
				es.Edges = append(es.Edges, cfg.EdgeID(d.i64()))
			}
			es.Raw = d.u64()
			fs.Entries = append(fs.Entries, es)
		}
		snap.Funcs = append(snap.Funcs, fs)
		if d.err != nil {
			return Meta{}, nil, d.err
		}
	}
	nSeqs := d.sliceLen()
	for i := 0; i < nSeqs; i++ {
		snap.Seqs = append(snap.Seqs, stream.SeqSnapshot{
			Source: d.str(), Func: d.str(), Seq: d.u64(),
		})
	}
	if err := d.done(); err != nil {
		return Meta{}, nil, err
	}
	set, err := stream.RestoreSet(prog, snap)
	if err != nil {
		return Meta{}, nil, ErrCorrupt
	}
	return meta, set, nil
}
