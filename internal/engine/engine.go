// Package engine is the staged pipeline engine behind pathflow's
// qualification pipeline (Ammons & Larus, PLDI 1998):
//
//	select → automaton → trace → analyze → translate → reduce
//
// plus the CA = 0 baseline analysis. Each step is an explicit Stage with
// typed input/output artifacts; the engine owns sequencing, context
// cancellation, structured per-stage errors (StageError), per-stage
// metrics (Metrics, generalizing the old ad-hoc Times struct), bounded
// parallel scheduling across independent functions (Map), and a
// cross-run artifact cache (Cache) with Merkle-style per-stage keys:
// every stage's key hashes only the input slice it actually reads (CFG
// shape, block bodies, per-block instruction counts, recording edges,
// the training profile) plus the digests of its upstream stage keys —
// see the table on Cache.keyBaseline and friends.
//
// Two reuse stories fall out of the slice keys. Parameter sweeps — the
// harness's Figures 9/11/12 and the CR ablation — recompute only the
// stages the swept knob can influence (the hot set, not CA, addresses
// everything downstream of selection). And *incremental re-analysis*:
// an edited function re-keys exactly the stages whose input slices (or
// ancestors) the edit touched, so a warm cache replays the clean stages
// and recomputes only the dirtied suffix. DiffFunc classifies an edit
// (Delta) and predicts the replay/recompute split ahead of time;
// `pathflow analyze -baseline` reports it.
//
// The legacy one-call API lives on as thin wrappers in internal/core.
package engine

import (
	"context"
	"fmt"
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/availexpr"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/engine/diskcache"
	"pathflow/internal/feasible"
	"pathflow/internal/interp"
	"pathflow/internal/trace"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds concurrent function analyses; <= 0 means
	// runtime.NumCPU(). Results are deterministic for any worker count.
	Workers int
	// Cache enables the cross-run artifact cache. Sharing is safe
	// because every cached artifact is immutable after construction.
	Cache bool
	// MemoryMaxBytes bounds the in-memory cache tier's estimated
	// footprint; least-recently-used bundles are dropped over the
	// budget. <= 0 means unbounded (the right default for one-shot
	// `exp` runs; long-lived servers should set a ceiling).
	MemoryMaxBytes int64
	// CacheDir, when non-empty, attaches the persistent disk tier
	// (implies Cache): artifacts are written through to CacheDir and
	// warm starts decode them instead of recomputing. Requires Open —
	// New ignores the disk-tier fields because it cannot report an
	// open failure.
	CacheDir string
	// CacheMaxBytes bounds the disk tier; least-recently-used bundle
	// files are deleted over the budget. <= 0 means unbounded.
	CacheMaxBytes int64
}

// Engine runs the staged pipeline.
type Engine struct {
	workers int
	cache   *Cache
}

// New returns an engine with the given configuration. The disk-tier
// fields (CacheDir, CacheMaxBytes) are ignored — opening a directory can
// fail, so the persistent tier is only available through Open.
func New(cfg Config) *Engine {
	e := &Engine{workers: cfg.Workers}
	if cfg.Cache {
		e.cache = newCache(cfg.MemoryMaxBytes, nil)
	}
	return e
}

// Open returns an engine with the full configuration, including the
// persistent cache tier when CacheDir is set. A non-empty CacheDir
// implies Cache: the disk tier requires the in-memory tier in front of
// it (disk hits are decoded once and promoted under single-flight).
func Open(cfg Config) (*Engine, error) {
	e := &Engine{workers: cfg.Workers}
	var disk *diskcache.Store
	if cfg.CacheDir != "" {
		var err error
		disk, err = diskcache.Open(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Cache || disk != nil {
		e.cache = newCache(cfg.MemoryMaxBytes, disk)
	}
	return e, nil
}

// Serial returns the engine configuration equivalent to the pre-engine
// pipeline: one worker, no artifact cache.
func Serial() *Engine { return New(Config{Workers: 1}) }

// Workers returns the configured worker bound (0 = NumCPU).
func (e *Engine) Workers() int { return e.workers }

// Disk returns the persistent artifact store, or nil when the engine
// runs without one. The fabric layers its bundle exchange on it: the
// coordinator serves and adopts bundles through the store's name-based
// endpoints, and workers hang a Remote off it.
func (e *Engine) Disk() *diskcache.Store {
	if e.cache == nil {
		return nil
	}
	return e.cache.disk
}

// CacheStats reports artifact-cache counters (zero value when the cache
// is disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// AnalyzeFunc runs the pipeline on one function. train may be nil for a
// function the training run never executed; qualification is skipped.
func (e *Engine) AnalyzeFunc(ctx context.Context, fn *cfg.Func, train *bl.Profile, o Options) (*FuncResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return e.analyzeFunc(ctx, fn, train, o)
}

func (e *Engine) analyzeFunc(ctx context.Context, fn *cfg.Func, train *bl.Profile, o Options) (*FuncResult, error) {
	m := newMetrics(ctx, fn.Name)
	var hot []bl.Path
	if train != nil && o.CA > 0 {
		var err error
		hot, err = e.selectHot(ctx, fn, train, o.CA, m)
		if err != nil {
			return nil, err
		}
	}
	return e.analyzeFuncHot(ctx, fn, train, hot, o, m)
}

// AnalyzeFuncHot runs the pipeline with an explicitly chosen hot-path
// set, bypassing the coverage-based selection — used by ablations that
// compare selection strategies (e.g. edge-profile estimation against true
// path profiles).
func (e *Engine) AnalyzeFuncHot(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, o Options) (*FuncResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return e.analyzeFuncHot(ctx, fn, train, hot, o, newMetrics(ctx, fn.Name))
}

func (e *Engine) analyzeFuncHot(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, o Options, m *Metrics) (*FuncResult, error) {
	res := &FuncResult{Fn: fn, Opt: o, Train: train, Metrics: m}
	start := time.Now()
	nv := fn.NumVars()

	// Feasibility runs before the baseline so the CFG tier (and every
	// client on it) already analyzes through the pruned view.
	var feasCFG *feasible.Edges
	if o.Feasible {
		var err error
		feasCFG, err = e.feasibleTier(ctx, fn, fn.G, nv, m, func() cacheKey {
			return e.cache.keyFeasibleCFG(fn)
		})
		if err != nil {
			return nil, err
		}
		res.FeasCFG = feasCFG
	}

	sol, err := e.baseline(ctx, fn, o.Kernel, feasCFG, m)
	if err != nil {
		return nil, err
	}
	res.OrigSol = sol

	// CFG-tier client analyses run whether or not qualification will:
	// they are the baseline the HPG/rHPG tiers are compared against, and
	// the only tier at CA = 0.
	if o.Clients != 0 {
		in := ClientIn{G: fn.G, NumVars: nv, Guide: sol.Sol, Kernel: o.Kernel}
		if o.Clients.Has(ClientAvailExpr) {
			in.U = availexpr.NewUniverse(fn.G, nv)
			res.AvailU = in.U
		}
		co, err := e.clientTier(ctx, fn, func() cacheKey {
			key := cacheKey{kind: kindClientsCFG, slice: e.cache.funcFP(fn).full()}
			if feasCFG.Mask() != nil {
				key.chain = e.cache.keyFeasibleCFG(fn).digest()
			}
			return key
		}, in, o.Clients, m)
		if err != nil {
			return nil, err
		}
		res.LiveCFG, res.AvailCFG = co.Live, co.Avail
		if co.Avail != nil {
			res.AvailU = co.Avail.U
		}
	}

	res.Hot = hot
	if len(hot) == 0 || train == nil {
		res.Hot = nil
		return e.finalize(ctx, fn, res, o, m, start)
	}

	// The qualification chain runs as four independently cached stages:
	// each replays from the cache tiers when its Merkle key survives the
	// edit (or sweep point) that brought us here, and recomputes
	// otherwise — the unit of reuse is the stage, not the chain.
	a, err := e.automatonStage(ctx, fn, train, hot, m)
	if err != nil {
		return nil, err
	}
	h, err := e.traceStage(ctx, fn, train, hot, a, m)
	if err != nil {
		return nil, err
	}
	var feasHPG *feasible.Edges
	if o.Feasible {
		feasHPG, err = e.feasibleTier(ctx, fn, h.G, nv, m, func() cacheKey {
			return e.cache.keyFeasibleHPG(fn, train, hot)
		})
		if err != nil {
			return nil, err
		}
		res.FeasHPG = feasHPG
	}
	hsol, err := e.analyzeStage(ctx, fn, train, hot, h, o.Kernel, feasHPG, m)
	if err != nil {
		return nil, err
	}
	hprof, err := e.translateStage(ctx, fn, train, hot, h, m)
	if err != nil {
		return nil, err
	}
	res.Auto, res.HPG, res.HPGSol, res.HPGProf = a, h, hsol, hprof

	r, err := e.reduced(ctx, fn, train, hot, h, hsol, hprof, o, m)
	if err != nil {
		return nil, err
	}
	res.Red, res.RedSol = r.Red, r.RedSol

	if o.Clients != 0 {
		in := ClientIn{G: h.G, NumVars: nv, Guide: hsol.Sol, U: res.AvailU, Kernel: o.Kernel}
		co, err := e.clientTier(ctx, fn, func() cacheKey {
			return cacheKey{kind: kindClientsHPG,
				chain: e.cache.keyAnalyzeMasked(fn, train, hot, feasHPG.Mask() != nil).digest()}
		}, in, o.Clients, m)
		if err != nil {
			return nil, err
		}
		res.LiveHPG, res.AvailHPG = co.Live, co.Avail

		in = ClientIn{G: r.Red.G, NumVars: nv, Guide: r.RedSol.Sol, U: res.AvailU, Kernel: o.Kernel}
		co, err = e.clientTier(ctx, fn, func() cacheKey {
			return cacheKey{kind: kindClientsRed,
				chain: e.cache.keyReduceFeasible(fn, train, hot, o.CR, o.Feasible).digest()}
		}, in, o.Clients, m)
		if err != nil {
			return nil, err
		}
		res.LiveRed, res.AvailRed = co.Live, co.Avail
	}
	return e.finalize(ctx, fn, res, o, m, start)
}

// finalize optionally runs the differential-oracle check stage, then
// stamps the timing projections. With Options.Verify set, any oracle
// violation fails the whole pipeline with a StageError for the check
// stage (the reports stay attached to the error's FuncResult-less
// context; use `pathflow check` or CheckFuncResult for a non-fatal
// inspection).
func (e *Engine) finalize(ctx context.Context, fn *cfg.Func, res *FuncResult, o Options, m *Metrics, start time.Time) (*FuncResult, error) {
	if o.Verify {
		reports, err := runStage(ctx, CheckStage, fn.Name, m, CheckIn{Res: res})
		if err != nil {
			return nil, err
		}
		res.Oracle = reports
		if verr := OracleErr(reports); verr != nil {
			return nil, &StageError{Stage: StageCheck, Func: fn.Name, Err: verr}
		}
	}
	return finish(res, start), nil
}

func finish(res *FuncResult, start time.Time) *FuncResult {
	res.Metrics.Wall = time.Since(start)
	res.Times = res.Metrics.Times()
	return res
}

// clientTier computes (or fetches) the requested client analyses for
// one graph tier. mkKey builds the tier's cache key (deferred so the
// cache-disabled path never touches fingerprint machinery); the client
// set lands in knob2, the key dimension reserved for it. Client bundles
// live in the memory cache tier only (no disk codec): they are cheap to
// recompute relative to their encoded size, and the disk tier's value
// is in the expensive qualification artifacts they derive from.
func (e *Engine) clientTier(ctx context.Context, fn *cfg.Func, mkKey func() cacheKey, in ClientIn, cs ClientSet, m *Metrics) (ClientOut, error) {
	if e.cache == nil || cs == 0 {
		return e.runClients(ctx, fn, in, cs, m)
	}
	key := mkKey()
	key.knob2 = uint64(cs)
	v, cost, src, dec, err := e.cache.do(key, nil, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		out, err := e.runClients(ctx, fn, in, cs, mm)
		return out, costs(mm), err
	})
	if err != nil {
		return ClientOut{}, err
	}
	m.merge(cost, src, dec)
	return v.(ClientOut), nil
}

// runClients executes the enabled client stages for one tier.
func (e *Engine) runClients(ctx context.Context, fn *cfg.Func, in ClientIn, cs ClientSet, m *Metrics) (ClientOut, error) {
	var out ClientOut
	if cs.Has(ClientLiveness) {
		lv, err := runStage(ctx, LivenessStage, fn.Name, m, in)
		if err != nil {
			return ClientOut{}, err
		}
		out.Live = lv
	}
	if cs.Has(ClientAvailExpr) {
		av, err := runStage(ctx, AvailExprStage, fn.Name, m, in)
		if err != nil {
			return ClientOut{}, err
		}
		out.Avail = av
	}
	return out, nil
}

// selectHot computes (or fetches) the hot-path set at coverage CA. A CR
// sweep re-selects an identical set at every point; caching it matters
// most for path-heavy functions (go's profile runs tens of thousands of
// paths through the selection sort).
func (e *Engine) selectHot(ctx context.Context, fn *cfg.Func, train *bl.Profile, ca float64, m *Metrics) ([]bl.Path, error) {
	in := SelectIn{Fn: fn, Train: train, CA: ca}
	if e.cache == nil {
		return runStage(ctx, SelectStage, fn.Name, m, in)
	}
	key := e.cache.keySelect(fn, train, ca)
	ops := e.diskOps(ctx, key, diskcache.KindSelect,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeSelect(meta, v.([]bl.Path))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, hot, err := diskcache.DecodeSelect(data, fn.G)
			if err != nil {
				return nil, nil, err
			}
			return hot, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		hot, err := runStage(ctx, SelectStage, fn.Name, mm, in)
		return hot, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.([]bl.Path), nil
}

// feasibleTier computes (or fetches) the infeasible-edge set of one
// graph tier. mkKey builds the tier's cache key (deferred so the
// cache-disabled path never touches fingerprint machinery).
func (e *Engine) feasibleTier(ctx context.Context, fn *cfg.Func, g *cfg.Graph, nv int, m *Metrics, mkKey func() cacheKey) (*feasible.Edges, error) {
	in := FeasibleIn{G: g, NumVars: nv}
	if e.cache == nil {
		return runStage(ctx, FeasibleStage, fn.Name, m, in)
	}
	key := mkKey()
	ops := e.diskOps(ctx, key, diskcache.KindFeasible,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeFeasible(meta, v.(*feasible.Edges).Infeasible)
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, mask, err := diskcache.DecodeFeasible(data, g)
			if err != nil {
				return nil, nil, err
			}
			return feasible.FromMask(mask), costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		ed, err := runStage(ctx, FeasibleStage, fn.Name, mm, in)
		return ed, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.(*feasible.Edges), nil
}

// baseline computes (or fetches) the CA = 0 Wegman-Zadek solution,
// masked by the CFG tier's feasibility artifact when one was computed.
func (e *Engine) baseline(ctx context.Context, fn *cfg.Func, kern dataflow.Kernel, feas *feasible.Edges, m *Metrics) (*constprop.Result, error) {
	in := AnalyzeIn{G: fn.G, NumVars: fn.NumVars(), Kernel: kern, Infeasible: feas.Mask()}
	if e.cache == nil {
		return runStage(ctx, BaselineStage, fn.Name, m, in)
	}
	key := e.cache.keyBaseline(fn)
	if in.Infeasible != nil {
		key.chain = e.cache.keyFeasibleCFG(fn).digest()
	}
	ops := e.diskOps(ctx, key, diskcache.KindBaseline,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeBaseline(meta, v.(*constprop.Result))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, sol, err := diskcache.DecodeBaseline(data, fn.G, fn.NumVars())
			if err != nil {
				return nil, nil, err
			}
			return sol, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		sol, err := runStage(ctx, BaselineStage, fn.Name, mm, in)
		return sol, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.(*constprop.Result), nil
}

// automatonStage computes (or fetches) the Aho-Corasick qualification
// automaton. Its key chains the hot-set fingerprint (output-addressed),
// so any route to the same hot set — a different CA, an explicit
// AnalyzeFuncHot set, a counts-only edit that re-selects identically —
// shares the bundle.
func (e *Engine) automatonStage(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, m *Metrics) (*automaton.Automaton, error) {
	in := AutomatonIn{Fn: fn, R: train.R, Hot: hot}
	if e.cache == nil {
		return runStage(ctx, AutomatonStage, fn.Name, m, in)
	}
	key := e.cache.keyAutomaton(fn, train, hot)
	ops := e.diskOps(ctx, key, diskcache.KindAutomaton,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeAutomatonBundle(meta, v.(*automaton.Automaton))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, a, err := diskcache.DecodeAutomatonBundle(data, train.R)
			if err != nil {
				return nil, nil, err
			}
			return a, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		a, err := runStage(ctx, AutomatonStage, fn.Name, mm, in)
		return a, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.(*automaton.Automaton), nil
}

// traceStage computes (or fetches) the Holley-Rosen traced HPG. Its
// slice includes block bodies (the HPG copies them into its nodes), so
// a body edit recomputes it; the decode attaches the stored graph
// structure to the live function and automaton via trace.Assemble.
func (e *Engine) traceStage(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, a *automaton.Automaton, m *Metrics) (*trace.HPG, error) {
	in := TraceIn{Fn: fn, Auto: a}
	if e.cache == nil {
		return runStage(ctx, TraceStage, fn.Name, m, in)
	}
	key := e.cache.keyTrace(fn, train, hot)
	ops := e.diskOps(ctx, key, diskcache.KindTrace,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeTrace(meta, v.(*trace.HPG))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, h, err := diskcache.DecodeTrace(data, fn, a)
			if err != nil {
				return nil, nil, err
			}
			return h, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		h, err := runStage(ctx, TraceStage, fn.Name, mm, in)
		return h, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.(*trace.HPG), nil
}

// analyzeStage computes (or fetches) the Wegman-Zadek solution on the
// HPG. Pure chain key: its only input is the trace stage's output.
func (e *Engine) analyzeStage(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, h *trace.HPG, kern dataflow.Kernel, feas *feasible.Edges, m *Metrics) (*constprop.Result, error) {
	in := AnalyzeIn{G: h.G, NumVars: fn.NumVars(), Kernel: kern, Infeasible: feas.Mask()}
	if e.cache == nil {
		return runStage(ctx, AnalyzeStage, fn.Name, m, in)
	}
	key := e.cache.keyAnalyzeMasked(fn, train, hot, in.Infeasible != nil)
	ops := e.diskOps(ctx, key, diskcache.KindAnalyze,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeAnalyze(meta, v.(*constprop.Result))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, sol, err := diskcache.DecodeAnalyze(data, h.G, fn.NumVars())
			if err != nil {
				return nil, nil, err
			}
			return sol, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		sol, err := runStage(ctx, AnalyzeStage, fn.Name, mm, in)
		return sol, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.(*constprop.Result), nil
}

// translateStage computes (or fetches) the training profile translated
// onto the HPG (Lemma 2). Its slice is shape + profile but *not* block
// bodies: an HPG's node/edge structure depends only on the CFG shape
// and the automaton, so a body-only edit replays the translation onto
// the freshly traced (body-updated) HPG — the stored bundle's edge IDs
// still line up.
func (e *Engine) translateStage(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, h *trace.HPG, m *Metrics) (*bl.Profile, error) {
	in := TranslateIn{Prof: train, Orig: fn.G, Overlay: h}
	if e.cache == nil {
		return runStage(ctx, TranslateStage, fn.Name, m, in)
	}
	key := e.cache.keyTranslate(fn, train, hot)
	ops := e.diskOps(ctx, key, diskcache.KindTranslate,
		func(v any, meta diskcache.Meta) []byte {
			return diskcache.EncodeTranslate(meta, v.(*bl.Profile))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, hp, err := diskcache.DecodeTranslate(data, h.G)
			if err != nil {
				return nil, nil, err
			}
			return hp, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		hp, err := runStage(ctx, TranslateStage, fn.Name, mm, in)
		return hp, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src, dec)
	return v.(*bl.Profile), nil
}

// reduced computes (or fetches) the reduced HPG and its solution. Pure
// chain key over the analyze and translate stages plus the CR knob.
func (e *Engine) reduced(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, h *trace.HPG, hsol *constprop.Result, hprof *bl.Profile, o Options, m *Metrics) (ReduceOut, error) {
	in := ReduceIn{HPG: h, Sol: hsol, Prof: hprof, CR: o.CR, NumVars: fn.NumVars(), Kernel: o.Kernel, Feasible: o.Feasible}
	if e.cache == nil {
		return runStage(ctx, ReduceStage, fn.Name, m, in)
	}
	key := e.cache.keyReduceFeasible(fn, train, hot, o.CR, o.Feasible)
	ops := e.diskOps(ctx, key, diskcache.KindReduced,
		func(v any, meta diskcache.Meta) []byte {
			r := v.(ReduceOut)
			return diskcache.EncodeReduced(meta, r.Red, r.RedSol)
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			meta, red, sol, err := diskcache.DecodeReduced(data, h)
			if err != nil {
				return nil, nil, err
			}
			return ReduceOut{Red: red, RedSol: sol}, costsFromDisk(meta.Costs), nil
		})
	v, cost, src, dec, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		r, err := runStage(ctx, ReduceStage, fn.Name, mm, in)
		return r, costs(mm), err
	})
	if err != nil {
		return ReduceOut{}, err
	}
	m.merge(cost, src, dec)
	return v.(ReduceOut), nil
}

func costs(m *Metrics) map[StageName]time.Duration {
	out := make(map[StageName]time.Duration, len(m.Stages))
	for s, sm := range m.Stages {
		out[s] = sm.Duration
	}
	return out
}

// diskOps assembles the persistent-tier plumbing for one cache key, or
// returns nil when no disk tier is attached. The disk key reuses the
// in-memory key's (slice, chain, knob) fingerprints so the two tiers
// always agree on identity, and every write is stamped with the
// context's delta class (WithDeltaClass) as provenance.
func (e *Engine) diskOps(ctx context.Context, key cacheKey, kind diskcache.Kind,
	encode func(v any, meta diskcache.Meta) []byte,
	decode func(data []byte) (any, map[StageName]time.Duration, error)) *diskOps {
	if e.cache == nil || e.cache.disk == nil {
		return nil
	}
	class := deltaClassFrom(ctx)
	return &diskOps{
		key: diskcache.Key{Kind: kind, Slice: key.slice, Chain: key.chain, Knob: key.knob},
		encode: func(v any, cost map[StageName]time.Duration) []byte {
			return encode(v, diskcache.Meta{Costs: costsToDisk(cost), Class: class})
		},
		decode: decode,
	}
}

// costsToDisk and costsFromDisk translate stage-cost maps across the
// engine/diskcache boundary (diskcache cannot import engine's StageName
// without a cycle, so bundles carry plain strings).
func costsToDisk(m map[StageName]time.Duration) diskcache.Costs {
	out := make(diskcache.Costs, len(m))
	for s, d := range m {
		out[string(s)] = d
	}
	return out
}

func costsFromDisk(c diskcache.Costs) map[StageName]time.Duration {
	out := make(map[StageName]time.Duration, len(c))
	for s, d := range c {
		out[StageName(s)] = d
	}
	return out
}

// AnalyzeProgram runs the pipeline on every function of prog using the
// given training profile, analyzing independent functions in parallel on
// the engine's worker pool. Results are deterministic and keyed by
// function name.
func (e *Engine) AnalyzeProgram(ctx context.Context, prog *cfg.Program, train *bl.ProgramProfile, o Options) (*ProgramResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	frs, err := Map(ctx, e.workers, prog.Order, func(ctx context.Context, name string) (*FuncResult, error) {
		var tp *bl.Profile
		if train != nil {
			tp = train.Funcs[name]
		}
		return e.analyzeFunc(ctx, prog.Funcs[name], tp, o)
	})
	if err != nil {
		return nil, err
	}
	out := &ProgramResult{Prog: prog, Opt: o, Funcs: make(map[string]*FuncResult, len(frs))}
	for i, name := range prog.Order {
		out.Funcs[name] = frs[i]
	}
	return out, nil
}

// SweepProgram analyzes prog at every parameter point. Points run in
// order so that, with the cache enabled, each point reuses every
// artifact the earlier points already materialized (a CR sweep reuses
// the HPG and its solution; every point reuses the baseline).
func (e *Engine) SweepProgram(ctx context.Context, prog *cfg.Program, train *bl.ProgramProfile, opts []Options) ([]*ProgramResult, error) {
	out := make([]*ProgramResult, len(opts))
	for i, o := range opts {
		r, err := e.AnalyzeProgram(ctx, prog, train, o)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// ProfileAndAnalyze profiles prog on the training input, then analyzes it.
func (e *Engine) ProfileAndAnalyze(ctx context.Context, prog *cfg.Program, trainOpts interp.Options, o Options) (*ProgramResult, *bl.ProgramProfile, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	train, _, err := bl.ProfileProgram(prog, trainOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: training run failed: %w", err)
	}
	res, err := e.AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		return nil, nil, err
	}
	return res, train, nil
}
