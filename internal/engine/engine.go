// Package engine is the staged pipeline engine behind pathflow's
// qualification pipeline (Ammons & Larus, PLDI 1998):
//
//	select → automaton → trace → analyze → translate → reduce
//
// plus the CA = 0 baseline analysis. Each step is an explicit Stage with
// typed input/output artifacts; the engine owns sequencing, context
// cancellation, structured per-stage errors (StageError), per-stage
// metrics (Metrics, generalizing the old ad-hoc Times struct), bounded
// parallel scheduling across independent functions (Map), and a
// cross-run artifact cache (Cache) keyed by what each artifact actually
// depends on:
//
//	baseline   (fn)                    shared by every CA/CR point
//	select     (fn, profile, CA)       shared by every CR point
//	qualified  (fn, profile, hot set)  shared by every CR point
//	reduced    (fn, profile, hot set, CR)
//
// so parameter sweeps — the harness's Figures 9/11/12 and the CR
// ablation — recompute only the stages the swept knob can influence.
//
// The legacy one-call API lives on as thin wrappers in internal/core.
package engine

import (
	"context"
	"fmt"
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/availexpr"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/engine/diskcache"
	"pathflow/internal/interp"
	"pathflow/internal/trace"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds concurrent function analyses; <= 0 means
	// runtime.NumCPU(). Results are deterministic for any worker count.
	Workers int
	// Cache enables the cross-run artifact cache. Sharing is safe
	// because every cached artifact is immutable after construction.
	Cache bool
	// MemoryMaxBytes bounds the in-memory cache tier's estimated
	// footprint; least-recently-used bundles are dropped over the
	// budget. <= 0 means unbounded (the right default for one-shot
	// `exp` runs; long-lived servers should set a ceiling).
	MemoryMaxBytes int64
	// CacheDir, when non-empty, attaches the persistent disk tier
	// (implies Cache): artifacts are written through to CacheDir and
	// warm starts decode them instead of recomputing. Requires Open —
	// New ignores the disk-tier fields because it cannot report an
	// open failure.
	CacheDir string
	// CacheMaxBytes bounds the disk tier; least-recently-used bundle
	// files are deleted over the budget. <= 0 means unbounded.
	CacheMaxBytes int64
}

// Engine runs the staged pipeline.
type Engine struct {
	workers int
	cache   *Cache
}

// New returns an engine with the given configuration. The disk-tier
// fields (CacheDir, CacheMaxBytes) are ignored — opening a directory can
// fail, so the persistent tier is only available through Open.
func New(cfg Config) *Engine {
	e := &Engine{workers: cfg.Workers}
	if cfg.Cache {
		e.cache = newCache(cfg.MemoryMaxBytes, nil)
	}
	return e
}

// Open returns an engine with the full configuration, including the
// persistent cache tier when CacheDir is set. A non-empty CacheDir
// implies Cache: the disk tier requires the in-memory tier in front of
// it (disk hits are decoded once and promoted under single-flight).
func Open(cfg Config) (*Engine, error) {
	e := &Engine{workers: cfg.Workers}
	var disk *diskcache.Store
	if cfg.CacheDir != "" {
		var err error
		disk, err = diskcache.Open(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Cache || disk != nil {
		e.cache = newCache(cfg.MemoryMaxBytes, disk)
	}
	return e, nil
}

// Serial returns the engine configuration equivalent to the pre-engine
// pipeline: one worker, no artifact cache.
func Serial() *Engine { return New(Config{Workers: 1}) }

// Workers returns the configured worker bound (0 = NumCPU).
func (e *Engine) Workers() int { return e.workers }

// CacheStats reports artifact-cache counters (zero value when the cache
// is disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// AnalyzeFunc runs the pipeline on one function. train may be nil for a
// function the training run never executed; qualification is skipped.
func (e *Engine) AnalyzeFunc(ctx context.Context, fn *cfg.Func, train *bl.Profile, o Options) (*FuncResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return e.analyzeFunc(ctx, fn, train, o)
}

func (e *Engine) analyzeFunc(ctx context.Context, fn *cfg.Func, train *bl.Profile, o Options) (*FuncResult, error) {
	m := newMetrics(ctx, fn.Name)
	var hot []bl.Path
	if train != nil && o.CA > 0 {
		var err error
		hot, err = e.selectHot(ctx, fn, train, o.CA, m)
		if err != nil {
			return nil, err
		}
	}
	return e.analyzeFuncHot(ctx, fn, train, hot, o, m)
}

// AnalyzeFuncHot runs the pipeline with an explicitly chosen hot-path
// set, bypassing the coverage-based selection — used by ablations that
// compare selection strategies (e.g. edge-profile estimation against true
// path profiles).
func (e *Engine) AnalyzeFuncHot(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, o Options) (*FuncResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return e.analyzeFuncHot(ctx, fn, train, hot, o, newMetrics(ctx, fn.Name))
}

func (e *Engine) analyzeFuncHot(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, o Options, m *Metrics) (*FuncResult, error) {
	res := &FuncResult{Fn: fn, Opt: o, Train: train, Metrics: m}
	start := time.Now()
	nv := fn.NumVars()

	sol, err := e.baseline(ctx, fn, m)
	if err != nil {
		return nil, err
	}
	res.OrigSol = sol

	// CFG-tier client analyses run whether or not qualification will:
	// they are the baseline the HPG/rHPG tiers are compared against, and
	// the only tier at CA = 0.
	if o.Clients != 0 {
		in := ClientIn{G: fn.G, NumVars: nv, Guide: sol.Sol}
		if o.Clients.Has(ClientAvailExpr) {
			in.U = availexpr.NewUniverse(fn.G, nv)
			res.AvailU = in.U
		}
		co, err := e.clientTier(ctx, fn, nil, nil, kindClientsCFG, 0, in, o.Clients, m)
		if err != nil {
			return nil, err
		}
		res.LiveCFG, res.AvailCFG = co.Live, co.Avail
		if co.Avail != nil {
			res.AvailU = co.Avail.U
		}
	}

	res.Hot = hot
	if len(hot) == 0 || train == nil {
		res.Hot = nil
		return e.finalize(ctx, fn, res, o, m, start)
	}

	q, err := e.qualified(ctx, fn, train, hot, m)
	if err != nil {
		return nil, err
	}
	res.Auto, res.HPG, res.HPGSol, res.HPGProf = q.Auto, q.HPG, q.HPGSol, q.HPGProf

	r, err := e.reduced(ctx, fn, train, hot, q, o.CR, m)
	if err != nil {
		return nil, err
	}
	res.Red, res.RedSol = r.Red, r.RedSol

	if o.Clients != 0 {
		in := ClientIn{G: q.HPG.G, NumVars: nv, Guide: q.HPGSol.Sol, U: res.AvailU}
		co, err := e.clientTier(ctx, fn, train, hot, kindClientsHPG, 0, in, o.Clients, m)
		if err != nil {
			return nil, err
		}
		res.LiveHPG, res.AvailHPG = co.Live, co.Avail

		in = ClientIn{G: r.Red.G, NumVars: nv, Guide: r.RedSol.Sol, U: res.AvailU}
		co, err = e.clientTier(ctx, fn, train, hot, kindClientsRed, knobBits(o.CR), in, o.Clients, m)
		if err != nil {
			return nil, err
		}
		res.LiveRed, res.AvailRed = co.Live, co.Avail
	}
	return e.finalize(ctx, fn, res, o, m, start)
}

// finalize optionally runs the differential-oracle check stage, then
// stamps the timing projections. With Options.Verify set, any oracle
// violation fails the whole pipeline with a StageError for the check
// stage (the reports stay attached to the error's FuncResult-less
// context; use `pathflow check` or CheckFuncResult for a non-fatal
// inspection).
func (e *Engine) finalize(ctx context.Context, fn *cfg.Func, res *FuncResult, o Options, m *Metrics, start time.Time) (*FuncResult, error) {
	if o.Verify {
		reports, err := runStage(ctx, CheckStage, fn.Name, m, CheckIn{Res: res})
		if err != nil {
			return nil, err
		}
		res.Oracle = reports
		if verr := OracleErr(reports); verr != nil {
			return nil, &StageError{Stage: StageCheck, Func: fn.Name, Err: verr}
		}
	}
	return finish(res, start), nil
}

func finish(res *FuncResult, start time.Time) *FuncResult {
	res.Metrics.Wall = time.Since(start)
	res.Times = res.Metrics.Times()
	return res
}

// clientTier computes (or fetches) the requested client analyses for
// one graph tier. Client bundles live in the memory cache tier only
// (no disk codec): they are cheap to recompute relative to their
// encoded size, and the disk tier's value is in the expensive
// qualification artifacts they derive from.
func (e *Engine) clientTier(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, kind string, knob uint64, in ClientIn, cs ClientSet, m *Metrics) (ClientOut, error) {
	if e.cache == nil || cs == 0 {
		return e.runClients(ctx, fn, in, cs, m)
	}
	key := cacheKey{kind: kind, fn: e.cache.funcFP(fn), knob: knob, knob2: uint64(cs)}
	if train != nil {
		key.prof = e.cache.profileFP(train)
	}
	if hot != nil {
		key.hot = FingerprintHot(hot)
	}
	v, cost, src, err := e.cache.do(key, nil, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		out, err := e.runClients(ctx, fn, in, cs, mm)
		return out, costs(mm), err
	})
	if err != nil {
		return ClientOut{}, err
	}
	m.merge(cost, src)
	return v.(ClientOut), nil
}

// runClients executes the enabled client stages for one tier.
func (e *Engine) runClients(ctx context.Context, fn *cfg.Func, in ClientIn, cs ClientSet, m *Metrics) (ClientOut, error) {
	var out ClientOut
	if cs.Has(ClientLiveness) {
		lv, err := runStage(ctx, LivenessStage, fn.Name, m, in)
		if err != nil {
			return ClientOut{}, err
		}
		out.Live = lv
	}
	if cs.Has(ClientAvailExpr) {
		av, err := runStage(ctx, AvailExprStage, fn.Name, m, in)
		if err != nil {
			return ClientOut{}, err
		}
		out.Avail = av
	}
	return out, nil
}

// selectHot computes (or fetches) the hot-path set at coverage CA. A CR
// sweep re-selects an identical set at every point; caching it matters
// most for path-heavy functions (go's profile runs tens of thousands of
// paths through the selection sort).
func (e *Engine) selectHot(ctx context.Context, fn *cfg.Func, train *bl.Profile, ca float64, m *Metrics) ([]bl.Path, error) {
	in := SelectIn{Fn: fn, Train: train, CA: ca}
	if e.cache == nil {
		return runStage(ctx, SelectStage, fn.Name, m, in)
	}
	key := cacheKey{
		kind: kindSelect,
		fn:   e.cache.funcFP(fn),
		prof: e.cache.profileFP(train),
		knob: knobBits(ca),
	}
	ops := e.diskOps(key, diskcache.KindSelect,
		func(v any, cost map[StageName]time.Duration) []byte {
			return diskcache.EncodeSelect(costsToDisk(cost), v.([]bl.Path))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			dc, hot, err := diskcache.DecodeSelect(data, fn.G)
			if err != nil {
				return nil, nil, err
			}
			return hot, costsFromDisk(dc), nil
		})
	v, cost, src, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		hot, err := runStage(ctx, SelectStage, fn.Name, mm, in)
		return hot, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src)
	return v.([]bl.Path), nil
}

// baseline computes (or fetches) the CA = 0 Wegman-Zadek solution.
func (e *Engine) baseline(ctx context.Context, fn *cfg.Func, m *Metrics) (*constprop.Result, error) {
	in := AnalyzeIn{G: fn.G, NumVars: fn.NumVars()}
	if e.cache == nil {
		return runStage(ctx, BaselineStage, fn.Name, m, in)
	}
	key := cacheKey{kind: kindBaseline, fn: e.cache.funcFP(fn)}
	ops := e.diskOps(key, diskcache.KindBaseline,
		func(v any, cost map[StageName]time.Duration) []byte {
			return diskcache.EncodeBaseline(costsToDisk(cost), v.(*constprop.Result))
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			dc, sol, err := diskcache.DecodeBaseline(data, fn.G, fn.NumVars())
			if err != nil {
				return nil, nil, err
			}
			return sol, costsFromDisk(dc), nil
		})
	v, cost, src, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		sol, err := runStage(ctx, BaselineStage, fn.Name, mm, in)
		return sol, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src)
	return v.(*constprop.Result), nil
}

// qualified computes (or fetches) the automaton, the HPG, its solution
// and the translated training profile — everything that depends on the
// hot set but not on CR.
func (e *Engine) qualified(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, m *Metrics) (*qualifiedBundle, error) {
	if e.cache == nil {
		return e.runQualified(ctx, fn, train, hot, m)
	}
	key := cacheKey{
		kind: kindQualified,
		fn:   e.cache.funcFP(fn),
		prof: e.cache.profileFP(train),
		hot:  FingerprintHot(hot),
	}
	ops := e.diskOps(key, diskcache.KindQualified,
		func(v any, cost map[StageName]time.Duration) []byte {
			q := v.(*qualifiedBundle)
			return diskcache.EncodeQualified(costsToDisk(cost), q.HPG, q.HPGSol, q.HPGProf)
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			dc, h, sol, hp, err := diskcache.DecodeQualified(data, fn, train.R)
			if err != nil {
				return nil, nil, err
			}
			return &qualifiedBundle{Auto: h.Auto, HPG: h, HPGSol: sol, HPGProf: hp}, costsFromDisk(dc), nil
		})
	v, cost, src, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		q, err := e.runQualified(ctx, fn, train, hot, mm)
		return q, costs(mm), err
	})
	if err != nil {
		return nil, err
	}
	m.merge(cost, src)
	return v.(*qualifiedBundle), nil
}

// qualifiedBundle is the cached bundle of every CR-independent
// qualified-pipeline artifact.
type qualifiedBundle struct {
	Auto    *automaton.Automaton
	HPG     *trace.HPG
	HPGSol  *constprop.Result
	HPGProf *bl.Profile
}

func (e *Engine) runQualified(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, m *Metrics) (*qualifiedBundle, error) {
	a, err := runStage(ctx, AutomatonStage, fn.Name, m, AutomatonIn{Fn: fn, R: train.R, Hot: hot})
	if err != nil {
		return nil, err
	}
	h, err := runStage(ctx, TraceStage, fn.Name, m, TraceIn{Fn: fn, Auto: a})
	if err != nil {
		return nil, err
	}
	sol, err := runStage(ctx, AnalyzeStage, fn.Name, m, AnalyzeIn{G: h.G, NumVars: fn.NumVars()})
	if err != nil {
		return nil, err
	}
	hp, err := runStage(ctx, TranslateStage, fn.Name, m, TranslateIn{Prof: train, Orig: fn.G, Overlay: h})
	if err != nil {
		return nil, err
	}
	return &qualifiedBundle{Auto: a, HPG: h, HPGSol: sol, HPGProf: hp}, nil
}

// reduced computes (or fetches) the reduced HPG and its solution.
func (e *Engine) reduced(ctx context.Context, fn *cfg.Func, train *bl.Profile, hot []bl.Path, q *qualifiedBundle, cr float64, m *Metrics) (ReduceOut, error) {
	in := ReduceIn{HPG: q.HPG, Sol: q.HPGSol, Prof: q.HPGProf, CR: cr, NumVars: fn.NumVars()}
	if e.cache == nil {
		return runStage(ctx, ReduceStage, fn.Name, m, in)
	}
	key := cacheKey{
		kind: kindReduced,
		fn:   e.cache.funcFP(fn),
		prof: e.cache.profileFP(train),
		hot:  FingerprintHot(hot),
		knob: knobBits(cr),
	}
	ops := e.diskOps(key, diskcache.KindReduced,
		func(v any, cost map[StageName]time.Duration) []byte {
			r := v.(ReduceOut)
			return diskcache.EncodeReduced(costsToDisk(cost), r.Red, r.RedSol)
		},
		func(data []byte) (any, map[StageName]time.Duration, error) {
			dc, red, sol, err := diskcache.DecodeReduced(data, q.HPG)
			if err != nil {
				return nil, nil, err
			}
			return ReduceOut{Red: red, RedSol: sol}, costsFromDisk(dc), nil
		})
	v, cost, src, err := e.cache.do(key, ops, func() (any, map[StageName]time.Duration, error) {
		mm := NewMetrics()
		r, err := runStage(ctx, ReduceStage, fn.Name, mm, in)
		return r, costs(mm), err
	})
	if err != nil {
		return ReduceOut{}, err
	}
	m.merge(cost, src)
	return v.(ReduceOut), nil
}

func costs(m *Metrics) map[StageName]time.Duration {
	out := make(map[StageName]time.Duration, len(m.Stages))
	for s, sm := range m.Stages {
		out[s] = sm.Duration
	}
	return out
}

// diskOps assembles the persistent-tier plumbing for one cache key, or
// returns nil when no disk tier is attached. The disk key reuses the
// in-memory key's fingerprints so the two tiers always agree on
// identity.
func (e *Engine) diskOps(key cacheKey, kind diskcache.Kind,
	encode func(v any, cost map[StageName]time.Duration) []byte,
	decode func(data []byte) (any, map[StageName]time.Duration, error)) *diskOps {
	if e.cache == nil || e.cache.disk == nil {
		return nil
	}
	return &diskOps{
		key:    diskcache.Key{Kind: kind, Fn: key.fn, Prof: key.prof, Hot: key.hot, Knob: key.knob},
		encode: encode,
		decode: decode,
	}
}

// costsToDisk and costsFromDisk translate stage-cost maps across the
// engine/diskcache boundary (diskcache cannot import engine's StageName
// without a cycle, so bundles carry plain strings).
func costsToDisk(m map[StageName]time.Duration) diskcache.Costs {
	out := make(diskcache.Costs, len(m))
	for s, d := range m {
		out[string(s)] = d
	}
	return out
}

func costsFromDisk(c diskcache.Costs) map[StageName]time.Duration {
	out := make(map[StageName]time.Duration, len(c))
	for s, d := range c {
		out[StageName(s)] = d
	}
	return out
}

// AnalyzeProgram runs the pipeline on every function of prog using the
// given training profile, analyzing independent functions in parallel on
// the engine's worker pool. Results are deterministic and keyed by
// function name.
func (e *Engine) AnalyzeProgram(ctx context.Context, prog *cfg.Program, train *bl.ProgramProfile, o Options) (*ProgramResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	frs, err := Map(ctx, e.workers, prog.Order, func(ctx context.Context, name string) (*FuncResult, error) {
		var tp *bl.Profile
		if train != nil {
			tp = train.Funcs[name]
		}
		return e.analyzeFunc(ctx, prog.Funcs[name], tp, o)
	})
	if err != nil {
		return nil, err
	}
	out := &ProgramResult{Prog: prog, Opt: o, Funcs: make(map[string]*FuncResult, len(frs))}
	for i, name := range prog.Order {
		out.Funcs[name] = frs[i]
	}
	return out, nil
}

// SweepProgram analyzes prog at every parameter point. Points run in
// order so that, with the cache enabled, each point reuses every
// artifact the earlier points already materialized (a CR sweep reuses
// the HPG and its solution; every point reuses the baseline).
func (e *Engine) SweepProgram(ctx context.Context, prog *cfg.Program, train *bl.ProgramProfile, opts []Options) ([]*ProgramResult, error) {
	out := make([]*ProgramResult, len(opts))
	for i, o := range opts {
		r, err := e.AnalyzeProgram(ctx, prog, train, o)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// ProfileAndAnalyze profiles prog on the training input, then analyzes it.
func (e *Engine) ProfileAndAnalyze(ctx context.Context, prog *cfg.Program, trainOpts interp.Options, o Options) (*ProgramResult, *bl.ProgramProfile, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	train, _, err := bl.ProfileProgram(prog, trainOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: training run failed: %w", err)
	}
	res, err := e.AnalyzeProgram(ctx, prog, train, o)
	if err != nil {
		return nil, nil, err
	}
	return res, train, nil
}
