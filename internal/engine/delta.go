package engine

import (
	"context"
	"fmt"
	"strings"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// DeltaClass names the kind of edit DiffFunc found between two versions
// of a function, from the cheapest (nothing changed) to the most
// invalidating (the CFG shape moved). The class is provenance only — it
// is stamped into disk bundles' Meta envelopes and printed by
// `analyze -baseline` — and never participates in any cache key.
type DeltaClass string

// The delta classes. Classification picks the *dominant* change — a
// shape edit usually perturbs counts and body too — so the classes are
// ordered: Shape ⊃ Counts ⊃ Body, with Profile covering pure
// profile-input changes and Cold meaning there was no prior version to
// diff against.
const (
	// DeltaNone: both versions fingerprint identically on every slice.
	DeltaNone DeltaClass = "none"
	// DeltaBody: block bodies changed but per-block instruction counts
	// and the CFG shape did not (e.g. a constant tweak inside a block).
	// The cheapest interesting class: select, automaton and translate
	// keys all survive it.
	DeltaBody DeltaClass = "body"
	// DeltaCounts: an instruction was inserted or deleted (per-block
	// counts moved) but the CFG shape is intact. Selection re-runs; if
	// it re-selects the same hot set the qualification suffix still
	// replays (the automaton is keyed by the hot set, not the counts).
	DeltaCounts DeltaClass = "counts"
	// DeltaShape: the CFG itself changed — nodes, edges, terminator
	// kinds or names. Everything recomputes.
	DeltaShape DeltaClass = "shape"
	// DeltaProfile: the function is untouched but its training profile
	// changed (new counts, new recording edges, a different training
	// input).
	DeltaProfile DeltaClass = "profile"
	// DeltaCold: no baseline version existed; nothing to diff.
	DeltaCold DeltaClass = "cold"
)

// Delta is the classified difference between two versions of one
// function (plus their training profiles) and the per-stage dirtiness it
// implies. The dirty-set prediction mirrors the per-stage cache-key
// table in cache.go exactly:
//
//	stage      dirty iff
//	baseline   shape ∨ body
//	select     shape ∨ counts ∨ prof
//	automaton  shape ∨ rec ∨ dirty(select)
//	trace      shape ∨ body ∨ dirty(automaton)
//	analyze    dirty(trace)
//	translate  shape ∨ prof ∨ dirty(automaton)
//	reduce     dirty(analyze) ∨ dirty(translate)
//
// Soundness: each stage's cache key hashes exactly the slices in its
// row plus its ancestors' keys, so "every slice bit clean and every
// ancestor clean" implies the key is bit-identical — and the pipeline
// is a pure function of the key's inputs, so the cached artifact equals
// what a recompute would produce. The prediction is conservative in one
// place: a dirty select marks the automaton dirty even though selection
// may re-pick the identical hot set, in which case the engine's
// output-addressed automaton key still hits at run time (the prediction
// under-promises, never over-promises). The prediction assumes the
// analysis knobs (CA, CR) are held fixed across the two versions.
type Delta struct {
	// Func is the function name (taken from the new version).
	Func string
	// Class is the dominant edit class.
	Class DeltaClass
	// The per-slice change bits the class was derived from.
	Shape, Counts, Body, Prof, Rec bool

	dirty map[StageName]bool
}

// DiffFunc classifies the edit between two versions of a function and
// their training profiles. oldFn may be nil (no prior version): the
// delta is DeltaCold with every stage dirty. Either profile may be nil
// (the training run never reached the function).
func DiffFunc(oldFn, newFn *cfg.Func, oldTrain, newTrain *bl.Profile) *Delta {
	d := &Delta{Func: newFn.Name}
	if oldFn == nil {
		d.Class = DeltaCold
		d.Shape, d.Counts, d.Body, d.Prof, d.Rec = true, true, true, true, true
		d.compute()
		return d
	}
	d.Shape = FingerprintShape(oldFn) != FingerprintShape(newFn)
	d.Counts = FingerprintCounts(oldFn) != FingerprintCounts(newFn)
	d.Body = FingerprintBody(oldFn) != FingerprintBody(newFn)
	d.Prof = profFingerprint(oldTrain) != profFingerprint(newTrain)
	d.Rec = recFingerprint(oldTrain) != recFingerprint(newTrain)
	switch {
	case d.Shape:
		d.Class = DeltaShape
	case d.Counts:
		d.Class = DeltaCounts
	case d.Body:
		d.Class = DeltaBody
	case d.Prof || d.Rec:
		d.Class = DeltaProfile
	default:
		d.Class = DeltaNone
	}
	d.compute()
	return d
}

func profFingerprint(pr *bl.Profile) uint64 {
	if pr == nil {
		return 0
	}
	return FingerprintProfile(pr)
}

func recFingerprint(pr *bl.Profile) uint64 {
	if pr == nil {
		return 0
	}
	return FingerprintRecording(pr.R)
}

// compute fills the dirty map from the change bits; see the table on
// Delta.
func (d *Delta) compute() {
	dirty := map[StageName]bool{}
	dirty[StageBaseline] = d.Shape || d.Body
	dirty[StageSelect] = d.Shape || d.Counts || d.Prof
	dirty[StageAutomaton] = d.Shape || d.Rec || dirty[StageSelect]
	dirty[StageTrace] = d.Shape || d.Body || dirty[StageAutomaton]
	dirty[StageAnalyze] = dirty[StageTrace]
	dirty[StageTranslate] = d.Shape || d.Prof || dirty[StageAutomaton]
	dirty[StageReduce] = dirty[StageAnalyze] || dirty[StageTranslate]
	d.dirty = dirty
}

// Dirty reports whether the edit (or an upstream consequence of it)
// re-keys stage s, forcing a recompute. Stages outside the cached
// pipeline (clients, check) report false.
func (d *Delta) Dirty(s StageName) bool { return d.dirty[s] }

// DirtyStages returns the pipeline stages the edit re-keys, in
// execution order.
func (d *Delta) DirtyStages() []StageName { return d.filter(true) }

// ReplayStages returns the pipeline stages whose cache keys survive the
// edit — a warm cache serves them without recomputing — in execution
// order.
func (d *Delta) ReplayStages() []StageName { return d.filter(false) }

func (d *Delta) filter(dirty bool) []StageName {
	var out []StageName
	for _, s := range StageOrder {
		if v, ok := d.dirty[s]; ok && v == dirty {
			out = append(out, s)
		}
	}
	return out
}

// String renders the delta compactly, e.g.
// "f: body (replay select,automaton,translate; recompute baseline,trace,analyze,reduce)".
func (d *Delta) String() string {
	names := func(ss []StageName) string {
		strs := make([]string, len(ss))
		for i, s := range ss {
			strs[i] = string(s)
		}
		return strings.Join(strs, ",")
	}
	replay := d.ReplayStages()
	if len(replay) == 0 {
		return fmt.Sprintf("%s: %s (recompute all)", d.Func, d.Class)
	}
	return fmt.Sprintf("%s: %s (replay %s; recompute %s)",
		d.Func, d.Class, names(replay), names(d.DirtyStages()))
}

// DiffPrograms diffs every function of the new program against its
// namesake in the old one (missing namesakes classify as DeltaCold),
// returning deltas keyed by function name in the new program's order.
func DiffPrograms(oldProg, newProg *cfg.Program, oldTrain, newTrain *bl.ProgramProfile) []*Delta {
	tp := func(pp *bl.ProgramProfile, name string) *bl.Profile {
		if pp == nil {
			return nil
		}
		return pp.Funcs[name]
	}
	out := make([]*Delta, 0, len(newProg.Order))
	for _, name := range newProg.Order {
		var oldFn *cfg.Func
		if oldProg != nil {
			oldFn = oldProg.Funcs[name]
		}
		out = append(out, DiffFunc(oldFn, newProg.Funcs[name], tp(oldTrain, name), tp(newTrain, name)))
	}
	return out
}

// --- Delta-class provenance plumbing --------------------------------------

// deltaClassKey carries the active delta class through a context.
type deltaClassKey struct{}

// WithDeltaClass returns a context under which every disk bundle the
// engine writes is stamped with the given delta class in its Meta
// envelope — provenance for cache forensics ("which edit produced this
// bundle?"), never part of any key. Engine calls made without it stamp
// DeltaCold.
func WithDeltaClass(ctx context.Context, class DeltaClass) context.Context {
	return context.WithValue(ctx, deltaClassKey{}, class)
}

// deltaClassFrom extracts the stamped class, defaulting to DeltaCold.
func deltaClassFrom(ctx context.Context) string {
	if c, ok := ctx.Value(deltaClassKey{}).(DeltaClass); ok {
		return string(c)
	}
	return string(DeltaCold)
}
