package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Map runs f over items with at most workers concurrent invocations and
// returns the results in input order — parallel execution, deterministic
// output. workers <= 0 means runtime.NumCPU().
//
// On failure Map cancels the context passed to in-flight invocations,
// waits for all workers to drain, and returns the error of the
// lowest-indexed item that failed for a reason of its own (an item that
// failed only because a later-indexed failure cancelled it does not mask
// the real error). Results are deterministic whenever f is.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(context.Context, T) (R, error)) ([]R, error) {
	n := len(items)
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i, it := range items {
			r, err := f(ctx, it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// No pre-emptive ctx check here: f is handed the context and
				// is responsible for honoring it (engine stages check it on
				// entry), which lets the failure carry stage provenance
				// instead of a bare context error.
				r, err := f(cctx, items[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = r
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		// A cancellation that Map itself induced (parent still alive) is
		// collateral damage from some other item's failure; keep looking
		// for the originating error.
		if ctx.Err() != nil || !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if fallback != nil {
		return nil, fallback
	}
	return out, nil
}
