package engine

import (
	"fmt"
	"math"
	"strings"

	"pathflow/internal/dataflow"
)

// ClientSet selects which additional data-flow clients the pipeline
// runs beyond constant propagation (which always runs — it is the
// pipeline's backbone). It is a bit set: combine with |.
type ClientSet uint8

const (
	// ClientLiveness runs backward live-variable analysis (guided by
	// the tier's constant-propagation solution) on each analyzed graph.
	ClientLiveness ClientSet = 1 << iota
	// ClientAvailExpr runs forward available-expressions analysis on
	// each analyzed graph.
	ClientAvailExpr
)

// ClientsAll enables every optional client.
const ClientsAll = ClientLiveness | ClientAvailExpr

// Has reports whether every client in c is enabled.
func (cs ClientSet) Has(c ClientSet) bool { return cs&c == c }

// String renders the set as a comma-separated list ("none" when empty).
func (cs ClientSet) String() string {
	var parts []string
	if cs.Has(ClientLiveness) {
		parts = append(parts, "liveness")
	}
	if cs.Has(ClientAvailExpr) {
		parts = append(parts, "availexpr")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// UnknownClientError reports an unrecognized client name passed to
// ParseClients.
type UnknownClientError struct {
	Name string
}

func (e *UnknownClientError) Error() string {
	return fmt.Sprintf("engine: unknown analysis client %q", e.Name)
}

// Hint returns the remediation line the CLI and serving layer surface.
func (e *UnknownClientError) Hint() string {
	return "valid clients: none, liveness, availexpr, all (comma-separated)"
}

// ParseClients parses a comma-separated client list: "none" (or the
// empty string), "liveness", "availexpr", or "all".
func ParseClients(s string) (ClientSet, error) {
	var cs ClientSet
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "", "none":
		case "liveness":
			cs |= ClientLiveness
		case "availexpr":
			cs |= ClientAvailExpr
		case "all":
			cs |= ClientsAll
		default:
			return 0, &UnknownClientError{Name: strings.TrimSpace(part)}
		}
	}
	return cs, nil
}

// Options configures the pipeline.
type Options struct {
	// CA is the hot-path coverage: the minimal set of paths covering
	// this fraction of the training run's dynamic instructions is
	// isolated. CA = 0 disables qualification entirely (the paper's
	// Wegman-Zadek baseline).
	CA float64
	// CR is the reduction benefit cutoff: reduction preserves at least
	// this fraction of the dynamic non-local constants the qualified
	// analysis discovered.
	CR float64
	// Clients selects additional data-flow clients (liveness,
	// available expressions) to run on every analyzed graph tier (CFG,
	// HPG, reduced HPG). Zero runs none.
	Clients ClientSet
	// Verify enables the precision differential oracle as a final
	// pipeline stage: every derived-graph solution (constant
	// propagation, intervals, liveness, available expressions) is
	// statically checked to be pointwise at least as precise as the
	// CFG solution once projected through the vertex correspondence.
	// Any violation fails the pipeline with a StageError for the
	// "check" stage.
	Verify bool
	// Feasible enables feasible-path qualification, the second precision
	// axis: a branch-correlation static analysis (internal/feasible)
	// computes a sound infeasible-edge set per graph tier, and every
	// client analysis solves through the pruned view. Orthogonal to the
	// frequency axis (CA/CR): it refines the CFG tier even at CA = 0,
	// and on the HPG it prunes residual cold legs that duplication
	// exposed but frequency alone cannot remove.
	Feasible bool
	// Kernel selects the data-flow solver backend for every client
	// analysis the pipeline runs (constant propagation on all tiers,
	// liveness, available expressions). The zero value is
	// dataflow.KernelPacked — the allocation-free arena kernels;
	// dataflow.KernelBoxed is the reference implementation, kept as an
	// escape hatch and differential baseline; dataflow.KernelSparse
	// propagates along def-use chains on the same arenas, trading the
	// dense kernels' exact iteration-count mirror for fewer transfers.
	// All backends produce pointwise identical facts, so the choice
	// never enters cache keys.
	Kernel dataflow.Kernel
}

// DefaultOptions returns the configuration the paper recommends after its
// sweeps: CA = 0.97, CR = 0.95.
func DefaultOptions() Options { return Options{CA: 0.97, CR: 0.95} }

// InvalidOptionsError reports an Options field outside its domain. Both
// knobs are fractions: the paper sweeps CA and CR over [0, 1].
type InvalidOptionsError struct {
	Field string  // "CA" or "CR"
	Value float64 // the offending value
}

func (e *InvalidOptionsError) Error() string {
	if math.IsNaN(e.Value) {
		return fmt.Sprintf("engine: invalid options: %s is NaN (want a fraction in [0, 1])", e.Field)
	}
	return fmt.Sprintf("engine: invalid options: %s = %g (want a fraction in [0, 1])", e.Field, e.Value)
}

// Hint returns the remediation line shown to users when the error is
// surfaced — the CLI prints it after the error, and the serving layer
// embeds it in structured 400 bodies, so the wording lives in exactly
// one place.
func (e *InvalidOptionsError) Hint() string {
	f := strings.ToLower(e.Field)
	return fmt.Sprintf("pass -%s a fraction between 0 and 1 (e.g. -%s %.2f)", f, f, 0.95)
}

// Validate checks that both knobs are real fractions in [0, 1] and the
// kernel selector names a known backend. It returns a
// *InvalidOptionsError naming the first offending field.
func (o Options) Validate() error {
	if math.IsNaN(o.CA) || o.CA < 0 || o.CA > 1 {
		return &InvalidOptionsError{Field: "CA", Value: o.CA}
	}
	if math.IsNaN(o.CR) || o.CR < 0 || o.CR > 1 {
		return &InvalidOptionsError{Field: "CR", Value: o.CR}
	}
	if o.Kernel > dataflow.KernelSparse {
		return &UnknownKernelError{Name: fmt.Sprintf("%d", o.Kernel)}
	}
	return nil
}

// UnknownKernelError reports an unrecognized kernel backend name passed
// to ParseKernel (or an out-of-range Options.Kernel).
type UnknownKernelError struct {
	Name string
}

func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("engine: unknown dataflow kernel %q", e.Name)
}

// Hint returns the remediation line the CLI and serving layer surface —
// both quote it verbatim, so the list of valid kernels lives in exactly
// this one place.
func (e *UnknownKernelError) Hint() string {
	return "valid kernels: packed (default), boxed, sparse"
}

// ParseKernel parses a solver-backend name: "packed" (or the empty
// string) for the dense arena kernels, "boxed" for the reference path,
// "sparse" for def-use-chain propagation.
func ParseKernel(s string) (dataflow.Kernel, error) {
	switch strings.TrimSpace(s) {
	case "", "packed":
		return dataflow.KernelPacked, nil
	case "boxed":
		return dataflow.KernelBoxed, nil
	case "sparse":
		return dataflow.KernelSparse, nil
	default:
		return 0, &UnknownKernelError{Name: strings.TrimSpace(s)}
	}
}
