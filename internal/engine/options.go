package engine

import (
	"fmt"
	"math"
	"strings"
)

// Options configures the pipeline.
type Options struct {
	// CA is the hot-path coverage: the minimal set of paths covering
	// this fraction of the training run's dynamic instructions is
	// isolated. CA = 0 disables qualification entirely (the paper's
	// Wegman-Zadek baseline).
	CA float64
	// CR is the reduction benefit cutoff: reduction preserves at least
	// this fraction of the dynamic non-local constants the qualified
	// analysis discovered.
	CR float64
}

// DefaultOptions returns the configuration the paper recommends after its
// sweeps: CA = 0.97, CR = 0.95.
func DefaultOptions() Options { return Options{CA: 0.97, CR: 0.95} }

// InvalidOptionsError reports an Options field outside its domain. Both
// knobs are fractions: the paper sweeps CA and CR over [0, 1].
type InvalidOptionsError struct {
	Field string  // "CA" or "CR"
	Value float64 // the offending value
}

func (e *InvalidOptionsError) Error() string {
	if math.IsNaN(e.Value) {
		return fmt.Sprintf("engine: invalid options: %s is NaN (want a fraction in [0, 1])", e.Field)
	}
	return fmt.Sprintf("engine: invalid options: %s = %g (want a fraction in [0, 1])", e.Field, e.Value)
}

// Hint returns the remediation line shown to users when the error is
// surfaced — the CLI prints it after the error, and the serving layer
// embeds it in structured 400 bodies, so the wording lives in exactly
// one place.
func (e *InvalidOptionsError) Hint() string {
	f := strings.ToLower(e.Field)
	return fmt.Sprintf("pass -%s a fraction between 0 and 1 (e.g. -%s %.2f)", f, f, 0.95)
}

// Validate checks that both knobs are real fractions in [0, 1]. It
// returns a *InvalidOptionsError naming the first offending field.
func (o Options) Validate() error {
	if math.IsNaN(o.CA) || o.CA < 0 || o.CA > 1 {
		return &InvalidOptionsError{Field: "CA", Value: o.CA}
	}
	if math.IsNaN(o.CR) || o.CR < 0 || o.CR > 1 {
		return &InvalidOptionsError{Field: "CR", Value: o.CR}
	}
	return nil
}
