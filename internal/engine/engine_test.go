package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
)

var ctx = context.Background()

// --- Fixtures ------------------------------------------------------------

const multiSrc = `
func helper(k) {
	m = input() % 10;
	if (m < 9) { s = 4; } else { s = input() % 16; }
	return k * s + s / 2;
}
func cold(k) {
	return k * 31 % 17;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i);
		i = i + 1;
	}
	if (arg(5) == 99) { t = t + cold(t); }
	print(t);
}
`

func stream(seed uint64) []ir.Value {
	vals := make([]ir.Value, 2048)
	x := seed
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0x7fffffff)
	}
	return vals
}

// fixture compiles the multi-function program and collects its training
// profile once per invocation (profiles are deterministic).
func fixture(t testing.TB) (*cfg.Program, *bl.ProgramProfile) {
	t.Helper()
	prog, err := lang.Compile(multiSrc)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:  []ir.Value{200},
		Input: &interp.SliceInput{Values: stream(7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, train
}

// summarize renders every deterministic output of a program analysis:
// hot-path keys, final graph shapes, reached data-flow environments and
// translated-profile fingerprints. Two runs are equivalent iff their
// summaries are byte-identical.
func summarize(res *engine.ProgramResult) string {
	var sb strings.Builder
	for _, name := range res.Prog.Order {
		fr := res.Funcs[name]
		fmt.Fprintf(&sb, "func %s qualified=%v hot=%d\n", name, fr.Qualified(), len(fr.Hot))
		for _, p := range fr.Hot {
			sb.WriteString("  hot " + p.Key() + "\n")
		}
		g := fr.FinalGraph()
		fmt.Fprintf(&sb, "  final nodes=%d edges=%d\n", g.NumNodes(), len(g.Edges))
		sol := fr.FinalSol()
		for _, nd := range g.Nodes {
			if !sol.Reached(nd.ID) {
				continue
			}
			fmt.Fprintf(&sb, "  env %d %s\n", nd.ID, sol.EnvAt(nd.ID).String(fr.Fn.VarNames))
		}
		if fr.Qualified() {
			fmt.Fprintf(&sb, "  hpg nodes=%d prof=%x\n",
				fr.HPG.G.NumNodes(), engine.FingerprintProfile(fr.HPGProf))
		}
	}
	return sb.String()
}

var sweepOpts = []engine.Options{
	{CA: 0, CR: 0.95},
	{CA: 0.5, CR: 0.95},
	{CA: 0.97, CR: 0.95},
	{CA: 0.97, CR: 0},
	{CA: 0.97, CR: 1.0},
	{CA: 1.0, CR: 0.95},
}

// --- Satellite: Options validation ---------------------------------------

func TestOptionsValidate(t *testing.T) {
	for _, tc := range []struct {
		o     engine.Options
		field string
	}{
		{engine.Options{CA: -0.1, CR: 0.95}, "CA"},
		{engine.Options{CA: 1.1, CR: 0.95}, "CA"},
		{engine.Options{CA: 0.97, CR: -1}, "CR"},
		{engine.Options{CA: 0.97, CR: 2}, "CR"},
		{engine.Options{CA: math.NaN(), CR: 0.95}, "CA"},
		{engine.Options{CA: 0.97, CR: math.NaN()}, "CR"},
	} {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tc.o)
			continue
		}
		var inv *engine.InvalidOptionsError
		if !errors.As(err, &inv) {
			t.Errorf("Validate(%+v) error type %T, want *InvalidOptionsError", tc.o, err)
			continue
		}
		if inv.Field != tc.field {
			t.Errorf("Validate(%+v).Field = %q, want %q", tc.o, inv.Field, tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("error %q does not name the offending field", err)
		}
	}
	for _, o := range []engine.Options{{CA: 0, CR: 0}, {CA: 1, CR: 1}, engine.DefaultOptions()} {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
}

func TestInvalidOptionsSurfaceFromEveryEntryPoint(t *testing.T) {
	prog, train := fixture(t)
	eng := engine.New(engine.Config{})
	bad := engine.Options{CA: 7, CR: 0.95}
	var inv *engine.InvalidOptionsError

	if _, err := eng.AnalyzeProgram(ctx, prog, train, bad); !errors.As(err, &inv) {
		t.Errorf("AnalyzeProgram: %v, want InvalidOptionsError", err)
	}
	if _, err := eng.AnalyzeFunc(ctx, prog.Funcs["main"], train.Funcs["main"], bad); !errors.As(err, &inv) {
		t.Errorf("AnalyzeFunc: %v, want InvalidOptionsError", err)
	}
	if _, err := eng.AnalyzeFuncHot(ctx, prog.Funcs["main"], train.Funcs["main"], nil, bad); !errors.As(err, &inv) {
		t.Errorf("AnalyzeFuncHot: %v, want InvalidOptionsError", err)
	}
	if _, _, err := eng.ProfileAndAnalyze(ctx, prog, interp.Options{}, bad); !errors.As(err, &inv) {
		t.Errorf("ProfileAndAnalyze: %v, want InvalidOptionsError", err)
	}
}

// --- Satellite: differential tests ---------------------------------------

// TestParallelMatchesSerial is the scheduler's determinism contract:
// whatever the worker count, the analysis output is byte-identical.
func TestParallelMatchesSerial(t *testing.T) {
	prog, train := fixture(t)
	want := ""
	for _, workers := range []int{1, 2, 4, 8, 0} {
		eng := engine.New(engine.Config{Workers: workers})
		var got strings.Builder
		for _, o := range sweepOpts {
			res, err := eng.AnalyzeProgram(ctx, prog, train, o)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			got.WriteString(summarize(res))
		}
		if want == "" {
			want = got.String()
			continue
		}
		if got.String() != want {
			t.Errorf("workers=%d produced different output than workers=1", workers)
		}
	}
}

// TestCacheMatchesUncached: enabling the artifact cache must not change a
// single output, only skip recomputation.
func TestCacheMatchesUncached(t *testing.T) {
	prog, train := fixture(t)
	plain := engine.New(engine.Config{Workers: 1})
	cached := engine.New(engine.Config{Workers: 1, Cache: true})
	for _, o := range sweepOpts {
		a, err := plain.AnalyzeProgram(ctx, prog, train, o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cached.AnalyzeProgram(ctx, prog, train, o)
		if err != nil {
			t.Fatal(err)
		}
		if sa, sb := summarize(a), summarize(b); sa != sb {
			t.Errorf("CA=%v CR=%v: cached output differs\nuncached:\n%s\ncached:\n%s", o.CA, o.CR, sa, sb)
		}
	}
	st := cached.CacheStats()
	if st.Hits == 0 {
		t.Error("sweep over shared artifacts produced no cache hits")
	}
	if st.Entries == 0 || st.Misses == 0 {
		t.Errorf("implausible cache stats: %+v", st)
	}
	// A repeated point is a pure cache replay: no new entries.
	before := cached.CacheStats()
	if _, err := cached.AnalyzeProgram(ctx, prog, train, sweepOpts[2]); err != nil {
		t.Fatal(err)
	}
	after := cached.CacheStats()
	if after.Entries != before.Entries {
		t.Errorf("replayed point added entries: %d -> %d", before.Entries, after.Entries)
	}
	if after.Hits <= before.Hits {
		t.Error("replayed point recorded no cache hits")
	}
}

// TestCacheSharesBaselineAcrossPoints: the CA=0 solution is keyed by the
// function alone, so a sweep computes it exactly once per function.
func TestCacheSharesBaselineAcrossPoints(t *testing.T) {
	prog, train := fixture(t)
	eng := engine.New(engine.Config{Workers: 1, Cache: true})
	if _, err := eng.SweepProgram(ctx, prog, train, sweepOpts); err != nil {
		t.Fatal(err)
	}
	res, err := eng.AnalyzeProgram(ctx, prog, train, engine.Options{CA: 0.97, CR: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, fr := range res.Funcs {
		hits += fr.Metrics.CacheHits()
	}
	if hits == 0 {
		t.Error("post-sweep analysis recorded no per-function cache hits")
	}
	// Times must still be populated on hits so Figure 12 ratios work.
	fr := res.Funcs["main"]
	if fr.Times.Analysis <= 0 {
		t.Errorf("cache hit reported zero analyze cost: %+v", fr.Times)
	}
}

// TestEngineMatchesCoreCompat: the one-call wrappers in internal/core and
// the engine must agree (the engine *is* the implementation, but this
// pins the aliasing against accidental divergence).
func TestAnalyzeFuncMatchesPaperExample(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	serial, err := engine.Serial().AnalyzeFunc(ctx, f, pr, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.New(engine.Config{Workers: 4, Cache: true}).
		AnalyzeFunc(ctx, f, pr, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Qualified() || !par.Qualified() {
		t.Fatal("example must qualify")
	}
	if a, b := serial.Red.G.NumNodes(), par.Red.G.NumNodes(); a != b {
		t.Errorf("reduced sizes differ: %d vs %d", a, b)
	}
	if a, b := engine.FingerprintProfile(serial.HPGProf), engine.FingerprintProfile(par.HPGProf); a != b {
		t.Errorf("translated profiles differ: %x vs %x", a, b)
	}
}

// --- Satellite: cancellation ---------------------------------------------

func TestCancelledContextStopsAnalysis(t *testing.T) {
	prog, train := fixture(t)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Config{Workers: 4})
	_, err := eng.AnalyzeProgram(cctx, prog, train, engine.DefaultOptions())
	if err == nil {
		t.Fatal("analysis succeeded under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, Canceled) = false: %v", err)
	}
	var se *engine.StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StageError", err)
	}
	if se.Stage == "" || se.Func == "" {
		t.Errorf("StageError missing provenance: %+v", se)
	}
	if !strings.Contains(err.Error(), string(se.Stage)) {
		t.Errorf("message %q does not name the owning stage", err)
	}
}

// TestCancelMidSweep cancels while a sweep is in flight and checks both
// prompt termination and that the engine remains usable afterwards (a
// failed cache computation must be evicted, not poisoned).
func TestCancelMidSweep(t *testing.T) {
	prog, train := fixture(t)
	eng := engine.New(engine.Config{Workers: 2, Cache: true})

	cctx, cancel := context.WithCancel(context.Background())
	var analyzed atomic.Int32
	// Cancel as soon as the first point lands: the remaining points must
	// not run to completion.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			if _, err := eng.AnalyzeProgram(cctx, prog, train, sweepOpts[i%len(sweepOpts)]); err != nil {
				return
			}
			if analyzed.Add(1) == 2 {
				cancel()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}
	cancel()
	if n := analyzed.Load(); n >= 1000 {
		t.Fatalf("sweep ran all %d points despite cancellation", n)
	}

	// The engine (and its cache) must recover for the next caller.
	res, err := eng.AnalyzeProgram(ctx, prog, train, engine.DefaultOptions())
	if err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
	if !res.Funcs["main"].Qualified() {
		t.Error("post-cancel analysis lost qualification")
	}
}

// --- Scheduler -----------------------------------------------------------

func TestMapDeterministicOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 16, 0} {
		out, err := engine.Map(ctx, workers, items, func(_ context.Context, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReturnsFirstError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sentinel := errors.New("boom")
	_, err := engine.Map(ctx, 4, items, func(ctx context.Context, v int) (int, error) {
		if v == 3 {
			return 0, fmt.Errorf("item %d: %w", v, sentinel)
		}
		// Later items may be cancelled collaterally; surface that as the
		// scheduler would see it from a stage.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return v, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("Map error = %v, want the originating failure, not collateral cancellation", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := engine.Map(ctx, 8, nil, func(_ context.Context, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(nil) = %v, %v", out, err)
	}
}

// --- Fingerprints --------------------------------------------------------

func TestFingerprintsStableAndSensitive(t *testing.T) {
	f1, _, e1 := paperex.Build()
	f2, n2, e2 := paperex.Build()
	if engine.FingerprintFunc(f1) != engine.FingerprintFunc(f2) {
		t.Error("identical functions fingerprint differently")
	}
	if engine.FingerprintProfile(paperex.Profile(e1)) != engine.FingerprintProfile(paperex.Profile(e2)) {
		t.Error("identical profiles fingerprint differently")
	}
	// Perturb one instruction constant (block A holds a=2): the
	// fingerprint must move.
	f2.G.Nodes[n2.A].Instrs[0].K++
	if engine.FingerprintFunc(f1) == engine.FingerprintFunc(f2) {
		t.Error("fingerprint blind to an instruction constant")
	}
	p1, p2 := paperex.Profile(e1), paperex.Profile(e2)
	for k := range p2.Entries {
		e := p2.Entries[k]
		e.Count++
		p2.Entries[k] = e
		break
	}
	if engine.FingerprintProfile(p1) == engine.FingerprintProfile(p2) {
		t.Error("fingerprint blind to a path count")
	}
	hot := paperex.Paths(e1)
	if engine.FingerprintHot(hot[:2]) == engine.FingerprintHot(hot[:3]) {
		t.Error("hot-set fingerprint blind to set size")
	}
}
