package trace_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/profile"
	"pathflow/internal/reduce"
	. "pathflow/internal/trace"
)

// pipelineFixture builds a branchy program with a real profile, for
// benchmarking the tracing stages in isolation.
func pipelineFixture(b *testing.B) (*cfg.Func, *bl.Profile, *automaton.Automaton) {
	b.Helper()
	src := `
func main() {
	n = arg(0);
	i = 0;
	s = 0;
	while (i < n) {
		a = input() % 100;
		if (a < 80) { w = 3; } else { w = (input() % 5) + 1; }
		bq = input() % 100;
		if (bq < 70) { v = 2; } else { v = (input() % 7) + 1; }
		c = input() % 100;
		if (c < 85) { u = 5; } else { u = (input() % 9) + 1; }
		s = s + w*v + u;
		i = i + 1;
	}
	print(s);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]ir.Value, 2048)
	x := uint64(5)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0x7fffffff)
	}
	pp, _, err := bl.ProfileProgram(prog, interp.Options{
		Args:  []ir.Value{400},
		Input: &interp.SliceInput{Values: vals},
	})
	if err != nil {
		b.Fatal(err)
	}
	f := prog.Main()
	pr := pp.Funcs[f.Name]
	hot := profile.SelectHot(pr, f.G, 0.97)
	a, err := automaton.New(f.G, pr.R, hot)
	if err != nil {
		b.Fatal(err)
	}
	return f, pr, a
}

func BenchmarkBuildHPG(b *testing.B) {
	f, _, a := pipelineFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(f, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeHPG(b *testing.B) {
	f, _, a := pipelineFixture(b)
	h, err := Build(f, a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		constprop.Analyze(h.G, f.NumVars(), true)
	}
}

func BenchmarkReduceHPG(b *testing.B) {
	f, pr, a := pipelineFixture(b)
	h, err := Build(f, a)
	if err != nil {
		b.Fatal(err)
	}
	sol := constprop.Analyze(h.G, f.NumVars(), true)
	tp, err := profile.Translate(pr, f.G, h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := reduce.Reduce(h, sol, tp, reduce.Options{CR: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateProfile(b *testing.B) {
	f, pr, a := pipelineFixture(b)
	h, err := Build(f, a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Translate(pr, f.G, h); err != nil {
			b.Fatal(err)
		}
	}
}
