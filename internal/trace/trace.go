// Package trace implements Holley-Rosen data-flow tracing as extended by
// Ammons & Larus (PLDI 1998), Figure 4: given a control-flow graph G and a
// qualification automaton A, it constructs the hot path graph (HPG)
// GA whose vertices are the reachable pairs (v, q) of CFG vertex and
// automaton state, and whose edges mirror G's edges filtered through A's
// transitions. Recording edges of G are marked again in the HPG, so the
// original path profile remains interpretable (paper §4.2, Lemmas 1-2).
//
// Hot paths end in distinct automaton states, so their vertices are
// duplicated away from the cold paths and a data-flow analysis run on the
// HPG cannot merge hot-path facts with cold-path facts.
package trace

import (
	"fmt"

	"pathflow/internal/automaton"
	"pathflow/internal/cfg"
	"pathflow/internal/ir"
)

// HPG is a traced hot path graph.
type HPG struct {
	// Fn is the original function.
	Fn *cfg.Func
	// Auto is the qualification automaton used for tracing.
	Auto *automaton.Automaton
	// G is the traced graph. Its node and edge IDs are its own; use
	// OrigNode/State/OrigEdge to map back.
	G *cfg.Graph
	// OrigNode[n] is the original vertex of HPG node n.
	OrigNode []cfg.NodeID
	// State[n] is the automaton state of HPG node n.
	State []automaton.State
	// OrigEdge[e] is the original edge that HPG edge e duplicates; it is
	// also the edge's automaton-alphabet label.
	OrigEdge []cfg.EdgeID
	// Recording is the recording-edge set of the HPG: an HPG edge is
	// recording iff its original edge is.
	Recording map[cfg.EdgeID]bool

	pairs map[pairKey]cfg.NodeID
}

type pairKey struct {
	v cfg.NodeID
	q automaton.State
}

// Build traces fn's graph against automaton a, whose recording-edge set
// must be the one fn was profiled with.
func Build(fn *cfg.Func, a *automaton.Automaton) (*HPG, error) {
	g := fn.G
	h := &HPG{
		Fn:        fn,
		Auto:      a,
		G:         &cfg.Graph{Name: g.Name + "#hpg"},
		Recording: map[cfg.EdgeID]bool{},
		pairs:     map[pairKey]cfg.NodeID{},
	}

	entry := h.addPair(g, g.Entry, a.Start())
	h.G.Entry = entry
	worklist := []cfg.NodeID{entry}
	for len(worklist) > 0 {
		hn := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		v, q := h.OrigNode[hn], h.State[hn]
		for _, eid := range g.Node(v).Out {
			e := g.Edge(eid)
			q2 := a.Step(q, eid)
			key := pairKey{e.To, q2}
			hn2, ok := h.pairs[key]
			if !ok {
				hn2 = h.addPair(g, e.To, q2)
				worklist = append(worklist, hn2)
			}
			he := h.G.AddEdge(hn, hn2)
			h.OrigEdge = append(h.OrigEdge, eid)
			if len(h.OrigEdge) != int(he)+1 {
				return nil, fmt.Errorf("trace: edge bookkeeping out of sync")
			}
			if a.R[eid] {
				h.Recording[he] = true
			}
		}
	}

	// The exit pair is (exit, q•): edges into exit are recording, and
	// every recording edge drives the automaton to q•. If the original
	// exit is unreachable the pair is created detached so the graph
	// still has a well-formed exit.
	exitKey := pairKey{g.Exit, automaton.StateDot}
	exitNode, ok := h.pairs[exitKey]
	if !ok {
		exitNode = h.addPair(g, g.Exit, automaton.StateDot)
	}
	h.G.Exit = exitNode

	if err := h.G.Validate(fn.NumVars()); err != nil {
		return nil, fmt.Errorf("trace: produced invalid HPG: %w", err)
	}
	return h, nil
}

// addPair materializes the HPG node for (v, q), copying v's instructions
// and terminator.
func (h *HPG) addPair(g *cfg.Graph, v cfg.NodeID, q automaton.State) cfg.NodeID {
	orig := g.Node(v)
	name := orig.Name
	if name == "" {
		name = fmt.Sprintf("n%d", v)
	}
	id := h.G.AddNode(name + h.Auto.Name(q))
	nd := h.G.Node(id)
	nd.Instrs = append([]ir.Instr(nil), orig.Instrs...)
	nd.Kind = orig.Kind
	nd.Cond = orig.Cond
	nd.Ret = orig.Ret
	h.OrigNode = append(h.OrigNode, v)
	h.State = append(h.State, q)
	h.pairs[pairKey{v, q}] = id
	return id
}

// Assemble reconstructs an HPG from its parts — the traced graph and
// the per-node/per-edge maps back to the original function — rebuilding
// the derived state (the pair index and the recording-edge set) that
// Build computes incrementally. It is used by the persistent artifact
// cache to revive serialized HPGs; every structural invariant is
// re-validated so a corrupted payload yields an error, never a
// malformed graph.
func Assemble(fn *cfg.Func, a *automaton.Automaton, g *cfg.Graph, origNode []cfg.NodeID, state []automaton.State, origEdge []cfg.EdgeID) (*HPG, error) {
	if len(origNode) != g.NumNodes() || len(state) != g.NumNodes() {
		return nil, fmt.Errorf("trace: assemble: %d nodes but %d/%d node maps",
			g.NumNodes(), len(origNode), len(state))
	}
	if len(origEdge) != g.NumEdges() {
		return nil, fmt.Errorf("trace: assemble: %d edges but %d edge maps",
			g.NumEdges(), len(origEdge))
	}
	if err := g.Validate(fn.NumVars()); err != nil {
		return nil, fmt.Errorf("trace: assemble: invalid HPG: %w", err)
	}
	h := &HPG{
		Fn:        fn,
		Auto:      a,
		G:         g,
		OrigNode:  origNode,
		State:     state,
		OrigEdge:  origEdge,
		Recording: map[cfg.EdgeID]bool{},
		pairs:     make(map[pairKey]cfg.NodeID, g.NumNodes()),
	}
	numStates := automaton.State(a.NumStates())
	for n, v := range origNode {
		if v < 0 || int(v) >= fn.G.NumNodes() {
			return nil, fmt.Errorf("trace: assemble: node %d maps to original vertex %d out of range", n, v)
		}
		if state[n] < 0 || state[n] >= numStates {
			return nil, fmt.Errorf("trace: assemble: node %d carries state %d out of range", n, state[n])
		}
		key := pairKey{v, state[n]}
		if _, dup := h.pairs[key]; dup {
			return nil, fmt.Errorf("trace: assemble: duplicate pair (%d, %d)", v, state[n])
		}
		h.pairs[key] = cfg.NodeID(n)
	}
	for e, oe := range origEdge {
		if oe < 0 || int(oe) >= fn.G.NumEdges() {
			return nil, fmt.Errorf("trace: assemble: edge %d maps to original edge %d out of range", e, oe)
		}
		if a.R[oe] {
			h.Recording[cfg.EdgeID(e)] = true
		}
	}
	return h, nil
}

// NodeFor returns the HPG node representing (v, q), if it was reached.
func (h *HPG) NodeFor(v cfg.NodeID, q automaton.State) (cfg.NodeID, bool) {
	n, ok := h.pairs[pairKey{v, q}]
	return n, ok
}

// StartNode returns the HPG node (v, q•): the node where Ball-Larus paths
// beginning at original vertex v start in the HPG (Lemma 2).
func (h *HPG) StartNode(v cfg.NodeID) (cfg.NodeID, bool) {
	return h.NodeFor(v, automaton.StateDot)
}

// Duplicates returns how many HPG vertices represent each original vertex.
func (h *HPG) Duplicates() map[cfg.NodeID]int {
	d := map[cfg.NodeID]int{}
	for _, v := range h.OrigNode {
		d[v]++
	}
	return d
}

// Func wraps the HPG in a cfg.Func sharing the original's register table,
// so the interpreter can execute the traced graph directly (used by the
// differential soundness tests: the HPG must behave identically to the
// original program).
func (h *HPG) Func() *cfg.Func {
	return &cfg.Func{
		Name:     h.Fn.Name,
		Params:   h.Fn.Params,
		VarNames: h.Fn.VarNames,
		G:        h.G,
	}
}

// Growth returns the relative size increase of the HPG over the original
// graph in nodes: (|HPG| - |G|) / |G| (the quantity of the paper's
// Figure 11).
func (h *HPG) Growth() float64 {
	o := h.Fn.G.NumNodes()
	return float64(h.G.NumNodes()-o) / float64(o)
}

// OverlayGraph, OverlayStart and OverlayRecording implement the overlay
// interface used by profile translation (internal/profile).
func (h *HPG) OverlayGraph() *cfg.Graph { return h.G }

// OverlayStart returns the overlay node where paths starting at original
// vertex v begin.
func (h *HPG) OverlayStart(v cfg.NodeID) (cfg.NodeID, bool) { return h.StartNode(v) }

// OverlayRecording returns the overlay's recording-edge set.
func (h *HPG) OverlayRecording() map[cfg.EdgeID]bool { return h.Recording }

// OverlayOrigEdge returns the original edge an overlay edge duplicates.
func (h *HPG) OverlayOrigEdge(e cfg.EdgeID) cfg.EdgeID { return h.OrigEdge[e] }
