package trace_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
	. "pathflow/internal/trace"
)

// buildExampleHPG traces the running example against all four profile
// paths, reproducing the paper's Figure 5.
func buildExampleHPG(t *testing.T) (*cfg.Func, paperex.Nodes, map[string]cfg.EdgeID, *HPG) {
	t.Helper()
	f, nodes, edges := paperex.Build()
	R := paperex.Recording(edges)
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, R, ps[:])
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	return f, nodes, edges, h
}

func TestExampleHPGShape(t *testing.T) {
	f, nodes, _, h := buildExampleHPG(t)
	// Figure 5: Entryε, A0, B0, B1, Cε, C3, D2, D4, Eε, E5, E6, E7, Fε,
	// F8, F10, F11, Gε, G9, Hε, H12, H13, H14, H15, Iε, I16, I17, Exit0.
	if got := h.G.NumNodes(); got != 27 {
		t.Errorf("HPG nodes = %d, want 27", got)
	}
	dups := h.Duplicates()
	want := map[cfg.NodeID]int{
		nodes.Entry: 1, nodes.A: 1, nodes.B: 2, nodes.C: 2, nodes.D: 2,
		nodes.E: 4, nodes.F: 4, nodes.G: 2, nodes.H: 5, nodes.I: 3, nodes.Exit: 1,
	}
	for v, n := range want {
		if dups[v] != n {
			t.Errorf("duplicates of %s = %d, want %d", f.G.Node(v).Name, dups[v], n)
		}
	}
	// Node names match the paper's labels.
	byName := map[string]bool{}
	for _, nd := range h.G.Nodes {
		byName[nd.Name] = true
	}
	for _, name := range []string{
		"entryε", "A0", "B0", "B1", "Cε", "C3", "D2", "D4",
		"Eε", "E5", "E6", "E7", "Fε", "F8", "F10", "F11",
		"Gε", "G9", "Hε", "H12", "H13", "H14", "H15",
		"Iε", "I16", "I17", "exit0",
	} {
		if !byName[name] {
			t.Errorf("HPG is missing vertex %s (have %v)", name, byName)
		}
	}
}

func TestExampleHPGRecordingEdges(t *testing.T) {
	_, nodes, edges, h := buildExampleHPG(t)
	// Entry→A0 (1), five H*→B0 (5), three I*→Exit0 (3).
	if got := len(h.Recording); got != 9 {
		t.Errorf("HPG recording edges = %d, want 9", got)
	}
	for he := range h.Recording {
		oe := h.OrigEdge[he]
		if !paperex.Recording(edges)[oe] {
			t.Errorf("HPG recording edge %d maps to non-recording original edge %d", he, oe)
		}
		// Every recording edge targets a q• node (Lemma 2's anchor).
		to := h.G.Edge(he).To
		if h.State[to] != automaton.StateDot {
			t.Errorf("recording edge %d targets state %v, want q•", he, h.State[to])
		}
	}
	// All H→B edges land on B0 specifically.
	b0, ok := h.NodeFor(nodes.B, automaton.StateDot)
	if !ok {
		t.Fatal("B0 missing")
	}
	for he := range h.Recording {
		if h.OrigEdge[he] == edges["H->B"] && h.G.Edge(he).To != b0 {
			t.Errorf("H→B duplicate targets %d, want B0=%d", h.G.Edge(he).To, b0)
		}
	}
}

func TestExampleHPGIsIrreducible(t *testing.T) {
	f, _, _, h := buildExampleHPG(t)
	if !f.G.Reducible() {
		t.Fatal("original example graph should be reducible")
	}
	// Paper §4.1: the traced example is irreducible — e.g. (H15, B0) is
	// a retreating edge but not a back edge, since B0 does not dominate
	// H15.
	if h.G.Reducible() {
		t.Error("example HPG should be irreducible")
	}
}

func TestHPGStructuralInvariant(t *testing.T) {
	f, _, _, h := buildExampleHPG(t)
	// Definition 6: edge ((v0,q0),(v1,q1)) exists iff (v0,v1) ∈ E and
	// A steps q0 to q1 on (v0,v1). Check the forward direction for every
	// HPG edge and slot correspondence with the original graph.
	for _, he := range h.G.Edges {
		oe := f.G.Edge(h.OrigEdge[he.ID])
		from, to := he.From, he.To
		if h.OrigNode[from] != oe.From || h.OrigNode[to] != oe.To {
			t.Fatalf("HPG edge %d endpoints don't project to original edge %d", he.ID, oe.ID)
		}
		if got := h.Auto.Step(h.State[from], oe.ID); got != h.State[to] {
			t.Fatalf("HPG edge %d: automaton steps to %d, node says %d", he.ID, got, h.State[to])
		}
		if he.Slot != oe.Slot {
			t.Fatalf("HPG edge %d slot %d != original slot %d", he.ID, he.Slot, oe.Slot)
		}
	}
	// Every HPG node has the full out-edge fan of its original vertex.
	for _, nd := range h.G.Nodes {
		ov := f.G.Node(h.OrigNode[nd.ID])
		if len(nd.Out) != len(ov.Out) {
			t.Fatalf("HPG node %s has %d out-edges, original %s has %d",
				nd.Name, len(nd.Out), ov.Name, len(ov.Out))
		}
	}
}

func TestHPGWithEmptyAutomaton(t *testing.T) {
	// With no hot paths the HPG vertices are (v, qε) and (v, q•) only;
	// the structure collapses back to something execution-equivalent to
	// the original graph.
	f, _, edges := paperex.Build()
	a, err := automaton.New(f.G, paperex.Recording(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	// Entryε, A0 (recording target), Bε (via A→B) and B0 (via the
	// recording edge H→B), then Cε, Dε, Eε, Fε, Gε, Hε, Iε, Exit0: even
	// with no keywords, q• still distinguishes recording-edge targets.
	if got := h.G.NumNodes(); got != 12 {
		t.Errorf("HPG nodes with empty automaton = %d, want 12", got)
	}
}

// TestHPGExecutionEquivalence runs the original program and its HPG on
// identical inputs: outputs, return values and instruction counts must
// coincide, because tracing only duplicates vertices.
func TestHPGExecutionEquivalence(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, R, ps[:2]) // partial hot set
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	for kind := 1; kind <= 3; kind++ {
		in := paperex.RunInputs(kind)
		orig := cfg.NewProgram()
		orig.Add(f)
		r1, err := interp.Run(orig, interp.Options{Input: &interp.SliceInput{Values: in}, CollectOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		traced := cfg.NewProgram()
		traced.Add(h.Func())
		r2, err := interp.Run(traced, interp.Options{Input: &interp.SliceInput{Values: in}, CollectOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Ret != r2.Ret || r1.DynInstrs != r2.DynInstrs || r1.Steps != r2.Steps {
			t.Errorf("kind %d: original (ret=%d,di=%d,steps=%d) != HPG (ret=%d,di=%d,steps=%d)",
				kind, r1.Ret, r1.DynInstrs, r1.Steps, r2.Ret, r2.DynInstrs, r2.Steps)
		}
	}
}

// TestRecordingEdgesTargetUniqueDotNode is the anchor of Lemma 2: for
// each original vertex v, every recording edge into v lands on the single
// HPG node (v, q•) — which is why the translated profile is unique. The
// paper notes this "would fail if tracing were allowed to unroll loops".
func TestRecordingEdgesTargetUniqueDotNode(t *testing.T) {
	_, _, _, h := buildExampleHPG(t)
	targets := map[cfg.NodeID]cfg.NodeID{} // orig vertex -> HPG target
	for he := range h.Recording {
		to := h.G.Edge(he).To
		ov := h.OrigNode[to]
		if prev, ok := targets[ov]; ok && prev != to {
			t.Fatalf("recording edges into vertex %d target two HPG nodes (%d and %d)", ov, prev, to)
		}
		targets[ov] = to
		if h.State[to] != automaton.StateDot {
			t.Fatalf("recording edge targets state %v, want q•", h.State[to])
		}
	}
}

// TestHPGNamesForUnnamedNodes: nodes without diagnostic names get nN
// labels plus the state suffix.
func TestHPGNamesForUnnamedNodes(t *testing.T) {
	g := cfg.New("anon")
	a := g.AddNode("") // unnamed
	g.Node(a).Kind = cfg.TermReturn
	e1 := g.AddEdge(g.Entry, a)
	e2 := g.AddEdge(a, g.Exit)
	fn := &cfg.Func{Name: "anon", G: g}
	R := map[cfg.EdgeID]bool{e1: true, e2: true}
	a2, err := automaton.New(g, R, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(fn, a2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, nd := range h.G.Nodes {
		if nd.Name == "n2"+"0" { // node 2 at state q•(displayed 0)
			found = true
		}
	}
	if !found {
		var names []string
		for _, nd := range h.G.Nodes {
			names = append(names, nd.Name)
		}
		t.Errorf("expected synthesized name n20, have %v", names)
	}
}

// TestHPGSizeBound: |HPG| ≤ |V| × |Q| (Definition 6's universe).
func TestHPGSizeBound(t *testing.T) {
	f, _, _, h := buildExampleHPG(t)
	bound := f.G.NumNodes() * h.Auto.NumStates()
	if h.G.NumNodes() > bound {
		t.Errorf("HPG has %d nodes, exceeding |V|×|Q| = %d", h.G.NumNodes(), bound)
	}
}

func TestHPGOnLangProgram(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	i = 0;
	s = 0;
	while (i < 40) {
		if (i % 4 == 0) { s = s + 3; } else { s = s + 1; }
		i = i + 1;
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	R := bl.RecordingEdges(fn.G)
	pp, _, err := bl.ProfileProgram(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hot []bl.Path
	for _, e := range pp.Funcs["main"].Entries {
		hot = append(hot, e.Path)
	}
	a, err := automaton.New(fn.G, R, hot)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(fn, a)
	if err != nil {
		t.Fatal(err)
	}
	if h.G.NumNodes() <= fn.G.NumNodes() {
		t.Errorf("HPG (%d nodes) should be larger than original (%d nodes)",
			h.G.NumNodes(), fn.G.NumNodes())
	}
	if h.Growth() <= 0 {
		t.Errorf("Growth = %f, want > 0", h.Growth())
	}
	// Execution equivalence on the lang program.
	p2 := cfg.NewProgram()
	p2.Add(h.Func())
	r1, err := interp.Run(prog, interp.Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(p2, interp.Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Output) != len(r2.Output) || r1.Output[0] != r2.Output[0] {
		t.Errorf("outputs differ: %v vs %v", r1.Output, r2.Output)
	}
}
