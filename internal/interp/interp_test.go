package interp

import (
	"errors"
	"reflect"
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
)

func run(t *testing.T, src string, opt Options) *Result {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.CollectOutput = true
	res, err := Run(p, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
func main() {
	print(2 + 3 * 4);
	print((2 + 3) * 4);
	print(10 / 3);
	print(10 % 3);
	print(7 / 0);
	print(7 % 0);
	print(-5);
	print(!0);
	print(!7);
	print(1 << 4);
	print(256 >> 4);
	print(6 & 3);
	print(6 | 3);
	print(6 ^ 3);
}`, Options{})
	want := []ir.Value{14, 20, 3, 1, 0, 0, -5, 1, 0, 16, 16, 2, 7, 5}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestComparisons(t *testing.T) {
	res := run(t, `
func main() {
	print(1 < 2); print(2 < 1); print(2 <= 2);
	print(3 > 2); print(2 >= 3); print(4 == 4); print(4 != 4);
}`, Options{})
	want := []ir.Value{1, 0, 1, 1, 0, 1, 0}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
func main() {
	s = 0;
	i = 0;
	while (i < 5) {
		if (i % 2 == 0) { s = s + i; }
		i = i + 1;
	}
	print(s);
}`, Options{})
	if !reflect.DeepEqual(res.Output, []ir.Value{6}) {
		t.Errorf("output = %v, want [6]", res.Output)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// The right side of && must not consume input when the left is false.
	res := run(t, `
func main() {
	a = 0;
	if (a != 0 && input() > 0) { print(1); } else { print(2); }
	print(input());
}`, Options{Input: &SliceInput{Values: []ir.Value{42, 43}}})
	want := []ir.Value{2, 42}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	res := run(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(10)); }`, Options{})
	if !reflect.DeepEqual(res.Output, []ir.Value{55}) {
		t.Errorf("output = %v, want [55]", res.Output)
	}
	if res.Calls < 2 {
		t.Errorf("Calls = %d, want many", res.Calls)
	}
}

func TestArgsAndInput(t *testing.T) {
	res := run(t, `
func main() {
	print(arg(0));
	print(arg(1));
	print(arg(9)); // out of range -> 0
	print(input());
	print(input());
	print(input()); // wraps around
}`, Options{
		Args:  []ir.Value{7, 8},
		Input: &SliceInput{Values: []ir.Value{1, 2}},
	})
	want := []ir.Value{7, 8, 0, 1, 2, 1}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestStepLimit(t *testing.T) {
	p, err := lang.Compile(`func main() { while (1) { } }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Options{MaxSteps: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestDepthLimit(t *testing.T) {
	p, err := lang.Compile(`
func f(n) { return f(n + 1); }
func main() { print(f(0)); }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Options{MaxDepth: 50})
	if !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("err = %v, want ErrDepthLimit", err)
	}
}

func TestBlockCountsAndDynInstrs(t *testing.T) {
	src := `
func main() {
	i = 0;
	while (i < 10) { i = i + 1; }
	print(i);
}`
	res := run(t, src, Options{})
	if res.DynInstrs == 0 {
		t.Fatal("DynInstrs = 0")
	}
	counts := res.BlockCount["main"]
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != res.Steps {
		t.Errorf("sum(BlockCount) = %d, want Steps = %d", total, res.Steps)
	}
	p, _ := lang.Compile(src)
	g := p.Main().G
	if counts[g.Entry] != 1 || counts[g.Exit] != 1 {
		t.Errorf("entry/exit counts = %d/%d, want 1/1", counts[g.Entry], counts[g.Exit])
	}
}

func TestEdgeHookSeesCompletePath(t *testing.T) {
	src := `
func main() {
	x = input();
	if (x > 0) { y = 1; } else { y = 2; }
	print(y);
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Main().G
	var edges []cfg.EdgeID
	_, err = Run(p, Options{
		Input:  &SliceInput{Values: []ir.Value{5}},
		OnEdge: func(fn *cfg.Func, e cfg.EdgeID) { edges = append(edges, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("no edges observed")
	}
	// The observed edges must form a connected path from Entry to Exit.
	cur := g.Entry
	for _, e := range edges {
		if g.Edge(e).From != cur {
			t.Fatalf("edge %d starts at %d, expected %d", e, g.Edge(e).From, cur)
		}
		cur = g.Edge(e).To
	}
	if cur != g.Exit {
		t.Errorf("path ends at %d, want exit %d", cur, g.Exit)
	}
}

func TestSliceInputReset(t *testing.T) {
	in := &SliceInput{Values: []ir.Value{1, 2, 3}}
	in.Next()
	in.Next()
	in.Reset()
	if got := in.Next(); got != 1 {
		t.Errorf("after Reset, Next = %d, want 1", got)
	}
}

func TestMainReturnValue(t *testing.T) {
	p, err := lang.Compile(`func main() { return 41 + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("Ret = %d, want 42", res.Ret)
	}
}
