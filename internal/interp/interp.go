// Package interp executes CFG programs deterministically.
//
// The interpreter is pathflow's stand-in for the paper's instrumented
// native runs: it executes a program on a given input, counts dynamic
// instructions (the paper's unit of measure), exposes per-block execution
// counts, and offers edge/block hooks that the Ball-Larus profiler
// (internal/bl) and the i-cache model (internal/machine) attach to.
package interp

import (
	"errors"
	"fmt"

	"pathflow/internal/cfg"
	"pathflow/internal/ir"
)

// InputSource supplies the values returned by the language's input()
// builtin.
type InputSource interface {
	Next() ir.Value
}

// SliceInput replays a fixed sequence, wrapping around at the end so runs
// of any length are deterministic. An empty SliceInput yields zeros.
type SliceInput struct {
	Values []ir.Value
	pos    int
}

// Next returns the next input value.
func (s *SliceInput) Next() ir.Value {
	if len(s.Values) == 0 {
		return 0
	}
	v := s.Values[s.pos]
	s.pos++
	if s.pos == len(s.Values) {
		s.pos = 0
	}
	return v
}

// Reset rewinds the stream to its beginning.
func (s *SliceInput) Reset() { s.pos = 0 }

// FuncInput adapts a function to an InputSource.
type FuncInput func() ir.Value

// Next returns the next input value.
func (f FuncInput) Next() ir.Value { return f() }

// Options configures a run.
type Options struct {
	// Args are the run's fixed parameters, read by arg(k); out-of-range
	// reads yield 0.
	Args []ir.Value
	// Input feeds input(); nil behaves as an endless zero stream.
	Input InputSource
	// MaxSteps bounds the number of executed basic blocks (0 means the
	// package default of 50 million). Exceeding it aborts the run.
	MaxSteps int64
	// MaxDepth bounds call-stack depth (0 means the default of 1000).
	MaxDepth int
	// CollectOutput keeps print() values in Result.Output.
	CollectOutput bool

	// OnEnter fires at each activation of a function, before its entry
	// block. OnEdge fires for every control-flow edge traversed,
	// including the edge out of Entry and the edge into Exit. OnBlock
	// fires when a block begins executing (including Entry and Exit).
	OnEnter func(fn *cfg.Func)
	OnEdge  func(fn *cfg.Func, e cfg.EdgeID)
	OnBlock func(fn *cfg.Func, n cfg.NodeID)
	OnExit  func(fn *cfg.Func)
	// OnBlockEnv fires like OnBlock but also exposes the activation's
	// live register file, letting tests check data-flow claims against
	// actual execution. The callee must not retain or modify regs.
	OnBlockEnv func(fn *cfg.Func, n cfg.NodeID, regs []ir.Value)
}

// Result summarizes a run.
type Result struct {
	// Ret is main's return value (0 for void).
	Ret ir.Value
	// Output holds print()ed values when Options.CollectOutput is set.
	Output []ir.Value
	// BlockCount[fname][node] is how many times each block executed.
	BlockCount map[string][]int64
	// DynInstrs is the total number of IR instructions executed — the
	// paper's "dynamic instructions". Terminators are not counted.
	DynInstrs int64
	// Steps is the number of basic blocks executed.
	Steps int64
	// Calls is the number of function activations, including main.
	Calls int64
}

// Default limits.
const (
	DefaultMaxSteps = 50_000_000
	DefaultMaxDepth = 1000
)

// ErrStepLimit is returned when a run exceeds Options.MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// ErrDepthLimit is returned when a run exceeds Options.MaxDepth.
var ErrDepthLimit = errors.New("interp: call depth limit exceeded")

type machine struct {
	prog *cfg.Program
	opt  Options
	res  *Result
}

// Run executes prog from its main function.
func Run(prog *cfg.Program, opt Options) (*Result, error) {
	main := prog.Main()
	if main == nil {
		return nil, errors.New("interp: program has no functions")
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = DefaultMaxSteps
	}
	if opt.MaxDepth == 0 {
		opt.MaxDepth = DefaultMaxDepth
	}
	m := &machine{
		prog: prog,
		opt:  opt,
		res:  &Result{BlockCount: map[string][]int64{}},
	}
	for name, f := range prog.Funcs {
		m.res.BlockCount[name] = make([]int64, f.G.NumNodes())
	}
	ret, err := m.call(main, nil, 0)
	if err != nil {
		return m.res, err
	}
	m.res.Ret = ret
	return m.res, nil
}

func (m *machine) input() ir.Value {
	if m.opt.Input == nil {
		return 0
	}
	return m.opt.Input.Next()
}

func (m *machine) arg(k ir.Value) ir.Value {
	if k < 0 || k >= int64(len(m.opt.Args)) {
		return 0
	}
	return m.opt.Args[k]
}

// call runs one activation of fn.
func (m *machine) call(fn *cfg.Func, args []ir.Value, depth int) (ir.Value, error) {
	if depth >= m.opt.MaxDepth {
		return 0, fmt.Errorf("%w (%d frames) in %s", ErrDepthLimit, depth, fn.Name)
	}
	if m.opt.OnEnter != nil {
		m.opt.OnEnter(fn)
	}
	m.res.Calls++
	g := fn.G
	regs := make([]ir.Value, fn.NumVars())
	for i, p := range fn.Params {
		if i < len(args) {
			regs[p] = args[i]
		}
	}
	counts := m.res.BlockCount[fn.Name]
	cur := g.Entry
	var retVal ir.Value
	for {
		m.res.Steps++
		if m.res.Steps > m.opt.MaxSteps {
			return 0, fmt.Errorf("%w (%d blocks) in %s", ErrStepLimit, m.opt.MaxSteps, fn.Name)
		}
		counts[cur]++
		if m.opt.OnBlock != nil {
			m.opt.OnBlock(fn, cur)
		}
		if m.opt.OnBlockEnv != nil {
			m.opt.OnBlockEnv(fn, cur, regs)
		}
		nd := g.Node(cur)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			m.res.DynInstrs++
			switch {
			case in.Op == ir.Nop:
			case in.Op == ir.Const:
				regs[in.Dst] = in.K
			case in.Op == ir.Input:
				regs[in.Dst] = m.input()
			case in.Op == ir.Arg:
				regs[in.Dst] = m.arg(in.K)
			case in.Op == ir.Print:
				if m.opt.CollectOutput {
					m.res.Output = append(m.res.Output, regs[in.A])
				}
			case in.Op == ir.Call:
				callee, ok := m.prog.Funcs[in.Callee]
				if !ok {
					return 0, fmt.Errorf("interp: %s calls undefined function %q", fn.Name, in.Callee)
				}
				vals := make([]ir.Value, len(in.Args))
				for j, a := range in.Args {
					vals[j] = regs[a]
				}
				v, err := m.call(callee, vals, depth+1)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case in.Op.IsUnary():
				regs[in.Dst] = ir.EvalUn(in.Op, regs[in.A])
			case in.Op.IsBinary():
				regs[in.Dst] = ir.EvalBin(in.Op, regs[in.A], regs[in.B])
			default:
				return 0, fmt.Errorf("interp: unknown opcode %v in %s", in.Op, fn.Name)
			}
		}
		var next cfg.EdgeID
		switch nd.Kind {
		case cfg.TermJump:
			next = nd.Out[0]
		case cfg.TermBranch:
			if regs[nd.Cond] != 0 {
				next = nd.Out[0]
			} else {
				next = nd.Out[1]
			}
		case cfg.TermReturn:
			if nd.Ret.Valid() {
				retVal = regs[nd.Ret]
			}
			next = nd.Out[0]
		case cfg.TermHalt:
			if m.opt.OnExit != nil {
				m.opt.OnExit(fn)
			}
			return retVal, nil
		default:
			return 0, fmt.Errorf("interp: node %d of %s has unknown terminator", cur, fn.Name)
		}
		if m.opt.OnEdge != nil {
			m.opt.OnEdge(fn, next)
		}
		cur = g.Edge(next).To
	}
}
