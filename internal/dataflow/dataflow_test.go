package dataflow_test

import (
	"testing"

	"pathflow/internal/cfg"
	. "pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// distProblem computes the minimum number of blocks on any executable
// path from entry (capped), a tiny monotone problem: meet is min,
// transfer adds one.
type distProblem struct {
	// blockEdge, if set, marks one (node, slot) pair as never
	// executable, to exercise edge-level suppression.
	blockNode cfg.NodeID
	blockSlot int
}

const distCap = 1 << 20

func (p *distProblem) Entry() Fact { return 0 }

func (p *distProblem) Meet(a, b Fact) Fact {
	x, y := a.(int), b.(int)
	if x < y {
		return x
	}
	return y
}

func (p *distProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }

func (p *distProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	d := in.(int) + 1
	if d > distCap {
		d = distCap
	}
	for slot := range out {
		if n == p.blockNode && slot == p.blockSlot {
			continue
		}
		out[slot] = d
	}
}

// diamondWithLoop: entry -> a -> {b, c}; b -> d; c -> d; d -> a (loop) or
// d -> exit.
func buildGraph(t *testing.T) (*cfg.Graph, map[string]cfg.NodeID) {
	t.Helper()
	g := cfg.New("t")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.Node(a).Kind = cfg.TermBranch
	g.Node(a).Cond = 0
	g.Node(d).Kind = cfg.TermBranch
	g.Node(d).Cond = 0
	g.AddEdge(g.Entry, a)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	g.AddEdge(d, a) // loop back
	g.AddEdge(d, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g, map[string]cfg.NodeID{"a": a, "b": b, "c": c, "d": d}
}

func TestSolveDistances(t *testing.T) {
	g, n := buildGraph(t)
	sol := Solve(g, &distProblem{blockNode: cfg.NoNode})
	wants := map[string]int{"a": 1, "b": 2, "c": 2, "d": 3}
	for name, want := range wants {
		if !sol.Reached[n[name]] {
			t.Fatalf("%s unreached", name)
		}
		if got := sol.In[n[name]].(int); got != want {
			t.Errorf("dist(%s) = %d, want %d", name, got, want)
		}
	}
	if got := sol.In[g.Exit].(int); got != 4 {
		t.Errorf("dist(exit) = %d, want 4", got)
	}
	if sol.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	for _, e := range g.Edges {
		if !sol.EdgeExecutable[e.ID] {
			t.Errorf("edge %d not marked executable", e.ID)
		}
	}
}

func TestSolveWithBlockedEdge(t *testing.T) {
	g, n := buildGraph(t)
	// Block a's slot 0 (a -> b): b becomes unreachable.
	sol := Solve(g, &distProblem{blockNode: n["a"], blockSlot: 0})
	if sol.Reached[n["b"]] {
		t.Error("b reached despite blocked edge")
	}
	if !sol.Reached[n["c"]] || !sol.Reached[n["d"]] {
		t.Error("c/d should still be reached")
	}
	if sol.EdgeExecutable[g.Node(n["a"]).Out[0]] {
		t.Error("blocked edge marked executable")
	}
	if sol.In[n["b"]] != nil {
		t.Error("unreached node has a fact")
	}
}

func TestSolveConvergesOnLoop(t *testing.T) {
	// The loop d -> a re-delivers facts; meet(min) must converge to the
	// shortest distance, not oscillate.
	g, n := buildGraph(t)
	sol := Solve(g, &distProblem{blockNode: cfg.NoNode})
	// a's distance stays 1 (from entry), despite the longer loop path.
	if got := sol.In[n["a"]].(int); got != 1 {
		t.Errorf("dist(a) = %d, want 1", got)
	}
}

// counterProblem tracks an ever-growing counter around a loop: without
// widening the solver would iterate forever; with Widen it must
// stabilize at the cap sentinel.
type counterProblem struct{}

const counterInf = int(^uint(0) >> 1)

func (p *counterProblem) Entry() Fact { return 0 }
func (p *counterProblem) Meet(a, b Fact) Fact {
	if a.(int) > b.(int) {
		return a
	}
	return b
}
func (p *counterProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }
func (p *counterProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	v := in.(int)
	if v != counterInf {
		v++
	}
	for i := range out {
		out[i] = v
	}
}
func (p *counterProblem) Widen(old, new Fact) Fact { return counterInf }

var _ Widener = (*counterProblem)(nil)

func TestWideningTerminatesUnboundedLattice(t *testing.T) {
	g, n := buildGraph(t) // contains the loop d -> a
	done := make(chan *Solution, 1)
	go func() { done <- Solve(g, &counterProblem{}) }()
	sol := <-done
	// The loop-head a must have been widened to the sentinel.
	if got := sol.In[n["a"]].(int); got != counterInf {
		t.Errorf("loop head fact = %d, want widened sentinel", got)
	}
	if !sol.Reached[g.Exit] {
		t.Error("exit unreached")
	}
	// The entry-side fact stays finite: widening applies at loop heads
	// only, and entry is not one.
	if got := sol.In[g.Entry].(int); got != 0 {
		t.Errorf("entry fact = %d, want 0", got)
	}
}

func TestSolveSingleNode(t *testing.T) {
	g := cfg.New("tiny")
	a := g.AddNode("a")
	g.Node(a).Kind = cfg.TermReturn
	g.Node(a).Ret = ir.NoVar
	g.AddEdge(g.Entry, a)
	g.AddEdge(a, g.Exit)
	if err := g.Validate(0); err != nil {
		t.Fatal(err)
	}
	sol := Solve(g, &distProblem{blockNode: cfg.NoNode})
	if !sol.Reached[g.Exit] || sol.In[g.Exit].(int) != 2 {
		t.Errorf("exit fact = %v", sol.In[g.Exit])
	}
}
