package dataflow_test

import (
	"testing"

	"pathflow/internal/cfg"
	. "pathflow/internal/dataflow"
)

// exitDistProblem is the backward mirror of distProblem: the minimum
// number of blocks on any executable path from a node's exit to the
// function exit. Meet is min, transfer adds one per block, and one
// (node, in-slot) pair may be suppressed to exercise backward edge-level
// non-executability.
type exitDistProblem struct {
	blockNode cfg.NodeID
	blockSlot int
}

func (p *exitDistProblem) Direction() Direction { return Backward }
func (p *exitDistProblem) Entry() Fact          { return 0 }

func (p *exitDistProblem) Meet(a, b Fact) Fact {
	x, y := a.(int), b.(int)
	if x < y {
		return x
	}
	return y
}

func (p *exitDistProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }

func (p *exitDistProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	d := in.(int) + 1
	if d > distCap {
		d = distCap
	}
	for slot := range out {
		if n == p.blockNode && slot == p.blockSlot {
			continue
		}
		out[slot] = d
	}
}

func TestBackwardSolveDistances(t *testing.T) {
	g, n := buildGraph(t)
	sol := Solve(g, &exitDistProblem{blockNode: cfg.NoNode})
	if sol.Direction != Backward {
		t.Fatalf("solution direction = %v, want Backward", sol.Direction)
	}
	// Distances to exit: d -> exit is one hop, b/c -> d -> exit two, a
	// three, entry four.
	wants := map[string]int{"a": 3, "b": 2, "c": 2, "d": 1}
	for name, want := range wants {
		if !sol.Reached[n[name]] {
			t.Fatalf("%s unreached", name)
		}
		if got := sol.In[n[name]].(int); got != want {
			t.Errorf("exitdist(%s) = %d, want %d", name, got, want)
		}
	}
	if got := sol.In[g.Entry].(int); got != 4 {
		t.Errorf("exitdist(entry) = %d, want 4", got)
	}
	if sol.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	for _, e := range g.Edges {
		if !sol.EdgeExecutable[e.ID] {
			t.Errorf("edge %d not marked executable", e.ID)
		}
	}
}

func TestBackwardSolveWithBlockedEdge(t *testing.T) {
	g, n := buildGraph(t)
	// Find the in-slot of edge b -> d within d's In list, and block it:
	// b then has no executable path to exit and stays unreached.
	d := n["d"]
	slot := -1
	for i, eid := range g.Node(d).In {
		if g.Edge(eid).From == n["b"] {
			slot = i
		}
	}
	if slot < 0 {
		t.Fatal("edge b->d not found in d's In list")
	}
	sol := Solve(g, &exitDistProblem{blockNode: d, blockSlot: slot})
	if sol.Reached[n["b"]] {
		t.Error("b reached despite blocked in-edge")
	}
	if sol.In[n["b"]] != nil {
		t.Error("unreached node has a fact")
	}
	if !sol.Reached[n["a"]] || !sol.Reached[n["c"]] {
		t.Error("a/c should still be reached via c")
	}
	if sol.EdgeExecutable[g.Node(d).In[slot]] {
		t.Error("blocked edge marked executable")
	}
	// a's distance must detour through c: a -> c -> d -> exit.
	if got := sol.In[n["a"]].(int); got != 3 {
		t.Errorf("exitdist(a) = %d, want 3", got)
	}
}

// backCounterProblem is the backward analogue of counterProblem: an
// unbounded ascent around the loop that only terminates by widening.
type backCounterProblem struct{}

func (p *backCounterProblem) Direction() Direction { return Backward }
func (p *backCounterProblem) Entry() Fact          { return 0 }
func (p *backCounterProblem) Meet(a, b Fact) Fact {
	if a.(int) > b.(int) {
		return a
	}
	return b
}
func (p *backCounterProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }
func (p *backCounterProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	v := in.(int)
	if v != counterInf {
		v++
	}
	for i := range out {
		out[i] = v
	}
}
func (p *backCounterProblem) Widen(old, new Fact) Fact { return counterInf }

var _ Widener = (*backCounterProblem)(nil)

func TestBackwardWideningTerminates(t *testing.T) {
	g, n := buildGraph(t) // loop d -> a, retreating edge's From is d
	done := make(chan *Solution, 1)
	go func() { done <- Solve(g, &backCounterProblem{}) }()
	sol := <-done
	// Backward around the loop the accumulating node is the latch d (the
	// source of the retreating edge), which must have been widened.
	if got := sol.In[n["d"]].(int); got != counterInf {
		t.Errorf("latch fact = %d, want widened sentinel", got)
	}
	if !sol.Reached[g.Entry] {
		t.Error("entry unreached")
	}
}
