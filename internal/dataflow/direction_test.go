package dataflow_test

import (
	"testing"

	"pathflow/internal/cfg"
	. "pathflow/internal/dataflow"
)

// exitDistProblem is the backward mirror of distProblem: the minimum
// number of blocks on any executable path from a node's exit to the
// function exit. Meet is min, transfer adds one per block, and one
// (node, in-slot) pair may be suppressed to exercise backward edge-level
// non-executability.
type exitDistProblem struct {
	blockNode cfg.NodeID
	blockSlot int
}

func (p *exitDistProblem) Direction() Direction { return Backward }
func (p *exitDistProblem) Entry() Fact          { return 0 }

func (p *exitDistProblem) Meet(a, b Fact) Fact {
	x, y := a.(int), b.(int)
	if x < y {
		return x
	}
	return y
}

func (p *exitDistProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }

func (p *exitDistProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	d := in.(int) + 1
	if d > distCap {
		d = distCap
	}
	for slot := range out {
		if n == p.blockNode && slot == p.blockSlot {
			continue
		}
		out[slot] = d
	}
}

func TestBackwardSolveDistances(t *testing.T) {
	g, n := buildGraph(t)
	sol := Solve(g, &exitDistProblem{blockNode: cfg.NoNode})
	if sol.Direction != Backward {
		t.Fatalf("solution direction = %v, want Backward", sol.Direction)
	}
	// Distances to exit: d -> exit is one hop, b/c -> d -> exit two, a
	// three, entry four.
	wants := map[string]int{"a": 3, "b": 2, "c": 2, "d": 1}
	for name, want := range wants {
		if !sol.Reached[n[name]] {
			t.Fatalf("%s unreached", name)
		}
		if got := sol.In[n[name]].(int); got != want {
			t.Errorf("exitdist(%s) = %d, want %d", name, got, want)
		}
	}
	if got := sol.In[g.Entry].(int); got != 4 {
		t.Errorf("exitdist(entry) = %d, want 4", got)
	}
	if sol.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	for _, e := range g.Edges {
		if !sol.EdgeExecutable[e.ID] {
			t.Errorf("edge %d not marked executable", e.ID)
		}
	}
}

func TestBackwardSolveWithBlockedEdge(t *testing.T) {
	g, n := buildGraph(t)
	// Find the in-slot of edge b -> d within d's In list, and block it:
	// b then has no executable path to exit and stays unreached.
	d := n["d"]
	slot := -1
	for i, eid := range g.Node(d).In {
		if g.Edge(eid).From == n["b"] {
			slot = i
		}
	}
	if slot < 0 {
		t.Fatal("edge b->d not found in d's In list")
	}
	sol := Solve(g, &exitDistProblem{blockNode: d, blockSlot: slot})
	if sol.Reached[n["b"]] {
		t.Error("b reached despite blocked in-edge")
	}
	if sol.In[n["b"]] != nil {
		t.Error("unreached node has a fact")
	}
	if !sol.Reached[n["a"]] || !sol.Reached[n["c"]] {
		t.Error("a/c should still be reached via c")
	}
	if sol.EdgeExecutable[g.Node(d).In[slot]] {
		t.Error("blocked edge marked executable")
	}
	// a's distance must detour through c: a -> c -> d -> exit.
	if got := sol.In[n["a"]].(int); got != 3 {
		t.Errorf("exitdist(a) = %d, want 3", got)
	}
}

// backCounterProblem is the backward analogue of counterProblem: an
// unbounded ascent around the loop that only terminates by widening.
type backCounterProblem struct{}

func (p *backCounterProblem) Direction() Direction { return Backward }
func (p *backCounterProblem) Entry() Fact          { return 0 }
func (p *backCounterProblem) Meet(a, b Fact) Fact {
	if a.(int) > b.(int) {
		return a
	}
	return b
}
func (p *backCounterProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }
func (p *backCounterProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	v := in.(int)
	if v != counterInf {
		v++
	}
	for i := range out {
		out[i] = v
	}
}
func (p *backCounterProblem) Widen(old, new Fact) Fact { return counterInf }

var _ Widener = (*backCounterProblem)(nil)

func TestBackwardWideningTerminates(t *testing.T) {
	g, n := buildGraph(t) // loop d -> a, retreating edge's From is d
	done := make(chan *Solution, 1)
	go func() { done <- Solve(g, &backCounterProblem{}) }()
	sol := <-done
	// Backward around the loop the accumulating node is the latch d (the
	// source of the retreating edge), which must have been widened.
	if got := sol.In[n["d"]].(int); got != counterInf {
		t.Errorf("latch fact = %d, want widened sentinel", got)
	}
	if !sol.Reached[g.Entry] {
		t.Error("entry unreached")
	}
}

// maxDistProblem computes the length of the longest executable path
// from entry to each node (capped): meet is max, so a merge node's fact
// changes every time a longer arm delivers. On a FIFO worklist that
// makes unequal-arm diamonds expensive — the short arm reaches the
// merge first, the merge transfers its whole tail, then the long arm
// arrives and the tail is re-transferred. The RPO priority worklist
// never pops the merge before both arms are done.
type maxDistProblem struct{ backward bool }

func (p *maxDistProblem) Direction() Direction {
	if p.backward {
		return Backward
	}
	return Forward
}
func (p *maxDistProblem) Entry() Fact { return 0 }
func (p *maxDistProblem) Meet(a, b Fact) Fact {
	if a.(int) > b.(int) {
		return a
	}
	return b
}
func (p *maxDistProblem) Equal(a, b Fact) bool { return a.(int) == b.(int) }
func (p *maxDistProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	d := in.(int) + 1
	if d > distCap {
		d = distCap
	}
	for i := range out {
		out[i] = d
	}
}

// buildUnequalDiamond returns a DAG with two arms of different length
// into a merge node m followed by a straight tail:
//
//	entry -> a ----------------> m -> t1 -> t2 -> t3 -> exit
//	entry -> b1 -> b2 -> b3 ---> m
func buildUnequalDiamond(t *testing.T) *cfg.Graph {
	t.Helper()
	g := cfg.New("diamond")
	a := g.AddNode("a")
	b1 := g.AddNode("b1")
	b2 := g.AddNode("b2")
	b3 := g.AddNode("b3")
	m := g.AddNode("m")
	t1 := g.AddNode("t1")
	t2 := g.AddNode("t2")
	t3 := g.AddNode("t3")
	g.Node(g.Entry).Kind = cfg.TermBranch
	g.Node(g.Entry).Cond = 0
	g.AddEdge(g.Entry, a)
	g.AddEdge(g.Entry, b1)
	g.AddEdge(b1, b2)
	g.AddEdge(b2, b3)
	g.AddEdge(a, m)
	g.AddEdge(b3, m)
	g.AddEdge(m, t1)
	g.AddEdge(t1, t2)
	g.AddEdge(t2, t3)
	g.AddEdge(t3, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPriorityWorklistMinimizesPops pins the scheduling upgrade: with
// the RPO priority worklist (and its pending-membership bitset) every
// node of an acyclic graph is popped exactly once per direction —
// predecessors always drain first, so no node is visited before its
// inputs are final. The FIFO worklist this replaced popped the merge
// node and its three-node tail twice on this same graph (the short arm
// delivers first, the tail transfers, then the long arm forces a
// re-pop): 15 pops forward where the priority ring needs 10.
func TestPriorityWorklistMinimizesPops(t *testing.T) {
	g := buildUnequalDiamond(t)
	for _, dir := range []struct {
		name     string
		backward bool
	}{{"forward", false}, {"backward", true}} {
		sol := Solve(g, &maxDistProblem{backward: dir.backward})
		reached := 0
		for _, r := range sol.Reached {
			if r {
				reached++
			}
		}
		if reached != g.NumNodes() {
			t.Fatalf("%s: reached %d of %d nodes", dir.name, reached, g.NumNodes())
		}
		if sol.Pops != reached {
			t.Errorf("%s: %d pops for %d reachable nodes, want exactly one pop per node",
				dir.name, sol.Pops, reached)
		}
		if sol.Iterations != sol.Pops {
			t.Errorf("%s: iterations %d != pops %d (dense pops all transfer)",
				dir.name, sol.Iterations, sol.Pops)
		}
	}
	// The longest-path facts confirm both arms were merged before the
	// tail transferred: the long arm entry->b1->b2->b3->m->t1->t2->t3
	// crosses 8 transfers before reaching exit.
	sol := Solve(g, &maxDistProblem{})
	if got := sol.In[g.Exit].(int); got != 8 {
		t.Errorf("longest path to exit = %d, want 8", got)
	}
}
