package dataflow

import (
	"math/bits"

	"pathflow/internal/cfg"
)

// PriorityRing is a worklist that always pops the pending node with the
// smallest priority, where priority is the node's position in a fixed
// visit order (reverse postorder for forward problems, reverse RPO for
// backward ones). Compared with the FIFO ring it replaces for
// non-widening problems, RPO popping drains a node's predecessors
// before the node itself whenever the pending set allows it, so join
// points on deep hot-path graphs see their incoming facts merged once
// instead of being re-transferred per arrival.
//
// The pending set is a bitset over priority slots with a running
// minimum-word hint, so Push and Pop are O(1) amortized and the whole
// structure is three flat slices — it allocates only at construction
// and both solver backends (boxed and packed) share it, which is what
// keeps their iteration counts in lockstep.
//
// The pending bitset doubles as the worklist's membership set: Push of
// an already-pending node is a no-op, so a node is never queued twice
// and every pop does real work.
type PriorityRing struct {
	pos     []int32  // pos[node] = priority slot
	nodeAt  []int32  // nodeAt[slot] = node
	pending []uint64 // bitset over priority slots
	minWord int      // no pending bit lives in a word below this one
	n       int      // pending count
}

// NewPriorityRing builds a ring for a graph of numNodes nodes visited
// in order (a DFS reverse postorder; reversed when reverse is true,
// the backward-problem orientation). Nodes absent from order — possible
// on graphs with vertices unreachable from the entry — sort after every
// ordered node, in ID order.
func NewPriorityRing(numNodes int, order []cfg.NodeID, reverse bool) *PriorityRing {
	r := &PriorityRing{
		pos:     make([]int32, numNodes),
		nodeAt:  make([]int32, numNodes),
		pending: make([]uint64, (numNodes+63)/64),
	}
	for i := range r.pos {
		r.pos[i] = -1
	}
	next := int32(0)
	place := func(n cfg.NodeID) {
		r.pos[n] = next
		r.nodeAt[next] = int32(n)
		next++
	}
	if reverse {
		for i := len(order) - 1; i >= 0; i-- {
			place(order[i])
		}
	} else {
		for _, n := range order {
			place(n)
		}
	}
	for id := 0; id < numNodes; id++ {
		if r.pos[id] < 0 {
			place(cfg.NodeID(id))
		}
	}
	r.minWord = len(r.pending)
	return r
}

// Reset empties the ring without allocating.
func (r *PriorityRing) Reset() {
	for i := range r.pending {
		r.pending[i] = 0
	}
	r.minWord = len(r.pending)
	r.n = 0
}

// Empty reports whether no node is pending.
func (r *PriorityRing) Empty() bool { return r.n == 0 }

// Push marks n pending and reports whether it was newly added (false
// when n is already waiting — the membership dedup).
func (r *PriorityRing) Push(n cfg.NodeID) bool {
	p := r.pos[n]
	w, b := int(p>>6), uint64(1)<<(uint32(p)&63)
	if r.pending[w]&b != 0 {
		return false
	}
	r.pending[w] |= b
	r.n++
	if w < r.minWord {
		r.minWord = w
	}
	return true
}

// Pop removes and returns the pending node with the smallest priority.
// It must not be called on an empty ring.
func (r *PriorityRing) Pop() cfg.NodeID {
	w := r.minWord
	for r.pending[w] == 0 {
		w++
	}
	word := r.pending[w]
	tz := bits.TrailingZeros64(word)
	r.pending[w] = word &^ (1 << uint(tz))
	r.minWord = w
	r.n--
	return cfg.NodeID(r.nodeAt[w*64+tz])
}
