// Package dataflow provides a generic monotone data-flow framework with
// an iterative worklist solver.
//
// The framework is deliberately edge-based: a problem's transfer function
// produces one fact per out-edge and may withhold a fact from an edge to
// mark it non-executable under current knowledge. That is exactly the
// shape of Wegman-Zadek conditional constant propagation (the client the
// paper evaluates), and it also accommodates ordinary problems, which
// simply emit the same fact on every out-edge.
//
// The solver is an optimistic chaotic iteration: facts start at ⊤
// (unreached) and only descend, so accumulating meets per node converges
// to the greatest fixpoint consistent with executable edges. It assumes
// nothing about reducibility — hot path graphs produced by tracing are
// irreducible (paper §4.1), which rules out elimination-style solvers.
//
// The framework is direction-polymorphic: a Problem may implement
// Directional to declare a Backward orientation (liveness-style
// problems). In backward mode the roles of edges flip — the transfer
// function produces one fact per IN-edge, facts propagate from a node to
// its predecessors, and iteration starts at the graph's exit. Everything
// else (optimistic ⊤ start, per-edge executability, Widener hooks, the
// narrowing passes, irreducibility tolerance) carries over unchanged.
//
// Three solver backends share this contract: the boxed reference path
// in this file (facts as interface values) and, under dataflow/kernel,
// the packed dense kernels and the sparse def-use-chain solver (facts
// as rows of preallocated arenas). The boxed path is the semantic
// reference; the dense kernels must reproduce its solutions — including
// iteration counts — exactly, while the sparse solver must match its
// facts, reachability, and edge executability but may (and does) spend
// fewer transfers getting there.
package dataflow

import "pathflow/internal/cfg"

// Direction is the orientation of a data-flow problem.
type Direction uint8

const (
	// Forward problems propagate facts from entry toward exit along
	// edges (constant propagation, available expressions).
	Forward Direction = iota
	// Backward problems propagate facts from exit toward entry against
	// edges (liveness, very-busy expressions).
	Backward
)

// String returns "forward" or "backward".
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Directional is optionally implemented by problems to declare their
// orientation. Problems that do not implement it are Forward.
type Directional interface {
	Direction() Direction
}

// DirectionOf reports the orientation of p (Forward unless p implements
// Directional and says otherwise).
func DirectionOf(p Problem) Direction {
	if d, ok := p.(Directional); ok {
		return d.Direction()
	}
	return Forward
}

// Kernel selects the fact representation a client analysis solves on.
// All backends compute identical facts (the differential oracle and
// FuzzKernelEquivalence enforce pointwise equality); they differ only
// in memory layout, propagation strategy, and speed.
type Kernel uint8

const (
	// KernelPacked solves on the allocation-free packed kernels
	// (dataflow/kernel): bitset or struct-of-arrays arenas sized once
	// per graph. The default.
	KernelPacked Kernel = iota
	// KernelBoxed solves on the boxed reference implementation in this
	// package (facts as interface values).
	KernelBoxed
	// KernelSparse solves on the packed arenas with sparse def-use
	// propagation (dataflow/kernel's sparse solver): facts travel only
	// along the chains the graph's defs and uses induce, and nodes
	// transparent to a change forward it without re-running their
	// transfer. Solutions are pointwise equal to the other backends'
	// but iteration counts legitimately differ (see
	// oracle.DifferentialFacts).
	KernelSparse
)

// String returns "packed", "boxed" or "sparse".
func (k Kernel) String() string {
	switch k {
	case KernelBoxed:
		return "boxed"
	case KernelSparse:
		return "sparse"
	}
	return "packed"
}

// Fact is an element of the problem's lattice. Facts must be treated as
// immutable: transfer functions receive a fact and must not modify it.
type Fact interface{}

// Problem defines a monotone data-flow problem (paper Definition 1).
//
// For Backward problems (see Directional) the orientation of every
// method flips: Entry returns the fact holding at the function's *exit*,
// Transfer receives the fact at node n's exit and fills one slot per
// IN-edge of n (in n's In-list order), and a nil slot marks that in-edge
// non-executable under the current fact.
type Problem interface {
	// Entry returns the fact holding at the function's entry (l_r) —
	// or, for Backward problems, at the function's exit.
	Entry() Fact
	// Meet combines two facts (the lattice ∧). Meet is only called with
	// non-nil facts.
	Meet(a, b Fact) Fact
	// Equal reports whether two facts are equal; used to detect
	// convergence.
	Equal(a, b Fact) bool
	// Transfer computes the facts leaving node n given the fact at its
	// entry. out has one slot per out-edge of n, in slot order; a slot
	// left nil marks that edge non-executable under in. Slots are
	// pre-initialized to nil. For Backward problems, in is the fact at
	// n's exit and out has one slot per in-edge of n.
	Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact)
}

// Widener is implemented by problems over lattices of unbounded height
// (e.g. intervals). After a node's incoming fact has changed
// WidenThreshold times, the solver combines with Widen instead of Meet;
// a correct Widen must guarantee that every chain
// old, Widen(old, x1), Widen(Widen(old, x1), x2), … stabilizes.
type Widener interface {
	Widen(old, new Fact) Fact
}

// WidenThreshold is the number of per-node fact changes after which the
// solver switches from Meet to Widen for widening problems. The small
// constant trades a little precision for fast convergence, as usual.
// Problems may override it via Tuner.
const WidenThreshold = 4

// NarrowingPasses is the number of decreasing re-iterations run after a
// widened solve converges: each pass recomputes every node's fact from
// its executable predecessors, recovering precision the widening
// overshot (bounds that a loop exit actually limits). Starting from a
// sound post-fixpoint, re-application of monotone transfers stays sound,
// and the fixed pass count bounds the work. Problems may override it via
// Tuner.
const NarrowingPasses = 2

// Tuner is optionally implemented by widening problems to override the
// package defaults for the widening threshold and narrowing pass count.
// Both solver backends (boxed and kernel) consult the same interface, so
// an override keeps the two paths pointwise equal.
type Tuner interface {
	// WidenThreshold returns the per-node change count after which the
	// solver widens instead of meeting. Negative values select the
	// package default.
	WidenThreshold() int
	// NarrowingPasses returns the number of decreasing re-iterations run
	// after convergence. Negative values select the package default; 0
	// disables narrowing.
	NarrowingPasses() int
}

// Tuning is a ready-made Tuner for embedding into problem structs: a nil
// *Tuning yields the package defaults, so `SomeProblem{Tuning: nil}`
// costs nothing until a caller opts in.
type Tuning struct {
	// Threshold overrides WidenThreshold (negative = default).
	Threshold int
	// Passes overrides NarrowingPasses (negative = default).
	Passes int
}

// WidenThreshold implements Tuner.
func (t *Tuning) WidenThreshold() int {
	if t == nil {
		return WidenThreshold
	}
	return t.Threshold
}

// NarrowingPasses implements Tuner.
func (t *Tuning) NarrowingPasses() int {
	if t == nil {
		return NarrowingPasses
	}
	return t.Passes
}

// TuningOf resolves the effective widening threshold and narrowing pass
// count for p: the Tuner override when implemented (negative fields fall
// back per-field), the package defaults otherwise.
func TuningOf(p any) (threshold, passes int) {
	threshold, passes = WidenThreshold, NarrowingPasses
	if t, ok := p.(Tuner); ok {
		if v := t.WidenThreshold(); v >= 0 {
			threshold = v
		}
		if v := t.NarrowingPasses(); v >= 0 {
			passes = v
		}
	}
	return threshold, passes
}

// Solution is the result of Solve.
type Solution struct {
	// In[n] is the fact at node n's entry — the meet over the facts
	// delivered by executable in-edges. nil if n was never reached.
	// For Backward problems, In[n] is the fact at node n's *exit* — the
	// meet over facts delivered by executable out-edges.
	In []Fact
	// Reached[n] reports whether the analysis found n executable (for
	// Backward problems: reachable against edges from the exit).
	Reached []bool
	// EdgeExecutable[e] reports whether edge e ever carried a fact.
	EdgeExecutable []bool
	// Iterations counts node transfers, a measure of analysis effort
	// (used by the paper's Figure 12-style analysis-time experiment).
	Iterations int
	// Pops counts fixpoint worklist pops. For the dense backends every
	// pop transfers, so Pops equals the worklist share of Iterations;
	// the sparse kernel also pops transparent nodes it forwards through
	// without transferring, so there Pops >= Iterations. Narrowing-pass
	// transfers count toward Iterations but not Pops.
	Pops int
	// Direction records the orientation the solution was computed in.
	Direction Direction
}

// Solve runs the worklist algorithm on g, dispatching on the problem's
// declared direction.
func Solve(g *cfg.Graph, p Problem) *Solution {
	s := newSolver(g, p)
	s.run()
	if s.widener != nil {
		s.narrow()
	}
	return s.sol
}

// solver owns all iteration state for one Solve: the worklist, the
// per-Transfer out-slot scratch, and the narrowing-pass arena.
// Non-widening problems iterate in reverse-postorder priority (a
// PriorityRing over the graph's RPO — reverse RPO for backward
// problems); widening problems keep the FIFO ring, because widening is
// order-sensitive and its trajectory is part of the cross-backend
// contract. Either way a node is enqueued at most once while pending,
// and everything is allocated once up front; the hot loop allocates
// nothing beyond what the problem's own Meet/Transfer allocate.
type solver struct {
	g   *cfg.Graph
	p   Problem
	dir Direction
	sol *Solution

	widener           Widener
	threshold, passes int

	ring         *PriorityRing // non-widening problems
	inQueue      []bool        // widening problems: FIFO membership …
	queue        []cfg.NodeID  // … and ring buffer, NumNodes+1 slots
	qhead, qtail int

	out []Fact // Transfer out-slot scratch, reused across iterations

	// Widening / narrowing state (nil unless p implements Widener).
	changes []int
	widenAt []bool
	dfs     *cfg.DFS
	// Narrowing-pass cache of recomputed out-facts, one slot per edge
	// (an edge belongs to exactly one node's slot list per direction),
	// with per-node validity — hoisted here so repeated passes reuse
	// the arena instead of reallocating per pass.
	outFacts []Fact
	outValid []bool
}

func newSolver(g *cfg.Graph, p Problem) *solver {
	s := &solver{
		g:   g,
		p:   p,
		dir: DirectionOf(p),
		sol: &Solution{
			In:             make([]Fact, g.NumNodes()),
			Reached:        make([]bool, g.NumNodes()),
			EdgeExecutable: make([]bool, g.NumEdges()),
		},
	}
	s.sol.Direction = s.dir
	s.widener, _ = p.(Widener)
	s.dfs = g.DepthFirst()
	if s.widener == nil {
		s.ring = NewPriorityRing(g.NumNodes(), s.dfs.RPOOrder, s.dir == Backward)
	} else {
		s.inQueue = make([]bool, g.NumNodes())
		s.queue = make([]cfg.NodeID, g.NumNodes()+1)
	}
	if s.widener != nil {
		s.threshold, s.passes = TuningOf(p)
		s.changes = make([]int, g.NumNodes())
		// Widen only at loop heads (targets of retreating edges):
		// widening elsewhere needlessly destroys precision that branch
		// refinement just established. In the backward orientation facts
		// cycle around a loop in the reverse direction, so the node that
		// accumulates repeated merges is the *source* of a retreating
		// edge (the latch), not its target. Every cycle contains a
		// retreating edge, so widening there still cuts every infinite
		// descent.
		s.widenAt = make([]bool, g.NumNodes())
		for e := range s.dfs.Retreating {
			if s.dir == Backward {
				s.widenAt[g.Edge(e).From] = true
			} else {
				s.widenAt[g.Edge(e).To] = true
			}
		}
	}
	return s
}

func (s *solver) push(n cfg.NodeID) {
	if s.ring != nil {
		s.ring.Push(n)
		return
	}
	if !s.inQueue[n] {
		s.inQueue[n] = true
		s.queue[s.qtail] = n
		s.qtail++
		if s.qtail == len(s.queue) {
			s.qtail = 0
		}
	}
}

func (s *solver) pop() cfg.NodeID {
	if s.ring != nil {
		return s.ring.Pop()
	}
	n := s.queue[s.qhead]
	s.qhead++
	if s.qhead == len(s.queue) {
		s.qhead = 0
	}
	s.inQueue[n] = false
	return n
}

func (s *solver) empty() bool {
	if s.ring != nil {
		return s.ring.Empty()
	}
	return s.qhead == s.qtail
}

// edgesOf returns the edges node facts leave through: out-edges forward,
// in-edges backward.
func (s *solver) edgesOf(nd *cfg.Node) []cfg.EdgeID {
	if s.dir == Backward {
		return nd.In
	}
	return nd.Out
}

// headOf returns the node a fact delivered along e is merged into.
func (s *solver) headOf(e *cfg.Edge) cfg.NodeID {
	if s.dir == Backward {
		return e.From
	}
	return e.To
}

// run is the chaotic worklist iteration, shared by both orientations:
// iteration starts at entry (exit backward) with p.Entry(), Transfer
// fills one slot per departing edge, and each delivered fact is merged
// into the node at the far end.
func (s *solver) run() {
	g, p, sol := s.g, s.p, s.sol
	start := g.Entry
	if s.dir == Backward {
		start = g.Exit
	}
	sol.In[start] = p.Entry()
	sol.Reached[start] = true
	s.push(start)

	for !s.empty() {
		n := s.pop()
		sol.Iterations++
		sol.Pops++

		nd := g.Node(n)
		edges := s.edgesOf(nd)
		if cap(s.out) < len(edges) {
			s.out = make([]Fact, len(edges))
		}
		out := s.out[:len(edges)]
		for i := range out {
			out[i] = nil
		}
		p.Transfer(g, n, sol.In[n], out)
		for slot, f := range out {
			if f == nil {
				continue
			}
			eid := edges[slot]
			sol.EdgeExecutable[eid] = true
			to := s.headOf(g.Edge(eid))
			if !sol.Reached[to] {
				sol.Reached[to] = true
				sol.In[to] = f
				s.push(to)
				continue
			}
			merged := p.Meet(sol.In[to], f)
			if !p.Equal(merged, sol.In[to]) {
				if s.widener != nil && s.widenAt[to] {
					s.changes[to]++
					if s.changes[to] > s.threshold {
						merged = s.widener.Widen(sol.In[to], merged)
					}
				}
				sol.In[to] = merged
				s.push(to)
			}
		}
	}
}

// recomputeOuts refreshes the narrowing arena's out-facts for node n:
// one Transfer into the shared scratch, then one arena slot per edge
// (nil marks a withheld fact).
func (s *solver) recomputeOuts(n cfg.NodeID) {
	nd := s.g.Node(n)
	edges := s.edgesOf(nd)
	if cap(s.out) < len(edges) {
		s.out = make([]Fact, len(edges))
	}
	out := s.out[:len(edges)]
	for i := range out {
		out[i] = nil
	}
	s.p.Transfer(s.g, n, s.sol.In[n], out)
	for i, eid := range edges {
		s.outFacts[eid] = out[i]
	}
	s.outValid[n] = true
}

// narrow runs the configured number of decreasing re-iterations over the
// reached nodes in reverse postorder (reverse RPO backward, i.e.
// approximately exit-first), replacing (not accumulating) each node's
// fact with the meet over the facts its executable neighbors currently
// deliver along the connecting edges. Out-facts are cached lazily per
// node and invalidated when the node's own fact narrows.
func (s *solver) narrow() {
	g, p, sol := s.g, s.p, s.sol
	if s.passes > 0 && s.outFacts == nil {
		s.outFacts = make([]Fact, g.NumEdges())
		s.outValid = make([]bool, g.NumNodes())
	}
	stop := g.Entry
	if s.dir == Backward {
		stop = g.Exit
	}
	order := s.dfs.RPOOrder
	for pass := 0; pass < s.passes; pass++ {
		for i := range s.outValid {
			s.outValid[i] = false
		}
		for idx := range order {
			n := order[idx]
			if s.dir == Backward {
				n = order[len(order)-1-idx]
			}
			if n == stop || !sol.Reached[n] {
				continue
			}
			sol.Iterations++
			var acc Fact
			nd := g.Node(n)
			arrivals := nd.In
			if s.dir == Backward {
				arrivals = nd.Out
			}
			for _, eid := range arrivals {
				e := g.Edge(eid)
				src := e.From
				if s.dir == Backward {
					src = e.To
				}
				if !sol.Reached[src] {
					continue
				}
				if !s.outValid[src] {
					s.recomputeOuts(src)
				}
				f := s.outFacts[eid]
				if f == nil {
					continue
				}
				if acc == nil {
					acc = f
				} else {
					acc = p.Meet(acc, f)
				}
			}
			if acc != nil && !p.Equal(acc, sol.In[n]) {
				sol.In[n] = acc
				// The node's own cached outs are stale now.
				s.outValid[n] = false
			}
		}
	}
}
