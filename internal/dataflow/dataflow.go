// Package dataflow provides a generic monotone data-flow framework with
// an iterative worklist solver.
//
// The framework is deliberately edge-based: a problem's transfer function
// produces one fact per out-edge and may withhold a fact from an edge to
// mark it non-executable under current knowledge. That is exactly the
// shape of Wegman-Zadek conditional constant propagation (the client the
// paper evaluates), and it also accommodates ordinary problems, which
// simply emit the same fact on every out-edge.
//
// The solver is an optimistic chaotic iteration: facts start at ⊤
// (unreached) and only descend, so accumulating meets per node converges
// to the greatest fixpoint consistent with executable edges. It assumes
// nothing about reducibility — hot path graphs produced by tracing are
// irreducible (paper §4.1), which rules out elimination-style solvers.
//
// The framework is direction-polymorphic: a Problem may implement
// Directional to declare a Backward orientation (liveness-style
// problems). In backward mode the roles of edges flip — the transfer
// function produces one fact per IN-edge, facts propagate from a node to
// its predecessors, and iteration starts at the graph's exit. Everything
// else (optimistic ⊤ start, per-edge executability, Widener hooks, the
// narrowing passes, irreducibility tolerance) carries over unchanged.
package dataflow

import "pathflow/internal/cfg"

// Direction is the orientation of a data-flow problem.
type Direction uint8

const (
	// Forward problems propagate facts from entry toward exit along
	// edges (constant propagation, available expressions).
	Forward Direction = iota
	// Backward problems propagate facts from exit toward entry against
	// edges (liveness, very-busy expressions).
	Backward
)

// String returns "forward" or "backward".
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Directional is optionally implemented by problems to declare their
// orientation. Problems that do not implement it are Forward.
type Directional interface {
	Direction() Direction
}

// DirectionOf reports the orientation of p (Forward unless p implements
// Directional and says otherwise).
func DirectionOf(p Problem) Direction {
	if d, ok := p.(Directional); ok {
		return d.Direction()
	}
	return Forward
}

// Fact is an element of the problem's lattice. Facts must be treated as
// immutable: transfer functions receive a fact and must not modify it.
type Fact interface{}

// Problem defines a monotone data-flow problem (paper Definition 1).
//
// For Backward problems (see Directional) the orientation of every
// method flips: Entry returns the fact holding at the function's *exit*,
// Transfer receives the fact at node n's exit and fills one slot per
// IN-edge of n (in n's In-list order), and a nil slot marks that in-edge
// non-executable under the current fact.
type Problem interface {
	// Entry returns the fact holding at the function's entry (l_r) —
	// or, for Backward problems, at the function's exit.
	Entry() Fact
	// Meet combines two facts (the lattice ∧). Meet is only called with
	// non-nil facts.
	Meet(a, b Fact) Fact
	// Equal reports whether two facts are equal; used to detect
	// convergence.
	Equal(a, b Fact) bool
	// Transfer computes the facts leaving node n given the fact at its
	// entry. out has one slot per out-edge of n, in slot order; a slot
	// left nil marks that edge non-executable under in. Slots are
	// pre-initialized to nil. For Backward problems, in is the fact at
	// n's exit and out has one slot per in-edge of n.
	Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact)
}

// Widener is implemented by problems over lattices of unbounded height
// (e.g. intervals). After a node's incoming fact has changed
// WidenThreshold times, the solver combines with Widen instead of Meet;
// a correct Widen must guarantee that every chain
// old, Widen(old, x1), Widen(Widen(old, x1), x2), … stabilizes.
type Widener interface {
	Widen(old, new Fact) Fact
}

// WidenThreshold is the number of per-node fact changes after which the
// solver switches from Meet to Widen for widening problems. The small
// constant trades a little precision for fast convergence, as usual.
const WidenThreshold = 4

// NarrowingPasses is the number of decreasing re-iterations run after a
// widened solve converges: each pass recomputes every node's fact from
// its executable predecessors, recovering precision the widening
// overshot (bounds that a loop exit actually limits). Starting from a
// sound post-fixpoint, re-application of monotone transfers stays sound,
// and the fixed pass count bounds the work.
const NarrowingPasses = 2

// Solution is the result of Solve.
type Solution struct {
	// In[n] is the fact at node n's entry — the meet over the facts
	// delivered by executable in-edges. nil if n was never reached.
	// For Backward problems, In[n] is the fact at node n's *exit* — the
	// meet over facts delivered by executable out-edges.
	In []Fact
	// Reached[n] reports whether the analysis found n executable (for
	// Backward problems: reachable against edges from the exit).
	Reached []bool
	// EdgeExecutable[e] reports whether edge e ever carried a fact.
	EdgeExecutable []bool
	// Iterations counts node transfers, a measure of analysis effort
	// (used by the paper's Figure 12-style analysis-time experiment).
	Iterations int
	// Direction records the orientation the solution was computed in.
	Direction Direction
}

// Solve runs the worklist algorithm on g, dispatching on the problem's
// declared direction.
func Solve(g *cfg.Graph, p Problem) *Solution {
	if DirectionOf(p) == Backward {
		return solveBackward(g, p)
	}
	return solveForward(g, p)
}

func solveForward(g *cfg.Graph, p Problem) *Solution {
	sol := &Solution{
		In:             make([]Fact, g.NumNodes()),
		Reached:        make([]bool, g.NumNodes()),
		EdgeExecutable: make([]bool, g.NumEdges()),
	}
	inQueue := make([]bool, g.NumNodes())
	queue := make([]cfg.NodeID, 0, g.NumNodes())
	push := func(n cfg.NodeID) {
		if !inQueue[n] {
			inQueue[n] = true
			queue = append(queue, n)
		}
	}
	widener, _ := p.(Widener)
	var changes []int
	var widenAt []bool
	if widener != nil {
		changes = make([]int, g.NumNodes())
		// Widen only at loop heads (targets of retreating edges):
		// widening elsewhere needlessly destroys precision that
		// branch refinement just established.
		widenAt = make([]bool, g.NumNodes())
		dfs := g.DepthFirst()
		for e := range dfs.Retreating {
			widenAt[g.Edge(e).To] = true
		}
	}

	sol.In[g.Entry] = p.Entry()
	sol.Reached[g.Entry] = true
	push(g.Entry)

	var out []Fact
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		sol.Iterations++

		nd := g.Node(n)
		if cap(out) < len(nd.Out) {
			out = make([]Fact, len(nd.Out))
		}
		out = out[:len(nd.Out)]
		for i := range out {
			out[i] = nil
		}
		p.Transfer(g, n, sol.In[n], out)
		for slot, f := range out {
			if f == nil {
				continue
			}
			eid := nd.Out[slot]
			sol.EdgeExecutable[eid] = true
			to := g.Edge(eid).To
			if !sol.Reached[to] {
				sol.Reached[to] = true
				sol.In[to] = f
				push(to)
				continue
			}
			merged := p.Meet(sol.In[to], f)
			if !p.Equal(merged, sol.In[to]) {
				if widener != nil && widenAt[to] {
					changes[to]++
					if changes[to] > WidenThreshold {
						merged = widener.Widen(sol.In[to], merged)
					}
				}
				sol.In[to] = merged
				push(to)
			}
		}
	}
	if widener != nil {
		narrow(g, p, sol)
	}
	return sol
}

// narrow runs NarrowingPasses decreasing re-iterations over the reached
// nodes in reverse postorder, replacing (not accumulating) each node's
// fact with the meet over its executable predecessors' current outputs.
func narrow(g *cfg.Graph, p Problem, sol *Solution) {
	dfs := g.DepthFirst()
	for pass := 0; pass < NarrowingPasses; pass++ {
		// Per-pass cache of recomputed out-facts per node.
		outs := make([][]Fact, g.NumNodes())
		outsOf := func(n cfg.NodeID) []Fact {
			if outs[n] == nil {
				nd := g.Node(n)
				o := make([]Fact, len(nd.Out))
				p.Transfer(g, n, sol.In[n], o)
				outs[n] = o
			}
			return outs[n]
		}
		for _, n := range dfs.RPOOrder {
			if n == g.Entry || !sol.Reached[n] {
				continue
			}
			sol.Iterations++
			var acc Fact
			for _, eid := range g.Node(n).In {
				e := g.Edge(eid)
				if !sol.Reached[e.From] {
					continue
				}
				f := outsOf(e.From)[e.Slot]
				if f == nil {
					continue
				}
				if acc == nil {
					acc = f
				} else {
					acc = p.Meet(acc, f)
				}
			}
			if acc != nil && !p.Equal(acc, sol.In[n]) {
				sol.In[n] = acc
				// The node's own cached outs are stale now.
				outs[n] = nil
			}
		}
	}
}

// solveBackward is the mirror image of solveForward: iteration starts at
// g.Exit with p.Entry(), Transfer fills one slot per in-edge, and each
// delivered fact is merged into the *source* node of that edge. The
// chaotic worklist makes no reducibility assumption, so the solver is
// safe on hot path graphs, whose backward structure is as irreducible as
// their forward one.
func solveBackward(g *cfg.Graph, p Problem) *Solution {
	sol := &Solution{
		In:             make([]Fact, g.NumNodes()),
		Reached:        make([]bool, g.NumNodes()),
		EdgeExecutable: make([]bool, g.NumEdges()),
		Direction:      Backward,
	}
	inQueue := make([]bool, g.NumNodes())
	queue := make([]cfg.NodeID, 0, g.NumNodes())
	push := func(n cfg.NodeID) {
		if !inQueue[n] {
			inQueue[n] = true
			queue = append(queue, n)
		}
	}
	widener, _ := p.(Widener)
	var changes []int
	var widenAt []bool
	if widener != nil {
		changes = make([]int, g.NumNodes())
		// In the backward orientation facts cycle around a loop in the
		// reverse direction, so the node that accumulates repeated
		// merges is the *source* of a retreating edge (the latch), not
		// its target. Every cycle contains a retreating edge, so
		// widening there still cuts every infinite descent.
		widenAt = make([]bool, g.NumNodes())
		dfs := g.DepthFirst()
		for e := range dfs.Retreating {
			widenAt[g.Edge(e).From] = true
		}
	}

	sol.In[g.Exit] = p.Entry()
	sol.Reached[g.Exit] = true
	push(g.Exit)

	var out []Fact
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		sol.Iterations++

		nd := g.Node(n)
		if cap(out) < len(nd.In) {
			out = make([]Fact, len(nd.In))
		}
		out = out[:len(nd.In)]
		for i := range out {
			out[i] = nil
		}
		p.Transfer(g, n, sol.In[n], out)
		for slot, f := range out {
			if f == nil {
				continue
			}
			eid := nd.In[slot]
			sol.EdgeExecutable[eid] = true
			from := g.Edge(eid).From
			if !sol.Reached[from] {
				sol.Reached[from] = true
				sol.In[from] = f
				push(from)
				continue
			}
			merged := p.Meet(sol.In[from], f)
			if !p.Equal(merged, sol.In[from]) {
				if widener != nil && widenAt[from] {
					changes[from]++
					if changes[from] > WidenThreshold {
						merged = widener.Widen(sol.In[from], merged)
					}
				}
				sol.In[from] = merged
				push(from)
			}
		}
	}
	if widener != nil {
		narrowBackward(g, p, sol)
	}
	return sol
}

// narrowBackward runs NarrowingPasses decreasing re-iterations over the
// reached nodes in *reverse* reverse-postorder (approximately exit-first
// order), replacing each node's fact with the meet over the facts its
// executable successors currently deliver along the connecting edges.
func narrowBackward(g *cfg.Graph, p Problem, sol *Solution) {
	dfs := g.DepthFirst()
	// inSlot[e] is edge e's index within its target's In list — the slot
	// the target's backward transfer writes for e.
	inSlot := make([]int, g.NumEdges())
	for n := 0; n < g.NumNodes(); n++ {
		for i, eid := range g.Node(cfg.NodeID(n)).In {
			inSlot[eid] = i
		}
	}
	for pass := 0; pass < NarrowingPasses; pass++ {
		outs := make([][]Fact, g.NumNodes())
		outsOf := func(n cfg.NodeID) []Fact {
			if outs[n] == nil {
				nd := g.Node(n)
				o := make([]Fact, len(nd.In))
				p.Transfer(g, n, sol.In[n], o)
				outs[n] = o
			}
			return outs[n]
		}
		for i := len(dfs.RPOOrder) - 1; i >= 0; i-- {
			n := dfs.RPOOrder[i]
			if n == g.Exit || !sol.Reached[n] {
				continue
			}
			sol.Iterations++
			var acc Fact
			for _, eid := range g.Node(n).Out {
				e := g.Edge(eid)
				if !sol.Reached[e.To] {
					continue
				}
				f := outsOf(e.To)[inSlot[eid]]
				if f == nil {
					continue
				}
				if acc == nil {
					acc = f
				} else {
					acc = p.Meet(acc, f)
				}
			}
			if acc != nil && !p.Equal(acc, sol.In[n]) {
				sol.In[n] = acc
				outs[n] = nil
			}
		}
	}
}
