package kernel

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
)

// This file adds the sparse backend behind dataflow.KernelSparse: a
// def-use-chain solver over the same packed arenas the dense kernels
// use. The dense solver floods every cell of every row on every
// delivery; on hot path graphs, duplication multiplies vertices exactly
// where most variables are untouched, so almost all of that flooding
// re-merges values that cannot have changed. The sparse solver keeps,
// per node, a bitset of *dirty* cells — cells of its row that changed
// since its transfer last ran — and propagates only those:
//
//   - Deliveries are masked meets. After a transfer of n, the facts n
//     sends differ from what its edges last carried only at the cells n
//     defines plus the cells of n's input that changed, so the meet into
//     each head touches just that mask. The first delivery along an edge
//     is a full meet (nothing has been delivered yet).
//
//   - Transparent nodes are pass-through. When a popped node's dirty
//     cells miss every cell its transfer reads, the transfer's outputs
//     cannot change: it would mark the same edges executable, emit the
//     same values at its def cells, and copy its input through
//     everywhere else. So the solver forwards the dirty cells minus the
//     node's defs along the edges the node already feeds and skips the
//     transfer entirely. This is the def-use chain in both directions:
//     a changed cell rides from its def site through every transparent
//     node straight to its next uses, and dies at the first node that
//     redefines it without reading it (the new def kills the old one's
//     reach). Gen/kill domains read nothing — their def-cell outputs
//     are constants of the block — so after their first transfer every
//     node is transparent and the whole fixpoint runs on masked copies.
//
// The per-node def/use masks are the chains, built once per
// (graph, domain) by NewSparseSolver and cached with the arenas; Run
// stays allocation-free. Non-widening problems iterate in RPO priority
// like the dense kernels; widening problems (intervals) keep the FIFO
// schedule with full transfers and masked deliveries only, which
// reproduces the dense trajectory — and therefore its facts — exactly
// (widening is order-sensitive, so the schedule is part of the answer).
// For non-widening problems the fixpoint is order-independent, so facts,
// reachability, and edge executability match the dense backends
// pointwise while transfer counts legitimately drop; the facts-only
// differential (oracle.DifferentialFacts) is the correctness gate.
type SparseDomain interface {
	Domain
	// Cells returns the number of lattice cells per row — the width the
	// def/use masks and dirty sets are sized to.
	Cells() int
	// Chain records node n's def-use footprint into two caller-zeroed
	// bitsets over cells: defs gets every cell Transfer(n) may write
	// with a value different from its input (instruction destinations,
	// gen/kill bits, branch-refinement targets); uses gets every cell it
	// reads (instruction operands, branch conditions) — including cells
	// it also defines, since a transfer that reads x before redefining
	// it still depends on x's input value. The contract the sparse
	// solver relies on: the fact leaving any edge equals the input at
	// every cell outside defs, and both the def-cell outputs and the
	// executable-edge choice depend only on input cells in uses. A
	// gen/kill domain whose def-cell outputs are block constants
	// therefore reports empty uses. Masks must over-approximate —
	// missing a cell is unsound, extra cells only cost sharpness.
	// Transfer's edge choice must also be monotone: as the input
	// descends, an edge once marked executable stays marked (true of
	// Wegman-Zadek dispatch, where conditions only descend
	// ⊤ → const → ⊥).
	Chain(n cfg.NodeID, defs, uses []uint64)
	// MeetMasked folds the masked cells of row src into row dst, records
	// every cell it changes in dirty, and reports whether dst changed.
	// Cells outside mask must be left alone (as if src held ⊤ there).
	// Equivalent to Meet when mask covers every cell.
	MeetMasked(dst, src int, mask, dirty []uint64) bool
}

// sparse is the chain and delta state hanging off a Solver built by
// NewSparseSolver. The chains (defs, uses) are graph structure and
// survive across Runs; dirty and transferred are per-Run iteration
// state.
type sparse struct {
	sd SparseDomain
	cw int // words per cell bitset

	defs        []uint64 // N×cw: cells each node's transfer defines
	uses        []uint64 // N×cw: cells each node's transfer reads
	dirty       []uint64 // N×cw: cells changed since the node last ran
	mask        []uint64 // cw scratch: dirty ∪ defs during delivery
	full        []uint64 // cw all-ones (first deliveries, seed nodes)
	transferred []bool   // node has run its transfer at least once
}

func (sp *sparse) row(a []uint64, n cfg.NodeID) []uint64 {
	o := int(n) * sp.cw
	return a[o : o+sp.cw : o+sp.cw]
}

func (sp *sparse) reset() {
	for i := range sp.dirty {
		sp.dirty[i] = 0
	}
	for i := range sp.transferred {
		sp.transferred[i] = false
	}
}

func disjointWords(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return false
		}
	}
	return true
}

func clearWords(a []uint64) {
	for i := range a {
		a[i] = 0
	}
}

// NewSparseSolver sizes d's arena for g, builds the def-use chains, and
// preallocates all solver state. Run re-solves sparsely any number of
// times without allocating.
func NewSparseSolver(g *cfg.Graph, d SparseDomain) *Solver {
	s := NewSolver(g, d)
	n := g.NumNodes()
	cw := (d.Cells() + 63) / 64
	sp := &sparse{
		sd:          d,
		cw:          cw,
		defs:        make([]uint64, n*cw),
		uses:        make([]uint64, n*cw),
		dirty:       make([]uint64, n*cw),
		mask:        make([]uint64, cw),
		full:        make([]uint64, cw),
		transferred: make([]bool, n),
	}
	for i := range sp.full {
		sp.full[i] = ^uint64(0)
	}
	for id := 0; id < n; id++ {
		d.Chain(cfg.NodeID(id), sp.row(sp.defs, cfg.NodeID(id)), sp.row(sp.uses, cfg.NodeID(id)))
	}
	s.sp = sp
	return s
}

// runSparse is the sparse counterpart of the dense loop in Run; the
// solver state has already been reset. Pops counts every worklist pop,
// Iterations only the pops that ran a transfer — the dense-comparable
// effort metric.
func (s *Solver) runSparse() {
	g, sp := s.g, s.sp
	d := sp.sd
	start := g.Entry
	if s.dir == dataflow.Backward {
		start = g.Exit
	}
	d.Boundary(int(start))
	s.Reached[start] = true
	copy(sp.row(sp.dirty, start), sp.full)
	s.push(start)
	widening := s.wd != nil

	for !s.empty() {
		n := s.pop()
		s.Pops++
		dn := sp.row(sp.dirty, n)
		nd := g.Node(n)
		edges := nd.Out
		if s.dir == dataflow.Backward {
			edges = nd.In
		}

		if !widening && sp.transferred[n] && disjointWords(dn, sp.row(sp.uses, n)) {
			// n reads none of the changed cells: its transfer would mark
			// the same edges and emit the same def-cell values, so skip
			// it. Changed cells n redefines die here — the new def kills
			// their reach — and the rest copy through, so forward
			// dirty−defs along the edges n already feeds.
			fwd := sp.mask
			var rest uint64
			for i, dw := range sp.row(sp.defs, n) {
				fwd[i] = dn[i] &^ dw
				rest |= fwd[i]
			}
			if rest != 0 {
				for _, eid := range edges {
					if !s.EdgeExecutable[eid] {
						continue
					}
					e := g.Edge(eid)
					to := e.To
					if s.dir == dataflow.Backward {
						to = e.From
					}
					if d.MeetMasked(int(to), int(n), fwd, sp.row(sp.dirty, to)) {
						s.push(to)
					}
				}
			}
			clearWords(dn)
			continue
		}

		s.Iterations++
		sl := s.slots[:len(edges)]
		for i := range sl {
			sl[i] = -1
		}
		d.Transfer(n, int(n), s.scratch, sl)
		// The facts leaving n can differ from what its edges last
		// carried only at the cells n defines plus the input cells that
		// changed since the last transfer.
		defs := sp.row(sp.defs, n)
		for i := range sp.mask {
			sp.mask[i] = dn[i] | defs[i]
		}
		for slot, sub := range sl {
			if sub < 0 {
				continue
			}
			eid := edges[slot]
			first := !s.EdgeExecutable[eid]
			s.EdgeExecutable[eid] = true
			e := g.Edge(eid)
			to := e.To
			if s.dir == dataflow.Backward {
				to = e.From
			}
			src := s.scratch + int(sub)
			if !s.Reached[to] {
				s.Reached[to] = true
				d.Copy(int(to), src)
				copy(sp.row(sp.dirty, to), sp.full)
				s.push(to)
				continue
			}
			m := sp.mask
			if first {
				m = sp.full // nothing delivered along this edge yet
			}
			dto := sp.row(sp.dirty, to)
			if widening && s.widenAt[to] {
				d.Copy(s.spare, int(to))
				if d.MeetMasked(int(to), src, m, dto) {
					s.changes[to]++
					if int(s.changes[to]) > s.threshold {
						s.wd.WidenInto(s.spare, int(to))
					}
					s.push(to)
				}
			} else if d.MeetMasked(int(to), src, m, dto) {
				s.push(to)
			}
		}
		clearWords(dn)
		sp.transferred[n] = true
	}
	if s.wd != nil {
		s.narrow()
	}
}
