package kernel

// Interner assigns dense small-integer IDs to values of a comparable
// key type, in first-seen order. Packed domains address their arenas by
// these IDs: registers are already dense, but derived entities
// (canonical expressions, value tokens) need a per-function numbering
// before they can live in a bitset or SoA row.
type Interner[K comparable] struct {
	ids  map[K]int32
	keys []K
}

// NewInterner returns an empty interner.
func NewInterner[K comparable]() *Interner[K] {
	return &Interner[K]{ids: make(map[K]int32)}
}

// Intern returns k's ID, assigning the next dense ID on first sight.
func (it *Interner[K]) Intern(k K) int {
	if id, ok := it.ids[k]; ok {
		return int(id)
	}
	id := int32(len(it.keys))
	it.ids[k] = id
	it.keys = append(it.keys, k)
	return int(id)
}

// Lookup returns k's ID, or -1 if k was never interned.
func (it *Interner[K]) Lookup(k K) int {
	if id, ok := it.ids[k]; ok {
		return int(id)
	}
	return -1
}

// Len returns the number of interned keys.
func (it *Interner[K]) Len() int { return len(it.keys) }

// Key returns the key with ID id.
func (it *Interner[K]) Key(id int) K { return it.keys[id] }
