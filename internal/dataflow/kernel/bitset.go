package kernel

// Bits is a packed bitset arena: rows of fixed width Words 64-bit
// words, stored contiguously. Set-lattice domains (liveness, available
// expressions) keep every fact as one row; union and intersection are
// straight word loops over the backing slice.
type Bits struct {
	Words int
	w     []uint64
}

// NewBits returns an arena whose rows hold nbits bits each.
func NewBits(nbits int) *Bits { return &Bits{Words: (nbits + 63) / 64} }

// Grow ensures the arena holds at least rows rows.
func (b *Bits) Grow(rows int) {
	if need := rows * b.Words; len(b.w) < need {
		b.w = make([]uint64, need)
	}
}

// Row returns row r's words.
func (b *Bits) Row(r int) []uint64 {
	o := r * b.Words
	return b.w[o : o+b.Words : o+b.Words]
}

// Clear zeroes row r.
func (b *Bits) Clear(r int) {
	row := b.Row(r)
	for i := range row {
		row[i] = 0
	}
}

// Copy overwrites row dst with row src.
func (b *Bits) Copy(dst, src int) {
	copy(b.Row(dst), b.Row(src))
}

// Or unions row src into row dst and reports change.
func (b *Bits) Or(dst, src int) bool {
	d, s := b.Row(dst), b.Row(src)
	changed := false
	for i := range d {
		if n := d[i] | s[i]; n != d[i] {
			d[i] = n
			changed = true
		}
	}
	return changed
}

// And intersects row src into row dst and reports change.
func (b *Bits) And(dst, src int) bool {
	d, s := b.Row(dst), b.Row(src)
	changed := false
	for i := range d {
		if n := d[i] & s[i]; n != d[i] {
			d[i] = n
			changed = true
		}
	}
	return changed
}

// Equal reports whether rows a and b hold the same bits.
func (b *Bits) Equal(x, y int) bool {
	a, c := b.Row(x), b.Row(y)
	for i := range a {
		if a[i] != c[i] {
			return false
		}
	}
	return true
}

// Set sets bit i of row r.
func (b *Bits) Set(r, i int) { b.w[r*b.Words+i/64] |= 1 << (uint(i) % 64) }

// Unset clears bit i of row r.
func (b *Bits) Unset(r, i int) { b.w[r*b.Words+i/64] &^= 1 << (uint(i) % 64) }

// AndNot clears every bit of row r that is set in mask (a kill mask of
// row width).
func (b *Bits) AndNot(r int, mask []uint64) {
	row := b.Row(r)
	for i := range row {
		row[i] &^= mask[i]
	}
}

// OrMasked unions the masked bits of row src into row dst, records the
// bits that flipped in dirty, and reports change. Bits of src outside
// mask are ignored — the sparse solver's delta delivery, where mask
// covers every cell that may differ from what the edge last carried.
func (b *Bits) OrMasked(dst, src int, mask, dirty []uint64) bool {
	d, s := b.Row(dst), b.Row(src)
	changed := false
	for i := range d {
		if diff := (d[i] | (s[i] & mask[i])) ^ d[i]; diff != 0 {
			d[i] |= diff
			dirty[i] |= diff
			changed = true
		}
	}
	return changed
}

// AndMasked intersects the masked bits of row src into row dst (bits
// outside mask are treated as set, i.e. "no information"), records the
// bits that flipped in dirty, and reports change.
func (b *Bits) AndMasked(dst, src int, mask, dirty []uint64) bool {
	d, s := b.Row(dst), b.Row(src)
	changed := false
	for i := range d {
		if diff := (d[i] & (s[i] | ^mask[i])) ^ d[i]; diff != 0 {
			d[i] &^= diff
			dirty[i] |= diff
			changed = true
		}
	}
	return changed
}
