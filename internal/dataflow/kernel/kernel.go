// Package kernel provides allocation-free data-flow solving over packed
// fact arenas — the fast backend behind dataflow.KernelPacked.
//
// The boxed framework in package dataflow models a fact as an interface
// value; every Meet and Transfer allocates, and on hot path graphs that
// grow >50x over the CFG the allocator dominates the analyze stage. The
// kernel layer replaces the representation, not the algorithm: a Domain
// stores every fact as a row of a preallocated arena (packed []uint64
// words for set lattices, parallel struct-of-arrays slices for value
// lattices), identified by a dense small integer. The solver then runs
// the exact same chaotic worklist discipline as dataflow.Solve — same
// worklist order (RPO priority for non-widening problems, FIFO for
// widening ones), same widening/narrowing schedule, same iteration
// counts — but every lattice operation is an in-place loop over
// primitive slices.
// Solutions are bit-for-bit equal to the boxed reference's (the
// differential oracle and FuzzKernelEquivalence enforce this), which is
// what lets golden metrics stay byte-identical while the representation
// underneath changes completely.
//
// Row layout for a graph of N nodes and E edges:
//
//	rows [0, N)          per-node facts (row n holds node n's fact)
//	rows N, N+1, N+2     Transfer scratch (slot outputs)
//	row  N+3             solver spare (widening save / narrowing meet)
//	rows [N+4, N+4+E)    narrowing out-fact cache (widening domains only)
//
// A Solver is built once per graph and can Run repeatedly with zero
// allocations — the property the BenchmarkAnalyzeKernels allocs gate in
// ci.sh locks down.
package kernel

import (
	"fmt"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
)

// Domain is the packed counterpart of dataflow.Problem: a lattice whose
// facts live in rows of a domain-owned arena. All methods take row
// indices; none may allocate after Grow has sized the arena.
type Domain interface {
	// Direction declares the problem's orientation.
	Direction() dataflow.Direction
	// Grow ensures the arena holds at least rows rows. Called once by
	// NewSolver with the total row budget; existing contents need not
	// survive.
	Grow(rows int)
	// Boundary writes the entry fact (exit fact for backward domains)
	// into row dst.
	Boundary(dst int)
	// Transfer computes the facts leaving node n given its fact in row
	// in. slots has one entry per departing edge (out-edges forward,
	// in-edges backward, in slot order), pre-initialized to -1; the
	// domain marks edge i executable by setting slots[i] to a scratch
	// sub-row index in [0, 3), meaning the fact for that edge is in row
	// scratch+slots[i]. Entries left -1 withhold the edge (the boxed
	// path's nil slot). Distinct slots may share a scratch sub-row when
	// they carry the same fact.
	Transfer(n cfg.NodeID, in, scratch int, slots []int8)
	// Copy overwrites row dst with row src.
	Copy(dst, src int)
	// Meet folds row src into row dst (dst = dst ∧ src) and reports
	// whether dst changed, under the same equality the boxed path's
	// Equal would use.
	Meet(dst, src int) bool
	// Equal reports whether two rows hold equal facts.
	Equal(a, b int) bool
}

// WidenDomain is implemented by packed domains over lattices of
// unbounded height (intervals). The solver widens at loop heads after
// the tuned threshold and runs the tuned narrowing passes, mirroring
// the boxed Widener path.
type WidenDomain interface {
	Domain
	// WidenInto extrapolates: row merged = ∇(row old, row merged).
	WidenInto(old, merged int)
	// Tune returns the widening threshold and narrowing pass count
	// (dataflow.TuningOf of the underlying problem).
	Tune() (widenThreshold, narrowingPasses int)
}

// Solver runs the worklist algorithm for one (graph, domain) pair. All
// iteration state is preallocated by NewSolver; Run may be called any
// number of times (each call re-solves from scratch) without
// allocating.
type Solver struct {
	g   *cfg.Graph
	d   Domain
	wd  WidenDomain // non-nil iff d widens
	dir dataflow.Direction

	// Reached[n] reports whether the analysis found n executable;
	// EdgeExecutable[e] whether edge e ever carried a fact; Iterations
	// counts node transfers. All three match the boxed Solution fields
	// exactly. Valid after Run.
	Reached        []bool
	EdgeExecutable []bool
	Iterations     int

	ring         *dataflow.PriorityRing // non-widening problems
	inQueue      []bool                 // widening problems: FIFO membership …
	queue        []int32                // … and ring buffer, NumNodes+1 slots
	qhead, qtail int
	slots        []int8 // Transfer slot scratch, sized to max degree

	// Pops counts worklist pops. For the dense solver Pops equals
	// Iterations (every pop runs one transfer); the sparse solver keeps
	// the two apart, because pass-through pops forward a delta without
	// re-running the node's transfer.
	Pops int

	sp *sparse // non-nil for solvers built by NewSparseSolver

	scratch int // first Transfer scratch row
	spare   int // widening save / narrowing accumulator row

	threshold, passes int
	changes           []int32
	widenAt           []bool
	rpo               []cfg.NodeID
	outBase           int    // first narrowing-cache row
	outValid          []bool // per node: cache rows current
	outLive           []bool // per edge: cached fact delivered (non-nil)
}

// NewSolver sizes d's arena for g and preallocates all solver state.
func NewSolver(g *cfg.Graph, d Domain) *Solver {
	n, ne := g.NumNodes(), g.NumEdges()
	s := &Solver{
		g:              g,
		d:              d,
		dir:            d.Direction(),
		Reached:        make([]bool, n),
		EdgeExecutable: make([]bool, ne),
		scratch:        n,
		spare:          n + 3,
	}
	maxDeg := 0
	for i := 0; i < n; i++ {
		nd := g.Node(cfg.NodeID(i))
		deg := len(nd.Out)
		if s.dir == dataflow.Backward {
			deg = len(nd.In)
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	s.slots = make([]int8, maxDeg)
	rows := n + 4
	dfs := g.DepthFirst()
	if wd, ok := d.(WidenDomain); ok {
		s.wd = wd
		s.threshold, s.passes = wd.Tune()
		s.changes = make([]int32, n)
		s.widenAt = make([]bool, n)
		for e := range dfs.Retreating {
			if s.dir == dataflow.Backward {
				s.widenAt[g.Edge(e).From] = true
			} else {
				s.widenAt[g.Edge(e).To] = true
			}
		}
		s.rpo = dfs.RPOOrder
		s.outBase = rows
		rows += ne
		s.outValid = make([]bool, n)
		s.outLive = make([]bool, ne)
		s.inQueue = make([]bool, n)
		s.queue = make([]int32, n+1)
	} else {
		s.ring = dataflow.NewPriorityRing(n, dfs.RPOOrder, s.dir == dataflow.Backward)
	}
	d.Grow(rows)
	return s
}

// Run solves the problem from scratch, leaving the fixpoint in the
// domain's per-node rows and the reachability view on the solver. It
// performs no allocations.
func (s *Solver) Run() {
	s.reset()
	if s.sp != nil {
		s.runSparse()
		return
	}
	g, d := s.g, s.d
	start := g.Entry
	if s.dir == dataflow.Backward {
		start = g.Exit
	}
	d.Boundary(int(start))
	s.Reached[start] = true
	s.push(start)

	for !s.empty() {
		n := s.pop()
		s.Iterations++
		s.Pops++

		nd := g.Node(n)
		edges := nd.Out
		if s.dir == dataflow.Backward {
			edges = nd.In
		}
		sl := s.slots[:len(edges)]
		for i := range sl {
			sl[i] = -1
		}
		d.Transfer(n, int(n), s.scratch, sl)
		for slot, sub := range sl {
			if sub < 0 {
				continue
			}
			eid := edges[slot]
			s.EdgeExecutable[eid] = true
			e := g.Edge(eid)
			to := e.To
			if s.dir == dataflow.Backward {
				to = e.From
			}
			src := s.scratch + int(sub)
			if !s.Reached[to] {
				s.Reached[to] = true
				d.Copy(int(to), src)
				s.push(to)
				continue
			}
			if s.wd != nil && s.widenAt[to] {
				// Mirror the boxed widening path: save the old fact,
				// meet, and on the threshold-crossing change replace the
				// merged fact with ∇(old, merged).
				d.Copy(s.spare, int(to))
				if d.Meet(int(to), src) {
					s.changes[to]++
					if int(s.changes[to]) > s.threshold {
						s.wd.WidenInto(s.spare, int(to))
					}
					s.push(to)
				}
			} else if d.Meet(int(to), src) {
				s.push(to)
			}
		}
	}
	if s.wd != nil {
		s.narrow()
	}
}

// reset clears all per-Run iteration state without allocating.
// SetFIFO replaces the RPO priority ring with the plain FIFO worklist
// the dense kernels used before the scheduling upgrade. The fixpoint of
// a non-widening problem is order-independent, so results are identical
// — only the visit order and pop counts change. Kept so the kernel
// benchmarks can measure the scheduling win (FIFO → RPO priority) and
// the sparsity win (flood → def-use chains) separately. No-op on
// widening solvers, which already run FIFO.
func (s *Solver) SetFIFO() {
	if s.ring == nil {
		return
	}
	s.ring = nil
	s.inQueue = make([]bool, s.g.NumNodes())
	s.queue = make([]int32, s.g.NumNodes()+1)
}

func (s *Solver) reset() {
	for i := range s.Reached {
		s.Reached[i] = false
	}
	for i := range s.inQueue {
		s.inQueue[i] = false
	}
	for i := range s.EdgeExecutable {
		s.EdgeExecutable[i] = false
	}
	for i := range s.changes {
		s.changes[i] = 0
	}
	s.Iterations = 0
	s.Pops = 0
	s.qhead, s.qtail = 0, 0
	if s.ring != nil {
		s.ring.Reset()
	}
	if s.sp != nil {
		s.sp.reset()
	}
}

func (s *Solver) push(n cfg.NodeID) {
	if s.ring != nil {
		s.ring.Push(n)
		return
	}
	if !s.inQueue[n] {
		s.inQueue[n] = true
		s.queue[s.qtail] = int32(n)
		s.qtail++
		if s.qtail == len(s.queue) {
			s.qtail = 0
		}
	}
}

func (s *Solver) pop() cfg.NodeID {
	if s.ring != nil {
		return s.ring.Pop()
	}
	n := cfg.NodeID(s.queue[s.qhead])
	s.qhead++
	if s.qhead == len(s.queue) {
		s.qhead = 0
	}
	s.inQueue[n] = false
	return n
}

func (s *Solver) empty() bool {
	if s.ring != nil {
		return s.ring.Empty()
	}
	return s.qhead == s.qtail
}

// recomputeOuts refreshes the narrowing cache rows for node n: one
// Transfer into the shared scratch, then one cache row per edge.
func (s *Solver) recomputeOuts(n cfg.NodeID) {
	nd := s.g.Node(n)
	edges := nd.Out
	if s.dir == dataflow.Backward {
		edges = nd.In
	}
	sl := s.slots[:len(edges)]
	for i := range sl {
		sl[i] = -1
	}
	s.d.Transfer(n, int(n), s.scratch, sl)
	for i, eid := range edges {
		if sl[i] < 0 {
			s.outLive[eid] = false
			continue
		}
		s.outLive[eid] = true
		s.d.Copy(s.outBase+int(eid), s.scratch+int(sl[i]))
	}
	s.outValid[n] = true
}

// narrow mirrors the boxed narrowing passes exactly: reverse postorder
// (reverse RPO backward), lazy per-node out-fact caching with
// invalidation on change, and one Iterations tick per visited node.
func (s *Solver) narrow() {
	g, d := s.g, s.d
	stop := g.Entry
	if s.dir == dataflow.Backward {
		stop = g.Exit
	}
	for pass := 0; pass < s.passes; pass++ {
		for i := range s.outValid {
			s.outValid[i] = false
		}
		for idx := range s.rpo {
			n := s.rpo[idx]
			if s.dir == dataflow.Backward {
				n = s.rpo[len(s.rpo)-1-idx]
			}
			if n == stop || !s.Reached[n] {
				continue
			}
			s.Iterations++
			accValid := false
			nd := g.Node(n)
			arrivals := nd.In
			if s.dir == dataflow.Backward {
				arrivals = nd.Out
			}
			for _, eid := range arrivals {
				e := g.Edge(eid)
				src := e.From
				if s.dir == dataflow.Backward {
					src = e.To
				}
				if !s.Reached[src] {
					continue
				}
				if !s.outValid[src] {
					s.recomputeOuts(src)
				}
				if !s.outLive[eid] {
					continue
				}
				row := s.outBase + int(eid)
				if !accValid {
					d.Copy(s.spare, row)
					accValid = true
				} else {
					d.Meet(s.spare, row)
				}
			}
			if accValid && !d.Equal(s.spare, int(n)) {
				d.Copy(int(n), s.spare)
				s.outValid[n] = false
			}
		}
	}
}

// Materialize assembles a standard boxed Solution from the solved state:
// fact boxes row n for every reached node (called once per node, after
// Run). This is the single boundary where the packed path allocates, and
// it keeps everything downstream of a client — oracle projections,
// guided analyses, disk codecs — unchanged.
func (s *Solver) Materialize(fact func(row int) dataflow.Fact) *dataflow.Solution {
	sol := &dataflow.Solution{
		In:             make([]dataflow.Fact, len(s.Reached)),
		Reached:        append([]bool(nil), s.Reached...),
		EdgeExecutable: append([]bool(nil), s.EdgeExecutable...),
		Iterations:     s.Iterations,
		Pops:           s.Pops,
		Direction:      s.dir,
	}
	for n := range sol.In {
		if s.Reached[n] {
			sol.In[n] = fact(n)
		}
	}
	return sol
}

// Rows returns the total arena rows NewSolver would request for a
// domain over g (exported for domain constructors that want to size
// side arrays, e.g. per-row token buffers).
func Rows(g *cfg.Graph, widening bool) int {
	if widening {
		return g.NumNodes() + 4 + g.NumEdges()
	}
	return g.NumNodes() + 4
}

// String identifies the solver for debugging.
func (s *Solver) String() string {
	return fmt.Sprintf("kernel.Solver(%s, %d nodes)", s.dir, len(s.Reached))
}
