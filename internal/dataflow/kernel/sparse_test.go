package kernel_test

import (
	"testing"

	"pathflow/internal/availexpr"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/intervals"
	"pathflow/internal/lang"
	"pathflow/internal/liveness"
	"pathflow/internal/progen"
)

// TestSparseMatchesDenseFacts is the sparse solver's equivalence gate
// over generated programs, all four clients: facts, reachability, and
// edge executability must match the dense kernel pointwise
// (DifferentialFacts — transfer counts legitimately differ), and for
// the widening client (intervals), whose sparse schedule mirrors the
// dense one exactly, the full Differential including iteration counts
// must hold.
func TestSparseMatchesDenseFacts(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()

			cpD := constprop.AnalyzePacked(fn.G, nv, true)
			cpS := constprop.AnalyzeSparse(fn.G, nv, true)
			cpLat := &constprop.Problem{NumVars: nv, Conditional: true}
			if err := oracle.DifferentialFacts("constprop", name, cpLat, cpD.Sol, cpS.Sol).Err(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}

			guide := cpD.Sol
			lvD := liveness.AnalyzePacked(fn.G, nv, guide)
			lvS := liveness.AnalyzeSparse(fn.G, nv, guide)
			lvLat := &liveness.Problem{NumVars: nv, Guide: guide}
			if err := oracle.DifferentialFacts("liveness", name, lvLat, lvD.Sol, lvS.Sol).Err(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}

			u := availexpr.NewUniverse(fn.G, nv)
			aeD := availexpr.AnalyzePacked(fn.G, u, guide)
			aeS := availexpr.AnalyzeSparse(fn.G, u, guide)
			aeLat := &availexpr.Problem{U: u, Guide: guide}
			if err := oracle.DifferentialFacts("availexpr", name, aeLat, aeD.Sol, aeS.Sol).Err(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}

			ivD := intervals.AnalyzeWith(fn.G, nv, true, dataflow.KernelPacked)
			ivS := intervals.AnalyzeWith(fn.G, nv, true, dataflow.KernelSparse)
			ivLat := &intervals.Problem{NumVars: nv, Conditional: true}
			if err := oracle.Differential("intervals", name, ivLat, ivD.Sol, ivS.Sol).Err(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestSparseSpendsFewerTransfers pins the point of the sparse mode: on
// generated programs the sparse constprop solver never runs more
// transfers than the dense kernel, and across the corpus it runs
// strictly fewer in aggregate (pass-through pops skip transfers).
func TestSparseSpendsFewerTransfers(t *testing.T) {
	denseTotal, sparseTotal := 0, 0
	for seed := uint64(1); seed <= 25; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()
			dense := constprop.PackedSolver(fn.G, nv, true)
			sparse := constprop.SparseSolver(fn.G, nv, true)
			dense.Run()
			sparse.Run()
			if sparse.Iterations > dense.Iterations {
				t.Errorf("seed %d func %s: sparse ran %d transfers, dense %d",
					seed, name, sparse.Iterations, dense.Iterations)
			}
			if sparse.Iterations > sparse.Pops {
				t.Errorf("seed %d func %s: transfers %d exceed pops %d",
					seed, name, sparse.Iterations, sparse.Pops)
			}
			denseTotal += dense.Iterations
			sparseTotal += sparse.Iterations
		}
	}
	if sparseTotal >= denseTotal {
		t.Errorf("sparse transfers (%d) not below dense (%d) across the corpus", sparseTotal, denseTotal)
	}
}

// TestSparseRunAllocFree extends the allocation gate to the sparse
// solver: chains and dirty sets are built once, so repeated Runs touch
// no heap.
func TestSparseRunAllocFree(t *testing.T) {
	prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(3)))
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Funcs[prog.Order[0]]
	s := constprop.SparseSolver(fn.G, fn.NumVars(), true)
	s.Run() // warm
	if n := testing.AllocsPerRun(20, s.Run); n != 0 {
		t.Fatalf("sparse Run allocates %.1f times per call, want 0", n)
	}
}
