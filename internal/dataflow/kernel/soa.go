package kernel

// KV is a struct-of-arrays arena for tagged value lattices (constant
// propagation): each row is Width cells, a cell being a (kind, val)
// pair split across two parallel slices. Keeping kinds in a dense
// []uint8 makes the common all-⊥/all-⊤ scans cache-friendly; values
// are only consulted when the kind says they are meaningful. Domains
// are expected to keep cells *normalized* — val forced to 0 whenever
// the kind carries no payload — so raw slice comparison implements
// lattice equality.
type KV struct {
	Width int
	Kind  []uint8
	Val   []int64
}

// NewKV returns an arena with width cells per row.
func NewKV(width int) *KV { return &KV{Width: width} }

// Grow ensures the arena holds at least rows rows.
func (a *KV) Grow(rows int) {
	if need := rows * a.Width; len(a.Kind) < need {
		a.Kind = make([]uint8, need)
		a.Val = make([]int64, need)
	}
}

// Row returns row r's kind and value cells.
func (a *KV) Row(r int) ([]uint8, []int64) {
	o := r * a.Width
	return a.Kind[o : o+a.Width : o+a.Width], a.Val[o : o+a.Width : o+a.Width]
}

// Fill sets every cell of row r to (kind, 0).
func (a *KV) Fill(r int, kind uint8) {
	k, v := a.Row(r)
	for i := range k {
		k[i] = kind
		v[i] = 0
	}
}

// Copy overwrites row dst with row src.
func (a *KV) Copy(dst, src int) {
	dk, dv := a.Row(dst)
	sk, sv := a.Row(src)
	copy(dk, sk)
	copy(dv, sv)
}

// Equal reports raw cell equality of rows x and y (lattice equality
// for normalized rows).
func (a *KV) Equal(x, y int) bool {
	xk, xv := a.Row(x)
	yk, yv := a.Row(y)
	for i := range xk {
		if xk[i] != yk[i] || xv[i] != yv[i] {
			return false
		}
	}
	return true
}

// Span is a struct-of-arrays arena for interval lattices: each row is
// Width [lo, hi] cells split across two parallel []int64 slices. The
// empty interval is encoded canonically as lo > hi (every non-empty
// interval satisfies lo ≤ hi), so raw slice comparison implements
// lattice equality here too.
type Span struct {
	Width  int
	Lo, Hi []int64
}

// NewSpan returns an arena with width cells per row.
func NewSpan(width int) *Span { return &Span{Width: width} }

// Grow ensures the arena holds at least rows rows.
func (a *Span) Grow(rows int) {
	if need := rows * a.Width; len(a.Lo) < need {
		a.Lo = make([]int64, need)
		a.Hi = make([]int64, need)
	}
}

// Row returns row r's lo and hi cells.
func (a *Span) Row(r int) ([]int64, []int64) {
	o := r * a.Width
	return a.Lo[o : o+a.Width : o+a.Width], a.Hi[o : o+a.Width : o+a.Width]
}

// Copy overwrites row dst with row src.
func (a *Span) Copy(dst, src int) {
	dl, dh := a.Row(dst)
	sl, sh := a.Row(src)
	copy(dl, sl)
	copy(dh, sh)
}

// Equal reports raw cell equality of rows x and y.
func (a *Span) Equal(x, y int) bool {
	xl, xh := a.Row(x)
	yl, yh := a.Row(y)
	for i := range xl {
		if xl[i] != yl[i] || xh[i] != yh[i] {
			return false
		}
	}
	return true
}
