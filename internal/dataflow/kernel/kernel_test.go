package kernel_test

import (
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
)

func TestInterner(t *testing.T) {
	it := kernel.NewInterner[string]()
	if got := it.Lookup("a"); got != -1 {
		t.Fatalf("Lookup before Intern = %d, want -1", got)
	}
	if got := it.Intern("a"); got != 0 {
		t.Fatalf("first Intern = %d, want 0", got)
	}
	if got := it.Intern("b"); got != 1 {
		t.Fatalf("second Intern = %d, want 1", got)
	}
	if got := it.Intern("a"); got != 0 {
		t.Fatalf("re-Intern = %d, want stable 0", got)
	}
	if got := it.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := it.Key(1); got != "b" {
		t.Fatalf("Key(1) = %q, want %q", got, "b")
	}
	if got := it.Lookup("b"); got != 1 {
		t.Fatalf("Lookup = %d, want 1", got)
	}
}

func TestBitsOps(t *testing.T) {
	b := kernel.NewBits(130) // 3 words: exercises multi-word loops
	if b.Words != 3 {
		t.Fatalf("Words = %d, want 3", b.Words)
	}
	b.Grow(4)
	b.Set(0, 0)
	b.Set(0, 64)
	b.Set(0, 129)
	b.Set(1, 64)
	b.Set(1, 65)

	if changed := b.Or(2, 0); !changed {
		t.Error("Or into empty row reported no change")
	}
	if changed := b.Or(2, 0); changed {
		t.Error("idempotent Or reported change")
	}
	b.Copy(3, 0)
	if !b.Equal(3, 0) {
		t.Error("Copy then Equal = false")
	}
	if changed := b.And(3, 1); !changed {
		t.Error("And dropping bits reported no change")
	}
	// Row 3 should now be {64}: the only bit rows 0 and 1 share.
	want := kernel.NewBits(130)
	want.Grow(1)
	want.Set(0, 64)
	for i, w := range want.Row(0) {
		if b.Row(3)[i] != w {
			t.Fatalf("And word %d = %#x, want %#x", i, b.Row(3)[i], w)
		}
	}
	b.Unset(0, 64)
	b.AndNot(0, want.Row(0)) // already unset: no-op
	if got := b.Row(0)[1]; got != 0 {
		t.Errorf("Unset left word 1 = %#x", got)
	}
	b.Clear(0)
	for i, w := range b.Row(0) {
		if w != 0 {
			t.Errorf("Clear left word %d = %#x", i, w)
		}
	}
}

func TestKVArena(t *testing.T) {
	a := kernel.NewKV(3)
	a.Grow(3)
	a.Fill(0, 2)
	k, v := a.Row(0)
	for i := range k {
		if k[i] != 2 || v[i] != 0 {
			t.Fatalf("Fill cell %d = (%d, %d), want (2, 0)", i, k[i], v[i])
		}
	}
	k1, v1 := a.Row(1)
	k1[1], v1[1] = 1, 42
	a.Copy(2, 1)
	if !a.Equal(2, 1) {
		t.Error("Copy then Equal = false")
	}
	if a.Equal(0, 1) {
		t.Error("distinct rows compare equal")
	}
}

func TestSpanArena(t *testing.T) {
	a := kernel.NewSpan(2)
	a.Grow(2)
	lo, hi := a.Row(0)
	lo[0], hi[0] = -3, 7
	lo[1], hi[1] = 1, 0 // canonical empty: lo > hi
	a.Copy(1, 0)
	if !a.Equal(1, 0) {
		t.Error("Copy then Equal = false")
	}
	l1, _ := a.Row(1)
	l1[0] = 0
	if a.Equal(1, 0) {
		t.Error("modified row still compares equal")
	}
}

// --- solver equivalence on a custom domain -------------------------------

// reachProblem is a tiny boxed set problem: the fact is the uint64 mask
// of nodes the flow passed through; meet is union. Node gate (if valid)
// withholds its second slot, exercising edge executability. Works in
// both directions.
type reachProblem struct {
	backward bool
	gate     cfg.NodeID
}

func (p *reachProblem) Direction() dataflow.Direction {
	if p.backward {
		return dataflow.Backward
	}
	return dataflow.Forward
}
func (p *reachProblem) Entry() dataflow.Fact { return uint64(0) }
func (p *reachProblem) Meet(a, b dataflow.Fact) dataflow.Fact {
	return a.(uint64) | b.(uint64)
}
func (p *reachProblem) Equal(a, b dataflow.Fact) bool { return a.(uint64) == b.(uint64) }
func (p *reachProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	f := in.(uint64) | 1<<uint(n)
	for i := range out {
		if n == p.gate && i == 1 {
			continue // withheld: non-executable under this problem
		}
		out[i] = f
	}
}

// reachDomain is the packed mirror of reachProblem over a 1-word Bits
// arena.
type reachDomain struct {
	p    *reachProblem
	g    *cfg.Graph
	bits *kernel.Bits
}

func (d *reachDomain) Direction() dataflow.Direction { return d.p.Direction() }
func (d *reachDomain) Grow(rows int)                 { d.bits.Grow(rows) }
func (d *reachDomain) Boundary(dst int)              { d.bits.Clear(dst) }
func (d *reachDomain) Copy(dst, src int)             { d.bits.Copy(dst, src) }
func (d *reachDomain) Meet(dst, src int) bool        { return d.bits.Or(dst, src) }
func (d *reachDomain) Equal(a, b int) bool           { return d.bits.Equal(a, b) }
func (d *reachDomain) Transfer(n cfg.NodeID, in, scratch int, slots []int8) {
	d.bits.Copy(scratch, in)
	d.bits.Set(scratch, int(n))
	for i := range slots {
		if n == d.p.gate && i == 1 {
			continue
		}
		slots[i] = 0
	}
}

// loopBranchGraph: entry -> h; h -> b | x; b -> h (retreating); x -> exit.
func loopBranchGraph(t *testing.T) (*cfg.Graph, cfg.NodeID) {
	t.Helper()
	g := cfg.New("loop")
	h := g.AddNode("h")
	b := g.AddNode("b")
	x := g.AddNode("x")
	g.Node(h).Kind = cfg.TermBranch
	g.Node(h).Cond = 0
	g.AddEdge(g.Entry, h)
	g.AddEdge(h, b)
	g.AddEdge(h, x)
	g.AddEdge(b, h)
	g.AddEdge(x, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g, h
}

func TestSolverMatchesBoxedReference(t *testing.T) {
	for _, tc := range []struct {
		name     string
		backward bool
		gated    bool
	}{
		{"forward", false, false},
		{"backward", true, false},
		{"forward-gated", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, h := loopBranchGraph(t)
			gate := cfg.NodeID(-1)
			if tc.gated {
				gate = h
			}
			p := &reachProblem{backward: tc.backward, gate: gate}
			want := dataflow.Solve(g, p)

			d := &reachDomain{p: p, g: g, bits: kernel.NewBits(g.NumNodes())}
			s := kernel.NewSolver(g, d)
			s.Run()
			got := s.Materialize(func(row int) dataflow.Fact {
				return d.bits.Row(row)[0]
			})

			if got.Iterations != want.Iterations {
				t.Errorf("Iterations = %d, want %d", got.Iterations, want.Iterations)
			}
			if got.Direction != want.Direction {
				t.Errorf("Direction = %v, want %v", got.Direction, want.Direction)
			}
			for n := range want.In {
				if got.Reached[n] != want.Reached[n] {
					t.Errorf("Reached[%d] = %v, want %v", n, got.Reached[n], want.Reached[n])
					continue
				}
				if !want.Reached[n] {
					continue
				}
				if got.In[n].(uint64) != want.In[n].(uint64) {
					t.Errorf("In[%d] = %#x, want %#x", n, got.In[n], want.In[n])
				}
			}
			for e := range want.EdgeExecutable {
				if got.EdgeExecutable[e] != want.EdgeExecutable[e] {
					t.Errorf("EdgeExecutable[%d] = %v, want %v", e, got.EdgeExecutable[e], want.EdgeExecutable[e])
				}
			}
		})
	}
}

// TestSolverRunAllocFree locks the tentpole's core claim at the solver
// layer: once built, re-solving allocates nothing.
func TestSolverRunAllocFree(t *testing.T) {
	g, _ := loopBranchGraph(t)
	p := &reachProblem{gate: -1}
	d := &reachDomain{p: p, g: g, bits: kernel.NewBits(g.NumNodes())}
	s := kernel.NewSolver(g, d)
	s.Run() // warm up
	if allocs := testing.AllocsPerRun(100, s.Run); allocs != 0 {
		t.Errorf("Solver.Run allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRows(t *testing.T) {
	g, _ := loopBranchGraph(t)
	if got, want := kernel.Rows(g, false), g.NumNodes()+4; got != want {
		t.Errorf("Rows(plain) = %d, want %d", got, want)
	}
	if got, want := kernel.Rows(g, true), g.NumNodes()+4+g.NumEdges(); got != want {
		t.Errorf("Rows(widening) = %d, want %d", got, want)
	}
}
