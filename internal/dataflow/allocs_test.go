package dataflow_test

// Allocation regression tests for the boxed solver's hoisted scratch:
// the Transfer out-slot slice, the worklist ring buffer, and the
// narrowing arena are all owned by the solver and reused across
// iterations, so the solver's own allocation count must depend only on
// the graph shape — never on how many iterations convergence takes.

import (
	"testing"

	"pathflow/internal/cfg"
	. "pathflow/internal/dataflow"
)

// countLoop is a max-lattice counting loop with no Widener: the body
// increments until cap, so convergence takes Θ(cap) iterations. Facts
// stay below 256, which the runtime boxes allocation-free — any
// allocation growth would come from solver infrastructure.
type countLoop struct {
	h, b cfg.NodeID
	cap  int
}

func (p *countLoop) Entry() Fact { return 0 }
func (p *countLoop) Meet(a, b Fact) Fact {
	if a.(int) > b.(int) {
		return a
	}
	return b
}
func (p *countLoop) Equal(a, b Fact) bool { return a.(int) == b.(int) }
func (p *countLoop) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	v := in.(int)
	if n == p.b && v < p.cap {
		v++
	}
	for i := range out {
		out[i] = v
	}
}

func TestSolveAllocsIndependentOfIterations(t *testing.T) {
	solveAllocs := func(cap int) (allocs float64, iters int) {
		g, h, b, _ := loopGraph(t)
		p := &countLoop{h: h, b: b, cap: cap}
		allocs = testing.AllocsPerRun(20, func() {
			iters = Solve(g, p).Iterations
		})
		return allocs, iters
	}
	fewAllocs, fewIters := solveAllocs(10)
	manyAllocs, manyIters := solveAllocs(200)
	if manyIters <= fewIters {
		t.Fatalf("iteration counts %d vs %d do not differ; test exercises nothing", fewIters, manyIters)
	}
	if fewAllocs != manyAllocs {
		t.Errorf("allocations grew with iteration count: %.1f allocs at %d iterations, %.1f allocs at %d iterations",
			fewAllocs, fewIters, manyAllocs, manyIters)
	}
}

// TestSolveAllocsIndependentOfIterationsWidening repeats the check on
// the widening/narrowing path: the widen sentinel and the narrow arena
// must cost the same whether the loop converges early or late.
func TestSolveAllocsIndependentOfIterationsWidening(t *testing.T) {
	solveAllocs := func(cap, refine int) (allocs float64, iters int) {
		g, h, b, _ := loopGraph(t)
		p := &cappedLoop{h: h, b: b, cap: cap, refine: refine}
		allocs = testing.AllocsPerRun(20, func() {
			iters = Solve(g, p).Iterations
		})
		return allocs, iters
	}
	// Below the widening threshold convergence is cap-paced; both runs
	// widen zero times, so the counts differ only in iterations.
	fewAllocs, fewIters := solveAllocs(2, 200)
	manyAllocs, manyIters := solveAllocs(WidenThreshold, 200)
	if manyIters <= fewIters {
		t.Fatalf("iteration counts %d vs %d do not differ; test exercises nothing", fewIters, manyIters)
	}
	if fewAllocs != manyAllocs {
		t.Errorf("allocations grew with iteration count: %.1f allocs at %d iterations, %.1f allocs at %d iterations",
			fewAllocs, fewIters, manyAllocs, manyIters)
	}
}
