// Package oracle implements the precision differential oracle: a static
// check that a data-flow solution computed on a derived graph (hot path
// graph or reduced HPG) is pointwise at least as precise as the solution
// on the original CFG, once projected back through the vertex
// correspondence. This is the checkable form of the paper's guarantee
// that hot-path qualification never loses information — every (v, q)
// vertex sees a subset of the paths reaching v, so its fact must sit at
// or above v's in the client's lattice.
//
// The oracle is client-agnostic: it needs only the problem's own Meet
// and Equal, because a ⊒ b in any meet-semilattice iff Meet(a, b) = b.
// It therefore works unchanged for forward and backward problems, and
// for may- and must-clients (for liveness, whose meet is set union,
// "higher" is the *smaller* live set; the same formula applies).
package oracle

import (
	"fmt"
	"strings"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
)

// Lattice is the fragment of dataflow.Problem the oracle needs.
type Lattice interface {
	Meet(a, b dataflow.Fact) dataflow.Fact
	Equal(a, b dataflow.Fact) bool
}

// Kind classifies a violation.
type Kind uint8

const (
	// KindReachability: the derived graph considers a vertex executable
	// whose original the CFG analysis proved unreachable (⊤ on the CFG
	// side strictly above any fact on the derived side).
	KindReachability Kind = iota
	// KindFact: the derived vertex's fact is not ⊒ the original's.
	KindFact
	// KindTrace: an edge a recorded execution actually traversed was
	// marked infeasible — the empirical refutation of a feasibility
	// mask's soundness claim (see CheckTraces).
	KindTrace
)

func (k Kind) String() string {
	switch k {
	case KindReachability:
		return "reachability"
	case KindTrace:
		return "trace"
	}
	return "fact"
}

// Violation is one vertex at which the derived solution is *not* at
// least as precise as the original one — or, for KindTrace, one edge
// whose infeasibility claim a recorded execution refuted (Edge holds
// the offending edge; Node/Orig are unused).
type Violation struct {
	Node cfg.NodeID // vertex of the derived graph
	Orig cfg.NodeID // its original CFG vertex
	Edge cfg.EdgeID // offending edge (KindTrace only)
	Kind Kind
}

func (v Violation) String() string {
	if v.Kind == KindTrace {
		return fmt.Sprintf("trace violation: executed edge %d marked infeasible", v.Edge)
	}
	return fmt.Sprintf("%s violation at derived node %d (orig %d)", v.Kind, v.Node, v.Orig)
}

// Report is the outcome of one oracle run.
type Report struct {
	Client  string // e.g. "constprop", "liveness"
	Graph   string // e.g. "hpg", "rhpg"
	Checked int    // reached derived vertices compared
	// Improved counts the vertices at which the derived solution is
	// *strictly* more precise than the base: a strictly higher fact, or
	// a vertex the derived analysis proved dead that the base reached.
	// It is the oracle's free byproduct — the ⊒ comparison already
	// distinguishes "equal" from "strictly above" — and what the
	// precision ablations report as facts improved.
	Improved int
	// ImprovedAt marks, per *base*-graph vertex, whether at least one
	// derived vertex projecting to it improved. It is the deduplicated,
	// projection-side view of Improved: a hot-path graph may hold many
	// copies of one CFG vertex, and Improved counts each copy, while
	// ImprovedAt answers "did the derived analysis learn something new
	// about this original location at all?" — the form two solutions
	// over *different* derived graphs can be compared or unioned in
	// (the two-axis precision ablation does both). Populated by Check;
	// nil for the other entry points.
	ImprovedAt []bool
	Violations []Violation
}

// OK reports whether the derived solution passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, and a descriptive error
// otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	n := len(r.Violations)
	show := r.Violations
	if len(show) > 3 {
		show = show[:3]
	}
	parts := make([]string, len(show))
	for i, v := range show {
		parts[i] = v.String()
	}
	return fmt.Errorf("oracle: %s on %s: %d violation(s) over %d checked vertices: %s",
		r.Client, r.Graph, n, r.Checked, strings.Join(parts, "; "))
}

func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("oracle: %s on %s: ok (%d vertices)", r.Client, r.Graph, r.Checked)
	}
	return r.Err().Error()
}

// Check verifies that derived (a solution over a graph whose vertex n
// projects to orig(n) in the original CFG) is pointwise at least as
// precise as base (the solution over the original CFG). Vertices the
// derived analysis left unreached are trivially at ⊤ and always pass.
func Check(client, graph string, lat Lattice, base, derived *dataflow.Solution, orig func(cfg.NodeID) cfg.NodeID) *Report {
	rep := &Report{Client: client, Graph: graph, ImprovedAt: make([]bool, len(base.In))}
	for n := range derived.In {
		nid := cfg.NodeID(n)
		if !derived.Reached[n] {
			if base.Reached[orig(nid)] {
				// Derived proved the vertex dead; the base reached it.
				// Trivially ⊒ (the derived fact is ⊤) and strictly so.
				rep.Improved++
				rep.ImprovedAt[orig(nid)] = true
			}
			continue
		}
		v := orig(nid)
		rep.Checked++
		if !base.Reached[v] {
			// Original proved dead, derived claims executable: the
			// derived fact is strictly below the original's ⊤.
			rep.Violations = append(rep.Violations, Violation{Node: nid, Orig: v, Kind: KindReachability})
			continue
		}
		a, b := derived.In[n], base.In[v]
		if a == nil || b == nil {
			continue // defensive: Reached implies non-nil in both solvers
		}
		// a ⊒ b ⟺ a ∧ b = b.
		if !lat.Equal(lat.Meet(a, b), b) {
			rep.Violations = append(rep.Violations, Violation{Node: nid, Orig: v, Kind: KindFact})
		} else if !lat.Equal(a, b) {
			rep.Improved++
			rep.ImprovedAt[v] = true
		}
	}
	return rep
}

// CheckTraces is the empirical soundness gate for a feasibility mask:
// no edge a recorded execution traversed (counts[e] > 0, indexed by
// cfg.EdgeID) may be marked infeasible. The static gates certify the
// mask against the analyses' own semantics; this one certifies it
// against actual runs, so a detector bug that fools every lattice
// still trips on the first real execution through a pruned edge.
func CheckTraces(client, graph string, counts []int64, infeasible []bool) *Report {
	rep := &Report{Client: client, Graph: graph}
	for e, n := range counts {
		if e >= len(infeasible) {
			break
		}
		rep.Checked++
		if n > 0 && infeasible[e] {
			rep.Violations = append(rep.Violations, Violation{Edge: cfg.EdgeID(e), Kind: KindTrace})
		}
	}
	return rep
}

// Identity is the trivial projection for comparing two solutions over
// the same graph (e.g. conditional vs. plain constant propagation).
func Identity(n cfg.NodeID) cfg.NodeID { return n }

// Differential verifies that two solutions of the *same* problem over
// the same graph are pointwise identical — the kernel-vs-boxed gate:
// the packed arena kernels claim to change representation, not
// semantics, and this check makes the claim falsifiable. Unlike Check,
// which asserts an inequality (⊒) across graphs, Differential asserts
// equality on one graph: reachability, per-edge executability, and
// facts must all agree. Disagreements are reported as Violations
// (reachability mismatches as KindReachability, fact or edge mismatches
// as KindFact on the owning node).
func Differential(client, graph string, lat Lattice, base, derived *dataflow.Solution) *Report {
	rep := differential(client, graph, lat, base, derived)
	if base.Iterations != derived.Iterations {
		// Iteration counts feed the paper's analysis-effort metrics;
		// dense kernels must replicate the boxed schedule exactly.
		// Attribute the mismatch to the entry-most node for lack of a
		// better site.
		rep.Violations = append(rep.Violations, Violation{Node: 0, Orig: 0, Kind: KindFact})
	}
	return rep
}

// DifferentialFacts is Differential without the iteration-count check:
// the gate for the sparse solver, whose pass-through pops legitimately
// spend fewer transfers reaching the same fixpoint. Everything
// order-independent about a solution — reachability, per-edge
// executability, and every fact — must still agree exactly; only the
// effort metric is allowed to differ. (For non-widening problems the
// greatest fixpoint over executable edges is unique whatever the
// worklist order, which is why relaxing exactly this one field is
// sound.)
func DifferentialFacts(client, graph string, lat Lattice, base, derived *dataflow.Solution) *Report {
	return differential(client, graph, lat, base, derived)
}

func differential(client, graph string, lat Lattice, base, derived *dataflow.Solution) *Report {
	rep := &Report{Client: client, Graph: graph}
	for n := range base.In {
		nid := cfg.NodeID(n)
		if base.Reached[n] != derived.Reached[n] {
			rep.Violations = append(rep.Violations, Violation{Node: nid, Orig: nid, Kind: KindReachability})
			continue
		}
		if !base.Reached[n] {
			continue
		}
		rep.Checked++
		if !lat.Equal(base.In[n], derived.In[n]) {
			rep.Violations = append(rep.Violations, Violation{Node: nid, Orig: nid, Kind: KindFact})
		}
	}
	for e := range base.EdgeExecutable {
		if base.EdgeExecutable[e] != derived.EdgeExecutable[e] {
			rep.Violations = append(rep.Violations, Violation{Node: 0, Orig: 0, Kind: KindFact})
			break
		}
	}
	return rep
}
