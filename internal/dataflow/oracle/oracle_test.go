package oracle_test

import (
	"strings"
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	. "pathflow/internal/dataflow/oracle"
	"pathflow/internal/ir"
)

// condGraph: h computes p = 1 and branches; both legs write r and join.
// Conditional constant propagation proves the else-leg dead; plain
// propagation does not.
func condGraph(t *testing.T) *cfg.Graph {
	t.Helper()
	// vars: 0=p 1=r
	g := cfg.New("cond")
	h := g.AddNode("h")
	tt := g.AddNode("t")
	ff := g.AddNode("f")
	j := g.AddNode("j")
	g.Node(h).Instrs = []ir.Instr{{Op: ir.Const, Dst: 0, A: ir.NoVar, B: ir.NoVar, K: 1}}
	g.Node(h).Kind = cfg.TermBranch
	g.Node(h).Cond = 0
	g.Node(tt).Instrs = []ir.Instr{{Op: ir.Const, Dst: 1, A: ir.NoVar, B: ir.NoVar, K: 7}}
	g.Node(ff).Instrs = []ir.Instr{{Op: ir.Const, Dst: 1, A: ir.NoVar, B: ir.NoVar, K: 8}}
	g.Node(j).Kind = cfg.TermReturn
	g.Node(j).Ret = 1
	g.AddEdge(g.Entry, h)
	g.AddEdge(h, tt)
	g.AddEdge(h, ff)
	g.AddEdge(tt, j)
	g.AddEdge(ff, j)
	g.AddEdge(j, g.Exit)
	if err := g.Validate(2); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMorePreciseSolutionPasses(t *testing.T) {
	g := condGraph(t)
	plain := constprop.Analyze(g, 2, false)
	cond := constprop.Analyze(g, 2, true)
	p := &constprop.Problem{NumVars: 2}
	rep := Check("constprop", "same-graph", p, plain.Sol, cond.Sol, Identity)
	if !rep.OK() {
		t.Fatalf("conditional ⊒ plain should hold: %v", rep.Err())
	}
	if rep.Checked == 0 {
		t.Error("nothing checked")
	}
	if rep.Err() != nil {
		t.Error("Err non-nil on clean report")
	}
	if !strings.Contains(rep.String(), "ok") {
		t.Errorf("clean report string = %q", rep.String())
	}
}

func TestLessPreciseSolutionFails(t *testing.T) {
	g := condGraph(t)
	plain := constprop.Analyze(g, 2, false)
	cond := constprop.Analyze(g, 2, true)
	p := &constprop.Problem{NumVars: 2}
	// Swapped: plain pretends to be the derived solution. It reaches the
	// dead else-leg (reachability violation) and merges 7 ∧ 8 = ⊥ at the
	// join (fact violation).
	rep := Check("constprop", "same-graph", p, cond.Sol, plain.Sol, Identity)
	if rep.OK() {
		t.Fatal("plain ⊒ conditional must not hold")
	}
	var kinds []string
	for _, v := range rep.Violations {
		kinds = append(kinds, v.Kind.String())
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "reachability") {
		t.Errorf("expected a reachability violation, got %s", joined)
	}
	if !strings.Contains(joined, "fact") {
		t.Errorf("expected a fact violation, got %s", joined)
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "violation") {
		t.Errorf("Err = %v", rep.Err())
	}
}

func TestIdenticalSolutionPasses(t *testing.T) {
	g := condGraph(t)
	cond := constprop.Analyze(g, 2, true)
	p := &constprop.Problem{NumVars: 2}
	rep := Check("constprop", "same-graph", p, cond.Sol, cond.Sol, Identity)
	if !rep.OK() {
		t.Fatalf("solution not ⊒ itself: %v", rep.Err())
	}
}
