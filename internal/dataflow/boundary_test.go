package dataflow_test

// Boundary tests for the solver's widening/narrowing knobs, on both
// solvers:
//
//   - WidenThreshold: a fact at a widen point may change exactly
//     WidenThreshold times without triggering Widen; the switch happens
//     on change WidenThreshold+1. Both sides of the boundary are locked.
//   - NarrowingPasses: after widening overshoots a loop fact to a
//     sentinel, the decreasing re-iterations must recover the bound the
//     loop-exit refinement actually implies.

import (
	"testing"

	"pathflow/internal/cfg"
	. "pathflow/internal/dataflow"
)

// loopGraph: entry -> h; h -> b (slot 0) and h -> x (slot 1); b -> h
// (the retreating edge); x -> exit. h is the forward widen point (target
// of the retreating edge); b is the backward one (its source).
func loopGraph(t *testing.T) (g *cfg.Graph, h, b, x cfg.NodeID) {
	t.Helper()
	g = cfg.New("loop")
	h = g.AddNode("h")
	b = g.AddNode("b")
	x = g.AddNode("x")
	g.Node(h).Kind = cfg.TermBranch
	g.Node(h).Cond = 0
	g.AddEdge(g.Entry, h)
	g.AddEdge(h, b)
	g.AddEdge(h, x)
	g.AddEdge(b, h)
	g.AddEdge(x, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g, h, b, x
}

// cappedLoop is a max-lattice problem over ints modelling a counting
// loop `for i := 0; i < refine+1; i++`: the body transfer increments
// (saturating at cap), the head's back-to-body edge refines to at most
// refine, and Widen jumps to the counterInf sentinel. cap controls how
// many times the widen point's fact changes before natural convergence.
type cappedLoop struct {
	h, b       cfg.NodeID
	cap        int
	refine     int
	backward   bool
	widenCalls int
}

func (p *cappedLoop) Direction() Direction {
	if p.backward {
		return Backward
	}
	return Forward
}
func (p *cappedLoop) Entry() Fact { return 0 }
func (p *cappedLoop) Meet(a, b Fact) Fact {
	if a.(int) > b.(int) {
		return a
	}
	return b
}
func (p *cappedLoop) Equal(a, b Fact) bool { return a.(int) == b.(int) }
func (p *cappedLoop) Widen(old, new Fact) Fact {
	p.widenCalls++
	return counterInf
}

func (p *cappedLoop) inc(v int) int {
	if v >= p.cap {
		return p.cap
	}
	return v + 1
}
func (p *cappedLoop) ref(v int) int {
	if v > p.refine {
		return p.refine
	}
	return v
}

func (p *cappedLoop) Transfer(g *cfg.Graph, n cfg.NodeID, in Fact, out []Fact) {
	v := in.(int)
	if !p.backward {
		switch n {
		case p.h:
			out[0] = p.ref(v) // h -> b: loop-entry refinement
			out[1] = v        // h -> x
		case p.b:
			out[0] = p.inc(v) // b -> h: the increment
		default:
			for i := range out {
				out[i] = v
			}
		}
		return
	}
	// Backward: slots follow n's In list; pick semantics per source.
	nd := g.Node(n)
	for i, eid := range nd.In {
		switch {
		case n == p.h && g.Edge(eid).From == p.b:
			out[i] = p.inc(v) // delivered to the latch b
		case n == p.b:
			out[i] = p.ref(v) // delivered to h: refinement
		default:
			out[i] = v
		}
	}
}

var _ Widener = (*cappedLoop)(nil)

func TestWidenThresholdBoundaryForward(t *testing.T) {
	// cap = WidenThreshold: the head's fact changes exactly
	// WidenThreshold times (1..cap) and converges without widening.
	g, h, b, x := loopGraph(t)
	p := &cappedLoop{h: h, b: b, cap: WidenThreshold, refine: 100}
	sol := Solve(g, p)
	if p.widenCalls != 0 {
		t.Errorf("Widen called %d times at exactly-threshold changes, want 0", p.widenCalls)
	}
	if got := sol.In[h].(int); got != WidenThreshold {
		t.Errorf("In[h] = %d, want exact %d", got, WidenThreshold)
	}

	// cap = WidenThreshold+1: one more change crosses the boundary and
	// must switch to Widen.
	g, h, b, x = loopGraph(t)
	_ = x
	p = &cappedLoop{h: h, b: b, cap: WidenThreshold + 1, refine: 100}
	sol = Solve(g, p)
	if p.widenCalls == 0 {
		t.Error("Widen never called one change past the threshold")
	}
	// Narrowing then recovers the capped value from the sentinel.
	if got := sol.In[h].(int); got != WidenThreshold+1 {
		t.Errorf("In[h] = %d, want narrowed %d", got, WidenThreshold+1)
	}
}

func TestWidenThresholdBoundaryBackward(t *testing.T) {
	// Backward, the widen point is the latch b; its first fact arrives
	// at 1, so cap = WidenThreshold+1 yields exactly WidenThreshold
	// changes (2..cap) — still no widening.
	g, h, b, _ := loopGraph(t)
	p := &cappedLoop{h: h, b: b, cap: WidenThreshold + 1, refine: 100, backward: true}
	sol := Solve(g, p)
	if p.widenCalls != 0 {
		t.Errorf("Widen called %d times at exactly-threshold changes, want 0", p.widenCalls)
	}
	if got := sol.In[b].(int); got != WidenThreshold+1 {
		t.Errorf("In[b] = %d, want exact %d", got, WidenThreshold+1)
	}

	g, h, b, _ = loopGraph(t)
	p = &cappedLoop{h: h, b: b, cap: WidenThreshold + 2, refine: 100, backward: true}
	sol = Solve(g, p)
	if p.widenCalls == 0 {
		t.Error("Widen never called one change past the threshold")
	}
	if got := sol.In[b].(int); got != WidenThreshold+2 {
		t.Errorf("In[b] = %d, want narrowed %d", got, WidenThreshold+2)
	}
}

func TestNarrowingRecoversLoopExitBoundForward(t *testing.T) {
	// Effectively unbounded increment (cap huge) forces widening to the
	// sentinel; the h -> b refinement to <= 9 then implies the head can
	// only ever see 9+1 = 10, which the narrowing passes must recover.
	g, h, b, x := loopGraph(t)
	p := &cappedLoop{h: h, b: b, cap: 1000, refine: 9}
	sol := Solve(g, p)
	if p.widenCalls == 0 {
		t.Fatal("widening never triggered; test is not exercising narrowing")
	}
	if got := sol.In[h].(int); got != 10 {
		t.Errorf("In[h] = %d, want loop-exit bound 10", got)
	}
	if got := sol.In[b].(int); got != 9 {
		t.Errorf("In[b] = %d, want refined 9", got)
	}
	if got := sol.In[x].(int); got != 10 {
		t.Errorf("In[x] = %d, want 10", got)
	}
	if got := sol.In[g.Exit].(int); got != 10 {
		t.Errorf("In[exit] = %d, want 10", got)
	}
}

func TestNarrowingRecoversLoopExitBoundBackward(t *testing.T) {
	g, h, b, _ := loopGraph(t)
	p := &cappedLoop{h: h, b: b, cap: 1000, refine: 9, backward: true}
	sol := Solve(g, p)
	if p.widenCalls == 0 {
		t.Fatal("widening never triggered; test is not exercising narrowing")
	}
	if got := sol.In[b].(int); got != 10 {
		t.Errorf("In[b] = %d, want loop-exit bound 10", got)
	}
	if got := sol.In[h].(int); got != 9 {
		t.Errorf("In[h] = %d, want refined 9", got)
	}
}

// --- Tuner overrides -----------------------------------------------------

// tunedLoop couples cappedLoop with an explicit Tuning override: the
// promoted *Tuning methods implement Tuner exactly the way client
// problems embed it (intervals.Problem), nil meaning package defaults.
type tunedLoop struct {
	*cappedLoop
	*Tuning
}

var _ Tuner = tunedLoop{}

func TestTunerThresholdOverride(t *testing.T) {
	// Threshold 2: two changes converge naturally...
	g, h, b, _ := loopGraph(t)
	p := tunedLoop{&cappedLoop{h: h, b: b, cap: 2, refine: 100}, &Tuning{Threshold: 2, Passes: -1}}
	sol := Solve(g, p)
	if p.widenCalls != 0 {
		t.Errorf("Widen called %d times at exactly the tuned threshold, want 0", p.widenCalls)
	}
	if got := sol.In[h].(int); got != 2 {
		t.Errorf("In[h] = %d, want exact 2", got)
	}

	// ...while a third crosses the tuned boundary well below the package
	// default, and narrowing recovers the capped value.
	g, h, b, _ = loopGraph(t)
	p = tunedLoop{&cappedLoop{h: h, b: b, cap: 3, refine: 100}, &Tuning{Threshold: 2, Passes: -1}}
	sol = Solve(g, p)
	if p.widenCalls == 0 {
		t.Error("Widen never called one change past the tuned threshold")
	}
	if got := sol.In[h].(int); got != 3 {
		t.Errorf("In[h] = %d, want narrowed 3", got)
	}
}

func TestTunerZeroNarrowingPasses(t *testing.T) {
	// Passes = 0 disables narrowing outright: the widened sentinel must
	// survive to the solution.
	g, h, b, _ := loopGraph(t)
	p := tunedLoop{&cappedLoop{h: h, b: b, cap: 1000, refine: 9}, &Tuning{Threshold: -1, Passes: 0}}
	sol := Solve(g, p)
	if p.widenCalls == 0 {
		t.Fatal("widening never triggered; test is not exercising the passes knob")
	}
	if got := sol.In[h].(int); got != counterInf {
		t.Errorf("In[h] = %d, want the un-narrowed sentinel %d", got, counterInf)
	}
}

func TestTunerNegativeFieldsFallBack(t *testing.T) {
	// Negative fields select the package defaults per-field, so the
	// exactly-at-threshold behavior of the untuned problem is preserved.
	g, h, b, _ := loopGraph(t)
	p := tunedLoop{&cappedLoop{h: h, b: b, cap: WidenThreshold, refine: 100}, &Tuning{Threshold: -1, Passes: -1}}
	sol := Solve(g, p)
	if p.widenCalls != 0 {
		t.Errorf("Widen called %d times with default-selecting overrides, want 0", p.widenCalls)
	}
	if got := sol.In[h].(int); got != WidenThreshold {
		t.Errorf("In[h] = %d, want exact %d", got, WidenThreshold)
	}
	if th, pa := TuningOf(p); th != WidenThreshold || pa != NarrowingPasses {
		t.Errorf("TuningOf = (%d, %d), want package defaults (%d, %d)", th, pa, WidenThreshold, NarrowingPasses)
	}
	// A nil *Tuning embeds to defaults too — the zero-cost opt-out.
	if th, pa := TuningOf(tunedLoop{&cappedLoop{}, nil}); th != WidenThreshold || pa != NarrowingPasses {
		t.Errorf("TuningOf(nil Tuning) = (%d, %d), want package defaults", th, pa)
	}
}
