// Package lint is the repo's hand-rolled drift linter. The CLI and the
// serving layer quote each Unknown*Error's Hint() verbatim as the
// remediation line, so a hint that falls out of sync with the option
// set its parser actually accepts sends users chasing names that don't
// exist (or hides ones that do). The registries that are derived at
// runtime (bench.UnknownBenchmarkError builds its list from All()) are
// immune; the hand-written ones in internal/engine are not — they have
// drifted before. Hints parses those sources with go/ast (stdlib only,
// no new dependencies) and cross-checks every case literal a Parse*
// switch accepts against the string its paired Hint() returns.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// pairs maps each parser function to the error type whose Hint() must
// enumerate the parser's accepted names.
var pairs = []struct{ parse, errType string }{
	{"ParseClients", "UnknownClientError"},
	{"ParseKernel", "UnknownKernelError"},
}

// Hints lints the package rooted at dir (non-test .go files): every
// non-empty case literal accepted by a registered Parse* function must
// appear verbatim in the string returned by its paired Unknown*Error's
// Hint method. It returns one problem line per violation; an empty
// slice means clean. Structural failures (a pair's function or hint not
// found, a hint that is not a plain string literal) are reported as
// problems too, so a refactor can't silently disarm the check.
func Hints(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	cases := map[string][]string{}
	hints := map[string]string{}
	fset := token.NewFileSet()
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil {
				cases[fd.Name.Name] = append(cases[fd.Name.Name], caseLiterals(fd.Body)...)
				continue
			}
			if fd.Name.Name == "Hint" {
				if recv := receiverName(fd.Recv); recv != "" {
					hints[recv] = returnedString(fd.Body)
				}
			}
		}
	}
	var problems []string
	for _, p := range pairs {
		lits := cases[p.parse]
		hint, ok := hints[p.errType]
		switch {
		case len(lits) == 0:
			problems = append(problems, fmt.Sprintf("%s: no case literals found in %s (moved or rewritten? update internal/lint)", dir, p.parse))
		case !ok:
			problems = append(problems, fmt.Sprintf("%s: no Hint method found on %s", dir, p.errType))
		case hint == "":
			problems = append(problems, fmt.Sprintf("%s: %s.Hint does not return a plain string literal", dir, p.errType))
		default:
			for _, name := range lits {
				if name == "" {
					continue // the empty string is the flag default, not a user-facing name
				}
				if !strings.Contains(hint, name) {
					problems = append(problems, fmt.Sprintf("%s: %s accepts %q but %s.Hint() (%q) does not mention it", dir, p.parse, name, p.errType, hint))
				}
			}
		}
	}
	return problems, nil
}

// caseLiterals collects every string literal used as a case value in
// any switch statement of the body.
func caseLiterals(body *ast.BlockStmt) []string {
	var lits []string
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			bl, ok := e.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				continue
			}
			if s, err := strconv.Unquote(bl.Value); err == nil {
				lits = append(lits, s)
			}
		}
		return true
	})
	return lits
}

// receiverName returns the bare type name of a method receiver
// ("UnknownKernelError" for *UnknownKernelError).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// returnedString returns the string literal of the body's sole
// single-value return, or "" when the return value is computed (which
// Hints treats as a structural problem for registered pairs — a
// computed hint should derive from the registry and be exempted here
// instead, like bench.UnknownBenchmarkError).
func returnedString(body *ast.BlockStmt) string {
	if len(body.List) != 1 {
		return ""
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	bl, ok := ret.Results[0].(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return ""
	}
	return s
}
