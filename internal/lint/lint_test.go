package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathflow/internal/bench"
)

// TestEngineHints is the ci.sh lint gate: every option name the engine's
// parsers accept must appear in the hint the CLI and serving layer quote
// for the matching Unknown*Error.
func TestEngineHints(t *testing.T) {
	problems, err := Hints(filepath.Join("..", "engine"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestBenchmarkHint covers the registry-derived hint the AST check
// exempts: bench.UnknownBenchmarkError builds its list from All() at
// runtime, so drift there would mean the derivation broke.
func TestBenchmarkHint(t *testing.T) {
	hint := (&bench.UnknownBenchmarkError{Name: "nope"}).Hint()
	for _, b := range bench.All() {
		if !strings.Contains(hint, b.Name) {
			t.Errorf("benchmark %q missing from UnknownBenchmarkError.Hint() (%q)", b.Name, hint)
		}
	}
}

// TestHintsCatchesDrift feeds Hints a synthetic package whose hint
// omits an accepted name, proving the linter actually fires.
func TestHintsCatchesDrift(t *testing.T) {
	dir := t.TempDir()
	src := `package fake

type UnknownKernelError struct{ Name string }

func (e *UnknownKernelError) Hint() string {
	return "valid kernels: packed, boxed"
}

type UnknownClientError struct{ Name string }

func (e *UnknownClientError) Hint() string {
	return "valid clients: none, liveness, availexpr, all"
}

func ParseKernel(s string) int {
	switch s {
	case "", "packed":
		return 0
	case "boxed":
		return 1
	case "sparse": // missing from the hint above
		return 2
	}
	return -1
}

func ParseClients(s string) int {
	switch s {
	case "none", "liveness", "availexpr", "all":
		return 1
	}
	return -1
}
`
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := Hints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"sparse"`) {
		t.Fatalf("want exactly one problem naming \"sparse\", got %v", problems)
	}
}
