package core_test

import (
	"reflect"
	"testing"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	. "pathflow/internal/core"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/opt"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
)

func exampleFuncResult(t *testing.T, o Options) *FuncResult {
	t.Helper()
	f, _, edges := paperex.Build()
	fr, err := AnalyzeFunc(f, paperex.Profile(edges), o)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestAnalyzeFuncFullPipeline(t *testing.T) {
	fr := exampleFuncResult(t, Options{CA: 1.0, CR: 0.6})
	if !fr.Qualified() {
		t.Fatal("pipeline did not qualify")
	}
	if len(fr.Hot) != 4 {
		t.Errorf("hot paths = %d, want 4", len(fr.Hot))
	}
	if fr.Auto.NumStates() != 19 {
		t.Errorf("automaton states = %d, want 19", fr.Auto.NumStates())
	}
	if fr.HPG.G.NumNodes() != 27 {
		t.Errorf("HPG nodes = %d, want 27", fr.HPG.G.NumNodes())
	}
	if fr.Red.G.NumNodes() != 20 {
		t.Errorf("rHPG nodes = %d, want 20", fr.Red.G.NumNodes())
	}
	if fr.FinalGraph() != fr.Red.G {
		t.Error("FinalGraph should be the reduced graph")
	}
	if fr.FinalSol() != fr.RedSol {
		t.Error("FinalSol should be the reduced solution")
	}
	if fr.FinalOverlay() == nil {
		t.Error("FinalOverlay should be non-nil")
	}
	if fr.Times.Total <= 0 || fr.Times.Qualified() <= 0 {
		t.Error("timings not recorded")
	}
}

func TestAnalyzeFuncBaseline(t *testing.T) {
	fr := exampleFuncResult(t, Options{CA: 0, CR: 0.95})
	if fr.Qualified() {
		t.Fatal("CA=0 must not qualify")
	}
	if fr.FinalGraph() != fr.Fn.G {
		t.Error("FinalGraph should be the original graph")
	}
	if fr.FinalOverlay() != nil {
		t.Error("FinalOverlay should be nil at CA=0")
	}
	if fr.FinalOrigNode(3) != 3 {
		t.Error("FinalOrigNode should be identity at CA=0")
	}
	// TranslateEval is the identity at CA=0.
	_, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	got, err := fr.TranslateEval(pr)
	if err != nil {
		t.Fatal(err)
	}
	if got != pr {
		t.Error("TranslateEval should return the input profile at CA=0")
	}
}

func TestAnalyzeFuncNilProfile(t *testing.T) {
	f, _, _ := paperex.Build()
	fr, err := AnalyzeFunc(f, nil, Options{CA: 0.97, CR: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Qualified() {
		t.Error("unprofiled function must not qualify")
	}
	if fr.OrigSol == nil {
		t.Error("baseline analysis must still run")
	}
}

func TestTranslateEvalOntoReduced(t *testing.T) {
	fr := exampleFuncResult(t, Options{CA: 1.0, CR: 0.6})
	_, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	ep, err := fr.TranslateEval(pr)
	if err != nil {
		t.Fatal(err)
	}
	if ep.TotalCount() != pr.TotalCount() {
		t.Errorf("translated count = %d, want %d", ep.TotalCount(), pr.TotalCount())
	}
	freq := profile.NodeFrequencies(ep, fr.Red.G)
	var total int64
	for _, f := range freq {
		total += f
	}
	if total == 0 {
		t.Error("translated profile yields no frequencies")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.CA != 0.97 || o.CR != 0.95 {
		t.Errorf("DefaultOptions = %+v", o)
	}
}

const multiSrc = `
func helper(k) {
	m = input() % 10;
	if (m < 9) { s = 4; } else { s = input() % 16; }
	return k * s + s / 2;
}
func cold(k) {
	return k * 31 % 17;
}
func main() {
	n = arg(0);
	i = 0;
	t = 0;
	while (i < n) {
		t = t + helper(i);
		i = i + 1;
	}
	if (arg(5) == 99) { t = t + cold(t); }
	print(t);
}
`

func analyzeMulti(t *testing.T, o Options) (*cfg.Program, *ProgramResult) {
	t.Helper()
	prog, err := lang.Compile(multiSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ProfileAndAnalyze(prog, interp.Options{
		Args:  []ir.Value{200},
		Input: &interp.SliceInput{Values: stream(7)},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

func stream(seed uint64) []ir.Value {
	vals := make([]ir.Value, 2048)
	x := seed
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0x7fffffff)
	}
	return vals
}

func TestAnalyzeProgramMultiFunction(t *testing.T) {
	prog, res := analyzeMulti(t, Options{CA: 0.97, CR: 0.95})
	if len(res.Funcs) != 3 {
		t.Fatalf("results = %d, want 3", len(res.Funcs))
	}
	if !res.Funcs["main"].Qualified() || !res.Funcs["helper"].Qualified() {
		t.Error("hot functions should qualify")
	}
	// cold is never executed, so it cannot qualify.
	if res.Funcs["cold"].Qualified() {
		t.Error("cold function should not qualify")
	}
	st := res.Stats()
	if st.OrigNodes != prog.NumNodes() {
		t.Errorf("Stats.OrigNodes = %d, want %d", st.OrigNodes, prog.NumNodes())
	}
	if st.HPGNodes < st.OrigNodes || st.RedNodes < st.OrigNodes {
		t.Error("qualified graphs should not shrink below the original")
	}
	if st.RedNodes > st.HPGNodes {
		t.Error("reduction should not grow the HPG")
	}
	if st.HotPaths == 0 || st.TrainPaths == 0 {
		t.Error("path counts missing")
	}
}

func TestOptimizedAndBaselineProgramsEquivalent(t *testing.T) {
	prog, res := analyzeMulti(t, Options{CA: 1.0, CR: 0.95})
	run := func(p *cfg.Program) []ir.Value {
		r, err := interp.Run(p, interp.Options{
			Args:          []ir.Value{200},
			Input:         &interp.SliceInput{Values: stream(7)},
			CollectOutput: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Output
	}
	want := run(prog)
	optProg, optN := res.OptimizedProgram(opt.PassesAll)
	if optN.Total() == 0 {
		t.Error("optimizer folded nothing")
	}
	if got := run(optProg); !reflect.DeepEqual(got, want) {
		t.Errorf("optimized output = %v, want %v", got, want)
	}
	baseProg, baseN := BaselineProgram(prog, opt.PassesAll)
	if got := run(baseProg); !reflect.DeepEqual(got, want) {
		t.Errorf("baseline output = %v, want %v", got, want)
	}
	// The qualified pipeline folds the helper's s-derived constants the
	// baseline cannot see, so it must rewrite strictly more instructions.
	if optN.Total() <= baseN.Total() {
		t.Errorf("qualified rewrites = %+v, baseline rewrites = %+v; want more", optN, baseN)
	}
}

func TestProfileAndAnalyzeErrorOnBadRun(t *testing.T) {
	prog, err := lang.Compile(`func main() { while (1) { x = 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ProfileAndAnalyze(prog, interp.Options{MaxSteps: 100}, DefaultOptions())
	if err == nil {
		t.Error("expected training-run failure to surface")
	}
}

func TestQualifiedConstantsBeatBaselineOnExample(t *testing.T) {
	fr := exampleFuncResult(t, Options{CA: 1.0, CR: 1.0})
	_, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	ep, err := fr.TranslateEval(pr)
	if err != nil {
		t.Fatal(err)
	}
	qual := countConstDyn(fr.FinalGraph(), fr.FinalSol(), ep, fr.Fn.NumVars())
	base := countConstDyn(fr.Fn.G, fr.OrigSol, pr, fr.Fn.NumVars())
	if base != 0 {
		t.Errorf("baseline non-local constants = %d, want 0", base)
	}
	if qual != 400 {
		t.Errorf("qualified non-local constants = %d, want 400", qual)
	}
}

func countConstDyn(g *cfg.Graph, sol *constprop.Result, pr *bl.Profile, numVars int) int64 {
	freq := profile.NodeFrequencies(pr, g)
	var total int64
	for _, nd := range g.Nodes {
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), numVars, true)
		for _, fl := range flags {
			if fl {
				total += freq[nd.ID]
			}
		}
	}
	return total
}
