// Package core assembles the full pipeline of Ammons & Larus (PLDI 1998):
//
//	path profile → hot-path selection (CA) → qualification automaton →
//	data-flow tracing (HPG) → qualified constant propagation →
//	reduction (CR) → reduced HPG + translated profile.
//
// Analyze is the one-call public entry point; FuncResult exposes every
// intermediate artifact so examples, experiments and downstream passes
// can inspect each stage, exactly as the paper envisions subsequent
// compiler passes consuming the traced graph and its profile.
package core

import (
	"fmt"
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/opt"
	"pathflow/internal/profile"
	"pathflow/internal/reduce"
	"pathflow/internal/trace"
)

// Options configures the pipeline.
type Options struct {
	// CA is the hot-path coverage: the minimal set of paths covering
	// this fraction of the training run's dynamic instructions is
	// isolated. CA = 0 disables qualification entirely (the paper's
	// Wegman-Zadek baseline).
	CA float64
	// CR is the reduction benefit cutoff: reduction preserves at least
	// this fraction of the dynamic non-local constants the qualified
	// analysis discovered.
	CR float64
}

// DefaultOptions returns the configuration the paper recommends after its
// sweeps: CA = 0.97, CR = 0.95.
func DefaultOptions() Options { return Options{CA: 0.97, CR: 0.95} }

// Times records wall-clock durations of the pipeline stages.
type Times struct {
	Baseline  time.Duration // Wegman-Zadek on the original graph
	Automaton time.Duration
	Trace     time.Duration
	Analysis  time.Duration // qualified analysis on the HPG
	Reduce    time.Duration
	Total     time.Duration
}

// Qualified returns the extra time qualification added on top of the
// baseline analysis (the paper's Figure 12 numerator).
func (t Times) Qualified() time.Duration {
	return t.Automaton + t.Trace + t.Analysis + t.Reduce
}

// FuncResult holds every artifact the pipeline produces for one function.
type FuncResult struct {
	Fn    *cfg.Func
	Opt   Options
	Train *bl.Profile

	// OrigSol is Wegman-Zadek on the original graph: the CA = 0
	// baseline and the "Iterative" reference for classification.
	OrigSol *constprop.Result

	// Qualified artifacts; nil when CA = 0 or the function was never
	// executed in training.
	Hot     []bl.Path
	Auto    *automaton.Automaton
	HPG     *trace.HPG
	HPGSol  *constprop.Result
	HPGProf *bl.Profile // training profile translated onto the HPG
	Red     *reduce.Reduced
	RedSol  *constprop.Result

	Times Times
}

// Qualified reports whether path qualification ran for this function.
func (r *FuncResult) Qualified() bool { return r.Red != nil }

// FinalGraph returns the graph later passes consume: the reduced HPG, or
// the original graph when qualification did not run.
func (r *FuncResult) FinalGraph() *cfg.Graph {
	if r.Qualified() {
		return r.Red.G
	}
	return r.Fn.G
}

// FinalSol returns the constant-propagation solution on FinalGraph.
func (r *FuncResult) FinalSol() *constprop.Result {
	if r.Qualified() {
		return r.RedSol
	}
	return r.OrigSol
}

// FinalOverlay returns the reduced graph as a profile overlay, or nil
// when qualification did not run.
func (r *FuncResult) FinalOverlay() profile.Overlay {
	if r.Qualified() {
		return r.Red
	}
	return nil
}

// FinalFunc wraps FinalGraph in a cfg.Func.
func (r *FuncResult) FinalFunc() *cfg.Func {
	if r.Qualified() {
		return r.Red.Func()
	}
	return r.Fn
}

// FinalOrigNode maps a FinalGraph node to its original vertex.
func (r *FuncResult) FinalOrigNode(n cfg.NodeID) cfg.NodeID {
	if r.Qualified() {
		return r.Red.OrigNode[n]
	}
	return n
}

// TranslateEval re-expresses an evaluation profile of the original graph
// on FinalGraph (identity when qualification did not run).
func (r *FuncResult) TranslateEval(eval *bl.Profile) (*bl.Profile, error) {
	if !r.Qualified() {
		return eval, nil
	}
	return profile.Translate(eval, r.Fn.G, r.Red)
}

// AnalyzeFunc runs the pipeline on one function. train may be nil for a
// function the training run never executed; qualification is skipped.
func AnalyzeFunc(fn *cfg.Func, train *bl.Profile, o Options) (*FuncResult, error) {
	var hot []bl.Path
	if train != nil && o.CA > 0 {
		hot = profile.SelectHot(train, fn.G, o.CA)
	}
	return AnalyzeFuncHot(fn, train, hot, o)
}

// AnalyzeFuncHot runs the pipeline with an explicitly chosen hot-path
// set, bypassing the coverage-based selection — used by ablations that
// compare selection strategies (e.g. edge-profile estimation against true
// path profiles).
func AnalyzeFuncHot(fn *cfg.Func, train *bl.Profile, hot []bl.Path, o Options) (*FuncResult, error) {
	res := &FuncResult{Fn: fn, Opt: o, Train: train}
	start := time.Now()

	t0 := time.Now()
	res.OrigSol = constprop.Analyze(fn.G, fn.NumVars(), true)
	res.Times.Baseline = time.Since(t0)

	res.Hot = hot
	if len(res.Hot) == 0 || train == nil {
		res.Hot = nil
		res.Times.Total = time.Since(start)
		return res, nil
	}

	t0 = time.Now()
	a, err := automaton.New(fn.G, train.R, res.Hot)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", fn.Name, err)
	}
	res.Auto = a
	res.Times.Automaton = time.Since(t0)

	t0 = time.Now()
	h, err := trace.Build(fn, a)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", fn.Name, err)
	}
	res.HPG = h
	res.Times.Trace = time.Since(t0)

	t0 = time.Now()
	res.HPGSol = constprop.Analyze(h.G, fn.NumVars(), true)
	res.Times.Analysis = time.Since(t0)

	t0 = time.Now()
	res.HPGProf, err = profile.Translate(train, fn.G, h)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", fn.Name, err)
	}
	res.Red, err = reduce.Reduce(h, res.HPGSol, res.HPGProf, reduce.Options{CR: o.CR})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", fn.Name, err)
	}
	res.RedSol = constprop.Analyze(res.Red.G, fn.NumVars(), true)
	res.Times.Reduce = time.Since(t0)

	res.Times.Total = time.Since(start)
	return res, nil
}

// ProgramResult is the pipeline result for a whole program.
type ProgramResult struct {
	Prog  *cfg.Program
	Opt   Options
	Funcs map[string]*FuncResult
}

// AnalyzeProgram runs the pipeline on every function of prog using the
// given training profile.
func AnalyzeProgram(prog *cfg.Program, train *bl.ProgramProfile, o Options) (*ProgramResult, error) {
	out := &ProgramResult{Prog: prog, Opt: o, Funcs: map[string]*FuncResult{}}
	for _, name := range prog.Order {
		var tp *bl.Profile
		if train != nil {
			tp = train.Funcs[name]
		}
		fr, err := AnalyzeFunc(prog.Funcs[name], tp, o)
		if err != nil {
			return nil, err
		}
		out.Funcs[name] = fr
	}
	return out, nil
}

// ProfileAndAnalyze profiles prog on the training input, then analyzes it.
func ProfileAndAnalyze(prog *cfg.Program, trainOpts interp.Options, o Options) (*ProgramResult, *bl.ProgramProfile, error) {
	train, _, err := bl.ProfileProgram(prog, trainOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: training run failed: %w", err)
	}
	res, err := AnalyzeProgram(prog, train, o)
	if err != nil {
		return nil, nil, err
	}
	return res, train, nil
}

// OptimizedProgram folds the discovered constants into each function's
// final graph and assembles a runnable program.
func (pr *ProgramResult) OptimizedProgram() (*cfg.Program, int) {
	out := cfg.NewProgram()
	folded := 0
	for _, name := range pr.Prog.Order {
		fr := pr.Funcs[name]
		g, n := opt.OptimizeGraph(fr.FinalGraph(), fr.Fn.NumVars())
		folded += n
		out.Add(&cfg.Func{
			Name:     fr.Fn.Name,
			Params:   fr.Fn.Params,
			VarNames: fr.Fn.VarNames,
			G:        g,
		})
	}
	return out, folded
}

// BaselineProgram folds the Wegman-Zadek constants into clones of the
// original functions: the paper's "Base" configuration for Table 2.
func BaselineProgram(prog *cfg.Program) (*cfg.Program, int) {
	out := cfg.NewProgram()
	folded := 0
	for _, name := range prog.Order {
		f, n := opt.OptimizeFunc(prog.Funcs[name])
		folded += n
		out.Add(f)
	}
	return out, folded
}

// Stats aggregates program-level size and timing numbers.
type Stats struct {
	OrigNodes, HPGNodes, RedNodes int
	HotPaths                      int
	TrainPaths                    int
	BaselineTime                  time.Duration
	QualifiedTime                 time.Duration
}

// Stats summarizes the analysis.
func (pr *ProgramResult) Stats() Stats {
	var s Stats
	for _, fr := range pr.Funcs {
		s.OrigNodes += fr.Fn.G.NumNodes()
		s.BaselineTime += fr.Times.Baseline
		s.QualifiedTime += fr.Times.Qualified()
		if fr.Train != nil {
			s.TrainPaths += fr.Train.NumPaths()
		}
		s.HotPaths += len(fr.Hot)
		if fr.Qualified() {
			s.HPGNodes += fr.HPG.G.NumNodes()
			s.RedNodes += fr.Red.G.NumNodes()
		} else {
			s.HPGNodes += fr.Fn.G.NumNodes()
			s.RedNodes += fr.Fn.G.NumNodes()
		}
	}
	return s
}
