// Package core is the legacy one-call entry point to the full pipeline
// of Ammons & Larus (PLDI 1998):
//
//	path profile → hot-path selection (CA) → qualification automaton →
//	data-flow tracing (HPG) → qualified constant propagation →
//	reduction (CR) → reduced HPG + translated profile.
//
// The pipeline itself now lives in internal/engine as a staged engine
// with explicit Stage artifacts, context cancellation, bounded parallel
// scheduling and a cross-run artifact cache. This package re-exports the
// engine's types and keeps the original context-free, serial API as thin
// compatibility wrappers so existing callers, tests and examples work
// unchanged. New code that sweeps parameters or analyzes many functions
// should construct an engine.Engine directly.
package core

import (
	"context"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/engine"
	"pathflow/internal/interp"
	"pathflow/internal/opt"
)

// Re-exported engine types: core.Options and friends are the same types
// as their engine counterparts, so the two APIs interoperate freely.
type (
	// Options configures the pipeline (CA = hot-path coverage, CR =
	// reduction benefit cutoff).
	Options = engine.Options
	// Times records wall-clock durations of the pipeline stages.
	Times = engine.Times
	// FuncResult holds every artifact the pipeline produces for one
	// function.
	FuncResult = engine.FuncResult
	// ProgramResult is the pipeline result for a whole program.
	ProgramResult = engine.ProgramResult
	// Stats aggregates program-level size and timing numbers.
	Stats = engine.Stats
)

// DefaultOptions returns the configuration the paper recommends after its
// sweeps: CA = 0.97, CR = 0.95.
func DefaultOptions() Options { return engine.DefaultOptions() }

// compat is the engine configuration equivalent to the historical
// pipeline: serial, uncached, never cancelled.
var compat = engine.Serial()

// AnalyzeFunc runs the pipeline on one function. train may be nil for a
// function the training run never executed; qualification is skipped.
func AnalyzeFunc(fn *cfg.Func, train *bl.Profile, o Options) (*FuncResult, error) {
	return compat.AnalyzeFunc(context.Background(), fn, train, o)
}

// AnalyzeFuncHot runs the pipeline with an explicitly chosen hot-path
// set, bypassing the coverage-based selection — used by ablations that
// compare selection strategies (e.g. edge-profile estimation against true
// path profiles).
func AnalyzeFuncHot(fn *cfg.Func, train *bl.Profile, hot []bl.Path, o Options) (*FuncResult, error) {
	return compat.AnalyzeFuncHot(context.Background(), fn, train, hot, o)
}

// AnalyzeProgram runs the pipeline on every function of prog using the
// given training profile.
func AnalyzeProgram(prog *cfg.Program, train *bl.ProgramProfile, o Options) (*ProgramResult, error) {
	return compat.AnalyzeProgram(context.Background(), prog, train, o)
}

// ProfileAndAnalyze profiles prog on the training input, then analyzes it.
func ProfileAndAnalyze(prog *cfg.Program, trainOpts interp.Options, o Options) (*ProgramResult, *bl.ProgramProfile, error) {
	return compat.ProfileAndAnalyze(context.Background(), prog, trainOpts, o)
}

// BaselineProgram runs the selected optimizer passes on clones of the
// original functions: with opt.PassConst, the paper's "Base"
// configuration for Table 2.
func BaselineProgram(prog *cfg.Program, ps opt.Passes) (*cfg.Program, opt.Counts) {
	return engine.BaselineProgram(prog, ps)
}
