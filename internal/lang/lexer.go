package lang

import (
	"strconv"
	"strings"
)

// lexer turns source text into tokens. It supports // line comments and
// /* block */ comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return errf(startLine, startCol, "unterminated block comment")
				}
				if lx.peekByte() == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharPuncts are matched before single characters.
var twoCharPuncts = []string{"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peekByte()
	switch {
	case c >= '0' && c <= '9':
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(line, col, "integer literal %s out of range", text)
		}
		return Token{Kind: TokInt, Text: text, Val: v, Line: line, Col: col}, nil
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}
	for _, p := range twoCharPuncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.advance()
			lx.advance()
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '(', ')', '{', '}', ',', ';':
		lx.advance()
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole source, appending a final EOF token.
func lexAll(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
