package lang

import (
	"fmt"

	"pathflow/internal/cfg"
	"pathflow/internal/ir"
)

// Compile parses and lowers a source file into a CFG program. Every
// function is validated structurally before being returned.
func Compile(src string) (*cfg.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(file)
}

// MustCompile is Compile that panics on error; intended for the built-in
// benchmark programs, whose sources are compile-time constants.
func MustCompile(src string) *cfg.Program {
	p, err := Compile(src)
	if err != nil {
		panic(fmt.Sprintf("lang: MustCompile: %v", err))
	}
	return p
}

// Lower converts a parsed file into a CFG program.
func Lower(file *File) (*cfg.Program, error) {
	// Collect signatures first so calls can be checked during lowering.
	arity := map[string]int{}
	for _, fn := range file.Funcs {
		if _, dup := arity[fn.Name]; dup {
			return nil, errf(fn.Pos.Line, fn.Pos.Col, "duplicate function %q", fn.Name)
		}
		arity[fn.Name] = len(fn.Params)
	}
	prog := cfg.NewProgram()
	for _, fn := range file.Funcs {
		lw := &lowerer{arity: arity, vars: map[string]ir.Var{}}
		f, err := lw.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		if err := f.G.Validate(f.NumVars()); err != nil {
			return nil, fmt.Errorf("lang: internal error lowering %s: %w", fn.Name, err)
		}
		prog.Add(f)
	}
	return prog, nil
}

type loopCtx struct {
	head  cfg.NodeID // continue target
	after cfg.NodeID // break target
}

type lowerer struct {
	arity map[string]int
	f     *cfg.Func
	g     *cfg.Graph
	cur   cfg.NodeID
	vars  map[string]ir.Var
	loops []loopCtx
	nNode int
}

func (lw *lowerer) lowerFunc(fn *FuncDecl) (*cfg.Func, error) {
	lw.g = cfg.New(fn.Name)
	lw.f = &cfg.Func{Name: fn.Name, G: lw.g}
	for _, p := range fn.Params {
		if _, dup := lw.vars[p]; dup {
			return nil, errf(fn.Pos.Line, fn.Pos.Col, "duplicate parameter %q in %s", p, fn.Name)
		}
		v := lw.newVar(p)
		lw.vars[p] = v
		lw.f.Params = append(lw.f.Params, v)
	}
	first := lw.newBlock()
	lw.g.AddEdge(lw.g.Entry, first)
	lw.cur = first
	if err := lw.block(fn.Body); err != nil {
		return nil, err
	}
	// Implicit void return at the end of the body, if it is reachable.
	if lw.cur != cfg.NoNode {
		lw.terminateReturn(ir.NoVar)
	}
	// Any block left dangling (dead code after return/break, or a join no
	// arm reaches) becomes an unreachable void return so the graph
	// validates.
	for _, n := range lw.g.Nodes {
		if n.ID != lw.g.Exit && n.Kind == cfg.TermJump && len(n.Out) == 0 {
			n.Kind = cfg.TermReturn
			n.Ret = ir.NoVar
			lw.g.AddEdge(n.ID, lw.g.Exit)
		}
	}
	return lw.f, nil
}

func (lw *lowerer) newVar(name string) ir.Var {
	v := ir.Var(len(lw.f.VarNames))
	lw.f.VarNames = append(lw.f.VarNames, name)
	return v
}

func (lw *lowerer) newTemp() ir.Var { return lw.newVar("") }

func (lw *lowerer) newBlock() cfg.NodeID {
	lw.nNode++
	return lw.g.AddNode(fmt.Sprintf("b%d", lw.nNode))
}

// ensureBlock makes sure there is a current block to emit into: code after
// a return/break/continue lands in a fresh block that will be unreachable.
func (lw *lowerer) ensureBlock() {
	if lw.cur == cfg.NoNode {
		lw.cur = lw.newBlock()
	}
}

func (lw *lowerer) emit(in ir.Instr) {
	lw.ensureBlock()
	nd := lw.g.Node(lw.cur)
	nd.Instrs = append(nd.Instrs, in)
}

// terminateJump ends the current block with a jump to target; the lowerer
// has no current block afterwards.
func (lw *lowerer) terminateJump(target cfg.NodeID) {
	lw.ensureBlock()
	nd := lw.g.Node(lw.cur)
	nd.Kind = cfg.TermJump
	lw.g.AddEdge(lw.cur, target)
	lw.cur = cfg.NoNode
}

func (lw *lowerer) terminateReturn(ret ir.Var) {
	lw.ensureBlock()
	nd := lw.g.Node(lw.cur)
	nd.Kind = cfg.TermReturn
	nd.Ret = ret
	lw.g.AddEdge(lw.cur, lw.g.Exit)
	lw.cur = cfg.NoNode
}

// terminateBranch ends the current block with a two-way branch; the
// lowerer has no current block afterwards (callers position lw.cur).
func (lw *lowerer) terminateBranch(cond ir.Var, trueTarget, falseTarget cfg.NodeID) {
	lw.ensureBlock()
	nd := lw.g.Node(lw.cur)
	nd.Kind = cfg.TermBranch
	nd.Cond = cond
	lw.g.AddEdge(lw.cur, trueTarget)  // slot 0: taken
	lw.g.AddEdge(lw.cur, falseTarget) // slot 1: fallthrough
	lw.cur = cfg.NoNode
}

func (lw *lowerer) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return lw.block(st)
	case *AssignStmt:
		dst, ok := lw.vars[st.Name]
		if !ok {
			dst = lw.newVar(st.Name)
			lw.vars[st.Name] = dst
		}
		return lw.exprInto(st.X, dst)
	case *PrintStmt:
		v, err := lw.expr(st.X)
		if err != nil {
			return err
		}
		lw.emit(ir.Instr{Op: ir.Print, Dst: ir.NoVar, A: v, B: ir.NoVar})
		return nil
	case *ExprStmt:
		_, err := lw.expr(st.X)
		return err
	case *ReturnStmt:
		ret := ir.NoVar
		if st.X != nil {
			v, err := lw.expr(st.X)
			if err != nil {
				return err
			}
			ret = v
		}
		lw.terminateReturn(ret)
		return nil
	case *BreakStmt:
		if len(lw.loops) == 0 {
			return errf(st.Pos.Line, st.Pos.Col, "break outside loop")
		}
		lw.terminateJump(lw.loops[len(lw.loops)-1].after)
		return nil
	case *ContinueStmt:
		if len(lw.loops) == 0 {
			return errf(st.Pos.Line, st.Pos.Col, "continue outside loop")
		}
		lw.terminateJump(lw.loops[len(lw.loops)-1].head)
		return nil
	case *IfStmt:
		return lw.ifStmt(st)
	case *WhileStmt:
		return lw.whileStmt(st)
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (lw *lowerer) ifStmt(st *IfStmt) error {
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.newBlock()
	join := lw.newBlock()
	elseB := join
	if st.Else != nil {
		elseB = lw.newBlock()
	}
	lw.terminateBranch(cond, thenB, elseB)

	lw.cur = thenB
	if err := lw.block(st.Then); err != nil {
		return err
	}
	if lw.cur != cfg.NoNode {
		lw.terminateJump(join)
	}

	if st.Else != nil {
		lw.cur = elseB
		if err := lw.stmt(st.Else); err != nil {
			return err
		}
		if lw.cur != cfg.NoNode {
			lw.terminateJump(join)
		}
	}
	lw.cur = join
	return nil
}

func (lw *lowerer) whileStmt(st *WhileStmt) error {
	head := lw.newBlock()
	lw.terminateJump(head)
	lw.cur = head
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	// The condition may itself branch (short-circuit operators), so the
	// block holding the final branch may differ from head; continue must
	// target head, where condition evaluation restarts.
	body := lw.newBlock()
	after := lw.newBlock()
	lw.terminateBranch(cond, body, after)
	lw.loops = append(lw.loops, loopCtx{head: head, after: after})
	lw.cur = body
	if err := lw.block(st.Body); err != nil {
		return err
	}
	if lw.cur != cfg.NoNode {
		lw.terminateJump(head) // the loop's retreating edge
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = after
	return nil
}

// expr lowers an expression and returns the register holding its value.
func (lw *lowerer) expr(e Expr) (ir.Var, error) {
	dst := lw.newTemp()
	if err := lw.exprInto(e, dst); err != nil {
		return ir.NoVar, err
	}
	return dst, nil
}

var binOps = map[string]ir.Op{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Mod,
	"==": ir.Eq, "!=": ir.Ne, "<": ir.Lt, "<=": ir.Le, ">": ir.Gt, ">=": ir.Ge,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
}

// exprInto lowers an expression so its value lands in dst.
func (lw *lowerer) exprInto(e Expr, dst ir.Var) error {
	switch x := e.(type) {
	case *IntLit:
		lw.emit(ir.Instr{Op: ir.Const, Dst: dst, A: ir.NoVar, B: ir.NoVar, K: x.Val})
		return nil
	case *VarRef:
		src, ok := lw.vars[x.Name]
		if !ok {
			return errf(x.Pos.Line, x.Pos.Col, "undefined variable %q", x.Name)
		}
		lw.emit(ir.Instr{Op: ir.Copy, Dst: dst, A: src, B: ir.NoVar})
		return nil
	case *InputExpr:
		lw.emit(ir.Instr{Op: ir.Input, Dst: dst, A: ir.NoVar, B: ir.NoVar})
		return nil
	case *ArgExpr:
		lw.emit(ir.Instr{Op: ir.Arg, Dst: dst, A: ir.NoVar, B: ir.NoVar, K: x.Index})
		return nil
	case *UnaryExpr:
		v, err := lw.expr(x.X)
		if err != nil {
			return err
		}
		op := ir.Neg
		if x.Op == "!" {
			op = ir.Not
		}
		lw.emit(ir.Instr{Op: op, Dst: dst, A: v, B: ir.NoVar})
		return nil
	case *CallExpr:
		want, ok := lw.arity[x.Name]
		if !ok {
			return errf(x.Pos.Line, x.Pos.Col, "call to undefined function %q", x.Name)
		}
		if want != len(x.Args) {
			return errf(x.Pos.Line, x.Pos.Col, "%s takes %d arguments, got %d", x.Name, want, len(x.Args))
		}
		args := make([]ir.Var, len(x.Args))
		for i, a := range x.Args {
			v, err := lw.expr(a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		lw.emit(ir.Instr{Op: ir.Call, Dst: dst, A: ir.NoVar, B: ir.NoVar, Callee: x.Name, Args: args})
		return nil
	case *BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			return lw.shortCircuit(x, dst)
		}
		op, ok := binOps[x.Op]
		if !ok {
			return errf(x.Pos.Line, x.Pos.Col, "unknown operator %q", x.Op)
		}
		l, err := lw.expr(x.L)
		if err != nil {
			return err
		}
		r, err := lw.expr(x.R)
		if err != nil {
			return err
		}
		lw.emit(ir.Instr{Op: op, Dst: dst, A: l, B: r})
		return nil
	}
	return fmt.Errorf("lang: unknown expression %T", e)
}

// shortCircuit lowers && and || to control flow, producing 0 or 1 in dst.
func (lw *lowerer) shortCircuit(x *BinaryExpr, dst ir.Var) error {
	l, err := lw.expr(x.L)
	if err != nil {
		return err
	}
	rhsB := lw.newBlock()
	shortB := lw.newBlock()
	join := lw.newBlock()
	if x.Op == "&&" {
		// l true -> evaluate rhs; l false -> dst = 0
		lw.terminateBranch(l, rhsB, shortB)
	} else {
		// l true -> dst = 1; l false -> evaluate rhs
		lw.terminateBranch(l, shortB, rhsB)
	}

	lw.cur = shortB
	k := int64(0)
	if x.Op == "||" {
		k = 1
	}
	lw.emit(ir.Instr{Op: ir.Const, Dst: dst, A: ir.NoVar, B: ir.NoVar, K: k})
	lw.terminateJump(join)

	lw.cur = rhsB
	r, err := lw.expr(x.R)
	if err != nil {
		return err
	}
	zero := lw.newTemp()
	lw.emit(ir.Instr{Op: ir.Const, Dst: zero, A: ir.NoVar, B: ir.NoVar, K: 0})
	lw.emit(ir.Instr{Op: ir.Ne, Dst: dst, A: r, B: zero})
	lw.terminateJump(join)

	lw.cur = join
	return nil
}
