package lang

// The AST mirrors the concrete syntax closely; lowering (see lower.go)
// flattens it into IR.

// File is a parsed source file.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is one function declaration.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Pos    Pos
}

// Stmt is implemented by every statement node.
type Stmt interface{ stmt() }

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// AssignStmt is `name = expr;` (also used for `var name = expr;`).
type AssignStmt struct {
	Name string
	X    Expr
	Pos  Pos
}

// IfStmt is `if (cond) { ... } else ...`; Else may be nil, a *Block, or
// another *IfStmt (for else-if chains).
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt
	Pos  Pos
}

// WhileStmt is `while (cond) { ... }`.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// PrintStmt is `print(expr);`.
type PrintStmt struct {
	X   Expr
	Pos Pos
}

// ReturnStmt is `return;` or `return expr;`.
type ReturnStmt struct {
	X   Expr // nil for void return
	Pos Pos
}

// BreakStmt is `break;`.
type BreakStmt struct{ Pos Pos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ Pos Pos }

// ExprStmt is a bare call expression used for effect, `f(x);`.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmt()        {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*PrintStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is implemented by every expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// VarRef reads a variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// UnaryExpr applies "-" or "!".
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// BinaryExpr applies an arithmetic, comparison, bitwise, or short-circuit
// operator ("&&"/"||" lower to control flow).
type BinaryExpr struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// CallExpr invokes a declared function.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// InputExpr is `input()`: the next value of the run's input stream.
type InputExpr struct{ Pos Pos }

// ArgExpr is `arg(k)`: fixed run parameter k.
type ArgExpr struct {
	Index int64
	Pos   Pos
}

func (*IntLit) expr()     {}
func (*VarRef) expr()     {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CallExpr) expr()   {}
func (*InputExpr) expr()  {}
func (*ArgExpr) expr()    {}
