// Package lang implements the small C-like language that pathflow's
// benchmark programs and examples are written in. It stands in for the
// paper's SUIF C front end: a lexer, a recursive-descent parser, and a
// lowering pass from the AST to the register IR and CFG of
// internal/ir and internal/cfg.
//
// The language is expression-oriented over 64-bit integers. Opaque value
// sources are explicit: input() reads the next value of the run's input
// stream, arg(k) reads a fixed run parameter. Short-circuit && and ||
// lower to control flow, which is one of the ways benchmark programs grow
// interesting path structure.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokPunct // one of the operator/punctuation spellings below
	TokKeyword
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // TokInt
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokInt:
		return fmt.Sprintf("integer %d", t.Val)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"func": true, "if": true, "else": true, "while": true, "return": true,
	"print": true, "break": true, "continue": true, "input": true, "arg": true,
	"var": true,
}

// Pos is a source position for error reporting.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(line, col int, format string, args ...any) error {
	return &Error{Pos: Pos{line, col}, Msg: fmt.Sprintf(format, args...)}
}
