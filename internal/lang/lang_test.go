package lang

import (
	"strings"
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/ir"
)

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, name := range p.Order {
		f := p.Funcs[name]
		if err := f.G.Validate(f.NumVars()); err != nil {
			t.Fatalf("Validate(%s): %v", name, err)
		}
	}
	return p
}

func TestCompileMinimal(t *testing.T) {
	p := compile(t, `func main() { x = 1; print(x); }`)
	f := p.Main()
	if f == nil || f.Name != "main" {
		t.Fatalf("Main() = %v, want main", f)
	}
	if got := f.G.NumNodes(); got < 3 {
		t.Errorf("NumNodes = %d, want >= 3 (entry, body, exit)", got)
	}
}

func TestCompileIfElse(t *testing.T) {
	p := compile(t, `
func main() {
	x = input();
	if (x > 0) { y = 1; } else { y = 2; }
	print(y);
}`)
	g := p.Main().G
	branches := 0
	for _, n := range g.Nodes {
		if n.Kind == cfg.TermBranch {
			branches++
		}
	}
	if branches != 1 {
		t.Errorf("branch nodes = %d, want 1", branches)
	}
}

func TestCompileWhileHasRetreatingEdge(t *testing.T) {
	p := compile(t, `
func main() {
	i = 0;
	while (i < 10) { i = i + 1; }
	print(i);
}`)
	g := p.Main().G
	dfs := g.DepthFirst()
	if len(dfs.Retreating) != 1 {
		t.Fatalf("retreating edges = %d, want 1", len(dfs.Retreating))
	}
	if !g.Reducible() {
		t.Error("loop CFG should be reducible")
	}
}

func TestCompileElseIfChain(t *testing.T) {
	compile(t, `
func main() {
	x = input();
	if (x == 1) { y = 1; }
	else if (x == 2) { y = 2; }
	else { y = 3; }
	print(y);
}`)
}

func TestCompileShortCircuit(t *testing.T) {
	p := compile(t, `
func main() {
	a = input();
	b = input();
	if (a > 0 && b > 0) { print(1); }
	if (a > 0 || b > 0) { print(2); }
}`)
	g := p.Main().G
	branches := 0
	for _, n := range g.Nodes {
		if n.Kind == cfg.TermBranch {
			branches++
		}
	}
	// each && / || adds one extra branch beyond its if
	if branches != 4 {
		t.Errorf("branch nodes = %d, want 4", branches)
	}
}

func TestCompileCalls(t *testing.T) {
	p := compile(t, `
func helper(a, b) { return a + b; }
func main() { x = helper(1, 2); print(x); }`)
	if len(p.Order) != 2 {
		t.Fatalf("functions = %d, want 2", len(p.Order))
	}
	if got := p.Funcs["helper"]; len(got.Params) != 2 {
		t.Errorf("helper params = %d, want 2", len(got.Params))
	}
}

func TestCompileBreakContinue(t *testing.T) {
	compile(t, `
func main() {
	i = 0;
	while (1) {
		i = i + 1;
		if (i % 2 == 0) { continue; }
		if (i > 10) { break; }
	}
	print(i);
}`)
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `func main() { print(x); }`, "undefined variable"},
		{"undefined func", `func main() { x = f(); print(x); }`, "undefined function"},
		{"arity", `func f(a) { return a; } func main() { x = f(); print(x); }`, "takes 1 arguments"},
		{"break outside", `func main() { break; }`, "break outside loop"},
		{"continue outside", `func main() { continue; }`, "continue outside loop"},
		{"dup func", `func f() {} func f() {}`, "duplicate function"},
		{"dup param", `func f(a, a) {} func main() {}`, "duplicate parameter"},
		{"syntax", `func main() { x = ; }`, "unexpected"},
		{"unterminated", `func main() { x = 1;`, "unterminated block"},
		{"bad char", `func main() { x = #; }`, "unexpected character"},
		{"stmt call only", `func main() { 1 + 2; }`, "unexpected"},
		{"empty", ``, "empty program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("Compile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCompileComments(t *testing.T) {
	compile(t, `
// line comment
func main() {
	/* block
	   comment */
	x = 1; // trailing
	print(x);
}`)
}

func TestLowerConstOnlyThroughConstInstr(t *testing.T) {
	// The paper's taxonomy relies on constants entering only via Const.
	p := compile(t, `func main() { x = 1 + 2; print(x); }`)
	g := p.Main().G
	consts, adds := 0, 0
	for _, n := range g.Nodes {
		for _, in := range n.Instrs {
			switch in.Op {
			case ir.Const:
				consts++
			case ir.Add:
				adds++
			}
		}
	}
	if consts != 2 || adds != 1 {
		t.Errorf("consts=%d adds=%d, want 2 and 1", consts, adds)
	}
}

func TestVarSugar(t *testing.T) {
	compile(t, `func main() { var x = 3; print(x); }`)
}

func TestMustCompile(t *testing.T) {
	p := MustCompile(`func main() { print(1); }`)
	if p.Main() == nil {
		t.Fatal("MustCompile returned empty program")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad source")
		}
	}()
	MustCompile(`func main() {`)
}

func TestDeadCodeAfterReturn(t *testing.T) {
	// Statements after a return land in an unreachable block that must
	// still validate (the lowering's dangling-block pass).
	p := compile(t, `
func main() {
	return;
	x = 1;
	print(x);
}`)
	g := p.Main().G
	dfs := g.DepthFirst()
	unreachable := 0
	for _, nd := range g.Nodes {
		if !dfs.Reachable(nd.ID) {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Error("expected an unreachable block for dead code")
	}
}

func TestDeadJoinAfterBothArmsReturn(t *testing.T) {
	compile(t, `
func main() {
	x = input();
	if (x > 0) { return 1; } else { return 2; }
}`)
}

func TestNestedLoopsAndBreakTargets(t *testing.T) {
	p := compile(t, `
func main() {
	i = 0;
	total = 0;
	while (i < 5) {
		j = 0;
		while (j < 5) {
			if (j == 3) { break; }
			if (j == 1) { j = j + 2; continue; }
			total = total + 1;
			j = j + 1;
		}
		i = i + 1;
	}
	print(total);
}`)
	if got := len(p.Main().G.NaturalLoops()); got != 2 {
		t.Errorf("loops = %d, want 2", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, err := Compile("func main() { /* never closed")
	if err == nil || !strings.Contains(err.Error(), "unterminated block comment") {
		t.Errorf("err = %v", err)
	}
}

func TestHugeIntLiteralRejected(t *testing.T) {
	_, err := Compile(`func main() { x = 99999999999999999999; print(x); }`)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestOperatorPrecedenceLowering(t *testing.T) {
	// Spot-check precedence through the full compile+shape: shifts bind
	// tighter than +, comparisons looser than arithmetic.
	p := compile(t, `func main() { x = 1 + 2 * 3; y = 1 << 2 + 1; z = x < y == 1; print(z); }`)
	if p.Main().G.NumInstrs() == 0 {
		t.Fatal("no instructions")
	}
}
