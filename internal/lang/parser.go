package lang

// parser is a recursive-descent parser over the token slice.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete source file.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(TokEOF, "") {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	if len(f.Funcs) == 0 {
		return nil, errf(1, 1, "empty program: expected at least one func")
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) curPos() Pos { t := p.cur(); return Pos{t.Line, t.Col} }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			switch kind {
			case TokIdent:
				want = "identifier"
			case TokInt:
				want = "integer"
			default:
				want = "token"
			}
			return t, errf(t.Line, t.Col, "expected %s, found %s", want, t)
		}
		return t, errf(t.Line, t.Col, "expected %q, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	start := p.curPos()
	if _, err := p.expect(TokKeyword, "func"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	if !p.at(TokPunct, ")") {
		for {
			id, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, id.Text)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Pos: start}, nil
}

func (p *parser) block() (*Block, error) {
	start := p.curPos()
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: start}
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, errf(start.Line, start.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // consume "}"
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	pos := Pos{t.Line, t.Col}
	switch {
	case p.at(TokPunct, "{"):
		return p.block()
	case p.accept(TokKeyword, "var"):
		// `var x = e;` is sugar for an assignment; all variables are
		// function-scoped, declared on first write.
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, X: x, Pos: pos}, nil
	case p.accept(TokKeyword, "if"):
		return p.ifStmt(pos)
	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case p.accept(TokKeyword, "print"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &PrintStmt{X: x, Pos: pos}, nil
	case p.accept(TokKeyword, "return"):
		var x Expr
		if !p.at(TokPunct, ";") {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: pos}, nil
	case p.accept(TokKeyword, "break"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case p.accept(TokKeyword, "continue"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case t.Kind == TokIdent:
		// Either an assignment or a bare call statement.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "(" {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
			if _, ok := x.(*CallExpr); !ok {
				return nil, errf(pos.Line, pos.Col, "expression statement must be a call")
			}
			return &ExprStmt{X: x, Pos: pos}, nil
		}
		name, _ := p.expect(TokIdent, "")
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, X: x, Pos: pos}, nil
	}
	return nil, errf(t.Line, t.Col, "unexpected %s at start of statement", t)
}

func (p *parser) ifStmt(pos Pos) (Stmt, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.accept(TokKeyword, "else") {
		if p.accept(TokKeyword, "if") {
			elsePos := p.curPos()
			st.Else, err = p.ifStmt(elsePos)
		} else {
			st.Else, err = p.block()
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Expression parsing with precedence climbing.

type precLevel struct {
	ops []string
}

// levels from loosest to tightest; && and || get their own levels so they
// short-circuit correctly during lowering.
var levels = []precLevel{
	{[]string{"||"}},
	{[]string{"&&"}},
	{[]string{"==", "!=", "<", "<=", ">", ">="}},
	{[]string{"+", "-", "|", "^"}},
	{[]string{"*", "/", "%", "&", "<<", ">>"}},
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(level int) (Expr, error) {
	if level >= len(levels) {
		return p.unary()
	}
	l, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range levels[level].ops {
			if p.at(TokPunct, op) {
				pos := p.curPos()
				p.pos++
				r, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				l = &BinaryExpr{Op: op, L: l, R: r, Pos: pos}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	pos := Pos{t.Line, t.Col}
	if p.accept(TokPunct, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, Pos: pos}, nil
	}
	if p.accept(TokPunct, "!") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x, Pos: pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	pos := Pos{t.Line, t.Col}
	switch {
	case t.Kind == TokInt:
		p.pos++
		return &IntLit{Val: t.Val, Pos: pos}, nil
	case p.accept(TokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case p.accept(TokKeyword, "input"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &InputExpr{Pos: pos}, nil
	case p.accept(TokKeyword, "arg"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		idx, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &ArgExpr{Index: idx.Val, Pos: pos}, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.accept(TokPunct, "(") {
			var args []Expr
			if !p.at(TokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args, Pos: pos}, nil
		}
		return &VarRef{Name: t.Text, Pos: pos}, nil
	}
	return nil, errf(t.Line, t.Col, "unexpected %s in expression", t)
}
