package liveness_test

import (
	"testing"

	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/lang"
	. "pathflow/internal/liveness"
	"pathflow/internal/progen"
)

// TestPackedMatchesBoxed checks the packed bitset kernel against the
// boxed reference on generated programs, both unguided and guided by a
// constant-propagation solution (the engine's configuration).
func TestPackedMatchesBoxed(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()
			guides := map[string]*dataflow.Solution{
				"unguided": nil,
				"guided":   constprop.Analyze(fn.G, nv, true).Sol,
			}
			for mode, guide := range guides {
				boxed := Analyze(fn.G, nv, guide)
				packed := AnalyzePacked(fn.G, nv, guide)
				lat := &Problem{NumVars: nv, Guide: guide}
				rep := oracle.Differential("liveness", name, lat, boxed.Sol, packed.Sol)
				if err := rep.Err(); err != nil {
					t.Errorf("seed %d func %s %s: %v", seed, name, mode, err)
				}
			}
		}
	}
}
