// Package liveness implements live-variable analysis as a backward
// client of the generic data-flow framework — the first non-forward
// problem in the repo, demonstrating that the hot-path qualification
// machinery is direction-agnostic.
//
// A register is live at a program point if some executable path from
// that point reads it before writing it. The analysis is a classic
// bit-vector problem (meet = union over successors, transfer =
// uses ∪ (out ∖ defs)), so on the raw CFG every join is as conservative
// as the control flow allows. Precision on the hot path graph comes from
// *conditioning*: when a Guide solution (typically Wegman-Zadek constant
// propagation over the same graph) proves edges non-executable or nodes
// unreachable, liveness only propagates along the remaining executable
// edges. Because the HPG lets constant propagation decide strictly more
// branches than the CFG (paper §5), the guided live sets on the HPG are
// pointwise subsets of the CFG's — stores that look live at a CFG join
// become provably dead on the hot path, which `opt` then deletes.
package liveness

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// Set is a bit set over a function's registers. Sets are facts: treat
// them as immutable once handed to the solver.
type Set []uint64

// NewSet returns an empty set sized for numVars registers.
func NewSet(numVars int) Set { return make(Set, (numVars+63)/64) }

// Clone copies the set.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// Has reports whether register v is in the set.
func (s Set) Has(v ir.Var) bool {
	if !v.Valid() {
		return false
	}
	return s[v/64]&(1<<(uint(v)%64)) != 0
}

// Add inserts register v (in place).
func (s Set) Add(v ir.Var) {
	if v.Valid() {
		s[v/64] |= 1 << (uint(v) % 64)
	}
}

// Remove deletes register v (in place).
func (s Set) Remove(v ir.Var) {
	if v.Valid() {
		s[v/64] &^= 1 << (uint(v) % 64)
	}
}

// Union returns a fresh set holding s ∪ o.
func (s Set) Union(o Set) Set {
	out := s.Clone()
	for i := range o {
		out[i] |= o[i]
	}
	return out
}

// Equal reports whether the two sets hold the same registers.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of registers in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// SubsetOf reports whether every register of s is also in o.
func (s Set) SubsetOf(o Set) bool {
	for i := range s {
		if s[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Problem is the live-variable data-flow problem over one graph.
type Problem struct {
	NumVars int
	// Guide optionally conditions the analysis on a prior forward
	// solution over the *same* graph (node reachability and edge
	// executability, e.g. from conditional constant propagation): facts
	// flow only along edges the guide found executable. nil analyzes
	// all control flow.
	Guide *dataflow.Solution
}

var (
	_ dataflow.Problem     = (*Problem)(nil)
	_ dataflow.Directional = (*Problem)(nil)
)

// Direction declares the problem backward.
func (p *Problem) Direction() dataflow.Direction { return dataflow.Backward }

// Entry returns the fact at the function's exit: nothing is live after
// the function returns (the returned register is consumed by the return
// node itself).
func (p *Problem) Entry() dataflow.Fact { return NewSet(p.NumVars) }

// Meet unions two live sets (may-analysis).
func (p *Problem) Meet(a, b dataflow.Fact) dataflow.Fact {
	return a.(Set).Union(b.(Set))
}

// Equal compares two live sets.
func (p *Problem) Equal(a, b dataflow.Fact) bool {
	return a.(Set).Equal(b.(Set))
}

// Transfer computes the block's live-in from its live-out and delivers
// it to the executable in-edges (one slot per in-edge, nil = edge not
// executable under the guide).
func (p *Problem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	if p.Guide != nil && !p.Guide.Reached[n] {
		return // node is dead code under the guide: propagate nothing
	}
	liveIn := BlockLiveIn(g, n, in.(Set))
	nd := g.Node(n)
	for i, eid := range nd.In {
		if p.Guide != nil && !p.Guide.EdgeExecutable[eid] {
			continue
		}
		out[i] = liveIn
	}
}

// BlockLiveIn computes the live set at node n's entry from the live set
// out at its exit: terminator uses first, then the instructions in
// reverse (kill the destination, then gen the uses, so an instruction
// reading its own destination keeps it live above).
func BlockLiveIn(g *cfg.Graph, n cfg.NodeID, out Set) Set {
	live := out.Clone()
	nd := g.Node(n)
	switch nd.Kind {
	case cfg.TermBranch:
		live.Add(nd.Cond)
	case cfg.TermReturn:
		live.Add(nd.Ret)
	}
	var uses []ir.Var
	for i := len(nd.Instrs) - 1; i >= 0; i-- {
		in := &nd.Instrs[i]
		if in.HasDst() {
			live.Remove(in.Dst)
		}
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			live.Add(u)
		}
	}
	return live
}

// Result bundles a solved liveness problem with its graph.
type Result struct {
	G       *cfg.Graph
	Sol     *dataflow.Solution
	NumVars int
}

// Analyze runs live-variable analysis over g. guide, when non-nil,
// restricts propagation to the executable sub-graph of a prior forward
// solution over the same g (see Problem.Guide).
func Analyze(g *cfg.Graph, numVars int, guide *dataflow.Solution) *Result {
	p := &Problem{NumVars: numVars, Guide: guide}
	return &Result{G: g, Sol: dataflow.Solve(g, p), NumVars: numVars}
}

// LiveOut returns the live set at node n's exit, or nil if no executable
// path from n reaches the function exit (dead code, or code the guide
// proved unreachable — nothing it computes can be observed).
func (r *Result) LiveOut(n cfg.NodeID) Set {
	if f := r.Sol.In[n]; f != nil {
		return f.(Set)
	}
	return nil
}

// LiveIn returns the live set at node n's entry (nil for nodes with no
// executable path to exit).
func (r *Result) LiveIn(n cfg.NodeID) Set {
	out := r.LiveOut(n)
	if out == nil {
		return nil
	}
	return BlockLiveIn(r.G, n, out)
}

// DeadStores reports, per instruction of node n, whether the instruction
// is a dead store: a pure instruction whose destination is not live
// immediately after it. Nodes without liveness information yield no dead
// stores (conservative).
func (r *Result) DeadStores(n cfg.NodeID) []bool {
	out := r.LiveOut(n)
	nd := r.G.Node(n)
	flags := make([]bool, len(nd.Instrs))
	if out == nil {
		return flags
	}
	live := out.Clone()
	switch nd.Kind {
	case cfg.TermBranch:
		live.Add(nd.Cond)
	case cfg.TermReturn:
		live.Add(nd.Ret)
	}
	var uses []ir.Var
	for i := len(nd.Instrs) - 1; i >= 0; i-- {
		in := &nd.Instrs[i]
		if in.Op.IsPure() && in.HasDst() && !live.Has(in.Dst) {
			flags[i] = true
		}
		if in.HasDst() {
			live.Remove(in.Dst)
		}
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			live.Add(u)
		}
	}
	return flags
}

// DeadStoreCount counts dead stores over the whole graph: static is the
// number of dead pure stores on nodes with liveness information, dyn
// weights each by the node's execution frequency (the paper's
// dynamic-count methodology, extended to a backward client). Only nodes
// the guide (if any) found executable contribute, so dyn measures dead
// work on paths that actually run.
func DeadStoreCount(g *cfg.Graph, r *Result, freq []int64) (static int, dyn int64) {
	for _, nd := range g.Nodes {
		if len(nd.Instrs) == 0 {
			continue
		}
		flags := r.DeadStores(nd.ID)
		for _, dead := range flags {
			if !dead {
				continue
			}
			static++
			if freq != nil {
				dyn += freq[nd.ID]
			}
		}
	}
	return static, dyn
}
