package liveness_test

import (
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/ir"
	. "pathflow/internal/liveness"
)

func instr(op ir.Op, dst, a, b ir.Var, k ir.Value) ir.Instr {
	return ir.Instr{Op: op, Dst: dst, A: a, B: b, K: k}
}

// straightLine: entry -> n -> exit, n returns c.
//
//	a = const 1; b = const 2; c = add a, b; d = mul a, a (dead)
func straightLine(t *testing.T) (*cfg.Graph, cfg.NodeID) {
	t.Helper()
	g := cfg.New("straight")
	n := g.AddNode("n")
	nd := g.Node(n)
	nd.Instrs = []ir.Instr{
		instr(ir.Const, 0, ir.NoVar, ir.NoVar, 1), // a = 1
		instr(ir.Const, 1, ir.NoVar, ir.NoVar, 2), // b = 2
		instr(ir.Add, 2, 0, 1, 0),                 // c = a + b
		instr(ir.Mul, 3, 0, 0, 0),                 // d = a * a   (dead)
	}
	nd.Kind = cfg.TermReturn
	nd.Ret = 2
	g.AddEdge(g.Entry, n)
	g.AddEdge(n, g.Exit)
	if err := g.Validate(4); err != nil {
		t.Fatal(err)
	}
	return g, n
}

func TestStraightLineDeadStore(t *testing.T) {
	g, n := straightLine(t)
	r := Analyze(g, 4, nil)
	out := r.LiveOut(n)
	if out == nil || out.Count() != 0 {
		t.Fatalf("LiveOut(n) = %v, want empty", out)
	}
	in := r.LiveIn(n)
	if in == nil || in.Count() != 0 {
		t.Errorf("LiveIn(n) = %v, want empty (everything defined locally)", in)
	}
	flags := r.DeadStores(n)
	want := []bool{false, false, false, true}
	for i, w := range want {
		if flags[i] != w {
			t.Errorf("DeadStores[%d] = %v, want %v", i, flags[i], w)
		}
	}
	static, dyn := DeadStoreCount(g, r, []int64{0, 0, 7, 0}[:g.NumNodes()])
	if static != 1 {
		t.Errorf("static dead stores = %d, want 1", static)
	}
	if dyn != 7 {
		t.Errorf("dyn dead stores = %d, want 7 (freq-weighted)", dyn)
	}
}

func TestTerminatorUsesAreLive(t *testing.T) {
	// branch on c: c must be live into the branch node even though no
	// instruction reads it.
	g := cfg.New("br")
	n := g.AddNode("n")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.Node(n).Instrs = []ir.Instr{
		instr(ir.Const, 0, ir.NoVar, ir.NoVar, 1), // c = 1
	}
	g.Node(n).Kind = cfg.TermBranch
	g.Node(n).Cond = 0
	for _, x := range []cfg.NodeID{a, b} {
		g.Node(x).Kind = cfg.TermReturn
		g.Node(x).Ret = ir.NoVar
	}
	g.AddEdge(g.Entry, n)
	g.AddEdge(n, a)
	g.AddEdge(n, b)
	g.AddEdge(a, g.Exit)
	g.AddEdge(b, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	r := Analyze(g, 1, nil)
	if got := r.DeadStores(n); got[0] {
		t.Error("branch condition store marked dead")
	}
	// c is consumed by n's own terminator; the successors never read it,
	// so it is dead *after* n but live *into* n's terminator.
	if r.LiveOut(n).Has(0) {
		t.Error("c live out of n although no successor reads it")
	}
}

// guidedGraph models:
//
//	p = const 1
//	if p { return u } else { return v }
//
// u is computed before the branch; v too. Unguided liveness keeps both u
// and v live across the branch. Guided by conditional constant
// propagation, the else-leg is unreachable, so v's store is dead.
func guidedGraph(t *testing.T) (*cfg.Graph, cfg.NodeID) {
	t.Helper()
	// vars: 0=p 1=u 2=v
	g := cfg.New("guided")
	h := g.AddNode("h")
	tt := g.AddNode("t")
	ff := g.AddNode("f")
	nd := g.Node(h)
	nd.Instrs = []ir.Instr{
		instr(ir.Const, 1, ir.NoVar, ir.NoVar, 10), // u = 10
		instr(ir.Const, 2, ir.NoVar, ir.NoVar, 20), // v = 20
		instr(ir.Const, 0, ir.NoVar, ir.NoVar, 1),  // p = 1
	}
	nd.Kind = cfg.TermBranch
	nd.Cond = 0
	g.Node(tt).Kind = cfg.TermReturn
	g.Node(tt).Ret = 1 // return u
	g.Node(ff).Kind = cfg.TermReturn
	g.Node(ff).Ret = 2 // return v
	g.AddEdge(g.Entry, h)
	g.AddEdge(h, tt)
	g.AddEdge(h, ff)
	g.AddEdge(tt, g.Exit)
	g.AddEdge(ff, g.Exit)
	if err := g.Validate(3); err != nil {
		t.Fatal(err)
	}
	return g, h
}

func TestGuidedLivenessKillsUnreachableUse(t *testing.T) {
	g, h := guidedGraph(t)

	plain := Analyze(g, 3, nil)
	if flags := plain.DeadStores(h); flags[0] || flags[1] {
		t.Fatalf("unguided liveness should keep both u and v live: %v", flags)
	}

	cp := constprop.Analyze(g, 3, true)
	guided := Analyze(g, 3, cp.Sol)
	flags := guided.DeadStores(h)
	if flags[0] {
		t.Error("u's store marked dead; the taken leg returns it")
	}
	if !flags[1] {
		t.Error("v's store not marked dead despite unreachable else-leg")
	}
	// Guided live sets are pointwise subsets of the unguided ones.
	for n := 0; n < g.NumNodes(); n++ {
		go1, go2 := guided.LiveOut(cfg.NodeID(n)), plain.LiveOut(cfg.NodeID(n))
		if go1 != nil && go2 != nil && !go1.SubsetOf(go2) {
			t.Errorf("node %d: guided live-out %v not subset of plain %v", n, go1, go2)
		}
	}
	// Dynamic metric: dead store weighted by node frequency.
	freq := make([]int64, g.NumNodes())
	freq[h] = 100
	static, dyn := DeadStoreCount(g, guided, freq)
	if static != 1 || dyn != 100 {
		t.Errorf("guided DeadStoreCount = (%d, %d), want (1, 100)", static, dyn)
	}
	s0, d0 := DeadStoreCount(g, plain, freq)
	if s0 != 0 || d0 != 0 {
		t.Errorf("plain DeadStoreCount = (%d, %d), want (0, 0)", s0, d0)
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(130)
	for _, v := range []ir.Var{0, 63, 64, 129} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || !s.Has(63) || !s.Has(129) {
		t.Error("Add/Remove/Has across word boundaries broken")
	}
	o := NewSet(130)
	o.Add(5)
	u := s.Union(o)
	if !u.Has(5) || !u.Has(0) || u.Count() != 4 {
		t.Errorf("Union wrong: %v", u)
	}
	if !s.SubsetOf(u) || u.SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	if s.Has(ir.NoVar) {
		t.Error("NoVar reported present")
	}
	s.Add(ir.NoVar) // must be a no-op, not a panic
}
