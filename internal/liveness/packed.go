package liveness

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
	"pathflow/internal/ir"
)

// packedDomain is the bitset kernel for liveness: live sets live as
// rows of one packed []uint64 arena, the block transfer mutates a
// scratch row in place, and the union meet is a word loop. The guide
// conditioning is identical to the boxed Problem's.
type packedDomain struct {
	g     *cfg.Graph
	nv    int
	bits  *kernel.Bits
	guide *dataflow.Solution
	uses  []ir.Var
}

func (d *packedDomain) Direction() dataflow.Direction { return dataflow.Backward }
func (d *packedDomain) Grow(rows int)                 { d.bits.Grow(rows) }
func (d *packedDomain) Boundary(dst int)              { d.bits.Clear(dst) }
func (d *packedDomain) Copy(dst, src int)             { d.bits.Copy(dst, src) }
func (d *packedDomain) Meet(dst, src int) bool        { return d.bits.Or(dst, src) }
func (d *packedDomain) Equal(a, b int) bool           { return d.bits.Equal(a, b) }

// Transfer computes the block's live-in (BlockLiveIn, in place on
// scratch row 0) and delivers it to the executable in-edges.
func (d *packedDomain) Transfer(n cfg.NodeID, in, scratch int, slots []int8) {
	if d.guide != nil && !d.guide.Reached[n] {
		return // node is dead code under the guide: propagate nothing
	}
	d.bits.Copy(scratch, in)
	nd := d.g.Node(n)
	switch nd.Kind {
	case cfg.TermBranch:
		d.add(scratch, nd.Cond)
	case cfg.TermReturn:
		d.add(scratch, nd.Ret)
	}
	for i := len(nd.Instrs) - 1; i >= 0; i-- {
		ins := &nd.Instrs[i]
		if ins.HasDst() {
			d.bits.Unset(scratch, int(ins.Dst))
		}
		d.uses = ins.Uses(d.uses[:0])
		for _, u := range d.uses {
			d.add(scratch, u)
		}
	}
	for i, eid := range nd.In {
		if d.guide != nil && !d.guide.EdgeExecutable[eid] {
			continue
		}
		slots[i] = 0
	}
}

func (d *packedDomain) add(row int, v ir.Var) {
	if v.Valid() {
		d.bits.Set(row, int(v))
	}
}

// Cells implements kernel.SparseDomain: one cell per register.
func (d *packedDomain) Cells() int { return d.nv }

// Chain implements kernel.SparseDomain. A liveness block writes exactly
// the bits it gens (instruction uses, the condition/return register) or
// kills (destinations); every other bit passes through untouched, and
// the executable-edge choice is static under the guide — so the uses
// mask stays empty.
func (d *packedDomain) Chain(n cfg.NodeID, defs, _ []uint64) {
	if d.guide != nil && !d.guide.Reached[n] {
		return // dead under the guide: transfers nothing
	}
	set := func(v ir.Var) {
		if v.Valid() {
			defs[int(v)/64] |= 1 << (uint32(v) % 64)
		}
	}
	nd := d.g.Node(n)
	switch nd.Kind {
	case cfg.TermBranch:
		set(nd.Cond)
	case cfg.TermReturn:
		set(nd.Ret)
	}
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		if ins.HasDst() {
			set(ins.Dst)
		}
		d.uses = ins.Uses(d.uses[:0])
		for _, u := range d.uses {
			set(u)
		}
	}
}

// MeetMasked implements kernel.SparseDomain (masked union).
func (d *packedDomain) MeetMasked(dst, src int, mask, dirty []uint64) bool {
	return d.bits.OrMasked(dst, src, mask, dirty)
}

func newPackedDomain(g *cfg.Graph, numVars int, guide *dataflow.Solution) *packedDomain {
	return &packedDomain{g: g, nv: numVars, bits: kernel.NewBits(numVars), guide: guide}
}

func materialize(s *kernel.Solver, d *packedDomain, numVars int) *Result {
	s.Run()
	sol := s.Materialize(func(row int) dataflow.Fact {
		return Set(append([]uint64(nil), d.bits.Row(row)...))
	})
	return &Result{G: d.g, Sol: sol, NumVars: numVars}
}

// AnalyzePacked runs live-variable analysis on the packed bitset
// kernel. The solution is pointwise equal to Analyze's.
func AnalyzePacked(g *cfg.Graph, numVars int, guide *dataflow.Solution) *Result {
	d := newPackedDomain(g, numVars, guide)
	return materialize(kernel.NewSolver(g, d), d, numVars)
}

// AnalyzeSparse runs live-variable analysis on the sparse def-use-chain
// solver. Facts, reachability, and edge executability are pointwise
// equal to the other backends'; iteration counts are lower.
func AnalyzeSparse(g *cfg.Graph, numVars int, guide *dataflow.Solution) *Result {
	d := newPackedDomain(g, numVars, guide)
	return materialize(kernel.NewSparseSolver(g, d), d, numVars)
}

// AnalyzeWith dispatches Analyze on the requested kernel backend.
func AnalyzeWith(g *cfg.Graph, numVars int, guide *dataflow.Solution, k dataflow.Kernel) *Result {
	switch k {
	case dataflow.KernelBoxed:
		return Analyze(g, numVars, guide)
	case dataflow.KernelSparse:
		return AnalyzeSparse(g, numVars, guide)
	}
	return AnalyzePacked(g, numVars, guide)
}
